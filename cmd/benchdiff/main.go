// Command benchdiff compares two gdpbench -json snapshots and fails on
// performance regressions, making the benchmark suite a CI gate:
//
//	go run ./cmd/gdpbench -quick -symmetry -json > current.json
//	go run ./cmd/benchdiff -max-ratio 1.25 BENCH_baseline.json current.json
//
// An experiment regresses when its elapsed time grows by more than
// -max-ratio over the baseline (only timings above -min are compared —
// sub-threshold runs are all noise), when its allocs/op grow by more
// than -max-alloc-ratio (baselines above -min-allocs only; 0 disables
// the allocation gate), or when its ok flag flips to false. Experiments
// present on only one side are reported but not fatal, so adding a
// benchmark does not break the gate. Exit status 1 on any regression.
// The classification logic lives in internal/benchcmp.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gdpn/internal/benchcmp"
)

func main() {
	maxRatio := flag.Float64("max-ratio", 1.25, "fail when current/baseline elapsed exceeds this")
	minBase := flag.Duration("min", 100*time.Millisecond, "ignore experiments whose baseline elapsed is below this (noise floor)")
	maxAllocRatio := flag.Float64("max-alloc-ratio", 0, "fail when current/baseline allocs per op exceeds this (0 = no allocation gate)")
	minAllocs := flag.Int64("min-allocs", 10_000, "ignore experiments whose baseline allocs/op is below this (allocation noise floor)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-max-ratio R] [-min D] baseline.json current.json")
		os.Exit(2)
	}
	base, err := benchcmp.Load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	cur, err := benchcmp.Load(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	opts := benchcmp.Options{MaxRatio: *maxRatio, MinBase: *minBase,
		MaxAllocRatio: *maxAllocRatio, MinAllocs: *minAllocs}
	res := benchcmp.Compare(base, cur, opts)
	res.Render(os.Stdout, opts)
	if !res.OK() {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
