// Command benchdiff compares two gdpbench -json snapshots and fails on
// performance regressions, making the benchmark suite a CI gate:
//
//	go run ./cmd/gdpbench -quick -symmetry -json > current.json
//	go run ./cmd/benchdiff -max-ratio 1.25 BENCH_baseline.json current.json
//
// An experiment regresses when its elapsed time grows by more than
// -max-ratio over the baseline (only timings above -min are compared —
// sub-threshold runs are all noise), or when its ok flag flips to false.
// Experiments present on only one side are reported but not fatal, so
// adding a benchmark does not break the gate. Exit status 1 on any
// regression.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"
)

type experiment struct {
	ID        string `json:"id"`
	Title     string `json:"title"`
	OK        bool   `json:"ok"`
	ElapsedNS int64  `json:"elapsed_ns"`
}

type snapshot struct {
	OK          bool         `json:"ok"`
	Experiments []experiment `json:"experiments"`
}

func load(path string) (*snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(s.Experiments) == 0 {
		return nil, fmt.Errorf("%s: no experiments in snapshot", path)
	}
	return &s, nil
}

func main() {
	maxRatio := flag.Float64("max-ratio", 1.25, "fail when current/baseline elapsed exceeds this")
	minBase := flag.Duration("min", 100*time.Millisecond, "ignore experiments whose baseline elapsed is below this (noise floor)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-max-ratio R] [-min D] baseline.json current.json")
		os.Exit(2)
	}
	base, err := load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	cur, err := load(flag.Arg(1))
	if err != nil {
		fatal(err)
	}

	baseByID := make(map[string]experiment, len(base.Experiments))
	for _, e := range base.Experiments {
		baseByID[e.ID] = e
	}

	regressions := 0
	compared := 0
	seen := make(map[string]bool, len(cur.Experiments))
	for _, c := range cur.Experiments {
		seen[c.ID] = true
		b, ok := baseByID[c.ID]
		if !ok {
			fmt.Printf("new     %-6s %s (%v) — not in baseline, skipped\n",
				c.ID, c.Title, time.Duration(c.ElapsedNS).Round(time.Millisecond))
			continue
		}
		if b.OK && !c.OK {
			fmt.Printf("BROKEN  %-6s %s — ok flipped to false\n", c.ID, c.Title)
			regressions++
			continue
		}
		if time.Duration(b.ElapsedNS) < *minBase {
			continue // below the noise floor
		}
		compared++
		ratio := float64(c.ElapsedNS) / float64(b.ElapsedNS)
		status := "ok"
		if ratio > *maxRatio {
			status = "REGRESS"
			regressions++
		}
		fmt.Printf("%-7s %-6s %s: %v -> %v (%.2fx)\n", status, c.ID, c.Title,
			time.Duration(b.ElapsedNS).Round(time.Millisecond),
			time.Duration(c.ElapsedNS).Round(time.Millisecond), ratio)
	}
	for _, b := range base.Experiments {
		if !seen[b.ID] {
			fmt.Printf("gone    %-6s %s — in baseline but not in current run\n", b.ID, b.Title)
		}
	}

	fmt.Printf("benchdiff: %d experiments compared (baseline floor %v), %d regression(s) at max-ratio %.2f\n",
		compared, *minBase, regressions, *maxRatio)
	if regressions > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
