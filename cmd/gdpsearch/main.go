// Command gdpsearch runs the computer searches behind §3.3: re-proving
// Lemma 3.14 (nonexistence) and the uniqueness lemmas by complete
// enumeration, and re-deriving the special solutions by randomized search.
//
// Usage:
//
//	gdpsearch -mode prove-none -n 5 -k 2 -maxdeg 4     # Lemma 3.14
//	gdpsearch -mode enumerate  -n 1 -k 2 -maxdeg 4     # Lemma 3.7 uniqueness
//	gdpsearch -mode find       -n 7 -k 3 -maxdeg 5     # special solution
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"gdpn/internal/search"
)

func main() {
	var (
		mode   = flag.String("mode", "find", "prove-none, enumerate, or find")
		n      = flag.Int("n", 6, "minimum pipeline processors")
		k      = flag.Int("k", 2, "fault tolerance")
		maxDeg = flag.Int("maxdeg", 0, "maximum processor degree (0 = k+2)")
		seed   = flag.Int64("seed", 1, "random seed for -mode find")
		emit   = flag.Bool("json", false, "emit the found graph as JSON")
	)
	flag.Parse()
	if *maxDeg == 0 {
		*maxDeg = *k + 2
	}
	spec := search.Spec{N: *n, K: *k, MaxDegree: *maxDeg}

	switch *mode {
	case "prove-none", "enumerate":
		res := search.Exhaustive(spec, 0)
		fmt.Printf("%s: %d processor graphs, %d candidates, %d solutions (up to isomorphism)\n",
			spec, res.ProcGraphs, res.Candidates, len(res.Solutions))
		for i, g := range res.Solutions {
			fmt.Printf("  solution %d: %s\n", i, g.Summary())
		}
		if *mode == "prove-none" && !res.None() {
			fmt.Println("NOT proven: solutions exist")
			os.Exit(1)
		}
		if *mode == "prove-none" {
			fmt.Println("proven: no such solution graph exists")
		}
	case "find":
		g, err := search.Find(spec, *seed, search.FindOptions{Restarts: 5000, Moves: 1000})
		if err != nil {
			fmt.Fprintln(os.Stderr, "gdpsearch:", err)
			os.Exit(1)
		}
		fmt.Println("found (exhaustively verified):", g.Summary())
		if *emit {
			data, err := json.Marshal(g)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gdpsearch:", err)
				os.Exit(1)
			}
			os.Stdout.Write(data)
			fmt.Println()
		}
	default:
		fmt.Fprintf(os.Stderr, "gdpsearch: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}
