// Command gdpfleet runs the sharded verification fleet: a coordinator
// that leases orbit-representative rank chunks to workers over HTTP,
// checkpoints progress, and merges the streamed partial reports into a
// verdict byte-identical to a single-process gdpverify run.
//
// Usage:
//
//	gdpfleet serve -addr :7117 -n 22 -k 4 -symmetry -checkpoint sweep.json
//	gdpfleet work  -coord http://host:7117 -j 4
//	gdpfleet serve -local 3 -n 3 -k 5 -symmetry          # one-binary fleet
//	gdpfleet serve ... -redundancy 2                     # double-solve chunks
//	gdpfleet serve ... -store sweep.gdps                 # content-keyed resume + verdict cache
//	gdpfleet serve ... -summary verdict.txt -json        # CI-diffable outputs
//
// A SIGKILLed coordinator restarted with the same -checkpoint file
// resumes from the last completed chunk (the final report then carries
// "resumed": true); workers ride out the outage by retrying for -retry.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"gdpn/internal/fleet"
	"gdpn/internal/obs"
	"gdpn/internal/store"
	"gdpn/internal/telemetry"
)

func main() {
	var (
		// Instance flags (serve; workers fetch them from /v1/job).
		n     = flag.Int("n", 10, "minimum pipeline processors")
		k     = flag.Int("k", 2, "fault tolerance")
		merge = flag.Bool("merge", false, "verify the merged model (processor faults only)")
		symm  = flag.Bool("symmetry", false, "solve one representative per automorphism orbit of fault sets")

		// Coordinator flags.
		addr       = flag.String("addr", "127.0.0.1:7117", "serve: coordinator listen address")
		redundancy = flag.Int("redundancy", 1, "serve: independent verdicts required per chunk; mismatches are flagged as solver bugs")
		chunkRanks = flag.Int64("chunk-ranks", 0, "serve: subset ranks per chunk (0 = 2048)")
		leaseTTL   = flag.Duration("lease-ttl", fleet.DefaultLeaseTTL, "serve: chunk lease duration; silent workers lose their chunks after this")
		checkpoint = flag.String("checkpoint", "", "serve: JSON progress file — written after every chunk, resumed from on restart")
		local      = flag.Int("local", 0, "serve: also run this many in-process workers over loopback HTTP")
		storeP     = flag.String("store", "", "content-addressed verdict store file (created if absent): serve resumes already-proven chunks from it and persists each completion; work replays cached verdicts inside its runners — give each process its own file")
		jsonOut    = flag.Bool("json", false, "serve: emit the machine-readable result (report + fleet accounting + metrics) on stdout")
		summary    = flag.String("summary", "", "serve: also write the canonical verdict summary to this file (diffable against gdpverify -summary)")

		// Worker flags (also applied to -local workers).
		coord    = flag.String("coord", "http://127.0.0.1:7117", "work: coordinator base URL")
		id       = flag.String("id", "", "work: worker id (default hostname-pid)")
		jobs     = flag.Int("j", 1, "work: concurrent shard runners")
		throttle = flag.Duration("throttle", 0, "work: artificial delay per enumerated fault set (CI gauntlet pacing)")
		retry    = flag.Duration("retry", 30*time.Second, "work: keep retrying coordinator calls through outages for this long")
		memo     = flag.Bool("memo", true, "work: enable the per-runner solver result memo")
		quiet    = flag.Bool("quiet", false, "suppress progress logging on stderr")
	)
	tf := telemetry.Register()
	if len(os.Args) < 2 || (os.Args[1] != "serve" && os.Args[1] != "work") {
		fmt.Fprintln(os.Stderr, "usage: gdpfleet serve|work [flags]   (gdpfleet <cmd> -h for flags)")
		os.Exit(2)
	}
	cmd := os.Args[1]
	flag.CommandLine.Parse(os.Args[2:])
	if err := tf.Activate(); err != nil {
		fatal(err)
	}
	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	spec := fleet.JobSpec{N: *n, K: *k, Merge: *merge, Symmetry: *symm,
		Redundancy: *redundancy, ChunkRanks: *chunkRanks}
	workerCfg := fleet.WorkerConfig{
		Coordinator: *coord, ID: *id, Parallel: *jobs,
		Throttle: *throttle, Retry: *retry, Memo: *memo, Logf: logf,
	}

	// One store handle per process (serve shares it between the
	// coordinator and any -local workers; a remote worker opens its own
	// file — the store is a single-writer format).
	var st *store.Store
	if *storeP != "" {
		var err error
		if st, err = store.Open(*storeP); err != nil {
			fatal(err)
		}
		workerCfg.Store = st
	}

	switch cmd {
	case "work":
		if err := fleet.RunWorker(ctx, workerCfg); err != nil && ctx.Err() == nil {
			fatal(err)
		}
		if st != nil {
			if err := st.Close(); err != nil {
				fatal(err)
			}
		}
	case "serve":
		serve(ctx, tf, spec, workerCfg, st, *addr, *leaseTTL, *checkpoint, *local, *jsonOut, *summary, logf)
	}
}

func serve(ctx context.Context, tf *telemetry.Flags, spec fleet.JobSpec, workerCfg fleet.WorkerConfig,
	st *store.Store, addr string, leaseTTL time.Duration, checkpoint string, local int, jsonOut bool,
	summary string, logf func(string, ...any)) {

	obs.Default().SetEnabled(true)
	c, err := fleet.NewCoordinator(fleet.Config{
		Spec: spec, LeaseTTL: leaseTTL, CheckpointPath: checkpoint, Store: st,
	})
	if err != nil {
		fatal(err)
	}

	lis, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle("/v1/", c.Handler())
	mux.Handle("/", obs.Default().Mux(tf.MuxOptions()...))
	srv := &http.Server{Handler: mux}
	go srv.Serve(lis)
	base := "http://" + lis.Addr().String()
	logf("gdpfleet: coordinator on %s (resumed=%v); /metrics, /debug/spans, /slo served alongside /v1/", base, c.Resumed())

	var wg sync.WaitGroup
	for i := 0; i < local; i++ {
		cfg := workerCfg
		cfg.Coordinator = base
		cfg.ID = fmt.Sprintf("local-%d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := fleet.RunWorker(ctx, cfg); err != nil && ctx.Err() == nil {
				logf("gdpfleet: %v", err)
			}
		}()
	}

	select {
	case <-ctx.Done():
		// Interrupted: the checkpoint (if any) already holds every
		// completed chunk, and the store (if any) was flushed after each
		// completion; a restart resumes from either.
		wg.Wait()
		srv.Close()
		if st != nil {
			st.Close()
		}
		logf("gdpfleet: interrupted; progress checkpointed to %q", checkpoint)
		os.Exit(130)
	case <-c.Done():
	}
	res := c.Final()
	wg.Wait()
	srv.Close()
	if st != nil {
		if err := st.Close(); err != nil {
			fatal(err)
		}
	}

	if summary != "" {
		if err := os.WriteFile(summary, []byte(res.Report.VerdictSummary()+"\n"), 0o644); err != nil {
			fatal(err)
		}
	}
	healthy := tf.Report(os.Stderr)
	if jsonOut {
		out := struct {
			OK      bool   `json:"ok"`
			Summary string `json:"summary"`
			*fleet.Result
			Metrics obs.Snapshot `json:"metrics"`
		}{res.Report.OK(), res.Report.VerdictSummary(), res, obs.Default().Snapshot()}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		fmt.Println(res.Report.String())
		fmt.Printf("fleet: %d/%d chunks (%d from store), %d leases (%d re-leased), %d workers, redundancy %d, mismatches %d, resumed=%v\n",
			res.ChunksCompleted, res.ChunksTotal, res.ChunksFromStore, res.Leases, res.Releases,
			res.WorkersSeen, res.Redundancy, res.Mismatches, res.Resumed)
	}
	if !res.Report.OK() || res.Mismatches > 0 || !healthy {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gdpfleet:", err)
	os.Exit(1)
}
