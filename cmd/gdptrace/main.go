// Command gdptrace renders span dumps — flight-recorder bundles written
// by -trace-dump, or the JSON array served at /debug/spans?format=json —
// as per-trace timelines with critical-path attribution.
//
// For every trace (one root span: a remap, a soak, a sweep chunk) the
// text view prints the span tree with offset/duration bars scaled to the
// root, and a per-phase attribution table: how much of the root's wall
// clock each direct child phase covered, how much only that phase covered
// (exclusive — the critical-path weight), and the uncovered remainder.
// That is what turns "the remap blew its deadline" into "solve ate 93%
// after both local tactics missed".
//
// Usage:
//
//	gdptrace flight-001-remap_deadline.json
//	gdptrace -html -o timeline.html flight-001-remap_deadline.json
//	curl -s localhost:9090/debug/spans?format=json | gdptrace /dev/stdin
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"html"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"gdpn/internal/obs/span"
)

func main() {
	var (
		htmlOut = flag.Bool("html", false, "render an HTML timeline instead of text")
		outPath = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gdptrace [-html] [-o out] <dump.json>")
		os.Exit(2)
	}
	spans, dump, err := load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	w := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if *htmlOut {
		err = renderHTML(w, dump, spans)
	} else {
		err = renderText(w, dump, spans)
	}
	if err != nil {
		fatal(err)
	}
}

// load reads path as a flight-recorder Dump or, failing that, as a bare
// JSON array of spans (the /debug/spans?format=json shape).
func load(path string) ([]span.Span, *span.Dump, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var d span.Dump
	if err := json.Unmarshal(data, &d); err == nil && d.Kind != "" {
		return d.Spans, &d, nil
	}
	var ss []span.Span
	if err := json.Unmarshal(data, &ss); err == nil {
		return ss, nil, nil
	}
	return nil, nil, fmt.Errorf("gdptrace: %s is neither a flight dump nor a span array", path)
}

// traceTree is one root span plus its (transitively) linked descendants.
type traceTree struct {
	root     span.Span
	children map[uint64][]span.Span // parent ID → children, by start time
}

// buildTraces groups spans into trees. A span whose parent is missing
// from the set (evicted from the ring) is promoted to a root so nothing
// silently disappears from the rendering.
func buildTraces(spans []span.Span) []traceTree {
	byID := make(map[uint64]span.Span, len(spans))
	for _, s := range spans {
		byID[s.ID] = s
	}
	children := make(map[uint64][]span.Span)
	var roots []span.Span
	for _, s := range spans {
		if s.Parent != 0 {
			if _, ok := byID[s.Parent]; ok {
				children[s.Parent] = append(children[s.Parent], s)
				continue
			}
		}
		roots = append(roots, s)
	}
	for _, cs := range children {
		sort.Slice(cs, func(i, j int) bool { return cs[i].Start < cs[j].Start })
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Start < roots[j].Start })
	out := make([]traceTree, 0, len(roots))
	for _, r := range roots {
		out = append(out, traceTree{root: r, children: children})
	}
	return out
}

// phaseShare is one direct child phase's share of the root's wall clock.
type phaseShare struct {
	name      string
	total     time.Duration // sum of this phase's span durations
	exclusive time.Duration // covered by this phase and no sibling phase
}

// attribute computes per-phase coverage of the root's extent. Exclusive
// time is apportioned by sweeping sibling intervals: where exactly one
// phase is active it gets the whole slice; overlapped slices count toward
// total only. The remainder (no child active) is returned as gap.
func attribute(t traceTree) (shares []phaseShare, gap time.Duration) {
	kids := t.children[t.root.ID]
	if len(kids) == 0 {
		return nil, t.root.Duration()
	}
	type edge struct {
		at    time.Duration
		phase int
		open  bool
	}
	byName := map[string]int{}
	var edges []edge
	for _, k := range kids {
		idx, ok := byName[k.Name]
		if !ok {
			idx = len(shares)
			byName[k.Name] = idx
			shares = append(shares, phaseShare{name: k.Name})
		}
		shares[idx].total += k.Duration()
		edges = append(edges, edge{k.Start, idx, true}, edge{k.End, idx, false})
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].at < edges[j].at })
	active := make([]int, len(shares))
	covered := time.Duration(0)
	nActive, cur, lastAt := 0, -1, edges[0].at
	for _, e := range edges {
		if d := e.at - lastAt; d > 0 {
			if nActive == 1 {
				shares[cur].exclusive += d
			}
			if nActive > 0 {
				covered += d
			}
		}
		lastAt = e.at
		if e.open {
			active[e.phase]++
			nActive++
		} else {
			active[e.phase]--
			nActive--
		}
		cur = -1
		if nActive == 1 {
			for i, n := range active {
				if n > 0 {
					cur = i
					break
				}
			}
		}
	}
	gap = t.root.Duration() - covered
	if gap < 0 {
		gap = 0
	}
	return shares, gap
}

const barWidth = 32

// bar renders a span's offset/extent within the root as a fixed-width
// strip: '·' outside the span, '#' inside.
func bar(root, s span.Span) string {
	total := root.Duration()
	if total <= 0 {
		return strings.Repeat("·", barWidth)
	}
	from := int(int64(barWidth) * int64(s.Start-root.Start) / int64(total))
	to := int(int64(barWidth) * int64(s.End-root.Start) / int64(total))
	from, to = clamp(from, 0, barWidth), clamp(to, 0, barWidth)
	if to <= from {
		to = from + 1
		if to > barWidth {
			from, to = barWidth-1, barWidth
		}
	}
	return strings.Repeat("·", from) + strings.Repeat("#", to-from) + strings.Repeat("·", barWidth-to)
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// attrLine renders a span's attributes as " k=v k=v".
func attrLine(s span.Span) string {
	var b strings.Builder
	for _, a := range s.Attrs {
		fmt.Fprintf(&b, " %s=%s", a.Key, a.Value())
	}
	return b.String()
}

func renderText(w io.Writer, dump *span.Dump, spans []span.Span) error {
	if dump != nil {
		fmt.Fprintf(w, "flight dump: anomaly=%s detail=%q written=%s spans=%d",
			dump.Kind, dump.Detail, dump.WrittenAt.Format(time.RFC3339), len(dump.Spans))
		if dump.SpansDropped > 0 {
			fmt.Fprintf(w, " (+%d evicted)", dump.SpansDropped)
		}
		fmt.Fprintln(w)
		if len(dump.CounterDeltas) > 0 {
			keys := make([]string, 0, len(dump.CounterDeltas))
			for k := range dump.CounterDeltas {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			fmt.Fprintln(w, "counters moved since arm/last dump:")
			for _, k := range keys {
				fmt.Fprintf(w, "  %-48s %+d\n", k, dump.CounterDeltas[k])
			}
		}
		fmt.Fprintln(w)
	}
	traces := buildTraces(spans)
	if len(traces) == 0 {
		fmt.Fprintln(w, "no spans")
		return nil
	}
	for _, t := range traces {
		r := t.root
		fmt.Fprintf(w, "trace %d: %s status=%s dur=%v%s\n",
			r.Trace, r.Name, r.Status, r.Duration().Round(time.Microsecond), attrLine(r))
		var walk func(id uint64, depth int)
		walk = func(id uint64, depth int) {
			for _, c := range t.children[id] {
				fmt.Fprintf(w, "  %s%-*s %s %8v %s%s\n",
					strings.Repeat("  ", depth), 14-2*depth, c.Name, bar(r, c),
					c.Duration().Round(time.Microsecond), c.Status, attrLine(c))
				walk(c.ID, depth+1)
			}
		}
		walk(r.ID, 0)
		for _, e := range r.Events {
			fmt.Fprintf(w, "    @%v %s %s\n", (e.At - r.Start).Round(time.Millisecond), e.Name, e.Fields)
		}
		if shares, gap := attribute(t); len(shares) > 0 && r.Duration() > 0 {
			fmt.Fprintf(w, "  critical path:")
			sort.Slice(shares, func(i, j int) bool { return shares[i].exclusive > shares[j].exclusive })
			for _, s := range shares {
				fmt.Fprintf(w, " %s=%v(%.0f%%)", s.name, s.exclusive.Round(time.Microsecond),
					100*float64(s.exclusive)/float64(r.Duration()))
			}
			fmt.Fprintf(w, " uncovered=%v(%.0f%%)\n", gap.Round(time.Microsecond),
				100*float64(gap)/float64(r.Duration()))
		}
		fmt.Fprintln(w)
	}
	return nil
}

func renderHTML(w io.Writer, dump *span.Dump, spans []span.Span) error {
	traces := buildTraces(spans)
	fmt.Fprint(w, `<!doctype html><meta charset="utf-8"><title>gdptrace</title><style>
body{font:13px/1.5 monospace;margin:2em;background:#111;color:#ddd}
.trace{margin-bottom:2em}
.row{position:relative;height:1.4em}
.row .label{position:absolute;left:0;width:18em;overflow:hidden;white-space:nowrap}
.row .lane{position:absolute;left:19em;right:0;top:.15em;height:1.1em;background:#1c1c1c}
.row .sp{position:absolute;height:100%;border-radius:2px;min-width:2px}
.ok{background:#2e7d32}.canceled{background:#8d6e08}.deadline{background:#b3541e}
.rollback{background:#a92222}.error{background:#c2185b}
h2{color:#fff;font-size:14px}.meta{color:#888}
</style>`)
	if dump != nil {
		fmt.Fprintf(w, "<h1>flight dump: %s</h1><p class=meta>%s — %s</p>",
			html.EscapeString(string(dump.Kind)), html.EscapeString(dump.Detail),
			dump.WrittenAt.Format(time.RFC3339))
	}
	for _, t := range traces {
		r := t.root
		total := r.Duration()
		if total <= 0 {
			total = 1
		}
		fmt.Fprintf(w, `<div class=trace><h2>trace %d: %s <span class=meta>status=%s dur=%v%s</span></h2>`,
			r.Trace, html.EscapeString(r.Name), r.Status, r.Duration().Round(time.Microsecond),
			html.EscapeString(attrLine(r)))
		var walk func(s span.Span, depth int)
		walk = func(s span.Span, depth int) {
			left := 100 * float64(s.Start-r.Start) / float64(total)
			width := 100 * float64(s.Duration()) / float64(total)
			fmt.Fprintf(w,
				`<div class=row><span class=label>%s%s %v</span><span class=lane><span class="sp %s" style="left:%.2f%%;width:%.2f%%" title="%s"></span></span></div>`,
				strings.Repeat("&nbsp;", 2*depth), html.EscapeString(s.Name),
				s.Duration().Round(time.Microsecond), statusClass(s.Status), left, width,
				html.EscapeString(s.Name+attrLine(s)))
			for _, c := range t.children[s.ID] {
				walk(c, depth+1)
			}
		}
		walk(r, 0)
		fmt.Fprint(w, "</div>")
	}
	return nil
}

func statusClass(st span.Status) string {
	switch st {
	case span.OK:
		return "ok"
	case span.Canceled:
		return "canceled"
	case span.Deadline:
		return "deadline"
	case span.Rollback:
		return "rollback"
	default:
		return "error"
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gdptrace:", err)
	os.Exit(1)
}
