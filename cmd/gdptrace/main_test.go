package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gdpn/internal/obs/span"
)

// syntheticDump builds a dump shaped like a real remap-deadline bundle: a
// root remap span with plan (two tactic attempts), solve, and audit
// children, plus an orphan whose parent was evicted from the ring.
func syntheticDump() span.Dump {
	ms := func(n int64) time.Duration { return time.Duration(n) * time.Millisecond }
	spans := []span.Span{
		{ID: 2, Parent: 1, Trace: 1, Name: "detect", Start: ms(0), End: ms(1), Status: span.OK,
			Attrs: []span.Attr{{Key: "node", Int: 5, IsInt: true}}},
		{ID: 3, Parent: 1, Trace: 1, Name: "plan", Start: ms(1), End: ms(3), Status: span.Errored,
			Attrs: []span.Attr{{Key: "tactic", Str: "exhausted"}}},
		{ID: 4, Parent: 3, Trace: 1, Name: "tactic", Start: ms(1), End: ms(2), Status: span.Errored,
			Attrs: []span.Attr{{Key: "name", Str: "splice"}}},
		{ID: 5, Parent: 3, Trace: 1, Name: "tactic", Start: ms(2), End: ms(3), Status: span.Errored,
			Attrs: []span.Attr{{Key: "name", Str: "rewire-right"}}},
		{ID: 6, Parent: 1, Trace: 1, Name: "solve", Start: ms(3), End: ms(48), Status: span.Deadline,
			Attrs: []span.Attr{{Key: "tier", Str: "full"}, {Key: "cancel_reason", Str: "deadline"}}},
		{ID: 1, Parent: 0, Trace: 1, Name: "remap", Start: ms(0), End: ms(50), Status: span.Deadline,
			Attrs: []span.Attr{{Key: "op", Str: "inject"}, {Key: "cancel_reason", Str: "deadline"}}},
		// Parent 90 is not in the set: must be promoted to a root, not lost.
		{ID: 91, Parent: 90, Trace: 90, Name: "sweep-chunk", Start: ms(60), End: ms(61), Status: span.OK},
	}
	return span.Dump{
		Version:       1,
		Kind:          span.AnomalyDeadline,
		Detail:        "node=5 err=remap deadline exceeded",
		WrittenAt:     time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC),
		Seq:           1,
		Spans:         spans,
		CounterDeltas: map[string]int64{"reconfig_rollbacks_total": 1},
	}
}

func writeDump(t *testing.T, d span.Dump) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "flight-001-remap_deadline.json")
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadDumpAndSpanArray(t *testing.T) {
	d := syntheticDump()
	path := writeDump(t, d)
	spans, dump, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	if dump == nil || dump.Kind != span.AnomalyDeadline {
		t.Fatalf("dump header not recognized: %+v", dump)
	}
	if len(spans) != len(d.Spans) {
		t.Fatalf("got %d spans, want %d", len(spans), len(d.Spans))
	}

	// A bare span array (the /debug/spans?format=json shape) must also load.
	raw, _ := json.Marshal(d.Spans)
	arrPath := filepath.Join(t.TempDir(), "spans.json")
	if err := os.WriteFile(arrPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	spans, dump, err = load(arrPath)
	if err != nil {
		t.Fatal(err)
	}
	if dump != nil {
		t.Fatal("span array misread as a flight dump")
	}
	if len(spans) != len(d.Spans) {
		t.Fatalf("got %d spans from array, want %d", len(spans), len(d.Spans))
	}

	if _, _, err := load(writeGarbage(t)); err == nil {
		t.Fatal("garbage input did not error")
	}
}

func writeGarbage(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(path, []byte(`{"nope": true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBuildTraces(t *testing.T) {
	traces := buildTraces(syntheticDump().Spans)
	if len(traces) != 2 {
		t.Fatalf("got %d traces, want 2 (remap + orphan)", len(traces))
	}
	if traces[0].root.Name != "remap" {
		t.Fatalf("first root = %q, want remap (sorted by start)", traces[0].root.Name)
	}
	if traces[1].root.Name != "sweep-chunk" {
		t.Fatalf("orphan span not promoted to root: %q", traces[1].root.Name)
	}
	kids := traces[0].children[traces[0].root.ID]
	if len(kids) != 3 {
		t.Fatalf("remap has %d direct children, want 3", len(kids))
	}
	for i := 1; i < len(kids); i++ {
		if kids[i].Start < kids[i-1].Start {
			t.Fatal("children not sorted by start time")
		}
	}
	if got := traces[0].children[3]; len(got) != 2 {
		t.Fatalf("plan has %d tactic attempts, want 2", len(got))
	}
}

func TestAttribution(t *testing.T) {
	traces := buildTraces(syntheticDump().Spans)
	shares, gap := attribute(traces[0])
	byName := map[string]phaseShare{}
	for _, s := range shares {
		byName[s.name] = s
	}
	// solve covers [3ms,48ms) exclusively: 45ms of the 50ms root.
	if got := byName["solve"].exclusive; got != 45*time.Millisecond {
		t.Fatalf("solve exclusive = %v, want 45ms", got)
	}
	if got := byName["plan"].exclusive; got != 2*time.Millisecond {
		t.Fatalf("plan exclusive = %v, want 2ms", got)
	}
	// Root runs to 50ms but the last child ends at 48ms: 2ms uncovered.
	if gap != 2*time.Millisecond {
		t.Fatalf("gap = %v, want 2ms", gap)
	}
}

func TestRenderText(t *testing.T) {
	d := syntheticDump()
	var buf bytes.Buffer
	if err := renderText(&buf, &d, d.Spans); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"anomaly=remap_deadline",
		"reconfig_rollbacks_total",
		"remap status=deadline",
		"detect", "plan", "solve",
		"cancel_reason=deadline",
		"critical path:",
		"solve=45ms(90%)",
		"sweep-chunk",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text render missing %q\n%s", want, out)
		}
	}
	// Parent-consistent ordering: a child renders after its root header.
	if strings.Index(out, "remap status") > strings.Index(out, "solve") {
		t.Error("child span rendered before its root")
	}
}

func TestRenderHTML(t *testing.T) {
	d := syntheticDump()
	var buf bytes.Buffer
	if err := renderHTML(&buf, &d, d.Spans); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<!doctype html", "remap_deadline", "class=\"sp deadline\"", "trace 1: remap"} {
		if !strings.Contains(out, want) {
			t.Errorf("html render missing %q", want)
		}
	}
}

func TestRenderEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := renderText(&buf, nil, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no spans") {
		t.Fatalf("empty render = %q", buf.String())
	}
}
