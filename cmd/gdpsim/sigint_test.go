//go:build !windows

package main_test

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestChaosSIGINTFlushesReport builds the real binary, starts an
// hour-long chaos soak, interrupts it after a fraction of a second, and
// checks that the JSON soak report still flushes with the interrupted
// marker set and no frames lost.
func TestChaosSIGINTFlushesReport(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and signals a real binary")
	}
	bin := filepath.Join(t.TempDir(), "gdpsim")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-chaos", "-n", "12", "-k", "3",
		"-duration", "1h", "-mtbf", "80ms", "-mttr", "30ms",
		"-quiet", "-json")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	time.Sleep(600 * time.Millisecond)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatalf("signal: %v", err)
	}

	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("wait: %v\nstderr: %s", err, stderr.Bytes())
		}
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("binary did not exit within 30s of SIGINT\nstderr: %s", stderr.Bytes())
	}

	var out struct {
		OK     bool `json:"ok"`
		Report struct {
			Interrupted bool `json:"interrupted"`
			Stream      struct {
				Submitted int64 `json:"submitted"`
				Delivered int64 `json:"delivered"`
			} `json:"stream"`
		} `json:"report"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &out); err != nil {
		t.Fatalf("stdout is not a JSON report: %v\n%s", err, stdout.Bytes())
	}
	if !out.Report.Interrupted {
		t.Fatalf("soak report not marked interrupted:\n%s", stdout.Bytes())
	}
	if !out.OK {
		t.Fatalf("interrupted soak reported invariant failures:\n%s", stdout.Bytes())
	}
	if out.Report.Stream.Delivered != out.Report.Stream.Submitted {
		t.Fatalf("interrupted shutdown lost frames: %+v", out.Report.Stream)
	}
}
