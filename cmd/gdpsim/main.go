// Command gdpsim runs the streaming-pipeline fault-injection demo: a
// video-style stage chain mapped onto a gracefully degradable network,
// with faults arriving between epochs and the stream continuing on every
// healthy processor.
//
// With -metrics-addr the run is observable live: /metrics serves the
// Prometheus text exposition (frame-latency quantiles, per-tactic repair
// counts, solver timings; append ?format=json for a JSON snapshot),
// /debug/trace serves the fault/repair event trace, and a one-line
// metrics summary is printed to stderr every -snapshot-interval.
//
// With -chaos the epoch model is replaced by the soak harness
// (internal/chaos): frames stream continuously while a seeded stochastic
// fault/repair process (-mtbf, -mttr, -burst-prob) churns the network
// live, every remap drains and requeues in-flight frames, and the run
// ends with an invariant report — zero frames lost, zero duplicated,
// every healthy processor in use after every remap. The exit status is
// non-zero if any invariant failed; rerun a failing seed with the same
// -seed to reproduce the exact fault sequence. SIGINT/SIGTERM end the
// soak early: the stream drains cleanly and the report — marked
// "interrupted" — is still printed (or emitted as JSON with -json).
//
// With -tenants <topology.json> the run is the multi-tenant control-plane
// soak: the planner/executor layers (internal/plan, internal/control) run
// every tenant declared in the topology file on one shared pool, the
// fault schedule hits the pool, and each event triggers one coordinated
// replan remapping every affected tenant with per-tenant zero-loss
// drain/requeue. The report (and exit status) covers per-tenant sink
// audits and the partition invariant — running segments always tile the
// healthy processors. Example topologies live under examples/topologies/.
//
// Usage:
//
//	gdpsim -n 24 -k 4 -epoch-frames 128 -frame 4096
//	gdpsim -n 1000 -k 6 -model terminals-first
//	gdpsim -n 24 -k 4 -metrics-addr :9090 -epochs 50
//	gdpsim -chaos -n 12 -k 3 -seed 1 -duration 30s
//	gdpsim -chaos -n 12 -k 3 -json
//	gdpsim -tenants examples/topologies/mixed.json -duration 10s -json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"gdpn/internal/chaos"
	"gdpn/internal/construct"
	"gdpn/internal/faults"
	"gdpn/internal/obs"
	"gdpn/internal/pipeline"
	"gdpn/internal/plan"
	"gdpn/internal/stages"
	"gdpn/internal/telemetry"
	"gdpn/internal/workload"
)

func main() {
	var (
		n        = flag.Int("n", 24, "minimum pipeline processors")
		k        = flag.Int("k", 4, "fault tolerance")
		frames   = flag.Int("epoch-frames", 128, "frames per epoch")
		size     = flag.Int("frame", 4096, "samples per frame")
		model    = flag.String("model", "processors-only", "fault model: uniform, processors-only, terminals-first")
		seed     = flag.Int64("seed", 1, "random seed")
		epochs   = flag.Int("epochs", 0, "total epochs to run (0 = stop when the fault sequence is exhausted)")
		addr     = flag.String("metrics-addr", "", "serve /metrics and /debug/trace on this address (e.g. :9090); enables instrumentation")
		interval = flag.Duration("snapshot-interval", 5*time.Second, "period of the one-line stderr metrics snapshot (with -metrics-addr)")
		batch    = flag.Int("batch", 0, "frames per transport batch (0 = default 8; 1 = per-frame)")
		chanDep  = flag.Int("chan-depth", 0, "per-stage channel depth in batches (0 = default 4)")

		chaosMode = flag.Bool("chaos", false, "run the continuous chaos soak instead of the epoch demo")
		tenants   = flag.String("tenants", "", "run the multi-tenant control-plane soak over this topology JSON file (pool size comes from the file; honors -duration, -mtbf, -mttr, -burst-prob, -seed, -quiet, -json)")
		duration  = flag.Duration("duration", 30*time.Second, "chaos: soak length")
		mtbf      = flag.Duration("mtbf", 3*time.Second, "chaos: mean time between processor failures")
		mttr      = flag.Duration("mttr", 800*time.Millisecond, "chaos: mean time to repair")
		burstProb = flag.Float64("burst-prob", 0.1, "chaos: probability a fault becomes a correlated burst (up to k faults)")
		remapDL   = flag.Duration("remap-deadline", 0, "chaos: bound each remap; late solves roll back to the last valid pipeline (0 = unbounded)")
		quiet     = flag.Bool("quiet", false, "chaos: suppress the per-event log, print only the final report")
		jsonOut   = flag.Bool("json", false, "chaos: emit the soak report as JSON on stdout")
	)
	tf := telemetry.Register()
	flag.Parse()

	reg := obs.Default()
	if tf.SLO > 0 || tf.TraceDump != "" {
		// Both layers feed off the registry (SLO gauges, dump snapshots).
		reg.SetEnabled(true)
	}
	if err := tf.Activate(); err != nil {
		fatal(err)
	}
	if *addr != "" {
		reg.SetEnabled(true)
		srv := &http.Server{Addr: *addr, Handler: reg.Mux(tf.MuxOptions()...)}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fatal(fmt.Errorf("metrics server: %w", err))
			}
		}()
		fmt.Fprintf(os.Stderr, "gdpsim: serving /metrics, /debug/trace, /debug/spans, /slo on %s\n", *addr)
		if *interval > 0 {
			ticker := time.NewTicker(*interval)
			go func() {
				for range ticker.C {
					fmt.Fprintln(os.Stderr, summaryLine(reg))
				}
			}()
		}
	}

	if *tenants != "" {
		// The topology file declares its own pool; -n/-k are ignored.
		reg.SetEnabled(true)
		topo, err := plan.Load(*tenants)
		if err != nil {
			fatal(err)
		}
		sol, err := construct.Design(topo.Pool.N, topo.Pool.K)
		if err != nil {
			fatal(err)
		}
		cfg := chaos.MultiConfig{
			Topology:  topo,
			Seed:      *seed,
			Duration:  *duration,
			MTBF:      *mtbf,
			MTTR:      *mttr,
			BurstProb: *burstProb,
		}
		if !*quiet && !*jsonOut {
			cfg.Logf = func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			}
		}
		if !*jsonOut {
			fmt.Println(sol.Graph.Summary())
			fmt.Printf("multi-tenant soak: topology=%s tenants=%d seed=%d duration=%v mtbf=%v mttr=%v burst-prob=%.2f\n",
				*tenants, len(topo.Tenants), *seed, *duration, *mtbf, *mttr, *burstProb)
		}
		rep, err := chaos.MultiRun(sol, cfg)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			out := struct {
				OK      bool               `json:"ok"`
				Graph   string             `json:"graph"`
				Seed    int64              `json:"seed"`
				Report  *chaos.MultiReport `json:"report"`
				Metrics obs.Snapshot       `json:"metrics"`
			}{rep.OK(), sol.Graph.Name(), *seed, rep, reg.Snapshot()}
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(out); err != nil {
				fatal(err)
			}
		} else {
			fmt.Print(rep.Summary())
		}
		if *addr != "" {
			fmt.Fprintln(os.Stderr, summaryLine(reg))
		}
		healthy := tf.Report(os.Stderr)
		if !rep.OK() {
			fmt.Fprintf(os.Stderr, "gdpsim: multi-tenant soak FAILED (rerun with -tenants %s -seed %d to reproduce)\n", *tenants, *seed)
			os.Exit(1)
		}
		if !healthy {
			fmt.Fprintln(os.Stderr, "gdpsim: SLO objective breached")
			os.Exit(1)
		}
		return
	}

	sol, err := construct.Design(*n, *k)
	if err != nil {
		fatal(err)
	}

	if *chaosMode {
		// The soak's own counters (chaos_faults_injected_total, the frame-loss
		// gauge, remap downtime) are part of its contract: always observe.
		reg.SetEnabled(true)
		// SIGINT/SIGTERM end the soak early; the report still flushes.
		ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer cancel()
		cfg := chaos.Config{
			Seed:          *seed,
			Duration:      *duration,
			MTBF:          *mtbf,
			MTTR:          *mttr,
			BurstProb:     *burstProb,
			RemapDeadline: *remapDL,
			FrameSamples:  *size,
			Batch:         *batch,
			ChannelDepth:  *chanDep,
			Context:       ctx,
		}
		if !*quiet && !*jsonOut {
			cfg.Logf = func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			}
		}
		if !*jsonOut {
			fmt.Println(sol.Graph.Summary())
			fmt.Printf("chaos soak: seed=%d duration=%v mtbf=%v mttr=%v burst-prob=%.2f remap-deadline=%v\n",
				*seed, *duration, *mtbf, *mttr, *burstProb, *remapDL)
		}
		rep, err := chaos.Run(sol, nil, cfg)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			out := struct {
				OK      bool          `json:"ok"`
				Graph   string        `json:"graph"`
				Seed    int64         `json:"seed"`
				Report  *chaos.Report `json:"report"`
				Metrics obs.Snapshot  `json:"metrics"`
			}{rep.OK(), sol.Graph.Name(), *seed, rep, reg.Snapshot()}
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(out); err != nil {
				fatal(err)
			}
		} else {
			fmt.Print(rep.Summary())
		}
		if *addr != "" {
			fmt.Fprintln(os.Stderr, summaryLine(reg))
		}
		healthy := tf.Report(os.Stderr)
		if !rep.OK() {
			fmt.Fprintf(os.Stderr, "gdpsim: chaos soak FAILED (rerun with -chaos -seed %d to reproduce)\n", *seed)
			os.Exit(1)
		}
		if !healthy {
			fmt.Fprintln(os.Stderr, "gdpsim: SLO objective breached")
			os.Exit(1)
		}
		return
	}

	eng, err := pipeline.New(sol, []stages.Stage{
		stages.NewSubsample(2),
		&stages.Rescale{Gain: 1.5, Offset: 0.1},
		stages.NewFIR([]float64{0.25, 0.5, 0.25}),
		stages.NewQuantize(-16, 16, 256),
		stages.NewLZ78(4096),
	}, pipeline.WithBatchSize(*batch), pipeline.WithChannelDepth(*chanDep))
	if err != nil {
		fatal(err)
	}
	m, err := faults.ByName(*model)
	if err != nil {
		fatal(err)
	}
	inj := faults.NewInjector(m, sol.Graph, *k, *seed)
	gen := workload.Video(*size/4, *seed)

	fmt.Println(sol.Graph.Summary())
	fmt.Printf("%-6s %-7s %-13s %-9s %-14s %s\n", "epoch", "faults", "procs-in-use", "frames", "throughput", "remap")
	var lastRemap time.Duration
	for epoch := 0; ; epoch++ {
		batch := workload.Frames(gen, *frames, *size, epoch**frames)
		start := time.Now()
		out := eng.Process(batch)
		elapsed := time.Since(start)
		remap := eng.Metrics().RemapTime - lastRemap
		lastRemap = eng.Metrics().RemapTime
		fmt.Printf("%-6d %-7d %-13d %-9d %8.1f MB/s %10s\n",
			epoch, eng.Faults().Count(), eng.ProcessorsInUse(), len(out),
			float64(*frames**size*8)/1e6/elapsed.Seconds(), remap.Round(time.Microsecond))
		if *epochs > 0 && epoch+1 >= *epochs {
			break
		}
		node, ok := inj.Next()
		if !ok {
			if *epochs > 0 {
				continue // keep streaming (and serving metrics) until -epochs
			}
			break
		}
		if err := eng.Inject(node); err != nil {
			fatal(fmt.Errorf("fault at node %d: %w", node, err))
		}
	}
	fmt.Printf("done: %d frames, %d remaps, total remap time %v\n",
		eng.Metrics().FramesProcessed, eng.Metrics().Remaps, eng.Metrics().RemapTime.Round(time.Microsecond))
	if *addr != "" {
		fmt.Fprintln(os.Stderr, summaryLine(reg))
	}
	if !tf.Report(os.Stderr) {
		fmt.Fprintln(os.Stderr, "gdpsim: SLO objective breached")
		os.Exit(1)
	}
}

// summaryLine condenses the registry into one stderr line:
//
//	obs: frames=640 lat p50=1.2ms p99=3.4ms stall p99=80µs tput=120.0MB/s procs=23 repairs splice=1 full-remap=1
func summaryLine(reg *obs.Registry) string {
	s := reg.Snapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "obs: frames=%d", s.Counters["pipeline_frames_total"])
	if h, ok := s.Histograms["pipeline_frame_latency_ns"]; ok && h.Count > 0 {
		fmt.Fprintf(&b, " lat p50=%v p99=%v", time.Duration(h.P50).Round(time.Microsecond),
			time.Duration(h.P99).Round(time.Microsecond))
	}
	if h, ok := s.Histograms["pipeline_send_stall_ns"]; ok && h.Count > 0 {
		fmt.Fprintf(&b, " stall p99=%v", time.Duration(h.P99).Round(time.Microsecond))
	}
	if bps, ok := s.Gauges["pipeline_epoch_throughput_bps"]; ok && bps > 0 {
		fmt.Fprintf(&b, " tput=%.1fMB/s", float64(bps)/1e6)
	}
	fmt.Fprintf(&b, " procs=%d", s.Gauges["pipeline_procs_in_use"])
	// Per-tactic repair counts, sorted for a stable line.
	type kv struct {
		tactic string
		n      int64
	}
	var repairs []kv
	for key, v := range s.Counters {
		if v == 0 {
			continue
		}
		if tac, ok := strings.CutPrefix(key, `reconfig_repairs_total{tactic="`); ok {
			repairs = append(repairs, kv{strings.TrimSuffix(tac, `"}`), v})
		}
	}
	sort.Slice(repairs, func(i, j int) bool { return repairs[i].tactic < repairs[j].tactic })
	for i, r := range repairs {
		if i == 0 {
			b.WriteString(" repairs")
		}
		fmt.Fprintf(&b, " %s=%d", r.tactic, r.n)
	}
	return b.String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gdpsim:", err)
	os.Exit(1)
}
