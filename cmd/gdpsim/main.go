// Command gdpsim runs the streaming-pipeline fault-injection demo: a
// video-style stage chain mapped onto a gracefully degradable network,
// with faults arriving between epochs and the stream continuing on every
// healthy processor.
//
// Usage:
//
//	gdpsim -n 24 -k 4 -epoch-frames 128 -frame 4096
//	gdpsim -n 1000 -k 6 -model terminals-first
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gdpn/internal/construct"
	"gdpn/internal/faults"
	"gdpn/internal/pipeline"
	"gdpn/internal/stages"
	"gdpn/internal/workload"
)

func main() {
	var (
		n      = flag.Int("n", 24, "minimum pipeline processors")
		k      = flag.Int("k", 4, "fault tolerance")
		frames = flag.Int("epoch-frames", 128, "frames per epoch")
		size   = flag.Int("frame", 4096, "samples per frame")
		model  = flag.String("model", "processors-only", "fault model: uniform, processors-only, terminals-first")
		seed   = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	sol, err := construct.Design(*n, *k)
	if err != nil {
		fatal(err)
	}
	eng, err := pipeline.New(sol, []stages.Stage{
		stages.NewSubsample(2),
		&stages.Rescale{Gain: 1.5, Offset: 0.1},
		stages.NewFIR([]float64{0.25, 0.5, 0.25}),
		stages.NewQuantize(-16, 16, 256),
		stages.NewLZ78(4096),
	})
	if err != nil {
		fatal(err)
	}
	m, err := faults.ByName(*model)
	if err != nil {
		fatal(err)
	}
	inj := faults.NewInjector(m, sol.Graph, *k, *seed)
	gen := workload.Video(*size/4, *seed)

	fmt.Println(sol.Graph.Summary())
	fmt.Printf("%-6s %-7s %-13s %-9s %-14s %s\n", "epoch", "faults", "procs-in-use", "frames", "throughput", "remap")
	var lastRemap time.Duration
	for epoch := 0; ; epoch++ {
		batch := workload.Frames(gen, *frames, *size, epoch**frames)
		start := time.Now()
		out := eng.Process(batch)
		elapsed := time.Since(start)
		remap := eng.Metrics().RemapTime - lastRemap
		lastRemap = eng.Metrics().RemapTime
		fmt.Printf("%-6d %-7d %-13d %-9d %8.1f MB/s %10s\n",
			epoch, eng.Faults().Count(), eng.ProcessorsInUse(), len(out),
			float64(*frames**size*8)/1e6/elapsed.Seconds(), remap.Round(time.Microsecond))
		node, ok := inj.Next()
		if !ok {
			break
		}
		if err := eng.Inject(node); err != nil {
			fatal(fmt.Errorf("fault at node %d: %w", node, err))
		}
	}
	fmt.Printf("done: %d frames, %d remaps, total remap time %v\n",
		eng.Metrics().FramesProcessed, eng.Metrics().Remaps, eng.Metrics().RemapTime.Round(time.Microsecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gdpsim:", err)
	os.Exit(1)
}
