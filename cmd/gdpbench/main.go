// Command gdpbench regenerates the paper's evaluation artifacts: every
// figure, lemma, and theorem table from DESIGN.md's per-experiment index,
// each annotated with the paper's claim and the machine-checked outcome.
//
// Usage:
//
//	gdpbench                 # full run (exhaustive where feasible)
//	gdpbench -quick          # sampled verification, smaller grids
//	gdpbench -run F14        # one experiment
//	gdpbench -list
//	gdpbench -quick -json    # machine-readable result + metrics blob
//
// With -json the run emits a single JSON object on stdout: the experiment
// tables, the overall verdict, and a snapshot of the runtime metrics
// registry (solver timings, tier hit counters) — the seed format of the
// BENCH_*.json benchmark trajectory.
//
// SIGINT/SIGTERM cancel the run: in-flight verifications stop, the
// remaining experiments finish fast with interrupted reports, and the
// partial output — marked "interrupted" under -json — is still flushed.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"gdpn/internal/experiments"
	"gdpn/internal/obs"
	"gdpn/internal/store"
	"gdpn/internal/telemetry"
)

// jsonReport is the -json output schema.
type jsonReport struct {
	OK          bool                 `json:"ok"`
	Quick       bool                 `json:"quick"`
	Seed        int64                `json:"seed"`
	Interrupted bool                 `json:"interrupted,omitempty"`
	Experiments []*experiments.Table `json:"experiments"`
	Metrics     obs.Snapshot         `json:"metrics"`
}

func main() {
	var (
		quick   = flag.Bool("quick", false, "sampled verification, smaller grids")
		run     = flag.String("run", "", "run a single experiment id (see -list)")
		list    = flag.Bool("list", false, "list experiment ids")
		seed    = flag.Int64("seed", 1, "random seed")
		symm    = flag.Bool("symmetry", false, "orbit-reduced exhaustive verification inside every experiment")
		jsonOut = flag.Bool("json", false, "emit a machine-readable JSON blob (tables + metrics) on stdout")
		raceEng = flag.Bool("race-engines", false, "race the exact DP and the backtracker on hard fault sets in every verification")
		batch   = flag.Int("batch", 0, "transport batch size for the streaming experiments (0 = pipeline default)")
		storeP  = flag.String("store", "", "content-addressed verdict store file (created if absent): repeated gdpbench runs replay cached verdicts instead of re-solving")
		addr    = flag.String("metrics-addr", "", "serve /metrics, /debug/trace, /debug/spans, /slo on this address during the run")
	)
	tf := telemetry.Register()
	flag.Parse()
	if tf.SLO > 0 || tf.TraceDump != "" {
		obs.Default().SetEnabled(true)
	}
	if err := tf.Activate(); err != nil {
		fmt.Fprintln(os.Stderr, "gdpbench:", err)
		os.Exit(2)
	}
	if *addr != "" {
		obs.Default().SetEnabled(true)
		srv := &http.Server{Addr: *addr, Handler: obs.Default().Mux(tf.MuxOptions()...)}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "gdpbench: metrics server:", err)
				os.Exit(2)
			}
		}()
		fmt.Fprintf(os.Stderr, "gdpbench: serving /metrics, /debug/trace, /debug/spans, /slo on %s\n", *addr)
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	// SIGINT/SIGTERM cancel in-flight verifications; partial output flushes.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	cfg := experiments.Config{Quick: *quick, Seed: *seed, Symmetry: *symm,
		Race: *raceEng, Batch: *batch, Context: ctx}
	// closeStore flushes appended verdicts; called explicitly because the
	// exit paths below use os.Exit (which skips defers).
	closeStore := func() {}
	if *storeP != "" {
		st, err := store.Open(*storeP)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gdpbench:", err)
			os.Exit(2)
		}
		cfg.Store = st
		closeStore = func() {
			if err := st.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "gdpbench:", err)
				os.Exit(2)
			}
		}
	}
	if *jsonOut {
		// Collect runtime metrics (solver wall time, tier hit rates) along
		// with the tables.
		obs.Default().SetEnabled(true)
		var (
			tables []*experiments.Table
			ok     bool
		)
		if *run != "" {
			tbl, err := experiments.CollectOne(*run, cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gdpbench:", err)
				os.Exit(2)
			}
			tables, ok = []*experiments.Table{tbl}, tbl.OK
		} else {
			tables, ok = experiments.CollectAll(cfg)
		}
		closeStore()
		rep := jsonReport{OK: ok, Quick: *quick, Seed: *seed,
			Interrupted: ctx.Err() != nil,
			Experiments: tables, Metrics: obs.Default().Snapshot()}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "gdpbench:", err)
			os.Exit(2)
		}
		if !tf.Report(os.Stderr) || !ok {
			os.Exit(1)
		}
		return
	}
	if *run != "" {
		ok, err := experiments.RunOne(*run, cfg, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gdpbench:", err)
			os.Exit(2)
		}
		closeStore()
		if !tf.Report(os.Stderr) || !ok {
			os.Exit(1)
		}
		return
	}
	allOK := experiments.RunAll(cfg, os.Stdout)
	closeStore()
	if !allOK {
		fmt.Fprintln(os.Stderr, "gdpbench: at least one experiment mismatched its paper claim")
		os.Exit(1)
	}
	if !tf.Report(os.Stderr) {
		os.Exit(1)
	}
	fmt.Println("all experiments match the paper's claims")
}
