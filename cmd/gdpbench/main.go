// Command gdpbench regenerates the paper's evaluation artifacts: every
// figure, lemma, and theorem table from DESIGN.md's per-experiment index,
// each annotated with the paper's claim and the machine-checked outcome.
//
// Usage:
//
//	gdpbench                 # full run (exhaustive where feasible)
//	gdpbench -quick          # sampled verification, smaller grids
//	gdpbench -run F14        # one experiment
//	gdpbench -list
package main

import (
	"flag"
	"fmt"
	"os"

	"gdpn/internal/experiments"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "sampled verification, smaller grids")
		run   = flag.String("run", "", "run a single experiment id (see -list)")
		list  = flag.Bool("list", false, "list experiment ids")
		seed  = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	cfg := experiments.Config{Quick: *quick, Seed: *seed}
	if *run != "" {
		ok, err := experiments.RunOne(*run, cfg, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gdpbench:", err)
			os.Exit(2)
		}
		if !ok {
			os.Exit(1)
		}
		return
	}
	if !experiments.RunAll(cfg, os.Stdout) {
		fmt.Fprintln(os.Stderr, "gdpbench: at least one experiment mismatched its paper claim")
		os.Exit(1)
	}
	fmt.Println("all experiments match the paper's claims")
}
