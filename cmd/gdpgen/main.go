// Command gdpgen generates the paper's solution graphs and emits them as
// JSON or Graphviz DOT.
//
// Usage:
//
//	gdpgen -n 22 -k 4 -format dot > g22_4.dot
//	gdpgen -n 10 -k 2 -merge -format json
//	gdpgen -special 7,3
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"gdpn/internal/construct"
	"gdpn/internal/graph"
)

func main() {
	var (
		n       = flag.Int("n", 7, "minimum pipeline processors")
		k       = flag.Int("k", 2, "fault tolerance")
		format  = flag.String("format", "summary", "output format: summary, json, dot")
		merge   = flag.Bool("merge", false, "emit the merged fault-free-terminal model (§3)")
		special = flag.String("special", "", "emit a frozen special solution, e.g. 7,3")
	)
	flag.Parse()

	g, err := build(*n, *k, *merge, *special)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gdpgen:", err)
		os.Exit(1)
	}
	switch *format {
	case "summary":
		fmt.Println(g.Summary())
	case "json":
		data, err := json.Marshal(g)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gdpgen:", err)
			os.Exit(1)
		}
		os.Stdout.Write(data)
		fmt.Println()
	case "dot":
		if err := g.WriteDOT(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "gdpgen:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "gdpgen: unknown format %q\n", *format)
		os.Exit(2)
	}
}

func build(n, k int, merge bool, special string) (*graph.Graph, error) {
	var g *graph.Graph
	if special != "" {
		parts := strings.Split(special, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("-special wants n,k (e.g. 7,3)")
		}
		var sn, sk int
		if _, err := fmt.Sscanf(special, "%d,%d", &sn, &sk); err != nil {
			return nil, err
		}
		sg, err := construct.Special(sn, sk)
		if err != nil {
			return nil, err
		}
		g = sg
	} else {
		sol, err := construct.Design(n, k)
		if err != nil {
			return nil, err
		}
		g = sol.Graph
	}
	if merge {
		g = construct.Merge(g)
	}
	return g, nil
}
