package main

import (
	"testing"

	"gdpn/internal/graph"
	"gdpn/internal/verify"
)

func TestBuildDesign(t *testing.T) {
	g, err := build(10, 2, false, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.CheckStandard(g, 10, 2); err != nil {
		t.Fatal(err)
	}
}

func TestBuildMerged(t *testing.T) {
	g, err := build(6, 2, true, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.CheckMerged(g, 6, 2); err != nil {
		t.Fatal(err)
	}
}

func TestBuildSpecial(t *testing.T) {
	g, err := build(0, 0, false, "7,3")
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.CheckStandard(g, 7, 3); err != nil {
		t.Fatal(err)
	}
	// Merged special.
	m, err := build(0, 0, true, "6,2")
	if err != nil {
		t.Fatal(err)
	}
	if m.CountKind(graph.InputTerminal) != 1 {
		t.Fatal("merge not applied to special")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := build(9, 4, false, ""); err == nil {
		t.Fatal("open gap accepted")
	}
	if _, err := build(0, 0, false, "1,2,3"); err == nil {
		t.Fatal("malformed special accepted")
	}
	if _, err := build(0, 0, false, "x,y"); err == nil {
		t.Fatal("non-numeric special accepted")
	}
	if _, err := build(0, 0, false, "99,99"); err == nil {
		t.Fatal("unknown special accepted")
	}
}
