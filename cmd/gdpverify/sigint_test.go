//go:build !windows

package main_test

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestSIGINTFlushesPartialJSON builds the real binary, interrupts it in
// the middle of an exhaustive sweep far too large to finish, and checks
// that the partial JSON report still lands on stdout with the
// interrupted marker set — the contract the doc comment promises.
func TestSIGINTFlushesPartialJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and signals a real binary")
	}
	bin := filepath.Join(t.TempDir(), "gdpverify")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// ~C(220,4) fault sets: minutes of sweep, so the interrupt always
	// lands mid-run.
	cmd := exec.Command(bin, "-n", "200", "-k", "4", "-json")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	time.Sleep(400 * time.Millisecond)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatalf("signal: %v", err)
	}

	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		// Interrupted run reports !OK, so a non-zero exit is expected.
		if err != nil {
			if _, ok := err.(*exec.ExitError); !ok {
				t.Fatalf("wait: %v\nstderr: %s", err, stderr.Bytes())
			}
		}
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("binary did not exit within 30s of SIGINT\nstderr: %s", stderr.Bytes())
	}

	var out struct {
		OK     bool `json:"ok"`
		Report struct {
			Interrupted bool `json:"interrupted"`
		} `json:"report"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &out); err != nil {
		t.Fatalf("stdout is not a JSON report: %v\n%s", err, stdout.Bytes())
	}
	if !out.Report.Interrupted {
		t.Fatalf("report not marked interrupted:\n%s", stdout.Bytes())
	}
	if out.OK {
		t.Fatal("interrupted run reported ok=true")
	}
}
