// Command gdpverify machine-checks k-graceful degradability of a designed
// solution graph, exhaustively or by random sampling, and can emit or
// replay solver-independent certificate files.
//
// Usage:
//
//	gdpverify -n 22 -k 4                  # exhaustive: a proof for this instance
//	gdpverify -n 200 -k 6 -trials 100000  # randomized at scale
//	gdpverify -n 10 -k 2 -merge           # merged model, processor faults only
//	gdpverify -n 10 -k 2 -certify g.certs # write one witness per fault set
//	gdpverify -n 10 -k 2 -replay g.certs  # re-check witnesses (no solver trust)
//	gdpverify -n 22 -k 4 -symmetry        # orbit-reduced exhaustive proof
//	gdpverify -n 22 -k 4 -store v.gdps    # incremental: replay cached verdicts, append new ones
//	gdpverify -n 22 -k 4 -json            # machine-readable report + metrics
//	gdpverify -n 22 -k 4 -race-engines    # race DP vs backtracker on hard sets
//	gdpverify -n 22 -k 4 -fail-fast       # stop at the first counterexample
//
// SIGINT/SIGTERM cancel the run: workers stop mid-sweep (abandoning any
// in-flight solve) and the partial report — marked "interrupted" — is
// still printed, or flushed as JSON under -json.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"gdpn/internal/construct"
	"gdpn/internal/embed"
	"gdpn/internal/graph"
	"gdpn/internal/obs"
	"gdpn/internal/store"
	"gdpn/internal/telemetry"
	"gdpn/internal/verify"
)

func main() {
	var (
		n        = flag.Int("n", 10, "minimum pipeline processors")
		k        = flag.Int("k", 2, "fault tolerance")
		trials   = flag.Int("trials", 0, "random trials (0 = exhaustive)")
		seed     = flag.Int64("seed", 1, "random seed")
		merge    = flag.Bool("merge", false, "verify the merged model (processor faults only)")
		work     = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		certify  = flag.String("certify", "", "write a certificate file (one witness per fault set)")
		replay   = flag.String("replay", "", "replay a certificate file instead of searching")
		symm     = flag.Bool("symmetry", false, "exhaustive mode: solve one representative per automorphism orbit of fault sets")
		jsonOut  = flag.Bool("json", false, "emit a machine-readable JSON blob (report + metrics) on stdout")
		raceEng  = flag.Bool("race-engines", false, "race the exact DP and the backtracker on hard fault sets (verdict-identical, often faster)")
		failFast = flag.Bool("fail-fast", false, "exhaustive mode: stop the sweep at the first counterexample")
		summary  = flag.String("summary", "", "write the canonical verdict summary to this file (diffable against gdpfleet serve -summary)")
		storeP   = flag.String("store", "", "content-addressed verdict store file (created if absent): sweeps replay cached verdicts instead of re-solving and append new ones; -certify reuses a cached certificate set when it replays cleanly")
		addr     = flag.String("metrics-addr", "", "serve /metrics, /debug/trace, /debug/spans, /slo on this address during the run")
	)
	tf := telemetry.Register()
	flag.Parse()
	if tf.SLO > 0 || tf.TraceDump != "" {
		obs.Default().SetEnabled(true)
	}
	if err := tf.Activate(); err != nil {
		fatal(err)
	}
	if *addr != "" {
		obs.Default().SetEnabled(true)
		srv := &http.Server{Addr: *addr, Handler: obs.Default().Mux(tf.MuxOptions()...)}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fatal(fmt.Errorf("metrics server: %w", err))
			}
		}()
		fmt.Fprintf(os.Stderr, "gdpverify: serving /metrics, /debug/trace, /debug/spans, /slo on %s\n", *addr)
	}
	if *certify != "" || *replay != "" {
		certMode(*n, *k, *certify, *replay, *storeP)
		return
	}

	// SIGINT/SIGTERM cancel the sweep; the partial report still flushes.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	if *jsonOut {
		// Collect solver metrics (embed_find_ns, tier counters) for the blob.
		obs.Default().SetEnabled(true)
	}
	sol, err := construct.Design(*n, *k)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gdpverify:", err)
		os.Exit(1)
	}
	g := sol.Graph
	opts := verify.Options{
		Workers:         *work,
		Solver:          embed.Options{Layout: sol.Layout, Race: *raceEng},
		ExploitSymmetry: *symm,
		Context:         ctx,
		FailFast:        *failFast,
	}
	if *merge {
		g = construct.Merge(g)
		opts.Universe = verify.ProcessorsOnly
		opts.Solver = embed.Options{Race: *raceEng}
	}
	var st *store.Store
	if *storeP != "" {
		st, err = store.Open(*storeP)
		if err != nil {
			fatal(err)
		}
		opts.Store = st
	}
	if !*jsonOut {
		fmt.Println(g.Summary())
	}
	var rep *verify.Report
	if *trials > 0 {
		rep = verify.Random(g, *k, *trials, *seed, opts)
	} else {
		rep = verify.Exhaustive(g, *k, opts)
	}
	// Close (flushing appends) before any exit path below.
	if st != nil {
		if err := st.Close(); err != nil {
			fatal(err)
		}
	}
	if *summary != "" {
		if err := os.WriteFile(*summary, []byte(rep.VerdictSummary()+"\n"), 0o644); err != nil {
			fatal(err)
		}
	}
	if *jsonOut {
		out := struct {
			OK      bool           `json:"ok"`
			Graph   string         `json:"graph"`
			K       int            `json:"k"`
			Trials  int            `json:"trials"`
			Merge   bool           `json:"merge"`
			Report  *verify.Report `json:"report"`
			Metrics obs.Snapshot   `json:"metrics"`
		}{rep.OK(), g.Name(), *k, *trials, *merge, rep, obs.Default().Snapshot()}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
		if !tf.Report(os.Stderr) || !rep.OK() {
			os.Exit(1)
		}
		return
	}
	fmt.Println(rep.String())
	for _, f := range rep.Failures {
		fmt.Printf("  counterexample: %v (%s)\n", f.Nodes, f.Err)
	}
	for _, u := range rep.Unknowns {
		fmt.Printf("  unknown: %v (%s)\n", u.Nodes, u.Err)
	}
	if !tf.Report(os.Stderr) || !rep.OK() {
		os.Exit(1)
	}
}

// certMode writes or replays a certificate file for Design(n, k). With a
// store attached, -certify caches the certificate-set JSON as a blob on
// the graph's slot and reuses it on later runs — but only after a full
// Replay against the freshly constructed graph re-establishes it, per
// the store's untrusted-hint model.
func certMode(n, k int, certifyPath, replayPath, storePath string) {
	sol, err := construct.Design(n, k)
	if err != nil {
		fatal(err)
	}
	if certifyPath != "" {
		var st *store.Store
		var ref *store.GraphRef
		blobName := fmt.Sprintf("certset/k%d", k)
		if storePath != "" {
			if st, err = store.Open(storePath); err != nil {
				fatal(err)
			}
			ref = st.Register(sol.Graph)
		}
		cs := cachedCertSet(ref, blobName, sol.Graph, k)
		if cs == nil {
			if cs, err = verify.Certify(sol.Graph, k, embed.Options{Layout: sol.Layout}); err != nil {
				fatal(err)
			}
			if ref != nil {
				var buf bytes.Buffer
				if err := cs.Write(&buf); err != nil {
					fatal(err)
				}
				ref.PutBlob(blobName, buf.Bytes())
			}
		}
		if st != nil {
			if err := st.Close(); err != nil {
				fatal(err)
			}
		}
		f, err := os.Create(certifyPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := cs.Write(f); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d certificates for %s to %s\n", len(cs.Certs), sol.Graph.Name(), certifyPath)
		return
	}
	f, err := os.Open(replayPath)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	cs, err := verify.ReadCertificates(f)
	if err != nil {
		fatal(err)
	}
	if err := cs.Replay(sol.Graph); err != nil {
		fatal(err)
	}
	fmt.Printf("replayed %d certificates for %s: GD(G, %d) re-established without a solver\n",
		len(cs.Certs), sol.Graph.Name(), k)
}

// cachedCertSet returns the store's cached certificate set for the slot
// if it decodes AND replays cleanly against g; any failure (missing blob,
// corrupt JSON, failed replay) returns nil and the caller re-certifies.
func cachedCertSet(ref *store.GraphRef, name string, g *graph.Graph, k int) *verify.CertificateSet {
	if ref == nil {
		return nil
	}
	b, ok := ref.Blob(name)
	if !ok {
		return nil
	}
	cs, err := verify.ReadCertificates(bytes.NewReader(b))
	if err != nil || cs.K != k || cs.Replay(g) != nil {
		return nil
	}
	fmt.Printf("reusing %d cached certificates (replayed cleanly from store)\n", len(cs.Certs))
	return cs
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gdpverify:", err)
	os.Exit(1)
}
