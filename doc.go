// Package gdpn is a Go reproduction of Robert Cypher and Ambrose K. Laing,
// "Gracefully Degradable Pipeline Networks", Proc. 11th International
// Parallel Processing Symposium (IPPS), 1997, pp. 55–64.
//
// A k-gracefully-degradable pipeline network is a node-labeled graph of
// processors, input terminals, and output terminals such that for EVERY
// fault set of at most k nodes, the survivor contains a pipeline — a path
// from a healthy input terminal to a healthy output terminal through every
// healthy processor. This module implements all of the paper's
// constructions (node- and degree-optimal), the reconfiguration solvers
// that find pipelines after faults, exhaustive and randomized verifiers,
// the computer search behind the paper's special solutions and
// impossibility lemma, prior-work baselines, and a concurrent streaming
// runtime exercising the motivating signal-processing workloads.
//
// Entry points:
//
//   - internal/core: Design / Inject / Pipeline — the top-level API
//   - internal/construct: the paper's constructions (§3)
//   - internal/embed: exact, backtracking, and structured solvers
//   - internal/verify: machine proofs of GD(G, k) and optimality checks
//   - internal/search: Lemma 3.14 re-proof and special-solution derivation
//   - internal/pipeline + internal/stages: the streaming runtime
//   - internal/experiments: regenerators for every figure/theorem table
//
// The benchmarks in bench_test.go regenerate each experiment; see
// DESIGN.md for the per-experiment index and EXPERIMENTS.md for the
// paper-vs-measured record.
package gdpn
