GO ?= go

.PHONY: all build test race bench bench-snapshot vet

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem .

# bench-snapshot regenerates the committed benchmark baseline: the quick
# experiment tables plus the runtime metrics registry (solver timings,
# tier and warm-start hit counters, orbit-pruning totals) as one JSON
# blob. Compare a fresh snapshot against BENCH_baseline.json to spot
# verdict or performance regressions; commit the new file when a change
# intentionally moves the numbers.
bench-snapshot:
	$(GO) run ./cmd/gdpbench -quick -symmetry -json > BENCH_baseline.json
	@echo "wrote BENCH_baseline.json"
