GO ?= go

.PHONY: all build test race bench bench-snapshot bench-check bench-store vet soak

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem .

# bench-snapshot regenerates the committed benchmark baseline: the quick
# experiment tables plus the runtime metrics registry (solver timings,
# tier and warm-start hit counters, orbit-pruning totals) as one JSON
# blob. Compare a fresh snapshot against BENCH_baseline.json to spot
# verdict or performance regressions; commit the new file when a change
# intentionally moves the numbers.
bench-snapshot:
	$(GO) run ./cmd/gdpbench -quick -symmetry -json > BENCH_baseline.json
	@echo "wrote BENCH_baseline.json"

# bench-check runs the suite fresh and diffs it against the committed
# baseline — the same gate CI applies (>25% slowdown above the 100ms
# noise floor, >2x allocs/op growth above the 10k-alloc floor, or any
# verdict flip, fails).
bench-check:
	$(GO) run ./cmd/gdpbench -quick -symmetry -json > /tmp/gdp_bench_current.json
	$(GO) run ./cmd/benchdiff -max-ratio 1.25 -max-alloc-ratio 2 BENCH_baseline.json /tmp/gdp_bench_current.json

# bench-store snapshots the incremental re-verification win: the ST
# experiment's cold-vs-warm sweep timings (a cold symmetry-reduced sweep
# populates a fresh store; the warm re-sweep replays it and must be ≥5x
# faster on G3,5 with a byte-identical verdict). Commit the refreshed
# BENCH_store.txt when a change intentionally moves the numbers.
bench-store:
	$(GO) run ./cmd/gdpbench -run ST | tee BENCH_store.txt
	@echo "wrote BENCH_store.txt"

# soak is the local version of the nightly chaos workflow: continuous
# traffic under stochastic fault/repair churn with the race detector on;
# fails on any lost/duplicated frame or invalid post-remap pipeline.
soak:
	$(GO) run -race ./cmd/gdpsim -chaos -n 12 -k 3 -seed 1 -duration 30s -quiet
