// Scale and endurance tests: large-n construction and reconfiguration,
// concurrent solver pools, and a long fault/repair soak on the streaming
// runtime. Skipped under -short.
package gdpn_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"gdpn/internal/bitset"
	"gdpn/internal/construct"
	"gdpn/internal/core"
	"gdpn/internal/embed"
	"gdpn/internal/pipeline"
	"gdpn/internal/stages"
	"gdpn/internal/verify"
)

func TestStressLargeNetworkReconfiguration(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	// 100k-stage pipeline tolerating 8 faults: build once, reconfigure
	// under many random fault sets, certificate-check everything.
	g, lay, err := construct.Asymptotic(100_000, 8)
	if err != nil {
		t.Fatal(err)
	}
	s := embed.NewSolver(g, embed.Options{Layout: lay})
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		faults := bitset.New(g.NumNodes())
		for faults.Count() < 8 {
			faults.Add(rng.Intn(g.NumNodes()))
		}
		r := s.Find(faults)
		if !r.Found {
			t.Fatalf("trial %d: no pipeline (unknown=%v)", trial, r.Unknown)
		}
		if err := verify.CheckPipeline(g, faults, r.Pipeline); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
	st := s.Stats()
	if st.Planner != st.Total() {
		t.Logf("planner handled %d/%d (rest fell through)", st.Planner, st.Total())
	}
}

func TestStressConcurrentSolvers(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	// One shared graph, many goroutines with private solvers — exercises
	// the concurrent-reader guarantee of the graph substrate.
	sol, err := construct.Design(200, 6)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := embed.NewSolver(sol.Graph, embed.Options{Layout: sol.Layout})
			rng := rand.New(rand.NewSource(int64(w)))
			for trial := 0; trial < 300; trial++ {
				faults := bitset.New(sol.Graph.NumNodes())
				for faults.Count() < rng.Intn(7) {
					faults.Add(rng.Intn(sol.Graph.NumNodes()))
				}
				r := s.Find(faults)
				if !r.Found {
					errs <- fmt.Errorf("worker %d trial %d: not found", w, trial)
					return
				}
				if err := verify.CheckPipeline(sol.Graph, faults, r.Pipeline); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestStressFaultRepairSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	// Long soak: inject up to k faults, repair some, inject again — the
	// network must always produce a full-coverage pipeline while within
	// budget.
	nw, err := core.Design(50, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for step := 0; step < 2000; step++ {
		if nw.FaultCount() < 4 && rng.Intn(2) == 0 {
			v := rng.Intn(nw.Graph().NumNodes())
			if !nw.Faults().Contains(v) {
				if err := nw.Inject(v); err != nil {
					t.Fatal(err)
				}
			}
		} else if nw.FaultCount() > 0 {
			f := nw.Faults().Slice()
			if err := nw.Repair(f[rng.Intn(len(f))]); err != nil {
				t.Fatal(err)
			}
		}
		p, err := nw.Pipeline()
		if err != nil {
			t.Fatalf("step %d (faults %v): %v", step, nw.Faults().Slice(), err)
		}
		if len(p)-2 != nw.HealthyProcessors() {
			t.Fatalf("step %d: coverage %d != healthy %d", step, len(p)-2, nw.HealthyProcessors())
		}
	}
}

func TestStressStreamingSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	sol, err := construct.Design(30, 4)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := pipeline.New(sol, []stages.Stage{
		stages.NewSubsample(2),
		stages.NewFIR([]float64{0.3, 0.4, 0.3}),
		stages.NewQuantize(-8, 8, 128),
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	total := 0
	for epoch := 0; epoch < 40; epoch++ {
		frames := make([]pipeline.Frame, 8)
		for i := range frames {
			data := make([]float64, 256)
			for j := range data {
				data[j] = rng.NormFloat64()
			}
			frames[i] = pipeline.Frame{Seq: total + i, Data: data}
		}
		out := eng.Process(frames)
		if len(out) != len(frames) {
			t.Fatalf("epoch %d: lost frames", epoch)
		}
		total += len(out)
		// Every 10th epoch, inject a processor fault if budget remains.
		if epoch%10 == 9 && eng.Faults().Count() < 4 {
			victims := eng.Pipeline()
			v := victims[1+rng.Intn(len(victims)-2)]
			if err := eng.Inject(v); err != nil {
				t.Fatalf("epoch %d: %v", epoch, err)
			}
		}
	}
	if eng.Metrics().FramesProcessed != int64(total) || total != 320 {
		t.Fatalf("metrics %+v, total %d", eng.Metrics(), total)
	}
}
