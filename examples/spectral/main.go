// Spectral: a frequency-domain denoising pipeline (FFT → spectral gate →
// IFFT → quantize) running on a gracefully degradable network while
// communication LINKS — not just processors — fail. Link faults are
// reduced to node faults per Hayes' model (§2), so the k-GD guarantee
// covers them; the demo measures signal-to-noise improvement before and
// after each fault.
//
//	go run ./examples/spectral
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"gdpn/internal/construct"
	"gdpn/internal/faults"
	"gdpn/internal/pipeline"
	"gdpn/internal/stages"
)

func main() {
	const n, k = 16, 4
	const frameSize = 256

	sol, err := construct.Design(n, k)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := pipeline.New(sol, []stages.Stage{
		stages.NewFFT(),
		&stages.SpectralGate{Threshold: 40},
		stages.NewIFFT(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sol.Graph.Summary())

	rng := rand.New(rand.NewSource(99))
	linkRng := rand.New(rand.NewSource(7))
	brokenLinks := 0
	for epoch := 0; epoch <= k; epoch++ {
		// A two-tone signal buried in noise.
		clean := make([]float64, frameSize)
		noisy := make([]float64, frameSize)
		for i := range clean {
			clean[i] = 8*math.Sin(2*math.Pi*6*float64(i)/frameSize) +
				4*math.Cos(2*math.Pi*17*float64(i)/frameSize)
			noisy[i] = clean[i] + rng.NormFloat64()
		}
		out := eng.Process([]pipeline.Frame{{Seq: epoch, Data: noisy}})
		den := out[0].Data
		fmt.Printf("epoch %d: faults=%d procs=%d  SNR %5.1f dB → %5.1f dB\n",
			epoch, eng.Faults().Count(), eng.ProcessorsInUse(),
			snr(clean, noisy), snr(clean, den[:frameSize]))

		if epoch == k {
			break
		}
		// Break a random healthy link; Hayes' reduction turns it into one
		// node fault, which the engine repairs.
		for {
			links := faults.RandomLinks(linkRng, sol.Graph, 1)
			nodeFaults, err := faults.LinksToNodes(sol.Graph, links)
			if err != nil {
				log.Fatal(err)
			}
			victim := nodeFaults.Slice()
			if len(victim) == 0 || eng.Faults().Contains(victim[0]) {
				continue
			}
			if err := eng.Inject(victim[0]); err != nil {
				log.Fatalf("link (%d,%d) → node %d: %v", links[0].U, links[0].V, victim[0], err)
			}
			brokenLinks++
			fmt.Printf("  !! link (%d,%d) broke → endpoint %d retired (Hayes reduction), tactics so far: %+v\n",
				links[0].U, links[0].V, victim[0], eng.Metrics().Repairs)
			break
		}
	}
	fmt.Printf("denoising survived %d broken links using all %d healthy processors\n",
		brokenLinks, eng.ProcessorsInUse())
}

// snr returns the signal-to-noise ratio of x against the reference, in dB.
func snr(ref, x []float64) float64 {
	var sig, noise float64
	for i := range ref {
		sig += ref[i] * ref[i]
		d := x[i] - ref[i]
		noise += d * d
	}
	if noise == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(sig/noise)
}
