// Videopipeline: the paper's §1 motivating workload — an asymmetric
// video-compression chain (subsample → rescale → FIR smoothing → quantize
// → LZ78 dictionary compression) streaming across a gracefully degradable
// network while processors die mid-stream. The compressed output of every
// epoch is decoded and byte-compared against a golden sequential run, so
// the demo proves the stream stays CORRECT across remaps, not just alive.
//
//	go run ./examples/videopipeline
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"gdpn/internal/construct"
	"gdpn/internal/faults"
	"gdpn/internal/obs"
	"gdpn/internal/pipeline"
	"gdpn/internal/stages"
)

func stageChain() []stages.Stage {
	return []stages.Stage{
		stages.NewSubsample(2),                    // decimation
		&stages.Rescale{Gain: 1.4, Offset: 0.2},   // contrast/brightness
		stages.NewFIR([]float64{0.25, 0.5, 0.25}), // smoothing filter
		stages.NewQuantize(-16, 16, 256),          // to 8-bit symbols
		stages.NewLZ78(8192),                      // textual substitution
	}
}

func main() {
	const n, k = 20, 3
	const epochs, framesPerEpoch, frameSize = 4, 48, 2048

	// Instrument the run so each fault prints measured degradation, not
	// just "still running".
	obs.Default().SetEnabled(true)

	sol, err := construct.Design(n, k)
	if err != nil {
		log.Fatal(err)
	}
	live, err := pipeline.New(sol, stageChain())
	if err != nil {
		log.Fatal(err)
	}
	// Golden reference: same stages, no faults, sequential execution.
	golden, err := pipeline.New(sol, stageChain())
	if err != nil {
		log.Fatal(err)
	}

	inj := faults.NewInjector(faults.ProcessorsOnly{}, sol.Graph, k, 42)
	rng := rand.New(rand.NewSource(42))

	fmt.Println(sol.Graph.Summary())
	totalIn, totalOut := 0, 0
	for epoch := 0; epoch < epochs; epoch++ {
		batch := make([]pipeline.Frame, framesPerEpoch)
		for i := range batch {
			data := make([]float64, frameSize)
			for j := range data {
				data[j] = rng.NormFloat64() * 5
			}
			batch[i] = pipeline.Frame{Seq: epoch*framesPerEpoch + i, Data: data}
		}
		ref := golden.ProcessSequential(cloneFrames(batch))

		start := time.Now()
		out := live.Process(batch)
		elapsed := time.Since(start)

		if !framesEqual(out, ref) {
			log.Fatalf("epoch %d: concurrent faulty-pipeline output diverged from golden run", epoch)
		}
		var inSamples, outSamples int
		for i := range batch {
			inSamples += frameSize
			outSamples += len(out[i].Data)
		}
		totalIn += inSamples
		totalOut += outSamples
		fmt.Printf("epoch %d: faults=%d procs=%d  %d frames in %v  compression %d→%d samples (%.2fx)\n",
			epoch, live.Faults().Count(), live.ProcessorsInUse(), len(out),
			elapsed.Round(time.Millisecond), inSamples, outSamples,
			float64(inSamples)/float64(outSamples))

		if node, ok := inj.Next(); ok {
			if err := live.Inject(node); err != nil {
				log.Fatalf("inject: %v", err)
			}
			fmt.Printf("  !! processor %d failed — remapped onto %d processors in %v\n",
				node, live.ProcessorsInUse(), live.Metrics().RemapTime.Round(time.Microsecond))
			printMetrics()
		}
	}
	fmt.Printf("stream stayed byte-identical to the golden run across %d faults; overall compression %.2fx\n",
		live.Faults().Count(), float64(totalIn)/float64(totalOut))
}

// printMetrics shows the numeric shape of the degradation after a fault:
// frame-latency quantiles, epoch throughput, and how the repairs were
// accomplished (per-tactic counts from the obs registry).
func printMetrics() {
	s := obs.Default().Snapshot()
	if h, ok := s.Histograms["pipeline_frame_latency_ns"]; ok && h.Count > 0 {
		fmt.Printf("     frame latency p50=%v p90=%v p99=%v max=%v\n",
			time.Duration(h.P50).Round(time.Microsecond),
			time.Duration(h.P90).Round(time.Microsecond),
			time.Duration(h.P99).Round(time.Microsecond),
			time.Duration(h.Max).Round(time.Microsecond))
	}
	if bps := s.Gauges["pipeline_epoch_throughput_bps"]; bps > 0 {
		fmt.Printf("     epoch throughput %.1f MB/s over %d processors\n",
			float64(bps)/1e6, s.Gauges["pipeline_procs_in_use"])
	}
	for _, tactic := range []string{"splice", "rewire", "endpoint-swap", "insert", "full-remap", "no-change"} {
		key := fmt.Sprintf("reconfig_repairs_total{tactic=%q}", tactic)
		if c := s.Counters[key]; c > 0 {
			fmt.Printf("     repairs via %s: %d\n", tactic, c)
		}
	}
}

func cloneFrames(in []pipeline.Frame) []pipeline.Frame {
	out := make([]pipeline.Frame, len(in))
	for i, f := range in {
		out[i] = pipeline.Frame{Seq: f.Seq, Data: append([]float64(nil), f.Data...)}
	}
	return out
}

func framesEqual(a, b []pipeline.Frame) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Seq != b[i].Seq || len(a[i].Data) != len(b[i].Data) {
			return false
		}
		for j := range a[i].Data {
			if a[i].Data[j] != b[i].Data[j] {
				return false
			}
		}
	}
	return true
}
