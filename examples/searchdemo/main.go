// Searchdemo: reruns the paper's §3.3 computer checking live. First the
// impossibility direction — a complete enumeration re-proving Lemma 3.14
// (no degree-4 standard solution for n=5, k=2) — then the existence
// direction: deriving a fresh, exhaustively verified special solution
// G6,2 from scratch and printing its processor subgraph.
//
//	go run ./examples/searchdemo
package main

import (
	"fmt"
	"log"
	"time"

	"gdpn/internal/graph"
	"gdpn/internal/search"
	"gdpn/internal/verify"
)

func main() {
	// Impossibility: Lemma 3.14 by machine.
	spec := search.Spec{N: 5, K: 2, MaxDegree: 4}
	start := time.Now()
	res := search.Exhaustive(spec, 0)
	fmt.Printf("Lemma 3.14 %s: enumerated %d processor graphs, %d full candidates in %v\n",
		spec, res.ProcGraphs, res.Candidates, time.Since(start).Round(time.Millisecond))
	if !res.None() {
		log.Fatalf("found %d solutions — contradicts Lemma 3.14!", len(res.Solutions))
	}
	fmt.Println("  → no candidate survives: the lemma's case analysis is machine-confirmed")

	// Existence: derive a special solution the way the authors did.
	spec = search.Spec{N: 6, K: 2, MaxDegree: 4}
	start = time.Now()
	g, err := search.Find(spec, time.Now().UnixNano()%1000+1, search.FindOptions{Restarts: 5000, Moves: 1000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nspecial solution %s derived in %v:\n  %s\n", spec,
		time.Since(start).Round(time.Millisecond), g.Summary())
	fmt.Println("  processor subgraph edges:")
	for _, a := range g.Processors() {
		for _, b := range g.Processors() {
			if a < b && g.HasEdge(a, b) {
				fmt.Printf("    %s — %s\n", graph.NodeName(g, a), graph.NodeName(g, b))
			}
		}
	}
	rep := verify.Exhaustive(g, spec.K, verify.Options{})
	fmt.Printf("  verification: %s\n", rep.String())
	if !rep.OK() {
		log.Fatal("verification failed")
	}
}
