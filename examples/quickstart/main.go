// Quickstart: design a gracefully degradable pipeline network, kill nodes,
// and watch the pipeline re-form over every remaining healthy processor.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gdpn/internal/core"
	"gdpn/internal/graph"
)

func main() {
	// A network guaranteeing a 7-processor pipeline through up to 2 faults
	// anywhere — including in the I/O terminals themselves.
	nw, err := core.Design(7, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(nw.Graph().Summary())

	p, err := nw.Pipeline()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault-free (%d processors): %s\n", len(p)-2, p.String(nw.Graph()))

	// Kill a processor in the middle of the pipeline...
	victim := p[len(p)/2]
	if err := nw.Inject(victim); err != nil {
		log.Fatal(err)
	}
	p, err = nw.Pipeline()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after losing %s (%d processors): %s\n",
		graph.NodeName(nw.Graph(), victim), len(p)-2, p.String(nw.Graph()))

	// ...and an input terminal.
	ti := nw.Graph().InputTerminals()[0]
	if err := nw.Inject(ti); err != nil {
		log.Fatal(err)
	}
	p, err = nw.Pipeline()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after also losing %s (%d processors): %s\n",
		graph.NodeName(nw.Graph(), ti), len(p)-2, p.String(nw.Graph()))

	fmt.Printf("graceful: pipeline always uses all %d healthy processors\n", nw.HealthyProcessors())
}
