// Degradation: quantifies "graceful" (§2). As faults accumulate, the
// paper's networks keep every healthy processor in the pipeline, while a
// spare-based non-graceful scheme keeps running exactly n and wastes the
// rest. The example sweeps f = 0..k and prints both utilization curves,
// plus the degree cost of naively labeling Hayes's unlabeled circulant.
//
//	go run ./examples/degradation
package main

import (
	"fmt"
	"log"
	"math/rand"

	"gdpn/internal/baseline"
	"gdpn/internal/bitset"
	"gdpn/internal/construct"
	"gdpn/internal/embed"
	"gdpn/internal/verify"
)

func main() {
	const n, k = 16, 4
	sol, err := construct.Design(n, k)
	if err != nil {
		log.Fatal(err)
	}
	g := sol.Graph
	solver := embed.NewSolver(g, embed.Options{Layout: sol.Layout})
	rng := rand.New(rand.NewSource(7))
	procs := g.Processors()

	fmt.Println(g.Summary())
	fmt.Printf("%-8s %-9s %-16s %-16s %s\n", "faults", "healthy", "graceful (util)", "spare (util)", "wasted by spares")
	fs := bitset.New(g.NumNodes())
	for f := 0; f <= k; f++ {
		if f > 0 {
			for {
				v := procs[rng.Intn(len(procs))]
				if !fs.Contains(v) {
					fs.Add(v)
					break
				}
			}
		}
		healthy := n + k - f

		res := solver.Find(fs)
		if !res.Found {
			log.Fatalf("graceful pipeline missing at f=%d", f)
		}
		if err := verify.CheckPipeline(g, fs, res.Pipeline); err != nil {
			log.Fatal(err)
		}
		gUsed := len(res.Pipeline) - 2

		sp, ok := baseline.FindFixedPipeline(g, fs, n, 20_000_000)
		if !ok {
			log.Fatalf("spare-based pipeline missing at f=%d", f)
		}
		sUsed := len(sp) - 2

		fmt.Printf("%-8d %-9d %2d (%.3f)       %2d (%.3f)       %d processors idle\n",
			f, healthy, gUsed, baseline.Utilization(healthy, gUsed),
			sUsed, baseline.Utilization(healthy, sUsed), healthy-sUsed)
	}

	naive := baseline.NaiveTerminals(baseline.HayesCycle(n, k), k)
	fmt.Printf("\ndegree comparison: paper construction %d (optimal bound %d); naive Hayes labeling %d\n",
		sol.MaxDegree, construct.DegreeLowerBound(n, k), naive.MaxProcessorDegree())
}
