// Package telemetry bundles the observability flags shared by the
// long-running CLIs (gdpsim, gdpverify, gdpbench): -trace-dump arms the
// anomaly flight recorder (and with it span tracing), -slo sets the
// remap-latency objective for the health layer, and -pprof opts the
// profiling handlers onto the metrics mux. The package exists so the
// CLIs stay one Register/Activate call each, and so obs — which must not
// import the span layer — never has to know these handlers exist: they
// are mounted through obs.MuxOption.
package telemetry

import (
	"flag"
	"fmt"
	"io"
	"time"

	"gdpn/internal/obs"
	"gdpn/internal/obs/span"
)

// Flags is the parsed observability flag bundle.
type Flags struct {
	// Pprof mounts net/http/pprof on the metrics mux (with -metrics-addr).
	Pprof bool
	// TraceDump is the flight-recorder dump directory ("" = disarmed).
	TraceDump string
	// SLO is the remap-latency p99 objective (0 = health layer off).
	SLO time.Duration
}

// Register installs -pprof, -trace-dump, and -slo on the default flag set.
// Call before flag.Parse.
func Register() *Flags {
	f := &Flags{}
	flag.BoolVar(&f.Pprof, "pprof", false,
		"mount net/http/pprof under /debug/pprof/ on the metrics mux (requires -metrics-addr)")
	flag.StringVar(&f.TraceDump, "trace-dump", "",
		"arm the anomaly flight recorder: enable span tracing and write self-contained span+metric dumps into this directory when an anomaly trips")
	flag.DurationVar(&f.SLO, "slo", 0,
		"remap-latency p99 objective (e.g. 50ms): enable the SLO health layer (/slo endpoint, slo_* gauges) and exit non-zero on breach")
	return f
}

// Activate applies the parsed flags: arms the flight recorder (which also
// enables the span tracer) and sets the SLO objectives. Call after
// flag.Parse and before the run starts.
func (f *Flags) Activate() error {
	if f.TraceDump != "" {
		if err := span.DefaultRecorder().Arm(span.RecorderConfig{Dir: f.TraceDump}); err != nil {
			return err
		}
	}
	if f.SLO > 0 {
		slo := span.DefaultSLO()
		slo.SetObjective("remap", f.SLO)
		// Solve latency is tracked (p99 exported) but has no target of its
		// own: the remap objective already covers the user-visible stall.
		slo.SetObjective("solve", 0)
	}
	return nil
}

// MuxOptions returns the handlers the flags imply for the metrics mux:
// /debug/spans (span ring) and /slo (health document) always — both are
// cheap and empty when their layer is off — plus pprof when opted in.
func (f *Flags) MuxOptions() []obs.MuxOption {
	opts := []obs.MuxOption{
		obs.WithHandler("/debug/spans", span.Default().Handler()),
		obs.WithHandler("/slo", span.DefaultSLO().Handler()),
	}
	if f.Pprof {
		opts = append(opts, obs.WithPprof())
	}
	return opts
}

// Breaches returns the SLO breach lines ("" objective unset → nil). A
// non-empty result means the run should exit non-zero.
func (f *Flags) Breaches() []string {
	if f.SLO <= 0 {
		return nil
	}
	return span.DefaultSLO().Breaches()
}

// Report writes the end-of-run telemetry summary to w: flight-recorder
// dump accounting when armed, SLO breaches when an objective is set.
// It returns true when the run is healthy (no breach).
func (f *Flags) Report(w io.Writer) bool {
	if f.TraceDump != "" {
		written, suppressed := span.DefaultRecorder().Dumps()
		if written > 0 || suppressed > 0 {
			fmt.Fprintf(w, "flight recorder: %d dump(s) in %s (%d trip(s) suppressed)\n",
				written, f.TraceDump, suppressed)
		}
	}
	breaches := f.Breaches()
	for _, b := range breaches {
		fmt.Fprintf(w, "SLO BREACH: %s\n", b)
	}
	return len(breaches) == 0
}
