package chaos

import (
	"testing"
	"time"

	"gdpn/internal/construct"
	"gdpn/internal/plan"
)

// TestMultiSoakShortRun is the in-tree smoke of the multi-tenant soak:
// three tenants with mixed SLO classes on one G(12,3) pool under fast
// fault churn must finish with a clean lifetime audit per tenant, valid
// partitions after every replan, and at least one coordinated replan that
// moved more than one tenant.
func TestMultiSoakShortRun(t *testing.T) {
	sol, err := construct.Design(12, 3)
	if err != nil {
		t.Fatalf("Design(12,3): %v", err)
	}
	topo, err := plan.Parse([]byte(`{
	  "pool": {"n": 12, "k": 3},
	  "tenants": [
	    {"name": "gold-a", "class": "gold", "weight": 3, "min_procs": 3, "frame_samples": 256},
	    {"name": "silver-b", "class": "silver", "weight": 2, "min_procs": 2, "frame_samples": 256},
	    {"name": "bronze-c", "class": "bronze", "weight": 1, "min_procs": 1, "frame_samples": 256, "max_pending": 8}
	  ]
	}`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	dur := 1500 * time.Millisecond
	if testing.Short() {
		dur = 400 * time.Millisecond
	}
	rep, err := MultiRun(sol, MultiConfig{
		Topology:  topo,
		Seed:      1,
		Duration:  dur,
		MTBF:      120 * time.Millisecond,
		MTTR:      40 * time.Millisecond,
		BurstProb: 0.2,
	})
	if err != nil {
		t.Fatalf("MultiRun: %v", err)
	}
	if !rep.OK() {
		t.Fatalf("multi soak failed:\n%s", rep.Summary())
	}
	if rep.FaultsInjected == 0 {
		t.Fatalf("no faults injected in %v", dur)
	}
	if rep.Replans == 0 {
		t.Fatal("no coordinated replans ran")
	}
	if rep.MaxTenantsRemapped < 2 {
		t.Fatalf("max tenants moved by one replan = %d, want >= 2 (coordination never exercised)",
			rep.MaxTenantsRemapped)
	}
	for _, tr := range rep.Tenants {
		if tr.Stream.Submitted == 0 {
			t.Fatalf("tenant %s moved no traffic", tr.Tenant)
		}
	}
	if rep.Checks == 0 {
		t.Fatal("no partition checks ran")
	}
}
