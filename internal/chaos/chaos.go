// Package chaos is the soak harness: it runs a live pipeline.Engine under
// a seeded stochastic fault/repair schedule (internal/faults.Schedule)
// while frames stream continuously through a pipeline.Stream, and checks
// the paper's graceful-degradation guarantee as a *runtime* property
// rather than a theorem:
//
//   - zero frame loss, zero duplication, in-order delivery across every
//     live reconfiguration (the congested-clique "no work lost across
//     recoveries" invariant);
//   - after every remap the pipeline is a valid certificate
//     (verify.CheckPipeline) and uses every healthy processor — the
//     paper's graceful degradation, re-proved at each step of an ongoing
//     fault process rather than for a one-shot fault set.
//
// Runs are seeded and replayable: a failing nightly seed reruns locally
// with `gdpsim -chaos -seed N` and reproduces the same fault sequence.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gdpn/internal/construct"
	"gdpn/internal/embed"
	"gdpn/internal/faults"
	"gdpn/internal/graph"
	"gdpn/internal/obs"
	"gdpn/internal/obs/span"
	"gdpn/internal/pipeline"
	"gdpn/internal/reconfig"
	"gdpn/internal/stages"
	"gdpn/internal/verify"
	"gdpn/internal/workload"
)

// maxRecordedViolations caps the violation strings kept in a Report;
// further violations are counted but summarized.
const maxRecordedViolations = 32

// Config parameterizes one soak run.
type Config struct {
	// Seed makes the run replayable (fault schedule and workload).
	Seed int64
	// Duration is the wall-clock soak length. Default 10s.
	Duration time.Duration
	// MTBF / MTTR are the processor-class failure/repair means.
	// Defaults 3s / 800ms.
	MTBF, MTTR time.Duration
	// TerminalMTBF / TerminalMTTR enable terminal-class faults (0 = off).
	TerminalMTBF, TerminalMTTR time.Duration
	// BurstProb upgrades a fault into a correlated burst of up to MaxBurst
	// simultaneous faults (budget permitting). Defaults 0 / design k.
	BurstProb float64
	MaxBurst  int
	// FrameSamples is the samples per frame. Default 1024.
	FrameSamples int
	// MaxPending is the stream's backpressure bound. Default 64.
	MaxPending int
	// Batch / ChannelDepth tune the engine's batched transport (frames per
	// carrier batch, per-stage channel depth). ≤ 0 keeps the defaults.
	Batch        int
	ChannelDepth int
	// RemapDeadline bounds each remap; a solve that misses it rolls back
	// to the last valid pipeline and the fault is retried later. 0 = off.
	RemapDeadline time.Duration
	// Context cancels the soak early: event sleeps wake immediately, an
	// in-flight remap solve is abandoned (and rolled back), and Run drains
	// the stream and returns a partial Report with Interrupted set. nil
	// means the soak always runs to Duration.
	Context context.Context
	// Logf, when non-nil, narrates events live (fault/repair/rollback).
	Logf func(format string, args ...any)
}

// Report is the end-of-run invariant report.
type Report struct {
	// Stream is the zero-loss ledger (lost/duplicated/out-of-order must be
	// zero, delivered must equal submitted).
	Stream pipeline.StreamReport `json:"stream"`
	// Downtime is the reconfiguration manager's per-tactic ledger.
	Downtime reconfig.DowntimeStats `json:"downtime"`
	// Elapsed is the achieved wall-clock run length.
	Elapsed time.Duration `json:"elapsed_ns"`
	// FaultsInjected / RepairsApplied count applied schedule events;
	// Bursts counts multi-fault batches.
	FaultsInjected int `json:"faults_injected"`
	RepairsApplied int `json:"repairs_applied"`
	Bursts         int `json:"bursts"`
	// DeadlineRollbacks counts remaps rolled back for missing the deadline
	// (retried later by the schedule); OtherFailures counts unexpected
	// apply errors — any of those is also recorded as a violation.
	DeadlineRollbacks int `json:"deadline_rollbacks"`
	OtherFailures     int `json:"other_failures"`
	// Checks counts post-remap invariant checks; Violations records the
	// failures (capped at maxRecordedViolations, then counted).
	Checks          int      `json:"checks"`
	Violations      []string `json:"violations,omitempty"`
	TotalViolations int      `json:"total_violations"`
	// FinalFaults / FinalProcsInUse snapshot the end state.
	FinalFaults     []int `json:"final_faults"`
	FinalProcsInUse int   `json:"final_procs_in_use"`
	// Interrupted reports that Config.Context canceled the soak before
	// Duration elapsed; the invariants above cover the partial run, which
	// is still a meaningful audit (every delivered frame was checked).
	Interrupted bool `json:"interrupted,omitempty"`
}

func (r *Report) violate(format string, args ...any) {
	r.TotalViolations++
	msg := fmt.Sprintf(format, args...)
	span.Trip(span.AnomalyInvariant, msg)
	if len(r.Violations) < maxRecordedViolations {
		r.Violations = append(r.Violations, msg)
	}
}

// OK reports whether every invariant held: clean stream and no
// verification violations.
func (r *Report) OK() bool {
	return r.Stream.Clean() && r.TotalViolations == 0
}

// Summary renders the multi-line invariant report printed at the end of a
// soak run.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos soak: %v elapsed\n", r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "  frames:     submitted=%d delivered=%d requeued=%d lost=%d duplicated=%d out-of-order=%d\n",
		r.Stream.Submitted, r.Stream.Delivered, r.Stream.Requeued,
		r.Stream.Lost, r.Stream.Duplicated, r.Stream.OutOfOrder)
	fmt.Fprintf(&b, "  faults:     injected=%d repaired=%d bursts=%d deadline-rollbacks=%d other-failures=%d\n",
		r.FaultsInjected, r.RepairsApplied, r.Bursts, r.DeadlineRollbacks, r.OtherFailures)
	fmt.Fprintf(&b, "  remaps:     ok=%d failed=%d downtime total=%v max=%v rollback-time=%v\n",
		r.Stream.Remaps, r.Stream.RemapFailures,
		r.Stream.TotalDowntime.Round(time.Microsecond), r.Stream.MaxDowntime.Round(time.Microsecond),
		r.Downtime.RollbackTime.Round(time.Microsecond))
	fmt.Fprintf(&b, "  tactics:    ")
	for t := reconfig.NoChange; t <= reconfig.FullRemap; t++ {
		if d := r.Downtime.PerTactic[t]; d > 0 {
			fmt.Fprintf(&b, "%s=%v ", t, d.Round(time.Microsecond))
		}
	}
	fmt.Fprintf(&b, "\n  invariants: checks=%d violations=%d (all healthy processors in use after every remap, no loss, no duplication)\n",
		r.Checks, r.TotalViolations)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "    VIOLATION: %s\n", v)
	}
	if extra := r.TotalViolations - len(r.Violations); extra > 0 {
		fmt.Fprintf(&b, "    ... and %d more\n", extra)
	}
	fmt.Fprintf(&b, "  end state:  faults=%v procs-in-use=%d\n", r.FinalFaults, r.FinalProcsInUse)
	if r.OK() {
		b.WriteString("  RESULT: PASS — zero frame loss, zero duplication, graceful degradation held\n")
	} else {
		b.WriteString("  RESULT: FAIL\n")
	}
	return b.String()
}

// DefaultStages returns the video-style stage chain the soak (and gdpsim)
// pushes frames through.
func DefaultStages() []stages.Stage {
	return []stages.Stage{
		stages.NewSubsample(2),
		&stages.Rescale{Gain: 1.5, Offset: 0.1},
		stages.NewFIR([]float64{0.25, 0.5, 0.25}),
		stages.NewQuantize(-16, 16, 256),
		stages.NewLZ78(4096),
	}
}

// Run executes one soak: continuous traffic, scheduled faults/repairs,
// invariant checks after every remap, and a final zero-loss audit. The
// returned error covers setup problems only; invariant failures land in
// the Report.
func Run(sol *construct.Solution, stgs []stages.Stage, cfg Config) (*Report, error) {
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.MTBF <= 0 {
		cfg.MTBF = 3 * time.Second
	}
	if cfg.MTTR <= 0 {
		cfg.MTTR = 800 * time.Millisecond
	}
	if cfg.FrameSamples <= 0 {
		cfg.FrameSamples = 1024
	}
	if cfg.MaxBurst <= 0 {
		cfg.MaxBurst = sol.K
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if len(stgs) == 0 {
		stgs = DefaultStages()
	}

	eng, err := pipeline.New(sol, stgs,
		pipeline.WithBatchSize(cfg.Batch), pipeline.WithChannelDepth(cfg.ChannelDepth))
	if err != nil {
		return nil, err
	}
	if cfg.RemapDeadline > 0 {
		eng.SetRemapDeadline(cfg.RemapDeadline)
	}
	// Cancellation: the token aborts in-flight remap solves, the context's
	// channel wakes event sleeps. Both latch from the same Config.Context.
	tok := embed.NewResources(cfg.Context, 0, 0)
	defer tok.Release()
	eng.SetRemapResources(tok)
	var ctxDone <-chan struct{}
	if cfg.Context != nil {
		ctxDone = cfg.Context.Done()
	}
	// sleep waits d (which may be ≤ 0) or until cancellation; false means
	// the soak was interrupted.
	sleep := func(d time.Duration) bool {
		if d <= 0 {
			return !tok.Stopped()
		}
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
			return true
		case <-ctxDone:
			return false
		}
	}
	sch, err := faults.NewSchedule(sol.Graph, faults.ScheduleConfig{
		MTBF:         cfg.MTBF,
		MTTR:         cfg.MTTR,
		TerminalMTBF: cfg.TerminalMTBF,
		TerminalMTTR: cfg.TerminalMTTR,
		MaxFaults:    sol.K,
		BurstProb:    cfg.BurstProb,
		MaxBurst:     cfg.MaxBurst,
	}, cfg.Seed)
	if err != nil {
		return nil, err
	}
	st, err := eng.StartStream(pipeline.StreamConfig{MaxPending: cfg.MaxPending})
	if err != nil {
		return nil, err
	}
	injected := obs.Default().Counter("chaos_faults_injected_total")
	// The soak's own root span: schedule events attach to it as they are
	// applied, and it lands in the ring when the run finishes — a flight
	// dump mid-soak therefore carries the remap trees, while the soak span
	// itself shows up in end-of-run snapshots.
	soak := span.Start(nil, "soak")
	soak.SetInt("seed", cfg.Seed).SetInt("k", int64(sol.K)).SetInt("n", int64(sol.N))

	// Producer: continuous seq-numbered traffic until told to stop.
	stop := make(chan struct{})
	var producerWG sync.WaitGroup
	producerWG.Add(1)
	go func() {
		defer producerWG.Done()
		gen := workload.Video(cfg.FrameSamples/4, cfg.Seed)
		seq := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Lease frame storage from the engine pool (the consumer
			// recycles it) so the soak itself runs the zero-allocation
			// steady state it certifies.
			d := eng.GetBuffer(cfg.FrameSamples)
			workload.Fill(gen, d)
			if st.Submit(pipeline.Frame{Seq: seq, Data: d}) != nil {
				return
			}
			seq++
		}
	}()

	// Consumer: drain deliveries (the stream itself audits sequence) and
	// return their buffers to the engine pool.
	var consumed atomic.Int64
	consumerDone := make(chan struct{})
	go func() {
		defer close(consumerDone)
		for f := range st.Out() {
			consumed.Add(1)
			eng.Recycle(f)
		}
	}()

	rep := &Report{}
	g := sol.Graph
	start := time.Now()
	end := start.Add(cfg.Duration)
eventLoop:
	for {
		evs := sch.Next()
		at := start.Add(evs[0].At)
		if at.After(end) {
			if !sleep(time.Until(end)) {
				rep.Interrupted = true
			}
			break
		}
		if !sleep(time.Until(at)) {
			rep.Interrupted = true
			break
		}
		if len(evs) > 1 {
			rep.Bursts++
		}
		for _, ev := range evs {
			var err error
			if ev.Repair {
				err = eng.Repair(ev.Node)
			} else {
				err = eng.Inject(ev.Node)
			}
			switch {
			case err == nil:
				if ev.Repair {
					rep.RepairsApplied++
				} else {
					rep.FaultsInjected++
					injected.Inc()
				}
				soak.Eventf("apply", "%s procs-in-use=%d", ev, eng.ProcessorsInUse())
				logf("chaos: %s procs-in-use=%d", ev, eng.ProcessorsInUse())
			case errors.Is(err, embed.ErrCanceled):
				// External cancellation aborted the remap mid-solve; the
				// event rolled back cleanly. Not a violation — end the soak.
				rep.Interrupted = true
				sch.Deny(ev)
				logf("chaos: %s ROLLED BACK (canceled): %v", ev, err)
				break eventLoop
			case errors.Is(err, reconfig.ErrDeadline):
				rep.DeadlineRollbacks++
				sch.Deny(ev)
				soak.Eventf("rollback", "%s deadline: %v", ev, err)
				logf("chaos: %s ROLLED BACK (deadline): %v", ev, err)
			default:
				// Within the k budget every event must apply; anything else
				// is itself an invariant violation.
				rep.OtherFailures++
				sch.Deny(ev)
				rep.violate("apply %s: %v", ev, err)
			}
		}
		rep.Checks++
		checkInvariants(rep, eng, g, evs[0].At)
	}

	close(stop)
	producerWG.Wait()
	rep.Stream = st.Close()
	<-consumerDone

	rep.Downtime = eng.Downtime()
	rep.Elapsed = time.Since(start)
	rep.FinalFaults = eng.Faults().Slice()
	rep.FinalProcsInUse = eng.ProcessorsInUse()
	rep.Checks++
	checkInvariants(rep, eng, g, rep.Elapsed)
	if got := consumed.Load(); got != rep.Stream.Delivered {
		rep.violate("consumer saw %d frames, stream delivered %d", got, rep.Stream.Delivered)
	}
	if !rep.Stream.Clean() {
		rep.violate("stream not clean: lost=%d duplicated=%d out-of-order=%d submitted=%d delivered=%d",
			rep.Stream.Lost, rep.Stream.Duplicated, rep.Stream.OutOfOrder,
			rep.Stream.Submitted, rep.Stream.Delivered)
	}
	soak.SetInt("faults", int64(rep.FaultsInjected)).SetInt("repairs", int64(rep.RepairsApplied))
	soak.SetInt("remaps", rep.Stream.Remaps).SetInt("violations", int64(rep.TotalViolations))
	if rep.OK() {
		soak.End(span.OK)
	} else {
		soak.End(span.Errored)
	}
	return rep, nil
}

// checkInvariants re-proves graceful degradation on the live state: the
// current pipeline must be a valid certificate over the current fault set
// and must use every healthy processor.
func checkInvariants(rep *Report, eng *pipeline.Engine, g *graph.Graph, at time.Duration) {
	f := eng.Faults()
	if err := verify.CheckPipeline(g, f, eng.Pipeline()); err != nil {
		rep.violate("t=%v: invalid pipeline: %v", at.Round(time.Millisecond), err)
		return
	}
	healthy := 0
	for _, p := range g.Processors() {
		if !f.Contains(p) {
			healthy++
		}
	}
	if used := eng.ProcessorsInUse(); used != healthy {
		rep.violate("t=%v: %d healthy processors but only %d in use", at.Round(time.Millisecond), healthy, used)
	}
}
