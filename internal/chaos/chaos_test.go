package chaos

import (
	"context"
	"testing"
	"time"

	"gdpn/internal/construct"
)

// TestSoakShortRun is the in-tree smoke version of the nightly soak: a
// fast fault process on G(12,3) for ~1.5s must finish with a clean
// stream, zero invariant violations, and actual fault churn.
func TestSoakShortRun(t *testing.T) {
	sol, err := construct.Design(12, 3)
	if err != nil {
		t.Fatalf("Design(12,3): %v", err)
	}
	dur := 1500 * time.Millisecond
	if testing.Short() {
		dur = 400 * time.Millisecond
	}
	rep, err := Run(sol, nil, Config{
		Seed:      1,
		Duration:  dur,
		MTBF:      120 * time.Millisecond,
		MTTR:      40 * time.Millisecond,
		BurstProb: 0.2,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !rep.OK() {
		t.Fatalf("soak failed:\n%s", rep.Summary())
	}
	if rep.FaultsInjected == 0 {
		t.Fatalf("no faults injected in %v (MTBF too long for test?)", dur)
	}
	if rep.Stream.Submitted == 0 || rep.Stream.Delivered != rep.Stream.Submitted {
		t.Fatalf("stream not clean: %+v", rep.Stream)
	}
	if rep.Checks == 0 {
		t.Fatalf("no invariant checks ran")
	}
}

// TestSoakSeedReplay checks that two runs with the same seed inject the
// same number of faults — the property that makes a failing nightly seed
// reproducible locally. (Exact event times are wall-clock dependent, but
// the schedule's event sequence is seed-determined; with MTBF far above
// the run length only the deterministic prefix fires.)
func TestSoakSeedReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("replay comparison needs two timed runs")
	}
	sol, err := construct.Design(10, 2)
	if err != nil {
		t.Fatalf("Design(10,2): %v", err)
	}
	cfg := Config{
		Seed:     7,
		Duration: 600 * time.Millisecond,
		MTBF:     100 * time.Millisecond,
		MTTR:     30 * time.Millisecond,
	}
	a, err := Run(sol, nil, cfg)
	if err != nil {
		t.Fatalf("run A: %v", err)
	}
	sol2, _ := construct.Design(10, 2)
	b, err := Run(sol2, nil, cfg)
	if err != nil {
		t.Fatalf("run B: %v", err)
	}
	if !a.OK() || !b.OK() {
		t.Fatalf("replay runs not clean:\nA:\n%s\nB:\n%s", a.Summary(), b.Summary())
	}
	// Same seed, same config, same duration: the event prefixes that fit in
	// the window are identical, so fault counts may differ by at most the
	// scheduling jitter at the window edge.
	diff := a.FaultsInjected - b.FaultsInjected
	if diff < 0 {
		diff = -diff
	}
	if diff > 2 {
		t.Fatalf("seed replay diverged: %d vs %d faults", a.FaultsInjected, b.FaultsInjected)
	}
}

// TestSoakContextCancelFlushesCleanly: canceling the soak's context ends
// the run early with Interrupted set, and the shutdown still drains the
// stream — every submitted frame is delivered, nothing lost.
func TestSoakContextCancelFlushesCleanly(t *testing.T) {
	sol, err := construct.Design(12, 3)
	if err != nil {
		t.Fatalf("Design(12,3): %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	rep, err := Run(sol, nil, Config{
		Seed:     1,
		Duration: time.Hour, // would run forever without the cancel
		MTBF:     60 * time.Millisecond,
		MTTR:     30 * time.Millisecond,
		Context:  ctx,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !rep.Interrupted {
		t.Fatal("canceled soak not marked interrupted")
	}
	if rep.Elapsed >= time.Hour {
		t.Fatalf("soak ran to full duration despite cancel: %v", rep.Elapsed)
	}
	if rep.TotalViolations != 0 {
		t.Fatalf("cancellation produced violations:\n%s", rep.Summary())
	}
	if !rep.Stream.Clean() {
		t.Fatalf("interrupted shutdown lost frames: %+v", rep.Stream)
	}
}
