package chaos

// Multi-tenant soak: the control-plane analogue of Run. Instead of one
// self-planned engine, a control.Executor runs a whole Topology on one
// shared pool while the fault schedule hits the pool; every event triggers
// one coordinated replan, and the invariants are re-proved per tenant:
//
//   - every tenant's lifetime sink audit is clean (zero loss, zero
//     duplication, in order) across every coordinated remap, shed, and
//     readmission;
//   - after every event the running placements partition the healthy
//     processors exactly — disjoint valid segments (verify.CheckSegment)
//     whose union is every healthy processor, i.e. graceful degradation
//     holds for the fleet, not just per pipeline.

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"gdpn/internal/construct"
	"gdpn/internal/control"
	"gdpn/internal/faults"
	"gdpn/internal/obs/span"
	"gdpn/internal/pipeline"
	"gdpn/internal/plan"
	"gdpn/internal/verify"
	"gdpn/internal/workload"
)

// MultiConfig parameterizes one multi-tenant soak run. The zero value of
// every field except Topology is usable.
type MultiConfig struct {
	// Topology declares the tenants (required, validated by plan.Parse).
	Topology *plan.Topology
	// Seed makes the run replayable.
	Seed int64
	// Duration is the wall-clock soak length. Default 10s.
	Duration time.Duration
	// MTBF / MTTR are the processor failure/repair means. Defaults 3s /
	// 800ms.
	MTBF, MTTR time.Duration
	// TerminalMTBF / TerminalMTTR enable terminal-class faults (0 = off).
	TerminalMTBF, TerminalMTTR time.Duration
	// BurstProb / MaxBurst configure correlated fault bursts.
	BurstProb float64
	MaxBurst  int
	// Budget is the pool-wide solver allowance (0 = unlimited).
	Budget int64
	// Logf, when non-nil, narrates events live.
	Logf func(format string, args ...any)
}

// MultiReport is the end-of-run fleet audit.
type MultiReport struct {
	// Tenants are the per-tenant lifetime reports, topology order.
	Tenants []control.TenantReport `json:"tenants"`
	// Elapsed is the achieved wall-clock run length.
	Elapsed time.Duration `json:"elapsed_ns"`
	// FaultsInjected / RepairsApplied / Bursts count applied schedule
	// events; Denied counts events the control plane refused (replan
	// failure), which the schedule then rolled back.
	FaultsInjected int `json:"faults_injected"`
	RepairsApplied int `json:"repairs_applied"`
	Bursts         int `json:"bursts"`
	Denied         int `json:"denied"`
	// Replans counts fault-driven coordinated replans (the bootstrap plan
	// is excluded); MaxTenantsRemapped is the most tenants one replan
	// moved — ≥2 proves cross-tenant coordination actually happened.
	Replans            int64 `json:"replans"`
	MaxTenantsRemapped int   `json:"max_tenants_remapped"`
	// Checks / Violations mirror Report: per-event partition audits.
	Checks          int      `json:"checks"`
	Violations      []string `json:"violations,omitempty"`
	TotalViolations int      `json:"total_violations"`
	// FinalFaults snapshots the pool fault set at close.
	FinalFaults []int `json:"final_faults"`
	// SubmitShed totals Bronze frames dropped at intake across tenants
	// (policy, not loss — they never entered a stream).
	SubmitShed int64 `json:"submit_shed"`
}

func (r *MultiReport) violate(format string, args ...any) {
	r.TotalViolations++
	msg := fmt.Sprintf(format, args...)
	span.Trip(span.AnomalyInvariant, msg)
	if len(r.Violations) < maxRecordedViolations {
		r.Violations = append(r.Violations, msg)
	}
}

// OK reports whether every invariant held: clean lifetime audit for every
// tenant and no partition violations.
func (r *MultiReport) OK() bool {
	for _, t := range r.Tenants {
		if !t.Stream.Clean() {
			return false
		}
	}
	return r.TotalViolations == 0
}

// Summary renders the end-of-soak fleet report.
func (r *MultiReport) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "multi-tenant soak: %v elapsed, %d tenants\n", r.Elapsed.Round(time.Millisecond), len(r.Tenants))
	for _, t := range r.Tenants {
		state := "running"
		if !t.Running {
			state = "shed"
			if t.ShedReason != "" {
				state = "shed (" + t.ShedReason + ")"
			}
		}
		fmt.Fprintf(&b, "  tenant %-12s %-6s %-18s procs=%-2d incarnations=%d submitted=%d delivered=%d requeued=%d lost=%d dup=%d ooo=%d remaps=%d shed-at-intake=%d\n",
			t.Tenant, t.Class, state, t.Procs, t.Incarnations,
			t.Stream.Submitted, t.Stream.Delivered, t.Stream.Requeued,
			t.Stream.Lost, t.Stream.Duplicated, t.Stream.OutOfOrder,
			t.Stream.Remaps, t.SubmitShed)
	}
	fmt.Fprintf(&b, "  faults:     injected=%d repaired=%d bursts=%d denied=%d\n",
		r.FaultsInjected, r.RepairsApplied, r.Bursts, r.Denied)
	fmt.Fprintf(&b, "  replans:    %d coordinated, max tenants moved by one replan=%d\n",
		r.Replans, r.MaxTenantsRemapped)
	fmt.Fprintf(&b, "  invariants: checks=%d violations=%d (segments partition healthy processors after every replan, per-tenant zero loss)\n",
		r.Checks, r.TotalViolations)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "    VIOLATION: %s\n", v)
	}
	if extra := r.TotalViolations - len(r.Violations); extra > 0 {
		fmt.Fprintf(&b, "    ... and %d more\n", extra)
	}
	fmt.Fprintf(&b, "  end state:  faults=%v\n", r.FinalFaults)
	if r.OK() {
		b.WriteString("  RESULT: PASS — zero frame loss per tenant, coordinated graceful degradation held\n")
	} else {
		b.WriteString("  RESULT: FAIL\n")
	}
	return b.String()
}

// MultiRun executes one multi-tenant soak: per-tenant continuous traffic
// through a control.Executor, scheduled pool faults driving coordinated
// replans, and a partition audit after every event. The returned error
// covers setup problems only; invariant failures land in the report.
func MultiRun(sol *construct.Solution, cfg MultiConfig) (*MultiReport, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("chaos: MultiConfig.Topology is required")
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.MTBF <= 0 {
		cfg.MTBF = 3 * time.Second
	}
	if cfg.MTTR <= 0 {
		cfg.MTTR = 800 * time.Millisecond
	}
	if cfg.MaxBurst <= 0 {
		cfg.MaxBurst = sol.K
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	x, err := control.New(sol, cfg.Topology, control.Config{Budget: cfg.Budget})
	if err != nil {
		return nil, err
	}
	sch, err := faults.NewSchedule(sol.Graph, faults.ScheduleConfig{
		MTBF:         cfg.MTBF,
		MTTR:         cfg.MTTR,
		TerminalMTBF: cfg.TerminalMTBF,
		TerminalMTTR: cfg.TerminalMTTR,
		MaxFaults:    sol.K,
		BurstProb:    cfg.BurstProb,
		MaxBurst:     cfg.MaxBurst,
	}, cfg.Seed)
	if err != nil {
		x.Close()
		return nil, err
	}

	soak := span.Start(nil, "soak")
	soak.SetStr("mode", "tenants").SetInt("seed", cfg.Seed).
		SetInt("k", int64(sol.K)).SetInt("n", int64(sol.N)).
		SetInt("tenants", int64(len(cfg.Topology.Tenants)))

	// One producer per tenant: continuous seq-numbered traffic. A shed
	// tenant's producer keeps polling (brief backoff) so readmission
	// resumes its stream; Bronze intake drops are policy, not loss, and
	// the dropped seq is reused for the next attempt.
	stop := make(chan struct{})
	var producerWG sync.WaitGroup
	for i := range cfg.Topology.Tenants {
		spec := cfg.Topology.Tenants[i]
		producerWG.Add(1)
		go func(name string, samples int, seed int64) {
			defer producerWG.Done()
			gen := workload.Video(samples/4, seed)
			seq := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				d := x.GetBuffer(name, samples)
				workload.Fill(gen, d)
				err := x.Submit(name, pipeline.Frame{Seq: seq, Data: d})
				switch {
				case err == nil:
					seq++
				case err == control.ErrBackpressure:
					// Dropped at intake by class policy; yield briefly.
					if !sleepOrStop(stop, 200*time.Microsecond) {
						return
					}
				case err == control.ErrTenantShed:
					if !sleepOrStop(stop, time.Millisecond) {
						return
					}
				case err == control.ErrClosed:
					return
				default:
					// Unexpected submit error: recorded post-run via the
					// tenant's audit; back off so the loop cannot spin.
					if !sleepOrStop(stop, time.Millisecond) {
						return
					}
				}
			}
		}(spec.Name, spec.FrameSamples, cfg.Seed+int64(i))
	}

	rep := &MultiReport{}
	start := time.Now()
	end := start.Add(cfg.Duration)
	for {
		evs := sch.Next()
		at := start.Add(evs[0].At)
		if at.After(end) {
			time.Sleep(time.Until(end))
			break
		}
		time.Sleep(time.Until(at))
		if len(evs) > 1 {
			rep.Bursts++
		}
		for _, ev := range evs {
			var res *control.ReplanResult
			var err error
			if ev.Repair {
				res, err = x.Repair(ev.Node)
			} else {
				res, err = x.Inject(ev.Node)
			}
			if err != nil {
				// Within the k budget every event must replan; the schedule
				// never exceeds it, so a refusal is itself a violation.
				rep.Denied++
				sch.Deny(ev)
				rep.violate("apply %s: %v", ev, err)
				continue
			}
			if ev.Repair {
				rep.RepairsApplied++
			} else {
				rep.FaultsInjected++
			}
			soak.Eventf("apply", "%s affected=%d admitted=%d shed=%d",
				ev, len(res.Affected), len(res.Admitted), len(res.Shed))
			logf("chaos: %s replan gen=%d affected=%v admitted=%v shed=%v",
				ev, res.Gen, res.Affected, res.Admitted, res.Shed)
		}
		rep.Checks++
		checkPartitionInvariants(rep, x, sol, evs[0].At)
	}

	close(stop)
	producerWG.Wait()
	rep.FinalFaults = x.Faults().Slice()
	rep.Checks++
	checkPartitionInvariants(rep, x, sol, time.Since(start))
	rep.Tenants = x.Close()
	rep.Elapsed = time.Since(start)
	n, maxMoved := x.Replans()
	rep.Replans = n - 1 // exclude the bootstrap plan
	rep.MaxTenantsRemapped = maxMoved
	for _, t := range rep.Tenants {
		rep.SubmitShed += t.SubmitShed
		if !t.Stream.Clean() {
			rep.violate("tenant %s not clean: lost=%d duplicated=%d out-of-order=%d submitted=%d delivered=%d",
				t.Tenant, t.Stream.Lost, t.Stream.Duplicated, t.Stream.OutOfOrder,
				t.Stream.Submitted, t.Stream.Delivered)
		}
	}
	soak.SetInt("faults", int64(rep.FaultsInjected)).SetInt("repairs", int64(rep.RepairsApplied))
	soak.SetInt("replans", rep.Replans).SetInt("violations", int64(rep.TotalViolations))
	if rep.OK() {
		soak.End(span.OK)
	} else {
		soak.End(span.Errored)
	}
	return rep, nil
}

func sleepOrStop(stop <-chan struct{}, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-stop:
		return false
	}
}

// checkPartitionInvariants re-proves fleet-level graceful degradation on
// the live state: the running segments must be disjoint valid placements
// whose union is exactly the healthy processors.
func checkPartitionInvariants(rep *MultiReport, x *control.Executor, sol *construct.Solution, at time.Duration) {
	f := x.Faults()
	segs := x.Segments()
	covered := make(map[int]string)
	for name, seg := range segs {
		if err := verify.CheckSegment(sol.Graph, f, seg, seg); err != nil {
			rep.violate("t=%v: tenant %s segment invalid: %v", at.Round(time.Millisecond), name, err)
			return
		}
		for _, v := range seg {
			if prev, dup := covered[v]; dup {
				rep.violate("t=%v: processor %d granted to both %s and %s", at.Round(time.Millisecond), v, prev, name)
				return
			}
			covered[v] = name
		}
	}
	if len(segs) == 0 {
		return // everyone shed: nothing to cover
	}
	healthy := 0
	for _, p := range sol.Graph.Processors() {
		if !f.Contains(p) {
			healthy++
		}
	}
	if len(covered) != healthy {
		rep.violate("t=%v: placements cover %d processors, pool has %d healthy",
			at.Round(time.Millisecond), len(covered), healthy)
	}
}
