// Package control is the executor layer of the multi-tenant control
// plane: it turns the planner's placement plans into live pipeline.Stream
// engines and supervises them — admission, per-tenant solver budgets,
// class-aware load shedding, and the coordinated replan that remaps every
// affected tenant when the shared pool degrades.
//
// The layering contract: the planner (internal/plan) decides WHERE each
// tenant runs, the executor decides WHO runs and moves the frames, and
// the runtime (internal/pipeline placed mode) preserves the zero-loss
// drain/requeue semantics across each placement change. Pool faults enter
// through Executor.Inject/Repair only; engines reject direct fault
// routing (pipeline.ErrPlaced).
package control

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gdpn/internal/bitset"
	"gdpn/internal/construct"
	"gdpn/internal/embed"
	"gdpn/internal/graph"
	"gdpn/internal/obs"
	"gdpn/internal/obs/span"
	"gdpn/internal/pipeline"
	"gdpn/internal/plan"
)

var (
	// ErrUnknownTenant is returned for a tenant name not in the topology.
	ErrUnknownTenant = errors.New("control: unknown tenant")
	// ErrTenantShed is returned by Submit for a tenant the control plane
	// has shed (admission, budget exhaustion); its traffic has no engine.
	ErrTenantShed = errors.New("control: tenant is shed")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("control: executor is closed")
	// ErrBackpressure mirrors pipeline.ErrBackpressure for Bronze-class
	// submissions dropped instead of blocking.
	ErrBackpressure = pipeline.ErrBackpressure
)

// Config tunes the executor.
type Config struct {
	// Budget is the pool-wide solver expansion allowance shared by every
	// replan (0 = unlimited). Per-tenant budgets from the topology nest
	// under it.
	Budget int64
	// ReplanDeadline bounds each coordinated replan's solver call
	// (0 = none).
	ReplanDeadline time.Duration
}

// tenant is the executor's live state for one topology entry.
type tenant struct {
	spec *plan.TenantSpec
	res  *embed.Resources

	// Guarded by Executor.mu.
	running      bool
	shedReason   string
	eng          *pipeline.Engine
	st           *pipeline.Stream
	segment      graph.Path
	incarnations int
	agg          pipeline.StreamReport // closed incarnations, summed
	consumerWG   sync.WaitGroup

	submitShed atomic.Int64

	// Per-tenant metrics (created once, survive incarnations).
	procsG  *obs.Gauge
	upG     *obs.Gauge
	shedC   *obs.Counter
	framesC *obs.Counter
}

// ReplanResult describes one coordinated replan.
type ReplanResult struct {
	// Gen is the plan generation applied.
	Gen int `json:"gen"`
	// Affected tenants had their placement changed live (drain/requeue).
	Affected []string `json:"affected,omitempty"`
	// Admitted tenants (re)started on a fresh engine incarnation.
	Admitted []string `json:"admitted,omitempty"`
	// Shed tenants were stopped (capacity, budget, exclusion).
	Shed []string `json:"shed,omitempty"`
	// Unchanged tenants kept their exact segment.
	Unchanged []string `json:"unchanged,omitempty"`
	// Expansions is the solver work this replan cost (0 on memo hit).
	Expansions int64 `json:"expansions"`
}

// TenantReport is a tenant's lifetime accounting across incarnations.
type TenantReport struct {
	Tenant string     `json:"tenant"`
	Class  plan.Class `json:"class"`
	// Running / ShedReason reflect the state at Close.
	Running    bool   `json:"running"`
	ShedReason string `json:"shed_reason,omitempty"`
	// Stream sums the per-incarnation stream reports; Clean() on it is the
	// tenant's zero-loss sink audit.
	Stream pipeline.StreamReport `json:"stream"`
	// SubmitShed counts Bronze frames dropped at intake by backpressure
	// (never admitted, so excluded from the loss audit by design).
	SubmitShed int64 `json:"submit_shed"`
	// Incarnations counts engine (re)starts: initial admission plus every
	// readmission after a shed.
	Incarnations int `json:"incarnations"`
	// Procs is the final placement width (0 when shed).
	Procs int `json:"procs"`
}

// Executor runs a Topology on one shared pool. All methods are safe for
// concurrent use; Inject/Repair serialize replans against each other and
// against tenant state changes, while Submit blocks outside the lock so
// backpressure never stalls a replan.
type Executor struct {
	g       *graph.Graph
	k       int
	topo    *plan.Topology
	planner *plan.Planner
	root    *embed.Resources

	mu       sync.Mutex
	closed   bool
	faults   bitset.Set
	excluded map[string]bool // shed for good (budget); skipped by the planner
	tenants  map[string]*tenant
	order    []string // topology order, for deterministic iteration

	replans      atomic.Int64
	maxAffected  int // max tenants remapped+admitted+shed by one replan, under mu
	replanLat    *obs.Histogram
	replanC      *obs.Counter
	faultsG      *obs.Gauge
	tenantsUpG   *obs.Gauge
	tenantsShedG *obs.Gauge
	classShedG   map[plan.Class]*obs.Gauge
}

// New builds an executor over the pool solution, computes the initial
// plan, and starts every admitted tenant. The topology must come from
// plan.Load/Parse (validated, defaults filled).
func New(sol *construct.Solution, topo *plan.Topology, cfg Config) (*Executor, error) {
	reg := obs.Default()
	x := &Executor{
		g:        sol.Graph,
		k:        sol.K,
		topo:     topo,
		planner:  plan.NewPlanner(sol, topo),
		root:     embed.NewResources(nil, cfg.Budget, 0),
		faults:   bitset.New(sol.Graph.NumNodes()),
		excluded: make(map[string]bool),
		tenants:  make(map[string]*tenant),

		replanLat:    reg.Histogram("control_replan_ns"),
		replanC:      reg.Counter("control_replans_total"),
		faultsG:      reg.Gauge("control_pool_faults"),
		tenantsUpG:   reg.Gauge("control_tenants", obs.L("state", "running")),
		tenantsShedG: reg.Gauge("control_tenants", obs.L("state", "shed")),
		classShedG:   make(map[plan.Class]*obs.Gauge),
	}
	for _, c := range []plan.Class{plan.Gold, plan.Silver, plan.Bronze} {
		x.classShedG[c] = reg.Gauge("control_class_shed", obs.L("class", c.String()))
	}
	for i := range topo.Tenants {
		spec := &topo.Tenants[i]
		x.order = append(x.order, spec.Name)
		x.tenants[spec.Name] = &tenant{
			spec:    spec,
			res:     x.root.BudgetedChild(spec.Budget),
			procsG:  reg.Gauge("control_tenant_procs", obs.L("tenant", spec.Name)),
			upG:     reg.Gauge("control_tenant_up", obs.L("tenant", spec.Name)),
			shedC:   reg.Counter("control_submit_shed_total", obs.L("tenant", spec.Name)),
			framesC: reg.Counter("control_frames_total", obs.L("tenant", spec.Name)),
		}
	}
	if slo := span.DefaultSLO(); slo.Enabled() {
		for _, kind := range []graph.Kind{graph.Processor, graph.InputTerminal, graph.OutputTerminal} {
			slo.RegisterClass(kind.String(), sol.Graph.CountKind(kind))
		}
		slo.SetDegradation(0, sol.K)
	}

	x.mu.Lock()
	defer x.mu.Unlock()
	if _, err := x.replanLocked(cfg.ReplanDeadline, "bootstrap", -1); err != nil {
		x.releaseLocked()
		return nil, err
	}
	return x, nil
}

// Submit routes one frame to the tenant's stream under its class policy:
// Gold and Silver block on backpressure (the producer is flow-controlled,
// nothing drops), Bronze tries once and returns ErrBackpressure on a full
// intake — the executor counts the drop as shed load. Ownership of f.Data
// transfers to the stream only on nil return.
func (x *Executor) Submit(name string, f pipeline.Frame) error {
	for {
		x.mu.Lock()
		if x.closed {
			x.mu.Unlock()
			return ErrClosed
		}
		t, ok := x.tenants[name]
		if !ok {
			x.mu.Unlock()
			return ErrUnknownTenant
		}
		if !t.running {
			x.mu.Unlock()
			return ErrTenantShed
		}
		st, class := t.st, t.spec.Class
		x.mu.Unlock()

		var err error
		if class == plan.Bronze {
			err = st.TrySubmit(f)
			if errors.Is(err, pipeline.ErrBackpressure) {
				t.submitShed.Add(1)
				t.shedC.Inc()
				return ErrBackpressure
			}
		} else {
			err = st.Submit(f)
		}
		if err == nil {
			t.framesC.Inc()
			return nil
		}
		if errors.Is(err, pipeline.ErrStreamClosed) {
			// The incarnation ended under us (shed or close); loop to
			// re-resolve the tenant's state.
			continue
		}
		return err
	}
}

// GetBuffer leases a frame buffer from the tenant's engine pool (falling
// back to a plain allocation while the tenant is shed, so producers can
// keep a steady loop without branching).
func (x *Executor) GetBuffer(name string, n int) []float64 {
	x.mu.Lock()
	t, ok := x.tenants[name]
	var eng *pipeline.Engine
	if ok && t.running {
		eng = t.eng
	}
	x.mu.Unlock()
	if eng == nil {
		return make([]float64, n)
	}
	return eng.GetBuffer(n)
}

// Inject faults one pool node and runs a coordinated replan: one solver
// call (memo-warm) recomputes the global pipeline, and every tenant whose
// segment moved is remapped live under a single "replan" root span, with
// per-tenant drain/requeue preserving the zero-loss contract. On error
// (fault beyond tolerance, solver budget) the fault is rolled back and
// every placement is left untouched — the caller decides whether to force
// the issue (it cannot, via this API) or deny the event.
func (x *Executor) Inject(node int) (*ReplanResult, error) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.closed {
		return nil, ErrClosed
	}
	if node < 0 || node >= x.g.NumNodes() {
		return nil, fmt.Errorf("control: node %d out of range", node)
	}
	if x.faults.Contains(node) {
		return nil, fmt.Errorf("control: node %d already faulty", node)
	}
	x.faults.Add(node)
	res, err := x.replanLocked(0, "inject", node)
	if err != nil {
		x.faults.Remove(node)
		return nil, err
	}
	if slo := span.DefaultSLO(); slo.Enabled() {
		slo.NodeDown(x.g.Kind(node).String())
		slo.SetDegradation(x.faults.Count(), x.k)
	}
	x.faultsG.Set(int64(x.faults.Count()))
	return res, nil
}

// Repair heals one pool node and replans; placements grow back and shed
// tenants are readmitted when capacity allows. Symmetric with Inject.
func (x *Executor) Repair(node int) (*ReplanResult, error) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.closed {
		return nil, ErrClosed
	}
	if node < 0 || node >= x.g.NumNodes() || !x.faults.Contains(node) {
		return nil, fmt.Errorf("control: node %d is not faulty", node)
	}
	x.faults.Remove(node)
	res, err := x.replanLocked(0, "repair", node)
	if err != nil {
		x.faults.Add(node)
		return nil, err
	}
	if slo := span.DefaultSLO(); slo.Enabled() {
		slo.NodeUp(x.g.Kind(node).String())
		slo.SetDegradation(x.faults.Count(), x.k)
	}
	x.faultsG.Set(int64(x.faults.Count()))
	return res, nil
}

// replanLocked is the coordinated replan: plan, charge budgets, diff, and
// apply. Caller holds x.mu. The budget-shed loop is bounded: a tenant
// whose token stops is added to the persistent exclusion set, and the
// planner re-solves (a memo hit — the fault set is unchanged) without it.
func (x *Executor) replanLocked(deadline time.Duration, cause string, node int) (*ReplanResult, error) {
	start := time.Now()
	root := span.Start(nil, "replan")
	root.SetStr("cause", cause)
	if node >= 0 {
		root.SetInt("node", int64(node))
	}
	root.SetInt("faults", int64(x.faults.Count()))

	var pl *plan.Plan
	for {
		scope := embed.Scoped(x.root, deadline)
		var err error
		pl, err = x.planner.Plan(x.faults, x.excluded, scope, root)
		scope.Release()
		if err != nil {
			root.SetStr("error", err.Error())
			root.End(span.Errored)
			return nil, err
		}
		// Charge the solver work to the tenants whose placement it
		// (re)computed: everyone admitted by this plan, equal shares.
		if pl.Expansions > 0 && len(pl.Assignments) > 0 {
			share := (pl.Expansions + int64(len(pl.Assignments)) - 1) / int64(len(pl.Assignments))
			stopped := false
			for _, a := range pl.Assignments {
				t := x.tenants[a.Tenant]
				if t.spec.Budget > 0 && !t.res.Charge(share) && !x.excluded[a.Tenant] {
					x.excluded[a.Tenant] = true
					root.Eventf("budget", "tenant %s exhausted its solver budget", a.Tenant)
					stopped = true
				}
			}
			if stopped {
				continue // re-solve without the exhausted tenants (memo hit)
			}
		}
		break
	}

	res := &ReplanResult{Gen: pl.Gen, Expansions: pl.Expansions}
	// Stop tenants the plan shed.
	assigned := make(map[string]graph.Path, len(pl.Assignments))
	for _, a := range pl.Assignments {
		assigned[a.Tenant] = a.Segment
	}
	for _, name := range x.order {
		t := x.tenants[name]
		seg, ok := assigned[name]
		if !ok {
			reason := "insufficient capacity"
			if x.excluded[name] {
				reason = "budget exhausted"
			}
			if t.running {
				x.stopTenantLocked(t, reason)
				res.Shed = append(res.Shed, name)
			} else {
				t.shedReason = reason // never-admitted tenants carry the reason too
			}
			continue
		}
		switch {
		case !t.running:
			if err := x.startTenantLocked(t, seg, root); err != nil {
				root.SetStr("error", err.Error())
				root.End(span.Errored)
				return nil, fmt.Errorf("control: starting tenant %q: %w", name, err)
			}
			res.Admitted = append(res.Admitted, name)
		case segEqual(t.segment, seg):
			res.Unchanged = append(res.Unchanged, name)
		default:
			if err := t.eng.ApplyPlacement(seg, root); err != nil {
				root.SetStr("error", err.Error())
				root.End(span.Errored)
				return nil, fmt.Errorf("control: remapping tenant %q: %w", name, err)
			}
			t.segment = append(t.segment[:0:0], seg...)
			t.procsG.Set(int64(len(seg)))
			res.Affected = append(res.Affected, name)
		}
	}

	// The bootstrap plan admits everyone by definition; only fault-driven
	// replans count toward the coordination high-water mark.
	if cause != "bootstrap" {
		if moved := len(res.Affected) + len(res.Admitted) + len(res.Shed); moved > x.maxAffected {
			x.maxAffected = moved
		}
	}
	x.replans.Add(1)
	x.replanC.Inc()
	x.replanLat.ObserveDuration(time.Since(start))
	x.refreshGaugesLocked()
	root.SetInt("affected", int64(len(res.Affected))).
		SetInt("admitted", int64(len(res.Admitted))).
		SetInt("shed", int64(len(res.Shed))).
		SetInt("expansions", pl.Expansions)
	root.End(span.OK)
	return res, nil
}

// startTenantLocked brings up a fresh engine incarnation on seg. Stage
// state does NOT survive a shed/readmit cycle: a readmitted tenant starts
// its chain (FIR history, LZ78 dictionary) from zero, like a restarted
// process.
func (x *Executor) startTenantLocked(t *tenant, seg graph.Path, parent *span.S) error {
	stgs, err := t.spec.BuildStages()
	if err != nil {
		return err
	}
	eng, err := pipeline.NewPlaced(x.g, seg, stgs, pipeline.WithTenant(t.spec.Name))
	if err != nil {
		return err
	}
	st, err := eng.StartStream(pipeline.StreamConfig{MaxPending: t.spec.MaxPending})
	if err != nil {
		return err
	}
	t.eng, t.st = eng, st
	t.segment = append(graph.Path(nil), seg...)
	t.running = true
	t.shedReason = ""
	t.incarnations++
	t.procsG.Set(int64(len(seg)))
	t.upG.Set(1)
	sp := span.Start(parent, "admit")
	sp.SetStr("tenant", t.spec.Name).SetInt("procs", int64(len(seg)))
	sp.End(span.OK)
	// The consumer drains deliveries and recycles their buffers; the sink
	// audit lives in the stream's own ledger.
	t.consumerWG.Add(1)
	go func(eng *pipeline.Engine, st *pipeline.Stream) {
		defer t.consumerWG.Done()
		for f := range st.Out() {
			eng.Recycle(f)
		}
	}(eng, st)
	return nil
}

// stopTenantLocked closes the tenant's stream (flushing every in-flight
// frame), folds the incarnation's report into the lifetime aggregate, and
// marks the tenant shed.
func (x *Executor) stopTenantLocked(t *tenant, reason string) {
	rep := t.st.Close()
	t.consumerWG.Wait()
	t.agg = sumReports(t.agg, rep)
	t.eng, t.st = nil, nil
	t.segment = nil
	t.running = false
	t.shedReason = reason
	t.procsG.Set(0)
	t.upG.Set(0)
}

// refreshGaugesLocked recomputes the tenant-population gauges.
func (x *Executor) refreshGaugesLocked() {
	up, shed := 0, 0
	classShed := map[plan.Class]int{}
	for _, t := range x.tenants {
		if t.running {
			up++
		} else {
			shed++
			classShed[t.spec.Class]++
		}
	}
	x.tenantsUpG.Set(int64(up))
	x.tenantsShedG.Set(int64(shed))
	for c, g := range x.classShedG {
		g.Set(int64(classShed[c]))
	}
}

// Replans returns the number of coordinated replans applied (including
// the bootstrap plan) and the largest tenant count one fault-driven
// replan moved (remapped + admitted + shed; the bootstrap is excluded).
func (x *Executor) Replans() (n int64, maxAffected int) {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.replans.Load(), x.maxAffected
}

// Faults returns a copy of the current pool fault set.
func (x *Executor) Faults() bitset.Set {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.faults.Clone()
}

// Segments returns each running tenant's current placement — the live
// partition of the pool, for invariant checks.
func (x *Executor) Segments() map[string]graph.Path {
	x.mu.Lock()
	defer x.mu.Unlock()
	out := make(map[string]graph.Path)
	for name, t := range x.tenants {
		if t.running {
			out[name] = append(graph.Path(nil), t.segment...)
		}
	}
	return out
}

// Close stops every tenant, releases the resource tree, and returns the
// per-tenant lifetime reports in topology order.
func (x *Executor) Close() []TenantReport {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.closed {
		return nil
	}
	x.closed = true
	var out []TenantReport
	for _, name := range x.order {
		t := x.tenants[name]
		procs := 0
		wasRunning := t.running
		if t.running {
			procs = len(t.segment)
			x.stopTenantLocked(t, "")
		}
		out = append(out, TenantReport{
			Tenant:       name,
			Class:        t.spec.Class,
			Running:      wasRunning,
			ShedReason:   t.shedReason,
			Stream:       t.agg,
			SubmitShed:   t.submitShed.Load(),
			Incarnations: t.incarnations,
			Procs:        procs,
		})
	}
	x.refreshGaugesLocked()
	x.releaseLocked()
	return out
}

func (x *Executor) releaseLocked() {
	for _, t := range x.tenants {
		t.res.Release()
	}
	x.root.Release()
}

func segEqual(a, b graph.Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sumReports folds incarnation reports: counters add, MaxDowntime takes
// the max.
func sumReports(a, b pipeline.StreamReport) pipeline.StreamReport {
	a.Submitted += b.Submitted
	a.Delivered += b.Delivered
	a.Requeued += b.Requeued
	a.Lost += b.Lost
	a.Duplicated += b.Duplicated
	a.OutOfOrder += b.OutOfOrder
	a.Remaps += b.Remaps
	a.RemapFailures += b.RemapFailures
	a.TotalDowntime += b.TotalDowntime
	if b.MaxDowntime > a.MaxDowntime {
		a.MaxDowntime = b.MaxDowntime
	}
	return a
}
