package control_test

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"gdpn/internal/construct"
	"gdpn/internal/control"
	"gdpn/internal/graph"
	"gdpn/internal/pipeline"
	"gdpn/internal/plan"
	"gdpn/internal/verify"
)

const mixedTopo = `{
  "pool": {"n": 12, "k": 3},
  "tenants": [
    {"name": "gold-a", "class": "gold", "weight": 3, "min_procs": 3},
    {"name": "silver-b", "class": "silver", "weight": 2, "min_procs": 2},
    {"name": "bronze-c", "class": "bronze", "weight": 1, "min_procs": 1}
  ]
}`

func mustExecutor(t *testing.T, topoSrc string) (*control.Executor, *construct.Solution) {
	t.Helper()
	sol, err := construct.Design(12, 3)
	if err != nil {
		t.Fatalf("Design: %v", err)
	}
	topo, err := plan.Parse([]byte(topoSrc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	x, err := control.New(sol, topo, control.Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return x, sol
}

// checkPartition asserts the live segments are disjoint valid placements
// covering every healthy processor exactly once.
func checkPartition(t *testing.T, x *control.Executor, sol *construct.Solution) {
	t.Helper()
	faults := x.Faults()
	segs := x.Segments()
	covered := make(map[int]string)
	for name, seg := range segs {
		if err := verify.CheckSegment(sol.Graph, faults, seg, seg); err != nil {
			t.Fatalf("tenant %s segment invalid: %v", name, err)
		}
		for _, v := range seg {
			if prev, dup := covered[v]; dup {
				t.Fatalf("processor %d granted to both %s and %s", v, prev, name)
			}
			covered[v] = name
		}
	}
	healthy := 0
	for _, p := range sol.Graph.Processors() {
		if !faults.Contains(p) {
			healthy++
		}
	}
	if len(covered) != healthy {
		t.Fatalf("partition covers %d processors, pool has %d healthy", len(covered), healthy)
	}
}

func TestExecutorBootstrapPartition(t *testing.T) {
	x, sol := mustExecutor(t, mixedTopo)
	defer x.Close()
	checkPartition(t, x, sol)
	if n, _ := x.Replans(); n != 1 {
		t.Fatalf("bootstrap replans = %d, want 1", n)
	}
	if err := x.Submit("nobody", pipeline.Frame{}); !errors.Is(err, control.ErrUnknownTenant) {
		t.Fatalf("Submit(nobody) = %v, want ErrUnknownTenant", err)
	}
}

// TestExecutorCoordinatedReplan drives traffic through all three tenants
// while pool faults and repairs arrive, and checks every replan keeps the
// partition valid and every tenant's lifetime audit clean.
func TestExecutorCoordinatedReplan(t *testing.T) {
	x, sol := mustExecutor(t, mixedTopo)
	tenants := []string{"gold-a", "silver-b", "bronze-c"}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, name := range tenants {
		wg.Add(1)
		go func(name string, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			seq := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				buf := x.GetBuffer(name, 128)
				for i := range buf {
					buf[i] = rng.NormFloat64()
				}
				err := x.Submit(name, pipeline.Frame{Seq: seq, Data: buf})
				switch {
				case err == nil:
					seq++
				case errors.Is(err, control.ErrBackpressure):
					// Bronze drop: seq NOT consumed, frame never entered.
				case errors.Is(err, control.ErrTenantShed):
					// Shed mid-run; keep polling for readmission.
				default:
					t.Errorf("Submit(%s): %v", name, err)
					return
				}
			}
		}(name, int64(len(name)))
	}

	procs := sol.Graph.Processors()
	faulted := []int{procs[1], procs[5], procs[9]}
	for _, node := range faulted {
		res, err := x.Inject(node)
		if err != nil {
			t.Fatalf("Inject(%d): %v", node, err)
		}
		if len(res.Affected)+len(res.Admitted)+len(res.Shed) == 0 {
			t.Fatalf("Inject(%d): replan moved no tenant", node)
		}
		checkPartition(t, x, sol)
	}
	for _, node := range faulted {
		if _, err := x.Repair(node); err != nil {
			t.Fatalf("Repair(%d): %v", node, err)
		}
		checkPartition(t, x, sol)
	}
	close(stop)
	wg.Wait()

	reports := x.Close()
	if len(reports) != 3 {
		t.Fatalf("reports = %d, want 3", len(reports))
	}
	for _, r := range reports {
		if !r.Stream.Clean() {
			t.Fatalf("tenant %s not clean: %+v", r.Tenant, r.Stream)
		}
		if r.Stream.Submitted == 0 {
			t.Fatalf("tenant %s moved no traffic", r.Tenant)
		}
	}
	if n, _ := x.Replans(); n != 7 { // bootstrap + 3 injects + 3 repairs
		t.Fatalf("replans = %d, want 7", n)
	}
}

// TestExecutorShedReadmit pins the capacity-shed cycle: floors that
// exactly fit the unfaulted pool force the lowest class out on the first
// fault and back in on the repair, on a fresh engine incarnation.
func TestExecutorShedReadmit(t *testing.T) {
	x, sol := mustExecutor(t, `{
	  "pool": {"n": 12, "k": 3},
	  "tenants": [
	    {"name": "g", "class": "gold", "min_procs": 8},
	    {"name": "s", "class": "silver", "min_procs": 5},
	    {"name": "b", "class": "bronze", "min_procs": 2}
	  ]
	}`)
	defer x.Close()
	node := sol.Graph.Processors()[0]

	res, err := x.Inject(node)
	if err != nil {
		t.Fatalf("Inject: %v", err)
	}
	found := false
	for _, name := range res.Shed {
		if name == "b" {
			found = true
		}
	}
	if !found {
		t.Fatalf("bronze not shed on capacity loss: %+v", res)
	}
	if err := x.Submit("b", pipeline.Frame{Seq: 0, Data: make([]float64, 8)}); !errors.Is(err, control.ErrTenantShed) {
		t.Fatalf("Submit(shed) = %v, want ErrTenantShed", err)
	}
	checkPartition(t, x, sol)

	res, err = x.Repair(node)
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	found = false
	for _, name := range res.Admitted {
		if name == "b" {
			found = true
		}
	}
	if !found {
		t.Fatalf("bronze not readmitted after repair: %+v", res)
	}
	if err := x.Submit("b", pipeline.Frame{Seq: 0, Data: make([]float64, 8)}); err != nil {
		t.Fatalf("Submit after readmit: %v", err)
	}
	reports := x.Close()
	for _, r := range reports {
		if r.Tenant == "b" && r.Incarnations != 2 {
			t.Fatalf("bronze incarnations = %d, want 2", r.Incarnations)
		}
	}
}

// TestExecutorBudgetShed runs the planner without the structured layout
// (so every solve costs real expansions) and gives one tenant a 1-node
// budget: its first charged replan must shed it permanently.
func TestExecutorBudgetShed(t *testing.T) {
	sol, err := construct.Design(12, 3)
	if err != nil {
		t.Fatalf("Design: %v", err)
	}
	bare := *sol
	bare.Layout = nil // force the searching tiers: expansions > 0
	topo, err := plan.Parse([]byte(`{
	  "pool": {"n": 12, "k": 3},
	  "tenants": [
	    {"name": "g", "class": "gold"},
	    {"name": "b", "class": "bronze", "budget": 1}
	  ]
	}`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	x, err := control.New(&bare, topo, control.Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer x.Close()

	// Fresh fault sets until the budgeted tenant is charged past its
	// allowance (the bootstrap solve may already have done it).
	procs := sol.Graph.Processors()
	shed := false
	for i := 0; i < 3 && !shed; i++ {
		res, err := x.Inject(procs[i])
		if err != nil {
			t.Fatalf("Inject: %v", err)
		}
		for _, name := range res.Shed {
			if name == "b" {
				shed = true
			}
		}
		if _, ok := x.Segments()["b"]; !ok {
			shed = true
		}
	}
	if !shed {
		t.Fatal("budgeted tenant was never shed")
	}
	// Permanent: repairs do not readmit a budget-exhausted tenant.
	faults := x.Faults()
	for _, p := range procs {
		if faults.Contains(p) {
			if _, err := x.Repair(p); err != nil {
				t.Fatalf("Repair: %v", err)
			}
		}
	}
	if _, ok := x.Segments()["b"]; ok {
		t.Fatal("budget-exhausted tenant was readmitted")
	}
	var gSeg graph.Path
	for name, seg := range x.Segments() {
		if name == "g" {
			gSeg = seg
		}
	}
	if len(gSeg) != len(sol.Graph.Processors()) {
		t.Fatalf("surviving tenant holds %d procs, want the whole pool (%d)", len(gSeg), len(sol.Graph.Processors()))
	}
}
