package graph

import (
	"math/rand"
	"testing"
)

// relabelRandom returns a copy of g with node ids permuted uniformly at
// random (kinds and edges carried along; paper labels dropped since
// Fingerprint must be invariant to drawing order, not paper labels).
func relabelRandom(g *Graph, rng *rand.Rand) *Graph {
	n := g.NumNodes()
	perm := rng.Perm(n)
	out := New(g.Name())
	// Create nodes in permuted positions: node v of g becomes perm[v].
	kinds := make([]Kind, n)
	for v := 0; v < n; v++ {
		kinds[perm[v]] = g.Kind(v)
	}
	for v := 0; v < n; v++ {
		out.AddNode(kinds[v], NoLabel)
	}
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(v) {
			if v < int(u) {
				out.AddEdge(perm[v], perm[int(u)])
			}
		}
	}
	return out
}

func TestFingerprintInvariantUnderRelabeling(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	base := buildTriangle(t)
	want := base.Fingerprint()
	for i := 0; i < 25; i++ {
		got := relabelRandom(base, rng).Fingerprint()
		if got != want {
			t.Fatalf("fingerprint changed under relabeling: %x vs %x", got, want)
		}
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	// Path p0-p1-p2 vs triangle: same sizes after adding an edge? Use two
	// clearly different graphs with identical node/edge counts.
	a := New("a") // 4-cycle
	for i := 0; i < 4; i++ {
		a.AddNode(Processor, NoLabel)
	}
	a.AddEdge(0, 1)
	a.AddEdge(1, 2)
	a.AddEdge(2, 3)
	a.AddEdge(3, 0)

	b := New("b") // triangle + pendant
	for i := 0; i < 4; i++ {
		b.AddNode(Processor, NoLabel)
	}
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(2, 3)

	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("fingerprint collision between 4-cycle and triangle+pendant")
	}
}

func TestFingerprintSensitiveToKinds(t *testing.T) {
	a := New("a")
	a.AddNode(Processor, NoLabel)
	a.AddNode(Processor, NoLabel)
	a.AddEdge(0, 1)
	b := New("b")
	b.AddNode(Processor, NoLabel)
	b.AddNode(InputTerminal, NoLabel)
	b.AddEdge(0, 1)
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("fingerprint ignores kinds")
	}
}

func TestIsomorphicBruteAcceptsRelabeling(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	base := buildTriangle(t)
	for i := 0; i < 10; i++ {
		other := relabelRandom(base, rng)
		if !IsomorphicBrute(base, other) {
			t.Fatal("IsomorphicBrute rejected a relabeled copy")
		}
	}
}

func TestIsomorphicBruteRejects(t *testing.T) {
	a := buildTriangle(t)
	b := a.Clone()
	b.RemoveEdge(0, 1) // break the processor triangle
	b.AddEdge(3, 1)    // keep edge count equal (i0 now degree 2)
	if IsomorphicBrute(a, b) {
		t.Fatal("IsomorphicBrute accepted non-isomorphic graphs")
	}
	c := New("c")
	c.AddNode(Processor, NoLabel)
	if IsomorphicBrute(a, c) {
		t.Fatal("different sizes accepted")
	}
	// Different kind counts, same node count.
	d := a.Clone()
	d.SetKind(3, OutputTerminal)
	if IsomorphicBrute(a, d) {
		t.Fatal("different kind counts accepted")
	}
}

func TestIsomorphicBruteTerminalKindsMatter(t *testing.T) {
	// Two graphs whose processor subgraphs are identical but whose terminal
	// kinds attach to different processors: K2 with i on p0/o on p1 vs i on
	// p0 and o on p0's partner swapped — use asymmetric case.
	mk := func(inputOn int) *Graph {
		g := New("t")
		p0 := g.AddNode(Processor, 0)
		p1 := g.AddNode(Processor, 1)
		p2 := g.AddNode(Processor, 2)
		g.AddEdge(p0, p1)
		g.AddEdge(p1, p2) // path p0-p1-p2: p1 is the center
		in := g.AddNode(InputTerminal, 0)
		out := g.AddNode(OutputTerminal, 0)
		g.AddEdge(in, inputOn)
		g.AddEdge(out, p2)
		_ = p0
		return g
	}
	endpoints := mk(0) // input at an end
	center := mk(1)    // input at the center
	if IsomorphicBrute(endpoints, center) {
		t.Fatal("terminal placement should distinguish the graphs")
	}
	if !IsomorphicBrute(endpoints, mk(0)) {
		t.Fatal("identical construction should be isomorphic")
	}
}

func TestIsomorphicBruteLimit(t *testing.T) {
	g := New("big")
	for i := 0; i < 13; i++ {
		g.AddNode(Processor, NoLabel)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for > 12 processors")
		}
	}()
	IsomorphicBrute(g, g)
}

func TestFingerprintAgreesWithIsomorphism(t *testing.T) {
	// Randomized cross-check: for random small graphs, isomorphic copies
	// share fingerprints.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 15; trial++ {
		g := New("r")
		n := 4 + rng.Intn(5)
		for i := 0; i < n; i++ {
			g.AddNode(Processor, NoLabel)
		}
		for e := 0; e < n+2; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				g.AddEdge(u, v)
			}
		}
		h := relabelRandom(g, rng)
		if g.Fingerprint() != h.Fingerprint() {
			t.Fatal("fingerprint differs for relabeled copy")
		}
		if !IsomorphicBrute(g, h) {
			t.Fatal("brute isomorphism rejected relabeled copy")
		}
	}
}

// cycleGraph returns an n-cycle of processors.
func cycleGraph(name string, n int) *Graph {
	g := New(name)
	for i := 0; i < n; i++ {
		g.AddNode(Processor, NoLabel)
	}
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

// twoTriangles returns two disjoint processor triangles: the classic
// WL-equivalent, non-isomorphic partner of the 6-cycle (every node is a
// degree-2 processor with degree-2 neighbors, so WL refinement never splits
// the color classes and the fingerprints collide).
func twoTriangles(name string) *Graph {
	g := New(name)
	for i := 0; i < 6; i++ {
		g.AddNode(Processor, NoLabel)
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(5, 3)
	return g
}

// TestFingerprintCollisionAdversarial pins the Fingerprint ↔ isomorphism
// gap with the C6 vs 2×C3 pair and proves the collision-verification path
// (Canonical byte inequality + IsomorphicBrute) actually triggers: the two
// graphs share a fingerprint yet are distinguished by both verifiers.
func TestFingerprintCollisionAdversarial(t *testing.T) {
	c6 := cycleGraph("c6", 6)
	tt := twoTriangles("2xc3")
	if c6.Fingerprint() != tt.Fingerprint() {
		t.Fatalf("expected WL fingerprint collision: C6=%x 2xC3=%x",
			c6.Fingerprint(), tt.Fingerprint())
	}
	fa, fb := c6.Canonical(), tt.Canonical()
	if !fa.Exact || !fb.Exact {
		t.Fatalf("IR search should be exact on 6-node graphs (exact: %v %v)", fa.Exact, fb.Exact)
	}
	if fa.Equal(fb) {
		t.Fatal("canonical forms must differ for non-isomorphic graphs")
	}
	if IsomorphicBrute(c6, tt) {
		t.Fatal("IsomorphicBrute must reject C6 vs 2xC3")
	}
}

func TestCanonicalInvariantUnderRelabeling(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, base := range []*Graph{buildTriangle(t), cycleGraph("c6", 6), twoTriangles("tt")} {
		want := base.Canonical()
		if !want.Exact {
			t.Fatalf("%s: expected exact canonical form", base.Name())
		}
		if want.Hash != base.Fingerprint() {
			t.Fatalf("%s: canonical hash must be the WL fingerprint", base.Name())
		}
		for i := 0; i < 20; i++ {
			got := relabelRandom(base, rng).Canonical()
			if !got.Equal(want) {
				t.Fatalf("%s: canonical form changed under relabeling", base.Name())
			}
		}
	}
}

func TestCanonicalLabelingDescribesGraph(t *testing.T) {
	// The labeling must be a permutation, and applying it must reproduce the
	// canonical bytes — i.e. Bytes really is an adjacency encoding of g.
	g := cycleGraph("c8", 8)
	g.AddNode(InputTerminal, NoLabel)
	g.AddNode(OutputTerminal, NoLabel)
	g.AddEdge(8, 0)
	g.AddEdge(9, 4)
	cf := g.Canonical()
	n := g.NumNodes()
	if len(cf.Labeling) != n {
		t.Fatalf("labeling length %d, want %d", len(cf.Labeling), n)
	}
	seen := make([]bool, n)
	for _, p := range cf.Labeling {
		if p < 0 || int(p) >= n || seen[p] {
			t.Fatalf("labeling is not a permutation: %v", cf.Labeling)
		}
		seen[p] = true
	}
	// Rebuild the graph in canonical order and re-encode: must match.
	h := New("rebuilt")
	kinds := make([]Kind, n)
	for v := 0; v < n; v++ {
		kinds[cf.Labeling[v]] = g.Kind(v)
	}
	for v := 0; v < n; v++ {
		h.AddNode(kinds[v], NoLabel)
	}
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(v) {
			if v < int(u) {
				h.AddEdge(int(cf.Labeling[v]), int(cf.Labeling[int(u)]))
			}
		}
	}
	if !h.Canonical().Equal(cf) {
		t.Fatal("rebuilt graph has a different canonical form")
	}
}

func TestCanonicalDistinguishesKindPlacement(t *testing.T) {
	// Same skeleton, different terminal attachment: forms must differ and
	// both be exact (so the inequality is a proof of non-isomorphism).
	mk := func(at int) *Graph {
		g := cycleGraph("c5", 5)
		in := g.AddNode(InputTerminal, NoLabel)
		g.AddEdge(in, at)
		out := g.AddNode(OutputTerminal, NoLabel)
		g.AddEdge(out, (at+1)%5)
		return g
	}
	a, b := mk(0), mk(1)
	if !IsomorphicBrute(a, b) {
		t.Fatal("rotated attachments should be isomorphic on a symmetric cycle")
	}
	if !a.Canonical().Equal(b.Canonical()) {
		t.Fatal("canonical forms must agree for isomorphic graphs")
	}
	c := mk(0)
	c.RemoveEdge(6, 1)
	c.AddEdge(6, 3) // output moved across the cycle: non-isomorphic
	if IsomorphicBrute(a, c) {
		t.Fatal("moved output should break isomorphism")
	}
	if a.Canonical().Equal(c.Canonical()) {
		t.Fatal("canonical forms must differ for non-isomorphic placements")
	}
}
