package graph

import (
	"math/rand"
	"testing"
)

// relabelRandom returns a copy of g with node ids permuted uniformly at
// random (kinds and edges carried along; paper labels dropped since
// Fingerprint must be invariant to drawing order, not paper labels).
func relabelRandom(g *Graph, rng *rand.Rand) *Graph {
	n := g.NumNodes()
	perm := rng.Perm(n)
	out := New(g.Name())
	// Create nodes in permuted positions: node v of g becomes perm[v].
	kinds := make([]Kind, n)
	for v := 0; v < n; v++ {
		kinds[perm[v]] = g.Kind(v)
	}
	for v := 0; v < n; v++ {
		out.AddNode(kinds[v], NoLabel)
	}
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(v) {
			if v < int(u) {
				out.AddEdge(perm[v], perm[int(u)])
			}
		}
	}
	return out
}

func TestFingerprintInvariantUnderRelabeling(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	base := buildTriangle(t)
	want := base.Fingerprint()
	for i := 0; i < 25; i++ {
		got := relabelRandom(base, rng).Fingerprint()
		if got != want {
			t.Fatalf("fingerprint changed under relabeling: %x vs %x", got, want)
		}
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	// Path p0-p1-p2 vs triangle: same sizes after adding an edge? Use two
	// clearly different graphs with identical node/edge counts.
	a := New("a") // 4-cycle
	for i := 0; i < 4; i++ {
		a.AddNode(Processor, NoLabel)
	}
	a.AddEdge(0, 1)
	a.AddEdge(1, 2)
	a.AddEdge(2, 3)
	a.AddEdge(3, 0)

	b := New("b") // triangle + pendant
	for i := 0; i < 4; i++ {
		b.AddNode(Processor, NoLabel)
	}
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(2, 3)

	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("fingerprint collision between 4-cycle and triangle+pendant")
	}
}

func TestFingerprintSensitiveToKinds(t *testing.T) {
	a := New("a")
	a.AddNode(Processor, NoLabel)
	a.AddNode(Processor, NoLabel)
	a.AddEdge(0, 1)
	b := New("b")
	b.AddNode(Processor, NoLabel)
	b.AddNode(InputTerminal, NoLabel)
	b.AddEdge(0, 1)
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("fingerprint ignores kinds")
	}
}

func TestIsomorphicBruteAcceptsRelabeling(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	base := buildTriangle(t)
	for i := 0; i < 10; i++ {
		other := relabelRandom(base, rng)
		if !IsomorphicBrute(base, other) {
			t.Fatal("IsomorphicBrute rejected a relabeled copy")
		}
	}
}

func TestIsomorphicBruteRejects(t *testing.T) {
	a := buildTriangle(t)
	b := a.Clone()
	b.RemoveEdge(0, 1) // break the processor triangle
	b.AddEdge(3, 1)    // keep edge count equal (i0 now degree 2)
	if IsomorphicBrute(a, b) {
		t.Fatal("IsomorphicBrute accepted non-isomorphic graphs")
	}
	c := New("c")
	c.AddNode(Processor, NoLabel)
	if IsomorphicBrute(a, c) {
		t.Fatal("different sizes accepted")
	}
	// Different kind counts, same node count.
	d := a.Clone()
	d.SetKind(3, OutputTerminal)
	if IsomorphicBrute(a, d) {
		t.Fatal("different kind counts accepted")
	}
}

func TestIsomorphicBruteTerminalKindsMatter(t *testing.T) {
	// Two graphs whose processor subgraphs are identical but whose terminal
	// kinds attach to different processors: K2 with i on p0/o on p1 vs i on
	// p0 and o on p0's partner swapped — use asymmetric case.
	mk := func(inputOn int) *Graph {
		g := New("t")
		p0 := g.AddNode(Processor, 0)
		p1 := g.AddNode(Processor, 1)
		p2 := g.AddNode(Processor, 2)
		g.AddEdge(p0, p1)
		g.AddEdge(p1, p2) // path p0-p1-p2: p1 is the center
		in := g.AddNode(InputTerminal, 0)
		out := g.AddNode(OutputTerminal, 0)
		g.AddEdge(in, inputOn)
		g.AddEdge(out, p2)
		_ = p0
		return g
	}
	endpoints := mk(0) // input at an end
	center := mk(1)    // input at the center
	if IsomorphicBrute(endpoints, center) {
		t.Fatal("terminal placement should distinguish the graphs")
	}
	if !IsomorphicBrute(endpoints, mk(0)) {
		t.Fatal("identical construction should be isomorphic")
	}
}

func TestIsomorphicBruteLimit(t *testing.T) {
	g := New("big")
	for i := 0; i < 13; i++ {
		g.AddNode(Processor, NoLabel)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for > 12 processors")
		}
	}()
	IsomorphicBrute(g, g)
}

func TestFingerprintAgreesWithIsomorphism(t *testing.T) {
	// Randomized cross-check: for random small graphs, isomorphic copies
	// share fingerprints.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 15; trial++ {
		g := New("r")
		n := 4 + rng.Intn(5)
		for i := 0; i < n; i++ {
			g.AddNode(Processor, NoLabel)
		}
		for e := 0; e < n+2; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				g.AddEdge(u, v)
			}
		}
		h := relabelRandom(g, rng)
		if g.Fingerprint() != h.Fingerprint() {
			t.Fatal("fingerprint differs for relabeled copy")
		}
		if !IsomorphicBrute(g, h) {
			t.Fatal("brute isomorphism rejected relabeled copy")
		}
	}
}
