package graph

import (
	"encoding/json"
	"testing"
)

// FuzzUnmarshalJSON feeds arbitrary bytes to the graph decoder: it must
// either reject the input or produce a structurally valid graph that
// round-trips byte-identically.
func FuzzUnmarshalJSON(f *testing.F) {
	tri := buildTriangle(f)
	seed, err := json.Marshal(tri)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{"name":"x","nodes":[],"edges":[]}`))
	f.Add([]byte(`{"name":"x","nodes":[{"kind":"processor"}],"edges":[[0,0]]}`))
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var g Graph
		if err := json.Unmarshal(data, &g); err != nil {
			return // rejection is fine
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("decoder accepted a structurally invalid graph: %v", err)
		}
		out1, err := json.Marshal(&g)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		var g2 Graph
		if err := json.Unmarshal(out1, &g2); err != nil {
			t.Fatalf("round trip decode: %v", err)
		}
		out2, err := json.Marshal(&g2)
		if err != nil {
			t.Fatal(err)
		}
		if string(out1) != string(out2) {
			t.Fatal("round trip is not a fixed point")
		}
	})
}
