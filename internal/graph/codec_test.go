package graph

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	g := buildTriangle(t)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip size mismatch: %s vs %s", back.Summary(), g.Summary())
	}
	for v := 0; v < g.NumNodes(); v++ {
		if back.Kind(v) != g.Kind(v) || back.Label(v) != g.Label(v) {
			t.Fatalf("node %d mismatch", v)
		}
		for u := 0; u < g.NumNodes(); u++ {
			if back.HasEdge(v, u) != g.HasEdge(v, u) {
				t.Fatalf("edge (%d,%d) mismatch", v, u)
			}
		}
	}
	if back.Name() != "triangle" {
		t.Fatalf("name = %q", back.Name())
	}
	// Determinism: marshaling twice gives identical bytes.
	data2, _ := json.Marshal(&back)
	if !bytes.Equal(data, data2) {
		t.Fatal("non-deterministic JSON encoding")
	}
}

func TestJSONUnlabeledNodeOmitsLabel(t *testing.T) {
	g := New("u")
	g.AddNode(Processor, NoLabel)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "label") {
		t.Fatalf("unlabeled node should omit label field: %s", data)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Label(0) != NoLabel {
		t.Fatalf("label = %d, want NoLabel", back.Label(0))
	}
}

func TestJSONRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"bad kind":     `{"name":"x","nodes":[{"kind":"alien"}],"edges":[]}`,
		"self loop":    `{"name":"x","nodes":[{"kind":"processor"},{"kind":"processor"}],"edges":[[0,0]]}`,
		"out of range": `{"name":"x","nodes":[{"kind":"processor"}],"edges":[[0,5]]}`,
		"duplicate":    `{"name":"x","nodes":[{"kind":"processor"},{"kind":"processor"}],"edges":[[0,1],[1,0]]}`,
		"not json":     `{{{`,
	}
	for name, in := range cases {
		var g Graph
		if err := json.Unmarshal([]byte(in), &g); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	g := buildTriangle(t)
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graph \"triangle\"", "n0 -- n1", "shape=square", "i0", "o0", "p1"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
	// Each undirected edge appears exactly once.
	if strings.Count(out, " -- ") != g.NumEdges() {
		t.Errorf("DOT edge count = %d, want %d", strings.Count(out, " -- "), g.NumEdges())
	}
}

func TestSanitizeDOTName(t *testing.T) {
	if got := sanitizeDOTName(""); got != "G" {
		t.Fatalf("empty name = %q", got)
	}
	if got := sanitizeDOTName("a\"b\nc"); got != "a_b_c" {
		t.Fatalf("sanitize = %q", got)
	}
}
