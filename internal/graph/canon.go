package graph

import (
	"hash/fnv"
	"sort"

	"gdpn/internal/combin"
)

// WLColors returns the per-node colors after iterated Weisfeiler–Lehman
// refinement. seed gives the initial color of each node; a nil seed uses the
// node kinds. The refinement is deterministic (round count depends only on
// the node count), so two nodes related by a seed-preserving automorphism
// always receive equal colors — internal/autom uses this as a sound
// candidate filter when searching for automorphism generators. Unequal
// colors prove two nodes are NOT exchangeable; equal colors may (rarely)
// collide.
func (g *Graph) WLColors(seed []uint64) []uint64 {
	n := g.NumNodes()
	colors := make([]uint64, n)
	if seed != nil {
		if len(seed) != n {
			panic("graph: WLColors seed length mismatch")
		}
		copy(colors, seed)
	} else {
		for v := 0; v < n; v++ {
			colors[v] = uint64(g.Kind(v)) + 1
		}
	}
	next := make([]uint64, n)
	neigh := make([]uint64, 0, 16)
	rounds := 3 + n/4
	if rounds > 16 {
		rounds = 16
	}
	for r := 0; r < rounds; r++ {
		for v := 0; v < n; v++ {
			neigh = neigh[:0]
			for _, u := range g.adj[v] {
				neigh = append(neigh, colors[u])
			}
			sort.Slice(neigh, func(i, j int) bool { return neigh[i] < neigh[j] })
			h := fnv.New64a()
			writeU64(h, colors[v])
			for _, c := range neigh {
				writeU64(h, c)
			}
			next[v] = h.Sum64()
		}
		colors, next = next, colors
	}
	return colors
}

// Fingerprint returns an isomorphism-invariant hash of the labeled graph,
// computed by iterated Weisfeiler–Lehman color refinement seeded with node
// kinds. Graphs with different fingerprints are guaranteed non-isomorphic;
// equal fingerprints may (rarely) collide, so the search module uses
// Fingerprint only to bucket candidates and falls back to IsomorphicBrute
// inside a bucket when exact deduplication matters.
func (g *Graph) Fingerprint() uint64 {
	n := g.NumNodes()
	final := g.WLColors(nil)
	sort.Slice(final, func(i, j int) bool { return final[i] < final[j] })
	h := fnv.New64a()
	writeU64(h, uint64(n))
	writeU64(h, uint64(g.edges))
	for _, c := range final {
		writeU64(h, c)
	}
	return h.Sum64()
}

func writeU64(h interface{ Write([]byte) (int, error) }, v uint64) {
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	h.Write(buf[:])
}

// IsomorphicBrute decides kind-preserving isomorphism by enumerating
// permutations of the processor nodes (terminals have degree ≤ 1 in
// standard graphs, so once processors are matched, terminal matching is a
// bipartite check). It is exponential and intended only for the small
// uniqueness proofs (Lemmas 3.7/3.9) and search deduplication; it refuses
// graphs with more than 12 processors.
func IsomorphicBrute(a, b *Graph) bool {
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for _, k := range []Kind{Processor, InputTerminal, OutputTerminal} {
		if a.CountKind(k) != b.CountKind(k) {
			return false
		}
	}
	pa, pb := a.Processors(), b.Processors()
	if len(pa) > 12 {
		panic("graph: IsomorphicBrute limited to ≤ 12 processors")
	}
	// Degree-multiset quick rejection.
	if !sameDegreeMultiset(a, pa, b, pb) {
		return false
	}
	found := false
	combin.Permutations(len(pa), func(perm []int) bool {
		// map pa[i] -> pb[perm[i]]
		for i := range pa {
			if a.Degree(pa[i]) != b.Degree(pb[perm[i]]) {
				return true // continue
			}
		}
		for i := range pa {
			for j := i + 1; j < len(pa); j++ {
				if a.HasEdge(pa[i], pa[j]) != b.HasEdge(pb[perm[i]], pb[perm[j]]) {
					return true
				}
			}
		}
		// Processor mapping consistent; check terminal attachment profile:
		// for each processor, the multiset of attached terminal kinds must
		// match (terminals have arbitrary degree in general, but in all our
		// graphs they attach to exactly one processor, so this suffices
		// combined with the degree check above).
		for i := range pa {
			if termProfile(a, pa[i]) != termProfile(b, pb[perm[i]]) {
				return true
			}
		}
		found = true
		return false
	})
	return found
}

func termProfile(g *Graph, v int) [2]int {
	var prof [2]int
	for _, u := range g.adj[v] {
		switch g.Kind(int(u)) {
		case InputTerminal:
			prof[0]++
		case OutputTerminal:
			prof[1]++
		}
	}
	return prof
}

func sameDegreeMultiset(a *Graph, pa []int, b *Graph, pb []int) bool {
	da := make([]int, len(pa))
	db := make([]int, len(pb))
	for i := range pa {
		da[i] = a.Degree(pa[i])
		db[i] = b.Degree(pb[i])
	}
	sort.Ints(da)
	sort.Ints(db)
	for i := range da {
		if da[i] != db[i] {
			return false
		}
	}
	return true
}
