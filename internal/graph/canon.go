package graph

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	"gdpn/internal/combin"
)

// WLColors returns the per-node colors after iterated Weisfeiler–Lehman
// refinement. seed gives the initial color of each node; a nil seed uses the
// node kinds. The refinement is deterministic (round count depends only on
// the node count), so two nodes related by a seed-preserving automorphism
// always receive equal colors — internal/autom uses this as a sound
// candidate filter when searching for automorphism generators. Unequal
// colors prove two nodes are NOT exchangeable; equal colors may (rarely)
// collide.
func (g *Graph) WLColors(seed []uint64) []uint64 {
	n := g.NumNodes()
	colors := make([]uint64, n)
	if seed != nil {
		if len(seed) != n {
			panic("graph: WLColors seed length mismatch")
		}
		copy(colors, seed)
	} else {
		for v := 0; v < n; v++ {
			colors[v] = uint64(g.Kind(v)) + 1
		}
	}
	next := make([]uint64, n)
	neigh := make([]uint64, 0, 16)
	rounds := 3 + n/4
	if rounds > 16 {
		rounds = 16
	}
	for r := 0; r < rounds; r++ {
		for v := 0; v < n; v++ {
			neigh = neigh[:0]
			for _, u := range g.adj[v] {
				neigh = append(neigh, colors[u])
			}
			sort.Slice(neigh, func(i, j int) bool { return neigh[i] < neigh[j] })
			h := fnv.New64a()
			writeU64(h, colors[v])
			for _, c := range neigh {
				writeU64(h, c)
			}
			next[v] = h.Sum64()
		}
		colors, next = next, colors
	}
	return colors
}

// Fingerprint returns an isomorphism-invariant hash of the labeled graph,
// computed by iterated Weisfeiler–Lehman color refinement seeded with node
// kinds. Graphs with different fingerprints are guaranteed non-isomorphic.
//
// Equal fingerprints do NOT imply isomorphism: WL refinement cannot separate
// certain non-isomorphic pairs (e.g. a 6-cycle vs. two disjoint triangles
// over degree-2 nodes of one kind — every node looks identical to WL), and
// the final hash can collide even when the color multisets differ. Callers
// that need a trustworthy equality decision must verify a fingerprint match
// with Canonical() byte equality (sound: equal bytes ⇒ isomorphic) or, for
// small graphs, IsomorphicBrute. The search module and internal/store both
// use Fingerprint only to bucket candidates and verify inside a bucket.
func (g *Graph) Fingerprint() uint64 {
	n := g.NumNodes()
	final := g.WLColors(nil)
	sort.Slice(final, func(i, j int) bool { return final[i] < final[j] })
	h := fnv.New64a()
	writeU64(h, uint64(n))
	writeU64(h, uint64(g.edges))
	for _, c := range final {
		writeU64(h, c)
	}
	return h.Sum64()
}

func writeU64(h interface{ Write([]byte) (int, error) }, v uint64) {
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	h.Write(buf[:])
}

// Canonical-labeling budgets. canonMaxNodes gates the IR search entirely
// (larger graphs get a greedy — still sound, not canonical — labeling);
// canonLeafBudget caps the number of discrete leaves the search may visit
// before giving up on exactness. Both exist so Canonical stays cheap on
// adversarial highly-symmetric inputs; every budget exhaustion degrades to
// Exact=false, never to an unsound answer.
const (
	canonMaxNodes   = 512
	canonLeafBudget = 512
)

// CanonicalForm is the strengthened content-address of a graph under
// kind-preserving isomorphism (paper labels are ignored, matching
// IsomorphicBrute's notion of equivalence).
//
// Trust model:
//   - Hash is the WL Fingerprint: cheap index key, collisions possible.
//   - Bytes is a complete adjacency encoding of the graph under some
//     concrete labeling, so byte equality of two CanonicalForms proves the
//     graphs isomorphic UNCONDITIONALLY (both are the graph the bytes
//     describe). This holds even when Exact is false.
//   - Byte inequality proves non-isomorphism only when BOTH forms are
//     Exact (the labeling was the true canonical one). Otherwise it means
//     "unknown": callers fall back to IsomorphicBrute or conservatively
//     treat the graphs as distinct (a safe cache miss, never a false hit).
type CanonicalForm struct {
	Hash     uint64  // WL fingerprint (index key; may collide)
	Bytes    []byte  // adjacency encoding under Labeling (verifier)
	Labeling []int32 // original node id -> canonical position
	Exact    bool    // true iff the IR search completed within budget
}

// Equal reports whether two canonical forms describe isomorphic graphs, as
// far as byte equality can tell. False means "not proven isomorphic", not
// "non-isomorphic", unless both forms are Exact.
func (c CanonicalForm) Equal(o CanonicalForm) bool {
	return c.Hash == o.Hash && bytes.Equal(c.Bytes, o.Bytes)
}

// Canonical computes a canonical form via individualization–refinement:
// refine the kind-seeded coloring to a stable equitable partition, branch on
// every vertex of the first non-singleton cell, and keep the
// lexicographically smallest leaf encoding. Two isomorphic graphs within
// budget produce byte-identical forms with Exact=true; over budget the form
// degrades per the CanonicalForm trust model. Cost is output-sensitive: one
// refinement is O((V+E) log V) and typical graphs need a handful of leaves.
func (g *Graph) Canonical() CanonicalForm {
	n := g.NumNodes()
	c := &canonCtx{g: g, n: n, exact: true}
	base := make([]int, n)
	for v := 0; v < n; v++ {
		base[v] = int(g.kinds[v])
	}
	base = c.refine(base)
	if n > canonMaxNodes {
		c.exact = false
		c.greedyLeaf(base)
	} else {
		c.search(base)
		if c.best == nil { // budget hit before the first leaf
			c.greedyLeaf(base)
		}
	}
	return CanonicalForm{
		Hash:     g.Fingerprint(),
		Bytes:    c.best,
		Labeling: c.bestLab,
		Exact:    c.exact,
	}
}

type canonCtx struct {
	g       *Graph
	n       int
	leaves  int
	exact   bool
	best    []byte
	bestLab []int32
}

// refine iterates color refinement until the partition is stable. Colors are
// normalized ranks 0..k-1 assigned by lexicographic signature order, so the
// result depends only on the isomorphism class of (graph, input partition).
func (c *canonCtx) refine(colors []int) []int {
	n := c.n
	cur := c.normalize(colors)
	sigs := make([][]int, n)
	order := make([]int, n)
	for {
		for v := 0; v < n; v++ {
			adj := c.g.adj[v]
			s := make([]int, 1, 1+len(adj))
			s[0] = cur[v]
			for _, u := range adj {
				s = append(s, cur[u])
			}
			sort.Ints(s[1:])
			sigs[v] = s
		}
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(i, j int) bool {
			return lessIntSlice(sigs[order[i]], sigs[order[j]])
		})
		next := make([]int, n)
		rank := 0
		for i, v := range order {
			if i > 0 && lessIntSlice(sigs[order[i-1]], sigs[v]) {
				rank++
			}
			next[v] = rank
		}
		if rank+1 == numColors(cur) {
			return cur // no cell split: stable
		}
		cur = next
	}
}

func (c *canonCtx) normalize(colors []int) []int {
	seen := make(map[int]struct{}, len(colors))
	for _, x := range colors {
		seen[x] = struct{}{}
	}
	vals := make([]int, 0, len(seen))
	for x := range seen {
		vals = append(vals, x)
	}
	sort.Ints(vals)
	rank := make(map[int]int, len(vals))
	for i, x := range vals {
		rank[x] = i
	}
	out := make([]int, len(colors))
	for v, x := range colors {
		out[v] = rank[x]
	}
	return out
}

func numColors(colors []int) int {
	max := -1
	for _, x := range colors {
		if x > max {
			max = x
		}
	}
	return max + 1
}

func lessIntSlice(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// search explores the IR branching tree rooted at the stable coloring,
// keeping the lexicographically smallest leaf encoding in c.best.
func (c *canonCtx) search(colors []int) {
	if c.leaves >= canonLeafBudget {
		c.exact = false
		return
	}
	cell := c.firstNonSingletonCell(colors)
	if cell == nil {
		c.leaves++
		c.offerLeaf(colors)
		return
	}
	for _, v := range cell {
		if c.leaves >= canonLeafBudget {
			c.exact = false
			return
		}
		child := append([]int(nil), colors...)
		child[v] = c.n // fresh color above every rank: individualize v
		c.search(c.refine(child))
	}
}

// firstNonSingletonCell returns the members of the smallest-colored cell
// with ≥ 2 members (the classic IR target-cell rule), or nil if the
// partition is discrete.
func (c *canonCtx) firstNonSingletonCell(colors []int) []int {
	counts := make([]int, numColors(colors))
	for _, x := range colors {
		counts[x]++
	}
	target := -1
	for col, cnt := range counts {
		if cnt >= 2 {
			target = col
			break
		}
	}
	if target == -1 {
		return nil
	}
	var cell []int
	for v, x := range colors {
		if x == target {
			cell = append(cell, v)
		}
	}
	return cell
}

// greedyLeaf discretizes the partition by repeatedly individualizing the
// lowest-id vertex of the first non-singleton cell. The result is a valid
// adjacency encoding (byte-equal ⇒ isomorphic still holds) but not
// canonical; callers only reach it with c.exact already false or about to
// be forced false.
func (c *canonCtx) greedyLeaf(colors []int) {
	c.exact = false
	cur := colors
	for {
		cell := c.firstNonSingletonCell(cur)
		if cell == nil {
			break
		}
		child := append([]int(nil), cur...)
		child[cell[0]] = c.n
		cur = c.refine(child)
	}
	c.offerLeaf(cur)
}

// offerLeaf encodes a discrete coloring and keeps it if it beats the
// incumbent lexicographically.
func (c *canonCtx) offerLeaf(colors []int) {
	enc, lab := c.encode(colors)
	if c.best == nil || bytes.Compare(enc, c.best) < 0 {
		c.best, c.bestLab = enc, lab
	}
}

// encode serializes the graph under the discrete coloring: uvarint node and
// edge counts, node kinds in canonical order, then for each canonical
// position the sorted canonical neighbors above it (each edge written once).
func (c *canonCtx) encode(colors []int) ([]byte, []int32) {
	n := c.n
	lab := make([]int32, n)  // orig -> canon
	orig := make([]int32, n) // canon -> orig
	for v, col := range colors {
		lab[v] = int32(col)
		orig[col] = int32(v)
	}
	buf := make([]byte, 0, 2+n+4*c.g.edges)
	buf = binary.AppendUvarint(buf, uint64(n))
	buf = binary.AppendUvarint(buf, uint64(c.g.edges))
	for pos := 0; pos < n; pos++ {
		buf = append(buf, byte(c.g.kinds[orig[pos]]))
	}
	neigh := make([]int, 0, 16)
	for pos := 0; pos < n; pos++ {
		neigh = neigh[:0]
		for _, u := range c.g.adj[orig[pos]] {
			if up := int(lab[u]); up > pos {
				neigh = append(neigh, up)
			}
		}
		sort.Ints(neigh)
		buf = binary.AppendUvarint(buf, uint64(len(neigh)))
		for _, up := range neigh {
			buf = binary.AppendUvarint(buf, uint64(up))
		}
	}
	return buf, lab
}

// DecodeCanonical reconstructs a graph from a CanonicalForm.Bytes
// encoding. The result carries no name or paper labels (the encoding
// deliberately excludes both); it is isomorphic to every graph whose
// canonical form produced the same bytes.
func DecodeCanonical(enc []byte) (*Graph, error) {
	rd := enc
	next := func() (uint64, error) {
		v, n := binary.Uvarint(rd)
		if n <= 0 {
			return 0, fmt.Errorf("graph: truncated canonical encoding")
		}
		rd = rd[n:]
		return v, nil
	}
	nv, err := next()
	if err != nil {
		return nil, err
	}
	ev, err := next()
	if err != nil {
		return nil, err
	}
	n := int(nv)
	if len(rd) < n {
		return nil, fmt.Errorf("graph: truncated canonical kinds")
	}
	g := New("")
	for i := 0; i < n; i++ {
		k := Kind(rd[i])
		if k > OutputTerminal {
			return nil, fmt.Errorf("graph: invalid kind %d in canonical encoding", rd[i])
		}
		g.AddNode(k, NoLabel)
	}
	rd = rd[n:]
	for v := 0; v < n; v++ {
		cnt, err := next()
		if err != nil {
			return nil, err
		}
		for j := uint64(0); j < cnt; j++ {
			u, err := next()
			if err != nil {
				return nil, err
			}
			if int(u) <= v || int(u) >= n || g.HasEdge(v, int(u)) {
				return nil, fmt.Errorf("graph: invalid canonical edge (%d,%d)", v, u)
			}
			g.AddEdge(v, int(u))
		}
	}
	if g.NumEdges() != int(ev) {
		return nil, fmt.Errorf("graph: canonical edge count mismatch: %d vs %d", g.NumEdges(), ev)
	}
	return g, nil
}

// IsomorphicBrute decides kind-preserving isomorphism by enumerating
// permutations of the processor nodes (terminals have degree ≤ 1 in
// standard graphs, so once processors are matched, terminal matching is a
// bipartite check). It is exponential and intended only for the small
// uniqueness proofs (Lemmas 3.7/3.9) and search deduplication; it refuses
// graphs with more than 12 processors.
func IsomorphicBrute(a, b *Graph) bool {
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for _, k := range []Kind{Processor, InputTerminal, OutputTerminal} {
		if a.CountKind(k) != b.CountKind(k) {
			return false
		}
	}
	pa, pb := a.Processors(), b.Processors()
	if len(pa) > 12 {
		panic("graph: IsomorphicBrute limited to ≤ 12 processors")
	}
	// Degree-multiset quick rejection.
	if !sameDegreeMultiset(a, pa, b, pb) {
		return false
	}
	found := false
	combin.Permutations(len(pa), func(perm []int) bool {
		// map pa[i] -> pb[perm[i]]
		for i := range pa {
			if a.Degree(pa[i]) != b.Degree(pb[perm[i]]) {
				return true // continue
			}
		}
		for i := range pa {
			for j := i + 1; j < len(pa); j++ {
				if a.HasEdge(pa[i], pa[j]) != b.HasEdge(pb[perm[i]], pb[perm[j]]) {
					return true
				}
			}
		}
		// Processor mapping consistent; check terminal attachment profile:
		// for each processor, the multiset of attached terminal kinds must
		// match (terminals have arbitrary degree in general, but in all our
		// graphs they attach to exactly one processor, so this suffices
		// combined with the degree check above).
		for i := range pa {
			if termProfile(a, pa[i]) != termProfile(b, pb[perm[i]]) {
				return true
			}
		}
		found = true
		return false
	})
	return found
}

func termProfile(g *Graph, v int) [2]int {
	var prof [2]int
	for _, u := range g.adj[v] {
		switch g.Kind(int(u)) {
		case InputTerminal:
			prof[0]++
		case OutputTerminal:
			prof[1]++
		}
	}
	return prof
}

func sameDegreeMultiset(a *Graph, pa []int, b *Graph, pb []int) bool {
	da := make([]int, len(pa))
	db := make([]int, len(pb))
	for i := range pa {
		da[i] = a.Degree(pa[i])
		db[i] = b.Degree(pb[i])
	}
	sort.Ints(da)
	sort.Ints(db)
	for i := range da {
		if da[i] != db[i] {
			return false
		}
	}
	return true
}
