package graph

import "fmt"

// Path is a sequence of distinct node ids in which consecutive nodes are
// intended to be adjacent. A pipeline (paper §2) is a Path whose first and
// last nodes are terminals of opposite kinds and whose interior visits
// every healthy processor.
type Path []int

// IsWalk reports whether consecutive nodes of p are adjacent in g.
func (p Path) IsWalk(g *Graph) bool {
	for i := 1; i < len(p); i++ {
		if !g.HasEdge(p[i-1], p[i]) {
			return false
		}
	}
	return true
}

// Distinct reports whether all nodes of p are distinct. Pipelines are
// short (≤ the node count), so the quadratic scan beats a hash set — it
// allocates nothing, which matters on the certificate-replay hot path
// where CheckPipeline runs once per cached fault set.
func (p Path) Distinct() bool {
	if len(p) <= 64 {
		for i := 1; i < len(p); i++ {
			for j := 0; j < i; j++ {
				if p[j] == p[i] {
					return false
				}
			}
		}
		return true
	}
	seen := make(map[int]struct{}, len(p))
	for _, v := range p {
		if _, dup := seen[v]; dup {
			return false
		}
		seen[v] = struct{}{}
	}
	return true
}

// Reverse reverses p in place and returns it.
func (p Path) Reverse() Path {
	for i, j := 0, len(p)-1; i < j; i, j = i+1, j-1 {
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// String renders the path with the paper's node notation: i/o for
// terminals, p for processors, subscripted by the paper label (or node id
// when unlabeled), e.g. "i1 — p3 — p4 — o2".
func (p Path) String(g *Graph) string {
	s := ""
	for idx, v := range p {
		if idx > 0 {
			s += " — "
		}
		s += NodeName(g, v)
	}
	return s
}

// NodeName returns the paper-style name of node v: p<label>, i<label>, or
// o<label>, falling back to the node id when the node is unlabeled.
func NodeName(g *Graph, v int) string {
	tag := g.Label(v)
	id := fmt.Sprint(tag)
	if tag == NoLabel {
		id = fmt.Sprintf("#%d", v)
	}
	switch g.Kind(v) {
	case InputTerminal:
		return "i" + id
	case OutputTerminal:
		return "o" + id
	default:
		return "p" + id
	}
}
