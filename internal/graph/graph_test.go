package graph

import (
	"math/rand"
	"testing"

	"gdpn/internal/bitset"
)

// buildTriangle returns i0 — p0 — p1 — p2 — o0 with p-clique.
func buildTriangle(t testing.TB) *Graph {
	g := New("triangle")
	p0 := g.AddNode(Processor, 0)
	p1 := g.AddNode(Processor, 1)
	p2 := g.AddNode(Processor, 2)
	i0 := g.AddNode(InputTerminal, 0)
	o0 := g.AddNode(OutputTerminal, 0)
	g.AddEdge(p0, p1)
	g.AddEdge(p1, p2)
	g.AddEdge(p0, p2)
	g.AddEdge(i0, p0)
	g.AddEdge(o0, p2)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return g
}

func TestAddNodeAndKinds(t *testing.T) {
	g := buildTriangle(t)
	if g.NumNodes() != 5 || g.NumEdges() != 5 {
		t.Fatalf("nodes=%d edges=%d", g.NumNodes(), g.NumEdges())
	}
	if g.CountKind(Processor) != 3 || g.CountKind(InputTerminal) != 1 || g.CountKind(OutputTerminal) != 1 {
		t.Fatal("kind counts wrong")
	}
	if got := g.Processors(); len(got) != 3 || got[0] != 0 {
		t.Fatalf("Processors = %v", got)
	}
	if got := len(g.InputTerminals()); got != 1 {
		t.Fatalf("inputs = %d", got)
	}
	if got := len(g.OutputTerminals()); got != 1 {
		t.Fatalf("outputs = %d", got)
	}
}

func TestKindString(t *testing.T) {
	if Processor.String() != "processor" || InputTerminal.String() != "input" || OutputTerminal.String() != "output" {
		t.Fatal("kind strings")
	}
	if Kind(9).String() != "kind(9)" {
		t.Fatalf("unknown kind string = %q", Kind(9).String())
	}
}

func TestEdgePanics(t *testing.T) {
	g := buildTriangle(t)
	for name, fn := range map[string]func(){
		"self-loop":    func() { g.AddEdge(0, 0) },
		"duplicate":    func() { g.AddEdge(0, 1) },
		"out-of-range": func() { g.AddEdge(0, 99) },
		"negative":     func() { g.AddEdge(-1, 0) },
		"remove-miss":  func() { g.RemoveEdge(3, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestRemoveEdge(t *testing.T) {
	g := buildTriangle(t)
	g.RemoveEdge(0, 1)
	if g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("edge still present")
	}
	if g.NumEdges() != 4 {
		t.Fatalf("edges = %d, want 4", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate after remove: %v", err)
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := New("star")
	c := g.AddNode(Processor, NoLabel)
	var leaves []int
	for i := 0; i < 5; i++ {
		leaves = append(leaves, g.AddNode(Processor, NoLabel))
	}
	// Add in reverse to exercise sorting.
	for i := len(leaves) - 1; i >= 0; i-- {
		g.AddEdge(c, leaves[i])
	}
	ns := g.Neighbors(c)
	for i := 1; i < len(ns); i++ {
		if ns[i-1] >= ns[i] {
			t.Fatalf("Neighbors not sorted: %v", ns)
		}
	}
	if g.Degree(c) != 5 {
		t.Fatalf("Degree = %d", g.Degree(c))
	}
}

func TestDegreeStats(t *testing.T) {
	g := buildTriangle(t)
	if got := g.MaxProcessorDegree(); got != 3 {
		t.Fatalf("MaxProcessorDegree = %d, want 3", got)
	}
	if got := g.MinProcessorDegree(); got != 2 {
		t.Fatalf("MinProcessorDegree = %d, want 2 (p1 has no terminal)", got)
	}
	if got := g.MaxDegree(); got != 3 {
		t.Fatalf("MaxDegree = %d", got)
	}
	if got := g.ProcessorNeighborCount(0); got != 2 {
		t.Fatalf("ProcessorNeighborCount(p0) = %d, want 2", got)
	}
	empty := New("empty")
	if empty.MaxDegree() != 0 || empty.MinProcessorDegree() != 0 {
		t.Fatal("empty graph degrees")
	}
}

func TestNodeByKindLabel(t *testing.T) {
	g := buildTriangle(t)
	if v := g.NodeByKindLabel(Processor, 1); v != 1 {
		t.Fatalf("NodeByKindLabel(p1) = %d", v)
	}
	if v := g.NodeByKindLabel(InputTerminal, 7); v != -1 {
		t.Fatalf("missing label should give -1, got %d", v)
	}
}

func TestSetKindSetLabel(t *testing.T) {
	g := buildTriangle(t)
	g.SetKind(3, Processor)
	g.SetLabel(3, 42)
	if g.Kind(3) != Processor || g.Label(3) != 42 {
		t.Fatal("SetKind/SetLabel")
	}
}

func TestCloneDeep(t *testing.T) {
	g := buildTriangle(t)
	c := g.Clone()
	c.AddEdge(3, 1) // i0 - p1 in the clone only
	if g.HasEdge(3, 1) {
		t.Fatal("clone shares storage")
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("clone Validate: %v", err)
	}
	if c.Name() != g.Name() {
		t.Fatal("clone name")
	}
}

func TestKindSet(t *testing.T) {
	g := buildTriangle(t)
	ps := g.KindSet(Processor)
	if ps.Count() != 3 || !ps.Contains(0) || !ps.Contains(2) || ps.Contains(3) {
		t.Fatalf("KindSet = %v", ps)
	}
}

func TestConnectedIgnoring(t *testing.T) {
	g := buildTriangle(t)
	if !g.ConnectedIgnoring(nil) {
		t.Fatal("triangle+terminals should be connected")
	}
	// Removing p0 and p2 disconnects i0 and o0 from the rest.
	excl := bitset.FromSlice(g.NumNodes(), []int{0, 2})
	if g.ConnectedIgnoring(excl) {
		t.Fatal("should be disconnected after removing p0, p2")
	}
	// Excluding everything is vacuously connected.
	all := bitset.New(g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		all.Add(v)
	}
	if !g.ConnectedIgnoring(all) {
		t.Fatal("empty graph should count as connected")
	}
}

func TestAddCirculantEdges(t *testing.T) {
	g := New("c8")
	ring := make([]int, 8)
	for i := range ring {
		ring[i] = g.AddNode(Processor, i)
	}
	AddCirculantEdges(g, ring, []int{1, 2, 4}) // 4 = m/2 bisector
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Degrees: offsets 1 and 2 contribute 2 each, bisector contributes 1.
	for _, v := range ring {
		if g.Degree(v) != 5 {
			t.Fatalf("degree(%d) = %d, want 5", v, g.Degree(v))
		}
	}
	if g.NumEdges() != 8+8+4 {
		t.Fatalf("edges = %d, want 20", g.NumEdges())
	}
	if !g.HasEdge(ring[0], ring[4]) || !g.HasEdge(ring[3], ring[7]) {
		t.Fatal("bisector edges missing")
	}
}

func TestAddCirculantEdgesBadOffset(t *testing.T) {
	g := New("bad")
	ring := []int{g.AddNode(Processor, 0), g.AddNode(Processor, 1)}
	for _, s := range []int{0, 2, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("offset %d did not panic", s)
				}
			}()
			AddCirculantEdges(g, ring, []int{s})
		}()
	}
}

func TestPathHelpers(t *testing.T) {
	g := buildTriangle(t)
	p := Path{3, 0, 1, 2, 4} // i0, p0, p1, p2, o0
	if !p.IsWalk(g) {
		t.Fatal("IsWalk false for valid pipeline")
	}
	if !p.Distinct() {
		t.Fatal("Distinct false")
	}
	bad := Path{3, 2}
	if bad.IsWalk(g) {
		t.Fatal("IsWalk true for non-adjacent pair")
	}
	dup := Path{0, 1, 0}
	if dup.Distinct() {
		t.Fatal("Distinct true for duplicate")
	}
	rev := Path{1, 2, 3}.Reverse()
	if rev[0] != 3 || rev[2] != 1 {
		t.Fatalf("Reverse = %v", rev)
	}
	if got := p.String(g); got != "i0 — p0 — p1 — p2 — o0" {
		t.Fatalf("String = %q", got)
	}
}

func TestNodeNameUnlabeled(t *testing.T) {
	g := New("u")
	v := g.AddNode(Processor, NoLabel)
	if got := NodeName(g, v); got != "p#0" {
		t.Fatalf("NodeName = %q", got)
	}
}

func TestSummary(t *testing.T) {
	g := buildTriangle(t)
	s := g.Summary()
	if s == "" || len(s) < 10 {
		t.Fatalf("Summary = %q", s)
	}
}

func TestRowConsistency(t *testing.T) {
	// Row must stay correct when later nodes are added after edges.
	g := New("grow")
	a := g.AddNode(Processor, 0)
	b := g.AddNode(Processor, 1)
	g.AddEdge(a, b)
	for i := 0; i < 100; i++ {
		g.AddNode(Processor, NoLabel)
	}
	c := g.AddNode(Processor, 2)
	g.AddEdge(a, c)
	if !g.HasEdge(a, c) || !g.HasEdge(a, b) {
		t.Fatal("adjacency lost edges after growth")
	}
	if g.HasEdge(b, c) {
		t.Fatal("phantom edge")
	}
}

func TestRandomGraphValidateAndClone(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		g := New("rand")
		n := 5 + rng.Intn(30)
		for i := 0; i < n; i++ {
			g.AddNode(Kind(rng.Intn(3)), rng.Intn(10))
		}
		for e := 0; e < 2*n; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				g.AddEdge(u, v)
			}
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("random graph Validate: %v", err)
		}
		if err := g.Clone().Validate(); err != nil {
			t.Fatalf("clone Validate: %v", err)
		}
	}
}
