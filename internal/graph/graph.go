// Package graph implements the node-labeled graph model of Cypher & Laing
// (IPPS 1997): simple undirected graphs whose nodes are processors, input
// terminals, or output terminals, each optionally carrying the paper's
// integer label. It provides the adjacency structure shared by the
// construction, embedding, verification, and search packages: sorted
// adjacency lists, giving O(deg) iteration and O(log deg) edge tests with
// O(V+E) memory, so million-node asymptotic constructions stay cheap.
package graph

import (
	"fmt"

	"gdpn/internal/bitset"
)

// Kind classifies a node per the paper's labeled-graph model (§2): parallel
// machines with I/O devices cannot be modeled as unlabeled graphs because
// only certain nodes connect to the outside world and I/O devices are not
// processors.
type Kind uint8

const (
	// Processor is a compute node; a pipeline must visit every healthy one.
	Processor Kind = iota
	// InputTerminal is an input device; a pipeline starts at a healthy one.
	InputTerminal
	// OutputTerminal is an output device; a pipeline ends at a healthy one.
	OutputTerminal
)

// String returns a short human-readable kind name.
func (k Kind) String() string {
	switch k {
	case Processor:
		return "processor"
	case InputTerminal:
		return "input"
	case OutputTerminal:
		return "output"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// NoLabel marks nodes without a paper integer label.
const NoLabel = -1

// Graph is a simple undirected node-labeled graph. Nodes are dense integers
// 0..NumNodes()-1. The zero value is an empty graph; use New for a named one.
//
// Graphs are built once (AddNode/AddEdge) and then queried from many
// goroutines; mutation is not synchronized.
type Graph struct {
	name   string
	kinds  []Kind
	labels []int
	adj    [][]int32 // kept sorted ascending at all times
	edges  int
}

// New returns an empty graph with the given display name.
func New(name string) *Graph {
	return &Graph{name: name}
}

// Name returns the graph's display name.
func (g *Graph) Name() string { return g.name }

// SetName updates the graph's display name.
func (g *Graph) SetName(name string) { g.name = name }

// AddNode appends a node of the given kind and paper label (or NoLabel)
// and returns its id.
func (g *Graph) AddNode(kind Kind, label int) int {
	id := len(g.kinds)
	g.kinds = append(g.kinds, kind)
	g.labels = append(g.labels, label)
	g.adj = append(g.adj, nil)
	return id
}

// AddEdge inserts the undirected edge (u, v). It panics on self-loops,
// duplicate edges, or out-of-range ids: the paper's model requires simple
// graphs (Lemma 3.14's case analysis explicitly rejects loops and duplicate
// edges), so a construction that produces one is a programming error.
func (g *Graph) AddEdge(u, v int) {
	n := len(g.kinds)
	if u < 0 || v < 0 || u >= n || v >= n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, n))
	}
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at %d", u))
	}
	if g.HasEdge(u, v) {
		panic(fmt.Sprintf("graph: duplicate edge (%d,%d)", u, v))
	}
	g.adj[u] = insertSorted(g.adj[u], int32(v))
	g.adj[v] = insertSorted(g.adj[v], int32(u))
	g.edges++
}

// insertSorted inserts v into the ascending slice a. Keeping adjacency
// sorted at construction time makes every read path pure, so a built Graph
// is safe for concurrent readers (the verification workers rely on this).
func insertSorted(a []int32, v int32) []int32 {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := (lo + hi) / 2
		if a[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	a = append(a, 0)
	copy(a[lo+1:], a[lo:])
	a[lo] = v
	return a
}

// RemoveEdge deletes the undirected edge (u, v). It panics if the edge does
// not exist. Used by ablation experiments (e.g. dropping bisector edges).
func (g *Graph) RemoveEdge(u, v int) {
	if !g.HasEdge(u, v) {
		panic(fmt.Sprintf("graph: RemoveEdge(%d,%d): no such edge", u, v))
	}
	g.adj[u] = removeVal(g.adj[u], int32(v))
	g.adj[v] = removeVal(g.adj[v], int32(u))
	g.edges--
}

func removeVal(a []int32, v int32) []int32 {
	for i, x := range a {
		if x == v {
			copy(a[i:], a[i+1:])
			return a[:len(a)-1]
		}
	}
	return a
}

// HasEdge reports whether (u, v) is an edge, by binary search over u's
// sorted adjacency. Pure read: safe for concurrent readers.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= len(g.adj) {
		return false
	}
	a := g.adj[u]
	lo, hi := 0, len(a)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case int(a[mid]) < v:
			lo = mid + 1
		case int(a[mid]) > v:
			hi = mid
		default:
			return true
		}
	}
	return false
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.kinds) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return g.edges }

// Kind returns the kind of node v.
func (g *Graph) Kind(v int) Kind { return g.kinds[v] }

// Label returns the paper integer label of node v, or NoLabel.
func (g *Graph) Label(v int) int { return g.labels[v] }

// SetLabel updates the paper label of node v.
func (g *Graph) SetLabel(v, label int) { g.labels[v] = label }

// SetKind updates the kind of node v. Used by the Lemma 3.6 extension,
// which relabels input terminals as processors.
func (g *Graph) SetKind(v int, k Kind) { g.kinds[v] = k }

// Degree returns the degree of node v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns the adjacency list of v in ascending order. The
// returned slice aliases internal storage and must not be modified. Safe
// for concurrent readers once construction is complete.
func (g *Graph) Neighbors(v int) []int32 {
	return g.adj[v]
}

// NodesOfKind returns the ids of all nodes of the given kind, ascending.
func (g *Graph) NodesOfKind(k Kind) []int {
	var out []int
	for v, kv := range g.kinds {
		if kv == k {
			out = append(out, v)
		}
	}
	return out
}

// CountKind returns the number of nodes of the given kind.
func (g *Graph) CountKind(k Kind) int {
	c := 0
	for _, kv := range g.kinds {
		if kv == k {
			c++
		}
	}
	return c
}

// Processors returns the ids of all processor nodes.
func (g *Graph) Processors() []int { return g.NodesOfKind(Processor) }

// InputTerminals returns the ids of all input terminals.
func (g *Graph) InputTerminals() []int { return g.NodesOfKind(InputTerminal) }

// OutputTerminals returns the ids of all output terminals.
func (g *Graph) OutputTerminals() []int { return g.NodesOfKind(OutputTerminal) }

// KindSet returns a bitset over node ids containing the nodes of kind k.
func (g *Graph) KindSet(k Kind) bitset.Set {
	s := bitset.New(len(g.kinds))
	for v, kv := range g.kinds {
		if kv == k {
			s.Add(v)
		}
	}
	return s
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		name:   g.name,
		kinds:  append([]Kind(nil), g.kinds...),
		labels: append([]int(nil), g.labels...),
		adj:    make([][]int32, len(g.adj)),
		edges:  g.edges,
	}
	for v := range g.adj {
		c.adj[v] = append([]int32(nil), g.adj[v]...)
	}
	return c
}

// NodeByKindLabel returns the node with the given kind and paper label,
// or -1 if absent.
func (g *Graph) NodeByKindLabel(k Kind, label int) int {
	for v := range g.kinds {
		if g.kinds[v] == k && g.labels[v] == label {
			return v
		}
	}
	return -1
}

// MaxDegree returns the maximum degree over all nodes (0 for empty graphs).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := range g.adj {
		if d := len(g.adj[v]); d > max {
			max = d
		}
	}
	return max
}

// MaxProcessorDegree returns the maximum degree over processor nodes. The
// paper's degree-optimality claims are all about this quantity.
func (g *Graph) MaxProcessorDegree() int {
	max := 0
	for v := range g.adj {
		if g.kinds[v] == Processor && len(g.adj[v]) > max {
			max = len(g.adj[v])
		}
	}
	return max
}

// MinProcessorDegree returns the minimum degree over processor nodes,
// or 0 if there are none.
func (g *Graph) MinProcessorDegree() int {
	min := -1
	for v := range g.adj {
		if g.kinds[v] == Processor {
			if d := len(g.adj[v]); min == -1 || d < min {
				min = d
			}
		}
	}
	if min == -1 {
		return 0
	}
	return min
}

// ProcessorNeighborCount returns the number of processor neighbors of v
// (Lemma 3.4 bounds this from below by k+1 in any solution graph).
func (g *Graph) ProcessorNeighborCount(v int) int {
	c := 0
	for _, u := range g.adj[v] {
		if g.kinds[u] == Processor {
			c++
		}
	}
	return c
}

// Validate checks structural invariants: adjacency symmetry, sortedness,
// no self-loops, and no duplicate edges. Constructions call it in tests; it
// is O(V + E log E).
func (g *Graph) Validate() error {
	seen := map[[2]int32]bool{}
	var count int
	for v := range g.adj {
		for _, u := range g.adj[v] {
			if int(u) == v {
				return fmt.Errorf("self-loop at %d", v)
			}
			if int(u) < 0 || int(u) >= len(g.kinds) {
				return fmt.Errorf("edge (%d,%d) out of range", v, u)
			}
			if !g.HasEdge(int(u), v) {
				return fmt.Errorf("asymmetric adjacency: %d->%d", v, u)
			}
			key := [2]int32{int32(v), u}
			if v > int(u) {
				key = [2]int32{u, int32(v)}
			}
			if v < int(u) {
				if seen[key] {
					return fmt.Errorf("duplicate edge (%d,%d)", v, u)
				}
				seen[key] = true
				count++
			}
		}
	}
	if count != g.edges {
		return fmt.Errorf("edge count mismatch: counted %d, recorded %d", count, g.edges)
	}
	return nil
}

// ConnectedIgnoring reports whether the subgraph induced by nodes NOT in
// excl is connected (vacuously true when it has ≤ 1 node).
func (g *Graph) ConnectedIgnoring(excl bitset.Set) bool {
	n := len(g.kinds)
	start := -1
	for v := 0; v < n; v++ {
		if excl == nil || !excl.Contains(v) {
			start = v
			break
		}
	}
	if start == -1 {
		return true
	}
	visited := bitset.New(n)
	stack := []int{start}
	visited.Add(start)
	cnt := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range g.adj[v] {
			ui := int(u)
			if (excl == nil || !excl.Contains(ui)) && !visited.Contains(ui) {
				visited.Add(ui)
				cnt++
				stack = append(stack, ui)
			}
		}
	}
	total := 0
	for v := 0; v < n; v++ {
		if excl == nil || !excl.Contains(v) {
			total++
		}
	}
	return cnt == total
}

// AddCirculantEdges connects the given ring of nodes as a circulant graph:
// ring[i] is adjacent to ring[(i+s) mod m] for each offset s. Offsets equal
// to m/2 (for even m) are added once per pair. Duplicate offsets or offsets
// that re-create existing edges panic (simple-graph invariant).
func AddCirculantEdges(g *Graph, ring []int, offsets []int) {
	m := len(ring)
	for _, s := range offsets {
		if s <= 0 || s >= m {
			panic(fmt.Sprintf("graph: circulant offset %d out of range (m=%d)", s, m))
		}
		if 2*s == m {
			for i := 0; i < m/2; i++ {
				g.AddEdge(ring[i], ring[i+s])
			}
		} else {
			for i := 0; i < m; i++ {
				j := (i + s) % m
				g.AddEdge(ring[i], ring[j])
			}
		}
	}
}

// Summary returns a one-line description used by the CLIs.
func (g *Graph) Summary() string {
	return fmt.Sprintf("%s: %d nodes (%d processors, %d inputs, %d outputs), %d edges, max processor degree %d",
		g.name, g.NumNodes(), g.CountKind(Processor), g.CountKind(InputTerminal),
		g.CountKind(OutputTerminal), g.NumEdges(), g.MaxProcessorDegree())
}
