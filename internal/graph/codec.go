package graph

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// jsonGraph is the on-disk JSON schema. Kinds are spelled out so dumps are
// self-describing and diffable.
type jsonGraph struct {
	Name  string     `json:"name"`
	Nodes []jsonNode `json:"nodes"`
	Edges [][2]int   `json:"edges"`
}

type jsonNode struct {
	Kind  string `json:"kind"`
	Label *int   `json:"label,omitempty"`
}

func kindFromString(s string) (Kind, error) {
	switch s {
	case "processor":
		return Processor, nil
	case "input":
		return InputTerminal, nil
	case "output":
		return OutputTerminal, nil
	default:
		return 0, fmt.Errorf("graph: unknown kind %q", s)
	}
}

// MarshalJSON encodes the graph with nodes in id order and edges sorted
// lexicographically, so equal graphs produce identical bytes.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{Name: g.name, Nodes: make([]jsonNode, g.NumNodes())}
	for v := 0; v < g.NumNodes(); v++ {
		jn := jsonNode{Kind: g.Kind(v).String()}
		if l := g.Label(v); l != NoLabel {
			lv := l
			jn.Label = &lv
		}
		jg.Nodes[v] = jn
	}
	for v := 0; v < g.NumNodes(); v++ {
		for _, u := range g.Neighbors(v) {
			if v < int(u) {
				jg.Edges = append(jg.Edges, [2]int{v, int(u)})
			}
		}
	}
	sort.Slice(jg.Edges, func(i, j int) bool {
		if jg.Edges[i][0] != jg.Edges[j][0] {
			return jg.Edges[i][0] < jg.Edges[j][0]
		}
		return jg.Edges[i][1] < jg.Edges[j][1]
	})
	return json.MarshalIndent(jg, "", "  ")
}

// UnmarshalJSON decodes a graph previously produced by MarshalJSON.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return err
	}
	*g = Graph{name: jg.Name}
	for _, jn := range jg.Nodes {
		k, err := kindFromString(jn.Kind)
		if err != nil {
			return err
		}
		label := NoLabel
		if jn.Label != nil {
			label = *jn.Label
		}
		g.AddNode(k, label)
	}
	for _, e := range jg.Edges {
		if e[0] < 0 || e[1] < 0 || e[0] >= g.NumNodes() || e[1] >= g.NumNodes() {
			return fmt.Errorf("graph: edge %v out of range", e)
		}
		if e[0] == e[1] || g.HasEdge(e[0], e[1]) {
			return fmt.Errorf("graph: invalid edge %v", e)
		}
		g.AddEdge(e[0], e[1])
	}
	return nil
}

// WriteDOT renders the graph in Graphviz DOT format, mirroring the paper's
// figure conventions: processors as circles, input terminals as filled
// squares, output terminals as open squares, nodes captioned with their
// paper labels.
func (g *Graph) WriteDOT(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n", sanitizeDOTName(g.name))
	b.WriteString("  layout=neato;\n  overlap=false;\n")
	for v := 0; v < g.NumNodes(); v++ {
		shape, style := "circle", "solid"
		switch g.Kind(v) {
		case InputTerminal:
			shape, style = "square", "filled"
		case OutputTerminal:
			shape, style = "square", "solid"
		}
		fmt.Fprintf(&b, "  n%d [label=%q, shape=%s, style=%s];\n", v, NodeName(g, v), shape, style)
	}
	for v := 0; v < g.NumNodes(); v++ {
		for _, u := range g.Neighbors(v) {
			if v < int(u) {
				fmt.Fprintf(&b, "  n%d -- n%d;\n", v, u)
			}
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func sanitizeDOTName(s string) string {
	if s == "" {
		return "G"
	}
	return strings.Map(func(r rune) rune {
		if r == '"' || r == '\n' {
			return '_'
		}
		return r
	}, s)
}
