package store

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"gdpn/internal/autom"
	"gdpn/internal/graph"
)

// ringGraph builds a processor n-cycle with an input terminal on node 0
// and an output terminal on node n/2.
func ringGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g := graph.New("ring")
	for i := 0; i < n; i++ {
		g.AddNode(graph.Processor, graph.NoLabel)
	}
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	in := g.AddNode(graph.InputTerminal, graph.NoLabel)
	g.AddEdge(in, 0)
	out := g.AddNode(graph.OutputTerminal, graph.NoLabel)
	g.AddEdge(out, n/2)
	return g
}

// relabel returns g with node ids permuted by a fixed seeded shuffle.
func relabel(g *graph.Graph, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := g.NumNodes()
	perm := rng.Perm(n)
	out := graph.New(g.Name())
	kinds := make([]graph.Kind, n)
	for v := 0; v < n; v++ {
		kinds[perm[v]] = g.Kind(v)
	}
	for v := 0; v < n; v++ {
		out.AddNode(kinds[v], graph.NoLabel)
	}
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(v) {
			if v < int(u) {
				out.AddEdge(perm[v], perm[int(u)])
			}
		}
	}
	return out
}

func TestStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.gdps")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	g := ringGraph(t, 6)
	ref := s.Register(g)
	ref.PutVerdict([]int{1, 3}, Verdict{Found: true, Path: []int{6, 0, 5, 4, 2, 7}})
	ref.PutVerdict([]int{0, 2, 4}, Verdict{Found: false})
	gr := autom.Compute(g, autom.Options{})
	ref.PutGroup(gr)
	sig := ref.SweepSig([]int{0, 1, 2, 3, 4, 5}, 3, ref.GroupSig(gr))
	ref.PutManifest(sig, 2, [][]int{{1, 3}, {0, 2}})
	ref.PutBlob("chunk/0-100", []byte("report-json"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ref2 := s2.Register(g)
	if ref2.Slot() != ref.Slot() {
		t.Fatalf("slot changed across reopen: %d vs %d", ref2.Slot(), ref.Slot())
	}
	v, ok := ref2.LookupVerdict([]int{3, 1})
	if !ok || !v.Found {
		t.Fatalf("positive verdict lost: %+v ok=%v", v, ok)
	}
	if len(v.Path) != 6 || v.Path[0] != 6 || v.Path[5] != 7 {
		t.Fatalf("path mangled: %v", v.Path)
	}
	if v, ok := ref2.LookupVerdict([]int{0, 2, 4}); !ok || v.Found {
		t.Fatalf("negative verdict lost: %+v ok=%v", v, ok)
	}
	if _, ok := ref2.LookupVerdict([]int{0, 1}); ok {
		t.Fatal("phantom verdict")
	}
	gr2, ok := ref2.LookupGroup(g)
	if !ok {
		t.Fatal("group lost")
	}
	if got, want := len(gr2.Generators()), len(gr.Generators()); got != want {
		t.Fatalf("generator count %d, want %d", got, want)
	}
	if ref2.GroupSig(gr2) != ref.GroupSig(gr) {
		t.Fatal("group signature changed across reload")
	}
	sets, ok := ref2.LookupManifest(sig, 2)
	if !ok || len(sets) != 2 || sets[0][0] != 1 || sets[0][1] != 3 {
		t.Fatalf("manifest lost or mangled: %v ok=%v", sets, ok)
	}
	if b, ok := ref2.Blob("chunk/0-100"); !ok || string(b) != "report-json" {
		t.Fatalf("blob lost: %q ok=%v", b, ok)
	}
}

func TestStoreSharedSlotAcrossRelabelings(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "s.gdps"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	a := ringGraph(t, 6)
	b := relabel(a, 7)
	ra, rb := s.Register(a), s.Register(b)
	if ra.Slot() != rb.Slot() {
		t.Fatalf("isomorphic graphs got distinct slots %d, %d", ra.Slot(), rb.Slot())
	}
	// A verdict stored through a must be visible through b under b's ids.
	// Find b's image of a's fault set {1,3} by locating the shared slot's
	// canonical translation: store through a, scan b's id space for a hit.
	ra.PutVerdict([]int{1, 3}, Verdict{Found: false})
	hits := 0
	n := b.NumNodes()
	for x := 0; x < n; x++ {
		for y := x + 1; y < n; y++ {
			if b.Kind(x) != graph.Processor || b.Kind(y) != graph.Processor {
				continue
			}
			if v, ok := rb.LookupVerdict([]int{x, y}); ok && !v.Found {
				hits++
			}
		}
	}
	if hits == 0 {
		t.Fatal("verdict not visible through the relabeled graph")
	}
	// The group stored through a must certificate-check through b.
	gr := autom.Compute(a, autom.Options{})
	if gr.Trivial() {
		t.Fatal("test needs a non-trivial group")
	}
	ra.PutGroup(gr)
	grb, ok := rb.LookupGroup(b)
	if !ok {
		t.Fatal("group not visible through the relabeled graph")
	}
	for _, p := range grb.Generators() {
		if err := autom.CheckAutomorphism(b, p); err != nil {
			t.Fatalf("translated generator invalid: %v", err)
		}
	}
}

func TestStoreFingerprintCollisionSeparatesSlots(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "s.gdps"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c6 := graph.New("c6")
	for i := 0; i < 6; i++ {
		c6.AddNode(graph.Processor, graph.NoLabel)
	}
	for i := 0; i < 6; i++ {
		c6.AddEdge(i, (i+1)%6)
	}
	tt := graph.New("2xc3")
	for i := 0; i < 6; i++ {
		tt.AddNode(graph.Processor, graph.NoLabel)
	}
	tt.AddEdge(0, 1)
	tt.AddEdge(1, 2)
	tt.AddEdge(2, 0)
	tt.AddEdge(3, 4)
	tt.AddEdge(4, 5)
	tt.AddEdge(5, 3)
	if c6.Fingerprint() != tt.Fingerprint() {
		t.Fatal("test premise: fingerprints must collide")
	}
	r1, r2 := s.Register(c6), s.Register(tt)
	if r1.Slot() == r2.Slot() {
		t.Fatal("non-isomorphic colliding graphs merged into one slot")
	}
	r1.PutVerdict([]int{0, 1}, Verdict{Found: true, Path: []int{2, 3, 4, 5}})
	if _, ok := r2.LookupVerdict([]int{0, 1}); ok {
		t.Fatal("verdict leaked across colliding slots")
	}
}

func TestStoreTornTailDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.gdps")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	g := ringGraph(t, 6)
	ref := s.Register(g)
	ref.PutVerdict([]int{1, 2}, Verdict{Found: false})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Append garbage (simulating a torn foreign append) and corrupt it.
	torn := append(append([]byte(nil), raw...), 1, kindVerdict, 0xff, 0xff, 0xff)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatalf("torn tail must not fail open: %v", err)
	}
	defer s2.Close()
	ref2 := s2.Register(g)
	if _, ok := ref2.LookupVerdict([]int{1, 2}); !ok {
		t.Fatal("valid prefix lost with the torn tail")
	}
	// Flipping a byte inside a record's payload must drop that record and
	// everything after it, but never produce a wrong answer.
	raw[len(raw)-3] ^= 0xa5
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(path)
	if err != nil {
		t.Fatalf("corrupt record must not fail open: %v", err)
	}
	defer s3.Close()
	ref3 := s3.Register(g)
	if v, ok := ref3.LookupVerdict([]int{1, 2}); ok && v.Found {
		t.Fatal("corruption flipped a verdict")
	}
}

func TestStoreIdempotentPutsAndCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.gdps")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	g := ringGraph(t, 6)
	ref := s.Register(g)
	ref.PutVerdict([]int{1, 2}, Verdict{Found: false})
	before := s.Stats().Bytes
	// Idempotent re-puts must not grow the image.
	ref.PutVerdict([]int{2, 1}, Verdict{Found: false})
	ref.PutVerdict([]int{1, 2}, Verdict{Found: true, Path: []int{0}}) // first write wins
	if got := s.Stats().Bytes; got != before {
		t.Fatalf("idempotent puts grew the image: %d -> %d", before, got)
	}
	if v, _ := ref.LookupVerdict([]int{1, 2}); v.Found {
		t.Fatal("re-put overwrote the first verdict")
	}
	// Superseding blob writes create garbage; Compact reclaims it.
	for i := 0; i < 20; i++ {
		ref.PutBlob("ck", []byte{byte(i), 0, 1, 2, 3, 4, 5, 6, 7})
	}
	grew := s.Stats().Bytes
	if grew <= before {
		t.Fatal("blob supersession should grow the image before compaction")
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	shrunk := s.Stats().Bytes
	if shrunk >= grew {
		t.Fatalf("compaction did not shrink: %d -> %d", grew, shrunk)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ref2 := s2.Register(g)
	if b, ok := ref2.Blob("ck"); !ok || b[0] != 19 {
		t.Fatalf("latest blob lost across compaction: %v ok=%v", b, ok)
	}
	if v, ok := ref2.LookupVerdict([]int{1, 2}); !ok || v.Found {
		t.Fatal("verdict lost across compaction")
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "s.gdps"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	g := ringGraph(t, 8)
	ref := s.Register(g)
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				f := []int{(w + i) % 8, (w + i + 3) % 8}
				ref.PutVerdict(f, Verdict{Found: false})
				ref.LookupVerdict(f)
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
}
