package store

import (
	"fmt"
	"hash/fnv"
	"sort"

	"gdpn/internal/autom"
	"gdpn/internal/graph"
)

// GraphRef is a registered graph's handle into the store: it owns the
// slot id plus the labeling that translates between the graph's node ids
// and the slot's canonical ids. Safe for concurrent use.
type GraphRef struct {
	s    *Store
	slot int
	lab  []int32 // original id -> canonical id
	inv  []int32 // canonical id -> original id
}

// Register computes g's canonical form and returns its store handle,
// creating the slot on first sight. Isomorphic graphs with byte-equal
// canonical forms share one slot (and therefore all cached entries) even
// when their concrete node ids differ.
func (s *Store) Register(g *graph.Graph) *GraphRef {
	cf := g.Canonical()
	n := g.NumNodes()
	inv := make([]int32, n)
	for v, c := range cf.Labeling {
		inv[c] = int32(v)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return &GraphRef{s: s, slot: s.registerLocked(g, cf), lab: cf.Labeling, inv: inv}
}

// toCanon maps original node ids to sorted canonical ids. Fault sets are
// small (≤ k elements), so insertion sort — no closure, no interface
// boxing — keeps the per-lookup cost down on the replay hot path.
func (r *GraphRef) toCanon(orig []int) []int32 {
	out := make([]int32, len(orig))
	for i, v := range orig {
		out[i] = r.lab[v]
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// fromCanon maps canonical ids back to original node ids, preserving
// order (a certificate path's order is meaningful).
func (r *GraphRef) fromCanon(canon []int32) []int {
	out := make([]int, len(canon))
	for i, c := range canon {
		out[i] = int(r.inv[c])
	}
	return out
}

// Verdict is one cached per-fault-set answer in original node ids. Path
// is nil for negative verdicts. The caller MUST re-verify before trusting
// it: replay Path via verify.CheckPipeline for positives, re-screen
// negatives with cheap necessary conditions.
type Verdict struct {
	Found bool
	Path  []int
}

// LookupVerdict returns the cached verdict for the fault set (original
// node ids), if any.
func (r *GraphRef) LookupVerdict(faults []int) (Verdict, bool) {
	key := verdictKey{r.slot, idsKey(r.toCanon(faults))}
	r.s.mu.Lock()
	v, ok := r.s.verdicts[key]
	r.s.mu.Unlock()
	if !ok {
		r.s.miss("verdict")
		return Verdict{}, false
	}
	r.s.hit("verdict")
	out := Verdict{Found: v.found}
	if v.found {
		out.Path = r.fromCanon(v.path)
	}
	return out, true
}

// PutVerdict records a verdict for the fault set. Re-recording an
// existing key is a no-op (idempotent warm runs do not grow the file).
func (r *GraphRef) PutVerdict(faults []int, v Verdict) {
	set := r.toCanon(faults)
	key := verdictKey{r.slot, idsKey(set)}
	var path []int32
	if v.Found {
		path = make([]int32, len(v.Path))
		for i, x := range v.Path {
			path[i] = r.lab[x]
		}
	}
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	if _, ok := r.s.verdicts[key]; ok {
		return
	}
	val := verdictVal{found: v.Found, path: path}
	r.s.verdicts[key] = val
	r.s.appendLocked(kindVerdict, encodeVerdict(key, val))
}

// LookupGroup rebuilds the cached automorphism group through
// autom.FromGenerators, which certificate-checks every generator against
// g before trusting it. A failing generator (corrupt entry, or an
// isomorphic-but-relabeled graph whose canonical labeling translated a
// generator imperfectly — impossible for byte-equal forms, but cheap to
// defend against) turns the hit into a miss.
func (r *GraphRef) LookupGroup(g *graph.Graph) (*autom.Group, bool) {
	r.s.mu.Lock()
	gv, ok := r.s.groups[r.slot]
	r.s.mu.Unlock()
	if !ok {
		r.s.miss("group")
		return nil, false
	}
	gens := make([]autom.Perm, len(gv.gens))
	for i, pr := range gv.gens {
		m := make([]int32, len(pr.m))
		for c, tc := range pr.m {
			// canonical perm q: q[c] = tc; original perm p = inv ∘ q ∘ lab.
			m[r.inv[c]] = r.inv[tc]
		}
		gens[i] = autom.Perm{Map: m, IOSwap: pr.ioswap}
	}
	gr, err := autom.FromGenerators(g, gens, gv.complete, 0)
	if err != nil {
		r.s.miss("group")
		return nil, false
	}
	r.s.hit("group")
	return gr, true
}

// PutGroup caches the group's generators (translated to canonical ids).
// Idempotent per slot: the first stored group wins.
func (r *GraphRef) PutGroup(gr *autom.Group) {
	gens := gr.Generators()
	recs := make([]permRec, len(gens))
	for i, p := range gens {
		m := make([]int32, len(p.Map))
		for v, tv := range p.Map {
			m[r.lab[v]] = r.lab[tv]
		}
		recs[i] = permRec{m: m, ioswap: p.IOSwap}
	}
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	if _, ok := r.s.groups[r.slot]; ok {
		return
	}
	gv := groupVal{gens: recs, complete: gr.Complete()}
	r.s.groups[r.slot] = gv
	r.s.appendLocked(kindGroup, encodeGroup(r.slot, gv))
}

// GroupSig returns a labeling-invariant signature of the group as used by
// sweep manifests: the FNV hash of the sorted canonical-id generator
// encodings plus the completeness flag. Two runs over byte-equal
// canonical forms that use the same group (computed or cache-loaded)
// produce the same signature; any group difference invalidates manifests
// rather than risking a different orbit partition.
func (r *GraphRef) GroupSig(gr *autom.Group) uint64 {
	if gr == nil {
		return 0
	}
	gens := gr.Generators()
	encs := make([]string, len(gens))
	for i, p := range gens {
		buf := make([]byte, 0, 1+4*len(p.Map))
		buf = append(buf, boolByte(p.IOSwap))
		m := make([]int32, len(p.Map))
		for v, tv := range p.Map {
			m[r.lab[v]] = r.lab[tv]
		}
		for _, tv := range m {
			buf = appendU32(buf, uint32(tv))
		}
		encs[i] = string(buf)
	}
	sort.Strings(encs)
	h := fnv.New64a()
	h.Write([]byte{boolByte(gr.Complete())})
	for _, e := range encs {
		h.Write([]byte(e))
	}
	return h.Sum64()
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// SweepSig identifies a sweep configuration for manifest lookups: the
// fault universe (canonical ids), the fault budget k, and the group
// signature under which orbit minimality was decided.
func (r *GraphRef) SweepSig(universe []int, k int, groupSig uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(uint64(k))
	put(groupSig)
	for _, c := range r.toCanon(universe) {
		put(uint64(c))
	}
	return h.Sum64()
}

// LookupManifest returns the recorded orbit-representative fault sets
// (original node ids) for one size class of a sweep, if a clean full
// sweep recorded them. The sets come back in the stored order.
func (r *GraphRef) LookupManifest(sig uint64, size int) ([][]int, bool) {
	key := manifestKey{r.slot, sig, size}
	r.s.mu.Lock()
	sets, ok := r.s.manifests[key]
	r.s.mu.Unlock()
	if !ok {
		r.s.miss("manifest")
		return nil, false
	}
	out := make([][]int, len(sets))
	for i, set := range sets {
		out[i] = r.fromCanon(set)
		sort.Ints(out[i]) // fault sets are sorted ascending everywhere
	}
	r.s.hit("manifest")
	return out, true
}

// PutManifest records the orbit representatives of one size class. Only
// call after a clean, complete sweep of that size (no interruption, no
// fail-fast stop): a partial manifest would silently shrink later sweeps.
// Idempotent per key: the first stored manifest wins.
func (r *GraphRef) PutManifest(sig uint64, size int, sets [][]int) {
	key := manifestKey{r.slot, sig, size}
	enc := make([][]int32, len(sets))
	for i, set := range sets {
		enc[i] = r.toCanon(set)
	}
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	if _, ok := r.s.manifests[key]; ok {
		return
	}
	r.s.manifests[key] = enc
	r.s.appendLocked(kindManifest, encodeManifest(key, enc))
}

// Blob returns the named opaque payload attached to this graph's slot.
// Blob contents are caller-defined (the fleet stores chunk reports, the
// CLIs store certificate-set JSON); the store only guarantees integrity
// (CRC) and atomic persistence, not semantic validity — callers apply
// their own re-checks per the package trust model.
func (r *GraphRef) Blob(name string) ([]byte, bool) {
	r.s.mu.Lock()
	v, ok := r.s.blobs[blobKey{r.slot, name}]
	r.s.mu.Unlock()
	if !ok {
		r.s.miss("blob")
		return nil, false
	}
	r.s.hit("blob")
	return append([]byte(nil), v.data...), true
}

// PutBlob stores (or supersedes) the named payload. Writing identical
// bytes is a no-op.
func (r *GraphRef) PutBlob(name string, data []byte) {
	key := blobKey{r.slot, name}
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	if old, ok := r.s.blobs[key]; ok {
		if string(old.data) == string(data) {
			return
		}
		r.s.garbage += old.sz
	}
	off := len(r.s.buf)
	r.s.appendLocked(kindBlob, encodeBlob(key, data))
	r.s.blobs[key] = blobVal{
		data: append([]byte(nil), data...),
		off:  off,
		sz:   len(r.s.buf) - off,
	}
}

// Slot exposes the slot id (stable within one store file) for diagnostics.
func (r *GraphRef) Slot() int { return r.slot }

// Store returns the backing store.
func (r *GraphRef) Store() *Store { return r.s }

// String implements fmt.Stringer for log lines.
func (r *GraphRef) String() string {
	return fmt.Sprintf("store-slot %d", r.slot)
}
