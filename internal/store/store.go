// Package store is the persistent, content-addressed verdict and
// certificate store behind incremental re-verification (ROADMAP item 4).
//
// A Store is one file of versioned, checksummed, append-only binary
// records over an in-memory index. Records are never mutated in place;
// newer records supersede older ones (blobs) or are idempotent duplicates
// (verdicts, groups, manifests), and Compact rewrites the file keeping
// only live records. Flush persists atomically by writing the complete
// image to a temp file in the same directory and renaming it over the
// store path, so a crash can never leave a half-written store; a torn or
// corrupted tail from a foreign writer is detected by the per-record
// CRC32 on open and dropped (the valid prefix is kept).
//
// Content addressing: graphs are registered under their strengthened
// canonical key (graph.CanonicalForm). The WL fingerprint buckets
// candidate slots; byte equality of the canonical encoding decides slot
// reuse, so a slot hit is sound even on fingerprint collisions (equal
// canonical bytes prove isomorphism unconditionally). Colliding
// fingerprints with unequal bytes get distinct slots — when either form
// is inexact and the graphs are small, IsomorphicBrute classifies the
// collision for the store_canon_collision_total counter, but the store
// conservatively keeps separate slots either way: without an explicit
// isomorphism there is no labeling to translate fault sets through, so
// merging would be unsound while splitting is merely a cache miss.
//
// Everything inside a slot lives in canonical node ids (fault sets,
// certificate paths, automorphism generators, manifests), translated
// through the registering graph's CanonicalForm.Labeling on the way in
// and its inverse on the way out. Two byte-identical canonical forms
// therefore share entries even when the concrete graphs label their
// nodes differently.
//
// Trust model: the store is an untrusted hint, never an oracle. Positive
// verdicts carry their pipeline certificate and callers must replay it
// (verify.CheckPipeline) before trusting the hit; automorphism groups are
// rebuilt through autom.FromGenerators, which certificate-checks every
// generator; negative verdicts are re-screened by cheap necessary
// conditions on the caller side. A corrupt or adversarial store can
// therefore cause extra work (misses, replay failures counted by
// store_replay_fail_total) but never a wrong verdict.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"gdpn/internal/graph"
	"gdpn/internal/obs"
)

// File layout constants.
const (
	fileVersion   = 1
	recordVersion = 1

	kindGraph    = 1
	kindVerdict  = 2
	kindGroup    = 3
	kindManifest = 4
	kindBlob     = 5
)

var fileMagic = [4]byte{'G', 'D', 'P', 'S'}

// headerLen is magic + u16 file version.
const headerLen = 6

// recordOverhead is version byte + kind byte + u32 payload length + u32 CRC.
const recordOverhead = 10

// Store is the in-memory index plus the encoded record image of one store
// file. All methods are safe for concurrent use.
type Store struct {
	mu   sync.Mutex
	path string

	// buf holds the encoded records (everything after the header) exactly
	// as they will be written by Flush. Appends go here first; dirty counts
	// records not yet persisted.
	buf     []byte
	dirty   int
	entries int
	// garbage counts superseded record bytes (blob overwrites); Compact
	// rewrites when it grows past half the file.
	garbage int

	slots     []*slot
	byHash    map[uint64][]int
	verdicts  map[verdictKey]verdictVal
	groups    map[int]groupVal
	manifests map[manifestKey][][]int32
	blobs     map[blobKey]blobVal

	hitC, missC      map[string]*obs.Counter
	collisionC       map[string]*obs.Counter
	bytesG, entriesG *obs.Gauge
}

type slot struct {
	hash  uint64
	bytes []byte
	exact bool
}

type verdictKey struct {
	slot int
	set  string // encoded sorted canonical ids
}

type verdictVal struct {
	found bool
	path  []int32 // canonical ids; nil unless found
}

type groupVal struct {
	gens     []permRec
	complete bool
}

type permRec struct {
	m      []int32
	ioswap bool
}

type manifestKey struct {
	slot int
	sig  uint64
	size int
}

type blobKey struct {
	slot int
	name string
}

type blobVal struct {
	data []byte
	off  int // record offset in buf, for garbage accounting
	sz   int
}

// Open loads (or creates) the store at path. A missing file yields an
// empty store; a corrupt tail is dropped with only the valid record
// prefix retained.
func Open(path string) (*Store, error) {
	s := &Store{
		path:       path,
		byHash:     map[uint64][]int{},
		verdicts:   map[verdictKey]verdictVal{},
		groups:     map[int]groupVal{},
		manifests:  map[manifestKey][][]int32{},
		blobs:      map[blobKey]blobVal{},
		hitC:       map[string]*obs.Counter{},
		missC:      map[string]*obs.Counter{},
		collisionC: map[string]*obs.Counter{},
		bytesG:     obs.Default().Gauge("store_bytes"),
		entriesG:   obs.Default().Gauge("store_entries"),
	}
	// Pre-resolve the per-kind counters: hit/miss are called outside s.mu
	// on the lookup fast path, so the maps must be read-only after Open.
	for _, kind := range []string{"verdict", "group", "manifest", "blob"} {
		s.hitC[kind] = obs.Default().Counter("store_hit_total", obs.L("kind", kind))
		s.missC[kind] = obs.Default().Counter("store_miss_total", obs.L("kind", kind))
	}
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		s.publishSizes()
		return s, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", path, err)
	}
	if len(raw) == 0 {
		s.publishSizes()
		return s, nil
	}
	if len(raw) < headerLen || [4]byte(raw[:4]) != fileMagic {
		return nil, fmt.Errorf("store: %s is not a gdpn store file", path)
	}
	if v := binary.LittleEndian.Uint16(raw[4:6]); v != fileVersion {
		return nil, fmt.Errorf("store: %s has unsupported version %d", path, v)
	}
	body := raw[headerLen:]
	off := 0
	for off < len(body) {
		rec, n, ok := parseRecord(body[off:])
		if !ok {
			break // torn/corrupt tail: keep the valid prefix
		}
		if err := s.apply(rec, off, n); err != nil {
			return nil, fmt.Errorf("store: %s: record at offset %d: %w", path, headerLen+off, err)
		}
		off += n
		s.entries++
	}
	s.buf = append(s.buf, body[:off]...)
	s.publishSizes()
	return s, nil
}

type record struct {
	kind    byte
	payload []byte
}

func parseRecord(b []byte) (record, int, bool) {
	if len(b) < recordOverhead {
		return record{}, 0, false
	}
	if b[0] != recordVersion {
		return record{}, 0, false
	}
	plen := int(binary.LittleEndian.Uint32(b[2:6]))
	n := recordOverhead + plen
	if plen < 0 || len(b) < n {
		return record{}, 0, false
	}
	payload := b[6 : 6+plen]
	want := binary.LittleEndian.Uint32(b[6+plen : n])
	if crc32.ChecksumIEEE(b[:6+plen]) != want {
		return record{}, 0, false
	}
	return record{kind: b[1], payload: payload}, n, true
}

func appendRecord(buf []byte, kind byte, payload []byte) []byte {
	start := len(buf)
	buf = append(buf, recordVersion, kind)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[start:]))
}

// apply replays one decoded record into the index. off/n locate the record
// in buf for blob garbage accounting.
func (s *Store) apply(rec record, off, n int) error {
	p := &payloadReader{b: rec.payload}
	switch rec.kind {
	case kindGraph:
		slotID := p.uvarint()
		hash := p.u64()
		exact := p.byte() != 0
		cb := p.bytes()
		if p.err != nil {
			return p.err
		}
		if int(slotID) != len(s.slots) {
			return fmt.Errorf("graph record out of order: slot %d, have %d", slotID, len(s.slots))
		}
		s.slots = append(s.slots, &slot{hash: hash, bytes: cb, exact: exact})
		s.byHash[hash] = append(s.byHash[hash], int(slotID))
	case kindVerdict:
		slotID := int(p.uvarint())
		set := p.ids()
		found := p.byte() != 0
		var path []int32
		if found {
			path = p.ids()
		}
		if p.err != nil {
			return p.err
		}
		if slotID >= len(s.slots) {
			return fmt.Errorf("verdict for unknown slot %d", slotID)
		}
		s.verdicts[verdictKey{slotID, idsKey(set)}] = verdictVal{found: found, path: path}
	case kindGroup:
		slotID := int(p.uvarint())
		complete := p.byte() != 0
		ngens := int(p.uvarint())
		gens := make([]permRec, 0, ngens)
		for i := 0; i < ngens; i++ {
			ioswap := p.byte() != 0
			gens = append(gens, permRec{m: p.ids(), ioswap: ioswap})
		}
		if p.err != nil {
			return p.err
		}
		if slotID >= len(s.slots) {
			return fmt.Errorf("group for unknown slot %d", slotID)
		}
		s.groups[slotID] = groupVal{gens: gens, complete: complete}
	case kindManifest:
		slotID := int(p.uvarint())
		sig := p.u64()
		size := int(p.uvarint())
		count := int(p.uvarint())
		sets := make([][]int32, 0, count)
		for i := 0; i < count; i++ {
			set := make([]int32, size)
			for j := range set {
				set[j] = int32(p.uvarint())
			}
			sets = append(sets, set)
		}
		if p.err != nil {
			return p.err
		}
		if slotID >= len(s.slots) {
			return fmt.Errorf("manifest for unknown slot %d", slotID)
		}
		s.manifests[manifestKey{slotID, sig, size}] = sets
	case kindBlob:
		slotID := int(p.uvarint())
		name := string(p.bytes())
		data := p.bytes()
		if p.err != nil {
			return p.err
		}
		if slotID >= len(s.slots) {
			return fmt.Errorf("blob for unknown slot %d", slotID)
		}
		k := blobKey{slotID, name}
		if old, ok := s.blobs[k]; ok {
			s.garbage += old.sz
		}
		s.blobs[k] = blobVal{data: data, off: off, sz: n}
	default:
		return fmt.Errorf("unknown record kind %d", rec.kind)
	}
	return nil
}

// payloadReader decodes record payloads, latching the first error.
type payloadReader struct {
	b   []byte
	err error
}

func (p *payloadReader) uvarint() uint64 {
	if p.err != nil {
		return 0
	}
	v, n := binary.Uvarint(p.b)
	if n <= 0 {
		p.err = errors.New("truncated uvarint")
		return 0
	}
	p.b = p.b[n:]
	return v
}

func (p *payloadReader) u64() uint64 {
	if p.err != nil {
		return 0
	}
	if len(p.b) < 8 {
		p.err = errors.New("truncated u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(p.b)
	p.b = p.b[8:]
	return v
}

func (p *payloadReader) byte() byte {
	if p.err != nil {
		return 0
	}
	if len(p.b) == 0 {
		p.err = errors.New("truncated byte")
		return 0
	}
	v := p.b[0]
	p.b = p.b[1:]
	return v
}

func (p *payloadReader) bytes() []byte {
	n := int(p.uvarint())
	if p.err != nil {
		return nil
	}
	if n < 0 || len(p.b) < n {
		p.err = errors.New("truncated bytes")
		return nil
	}
	v := append([]byte(nil), p.b[:n]...)
	p.b = p.b[n:]
	return v
}

func (p *payloadReader) ids() []int32 {
	n := int(p.uvarint())
	if p.err != nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(p.uvarint())
	}
	return out
}

func appendIDs(buf []byte, ids []int32) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	for _, v := range ids {
		buf = binary.AppendUvarint(buf, uint64(v))
	}
	return buf
}

// idsKey packs sorted canonical ids into a map key.
func idsKey(ids []int32) string {
	buf := make([]byte, 0, 4*len(ids))
	for _, v := range ids {
		buf = binary.AppendUvarint(buf, uint64(v))
	}
	return string(buf)
}

// append encodes and indexes one new record under s.mu.
func (s *Store) appendLocked(kind byte, payload []byte) {
	s.buf = appendRecord(s.buf, kind, payload)
	s.entries++
	s.dirty++
}

// Flush atomically persists the current image: full temp-file write in the
// store's directory followed by rename. A no-op when nothing changed since
// the last flush.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

func (s *Store) flushLocked() error {
	if s.dirty == 0 {
		s.publishSizes()
		return nil
	}
	img := make([]byte, 0, headerLen+len(s.buf))
	img = append(img, fileMagic[:]...)
	img = binary.LittleEndian.AppendUint16(img, fileVersion)
	img = append(img, s.buf...)
	dir := filepath.Dir(s.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(s.path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: flush: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(img); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: flush: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: flush: %w", err)
	}
	if err := os.Rename(tmpName, s.path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: flush: %w", err)
	}
	s.dirty = 0
	s.publishSizes()
	return nil
}

// Close flushes the store, compacting first when superseded records exceed
// half the image.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.garbage*2 > len(s.buf) {
		s.compactLocked()
	}
	return s.flushLocked()
}

// Compact rewrites the record image keeping only live records (dropping
// superseded blob versions) and persists it.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.compactLocked()
	return s.flushLocked()
}

func (s *Store) compactLocked() {
	old := s.buf
	s.buf = make([]byte, 0, len(old))
	s.entries = 0
	s.garbage = 0
	for id, sl := range s.slots {
		payload := binary.AppendUvarint(nil, uint64(id))
		payload = binary.LittleEndian.AppendUint64(payload, sl.hash)
		payload = append(payload, boolByte(sl.exact))
		payload = binary.AppendUvarint(payload, uint64(len(sl.bytes)))
		payload = append(payload, sl.bytes...)
		s.appendLocked(kindGraph, payload)
	}
	for _, k := range sortedVerdictKeys(s.verdicts) {
		s.appendLocked(kindVerdict, encodeVerdict(k, s.verdicts[k]))
	}
	for slotID := range s.slots {
		if gv, ok := s.groups[slotID]; ok {
			s.appendLocked(kindGroup, encodeGroup(slotID, gv))
		}
	}
	for _, k := range sortedManifestKeys(s.manifests) {
		s.appendLocked(kindManifest, encodeManifest(k, s.manifests[k]))
	}
	for _, k := range sortedBlobKeys(s.blobs) {
		s.appendLocked(kindBlob, encodeBlob(k, s.blobs[k].data))
	}
	s.dirty++ // force the flush even if record counts coincide
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

func encodeVerdict(k verdictKey, v verdictVal) []byte {
	payload := binary.AppendUvarint(nil, uint64(k.slot))
	payload = binary.AppendUvarint(payload, uint64(countIDs(k.set)))
	payload = append(payload, k.set...)
	payload = append(payload, boolByte(v.found))
	if v.found {
		payload = appendIDs(payload, v.path)
	}
	return payload
}

// countIDs recovers the id count from an idsKey encoding.
func countIDs(set string) int {
	b := []byte(set)
	n := 0
	for len(b) > 0 {
		_, w := binary.Uvarint(b)
		if w <= 0 {
			break
		}
		b = b[w:]
		n++
	}
	return n
}

func encodeGroup(slotID int, gv groupVal) []byte {
	payload := binary.AppendUvarint(nil, uint64(slotID))
	payload = append(payload, boolByte(gv.complete))
	payload = binary.AppendUvarint(payload, uint64(len(gv.gens)))
	for _, g := range gv.gens {
		payload = append(payload, boolByte(g.ioswap))
		payload = appendIDs(payload, g.m)
	}
	return payload
}

func encodeManifest(k manifestKey, sets [][]int32) []byte {
	payload := binary.AppendUvarint(nil, uint64(k.slot))
	payload = binary.LittleEndian.AppendUint64(payload, k.sig)
	payload = binary.AppendUvarint(payload, uint64(k.size))
	payload = binary.AppendUvarint(payload, uint64(len(sets)))
	for _, set := range sets {
		for _, v := range set {
			payload = binary.AppendUvarint(payload, uint64(v))
		}
	}
	return payload
}

func encodeBlob(k blobKey, data []byte) []byte {
	payload := binary.AppendUvarint(nil, uint64(k.slot))
	payload = binary.AppendUvarint(payload, uint64(len(k.name)))
	payload = append(payload, k.name...)
	payload = binary.AppendUvarint(payload, uint64(len(data)))
	payload = append(payload, data...)
	return payload
}

func sortedVerdictKeys(m map[verdictKey]verdictVal) []verdictKey {
	keys := make([]verdictKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].slot != keys[j].slot {
			return keys[i].slot < keys[j].slot
		}
		return keys[i].set < keys[j].set
	})
	return keys
}

func sortedManifestKeys(m map[manifestKey][][]int32) []manifestKey {
	keys := make([]manifestKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.slot != b.slot {
			return a.slot < b.slot
		}
		if a.sig != b.sig {
			return a.sig < b.sig
		}
		return a.size < b.size
	})
	return keys
}

func sortedBlobKeys(m map[blobKey]blobVal) []blobKey {
	keys := make([]blobKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].slot != keys[j].slot {
			return keys[i].slot < keys[j].slot
		}
		return keys[i].name < keys[j].name
	})
	return keys
}

// Stats is a point-in-time size summary, also published as the
// store_bytes/store_entries gauges.
type Stats struct {
	Path    string `json:"path"`
	Bytes   int    `json:"bytes"`
	Entries int    `json:"entries"`
	Slots   int    `json:"slots"`
	Dirty   int    `json:"dirty"`
}

// Stats returns current sizes.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Path:    s.path,
		Bytes:   headerLen + len(s.buf),
		Entries: s.entries,
		Slots:   len(s.slots),
		Dirty:   s.dirty,
	}
}

func (s *Store) publishSizes() {
	s.bytesG.Set(int64(headerLen + len(s.buf)))
	s.entriesG.Set(int64(s.entries))
}

// counter caches obs counters per (name, kind). The known kinds are
// pre-resolved in Open so the hit/miss fast path (called outside s.mu)
// only ever reads the map; unknown kinds appear solely on locked paths.
func (s *Store) counter(m map[string]*obs.Counter, name, kind string) *obs.Counter {
	c, ok := m[kind]
	if !ok {
		c = obs.Default().Counter(name, obs.L("kind", kind))
		m[kind] = c
	}
	return c
}

func (s *Store) hit(kind string)  { s.counter(s.hitC, "store_hit_total", kind).Add(1) }
func (s *Store) miss(kind string) { s.counter(s.missC, "store_miss_total", kind).Add(1) }

// registerLocked finds or creates the slot for cf, classifying fingerprint
// collisions per the package trust model.
func (s *Store) registerLocked(g *graph.Graph, cf graph.CanonicalForm) int {
	for _, id := range s.byHash[cf.Hash] {
		sl := s.slots[id]
		if string(sl.bytes) == string(cf.Bytes) {
			return id
		}
		// Fingerprint collision with distinct canonical bytes. Classify for
		// observability; always keep separate slots (see package comment).
		result := "distinct"
		if (!sl.exact || !cf.Exact) && len(g.Processors()) <= 12 {
			if other, err := graph.DecodeCanonical(sl.bytes); err == nil && graph.IsomorphicBrute(g, other) {
				result = "isomorphic"
			}
		}
		s.counter(s.collisionC, "store_canon_collision_total", result).Add(1)
	}
	id := len(s.slots)
	s.slots = append(s.slots, &slot{hash: cf.Hash, bytes: cf.Bytes, exact: cf.Exact})
	s.byHash[cf.Hash] = append(s.byHash[cf.Hash], id)
	payload := binary.AppendUvarint(nil, uint64(id))
	payload = binary.LittleEndian.AppendUint64(payload, cf.Hash)
	payload = append(payload, boolByte(cf.Exact))
	payload = binary.AppendUvarint(payload, uint64(len(cf.Bytes)))
	payload = append(payload, cf.Bytes...)
	s.appendLocked(kindGraph, payload)
	return id
}
