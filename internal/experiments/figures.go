package experiments

import (
	"fmt"

	"gdpn/internal/construct"
	"gdpn/internal/embed"
	"gdpn/internal/graph"
	"gdpn/internal/search"
	"gdpn/internal/verify"
)

func init() {
	register("F1", "Figure 1: pipeline notation (7 processors)", runF1)
	register("F2", "Figure 2: G3,k with n+k even (odd k)", func(cfg Config) *Table { return runG3Parity(cfg, 1) })
	register("F3", "Figure 3: G3,k with n+k odd (even k)", func(cfg Config) *Table { return runG3Parity(cfg, 0) })
	register("F4", "Figure 4: k=1 solutions for n=1,2,3", runF4)
	register("F5-F9", "Lemma 3.14: no degree-4 standard solution for n=5,k=2", runLemma314)
	register("F10", "Figure 10: special G6,2", func(cfg Config) *Table { return runSpecial(cfg, "F10", 6, 2) })
	register("F11", "Figure 11: special G8,2", func(cfg Config) *Table { return runSpecial(cfg, "F11", 8, 2) })
	register("F12", "Figure 12: special G7,3", func(cfg Config) *Table { return runSpecial(cfg, "F12", 7, 3) })
	register("F13", "Figure 13: special G4,3", func(cfg Config) *Table { return runSpecial(cfg, "F13", 4, 3) })
	register("F14", "Figure 14: asymptotic G22,4", func(cfg Config) *Table { return runAsymptoticFigure(cfg, "F14", 22, 4) })
	register("F15", "Figure 15: asymptotic G26,5 with bisectors", func(cfg Config) *Table { return runAsymptoticFigure(cfg, "F15", 26, 5) })
}

// runF1 regenerates the paper's opening artifact: a pipeline with 7
// processors, printed in the paper's i/p/o notation.
func runF1(cfg Config) *Table {
	t := &Table{
		Claim: "a pipeline is a linear array of processors with an input node at one end and an output node at the other",
		Cols:  []string{"n", "k", "pipeline"},
	}
	sol, err := construct.Design(7, 1)
	if err != nil {
		t.Note("design failed: %v", err)
		return t
	}
	path, ok := embed.FindPipeline(sol.Graph, nil)
	if !ok {
		t.Note("no pipeline found")
		return t
	}
	err = verify.CheckPipeline(sol.Graph, nil, path)
	t.AddRow("7", "1", path.String(sol.Graph))
	t.OK = err == nil && len(path) == 7+1+2 // n+k processors + 2 terminals
	return t
}

// runG3Parity regenerates the two G3,k drawings: the construction differs
// by the parity of n+k = k+3, i.e. by the parity of k.
func runG3Parity(cfg Config, kParity int) *Table {
	t := &Table{
		Claim: "G3,k is k-gracefully-degradable with max degree k+3 (k≥2; k+2 for k=1), complete-minus-matching processor graph",
		Cols:  []string{"k", "n+k parity", "max degree", "degree-optimal", "exhaustive GD", "fault sets"},
	}
	t.OK = true
	maxK := 6
	if cfg.Quick {
		maxK = 4
	}
	for k := 1; k <= maxK; k++ {
		if k%2 != kParity {
			continue
		}
		g := construct.G3(k)
		wantDeg := k + 3
		if k == 1 {
			wantDeg = k + 2
		}
		rep := verify.Exhaustive(g, k, cfg.VerifyOptions())
		degOK := g.MaxProcessorDegree() == wantDeg && verify.CheckDegreeOptimal(g, 3, k) == nil
		parity := "odd"
		if (3+k)%2 == 0 {
			parity = "even"
		}
		t.AddRow(fmt.Sprint(k), parity, fmt.Sprint(g.MaxProcessorDegree()),
			boolCell(degOK), boolCell(rep.OK()), fmt.Sprint(rep.Checked))
		t.OK = t.OK && degOK && rep.OK()
	}
	return t
}

func runF4(cfg Config) *Table {
	t := &Table{
		Claim: "degree-optimal 1-GD solutions for n=1,2,3 with degrees 3, 4, 3 (G1,1; G2,1; Extend(G1,1))",
		Cols:  []string{"n", "method", "max degree", "want", "exhaustive GD"},
	}
	t.OK = true
	want := map[int]int{1: 3, 2: 4, 3: 3}
	for n := 1; n <= 3; n++ {
		sol, err := construct.Design(n, 1)
		if err != nil {
			t.Note("design n=%d: %v", n, err)
			t.OK = false
			continue
		}
		rep := verify.Exhaustive(sol.Graph, 1, cfg.VerifyOptions())
		ok := sol.MaxDegree == want[n] && rep.OK()
		t.AddRow(fmt.Sprint(n), sol.Method, fmt.Sprint(sol.MaxDegree), fmt.Sprint(want[n]), boolCell(rep.OK()))
		t.OK = t.OK && ok
	}
	// Figure 4's remark: Extend(G1,1) is an instance of the general G3
	// construction — check isomorphism.
	ext := construct.Extend(construct.G1(1))
	g3 := construct.G3(1)
	iso := graph.IsomorphicBrute(ext, g3)
	t.Note("Extend(G1,1) isomorphic to G3,1: %v", iso)
	t.OK = t.OK && iso
	return t
}

// runLemma314 re-proves the paper's Figures 5–9 case analysis by complete
// enumeration: the candidate space for (n=5, k=2, Δ=4) is empty.
func runLemma314(cfg Config) *Table {
	t := &Table{
		Claim: "no standard solution with max processor degree k+2=4 exists for n=5, k=2 (Lemma 3.14)",
		Cols:  []string{"processor graphs", "candidates", "solutions"},
	}
	res := search.Exhaustive(search.Spec{N: 5, K: 2, MaxDegree: 4}, 0)
	t.AddRow(fmt.Sprint(res.ProcGraphs), fmt.Sprint(res.Candidates), fmt.Sprint(len(res.Solutions)))
	t.OK = res.None() && res.Candidates > 0
	if t.OK {
		t.Note("machine re-proof: every candidate refuted by a concrete fault set (exact solver)")
	}
	return t
}

// runSpecial verifies a frozen special solution and (full mode) re-derives
// an equivalent witness from scratch with the randomized search.
func runSpecial(cfg Config, id string, n, k int) *Table {
	wantDeg := construct.DegreeLowerBound(n, k)
	t := &Table{
		ID:    id,
		Claim: fmt.Sprintf("a degree-%d standard k-GD solution exists for n=%d, k=%d", wantDeg, n, k),
		Cols:  []string{"source", "max degree", "exhaustive GD", "fault sets"},
	}
	g, err := construct.Special(n, k)
	if err != nil {
		t.Note("%v", err)
		return t
	}
	rep := verify.Exhaustive(g, k, cfg.VerifyOptions())
	frozenOK := rep.OK() && g.MaxProcessorDegree() == wantDeg &&
		verify.CheckStandard(g, n, k) == nil
	t.AddRow("frozen", fmt.Sprint(g.MaxProcessorDegree()), boolCell(rep.OK()), fmt.Sprint(rep.Checked))
	t.OK = frozenOK

	if !cfg.Quick {
		found, err := search.Find(search.Spec{N: n, K: k, MaxDegree: wantDeg}, cfg.Seed+1,
			search.FindOptions{Restarts: 3000, Moves: 800})
		if err != nil {
			t.Note("re-derivation failed: %v", err)
			t.OK = false
		} else {
			rep2 := verify.Exhaustive(found, k, cfg.VerifyOptions())
			t.AddRow("re-derived", fmt.Sprint(found.MaxProcessorDegree()), boolCell(rep2.OK()), fmt.Sprint(rep2.Checked))
			t.OK = t.OK && rep2.OK()
		}
	}
	return t
}

// runAsymptoticFigure regenerates the §3.4 example figures: structure,
// degrees, and graceful degradability.
func runAsymptoticFigure(cfg Config, id string, n, k int) *Table {
	t := &Table{
		ID: id,
		Claim: fmt.Sprintf("G(%d,%d) is standard, degree-optimal (max degree %d) and %d-gracefully-degradable",
			n, k, construct.DegreeLowerBound(n, k), k),
		Cols: []string{"check", "result"},
	}
	g, lay, err := construct.Asymptotic(n, k)
	if err != nil {
		t.Note("%v", err)
		return t
	}
	structOK := verify.CheckStandard(g, n, k) == nil &&
		verify.CheckNecessaryConditions(g, n, k) == nil &&
		verify.CheckDegreeOptimal(g, n, k) == nil
	t.AddRow("standard + Lemma 3.1/3.4 + degree-optimal", boolCell(structOK))
	t.AddRow("max processor degree", fmt.Sprint(g.MaxProcessorDegree()))
	t.AddRow("ring size m / offsets p+1 / bisector", fmt.Sprintf("%d / %d / %v", lay.M, lay.P+1, lay.HasBisector))

	opts := cfg.VerifyOptions()
	opts.Solver.Layout = lay
	var rep *verify.Report
	if cfg.Quick {
		rep = verify.Random(g, k, 3000, cfg.Seed, opts)
		t.AddRow("random verification (3000 sets)", boolCell(rep.OK()))
	} else {
		rep = verify.Exhaustive(g, k, opts)
		t.AddRow(fmt.Sprintf("exhaustive verification (%d sets)", rep.Checked), boolCell(rep.OK()))
	}
	if !rep.OK() && len(rep.Failures) > 0 {
		t.Note("counterexample: %v", rep.Failures[0].Nodes)
	}
	t.OK = structOK && rep.OK()
	return t
}
