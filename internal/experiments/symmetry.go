package experiments

import (
	"fmt"

	"gdpn/internal/autom"
	"gdpn/internal/construct"
	"gdpn/internal/graph"
	"gdpn/internal/verify"
)

func init() {
	register("SYM", "Symmetry: orbit-reduced exhaustive verification per family", runSymmetry)
}

// runSymmetry measures, for each solution-graph family, the automorphism
// group order and the solver-call reduction that orbit pruning extracts
// from it — and re-proves on every instance that the reduced run reaches
// the same verdict as the full enumeration.
func runSymmetry(cfg Config) *Table {
	t := &Table{
		Claim: "fault sets in one automorphism orbit are tolerated together (§2 pipelines map under label-preserving isomorphism), so checking orbit representatives is a complete proof with up to |Aut|-fold fewer solver calls",
		Cols:  []string{"family", "k", "|Aut|", "fault sets", "solver calls", "reduction", "verdicts agree"},
	}
	t.OK = true

	type inst struct {
		name string
		g    *graph.Graph
		lay  *construct.Layout
		k    int
	}
	insts := []inst{
		{"G1,3", construct.G1(3), nil, 3},
		{"G2,3", construct.G2(3), nil, 3},
		{"G3,4", construct.G3(4), nil, 4},
	}
	if !cfg.Quick {
		insts = append(insts, inst{"G3,5", construct.G3(5), nil, 5})
	}
	if g, lay, err := construct.Asymptotic(16, 4); err == nil {
		// F2 on the asymptotic instance: the full k=4 enumeration belongs
		// to the benchmarks, not the experiment table.
		insts = append(insts, inst{"G16,4 asym", g, lay, 2})
	}

	for _, in := range insts {
		var seeds []autom.Perm
		if in.lay != nil {
			if refl, err := autom.Reflection(in.g, in.lay); err == nil {
				seeds = append(seeds, refl)
			}
		}
		group := autom.Compute(in.g, autom.Options{Seeds: seeds})
		order, known := group.Order()
		orderCell := fmt.Sprint(order)
		if !known {
			orderCell = fmt.Sprintf("≥%d gens", len(group.Generators()))
		}

		off := layoutOpts(cfg, in.lay)
		off.ExploitSymmetry = false
		on := off
		on.ExploitSymmetry = true
		on.Group = group
		repOff := verify.Exhaustive(in.g, in.k, off)
		repOn := verify.Exhaustive(in.g, in.k, on)

		agree := repOff.OK() == repOn.OK() &&
			(repOff.FailureCount > 0) == (repOn.FailureCount > 0) &&
			repOn.Represented == repOff.Checked
		t.AddRow(in.name, fmt.Sprint(in.k), orderCell,
			fmt.Sprint(repOff.Checked), fmt.Sprint(repOn.Checked),
			fmt.Sprintf("%.1fx", float64(repOff.Checked)/float64(repOn.Checked)),
			boolCell(agree))
		t.OK = t.OK && agree
	}
	t.Note("reduction approaches |Aut| as k grows (small orbits dominate at low k); every permutation used is certificate-checked")
	return t
}
