//go:build !race

package experiments

// raceDetector reports whether the race detector is active.
const raceDetector = false
