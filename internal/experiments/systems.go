package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"time"

	"gdpn/internal/baseline"
	"gdpn/internal/bitset"
	"gdpn/internal/construct"
	"gdpn/internal/embed"
	"gdpn/internal/faults"
	"gdpn/internal/locality"
	"gdpn/internal/pipeline"
	"gdpn/internal/reconfig"
	"gdpn/internal/stages"
	"gdpn/internal/verify"
	"gdpn/internal/workload"
)

func init() {
	register("S1", "Streaming pipeline survives fault injection (§1 motivation)", runS1)
	register("S2", "Utilization: graceful vs spare-based; degree vs naive Hayes labeling (§2)", runS2)
	register("S3", "Batched zero-allocation transport vs per-frame baseline", runS3)
	register("P1", "Ablation: solver engines on the asymptotic family", runP1)
	register("P2", "Ablation: bisector edges are necessary for odd k", runP2)
	register("P3", "Ablation: portfolio tier hit rates", runP3)
	register("E1", "Extension: link faults via Hayes' endpoint reduction (§2)", runE1)
	register("P4", "Extension: incremental repair vs full recompute", runP4)
	register("E2", "Extension: physical locality of reconfigured pipelines", runE2)
}

// runP4 measures the incremental reconfiguration manager: which local
// tactic repaired each arriving fault, and how often the full solver was
// needed. A deployment cares because every full remap migrates stage
// state across the whole array, while a splice or rewire touches a
// segment at most.
func runP4(cfg Config) *Table {
	t := &Table{
		Claim: "(extension) most single-fault arrivals are repairable locally (splice / rewire / endpoint swap)",
		Cols:  []string{"graph", "faults", "no-change", "splice", "rewire", "endpoint", "full remap", "avg repair"},
	}
	t.OK = true
	rounds := 300
	if cfg.Quick {
		rounds = 60
	}
	for _, c := range []struct{ n, k int }{{22, 4}, {100, 6}, {500, 6}} {
		sol, err := construct.Design(c.n, c.k)
		if err != nil {
			t.OK = false
			continue
		}
		rng := rand.New(rand.NewSource(cfg.Seed))
		var agg reconfig.Stats
		var total time.Duration
		faultsInjected := 0
		for round := 0; round < rounds; round++ {
			mgr, err := reconfig.New(sol)
			if err != nil {
				t.Note("%v", err)
				t.OK = false
				break
			}
			for f := 0; f < c.k; f++ {
				v := rng.Intn(sol.Graph.NumNodes())
				if mgr.Faults().Contains(v) {
					continue
				}
				start := time.Now()
				if _, err := mgr.Fault(v); err != nil {
					t.Note("fault rejected: %v", err)
					t.OK = false
					break
				}
				total += time.Since(start)
				faultsInjected++
			}
			st := mgr.Stats()
			agg.NoChange += st.NoChange
			agg.Splice += st.Splice
			agg.Rewire += st.Rewire
			agg.EndpointSwap += st.EndpointSwap
			agg.FullRemap += st.FullRemap
		}
		if faultsInjected == 0 {
			continue
		}
		t.AddRow(sol.Graph.Name(), fmt.Sprint(faultsInjected),
			fmt.Sprint(agg.NoChange), fmt.Sprint(agg.Splice), fmt.Sprint(agg.Rewire),
			fmt.Sprint(agg.EndpointSwap), fmt.Sprint(agg.FullRemap),
			(total / time.Duration(faultsInjected)).Round(time.Microsecond).String())
		local := agg.NoChange + agg.Splice + agg.Rewire + agg.EndpointSwap
		if local*2 < agg.FullRemap {
			t.Note("full remaps dominate on %s", sol.Graph.Name())
			t.OK = false
		}
	}
	return t
}

// runE1 verifies the §2 remark that Hayes' graph model — which the paper
// adopts — handles communication-link faults by viewing an adjacent
// processor as faulty: any k broken links reduce to ≤ k node faults, so a
// k-GD network tolerates them, and the surviving pipeline never crosses a
// broken link.
func runE1(cfg Config) *Table {
	t := &Table{
		Claim: "k link faults reduce to ≤ k node faults (Hayes), so every k-GD network tolerates them",
		Cols:  []string{"n", "k", "link sets", "max node faults", "tolerated", "no faulty link used"},
	}
	t.OK = true
	trials := 500
	if cfg.Quick {
		trials = 150
	}
	for _, c := range []struct{ n, k int }{{8, 2}, {9, 3}, {22, 4}} {
		sol, err := construct.Design(c.n, c.k)
		if err != nil {
			t.OK = false
			continue
		}
		g := sol.Graph
		solver := embed.NewSolver(g, embed.Options{Layout: sol.Layout})
		rng := rand.New(rand.NewSource(cfg.Seed))
		maxNodeFaults, tolerated, clean := 0, 0, true
		for i := 0; i < trials; i++ {
			links := faults.RandomLinks(rng, g, c.k)
			nf, err := faults.LinksToNodes(g, links)
			if err != nil {
				t.OK = false
				break
			}
			if nf.Count() > maxNodeFaults {
				maxNodeFaults = nf.Count()
			}
			r := solver.Find(nf)
			if !r.Found || verify.CheckPipeline(g, nf, r.Pipeline) != nil {
				continue
			}
			tolerated++
			for j := 1; j < len(r.Pipeline); j++ {
				for _, l := range links {
					if (r.Pipeline[j-1] == l.U && r.Pipeline[j] == l.V) ||
						(r.Pipeline[j-1] == l.V && r.Pipeline[j] == l.U) {
						clean = false
					}
				}
			}
		}
		t.AddRow(fmt.Sprint(c.n), fmt.Sprint(c.k), fmt.Sprint(trials),
			fmt.Sprint(maxNodeFaults), fmt.Sprintf("%d/%d", tolerated, trials), boolCell(clean))
		t.OK = t.OK && tolerated == trials && clean && maxNodeFaults <= c.k
	}
	return t
}

// runP3 measures which tier of the Auto portfolio resolves each fault set:
// the constructive planner should dominate on asymptotic-family graphs,
// with search engines as a thin safety net.
func runP3(cfg Config) *Table {
	t := &Table{
		Claim: "(ablation) the staged portfolio resolves almost everything in its cheapest applicable tier",
		Cols:  []string{"graph", "trials", "planner", "compressed", "probe", "dp", "full", "trivial"},
	}
	t.OK = true
	trials := 2000
	if cfg.Quick {
		trials = 400
	}
	for _, c := range []struct{ n, k int }{{22, 4}, {100, 4}, {101, 5}, {200, 8}} {
		sol, err := construct.Design(c.n, c.k)
		if err != nil {
			t.Note("%v", err)
			t.OK = false
			continue
		}
		solver := embed.NewSolver(sol.Graph, embed.Options{Layout: sol.Layout})
		rng := rand.New(rand.NewSource(cfg.Seed))
		for i := 0; i < trials; i++ {
			fs := bitset.New(sol.Graph.NumNodes())
			for fs.Count() < rng.Intn(c.k+1) {
				fs.Add(rng.Intn(sol.Graph.NumNodes()))
			}
			r := solver.Find(fs)
			if r.Unknown {
				t.Note("unknown on %v", fs.Slice())
				t.OK = false
			}
		}
		st := solver.Stats()
		t.AddRow(sol.Graph.Name(), fmt.Sprint(st.Total()),
			fmt.Sprint(st.Planner), fmt.Sprint(st.Compressed), fmt.Sprint(st.Probe),
			fmt.Sprint(st.DP), fmt.Sprint(st.Full), fmt.Sprint(st.Trivial))
		// The planner must carry the overwhelming majority.
		if st.Planner*10 < st.Total()*8 {
			t.Note("planner hit rate below 80%% on %s", sol.Graph.Name())
			t.OK = false
		}
	}
	return t
}

// runS1 maps a video-style processing chain (subsample → rescale → FIR →
// quantize → LZ78) onto a designed network, injects faults one at a time,
// and reports per-epoch throughput, processors in use, and remap latency.
func runS1(cfg Config) *Table {
	t := &Table{
		Claim: "after each of ≤ k faults the stream keeps flowing and the pipeline still uses ALL healthy processors",
		Cols:  []string{"epoch", "faults", "procs in use", "healthy", "frames", "throughput MB/s", "remap µs"},
	}
	n, k := 24, 4
	framesPerEpoch, frameSize := 64, 4096
	if cfg.Quick {
		framesPerEpoch, frameSize = 16, 1024
	}
	sol, err := construct.Design(n, k)
	if err != nil {
		t.Note("%v", err)
		return t
	}
	eng, err := pipeline.New(sol, []stages.Stage{
		stages.NewSubsample(2),
		&stages.Rescale{Gain: 1.5, Offset: 0.1},
		stages.NewFIR([]float64{0.25, 0.5, 0.25}),
		stages.NewQuantize(-16, 16, 256),
		stages.NewLZ78(4096),
	})
	if err != nil {
		t.Note("%v", err)
		return t
	}
	inj := faults.NewInjector(faults.ProcessorsOnly{}, sol.Graph, k, cfg.Seed)
	gen := workload.Video(frameSize/4, cfg.Seed)
	t.OK = true
	prevRemap := time.Duration(0)
	for epoch := 0; ; epoch++ {
		frames := workload.Frames(gen, framesPerEpoch, frameSize, epoch*framesPerEpoch)
		start := time.Now()
		out := eng.Process(frames)
		elapsed := time.Since(start)
		mbps := float64(framesPerEpoch*frameSize*8) / 1e6 / elapsed.Seconds()
		healthy := sol.N + sol.K - eng.Faults().Count()
		remap := eng.Metrics().RemapTime - prevRemap
		prevRemap = eng.Metrics().RemapTime
		t.AddRow(fmt.Sprint(epoch), fmt.Sprint(eng.Faults().Count()), fmt.Sprint(eng.ProcessorsInUse()),
			fmt.Sprint(healthy), fmt.Sprint(len(out)), fmt.Sprintf("%.1f", mbps),
			fmt.Sprint(remap.Microseconds()))
		if len(out) != framesPerEpoch || eng.ProcessorsInUse() != healthy {
			t.OK = false
		}
		node, ok := inj.Next()
		if !ok {
			break
		}
		if err := eng.Inject(node); err != nil {
			t.Note("inject %d failed: %v", node, err)
			t.OK = false
			break
		}
	}
	t.Note("graceful degradation: 'procs in use' tracks 'healthy' exactly across all epochs")
	return t
}

// runS3 races the batched pooled transport against the per-frame
// baseline (batch size 1) on an identical G(12,3) stream and gates the
// two claims the transport makes: throughput (≥ 1.5x on small,
// transport-bound frames) and steady-state allocation (~0 per frame with
// a pool-leasing producer and a recycling consumer). The strict ≥ 2x
// claim is pinned by BenchmarkStreamSteadyState; this gate keeps margin
// for the shared CI runner.
func runS3(cfg Config) *Table {
	t := &Table{
		Claim: "batched pooled transport beats per-frame delivery by ≥1.5x with ~0 allocs/frame in steady state",
		Cols:  []string{"mode", "batch", "frames", "ns/frame", "MB/s", "allocs/frame"},
	}
	// Small frames keep the chain transport-bound (channel synchronization
	// dominates); larger frames shift the profile toward stage compute and
	// dilute what this experiment measures.
	const frameSize = 64
	frames := 20000
	if cfg.Quick {
		frames = 6000
	}
	sol, err := construct.Design(12, 3)
	if err != nil {
		t.Note("%v", err)
		return t
	}
	// No LZ78: its dictionary allocates internally — stage compute, not
	// transport — and would drown the allocation signal being gated.
	chain := func() []stages.Stage {
		return []stages.Stage{
			stages.NewSubsample(2),
			&stages.Rescale{Gain: 1.5, Offset: 0.1},
			stages.NewFIR([]float64{0.25, 0.5, 0.25}),
			stages.NewQuantize(-16, 16, 256),
		}
	}
	run := func(opts ...pipeline.Option) (nsPerFrame, allocsPerFrame float64, err error) {
		eng, err := pipeline.New(sol, chain(), opts...)
		if err != nil {
			return 0, 0, err
		}
		st, err := eng.StartStream(pipeline.StreamConfig{MaxPending: 64})
		if err != nil {
			return 0, 0, err
		}
		consumed := make(chan struct{})
		go func() {
			defer close(consumed)
			for f := range st.Out() {
				eng.Recycle(f)
			}
		}()
		// One synthesized template copied per frame: a per-sample generator
		// in the producer would serialize with the chain on small machines
		// and dilute the transport ratio being measured.
		template := make([]float64, frameSize)
		workload.Fill(workload.Video(frameSize/4, cfg.Seed), template)
		seq := 0
		pump := func(n int) error {
			for i := 0; i < n; i++ {
				d := eng.GetBuffer(frameSize)
				copy(d, template)
				if err := st.Submit(pipeline.Frame{Seq: seq, Data: d}); err != nil {
					return err
				}
				seq++
			}
			return nil
		}
		// Warm the buffer/batch pools and goroutine stacks, then keep the
		// GC from clearing the pools mid-measurement.
		if err := pump(512); err != nil {
			return 0, 0, err
		}
		defer debug.SetGCPercent(debug.SetGCPercent(-1))
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		if err := pump(frames); err != nil {
			return 0, 0, err
		}
		rep := st.Close()
		<-consumed
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if !rep.Clean() {
			return 0, 0, fmt.Errorf("stream not clean: lost=%d dup=%d", rep.Lost, rep.Duplicated)
		}
		return float64(elapsed.Nanoseconds()) / float64(frames),
			float64(after.Mallocs-before.Mallocs) / float64(frames), nil
	}
	mbps := func(nsPerFrame float64) float64 { return frameSize * 8 * 1e3 / nsPerFrame }

	batch := cfg.Batch
	if batch <= 0 {
		batch = pipeline.DefaultBatchSize
	}
	perNS, perAllocs, err := run(pipeline.WithBatchSize(1))
	if err != nil {
		t.Note("per-frame run: %v", err)
		return t
	}
	batchNS, batchAllocs, err := run(pipeline.WithBatchSize(batch))
	if err != nil {
		t.Note("batched run: %v", err)
		return t
	}
	t.AddRow("per-frame", "1", fmt.Sprint(frames),
		fmt.Sprintf("%.0f", perNS), fmt.Sprintf("%.1f", mbps(perNS)), fmt.Sprintf("%.3f", perAllocs))
	t.AddRow("batched", fmt.Sprint(batch), fmt.Sprint(frames),
		fmt.Sprintf("%.0f", batchNS), fmt.Sprintf("%.1f", mbps(batchNS)), fmt.Sprintf("%.3f", batchAllocs))
	speedup := perNS / batchNS
	if raceDetector {
		// The race detector defeats both measurements by design: sync.Pool
		// drops Puts randomly (allocs/frame inflates) and instrumentation
		// overhead compresses the batched/per-frame gap, especially on a
		// single core. The stream-cleanliness checks above still ran;
		// report the numbers but do not enforce the perf gates.
		t.Note("speedup %.2fx, batched allocs/frame %.3f — perf gates SKIPPED under the race detector", speedup, batchAllocs)
		t.OK = true
		return t
	}
	t.Note("speedup %.2fx (gate ≥1.5x), batched allocs/frame %.3f (gate <0.5)", speedup, batchAllocs)
	t.OK = speedup >= 1.5 && batchAllocs < 0.5
	return t
}

// runS2 quantifies the two §2 critiques. (a) Utilization: a spare-based
// non-graceful pipeline runs exactly n processors while the graceful one
// runs all healthy ones — the gap is (k−f)/(n+k−f) wasted capacity.
// (b) Labeling: naive terminals on Hayes's circulant cost one extra unit
// of processor degree over the paper's degree-optimal construction (and,
// empirically on small instances, remain k-GD — an observation the paper's
// optimality framing subsumes; see EXPERIMENTS.md).
func runS2(cfg Config) *Table {
	t := &Table{
		Claim: "prior schemes waste healthy processors (non-graceful) or exceed optimal degree (unlabeled + naive terminals)",
		Cols:  []string{"faults f", "healthy", "graceful procs", "graceful util", "spare procs", "spare util"},
	}
	n, k := 16, 4 // asymptotic regime: degree-optimal with a layout
	sol, err := construct.Design(n, k)
	if err != nil {
		t.Note("%v", err)
		return t
	}
	g := sol.Graph
	solver := embed.NewSolver(g, embed.Options{Layout: sol.Layout})
	rng := rand.New(rand.NewSource(cfg.Seed))
	t.OK = true
	fs := bitset.New(g.NumNodes())
	procs := g.Processors()
	for f := 0; f <= k; f++ {
		if f > 0 {
			for {
				v := procs[rng.Intn(len(procs))]
				if !fs.Contains(v) {
					fs.Add(v)
					break
				}
			}
		}
		healthy := n + k - f
		res := solver.Find(fs)
		if !res.Found || verify.CheckPipeline(g, fs, res.Pipeline) != nil {
			t.Note("graceful pipeline failed at f=%d", f)
			t.OK = false
			continue
		}
		gProcs := len(res.Pipeline) - 2
		sp, ok := baseline.FindFixedPipeline(g, fs, n, 10_000_000)
		spProcs := 0
		if ok {
			spProcs = len(sp) - 2
		}
		t.AddRow(fmt.Sprint(f), fmt.Sprint(healthy),
			fmt.Sprint(gProcs), fmt.Sprintf("%.3f", baseline.Utilization(healthy, gProcs)),
			fmt.Sprint(spProcs), fmt.Sprintf("%.3f", baseline.Utilization(healthy, spProcs)))
		t.OK = t.OK && gProcs == healthy && ok && spProcs == n
	}
	// (b) degree comparison against the naive Hayes labeling.
	naive := baseline.NaiveTerminals(baseline.HayesCycle(n, k), k)
	t.Note("degree: paper G(%d,%d)=%d (optimal), naive Hayes labeling=%d (+1 over optimal)",
		n, k, sol.MaxDegree, naive.MaxProcessorDegree())
	t.OK = t.OK && sol.DegreeOptimal && naive.MaxProcessorDegree() == sol.MaxDegree+1
	return t
}

// runP1 compares the solver engines on identical fault workloads over the
// asymptotic family: completeness class, median/max behaviour.
func runP1(cfg Config) *Table {
	t := &Table{
		Claim: "(ablation) the structured engine dominates at scale; DP is exact but bounded; backtracking is the general fallback",
		Cols:  []string{"engine", "n", "found", "failed", "unknown", "total time", "max expansions"},
	}
	t.OK = true
	trials := 300
	if cfg.Quick {
		trials = 80
	}
	for _, n := range []int{40, 200} {
		g, lay, err := construct.Asymptotic(n, 4)
		if err != nil {
			t.Note("%v", err)
			return t
		}
		engines := []struct {
			name string
			opts embed.Options
		}{
			{"structured", embed.Options{Method: embed.Structured, Layout: lay}},
			{"backtracking", embed.Options{Method: embed.Backtracking, Budget: 2_000_000}},
			{"auto", embed.Options{Layout: lay}},
		}
		for _, e := range engines {
			solver := embed.NewSolver(g, e.opts)
			rng := rand.New(rand.NewSource(cfg.Seed))
			var found, failed, unknown int
			var maxExp int64
			start := time.Now()
			for i := 0; i < trials; i++ {
				fsz := rng.Intn(5)
				fs := bitset.New(g.NumNodes())
				for fs.Count() < fsz {
					fs.Add(rng.Intn(g.NumNodes()))
				}
				r := solver.Find(fs)
				switch {
				case r.Found:
					found++
				case r.Unknown:
					unknown++
				default:
					failed++
				}
				if r.Expansions > maxExp {
					maxExp = r.Expansions
				}
			}
			t.AddRow(e.name, fmt.Sprint(n), fmt.Sprint(found), fmt.Sprint(failed),
				fmt.Sprint(unknown), time.Since(start).Round(time.Millisecond).String(), fmt.Sprint(maxExp))
			// Structured (with fallback) and auto must find everything the
			// workload admits; genuine failures only occur when a fault set
			// isolates terminals, which all engines must agree on.
			if e.name != "backtracking" && unknown > 0 {
				t.OK = false
			}
		}
	}
	return t
}

// runP2 removes the bisector edges from an odd-k construction and shows
// the result is no longer even a candidate (Lemma 3.1 is violated) and
// concretely fails verification — the design choice is load-bearing.
func runP2(cfg Config) *Table {
	t := &Table{
		Claim: "(ablation) dropping the odd-k bisector edges breaks the construction (ring degree falls to k+1 < k+2)",
		Cols:  []string{"variant", "min processor degree", "Lemma 3.1 holds", "GD"},
	}
	n, k := 26, 5
	g, lay, err := construct.Asymptotic(n, k)
	if err != nil {
		t.Note("%v", err)
		return t
	}
	repFull := verify.Random(g, k, 1500, cfg.Seed, layoutOpts(cfg, lay))
	t.AddRow("with bisectors", fmt.Sprint(g.MinProcessorDegree()),
		boolCell(verify.CheckNecessaryConditions(g, n, k) == nil), boolCell(repFull.OK()))

	// Ablate: remove every bisector edge.
	ablated := g.Clone()
	ablated.SetName("G(26,5) minus bisectors")
	b := lay.Bisector
	for i := 0; i < lay.M; i++ {
		j := (i + b) % lay.M
		if ablated.HasEdge(lay.C[i], lay.C[j]) {
			ablated.RemoveEdge(lay.C[i], lay.C[j])
		}
	}
	necOK := verify.CheckNecessaryConditions(ablated, n, k) == nil
	// Lemma 3.1's proof, executed: a ring node now has only k+1 neighbors;
	// faulting k of them leaves it with one healthy neighbor and no
	// terminal, so it can be neither interior nor endpoint of a pipeline.
	victim := -1
	for _, pnode := range ablated.Processors() {
		if ablated.Degree(pnode) == k+1 {
			victim = pnode
			break
		}
	}
	tolerated := true
	if victim >= 0 {
		fs := bitset.New(ablated.NumNodes())
		for i, u := range ablated.Neighbors(victim) {
			if i >= k {
				break
			}
			fs.Add(int(u))
		}
		_, tol, err := verify.Tolerates(ablated, fs, embed.Options{})
		if err != nil {
			t.Note("targeted check inconclusive: %v", err)
		}
		tolerated = tol
		t.Note("targeted fault set (k neighbors of ring node %d): tolerated=%v", victim, tol)
	}
	t.AddRow("without bisectors", fmt.Sprint(ablated.MinProcessorDegree()),
		boolCell(necOK), boolCell(tolerated))
	t.OK = repFull.OK() && !necOK && victim >= 0 && !tolerated
	return t
}

// runE2 profiles the physical locality of pipelines (the paper's VLSI
// context): after reconfiguration the embedding should still mostly follow
// unit-distance ring edges, with zigzag ±2 strides appearing only around
// dead-end fault pockets, and no hop ever exceeding the circulant's
// offsets.
func runE2(cfg Config) *Table {
	t := &Table{
		Claim: "(extension) reconfigured pipelines stay physically local: hops bounded by the circulant offsets, dominated by ±1/±2",
		Cols:  []string{"n", "k", "fault sets", "ring hops", "±1", "±2", "max offset", "short-hop %"},
	}
	t.OK = true
	trials := 200
	if cfg.Quick {
		trials = 50
	}
	for _, c := range []struct{ n, k int }{{40, 4}, {80, 6}, {200, 8}} {
		g, lay, err := construct.Asymptotic(c.n, c.k)
		if err != nil {
			t.OK = false
			continue
		}
		solver := embed.NewSolver(g, embed.Options{Layout: lay})
		rng := rand.New(rand.NewSource(cfg.Seed))
		var ring, one, two, maxOff int
		for i := 0; i < trials; i++ {
			fs := bitset.New(g.NumNodes())
			for fs.Count() < rng.Intn(c.k+1) {
				fs.Add(rng.Intn(g.NumNodes()))
			}
			r := solver.Find(fs)
			if !r.Found {
				t.OK = false
				continue
			}
			p, err := locality.Analyze(g, lay, r.Pipeline)
			if err != nil {
				t.Note("analyze: %v", err)
				t.OK = false
				continue
			}
			ring += p.RingHops
			one += p.OffsetHistogram[1]
			two += p.OffsetHistogram[2]
			if p.MaxOffset() > maxOff {
				maxOff = p.MaxOffset()
			}
		}
		short := 0.0
		if ring > 0 {
			short = float64(one+two) / float64(ring) * 100
		}
		t.AddRow(fmt.Sprint(c.n), fmt.Sprint(c.k), fmt.Sprint(trials),
			fmt.Sprint(ring), fmt.Sprint(one), fmt.Sprint(two),
			fmt.Sprint(maxOff), fmt.Sprintf("%.1f", short))
		// Bisector hops would be legal for odd k too, but the planner never
		// needs them; the offsets 1..p+1 bound everything we emit.
		t.OK = t.OK && maxOff <= lay.P+1 && short > 80
	}
	return t
}
