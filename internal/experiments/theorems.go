package experiments

import (
	"fmt"
	"math/rand"

	"gdpn/internal/bitset"
	"gdpn/internal/construct"
	"gdpn/internal/embed"
	"gdpn/internal/faults"
	"gdpn/internal/search"
	"gdpn/internal/verify"
)

func init() {
	register("T313", "Theorem 3.13: k=1 family, all n", func(cfg Config) *Table { return runTheoremFamily(cfg, "T313", 1) })
	register("T315", "Theorem 3.15: k=2 family, all n", func(cfg Config) *Table { return runTheoremFamily(cfg, "T315", 2) })
	register("T316", "Theorem 3.16: k=3 family, all n", func(cfg Config) *Table { return runTheoremFamily(cfg, "T316", 3) })
	register("T317", "Theorem 3.17: asymptotic construction is k-GD", runT317)
	register("T317b", "Asymptotic feasibility frontier (smallest verified n per k)", runT317Frontier)
	register("L31", "Lemmas 3.1/3.4: necessary degree conditions", runL31)
	register("L35", "Lemma 3.5: parity lower bound k+3 for even n, odd k", runL35)
	register("L36", "Lemma 3.6: extension preserves k-GD and degree", runL36)
	register("L37", "Lemma 3.7: G1,k unique standard solution", func(cfg Config) *Table { return runUniqueness(cfg, "L37", 1) })
	register("L39", "Lemma 3.9: G2,k unique standard solution", func(cfg Config) *Table { return runUniqueness(cfg, "L39", 2) })
	register("M", "§3 merged model: fault-free terminals of degree k+1", runMerged)
}

// runTheoremFamily verifies the per-n degree claims of Theorems
// 3.13/3.15/3.16 and exhaustively verifies graceful degradability for each
// n in the band.
func runTheoremFamily(cfg Config, id string, k int) *Table {
	t := &Table{
		ID:    id,
		Claim: fmt.Sprintf("for k=%d every n ≥ 1 has a degree-optimal standard solution", k),
		Cols:  []string{"n", "method", "degree", "bound", "optimal", "exhaustive GD"},
	}
	t.OK = true
	maxN := 16
	verifyN := 12
	if cfg.Quick {
		maxN, verifyN = 10, 8
	}
	for n := 1; n <= maxN; n++ {
		sol, err := construct.Design(n, k)
		if err != nil {
			t.Note("n=%d: %v", n, err)
			t.OK = false
			continue
		}
		bound := construct.DegreeLowerBound(n, k)
		gd := "-"
		ok := sol.DegreeOptimal && verify.CheckStandard(sol.Graph, n, k) == nil
		if n <= verifyN {
			rep := verify.Exhaustive(sol.Graph, k, cfg.VerifyOptions())
			gd = boolCell(rep.OK())
			ok = ok && rep.OK()
		}
		t.AddRow(fmt.Sprint(n), sol.Method, fmt.Sprint(sol.MaxDegree), fmt.Sprint(bound),
			boolCell(sol.DegreeOptimal), gd)
		t.OK = t.OK && ok
	}
	t.Note("GD column '-': beyond the exhaustive band for this run (structure checks still enforced)")
	return t
}

// runT317 verifies the asymptotic construction across a (n, k) grid:
// exhaustively where feasible, by random + clustered sampling at scale.
func runT317(cfg Config) *Table {
	t := &Table{
		Claim: "G(n,k) of §3.4 is k-gracefully-degradable for k ≥ 4 and sufficiently large n",
		Cols:  []string{"n", "k", "mode", "fault sets", "GD"},
	}
	t.OK = true
	type inst struct {
		n, k       int
		exhaustive bool
	}
	grid := []inst{
		{14, 4, true}, {22, 4, true},
		{15, 5, false}, {26, 5, false},
		{60, 4, false}, {61, 5, false}, {80, 6, false}, {81, 7, false}, {200, 8, false},
	}
	if cfg.Quick {
		grid = []inst{{14, 4, true}, {22, 4, false}, {26, 5, false}, {80, 6, false}}
	}
	for _, in := range grid {
		g, lay, err := construct.Asymptotic(in.n, in.k)
		if err != nil {
			t.Note("n=%d k=%d: %v", in.n, in.k, err)
			t.OK = false
			continue
		}
		opts := cfg.VerifyOptions()
		opts.Solver.Layout = lay
		var rep *verify.Report
		mode := "random"
		if in.exhaustive && !cfg.Quick {
			rep = verify.Exhaustive(g, in.k, opts)
			mode = "exhaustive"
		} else {
			trials := 4000
			if cfg.Quick {
				trials = 1000
			}
			rep = verify.Random(g, in.k, trials, cfg.Seed, opts)
		}
		t.AddRow(fmt.Sprint(in.n), fmt.Sprint(in.k), mode, fmt.Sprint(rep.Checked), boolCell(rep.OK()))
		if !rep.OK() && len(rep.Failures) > 0 {
			t.Note("n=%d k=%d counterexample: %v", in.n, in.k, rep.Failures[0].Nodes)
		}
		t.OK = t.OK && rep.OK()
	}
	// Adversarially clustered ring faults: every run of exactly k
	// consecutive ring positions (the pattern that maximizes the fault-run
	// length the offsets must cross; runs > p force zigzag coverage).
	for _, in := range []struct{ n, k int }{{60, 4}, {61, 5}, {80, 6}} {
		g, lay, err := construct.Asymptotic(in.n, in.k)
		if err != nil {
			t.OK = false
			continue
		}
		solver := embed.NewSolver(g, embed.Options{Layout: lay})
		fs := make([]int, 0, in.k)
		ok := true
		for start := 0; start < lay.M; start++ {
			fs = fs[:0]
			for i := 0; i < in.k; i++ {
				fs = append(fs, lay.C[(start+i)%lay.M])
			}
			faults := bitsetFrom(g.NumNodes(), fs)
			r := solver.Find(faults)
			if !r.Found || verify.CheckPipeline(g, faults, r.Pipeline) != nil {
				ok = false
				t.Note("clustered failure n=%d k=%d at ring start %d", in.n, in.k, start)
				break
			}
		}
		t.AddRow(fmt.Sprint(in.n), fmt.Sprint(in.k), "clustered(all runs)", fmt.Sprint(lay.M), boolCell(ok))
		t.OK = t.OK && ok
	}
	// Greedy adversarial fault sets: each fault is chosen to maximize the
	// solver's work (faults.Adversarial), probing for pathological cases
	// random sampling would miss.
	advTrials := 60
	if cfg.Quick {
		advTrials = 15
	}
	for _, in := range []struct{ n, k int }{{40, 4}, {61, 5}} {
		g, lay, err := construct.Asymptotic(in.n, in.k)
		if err != nil {
			t.OK = false
			continue
		}
		solver := embed.NewSolver(g, embed.Options{Layout: lay})
		model := faults.Adversarial{Pool: 6, Solver: embed.Options{Layout: lay}}
		rng := rand.New(rand.NewSource(cfg.Seed))
		ok := true
		for i := 0; i < advTrials; i++ {
			fs := model.Sample(rng, g, in.k)
			r := solver.Find(fs)
			if !r.Found || verify.CheckPipeline(g, fs, r.Pipeline) != nil {
				ok = false
				t.Note("adversarial failure n=%d k=%d: %v", in.n, in.k, fs.Slice())
				break
			}
		}
		t.AddRow(fmt.Sprint(in.n), fmt.Sprint(in.k), "adversarial(greedy)", fmt.Sprint(advTrials), boolCell(ok))
		t.OK = t.OK && ok
	}
	return t
}

func bitsetFrom(n int, nodes []int) bitset.Set {
	s := bitset.New(n)
	for _, v := range nodes {
		s.Add(v)
	}
	return s
}

// runT317Frontier measures where the construction starts working: the
// paper only claims "sufficiently large n" (linear in k); this experiment
// reports the smallest constructible n per k and whether it verifies.
func runT317Frontier(cfg Config) *Table {
	t := &Table{
		Claim: "n is only required to be linear in k (§3.4, unquantified)",
		Cols:  []string{"k", "min constructible n", "verification", "GD at min n"},
	}
	t.OK = true
	maxK := 6
	if cfg.Quick {
		maxK = 5
	}
	for k := 4; k <= maxK; k++ {
		n := construct.MinAsymptoticN(k)
		g, lay, err := construct.Asymptotic(n, k)
		if err != nil {
			t.Note("k=%d: %v", k, err)
			t.OK = false
			continue
		}
		opts := cfg.VerifyOptions()
		opts.Solver.Layout = lay
		var rep *verify.Report
		mode := "exhaustive"
		if cfg.Quick {
			rep = verify.Random(g, k, 4000, cfg.Seed, opts)
			mode = "random(4000)"
		} else {
			// Exhaustive even at k=6 (~3.3M fault sets): the frontier rows
			// are the ones worth a machine PROOF rather than sampling.
			rep = verify.Exhaustive(g, k, opts)
		}
		t.AddRow(fmt.Sprint(k), fmt.Sprint(n), mode, boolCell(rep.OK()))
		t.OK = t.OK && rep.OK()
	}
	t.Note("min constructible n = max(2k+5, k+2⌊k/2⌋+6): ring must fit offsets and a nonempty R")
	return t
}

// runL31 checks the Lemma 3.1/3.4 necessary conditions on every designed
// graph in a band — they must hold since the constructions are solutions.
func runL31(cfg Config) *Table {
	t := &Table{
		Claim: "every processor in a k-GD graph has degree ≥ k+2 and (n>1) ≥ k+1 processor neighbors",
		Cols:  []string{"graph", "min degree", "k+2", "conditions hold"},
	}
	t.OK = true
	for _, c := range []struct{ n, k int }{{5, 1}, {8, 2}, {9, 3}, {22, 4}, {26, 5}} {
		sol, err := construct.Design(c.n, c.k)
		if err != nil {
			t.OK = false
			continue
		}
		err = verify.CheckNecessaryConditions(sol.Graph, c.n, c.k)
		t.AddRow(sol.Graph.Name(), fmt.Sprint(sol.Graph.MinProcessorDegree()),
			fmt.Sprint(c.k+2), boolCell(err == nil))
		t.OK = t.OK && err == nil
	}
	return t
}

// runL35 confirms the parity bound: for even n and odd k our solutions sit
// exactly at k+3, and the bound is tight (odd-n siblings reach k+2).
func runL35(cfg Config) *Table {
	t := &Table{
		Claim: "even n, odd k ⇒ max processor degree ≥ k+3 in any standard solution (parity counting)",
		Cols:  []string{"n", "k", "degree", "bound k+3", "at bound"},
	}
	t.OK = true
	for _, c := range []struct{ n, k int }{{4, 1}, {6, 1}, {4, 3}, {6, 3}, {8, 3}, {26, 5}} {
		sol, err := construct.Design(c.n, c.k)
		if err != nil {
			t.OK = false
			continue
		}
		at := sol.MaxDegree == c.k+3
		t.AddRow(fmt.Sprint(c.n), fmt.Sprint(c.k), fmt.Sprint(sol.MaxDegree), fmt.Sprint(c.k+3), boolCell(at))
		t.OK = t.OK && at
	}
	t.Note("tightness: odd-n designs at the same k reach k+2 (see T313/T316 tables)")
	return t
}

// runL36 verifies that the extension preserves graceful degradability and
// maximum degree across chains.
func runL36(cfg Config) *Table {
	t := &Table{
		Claim: "if G is standard k-GD for n with max degree d, then G' is standard k-GD for n+k+1 with max degree d",
		Cols:  []string{"base", "extensions", "degree before/after", "exhaustive GD"},
	}
	t.OK = true
	type c struct {
		base  string
		g     func() *construct.Solution
		k, ln int
	}
	bases := []struct {
		name string
		k    int
		mk   func() (*construct.Solution, error)
	}{
		{"G1(2)", 2, func() (*construct.Solution, error) { return construct.Design(1, 2) }},
		{"G2(2)", 2, func() (*construct.Solution, error) { return construct.Design(2, 2) }},
		{"G3(3)", 3, func() (*construct.Solution, error) { return construct.Design(3, 3) }},
	}
	_ = c{}
	for _, b := range bases {
		sol, err := b.mk()
		if err != nil {
			t.OK = false
			continue
		}
		g := sol.Graph
		before := g.MaxDegree()
		ext := construct.ExtendTimes(g, 2)
		rep := verify.Exhaustive(ext, b.k, cfg.VerifyOptions())
		ok := ext.MaxDegree() == before && rep.OK()
		t.AddRow(b.name, "2", fmt.Sprintf("%d/%d", before, ext.MaxDegree()), boolCell(rep.OK()))
		t.OK = t.OK && ok
	}
	return t
}

// runUniqueness re-proves Lemmas 3.7/3.9 by complete enumeration.
func runUniqueness(cfg Config, id string, n int) *Table {
	t := &Table{
		ID:    id,
		Claim: fmt.Sprintf("the paper's construction is the ONLY standard solution for n=%d", n),
		Cols:  []string{"k", "candidates", "solutions (up to iso)", "unique"},
	}
	t.OK = true
	maxK := 3
	if n == 2 {
		maxK = 2 // candidate space grows quickly with the larger degree budget
	}
	if cfg.Quick {
		maxK = 2
	}
	for k := 1; k <= maxK; k++ {
		delta := k + 2
		if n == 2 {
			delta = k + 3
		}
		res := search.Exhaustive(search.Spec{N: n, K: k, MaxDegree: delta}, 0)
		unique := len(res.Solutions) == 1
		t.AddRow(fmt.Sprint(k), fmt.Sprint(res.Candidates), fmt.Sprint(len(res.Solutions)), boolCell(unique))
		t.OK = t.OK && unique
	}
	return t
}

// runMerged verifies the fault-free-terminal model of §3.
func runMerged(cfg Config) *Table {
	t := &Table{
		Claim: "merging terminals yields single input/output nodes of degree k+1 (minimum possible) tolerating k processor faults",
		Cols:  []string{"n", "k", "terminal degrees", "exhaustive GD (processor faults)"},
	}
	t.OK = true
	cases := []struct{ n, k int }{{4, 1}, {6, 2}, {5, 3}}
	if !cfg.Quick {
		cases = append(cases, struct{ n, k int }{22, 4}) // merged asymptotic family
	}
	for _, c := range cases {
		sol, err := construct.Design(c.n, c.k)
		if err != nil {
			t.OK = false
			continue
		}
		m := construct.Merge(sol.Graph)
		shapeErr := verify.CheckMerged(m, c.n, c.k)
		rep := verify.Exhaustive(m, c.k, mergedOpts(cfg))
		in, out := m.InputTerminals()[0], m.OutputTerminals()[0]
		t.AddRow(fmt.Sprint(c.n), fmt.Sprint(c.k),
			fmt.Sprintf("%d/%d", m.Degree(in), m.Degree(out)), boolCell(rep.OK()))
		t.OK = t.OK && shapeErr == nil && rep.OK()
	}
	return t
}
