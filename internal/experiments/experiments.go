// Package experiments regenerates every evaluation artifact of the paper.
// The paper's "evaluation" consists of constructions (Figures 1–15),
// optimality lower bounds (Lemmas 3.1–3.14), and correctness theorems
// (Theorems 3.13–3.17); each is mechanized as an Experiment that produces
// a Table, and EXPERIMENTS.md records paper-claim vs machine-checked
// outcome per row. cmd/gdpbench and the root bench_test.go both drive this
// registry.
package experiments

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"

	"gdpn/internal/construct"
	"gdpn/internal/embed"
	"gdpn/internal/store"
	"gdpn/internal/verify"
)

// Config tunes an experiment run.
type Config struct {
	// Quick trades exhaustiveness for speed: random verification instead
	// of full enumeration on the larger instances, fewer trials. Full runs
	// (Quick=false) are machine proofs wherever enumeration is feasible.
	Quick bool
	// Seed drives every randomized component (deterministic per seed).
	Seed int64
	// Workers bounds verification parallelism (0 = GOMAXPROCS).
	Workers int
	// Symmetry enables orbit-reduced exhaustive verification: only one
	// representative per automorphism orbit of fault sets is solved. The
	// verdicts are identical (SYM re-proves this per family); the solver
	// call counts drop by up to the automorphism group order.
	Symmetry bool
	// Race enables the racing Auto solver portfolio in every verification:
	// on hard instances the exact DP and the backtracker run concurrently
	// and the first definitive answer wins. Verdict-identical to the
	// staged ladder (the TestRaceAB gate re-proves it).
	Race bool
	// Batch sets the transport batch size for the streaming experiments
	// (S3). ≤ 0 uses the pipeline default.
	Batch int
	// Store attaches a content-addressed verdict store to every
	// verification the experiments run, making repeated gdpbench
	// invocations incremental (cached verdicts replay instead of
	// re-solving). The ST experiment measures its effect with a private
	// store regardless. The caller owns the lifecycle. nil disables it.
	Store *store.Store
	// Context cancels in-flight verifications (SIGINT → partial report).
	Context context.Context
}

// VerifyOptions returns the verification options implied by the config.
// Callers layer experiment-specific fields (Solver.Layout, Universe) on
// top of the returned value.
func (cfg Config) VerifyOptions() verify.Options {
	return verify.Options{
		Workers:         cfg.Workers,
		ExploitSymmetry: cfg.Symmetry,
		Context:         cfg.Context,
		Solver:          embed.Options{Race: cfg.Race},
		Store:           cfg.Store,
	}
}

// layoutOpts is VerifyOptions with the structured-solver layout attached.
func layoutOpts(cfg Config, lay *construct.Layout) verify.Options {
	o := cfg.VerifyOptions()
	o.Solver.Layout = lay
	return o
}

// mergedOpts is VerifyOptions under the §3 merged-terminal fault model.
func mergedOpts(cfg Config) verify.Options {
	o := cfg.VerifyOptions()
	o.Universe = verify.ProcessorsOnly
	return o
}

// Table is one regenerated artifact: rows of measured results plus the
// paper's claim for side-by-side comparison.
type Table struct {
	ID    string     `json:"id"` // experiment id from DESIGN.md (F2, T317, …)
	Title string     `json:"title"`
	Claim string     `json:"claim"` // what the paper asserts
	Cols  []string   `json:"cols"`
	Rows  [][]string `json:"rows"`
	Notes []string   `json:"notes,omitempty"`
	// OK reports that every row matched the claim.
	OK      bool          `json:"ok"`
	Elapsed time.Duration `json:"elapsed_ns"`
	// AllocsPerOp / BytesPerOp are the heap allocation count and volume of
	// one execution of this experiment (measured by timed around Run, the
	// same "op" elapsed_ns covers) — benchdiff gates allocation
	// regressions on them alongside the timing gate.
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a free-form note line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	status := "OK"
	if !t.OK {
		status = "MISMATCH"
	}
	fmt.Fprintf(w, "== %s: %s [%s, %v]\n", t.ID, t.Title, status, t.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "   paper: %s\n", t.Claim)
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		fmt.Fprint(w, "   ")
		for i, cell := range cells {
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(cell)
			}
			fmt.Fprint(w, cell, strings.Repeat(" ", pad+2))
		}
		fmt.Fprintln(w)
	}
	line(t.Cols)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "   note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Experiment is one registry entry.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) *Table
}

var registry []Experiment

func register(id, title string, run func(cfg Config) *Table) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// All returns the registered experiments sorted by id in declaration
// groups (figures, theorems/lemmas, systems).
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	return out
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs lists all registered experiment ids.
func IDs() []string {
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.ID
	}
	sort.Strings(ids)
	return ids
}

// RunAll executes every experiment and renders the tables to w. It
// returns false if any table mismatched its claim.
func RunAll(cfg Config, w io.Writer) bool {
	ok := true
	for _, e := range registry {
		tbl := timed(e, cfg)
		tbl.Render(w)
		ok = ok && tbl.OK
	}
	return ok
}

// CollectAll executes every experiment and returns the tables without
// rendering them — the machine-readable path behind `gdpbench -json`.
func CollectAll(cfg Config) ([]*Table, bool) {
	ok := true
	tables := make([]*Table, 0, len(registry))
	for _, e := range registry {
		tbl := timed(e, cfg)
		tables = append(tables, tbl)
		ok = ok && tbl.OK
	}
	return tables, ok
}

// RunOne executes a single experiment by id.
func RunOne(id string, cfg Config, w io.Writer) (bool, error) {
	tbl, err := CollectOne(id, cfg)
	if err != nil {
		return false, err
	}
	tbl.Render(w)
	return tbl.OK, nil
}

// CollectOne executes a single experiment by id and returns its table.
func CollectOne(id string, cfg Config) (*Table, error) {
	e, found := ByID(id)
	if !found {
		return nil, fmt.Errorf("experiments: unknown id %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	return timed(e, cfg), nil
}

func timed(e Experiment, cfg Config) *Table {
	// Experiments run serially, so MemStats deltas attribute cleanly.
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	tbl := e.Run(cfg)
	tbl.Elapsed = time.Since(start)
	runtime.ReadMemStats(&after)
	tbl.AllocsPerOp = int64(after.Mallocs - before.Mallocs)
	tbl.BytesPerOp = int64(after.TotalAlloc - before.TotalAlloc)
	if tbl.ID == "" {
		tbl.ID = e.ID
	}
	if tbl.Title == "" {
		tbl.Title = e.Title
	}
	return tbl
}

func boolCell(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}
