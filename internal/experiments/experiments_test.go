package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func quickCfg() Config { return Config{Quick: true, Seed: 1} }

func TestRegistryComplete(t *testing.T) {
	// Every experiment id from DESIGN.md's per-experiment index must be
	// registered.
	want := []string{
		"F1", "F2", "F3", "F4", "F5-F9", "F10", "F11", "F12", "F13", "F14", "F15",
		"T313", "T315", "T316", "T317", "T317b",
		"L31", "L35", "L36", "L37", "L39", "M",
		"S1", "S2", "S3", "P1", "P2", "P3", "P4", "E1", "E2",
		"SYM", "ST",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d entries, DESIGN.md lists %d", len(All()), len(want))
	}
}

func TestByIDCaseInsensitive(t *testing.T) {
	if _, ok := ByID("f1"); !ok {
		t.Fatal("lowercase id not found")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown id found")
	}
}

func TestRunOneUnknown(t *testing.T) {
	var buf bytes.Buffer
	if _, err := RunOne("bogus", quickCfg(), &buf); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{ID: "X", Title: "demo", Claim: "c", Cols: []string{"a", "bb"}, OK: true}
	tbl.AddRow("1", "2")
	tbl.Note("hello %d", 7)
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== X: demo [OK", "paper: c", "a  bb", "1  2", "note: hello 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	tbl.OK = false
	buf.Reset()
	tbl.Render(&buf)
	if !strings.Contains(buf.String(), "MISMATCH") {
		t.Error("mismatch status not rendered")
	}
}

// Each experiment must run green in quick mode. These are the same
// regenerators the benches and cmd/gdpbench use.
func TestQuickExperimentsPass(t *testing.T) {
	// The heavyweight ones get their own test functions below so failures
	// localize; this covers the fast figure/lemma set.
	for _, id := range []string{"F1", "F2", "F3", "F4", "F5-F9", "F10", "F11", "F12", "F13", "L31", "L35", "L37", "M", "SYM"} {
		id := id
		t.Run(id, func(t *testing.T) {
			var buf bytes.Buffer
			ok, err := RunOne(id, quickCfg(), &buf)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("experiment %s mismatched its claim:\n%s", id, buf.String())
			}
		})
	}
}

// The Symmetry knob must not change any experiment verdict: the same
// figure/lemma set re-run with orbit reduction has to stay green.
func TestQuickExperimentsWithSymmetry(t *testing.T) {
	cfg := quickCfg()
	cfg.Symmetry = true
	for _, id := range []string{"F2", "F3", "F4", "L36", "M"} {
		id := id
		t.Run(id, func(t *testing.T) {
			var buf bytes.Buffer
			ok, err := RunOne(id, cfg, &buf)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("experiment %s mismatched with symmetry on:\n%s", id, buf.String())
			}
		})
	}
}

func TestQuickAsymptoticFigures(t *testing.T) {
	for _, id := range []string{"F14", "F15", "T317b"} {
		id := id
		t.Run(id, func(t *testing.T) {
			var buf bytes.Buffer
			ok, err := RunOne(id, quickCfg(), &buf)
			if err != nil || !ok {
				t.Fatalf("%s: ok=%v err=%v\n%s", id, ok, err, buf.String())
			}
		})
	}
}

func TestQuickTheoremFamilies(t *testing.T) {
	for _, id := range []string{"T313", "T315", "T316", "L36", "L39"} {
		id := id
		t.Run(id, func(t *testing.T) {
			var buf bytes.Buffer
			ok, err := RunOne(id, quickCfg(), &buf)
			if err != nil || !ok {
				t.Fatalf("%s: ok=%v err=%v\n%s", id, ok, err, buf.String())
			}
		})
	}
}

func TestQuickSystems(t *testing.T) {
	for _, id := range []string{"S1", "S2", "S3", "P2", "P3", "P4", "E1", "E2", "ST"} {
		id := id
		t.Run(id, func(t *testing.T) {
			var buf bytes.Buffer
			ok, err := RunOne(id, quickCfg(), &buf)
			if err != nil || !ok {
				t.Fatalf("%s: ok=%v err=%v\n%s", id, ok, err, buf.String())
			}
		})
	}
}

func TestQuickT317(t *testing.T) {
	if testing.Short() {
		t.Skip("T317 grid skipped in -short mode")
	}
	var buf bytes.Buffer
	ok, err := RunOne("T317", quickCfg(), &buf)
	if err != nil || !ok {
		t.Fatalf("T317: ok=%v err=%v\n%s", ok, err, buf.String())
	}
}

func TestQuickP1(t *testing.T) {
	if testing.Short() {
		t.Skip("P1 ablation skipped in -short mode")
	}
	var buf bytes.Buffer
	ok, err := RunOne("P1", quickCfg(), &buf)
	if err != nil || !ok {
		t.Fatalf("P1: ok=%v err=%v\n%s", ok, err, buf.String())
	}
}
