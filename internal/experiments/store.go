package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"gdpn/internal/construct"
	"gdpn/internal/graph"
	"gdpn/internal/obs"
	"gdpn/internal/store"
	"gdpn/internal/verify"
)

func init() {
	register("ST", "Store: content-addressed verdict cache, cold vs warm sweep", runStore)
}

// warmSpeedupFloor is the acceptance gate for the warm re-sweep: replaying
// stored verdicts (manifest fast path: no enumeration, no orbit testing,
// no solving) must be at least this much faster than the cold sweep that
// produced them. CI runs the full experiment, so the gate is enforced on
// every push.
const warmSpeedupFloor = 5.0

// runStore measures incremental re-verification through the verdict
// store: a cold symmetry-reduced sweep populates it, a second run of the
// same instance replays it. Correctness is gated the same way the fleet
// gauntlet gates its summaries — the store-less, cold-store, and
// warm-store verdict summaries must be byte-identical — and every
// certificate replayed from the store must pass its re-check
// (store_replay_fail_total stays 0).
func runStore(cfg Config) *Table {
	t := &Table{
		Claim: fmt.Sprintf("a content-addressed verdict store makes re-verification incremental: the warm re-sweep replays certificates instead of solving, ≥%.0fx faster with a byte-identical verdict", warmSpeedupFloor),
		Cols:  []string{"instance", "k", "fault sets", "solver calls", "cold", "warm", "speedup", "byte-equal", "replay fails"},
	}
	t.OK = true

	reg := obs.Default()
	wasEnabled := reg.Enabled()
	reg.SetEnabled(true)
	defer reg.SetEnabled(wasEnabled)
	replayFailC := reg.Counter("store_replay_fail_total")

	dir, err := os.MkdirTemp("", "gdpn-st-*")
	if err != nil {
		t.Note("temp store dir: %v", err)
		t.OK = false
		return t
	}
	defer os.RemoveAll(dir)

	type inst struct {
		name string
		g    *graph.Graph
		k    int
		// gated enforces the warm-speedup floor on this instance. Only the
		// largest instance is gated: fixed warm-path overhead (canonical
		// labeling, group lookup) weighs more on small sweeps, and quick
		// mode measures without gating at all.
		gated bool
	}
	insts := []inst{{"G3,4", construct.G3(4), 4, false}}
	if !cfg.Quick {
		insts = append(insts, inst{"G3,5", construct.G3(5), 5, true})
	}

	for i, in := range insts {
		opts := cfg.VerifyOptions()
		opts.ExploitSymmetry = true
		opts.Store = nil
		base := verify.Exhaustive(in.g, in.k, opts)

		path := filepath.Join(dir, fmt.Sprintf("st-%d.gdps", i))
		s, err := store.Open(path)
		if err != nil {
			t.Note("open store: %v", err)
			t.OK = false
			return t
		}
		opts.Store = s
		cold := verify.Exhaustive(in.g, in.k, opts)
		if err := s.Close(); err != nil {
			t.Note("close store: %v", err)
			t.OK = false
			return t
		}

		s2, err := store.Open(path)
		if err != nil {
			t.Note("reopen store: %v", err)
			t.OK = false
			return t
		}
		failsBefore := replayFailC.Value()
		opts.Store = s2
		warm := verify.Exhaustive(in.g, in.k, opts)
		fails := replayFailC.Value() - failsBefore
		s2.Close()

		byteEqual := cold.VerdictSummary() == base.VerdictSummary() &&
			warm.VerdictSummary() == base.VerdictSummary()
		speedup := float64(cold.Duration) / float64(warm.Duration)
		ok := byteEqual && fails == 0 && (!in.gated || speedup >= warmSpeedupFloor)
		t.AddRow(in.name, fmt.Sprint(in.k),
			fmt.Sprint(base.Represented), fmt.Sprint(base.Checked),
			cold.Duration.Round(10e3).String(), warm.Duration.Round(10e3).String(),
			fmt.Sprintf("%.1fx", speedup), boolCell(byteEqual), fmt.Sprint(fails))
		t.OK = t.OK && ok
	}
	t.Note("warm run replays per-size orbit manifests: no enumeration, no orbit testing, no solver; every positive verdict re-passes CheckPipeline before being trusted")
	if cfg.Quick {
		t.Note("quick mode: speedup measured but not gated (full runs enforce ≥%.0fx on G3,5)", warmSpeedupFloor)
	}
	return t
}
