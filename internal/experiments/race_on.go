//go:build race

package experiments

// raceDetector reports whether the race detector is active. Under -race,
// sync.Pool randomly discards Puts to shake out lifecycle races and every
// allocation carries instrumentation overhead, so performance/allocation
// gates (S3) report their measurements but do not enforce thresholds.
const raceDetector = true
