package verify_test

import (
	"path/filepath"
	"testing"

	"gdpn/internal/construct"
	"gdpn/internal/graph"
	"gdpn/internal/obs"
	"gdpn/internal/store"
	"gdpn/internal/verify"
)

// openStore opens a store at path and fails the test on error.
func openStore(t *testing.T, path string) *store.Store {
	t.Helper()
	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// warmCold runs Exhaustive three times — without a store, with a cold
// store, and with the warmed store reopened from disk — and asserts all
// three VerdictSummary lines are byte-identical. Workers is pinned to 1 so
// the recorded-counterexample cap is filled in the same deterministic walk
// order in every run.
func warmCold(t *testing.T, g *graph.Graph, k int, opts verify.Options) (cold, warm *verify.Report) {
	t.Helper()
	opts.Workers = 1
	base := verify.Exhaustive(g, k, opts)

	path := filepath.Join(t.TempDir(), "v.gdps")
	s := openStore(t, path)
	coldOpts := opts
	coldOpts.Store = s
	cold = verify.Exhaustive(g, k, coldOpts)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, path)
	defer s2.Close()
	warmOpts := opts
	warmOpts.Store = s2
	warm = verify.Exhaustive(g, k, warmOpts)

	if got, want := cold.VerdictSummary(), base.VerdictSummary(); got != want {
		t.Errorf("cold store run changed the verdict:\n got %q\nwant %q", got, want)
	}
	if got, want := warm.VerdictSummary(), base.VerdictSummary(); got != want {
		t.Errorf("warm store run changed the verdict:\n got %q\nwant %q", got, want)
	}
	return cold, warm
}

func TestStoreWarmMatchesColdClean(t *testing.T) {
	warmCold(t, construct.G2(2), 2, verify.Options{})
	warmCold(t, construct.G2(2), 2, verify.Options{ExploitSymmetry: true})
}

func TestStoreWarmMatchesColdFailing(t *testing.T) {
	// G3(2) is not 3-degradable: the warm run must reproduce the exact
	// counterexample records, not just the counts.
	cold, warm := warmCold(t, construct.G3(2), 3, verify.Options{})
	if cold.FailureCount == 0 || warm.FailureCount == 0 {
		t.Fatalf("test premise: instance must fail (cold=%d warm=%d)",
			cold.FailureCount, warm.FailureCount)
	}
	warmCold(t, construct.G3(2), 3, verify.Options{ExploitSymmetry: true})
}

func TestStoreWarmManifestSkipsSolving(t *testing.T) {
	reg := obs.Default()
	reg.SetEnabled(true)
	defer reg.SetEnabled(false)

	g := construct.G2(2)
	path := filepath.Join(t.TempDir(), "v.gdps")
	s := openStore(t, path)
	opts := verify.Options{ExploitSymmetry: true, Store: s}
	cold := verify.Exhaustive(g, 2, opts)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	reg.Reset()
	s2 := openStore(t, path)
	defer s2.Close()
	opts.Store = s2
	warm := verify.Exhaustive(g, 2, opts)

	if warm.Checked != cold.Checked || warm.Represented != cold.Represented {
		t.Errorf("warm coverage differs: checked %d/%d represented %d/%d",
			warm.Checked, cold.Checked, warm.Represented, cold.Represented)
	}
	// Every size class (0, 1, 2) must replay from its manifest, and every
	// representative's verdict must come from the store.
	if got := reg.Counter("store_hit_total", obs.L("kind", "manifest")).Value(); got != 3 {
		t.Errorf("manifest hits = %d, want 3", got)
	}
	if got := reg.Counter("store_hit_total", obs.L("kind", "verdict")).Value(); got != cold.Checked {
		t.Errorf("verdict hits = %d, want %d", got, cold.Checked)
	}
	if got := reg.Counter("store_replay_fail_total").Value(); got != 0 {
		t.Errorf("store_replay_fail_total = %d, want 0", got)
	}
	if warm.Tiers.Total() != 0 {
		t.Errorf("warm run made %d solver calls, want 0", warm.Tiers.Total())
	}
}

func TestStorePoisonedVerdictFallsBackToSolver(t *testing.T) {
	reg := obs.Default()
	reg.SetEnabled(true)
	defer reg.SetEnabled(false)
	reg.Reset()

	g := construct.G2(2)
	base := verify.Exhaustive(g, 2, verify.Options{Workers: 1})

	// Poison the store: a positive verdict whose certificate cannot replay.
	// First-write-wins means the bogus entry survives the later sweep.
	s := openStore(t, filepath.Join(t.TempDir(), "v.gdps"))
	defer s.Close()
	ref := s.Register(g)
	ref.PutVerdict([]int{0}, store.Verdict{Found: true, Path: []int{0, 1, 2}})

	rep := verify.Exhaustive(g, 2, verify.Options{Workers: 1, Store: s})
	if got, want := rep.VerdictSummary(), base.VerdictSummary(); got != want {
		t.Errorf("poisoned cache changed the verdict:\n got %q\nwant %q", got, want)
	}
	if got := reg.Counter("store_replay_fail_total").Value(); got == 0 {
		t.Error("replay failure not counted")
	}
}

func TestStorePoisonedManifestAbandonsWarmPath(t *testing.T) {
	reg := obs.Default()
	reg.SetEnabled(true)
	defer reg.SetEnabled(false)
	reg.Reset()

	g := construct.G2(2)
	base := verify.Exhaustive(g, 2, verify.Options{Workers: 1, ExploitSymmetry: true})

	// Cold symmetry-reduced sweep records manifests — but one of its cached
	// verdicts was poisoned beforehand, so the next warm run's manifest
	// replay must abandon that size class and re-enumerate it cold.
	path := filepath.Join(t.TempDir(), "v.gdps")
	s := openStore(t, path)
	ref := s.Register(g)
	ref.PutVerdict([]int{0}, store.Verdict{Found: true, Path: []int{0, 1, 2}})
	verify.Exhaustive(g, 2, verify.Options{Workers: 1, ExploitSymmetry: true, Store: s})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, path)
	defer s2.Close()
	warm := verify.Exhaustive(g, 2, verify.Options{Workers: 1, ExploitSymmetry: true, Store: s2})
	if got, want := warm.VerdictSummary(), base.VerdictSummary(); got != want {
		t.Errorf("poisoned manifest changed the verdict:\n got %q\nwant %q", got, want)
	}
	if got := reg.Counter("store_replay_fail_total").Value(); got == 0 {
		t.Error("replay failure not counted")
	}
}

func TestStoreSharedAcrossRelabeledInstances(t *testing.T) {
	// Two isomorphic relabelings of one instance share all cached work:
	// verifying the second against the first's store must make zero solver
	// calls on the per-verdict path (no symmetry, to keep the id mapping
	// exercise maximal).
	g := construct.G2(2)
	h := relabeledCopy(g)

	s := openStore(t, filepath.Join(t.TempDir(), "v.gdps"))
	defer s.Close()
	repG := verify.Exhaustive(g, 2, verify.Options{Workers: 1, Store: s})
	repH := verify.Exhaustive(h, 2, verify.Options{Workers: 1, Store: s})
	if repH.Checked != repG.Checked {
		t.Errorf("relabeled coverage differs: %d vs %d", repH.Checked, repG.Checked)
	}
	if repH.Tiers.Total() != 0 {
		t.Errorf("relabeled instance made %d solver calls, want 0 (all cached)", repH.Tiers.Total())
	}
	if repG.OK() != repH.OK() {
		t.Errorf("verdict differs across relabeling: %v vs %v", repG.OK(), repH.OK())
	}
}

// relabeledCopy reverses g's node ids — an isomorphic graph with a
// different adjacency layout and byte-equal canonical form.
func relabeledCopy(g *graph.Graph) *graph.Graph {
	n := g.NumNodes()
	out := graph.New(g.Name())
	for v := n - 1; v >= 0; v-- {
		out.AddNode(g.Kind(v), g.Label(v))
	}
	perm := func(v int) int { return n - 1 - v }
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(v) {
			if v < int(u) {
				out.AddEdge(perm(v), perm(int(u)))
			}
		}
	}
	return out
}

func TestShardRunnerUsesStore(t *testing.T) {
	g := construct.G2(2)
	path := filepath.Join(t.TempDir(), "v.gdps")
	s := openStore(t, path)
	base := verify.Exhaustive(g, 2, verify.Options{Workers: 1, Store: s})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, path)
	defer s2.Close()
	r := verify.NewShardRunner(g, 2, verify.Options{Store: s2})
	defer r.Close()
	rep := &verify.Report{GraphName: g.Name(), K: 2}
	for _, sh := range verify.Shards(g, 2, verify.AllNodes, 0) {
		verify.MergeReports(rep, r.Run(sh), 0)
	}
	if got, want := rep.VerdictSummary(), base.VerdictSummary(); got != want {
		t.Errorf("sharded warm verdict differs:\n got %q\nwant %q", got, want)
	}
	if rep.Tiers.Total() != 0 {
		t.Errorf("warm sharded run made %d solver calls, want 0", rep.Tiers.Total())
	}
}
