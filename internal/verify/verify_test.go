package verify_test

import (
	"strings"
	"testing"

	"gdpn/internal/bitset"
	"gdpn/internal/combin"
	"gdpn/internal/construct"
	"gdpn/internal/embed"
	"gdpn/internal/graph"
	"gdpn/internal/verify"
)

func pipelineGraph() (*graph.Graph, graph.Path) {
	g := graph.New("p3")
	p0 := g.AddNode(graph.Processor, 0)
	p1 := g.AddNode(graph.Processor, 1)
	p2 := g.AddNode(graph.Processor, 2)
	in := g.AddNode(graph.InputTerminal, 0)
	out := g.AddNode(graph.OutputTerminal, 0)
	g.AddEdge(in, p0)
	g.AddEdge(p0, p1)
	g.AddEdge(p1, p2)
	g.AddEdge(p2, out)
	return g, graph.Path{in, p0, p1, p2, out}
}

func TestCheckPipelineAccepts(t *testing.T) {
	g, p := pipelineGraph()
	if err := verify.CheckPipeline(g, nil, p); err != nil {
		t.Fatal(err)
	}
	// Reversed direction (output → input) is equally valid per the paper.
	if err := verify.CheckPipeline(g, nil, append(graph.Path(nil), p...).Reverse()); err != nil {
		t.Fatal(err)
	}
}

func TestCheckPipelineRejections(t *testing.T) {
	g, p := pipelineGraph()
	cases := map[string]struct {
		path   graph.Path
		faults []int
		want   string
	}{
		"too short":        {path: graph.Path{p[0], p[1]}, want: "too short"},
		"revisit":          {path: graph.Path{p[0], p[1], p[2], p[1], p[4]}, want: "revisits"},
		"non-edge":         {path: graph.Path{p[0], p[1], p[3], p[2], p[4]}, want: "non-edge"},
		"faulty node":      {path: p, faults: []int{1}, want: "faulty"},
		"bad endpoints":    {path: graph.Path{p[1], p[2], p[3]}, want: "endpoints"},
		"skips processor":  {path: graph.Path{p[0], p[1], p[2], p[4]}, faults: nil, want: "non-edge"},
		"interior not all": {path: p[:4], want: "endpoints"},
	}
	for name, c := range cases {
		var f bitset.Set
		if c.faults != nil {
			f = bitset.FromSlice(g.NumNodes(), c.faults)
		}
		err := verify.CheckPipeline(g, f, c.path)
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", name, err, c.want)
		}
	}
}

func TestCheckPipelineRequiresAllHealthyProcessors(t *testing.T) {
	// A path that is perfectly valid but misses one healthy processor must
	// be rejected: that is the "graceful" in gracefully degradable.
	g := graph.New("y")
	p0 := g.AddNode(graph.Processor, 0)
	p1 := g.AddNode(graph.Processor, 1)
	p2 := g.AddNode(graph.Processor, 2) // the one we'll skip
	in := g.AddNode(graph.InputTerminal, 0)
	out := g.AddNode(graph.OutputTerminal, 0)
	g.AddEdge(in, p0)
	g.AddEdge(p0, p1)
	g.AddEdge(p1, out)
	g.AddEdge(p1, p2)
	err := verify.CheckPipeline(g, nil, graph.Path{in, p0, p1, out})
	if err == nil || !strings.Contains(err.Error(), "healthy") {
		t.Fatalf("skipping a healthy processor not rejected: %v", err)
	}
}

func TestToleratesValidAndInvalid(t *testing.T) {
	g := construct.G1(2)
	if _, ok, err := verify.Tolerates(g, nil, embed.Options{}); !ok || err != nil {
		t.Fatalf("fault-free G1(2): ok=%v err=%v", ok, err)
	}
	// Kill all three input terminals: not tolerated.
	f := bitset.FromSlice(g.NumNodes(), g.InputTerminals())
	if _, ok, err := verify.Tolerates(g, f, embed.Options{}); ok || err != nil {
		t.Fatalf("all-inputs-faulty: ok=%v err=%v", ok, err)
	}
}

func TestExhaustiveCountsAllFaultSets(t *testing.T) {
	g := construct.G1(1)
	rep := verify.Exhaustive(g, 1, verify.Options{Workers: 3})
	want := combin.CountUpTo(g.NumNodes(), 1)
	if rep.Checked != want {
		t.Fatalf("checked %d fault sets, want %d", rep.Checked, want)
	}
	if !rep.OK() {
		t.Fatalf("G1(1) failed: %s", rep.String())
	}
	if !strings.Contains(rep.String(), "OK") {
		t.Fatalf("String() = %q", rep.String())
	}
}

func TestExhaustiveFindsCounterexamples(t *testing.T) {
	// A bare line is not even 1-gracefully-degradable.
	g := graph.New("line3")
	p0 := g.AddNode(graph.Processor, 0)
	p1 := g.AddNode(graph.Processor, 1)
	p2 := g.AddNode(graph.Processor, 2)
	in := g.AddNode(graph.InputTerminal, 0)
	out := g.AddNode(graph.OutputTerminal, 0)
	g.AddEdge(in, p0)
	g.AddEdge(p0, p1)
	g.AddEdge(p1, p2)
	g.AddEdge(p2, out)
	rep := verify.Exhaustive(g, 1, verify.Options{})
	if rep.OK() {
		t.Fatal("line graph reported 1-GD")
	}
	if rep.FailureCount == 0 || len(rep.Failures) == 0 {
		t.Fatalf("no counterexamples recorded: %s", rep.String())
	}
	if !strings.Contains(rep.String(), "FAILED") {
		t.Fatalf("String() = %q", rep.String())
	}
	// Single fault {p1} must be among the failures.
	found := false
	for _, f := range rep.Failures {
		if len(f.Nodes) == 1 && f.Nodes[0] == p1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("fault {p1} not recorded: %+v", rep.Failures)
	}
}

func TestExhaustiveMaxRecordedCap(t *testing.T) {
	g := graph.New("iso")
	g.AddNode(graph.Processor, 0)
	g.AddNode(graph.InputTerminal, 0)
	g.AddNode(graph.OutputTerminal, 0)
	// No edges at all: every fault set fails.
	rep := verify.Exhaustive(g, 2, verify.Options{MaxRecorded: 2})
	if rep.FailureCount != rep.Checked {
		t.Fatalf("all %d sets should fail, got %d", rep.Checked, rep.FailureCount)
	}
	if len(rep.Failures) != 2 {
		t.Fatalf("recorded %d failures, want cap 2", len(rep.Failures))
	}
}

func TestRandomVerification(t *testing.T) {
	g := construct.G2(3)
	rep := verify.Random(g, 3, 500, 42, verify.Options{Workers: 4})
	if !rep.OK() {
		t.Fatalf("G2(3) random: %s %v", rep.String(), rep.Failures)
	}
	if rep.Checked != 500 {
		t.Fatalf("checked %d, want 500", rep.Checked)
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	g := construct.G2(2)
	a := verify.Random(g, 2, 200, 7, verify.Options{Workers: 2})
	b := verify.Random(g, 2, 200, 7, verify.Options{Workers: 2})
	if a.Checked != b.Checked || a.FailureCount != b.FailureCount {
		t.Fatal("same seed produced different aggregate results")
	}
}

func TestProcessorsOnlyUniverse(t *testing.T) {
	g := construct.Merge(construct.G1(2))
	rep := verify.Exhaustive(g, 2, verify.Options{Universe: verify.ProcessorsOnly})
	want := combin.CountUpTo(g.CountKind(graph.Processor), 2)
	if rep.Checked != want {
		t.Fatalf("checked %d, want %d (processors only)", rep.Checked, want)
	}
	if !rep.OK() {
		t.Fatalf("merged G1(2): %s %v", rep.String(), rep.Failures)
	}
}

func TestDegreeLowerBoundTable(t *testing.T) {
	cases := []struct{ n, k, want int }{
		{1, 1, 3}, {1, 4, 6}, // k+2
		{2, 1, 4}, {2, 2, 5}, {2, 4, 7}, // n=2: k+3
		{3, 1, 3},            // n=3, k=1: k+2
		{3, 2, 5}, {3, 5, 8}, // n=3, k>1: k+3
		{4, 3, 6}, {6, 1, 4}, {8, 3, 6}, // even n, odd k: k+3
		{5, 2, 5},                       // Lemma 3.14
		{5, 3, 5}, {7, 2, 4}, {9, 4, 6}, // defaults k+2
		{6, 2, 4}, {4, 4, 6},
	}
	for _, c := range cases {
		if got := verify.DegreeLowerBound(c.n, c.k); got != c.want {
			t.Errorf("DegreeLowerBound(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestCheckStandardErrors(t *testing.T) {
	g := construct.G1(2)
	if err := verify.CheckStandard(g, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := verify.CheckStandard(g, 2, 2); err == nil {
		t.Fatal("wrong n accepted")
	}
	if err := verify.CheckStandard(g, 1, 3); err == nil {
		t.Fatal("wrong k accepted")
	}
	bad := g.Clone()
	bad.AddEdge(bad.InputTerminals()[0], bad.Processors()[1])
	if err := verify.CheckStandard(bad, 1, 2); err == nil {
		t.Fatal("degree-2 terminal accepted")
	}
}

func TestCheckNecessaryConditions(t *testing.T) {
	if err := verify.CheckNecessaryConditions(construct.G3(2), 3, 2); err != nil {
		t.Fatal(err)
	}
	g, _ := pipelineGraph()
	if err := verify.CheckNecessaryConditions(g, 3, 1); err == nil {
		t.Fatal("bare line satisfies Lemma 3.1?")
	}
}

func TestCheckMerged(t *testing.T) {
	m := construct.Merge(construct.G2(2))
	if err := verify.CheckMerged(m, 2, 2); err != nil {
		t.Fatal(err)
	}
	if err := verify.CheckMerged(m, 3, 2); err == nil {
		t.Fatal("wrong n accepted")
	}
	if err := verify.CheckMerged(construct.G2(2), 2, 2); err == nil {
		t.Fatal("unmerged graph accepted as merged")
	}
}

func TestExhaustiveMatchesSingleThreaded(t *testing.T) {
	// Worker partitioning must not change the verdict or the count.
	g := construct.G3(2)
	a := verify.Exhaustive(g, 2, verify.Options{Workers: 1})
	b := verify.Exhaustive(g, 2, verify.Options{Workers: 8})
	if a.Checked != b.Checked || a.OK() != b.OK() {
		t.Fatalf("worker count changed results: %s vs %s", a.String(), b.String())
	}
}
