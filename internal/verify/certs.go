package verify

import (
	"encoding/json"
	"fmt"
	"io"

	"gdpn/internal/bitset"
	"gdpn/internal/combin"
	"gdpn/internal/embed"
	"gdpn/internal/graph"
)

// Certificate is one fault set together with a witness pipeline. Checking
// it requires only the O(|path|) CheckPipeline predicate — no search — so
// a full CertificateSet is an independently re-checkable proof of
// GD(G, k) that does not trust any solver.
type Certificate struct {
	Faults   []int `json:"faults"`
	Pipeline []int `json:"pipeline"`
}

// CertificateSet is a complete proof object: one certificate per fault set
// of size ≤ K over the graph identified by Fingerprint.
type CertificateSet struct {
	GraphName   string        `json:"graph"`
	Fingerprint uint64        `json:"fingerprint"`
	Nodes       int           `json:"nodes"`
	K           int           `json:"k"`
	Certs       []Certificate `json:"certificates"`
}

// Certify produces a certificate for EVERY fault set of size ≤ k: a
// portable, solver-independent proof of k-graceful degradability. The
// fault-set space must be enumerable (see combin.CountUpTo for the size).
func Certify(g *graph.Graph, k int, solver embed.Options) (*CertificateSet, error) {
	cs := &CertificateSet{
		GraphName:   g.Name(),
		Fingerprint: g.Fingerprint(),
		Nodes:       g.NumNodes(),
		K:           k,
	}
	s := embed.NewSolver(g, solver)
	faults := bitset.New(g.NumNodes())
	var failed error
	combin.SubsetsUpTo(g.NumNodes(), k, func(sub []int) bool {
		faults.Clear()
		for _, v := range sub {
			faults.Add(v)
		}
		r := s.Find(faults)
		if !r.Found {
			failed = fmt.Errorf("verify: no pipeline for fault set %v (unknown=%v)", sub, r.Unknown)
			return false
		}
		if err := CheckPipeline(g, faults, r.Pipeline); err != nil {
			failed = fmt.Errorf("verify: invalid witness for %v: %w", sub, err)
			return false
		}
		cs.Certs = append(cs.Certs, Certificate{
			Faults:   append([]int(nil), sub...),
			Pipeline: append([]int(nil), r.Pipeline...),
		})
		return true
	})
	if failed != nil {
		return nil, failed
	}
	return cs, nil
}

// Replay re-checks a certificate set against a graph: the graph must match
// the recorded fingerprint, every fault set of size ≤ K must be present
// exactly once, and every witness must pass CheckPipeline. A nil error
// re-establishes GD(G, K) using only the certificate data.
func (cs *CertificateSet) Replay(g *graph.Graph) error {
	if g.NumNodes() != cs.Nodes {
		return fmt.Errorf("verify: node count %d, certificate set recorded %d", g.NumNodes(), cs.Nodes)
	}
	if g.Fingerprint() != cs.Fingerprint {
		return fmt.Errorf("verify: graph fingerprint mismatch (got %x, want %x)", g.Fingerprint(), cs.Fingerprint)
	}
	want := combin.CountUpTo(cs.Nodes, cs.K)
	if int64(len(cs.Certs)) != want {
		return fmt.Errorf("verify: %d certificates, want %d (one per fault set of size ≤ %d)",
			len(cs.Certs), want, cs.K)
	}
	seen := make(map[string]bool, len(cs.Certs))
	faults := bitset.New(cs.Nodes)
	for i, c := range cs.Certs {
		ref := cs.certRef(i, c.Faults)
		if len(c.Faults) > cs.K {
			return fmt.Errorf("verify: %s has %d faults > k", ref, len(c.Faults))
		}
		faults.Clear()
		for _, v := range c.Faults {
			if v < 0 || v >= cs.Nodes {
				return fmt.Errorf("verify: %s: fault %d out of range", ref, v)
			}
			if faults.Contains(v) {
				return fmt.Errorf("verify: %s: duplicate fault %d", ref, v)
			}
			faults.Add(v)
		}
		key := faults.String()
		if seen[key] {
			return fmt.Errorf("verify: duplicate certificate for %s", ref)
		}
		seen[key] = true
		if err := CheckPipeline(g, faults, graph.Path(c.Pipeline)); err != nil {
			return fmt.Errorf("verify: %s: %w", ref, err)
		}
	}
	return nil
}

// certRef locates one certificate for error messages: its index, the
// decoded fault set, and — when the set is a well-formed strictly-
// increasing subset — its lexicographic rank within its size class, so
// the failing entry can be found again without the certificate file (an
// Exhaustive sweep and a fleet shard both address that rank directly).
func (cs *CertificateSet) certRef(i int, set []int) string {
	sorted := true
	for j, v := range set {
		if v < 0 || v >= cs.Nodes || (j > 0 && v <= set[j-1]) {
			sorted = false
			break
		}
	}
	if !sorted {
		return fmt.Sprintf("certificate %d (malformed fault set %v)", i, set)
	}
	return fmt.Sprintf("certificate %d (size %d rank %d, fault set %v)",
		i, len(set), combin.Rank(cs.Nodes, set), set)
}

// Write streams the certificate set as JSON.
func (cs *CertificateSet) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(cs)
}

// ReadCertificates decodes a certificate set written by Write.
func ReadCertificates(r io.Reader) (*CertificateSet, error) {
	var cs CertificateSet
	if err := json.NewDecoder(r).Decode(&cs); err != nil {
		return nil, fmt.Errorf("verify: decoding certificates: %w", err)
	}
	return &cs, nil
}
