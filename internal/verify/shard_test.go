package verify_test

import (
	"math/rand"
	"testing"

	"gdpn/internal/combin"
	"gdpn/internal/construct"
	"gdpn/internal/verify"
)

// Shards must partition the enumeration exactly: every fault set of size
// ≤ k in exactly one shard, in canonical order, regardless of chunking
// granularity.
func TestShardsPartitionEnumeration(t *testing.T) {
	g := construct.G3(3)
	for _, per := range []int64{1, 7, 64, 1 << 20} {
		shards := verify.Shards(g, 3, verify.AllNodes, per)
		var ranks int64
		for i, sh := range shards {
			if sh.Ranks() <= 0 || sh.Ranks() > per {
				t.Fatalf("per=%d: shard %d covers %d ranks", per, i, sh.Ranks())
			}
			if i > 0 {
				prev := shards[i-1]
				sameSize := prev.Size == sh.Size && prev.To == sh.From
				nextSize := prev.Size < sh.Size && sh.From == 0
				if !sameSize && !nextSize {
					t.Fatalf("per=%d: shard %d (%+v) does not follow %+v", per, i, sh, prev)
				}
			}
			ranks += sh.Ranks()
		}
		if want := combin.CountUpTo(g.NumNodes(), 3); ranks != want {
			t.Errorf("per=%d: shards cover %d ranks, want %d", per, ranks, want)
		}
	}
}

// A ShardRunner walking every shard — in any order — must merge to the
// verdict summary of the single-process Exhaustive run, with and without
// symmetry reduction. This is the parity property the fleet's CI
// gauntlet re-checks at the binary level.
func TestShardRunnerMatchesExhaustive(t *testing.T) {
	sol, err := construct.Design(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	g := sol.Graph
	for _, symm := range []bool{false, true} {
		opts := verify.Options{ExploitSymmetry: symm}
		want := verify.Exhaustive(g, 3, opts)

		shards := verify.Shards(g, 3, verify.AllNodes, 100)
		rand.New(rand.NewSource(2)).Shuffle(len(shards), func(i, j int) {
			shards[i], shards[j] = shards[j], shards[i]
		})
		runner := verify.NewShardRunner(g, 3, opts)
		got := &verify.Report{GraphName: g.Name(), K: 3}
		var tiersTotal int64
		for _, sh := range shards {
			rep := runner.Run(sh)
			if rep.Interrupted {
				t.Fatalf("symm=%v: shard %+v interrupted without cancellation", symm, sh)
			}
			tiersTotal += rep.Tiers.Total()
			verify.MergeReports(got, rep, 0)
		}
		runner.Close()

		if got.VerdictSummary() != want.VerdictSummary() {
			t.Errorf("symm=%v: sharded verdict\n%q\nwant\n%q", symm, got.VerdictSummary(), want.VerdictSummary())
		}
		if tiersTotal != got.Checked {
			t.Errorf("symm=%v: per-shard tier stats total %d, checked %d", symm, tiersTotal, got.Checked)
		}
	}
}

// An out-of-order merge of the same partials must produce the same
// report: the fleet depends on merge being commutative, including the
// record-list caps and the Interrupted flag.
func TestShardReportsMergeOrderIndependent(t *testing.T) {
	g := construct.G3(2)
	opts := verify.Options{}
	shards := verify.Shards(g, 2, verify.AllNodes, 9)
	runner := verify.NewShardRunner(g, 2, opts)
	var parts []*verify.Report
	for _, sh := range shards {
		parts = append(parts, runner.Run(sh))
	}
	runner.Close()

	mergeAll := func(order []int) *verify.Report {
		rep := &verify.Report{GraphName: g.Name(), K: 2}
		for _, i := range order {
			verify.MergeReports(rep, parts[i], 0)
		}
		return rep
	}
	fwd := make([]int, len(parts))
	rev := make([]int, len(parts))
	for i := range parts {
		fwd[i] = i
		rev[len(parts)-1-i] = i
	}
	if a, b := mergeAll(fwd), mergeAll(rev); a.VerdictSummary() != b.VerdictSummary() ||
		a.Checked != b.Checked || a.Represented != b.Represented {
		t.Errorf("merge order changed the report:\n%v\nvs\n%v", a, b)
	}
}
