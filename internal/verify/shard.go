package verify

import (
	"time"

	"gdpn/internal/combin"
	"gdpn/internal/embed"
	"gdpn/internal/graph"
	"gdpn/internal/obs/span"
)

// Shard is one contiguous range [From, To) of lexicographic subset ranks
// at a single fault-set size — the unit of work the verification fleet
// distributes. Shards are pure coordinates: any process that agrees on
// the instance (graph, k, fault universe) can verify any shard, and the
// union of all shards of an instance is exactly the ≤k enumeration that
// Exhaustive walks.
type Shard struct {
	Size int   `json:"size"`
	From int64 `json:"from"`
	To   int64 `json:"to"`
}

// Ranks returns the number of subset ranks the shard covers.
func (s Shard) Ranks() int64 { return s.To - s.From }

// DefaultShardRanks is the Shards chunking granularity used when the
// caller passes ranksPer ≤ 0.
const DefaultShardRanks = 2048

// Shards partitions the full size-≤k enumeration over g's fault universe
// into shards of at most ranksPer ranks each, in canonical order (by
// size, then by rank). The partition is exact: every fault set of size
// ≤ k appears in exactly one shard.
func Shards(g *graph.Graph, k int, universe FaultUniverse, ranksPer int64) []Shard {
	if ranksPer <= 0 {
		ranksPer = DefaultShardRanks
	}
	nodes := universeNodes(g, universe)
	var out []Shard
	for size := 0; size <= k && size <= len(nodes); size++ {
		total := combin.Binomial(len(nodes), size)
		for from := int64(0); from < total; from += ranksPer {
			to := from + ranksPer
			if to > total {
				to = total
			}
			out = append(out, Shard{Size: size, From: from, To: to})
		}
	}
	return out
}

// ShardRunner verifies successive Shards of one instance in one
// goroutine, reusing a single solver so FindDelta warm endpoints and the
// Options.Memo cache survive across shards — a fleet worker gets the
// same incremental-solve behavior a work-stealing Exhaustive worker has.
// Orbit reduction (Options.ExploitSymmetry) uses the same deterministic
// representative test as Exhaustive, so sharded runs reach identical
// Checked/Represented counts. Not safe for concurrent use: create one
// runner per goroutine.
type ShardRunner struct {
	g        *graph.Graph
	k        int
	universe []int
	orbit    *orbitTester
	wk       *worker
	root     *embed.Resources
	sweep    *embed.Resources
	prev     embed.TierStats
	sub      []int
	scratch  []int
	throttle time.Duration
}

// NewShardRunner builds a runner for Design instance g at tolerance k.
// Options are interpreted exactly as by Exhaustive; Options.Context (or
// Solver.Res) cancels in-flight shards, whose reports come back marked
// Interrupted. Call Close when done to release the cancellation tokens.
func NewShardRunner(g *graph.Graph, k int, opts Options) *ShardRunner {
	fillDefaults(&opts)
	universe := universeNodes(g, opts.Universe)
	root, sweep := runTokens(opts)
	opts.Solver.Res = sweep
	ref := attachStore(g, opts)
	group := groupFor(g, opts, ref)
	var orbit *orbitTester
	if group != nil {
		orbit = newOrbitTester(group, universe, g.NumNodes())
	}
	return &ShardRunner{
		g:        g,
		k:        k,
		universe: universe,
		orbit:    orbit,
		wk:       newWorker(g, opts, universe, ref),
		root:     root,
		sweep:    sweep,
		sub:      make([]int, k),
		scratch:  make([]int, k),
		throttle: opts.Throttle,
	}
}

// Run verifies one shard and returns its partial report. A report with
// Interrupted set means the runner's token latched mid-shard: the shard
// reached no complete verdict and must be re-verified (its counters cover
// only a prefix). Partial reports from disjoint shards merge with
// MergeReports into exactly the report a single-process run produces.
func (r *ShardRunner) Run(sh Shard) *Report {
	rep := &Report{GraphName: r.g.Name(), K: r.k}
	r.wk.local = rep
	start := time.Now()

	csp := span.Start(nil, "sweep-chunk")
	csp.SetInt("size", int64(sh.Size)).SetInt("from", sh.From).SetInt("ranks", sh.Ranks())
	r.wk.solver.SetSpan(csp)
	status := span.OK

	sub := r.sub[:sh.Size]
	if sh.Size > 0 {
		combin.Unrank(len(r.universe), sh.Size, sh.From, sub)
	}
	for rank := sh.From; rank < sh.To; rank++ {
		if rank > sh.From {
			combin.NextSubset(len(r.universe), sub)
		}
		if r.sweep.Stopped() {
			rep.Interrupted = true
			status = span.Canceled
			break
		}
		if r.throttle > 0 {
			time.Sleep(r.throttle)
		}
		rep.Represented++
		if r.orbit != nil && !r.orbit.isMinimal(sub, r.scratch) {
			continue
		}
		if !r.wk.check(sub) {
			// Abandoned mid-solve: no verdict for this set.
			rep.Represented--
			rep.Interrupted = true
			status = span.Canceled
			break
		}
	}
	csp.End(status)
	r.wk.solver.SetSpan(nil)

	stats := r.wk.solver.Stats()
	rep.Tiers = stats.Sub(r.prev)
	r.prev = stats
	rep.Duration = time.Since(start)
	return rep
}

// Stopped reports whether the runner's cancellation token has latched;
// subsequent Run calls would return immediately-interrupted reports.
func (r *ShardRunner) Stopped() bool { return r.sweep.Stopped() }

// Close releases the runner's cancellation tokens. The runner must not be
// used afterwards.
func (r *ShardRunner) Close() {
	r.sweep.Release()
	r.root.Release()
}
