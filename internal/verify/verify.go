// Package verify decides whether a graph is k-gracefully-degradable and
// checks the paper's optimality conditions.
//
// The central entry points are:
//
//   - CheckPipeline — an O(|path|) certificate check that a returned path
//     really is a pipeline for the given fault set; every solver result in
//     the repository is re-validated through it, so solver bugs can cause
//     false "not degradable" reports but never false "degradable" ones;
//   - Exhaustive — enumerates every fault set of size ≤ k (in parallel,
//     partitioned by subset rank) and searches each; a clean report is a
//     machine proof of GD(G, k) for that instance;
//   - Random — samples fault sets uniformly for instances whose fault-set
//     space is too large to enumerate;
//   - the optimality checkers in optimality.go, which encode the paper's
//     lower bounds (Lemmas 3.1, 3.4, 3.5, 3.11, 3.14, Corollary 3.10).
package verify

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"gdpn/internal/bitset"
	"gdpn/internal/combin"
	"gdpn/internal/embed"
	"gdpn/internal/graph"
)

// FaultUniverse selects which nodes may fail.
type FaultUniverse int

const (
	// AllNodes is the paper's primary model: processors AND terminals fail.
	AllNodes FaultUniverse = iota
	// ProcessorsOnly is the merged-terminal model of §3, where the single
	// input and output nodes are assumed fault-free.
	ProcessorsOnly
)

// Options configures a verification run.
type Options struct {
	// Workers is the number of goroutines (default GOMAXPROCS).
	Workers int
	// Solver configures the per-worker embedding solver.
	Solver embed.Options
	// Universe selects the fault model (default AllNodes).
	Universe FaultUniverse
	// MaxRecorded caps how many failing fault sets are kept (default 16).
	MaxRecorded int
}

// FaultSetRecord describes one fault set with an abnormal outcome.
type FaultSetRecord struct {
	Nodes []int  `json:"nodes"`
	Err   string `json:"err"`
}

// Report aggregates a verification run.
type Report struct {
	GraphName string `json:"graph_name"`
	K         int    `json:"k"`
	Checked   int64  `json:"checked"`
	// Failures are fault sets with NO pipeline: counterexamples to GD(G,k).
	Failures []FaultSetRecord `json:"failures,omitempty"`
	// FailureCount counts all failures, including unrecorded ones.
	FailureCount int64 `json:"failure_count"`
	// Unknowns are fault sets on which the solver exhausted its budget.
	Unknowns     []FaultSetRecord `json:"unknowns,omitempty"`
	UnknownCount int64            `json:"unknown_count"`
	// SolverBugs are fault sets where a solver returned an invalid
	// pipeline (should be impossible; recorded rather than trusted).
	SolverBugs []FaultSetRecord `json:"solver_bugs,omitempty"`
	Duration   time.Duration    `json:"duration_ns"`
}

// OK reports whether the run proves (exhaustive) or is consistent with
// (random) k-graceful degradability: no failures, no unknowns, no bugs.
func (r *Report) OK() bool {
	return r.FailureCount == 0 && r.UnknownCount == 0 && len(r.SolverBugs) == 0
}

// String formats a one-line summary.
func (r *Report) String() string {
	status := "OK"
	if !r.OK() {
		status = fmt.Sprintf("FAILED (%d failures, %d unknowns, %d solver bugs)",
			r.FailureCount, r.UnknownCount, len(r.SolverBugs))
	}
	return fmt.Sprintf("%s k=%d: %d fault sets in %v: %s",
		r.GraphName, r.K, r.Checked, r.Duration.Round(time.Millisecond), status)
}

// CheckPipeline verifies that path is a pipeline in g \ faults per the
// paper's definition (§2): a path whose endpoints are a healthy input
// terminal and a healthy output terminal (in either order) and whose
// interior is exactly the set of ALL healthy processors. A nil error is a
// complete certificate.
func CheckPipeline(g *graph.Graph, faults bitset.Set, path graph.Path) error {
	if len(path) < 3 {
		return fmt.Errorf("pipeline too short: %d nodes", len(path))
	}
	if !path.Distinct() {
		return fmt.Errorf("pipeline revisits a node")
	}
	if !path.IsWalk(g) {
		return fmt.Errorf("pipeline uses a non-edge")
	}
	for _, v := range path {
		if faults != nil && faults.Contains(v) {
			return fmt.Errorf("pipeline visits faulty node %d", v)
		}
	}
	first, last := path[0], path[len(path)-1]
	kf, kl := g.Kind(first), g.Kind(last)
	validEnds := (kf == graph.InputTerminal && kl == graph.OutputTerminal) ||
		(kf == graph.OutputTerminal && kl == graph.InputTerminal)
	if !validEnds {
		return fmt.Errorf("pipeline endpoints are %v and %v; want one input and one output terminal", kf, kl)
	}
	healthy := 0
	for _, p := range g.Processors() {
		if faults == nil || !faults.Contains(p) {
			healthy++
		}
	}
	interior := 0
	for _, v := range path[1 : len(path)-1] {
		if g.Kind(v) != graph.Processor {
			return fmt.Errorf("interior node %d is a %v, not a processor", v, g.Kind(v))
		}
		interior++
	}
	if interior != healthy {
		return fmt.Errorf("pipeline uses %d processors; %d are healthy (graceful degradation requires all)", interior, healthy)
	}
	return nil
}

// Tolerates reports whether g tolerates the specific fault set: a pipeline
// exists in g \ faults. The returned pipeline (if any) is certificate-checked.
func Tolerates(g *graph.Graph, faults bitset.Set, opts embed.Options) (graph.Path, bool, error) {
	r := embed.NewSolver(g, opts).Find(faults)
	if r.Unknown {
		return nil, false, fmt.Errorf("solver budget exhausted")
	}
	if !r.Found {
		return nil, false, nil
	}
	if err := CheckPipeline(g, faults, r.Pipeline); err != nil {
		return nil, false, fmt.Errorf("solver returned invalid pipeline: %w", err)
	}
	return r.Pipeline, true, nil
}

// Exhaustive checks every fault set of size ≤ k over the configured fault
// universe. A Report with OK() == true is a machine proof of GD(G, k).
func Exhaustive(g *graph.Graph, k int, opts Options) *Report {
	fillDefaults(&opts)
	universe := universeNodes(g, opts.Universe)
	rep := &Report{GraphName: g.Name(), K: k}
	start := time.Now()

	type chunk struct {
		size     int
		from, to int64 // rank range [from, to)
	}
	var chunks []chunk
	for size := 0; size <= k && size <= len(universe); size++ {
		total := combin.Binomial(len(universe), size)
		per := total/int64(opts.Workers) + 1
		for from := int64(0); from < total; from += per {
			to := from + per
			if to > total {
				to = total
			}
			chunks = append(chunks, chunk{size, from, to})
		}
	}
	work := make(chan chunk, len(chunks))
	for _, c := range chunks {
		work <- c
	}
	close(work)

	results := make(chan *Report, opts.Workers)
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := &Report{}
			solver := embed.NewSolver(g, opts.Solver)
			faults := bitset.New(g.NumNodes())
			sub := make([]int, k)
			for c := range work {
				ss := sub[:c.size]
				if c.size > 0 {
					combin.Unrank(len(universe), c.size, c.from, ss)
				}
				for r := c.from; r < c.to; r++ {
					if r > c.from {
						nextSubset(len(universe), ss)
					}
					faults.Clear()
					for _, idx := range ss {
						faults.Add(universe[idx])
					}
					checkOne(g, solver, faults, universe, ss, local, opts.MaxRecorded)
				}
			}
			results <- local
		}()
	}
	wg.Wait()
	close(results)
	for local := range results {
		merge(rep, local, opts.MaxRecorded)
	}
	rep.Duration = time.Since(start)
	return rep
}

// Random samples `trials` fault sets with sizes uniform in [0, k] and
// membership uniform among the universe. Deterministic per seed.
func Random(g *graph.Graph, k, trials int, seed int64, opts Options) *Report {
	fillDefaults(&opts)
	universe := universeNodes(g, opts.Universe)
	rep := &Report{GraphName: g.Name(), K: k}
	start := time.Now()

	var wg sync.WaitGroup
	results := make(chan *Report, opts.Workers)
	per := (trials + opts.Workers - 1) / opts.Workers
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := &Report{}
			rng := rand.New(rand.NewSource(seed + int64(w)*1_000_003))
			solver := embed.NewSolver(g, opts.Solver)
			faults := bitset.New(g.NumNodes())
			buf := make([]int, 0, k)
			// Worker w owns trials [w·per, min((w+1)·per, trials)): the
			// partition is exact for any trials/workers combination.
			n := per
			if rem := trials - w*per; rem < n {
				n = rem
			}
			for t := 0; t < n; t++ {
				size := rng.Intn(k + 1)
				if size > len(universe) {
					size = len(universe)
				}
				buf = combin.RandomSubset(rng, len(universe), size, buf)
				faults.Clear()
				for _, idx := range buf {
					faults.Add(universe[idx])
				}
				checkOne(g, solver, faults, universe, buf, local, opts.MaxRecorded)
			}
			results <- local
		}(w)
	}
	wg.Wait()
	close(results)
	for local := range results {
		merge(rep, local, opts.MaxRecorded)
	}
	rep.Duration = time.Since(start)
	return rep
}

// checkOne runs the solver on one fault set and records the outcome.
func checkOne(g *graph.Graph, solver *embed.Solver, faults bitset.Set, universe, sub []int, local *Report, maxRec int) {
	local.Checked++
	res := solver.Find(faults)
	switch {
	case res.Unknown:
		local.UnknownCount++
		record(&local.Unknowns, universe, sub, "budget exhausted", maxRec)
	case !res.Found:
		local.FailureCount++
		record(&local.Failures, universe, sub, "no pipeline", maxRec)
	default:
		if err := CheckPipeline(g, faults, res.Pipeline); err != nil {
			record(&local.SolverBugs, universe, sub, err.Error(), maxRec)
		}
	}
}

func record(dst *[]FaultSetRecord, universe, sub []int, msg string, maxRec int) {
	if len(*dst) >= maxRec {
		return
	}
	nodes := make([]int, len(sub))
	for i, idx := range sub {
		nodes[i] = universe[idx]
	}
	*dst = append(*dst, FaultSetRecord{Nodes: nodes, Err: msg})
}

func merge(rep, local *Report, maxRec int) {
	rep.Checked += local.Checked
	rep.FailureCount += local.FailureCount
	rep.UnknownCount += local.UnknownCount
	for _, f := range local.Failures {
		if len(rep.Failures) < maxRec {
			rep.Failures = append(rep.Failures, f)
		}
	}
	for _, u := range local.Unknowns {
		if len(rep.Unknowns) < maxRec {
			rep.Unknowns = append(rep.Unknowns, u)
		}
	}
	rep.SolverBugs = append(rep.SolverBugs, local.SolverBugs...)
}

// nextSubset advances sub to the lexicographic successor among k-subsets of
// {0..n-1}. The caller guarantees a successor exists.
func nextSubset(n int, sub []int) {
	k := len(sub)
	i := k - 1
	for i >= 0 && sub[i] == n-k+i {
		i--
	}
	sub[i]++
	for j := i + 1; j < k; j++ {
		sub[j] = sub[j-1] + 1
	}
}

func universeNodes(g *graph.Graph, u FaultUniverse) []int {
	if u == ProcessorsOnly {
		return g.Processors()
	}
	nodes := make([]int, g.NumNodes())
	for i := range nodes {
		nodes[i] = i
	}
	return nodes
}

func fillDefaults(opts *Options) {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.MaxRecorded <= 0 {
		opts.MaxRecorded = 16
	}
}
