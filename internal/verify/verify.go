// Package verify decides whether a graph is k-gracefully-degradable and
// checks the paper's optimality conditions.
//
// The central entry points are:
//
//   - CheckPipeline — an O(|path|) certificate check that a returned path
//     really is a pipeline for the given fault set; every solver result in
//     the repository is re-validated through it, so solver bugs can cause
//     false "not degradable" reports but never false "degradable" ones;
//   - Exhaustive — enumerates every fault set of size ≤ k (in parallel,
//     with fine-grained rank chunks balanced by work stealing) and searches
//     each; a clean report is a machine proof of GD(G, k) for that
//     instance. With Options.ExploitSymmetry only one representative per
//     automorphism orbit is solved — fault sets related by a certified
//     automorphism are tolerated or not together, so the reduced run is
//     still a machine proof, and the Report carries both the solver-call
//     count (Checked) and the covered total (Represented);
//   - Random — samples fault sets uniformly for instances whose fault-set
//     space is too large to enumerate;
//   - the optimality checkers in optimality.go, which encode the paper's
//     lower bounds (Lemmas 3.1, 3.4, 3.5, 3.11, 3.14, Corollary 3.10).
package verify

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"gdpn/internal/autom"
	"gdpn/internal/bitset"
	"gdpn/internal/combin"
	"gdpn/internal/embed"
	"gdpn/internal/graph"
	"gdpn/internal/obs"
	"gdpn/internal/obs/span"
	"gdpn/internal/store"
)

// FaultUniverse selects which nodes may fail.
type FaultUniverse int

const (
	// AllNodes is the paper's primary model: processors AND terminals fail.
	AllNodes FaultUniverse = iota
	// ProcessorsOnly is the merged-terminal model of §3, where the single
	// input and output nodes are assumed fault-free.
	ProcessorsOnly
)

// Options configures a verification run.
type Options struct {
	// Workers is the number of goroutines (default GOMAXPROCS).
	Workers int
	// Solver configures the per-worker embedding solver.
	Solver embed.Options
	// Universe selects the fault model (default AllNodes).
	Universe FaultUniverse
	// MaxRecorded caps how many failing fault sets are kept (default 16).
	MaxRecorded int
	// ExploitSymmetry makes Exhaustive solve only the lexicographically-
	// minimal representative of each automorphism orbit of fault sets. The
	// verdict is provably identical to the unreduced run; Checked then
	// counts solver calls and Represented the fault sets they cover.
	ExploitSymmetry bool
	// Group optionally supplies a precomputed automorphism group for
	// ExploitSymmetry. When nil, Exhaustive computes one (seeded with the
	// closed-form circulant reflection when Solver.Layout is set). Every
	// permutation used for pruning has passed autom's certificate check.
	Group *autom.Group
	// Context cancels the run: workers observe it through a shared
	// embed.Resources token (one atomic load between fault sets and per
	// solver expansion) and stop mid-chunk, including abandoning an
	// in-flight solve. The partial Report is returned with Interrupted set.
	// nil means the run cannot be canceled externally. When Solver.Res is
	// set it is used as the token parent instead and Context is ignored.
	Context context.Context
	// FailFast cancels the sweep at the first counterexample: every worker
	// abandons its remaining chunks (and its in-flight solve) as soon as one
	// failure is recorded. The report is then a disproof of GD(G, k) — with
	// possibly-incomplete coverage counters — rather than a full census.
	// Off by default: existing callers rely on complete enumeration.
	FailFast bool
	// Throttle inserts an artificial delay before each enumerated fault
	// set. Only ShardRunner honors it; it exists so fleet CI gauntlets can
	// pace a sweep slowly enough to kill workers and restart coordinators
	// mid-run. Zero (the default) means full speed.
	Throttle time.Duration
	// Store attaches the persistent content-addressed verdict store:
	// Exhaustive and ShardRunner consult it before every solve (positive
	// hits replay their pipeline certificate, negative hits are re-screened
	// by cheap necessary conditions — see storecache.go) and append every
	// fresh verdict after. With ExploitSymmetry, clean full sweeps also
	// record per-size orbit-representative manifests, letting a warm re-run
	// of the same instance skip enumeration and orbit testing entirely.
	// The caller owns the store's lifecycle (Flush/Close). nil disables
	// caching.
	Store *store.Store
}

// FaultSetRecord describes one fault set with an abnormal outcome.
type FaultSetRecord struct {
	Nodes []int  `json:"nodes"`
	Err   string `json:"err"`
}

// Report aggregates a verification run.
type Report struct {
	GraphName string `json:"graph_name"`
	K         int    `json:"k"`
	// Checked counts fault sets the solver actually ran on. Without
	// symmetry reduction it equals Represented.
	Checked int64 `json:"checked"`
	// Represented counts fault sets covered by the run: every enumerated
	// set, including those skipped as non-minimal in their orbit. A clean
	// report proves toleration of all of them.
	Represented int64 `json:"represented"`
	// Steals counts work-stealing events: chunks a worker took from
	// another worker's deque after draining its own.
	Steals int64 `json:"steals,omitempty"`
	// Failures are fault sets with NO pipeline: counterexamples to GD(G,k).
	Failures []FaultSetRecord `json:"failures,omitempty"`
	// FailureCount counts all failures, including unrecorded ones.
	FailureCount int64 `json:"failure_count"`
	// Unknowns are fault sets on which the solver exhausted its budget.
	Unknowns     []FaultSetRecord `json:"unknowns,omitempty"`
	UnknownCount int64            `json:"unknown_count"`
	// SolverBugs are fault sets where a solver returned an invalid
	// pipeline (should be impossible; recorded rather than trusted).
	SolverBugs []FaultSetRecord `json:"solver_bugs,omitempty"`
	Duration   time.Duration    `json:"duration_ns"`
	// Interrupted reports that the run was stopped by external cancellation
	// (Options.Context or the caller's Resources token) before the sweep
	// finished; the counters cover only the prefix that completed. A
	// FailFast short-circuit does NOT set it — that run ended with a
	// definitive disproof, not an interruption.
	Interrupted bool `json:"interrupted,omitempty"`
	// Tiers aggregates the per-worker solver tier statistics: which engine
	// resolved how many of the Checked fault sets.
	Tiers embed.TierStats `json:"tiers"`
}

// OK reports whether the run proves (exhaustive) or is consistent with
// (random) k-graceful degradability: no failures, no unknowns, no bugs —
// and, for an interrupted run, never: a clean prefix proves nothing.
func (r *Report) OK() bool {
	return !r.Interrupted && r.FailureCount == 0 && r.UnknownCount == 0 && len(r.SolverBugs) == 0
}

// String formats a one-line summary.
func (r *Report) String() string {
	status := "OK"
	if r.Interrupted {
		status = fmt.Sprintf("INTERRUPTED (%d failures, %d unknowns so far)",
			r.FailureCount, r.UnknownCount)
	} else if !r.OK() {
		status = fmt.Sprintf("FAILED (%d failures, %d unknowns, %d solver bugs)",
			r.FailureCount, r.UnknownCount, len(r.SolverBugs))
	}
	sym := ""
	if r.Represented > r.Checked {
		sym = fmt.Sprintf(" (representing %d, %.1f× orbit reduction)",
			r.Represented, float64(r.Represented)/float64(r.Checked))
	}
	return fmt.Sprintf("%s k=%d: %d fault sets%s in %v: %s",
		r.GraphName, r.K, r.Checked, sym, r.Duration.Round(time.Millisecond), status)
}

// VerdictSummary renders the canonical verdict of a run: every field that
// the verification decides (counts, status, recorded counterexamples) and
// none that scheduling decides (duration, steals, tier split). Two runs of
// the same instance — single-process, work-stealing, or sharded across a
// fleet with workers dying mid-sweep — produce byte-identical summaries,
// which is what the CI fleet gauntlet diffs.
func (r *Report) VerdictSummary() string {
	status := "OK"
	switch {
	case r.Interrupted:
		status = "INTERRUPTED"
	case !r.OK():
		status = "FAILED"
	}
	s := fmt.Sprintf("%s k=%d checked=%d represented=%d failures=%d unknowns=%d solver_bugs=%d %s",
		r.GraphName, r.K, r.Checked, r.Represented, r.FailureCount, r.UnknownCount, len(r.SolverBugs), status)
	for _, f := range r.Failures {
		s += fmt.Sprintf("\ncounterexample %v: %s", f.Nodes, f.Err)
	}
	return s
}

// CheckPipeline verifies that path is a pipeline in g \ faults per the
// paper's definition (§2): a path whose endpoints are a healthy input
// terminal and a healthy output terminal (in either order) and whose
// interior is exactly the set of ALL healthy processors. A nil error is a
// complete certificate.
func CheckPipeline(g *graph.Graph, faults bitset.Set, path graph.Path) error {
	if len(path) < 3 {
		return fmt.Errorf("pipeline too short: %d nodes", len(path))
	}
	if !path.Distinct() {
		return fmt.Errorf("pipeline revisits a node")
	}
	if !path.IsWalk(g) {
		return fmt.Errorf("pipeline uses a non-edge")
	}
	for _, v := range path {
		if faults != nil && faults.Contains(v) {
			return fmt.Errorf("pipeline visits faulty node %d", v)
		}
	}
	first, last := path[0], path[len(path)-1]
	kf, kl := g.Kind(first), g.Kind(last)
	validEnds := (kf == graph.InputTerminal && kl == graph.OutputTerminal) ||
		(kf == graph.OutputTerminal && kl == graph.InputTerminal)
	if !validEnds {
		return fmt.Errorf("pipeline endpoints are %v and %v; want one input and one output terminal", kf, kl)
	}
	healthy := 0
	for v, n := 0, g.NumNodes(); v < n; v++ {
		if g.Kind(v) == graph.Processor && (faults == nil || !faults.Contains(v)) {
			healthy++
		}
	}
	interior := 0
	for _, v := range path[1 : len(path)-1] {
		if g.Kind(v) != graph.Processor {
			return fmt.Errorf("interior node %d is a %v, not a processor", v, g.Kind(v))
		}
		interior++
	}
	if interior != healthy {
		return fmt.Errorf("pipeline uses %d processors; %d are healthy (graceful degradation requires all)", interior, healthy)
	}
	return nil
}

// Tolerates reports whether g tolerates the specific fault set: a pipeline
// exists in g \ faults. The returned pipeline (if any) is certificate-checked.
func Tolerates(g *graph.Graph, faults bitset.Set, opts embed.Options) (graph.Path, bool, error) {
	r := embed.NewSolver(g, opts).Find(faults)
	if r.Unknown {
		return nil, false, fmt.Errorf("solver budget exhausted")
	}
	if !r.Found {
		return nil, false, nil
	}
	if err := CheckPipeline(g, faults, r.Pipeline); err != nil {
		return nil, false, fmt.Errorf("solver returned invalid pipeline: %w", err)
	}
	return r.Pipeline, true, nil
}

// chunksPerWorker sets the chunking granularity of the rank space: each
// worker's deque starts with about this many chunks per subset size, small
// enough that non-uniform solve cost (fault sets near the degradability
// boundary are far slower than easy ones) is rebalanced by stealing.
const chunksPerWorker = 16

// Exhaustive checks every fault set of size ≤ k over the configured fault
// universe. A Report with OK() == true is a machine proof of GD(G, k) —
// with Options.ExploitSymmetry the proof covers all Represented sets while
// running the solver only on Checked orbit representatives.
func Exhaustive(g *graph.Graph, k int, opts Options) *Report {
	fillDefaults(&opts)
	universe := universeNodes(g, opts.Universe)
	rep := &Report{GraphName: g.Name(), K: k}
	start := time.Now()

	// Two-level stop token: the root latches external cancellation, the
	// sweep child additionally latches FailFast short-circuits. Which level
	// stopped distinguishes Interrupted from a legitimate early disproof.
	root, sweep := runTokens(opts)
	defer root.Release()
	defer sweep.Release()
	opts.Solver.Res = sweep // workers inherit the sweep token

	ref := attachStore(g, opts)
	group := groupFor(g, opts, ref)

	// Warm path: replay whole size classes from the store's sweep manifests
	// (symmetry-reduced runs only — the manifest records orbit
	// representatives decided under a specific group signature).
	var sweepSig uint64
	replayed := map[int]bool{}
	if ref != nil && group != nil {
		sweepSig = ref.SweepSig(universe, k, ref.GroupSig(group))
		replayed = manifestSizes(g, ref, sweepSig, k, universe, opts, rep)
	}

	// The orbit tester is only needed for sizes that will actually be
	// enumerated; a fully-warm run (every size replayed) skips building it.
	var orbit *orbitTester
	if group != nil {
		for size := 0; size <= k && size <= len(universe); size++ {
			if !replayed[size] {
				orbit = newOrbitTester(group, universe, g.NumNodes())
				break
			}
		}
	}

	// Fine-grained rank chunks, dealt round-robin onto per-worker deques.
	// The owner pops from the tail (staying on its lexicographic walk, so
	// solver warm-starts see small deltas); idle workers steal from the
	// head of a victim's deque.
	deques := make([]*stealQueue, opts.Workers)
	for i := range deques {
		deques[i] = &stealQueue{}
	}
	next := 0
	for size := 0; size <= k && size <= len(universe); size++ {
		if replayed[size] {
			continue
		}
		total := combin.Binomial(len(universe), size)
		per := total/int64(opts.Workers*chunksPerWorker) + 1
		for from := int64(0); from < total; from += per {
			to := from + per
			if to > total {
				to = total
			}
			deques[next%opts.Workers].push(rankChunk{size, from, to})
			next++
		}
	}

	workers := make([]*worker, opts.Workers)
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wk := newWorker(g, opts, universe, ref)
			workers[w] = wk
			if ref != nil && orbit != nil {
				// Collect the representatives each worker actually decides,
				// so a clean sweep can record per-size manifests.
				wk.collect = map[int][][]int{}
			}
			sub := make([]int, k)
			scratch := make([]int, k)
		sweepLoop:
			for {
				c, ok := deques[w].popTail()
				if !ok {
					if c, ok = stealFrom(deques, w); !ok {
						break
					}
					wk.local.Steals++
				}
				// One span per rank chunk (coarse enough to trace full
				// sweeps); per-set solve spans nest under it when enabled.
				csp := span.Start(nil, "sweep-chunk")
				csp.SetInt("worker", int64(w)).SetInt("size", int64(c.size)).
					SetInt("from", c.from).SetInt("ranks", c.to-c.from)
				wk.solver.SetSpan(csp)
				ss := sub[:c.size]
				if c.size > 0 {
					combin.Unrank(len(universe), c.size, c.from, ss)
				}
				for r := c.from; r < c.to; r++ {
					if r > c.from {
						combin.NextSubset(len(universe), ss)
					}
					// One atomic load per fault set: a stopped sweep (ctx
					// cancel or another worker's FailFast hit) abandons the
					// remaining chunks, including any stolen ones.
					if sweep.Stopped() {
						csp.End(span.Canceled)
						break sweepLoop
					}
					wk.local.Represented++
					if orbit != nil && !orbit.isMinimal(ss, scratch) {
						continue
					}
					if !wk.check(ss) {
						// Abandoned mid-solve: no verdict for this set.
						wk.local.Represented--
						csp.End(span.Canceled)
						break sweepLoop
					}
				}
				csp.End(span.OK)
			}
			wk.solver.SetSpan(nil)
			wk.local.Tiers = wk.solver.Stats()
		}(w)
	}
	wg.Wait()
	for _, wk := range workers {
		merge(rep, wk.local, opts.MaxRecorded)
	}
	rep.Interrupted = rep.Interrupted || root.Stopped()
	rep.Duration = time.Since(start)

	// A clean, complete sweep may record manifests: every enumerated size
	// reached a verdict for all its sets, so the per-worker representative
	// lists are exactly the orbit representatives of each size.
	if ref != nil && orbit != nil && !opts.FailFast &&
		!rep.Interrupted && !sweep.Stopped() && rep.UnknownCount == 0 {
		for size := 0; size <= k && size <= len(universe); size++ {
			if replayed[size] {
				continue
			}
			var sets [][]int
			for _, wk := range workers {
				sets = append(sets, wk.collect[size]...)
			}
			ref.PutManifest(sweepSig, size, sets)
		}
	}

	if reg := obs.Default(); reg.Enabled() {
		if opts.ExploitSymmetry {
			reg.Counter("verify_orbit_total", obs.L("result", "rep")).Add(rep.Checked)
			reg.Counter("verify_orbit_total", obs.L("result", "pruned")).Add(rep.Represented - rep.Checked)
		}
		reg.Counter("verify_steals_total").Add(rep.Steals)
		rep.Tiers.Publish(reg)
	}
	return rep
}

// runTokens builds the two-level token pair governing a verification run.
// The root is a child of the caller's Solver.Res when one is supplied
// (Context is then ignored — the caller's token already carries it),
// otherwise a fresh root watching Options.Context. The sweep token is what
// workers actually hold: FailFast cancels only the sweep, so an external
// stop is distinguishable as root.Stopped().
func runTokens(opts Options) (root, sweep *embed.Resources) {
	if opts.Solver.Res != nil {
		root = opts.Solver.Res.Child()
	} else {
		root = embed.NewResources(opts.Context, 0, 0)
	}
	return root, root.Child()
}

// rankChunk is a contiguous range [from, to) of lexicographic subset ranks
// at one subset size.
type rankChunk struct {
	size     int
	from, to int64
}

// stealQueue is one worker's deque of rank chunks. The owner pops from the
// tail; thieves steal from the head, taking the chunk farthest from where
// the owner is working.
type stealQueue struct {
	mu     sync.Mutex
	chunks []rankChunk
}

func (q *stealQueue) push(c rankChunk) {
	q.chunks = append(q.chunks, c)
}

func (q *stealQueue) popTail() (rankChunk, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := len(q.chunks)
	if n == 0 {
		return rankChunk{}, false
	}
	c := q.chunks[n-1]
	q.chunks = q.chunks[:n-1]
	return c, true
}

func (q *stealQueue) stealHead() (rankChunk, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.chunks) == 0 {
		return rankChunk{}, false
	}
	c := q.chunks[0]
	q.chunks = q.chunks[1:]
	return c, true
}

// stealFrom scans the other deques once, starting after self. Chunks never
// spawn more chunks, so a full empty scan means the run is complete.
func stealFrom(deques []*stealQueue, self int) (rankChunk, bool) {
	for i := 1; i <= len(deques); i++ {
		if c, ok := deques[(self+i)%len(deques)].stealHead(); ok {
			return c, true
		}
	}
	return rankChunk{}, false
}

// orbitTester holds the automorphism permutations projected onto
// universe-index space, for the min-in-orbit representative test. It is
// immutable after construction and shared by all workers.
type orbitTester struct {
	perms [][]int32
}

// maxOrbitPerms caps how many permutations isMinimal applies per fault set.
// When the materialized group is larger, the generator set plus inverses is
// used instead — a sound over-approximation that accepts extra
// representatives (never skips an orbit) at lower per-set cost.
const maxOrbitPerms = 1024

func newOrbitTester(group *autom.Group, universe []int, n int) *orbitTester {
	var perms []autom.Perm
	if elems, ok := group.Elements(); ok && len(elems) <= maxOrbitPerms {
		perms = elems
	} else {
		for _, p := range group.Generators() {
			perms = append(perms, p, p.Inverse())
		}
	}
	idxOf := make([]int32, n)
	for i := range idxOf {
		idxOf[i] = -1
	}
	for i, v := range universe {
		idxOf[v] = int32(i)
	}
	t := &orbitTester{}
	for _, p := range perms {
		q := make([]int32, len(universe))
		usable, ident := true, true
		for i, v := range universe {
			u := idxOf[p.Map[v]]
			if u < 0 {
				// The permutation moves a universe node outside the
				// universe; it cannot be used for pruning (dropping it is
				// sound — orbits just split finer).
				usable = false
				break
			}
			q[i] = u
			if int(u) != i {
				ident = false
			}
		}
		if usable && !ident {
			t.perms = append(t.perms, q)
		}
	}
	return t
}

// isMinimal reports whether sub (ascending universe indices) is the
// lexicographically smallest element of its orbit under the tester's
// permutations. The true orbit minimum is never rejected — every applied
// permutation maps it to an equal-or-larger set — so accepting exactly the
// minimal sets covers every orbit. scratch must have capacity ≥ len(sub).
func (t *orbitTester) isMinimal(sub, scratch []int) bool {
	if len(sub) == 0 {
		return true
	}
	for _, q := range t.perms {
		if imageLess(q, sub, scratch) {
			return false
		}
	}
	return true
}

// imageLess maps sub through q, sorts the image (insertion into scratch),
// and reports whether it is lexicographically smaller than sub.
func imageLess(q []int32, sub, scratch []int) bool {
	img := scratch[:0]
	for _, x := range sub {
		v := int(q[x])
		i := len(img)
		img = append(img, 0)
		for i > 0 && img[i-1] > v {
			img[i] = img[i-1]
			i--
		}
		img[i] = v
	}
	for i := range sub {
		if img[i] != sub[i] {
			return img[i] < sub[i]
		}
	}
	return false
}

// Random samples `trials` fault sets with sizes uniform in [0, k] and
// membership uniform among the universe. Deterministic per seed.
func Random(g *graph.Graph, k, trials int, seed int64, opts Options) *Report {
	fillDefaults(&opts)
	universe := universeNodes(g, opts.Universe)
	rep := &Report{GraphName: g.Name(), K: k}
	start := time.Now()

	root, sweep := runTokens(opts)
	defer root.Release()
	defer sweep.Release()
	opts.Solver.Res = sweep

	var wg sync.WaitGroup
	results := make(chan *Report, opts.Workers)
	per := (trials + opts.Workers - 1) / opts.Workers
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wk := newWorker(g, opts, universe, nil)
			rng := rand.New(rand.NewSource(seed + int64(w)*1_000_003))
			buf := make([]int, 0, k)
			// Worker w owns trials [w·per, min((w+1)·per, trials)): the
			// partition is exact for any trials/workers combination.
			n := per
			if rem := trials - w*per; rem < n {
				n = rem
			}
			for t := 0; t < n; t++ {
				if sweep.Stopped() {
					break
				}
				size := rng.Intn(k + 1)
				if size > len(universe) {
					size = len(universe)
				}
				buf = combin.RandomSubset(rng, len(universe), size, buf)
				wk.local.Represented++
				if !wk.check(buf) {
					wk.local.Represented--
					break
				}
			}
			wk.local.Tiers = wk.solver.Stats()
			results <- wk.local
		}(w)
	}
	wg.Wait()
	close(results)
	for local := range results {
		merge(rep, local, opts.MaxRecorded)
	}
	rep.Interrupted = rep.Interrupted || root.Stopped()
	rep.Duration = time.Since(start)
	return rep
}

// worker is the per-goroutine verification state: a solver, the current
// fault bitset, and the node ids of the last solved fault set. Consecutive
// fault sets are applied as deltas — only the departed ids are removed and
// the arrived ids added, both to the bitset and, through FindDelta, to the
// solver's warm endpoint state. The same mechanism absorbs chunk jumps,
// steals, and orbit-pruning gaps: the delta is just larger.
type worker struct {
	g        *graph.Graph
	solver   *embed.Solver
	faults   bitset.Set
	universe []int
	local    *Report
	maxRec   int
	stop     *embed.Resources // the sweep token; nil in unit tests only
	failFast bool

	prev, cur      []int // node ids of the previous/current fault set, ascending
	removed, added []int

	// Verdict-store state. ref is nil when no store is attached. cacheBits
	// is a separate bitset for replaying cached certificates: w.faults must
	// keep describing the last set the SOLVER saw, or FindDelta warm starts
	// would diverge after a cache hit. collect, when non-nil, accumulates
	// the decided orbit representatives per size for manifest recording.
	ref       *store.GraphRef
	cacheBits bitset.Set
	collect   map[int][][]int
}

func newWorker(g *graph.Graph, opts Options, universe []int, ref *store.GraphRef) *worker {
	return &worker{
		g:        g,
		solver:   embed.NewSolver(g, opts.Solver),
		faults:   bitset.New(g.NumNodes()),
		universe: universe,
		local:    &Report{},
		maxRec:   opts.MaxRecorded,
		stop:     opts.Solver.Res,
		failFast: opts.FailFast,
		ref:      ref,
	}
}

// check runs the solver on the fault set given by sub (ascending universe
// indices) and records the outcome. It returns false when the solve was
// abandoned because the stop token latched mid-call — the set reached no
// verdict and is uncounted; the caller must stop iterating.
func (w *worker) check(sub []int) bool {
	w.cur = w.cur[:0]
	for _, idx := range sub {
		w.cur = append(w.cur, w.universe[idx])
	}
	if w.collect != nil {
		w.collect[len(sub)] = append(w.collect[len(sub)], append([]int(nil), w.cur...))
	}
	// Store fast path: a cached verdict that survives its re-check skips the
	// solver entirely — and leaves w.prev/w.faults untouched, so the next
	// cold solve still computes a correct warm-start delta.
	if w.ref != nil {
		if v, ok := w.ref.LookupVerdict(w.cur); ok && w.applyCached(sub, v) {
			return true
		}
	}
	w.removed, w.added = diffSorted(w.prev, w.cur, w.removed[:0], w.added[:0])
	for _, v := range w.removed {
		w.faults.Remove(v)
	}
	for _, v := range w.added {
		w.faults.Add(v)
	}
	w.prev = append(w.prev[:0], w.cur...)

	w.local.Checked++
	res := w.solver.FindDelta(w.faults, w.removed, w.added)
	if res.Unknown && w.stop != nil && w.stop.Stopped() {
		// Canceled mid-solve: Unknown here means "abandoned", not "budget
		// exhausted" — the set is uncounted rather than misreported.
		w.local.Checked--
		return false
	}
	switch {
	case res.Unknown:
		w.local.UnknownCount++
		record(&w.local.Unknowns, w.universe, sub, "budget exhausted", w.maxRec)
		span.Trip(span.AnomalyBudget, fmt.Sprintf("verify: faults=%v budget exhausted", w.cur))
	case !res.Found:
		w.local.FailureCount++
		record(&w.local.Failures, w.universe, sub, "no pipeline", w.maxRec)
		if w.ref != nil {
			w.ref.PutVerdict(w.cur, store.Verdict{Found: false})
		}
		if w.failFast && w.stop != nil {
			// First counterexample ends the sweep: every worker observes the
			// stopped token at its next fault set (or mid-solve expansion).
			w.stop.Cancel()
		}
	default:
		if err := CheckPipeline(w.g, w.faults, res.Pipeline); err != nil {
			record(&w.local.SolverBugs, w.universe, sub, err.Error(), w.maxRec)
			span.Trip(span.AnomalySolverBug, fmt.Sprintf("verify: faults=%v: %v", w.cur, err))
		} else if w.ref != nil {
			// Only certificate-checked pipelines enter the store: a cached
			// positive is always replayable.
			w.ref.PutVerdict(w.cur, store.Verdict{Found: true, Path: res.Pipeline})
		}
	}
	return true
}

// diffSorted merge-diffs two ascending id slices: ids only in prev go to
// removed, ids only in cur to added.
func diffSorted(prev, cur, removed, added []int) (rem, add []int) {
	i, j := 0, 0
	for i < len(prev) && j < len(cur) {
		switch {
		case prev[i] == cur[j]:
			i++
			j++
		case prev[i] < cur[j]:
			removed = append(removed, prev[i])
			i++
		default:
			added = append(added, cur[j])
			j++
		}
	}
	removed = append(removed, prev[i:]...)
	added = append(added, cur[j:]...)
	return removed, added
}

func record(dst *[]FaultSetRecord, universe, sub []int, msg string, maxRec int) {
	if len(*dst) >= maxRec {
		return
	}
	nodes := make([]int, len(sub))
	for i, idx := range sub {
		nodes[i] = universe[idx]
	}
	*dst = append(*dst, FaultSetRecord{Nodes: nodes, Err: msg})
}

// merge accumulates local into rep. It is commutative and associative:
// the counters are sums, Interrupted is an OR, and each record list keeps
// the canonically-smallest maxRec entries of the union — so partial
// reports arriving from remote workers in any order (or replayed from a
// checkpoint in any order) merge to the same final report. Duration is
// left to the caller: it is wall-clock, not a sum of partials.
func merge(rep, local *Report, maxRec int) {
	rep.Checked += local.Checked
	rep.Represented += local.Represented
	rep.Steals += local.Steals
	rep.FailureCount += local.FailureCount
	rep.UnknownCount += local.UnknownCount
	rep.Interrupted = rep.Interrupted || local.Interrupted
	rep.Tiers.Add(local.Tiers)
	rep.Failures = mergeRecords(rep.Failures, local.Failures, maxRec)
	rep.Unknowns = mergeRecords(rep.Unknowns, local.Unknowns, maxRec)
	rep.SolverBugs = mergeRecords(rep.SolverBugs, local.SolverBugs, maxRec)
}

// MergeReports accumulates src into dst exactly as a multi-worker run
// merges its per-worker partials. maxRec caps each record list (0 means
// the package default); the counters are never capped. The operation is
// commutative and associative, which is what lets the verification fleet
// merge out-of-order remote partials — and checkpoint replays — into a
// deterministic final report.
func MergeReports(dst, src *Report, maxRec int) {
	if maxRec <= 0 {
		maxRec = 16
	}
	merge(dst, src, maxRec)
}

// mergeRecords returns the canonically-smallest maxRec records of
// dst ∪ src. Keeping the minimum of the union (rather than the first
// maxRec seen) makes the cap order-independent.
func mergeRecords(dst, src []FaultSetRecord, maxRec int) []FaultSetRecord {
	if len(src) == 0 {
		return dst
	}
	dst = append(dst, src...)
	sort.SliceStable(dst, func(i, j int) bool { return recordLess(dst[i], dst[j]) })
	if len(dst) > maxRec {
		dst = dst[:maxRec]
	}
	return dst
}

// recordLess orders fault-set records canonically: by node sequence, then
// by length (a proper prefix sorts first), then by message.
func recordLess(a, b FaultSetRecord) bool {
	for i := 0; i < len(a.Nodes) && i < len(b.Nodes); i++ {
		if a.Nodes[i] != b.Nodes[i] {
			return a.Nodes[i] < b.Nodes[i]
		}
	}
	if len(a.Nodes) != len(b.Nodes) {
		return len(a.Nodes) < len(b.Nodes)
	}
	return a.Err < b.Err
}

func universeNodes(g *graph.Graph, u FaultUniverse) []int {
	if u == ProcessorsOnly {
		return g.Processors()
	}
	nodes := make([]int, g.NumNodes())
	for i := range nodes {
		nodes[i] = i
	}
	return nodes
}

func fillDefaults(opts *Options) {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.MaxRecorded <= 0 {
		opts.MaxRecorded = 16
	}
}
