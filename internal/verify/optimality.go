package verify

import (
	"fmt"

	"gdpn/internal/construct"
	"gdpn/internal/graph"
)

// DegreeLowerBound returns the paper's lower bound on the maximum processor
// degree of any standard k-gracefully-degradable graph for n nodes. It is
// construct.DegreeLowerBound re-exported for verification call sites.
func DegreeLowerBound(n, k int) int { return construct.DegreeLowerBound(n, k) }

// CheckStandard verifies that g is a standard graph for (n, k): node-optimal
// (exactly k+1 input terminals, k+1 output terminals, n+k processors) with
// every terminal of degree 1.
func CheckStandard(g *graph.Graph, n, k int) error {
	if got := g.CountKind(graph.Processor); got != n+k {
		return fmt.Errorf("%d processors, want n+k = %d", got, n+k)
	}
	if got := g.CountKind(graph.InputTerminal); got != k+1 {
		return fmt.Errorf("%d input terminals, want k+1 = %d", got, k+1)
	}
	if got := g.CountKind(graph.OutputTerminal); got != k+1 {
		return fmt.Errorf("%d output terminals, want k+1 = %d", got, k+1)
	}
	for _, t := range g.InputTerminals() {
		if g.Degree(t) != 1 {
			return fmt.Errorf("input terminal %d has degree %d, want 1", t, g.Degree(t))
		}
	}
	for _, t := range g.OutputTerminals() {
		if g.Degree(t) != 1 {
			return fmt.Errorf("output terminal %d has degree %d, want 1", t, g.Degree(t))
		}
	}
	return nil
}

// CheckNecessaryConditions verifies the degree conditions that Lemmas 3.1
// and 3.4 prove must hold in ANY k-gracefully-degradable graph: every
// processor has degree ≥ k+2, and (when n > 1) at least k+1 processor
// neighbors. Useful both as a sanity check on constructions and as an
// early-exit filter in the search module.
func CheckNecessaryConditions(g *graph.Graph, n, k int) error {
	for _, p := range g.Processors() {
		if d := g.Degree(p); d < k+2 {
			return fmt.Errorf("processor %d has degree %d < k+2 = %d (Lemma 3.1)", p, d, k+2)
		}
		if n > 1 {
			if pn := g.ProcessorNeighborCount(p); pn < k+1 {
				return fmt.Errorf("processor %d has %d processor neighbors < k+1 = %d (Lemma 3.4)", p, pn, k+1)
			}
		}
	}
	return nil
}

// CheckDegreeOptimal verifies that g attains the paper's lower bound on
// maximum processor degree for (n, k).
func CheckDegreeOptimal(g *graph.Graph, n, k int) error {
	want := DegreeLowerBound(n, k)
	if got := g.MaxProcessorDegree(); got != want {
		return fmt.Errorf("max processor degree %d, degree-optimal is %d", got, want)
	}
	return nil
}

// CheckMerged verifies the fault-free-terminal model shape of §3: exactly
// one input node and one output node, each of degree exactly k+1 (the
// minimum possible: with fewer neighbors, a fault set containing all of
// them would isolate the terminal).
func CheckMerged(g *graph.Graph, n, k int) error {
	if got := g.CountKind(graph.Processor); got != n+k {
		return fmt.Errorf("%d processors, want n+k = %d", got, n+k)
	}
	ins, outs := g.InputTerminals(), g.OutputTerminals()
	if len(ins) != 1 || len(outs) != 1 {
		return fmt.Errorf("%d input and %d output nodes, want 1 and 1", len(ins), len(outs))
	}
	if d := g.Degree(ins[0]); d != k+1 {
		return fmt.Errorf("input node degree %d, want k+1 = %d", d, k+1)
	}
	if d := g.Degree(outs[0]); d != k+1 {
		return fmt.Errorf("output node degree %d, want k+1 = %d", d, k+1)
	}
	return nil
}
