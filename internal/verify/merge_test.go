package verify

import (
	"fmt"
	"reflect"
	"testing"
)

// merge must cap SolverBugs at MaxRecorded exactly like Failures and
// Unknowns: a pathological solver producing a bug per fault set must not
// grow the report without bound.
func TestMergeCapsAllRecordLists(t *testing.T) {
	const maxRec = 4
	rep := &Report{}
	for w := 0; w < 3; w++ {
		local := &Report{Checked: 10, Represented: 10, FailureCount: 3, UnknownCount: 3}
		for i := 0; i < 3; i++ {
			r := FaultSetRecord{Nodes: []int{w, i}, Err: fmt.Sprintf("w%d-%d", w, i)}
			local.Failures = append(local.Failures, r)
			local.Unknowns = append(local.Unknowns, r)
			local.SolverBugs = append(local.SolverBugs, r)
		}
		merge(rep, local, maxRec)
	}
	if len(rep.Failures) != maxRec {
		t.Errorf("Failures len = %d, want %d", len(rep.Failures), maxRec)
	}
	if len(rep.Unknowns) != maxRec {
		t.Errorf("Unknowns len = %d, want %d", len(rep.Unknowns), maxRec)
	}
	if len(rep.SolverBugs) != maxRec {
		t.Errorf("SolverBugs len = %d, want %d", len(rep.SolverBugs), maxRec)
	}
	// Counts are not capped.
	if rep.Checked != 30 || rep.FailureCount != 9 || rep.UnknownCount != 9 {
		t.Errorf("counts wrong: %+v", rep)
	}
	// Existence of bugs survives the cap, so OK() stays false.
	if rep.OK() {
		t.Error("report with solver bugs must not be OK")
	}
}

// merge must be commutative: remote partials arrive in arbitrary order,
// and the merged report — including the capped record lists, which keep
// the canonically-smallest entries rather than the first-seen ones, and
// the Interrupted flag — must not depend on arrival order.
func TestMergeOrderIndependent(t *testing.T) {
	const maxRec = 3
	partials := []*Report{
		{Checked: 5, Represented: 9, FailureCount: 2, Failures: []FaultSetRecord{
			{Nodes: []int{7, 9}, Err: "no pipeline"}, {Nodes: []int{2}, Err: "no pipeline"}}},
		{Checked: 1, Represented: 1, UnknownCount: 1, Unknowns: []FaultSetRecord{
			{Nodes: []int{4, 5}, Err: "budget exhausted"}}},
		{Checked: 3, Represented: 6, FailureCount: 3, Failures: []FaultSetRecord{
			{Nodes: []int{1, 8}, Err: "no pipeline"}, {Nodes: []int{0, 3}, Err: "no pipeline"},
			{Nodes: []int{5}, Err: "no pipeline"}}},
		{Checked: 2, Represented: 2, Interrupted: true}, // an interrupted partial poisons every ordering
	}
	orders := [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}, {1, 3, 0, 2}}
	var first *Report
	for _, order := range orders {
		rep := &Report{}
		for _, i := range order {
			merge(rep, partials[i], maxRec)
		}
		if !rep.Interrupted {
			t.Fatalf("order %v: Interrupted flag lost in merge", order)
		}
		if len(rep.Failures) != maxRec {
			t.Fatalf("order %v: %d failures recorded, want cap %d", order, len(rep.Failures), maxRec)
		}
		if first == nil {
			first = rep
			continue
		}
		if !reflect.DeepEqual(first, rep) {
			t.Errorf("order %v merged to\n%+v\nwant\n%+v", order, rep, first)
		}
	}
	// The cap keeps the canonically smallest records: {0,3} < {1,8} < {2}.
	want := []FaultSetRecord{
		{Nodes: []int{0, 3}, Err: "no pipeline"},
		{Nodes: []int{1, 8}, Err: "no pipeline"},
		{Nodes: []int{2}, Err: "no pipeline"},
	}
	if !reflect.DeepEqual(first.Failures, want) {
		t.Errorf("capped failures = %+v, want %+v", first.Failures, want)
	}
}

// imageLess must compare the sorted image, not the raw mapped sequence.
func TestImageLess(t *testing.T) {
	// q maps 0↔3, 1↔2 on a 4-element universe.
	q := []int32{3, 2, 1, 0}
	scratch := make([]int, 4)
	cases := []struct {
		sub  []int
		want bool
	}{
		{[]int{0, 1}, false}, // image {3,2} sorts to {2,3} > {0,1}
		{[]int{2, 3}, true},  // image sorts to {0,1} < {2,3}
		{[]int{0, 3}, false}, // image {3,0} sorts to {0,3}: equal
		{[]int{1, 2}, false}, // fixed setwise
	}
	for _, c := range cases {
		if got := imageLess(q, c.sub, scratch); got != c.want {
			t.Errorf("imageLess(%v) = %v, want %v", c.sub, got, c.want)
		}
	}
}

// diffSorted drives both the bitset delta and the solver warm start; spot
// check its edge cases.
func TestDiffSorted(t *testing.T) {
	cases := []struct {
		prev, cur, wantRem, wantAdd []int
	}{
		{nil, []int{1, 2}, nil, []int{1, 2}},
		{[]int{1, 2}, nil, []int{1, 2}, nil},
		{[]int{1, 2, 5}, []int{1, 3, 5}, []int{2}, []int{3}},
		{[]int{1, 2, 3}, []int{1, 2, 4}, []int{3}, []int{4}},
		{[]int{0, 9}, []int{0, 9}, nil, nil},
	}
	for _, c := range cases {
		rem, add := diffSorted(c.prev, c.cur, nil, nil)
		if !equalInts(rem, c.wantRem) || !equalInts(add, c.wantAdd) {
			t.Errorf("diffSorted(%v,%v) = %v,%v; want %v,%v",
				c.prev, c.cur, rem, add, c.wantRem, c.wantAdd)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
