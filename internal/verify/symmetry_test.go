package verify_test

import (
	"testing"

	"gdpn/internal/autom"
	"gdpn/internal/combin"
	"gdpn/internal/construct"
	"gdpn/internal/embed"
	"gdpn/internal/graph"
	"gdpn/internal/verify"
)

// abCompare runs Exhaustive with symmetry off and on and asserts the
// verdicts are identical: same OK(), same existence of failures and
// unknowns, and the reduced run represents exactly the sets the full run
// checked. Counts of recorded counterexamples may differ (the reduced run
// sees one representative per orbit), but existence cannot.
func abCompare(t *testing.T, g *graph.Graph, k int, opts verify.Options) (off, on *verify.Report) {
	t.Helper()
	off = verify.Exhaustive(g, k, opts)
	symOpts := opts
	symOpts.ExploitSymmetry = true
	on = verify.Exhaustive(g, k, symOpts)

	if off.OK() != on.OK() {
		t.Errorf("%s k=%d: verdict differs: off OK=%v, on OK=%v", g.Name(), k, off.OK(), on.OK())
	}
	if (off.FailureCount > 0) != (on.FailureCount > 0) {
		t.Errorf("%s k=%d: failure existence differs: off=%d on=%d",
			g.Name(), k, off.FailureCount, on.FailureCount)
	}
	if (off.UnknownCount > 0) != (on.UnknownCount > 0) {
		t.Errorf("%s k=%d: unknown existence differs: off=%d on=%d",
			g.Name(), k, off.UnknownCount, on.UnknownCount)
	}
	if on.Represented != off.Checked {
		t.Errorf("%s k=%d: on.Represented=%d, want off.Checked=%d",
			g.Name(), k, on.Represented, off.Checked)
	}
	if on.Checked > off.Checked {
		t.Errorf("%s k=%d: symmetry increased solver calls: %d > %d",
			g.Name(), k, on.Checked, off.Checked)
	}
	return off, on
}

// TestSymmetryABVerdicts is the A/B gate CI runs with -short: orbit pruning
// must never change a proof result on the F2/F3-class instances.
func TestSymmetryABVerdicts(t *testing.T) {
	for k := 1; k <= 3; k++ {
		abCompare(t, construct.G1(k), k, verify.Options{})
		abCompare(t, construct.G2(k), k, verify.Options{})
		abCompare(t, construct.G3(k), k, verify.Options{})
	}
	// A positive instance verified beyond its design tolerance exercises
	// failure paths too: G3(k) is not (k+1)-degradable.
	abCompare(t, construct.G3(2), 3, verify.Options{})
}

// The F4-class instance: G3(4), 3214 fault sets, group order 2.
func TestSymmetryABG3k4(t *testing.T) {
	off, on := abCompare(t, construct.G3(4), 4, verify.Options{})
	if !off.OK() || !on.OK() {
		t.Fatalf("G3(4) should verify clean: off=%v on=%v", off, on)
	}
	if on.Checked >= off.Checked {
		t.Errorf("no reduction on G3(4): on=%d off=%d", on.Checked, off.Checked)
	}
}

// G3(5) has automorphism group order 32; the orbit-representative count
// must come in at least 5× below the full enumeration — the acceptance bar
// the benchmark also measures.
func TestSymmetryABG3k5Reduction(t *testing.T) {
	if testing.Short() {
		t.Skip("G3(5) A/B is the long variant; -short runs TestSymmetryABVerdicts")
	}
	off, on := abCompare(t, construct.G3(5), 5, verify.Options{})
	if !off.OK() || !on.OK() {
		t.Fatalf("G3(5) should verify clean: off=%v on=%v", off, on)
	}
	if on.Checked*5 > off.Checked {
		t.Errorf("reduction below 5×: %d reps for %d sets (%.2f×)",
			on.Checked, off.Checked, float64(off.Checked)/float64(on.Checked))
	}
}

// The asymptotic family, with the layout-seeded reflection: verdict parity
// and an honest ~2× reduction (its group has order 2).
func TestSymmetryABAsymptotic(t *testing.T) {
	g, lay, err := construct.Asymptotic(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	k := 2 // full k=4 enumeration of a 30-node graph is a bench, not a test
	off, on := abCompare(t, g, k, verify.Options{Solver: embed.Options{Layout: lay}})
	if !off.OK() || !on.OK() {
		t.Fatalf("asymptotic(16,4) F2 should verify clean: off=%v on=%v", off, on)
	}
	if on.Checked >= off.Checked {
		t.Errorf("no reduction on asymptotic family: on=%d off=%d", on.Checked, off.Checked)
	}
}

// A failing instance (the 3-processor path is not even 1-degradable) must
// fail identically both ways.
func TestSymmetryABNegative(t *testing.T) {
	g := graph.New("line3")
	p0 := g.AddNode(graph.Processor, 0)
	p1 := g.AddNode(graph.Processor, 1)
	p2 := g.AddNode(graph.Processor, 2)
	in := g.AddNode(graph.InputTerminal, 0)
	out := g.AddNode(graph.OutputTerminal, 0)
	g.AddEdge(in, p0)
	g.AddEdge(p0, p1)
	g.AddEdge(p1, p2)
	g.AddEdge(p2, out)
	off, on := abCompare(t, g, 1, verify.Options{})
	if off.OK() || on.OK() {
		t.Fatal("line3 should fail 1-degradability")
	}
}

// A precomputed group passed via Options.Group must be used as-is.
func TestSymmetryWithExplicitGroup(t *testing.T) {
	g := construct.G2(3)
	group := autom.Compute(g, autom.Options{})
	on := verify.Exhaustive(g, 3, verify.Options{ExploitSymmetry: true, Group: group})
	off := verify.Exhaustive(g, 3, verify.Options{})
	if on.OK() != off.OK() || on.Represented != off.Checked {
		t.Fatalf("explicit group: on=%v off=%v", on, off)
	}
	if on.Checked >= off.Checked {
		t.Errorf("no reduction with explicit group (order 2·3! = 12)")
	}
}

// Without symmetry, Represented must equal Checked in both Exhaustive and
// Random reports.
func TestRepresentedEqualsCheckedWithoutSymmetry(t *testing.T) {
	g := construct.G1(2)
	rep := verify.Exhaustive(g, 2, verify.Options{})
	if rep.Represented != rep.Checked {
		t.Errorf("exhaustive: Represented=%d != Checked=%d", rep.Represented, rep.Checked)
	}
	if want := combin.CountUpTo(g.NumNodes(), 2); rep.Checked != want {
		t.Errorf("exhaustive: Checked=%d, want %d", rep.Checked, want)
	}
	rr := verify.Random(g, 2, 100, 1, verify.Options{})
	if rr.Represented != rr.Checked || rr.Checked != 100 {
		t.Errorf("random: Represented=%d Checked=%d, want both 100", rr.Represented, rr.Checked)
	}
}

// Work stealing with many workers over few chunks must neither lose nor
// duplicate fault sets, with and without symmetry.
func TestWorkStealingExactCoverage(t *testing.T) {
	g := construct.G3(3)
	for _, workers := range []int{1, 3, 16} {
		rep := verify.Exhaustive(g, 3, verify.Options{Workers: workers})
		if want := combin.CountUpTo(g.NumNodes(), 3); rep.Checked != want {
			t.Errorf("workers=%d: Checked=%d, want %d", workers, rep.Checked, want)
		}
		sym := verify.Exhaustive(g, 3, verify.Options{Workers: workers, ExploitSymmetry: true})
		if want := combin.CountUpTo(g.NumNodes(), 3); sym.Represented != want {
			t.Errorf("workers=%d sym: Represented=%d, want %d", workers, sym.Represented, want)
		}
		if sym.OK() != rep.OK() {
			t.Errorf("workers=%d: verdict differs under stealing", workers)
		}
	}
}
