package verify_test

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"testing"

	"gdpn/internal/combin"
	"gdpn/internal/construct"
	"gdpn/internal/embed"
	"gdpn/internal/verify"
)

func certified(t *testing.T, n, k int) (*verify.CertificateSet, *construct.Solution) {
	t.Helper()
	sol, err := construct.Design(n, k)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := verify.Certify(sol.Graph, k, embed.Options{Layout: sol.Layout})
	if err != nil {
		t.Fatal(err)
	}
	return cs, sol
}

func TestCertifyAndReplay(t *testing.T) {
	cs, sol := certified(t, 6, 2)
	want := combin.CountUpTo(sol.Graph.NumNodes(), 2)
	if int64(len(cs.Certs)) != want {
		t.Fatalf("%d certificates, want %d", len(cs.Certs), want)
	}
	if err := cs.Replay(sol.Graph); err != nil {
		t.Fatal(err)
	}
}

func TestCertifyFailsOnNonSolution(t *testing.T) {
	// A bare line is not 1-GD; Certify must refuse with a counterexample.
	g := construct.G1(1).Clone()
	g.RemoveEdge(0, 1) // break the processor clique edge
	if _, err := verify.Certify(g, 1, embed.Options{}); err == nil {
		t.Fatal("certified a non-solution")
	}
}

func TestReplayRejectsTampering(t *testing.T) {
	cs, sol := certified(t, 4, 1)

	// Tamper 1: drop a certificate.
	dropped := *cs
	dropped.Certs = cs.Certs[1:]
	if err := dropped.Replay(sol.Graph); err == nil || !strings.Contains(err.Error(), "certificates") {
		t.Fatalf("dropped certificate accepted: %v", err)
	}

	// Tamper 2: duplicate one (count right, coverage wrong).
	dup := *cs
	dup.Certs = append([]verify.Certificate(nil), cs.Certs...)
	dup.Certs[1] = dup.Certs[2]
	if err := dup.Replay(sol.Graph); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicated certificate accepted: %v", err)
	}

	// Tamper 3: corrupt a witness path.
	bad := *cs
	bad.Certs = append([]verify.Certificate(nil), cs.Certs...)
	w := append([]int(nil), bad.Certs[0].Pipeline...)
	w[1], w[2] = w[2], w[1]
	bad.Certs[0] = verify.Certificate{Faults: bad.Certs[0].Faults, Pipeline: w}
	if err := bad.Replay(sol.Graph); err == nil {
		t.Fatal("corrupted witness accepted")
	}

	// Tamper 4: replay against a different graph.
	other, err := construct.Design(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.Replay(other.Graph); err == nil {
		t.Fatal("wrong graph accepted")
	}
}

func TestReplayRejectsBadFaultLists(t *testing.T) {
	cs, sol := certified(t, 4, 1)
	oob := *cs
	oob.Certs = append([]verify.Certificate(nil), cs.Certs...)
	oob.Certs[0] = verify.Certificate{Faults: []int{999}, Pipeline: cs.Certs[0].Pipeline}
	if err := oob.Replay(sol.Graph); err == nil {
		t.Fatal("out-of-range fault accepted")
	}
	toomany := *cs
	toomany.Certs = append([]verify.Certificate(nil), cs.Certs...)
	toomany.Certs[0] = verify.Certificate{Faults: []int{0, 1}, Pipeline: cs.Certs[0].Pipeline}
	if err := toomany.Replay(sol.Graph); err == nil {
		t.Fatal("oversized fault set accepted")
	}
}

// TestReplayErrorsLocateTheCertificate corrupts witnesses in specific
// ways and asserts the Replay error carries everything needed to find the
// failing entry again without the certificate file: the fault set's
// lexicographic rank within its size class AND the decoded fault set.
func TestReplayErrorsLocateTheCertificate(t *testing.T) {
	cs, sol := certified(t, 4, 2)

	// Pick a mid-stream certificate with a non-empty fault set so rank and
	// set are both non-trivial.
	victim := -1
	for i, c := range cs.Certs {
		if len(c.Faults) == 2 {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no size-2 certificate found")
	}
	orig := cs.Certs[victim]

	corrupt := map[string]func(c *verify.Certificate){
		"truncated path": func(c *verify.Certificate) {
			c.Pipeline = c.Pipeline[:len(c.Pipeline)-1]
		},
		"wrong endpoint": func(c *verify.Certificate) {
			// Replace the terminal endpoint with the adjacent processor:
			// the path then starts mid-pipeline.
			c.Pipeline = c.Pipeline[1:]
		},
		"skipped processor": func(c *verify.Certificate) {
			// Splice out an interior processor: endpoints stay valid but
			// the interior no longer covers every healthy processor.
			mid := len(c.Pipeline) / 2
			c.Pipeline = append(append([]int(nil), c.Pipeline[:mid]...), c.Pipeline[mid+1:]...)
		},
		"faulty node on path": func(c *verify.Certificate) {
			f := []int{c.Pipeline[1], c.Pipeline[2]}
			sort.Ints(f)
			c.Faults = f
		},
	}
	for name, breakIt := range corrupt {
		bad := *cs
		bad.Certs = append([]verify.Certificate(nil), cs.Certs...)
		cpy := verify.Certificate{
			Faults:   append([]int(nil), orig.Faults...),
			Pipeline: append([]int(nil), orig.Pipeline...),
		}
		breakIt(&cpy)
		bad.Certs[victim] = cpy
		err := bad.Replay(sol.Graph)
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		wantSet := fmt.Sprintf("fault set %v", cpy.Faults)
		// The rank must describe the decoded set as it appears in the
		// (possibly tampered) certificate.
		wantRank := combin.Rank(cs.Nodes, cpy.Faults)
		if !strings.Contains(err.Error(), fmt.Sprintf("rank %d", wantRank)) {
			t.Errorf("%s: error %q lacks the fault set's rank %d", name, err, wantRank)
		}
		if !strings.Contains(err.Error(), wantSet) {
			t.Errorf("%s: error %q lacks the decoded %s", name, err, wantSet)
		}
	}

	// A malformed (unsorted) fault list cannot be ranked; the error must
	// still decode the set rather than panic in the ranker.
	bad := *cs
	bad.Certs = append([]verify.Certificate(nil), cs.Certs...)
	bad.Certs[victim] = verify.Certificate{Faults: []int{3, 1}, Pipeline: orig.Pipeline}
	err := bad.Replay(sol.Graph)
	if err == nil || !strings.Contains(err.Error(), "[3 1]") {
		t.Errorf("unsorted fault list: error %v does not decode the set", err)
	}
}

func TestCertificateRoundTripJSON(t *testing.T) {
	cs, sol := certified(t, 5, 1)
	var buf bytes.Buffer
	if err := cs.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := verify.ReadCertificates(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Replay(sol.Graph); err != nil {
		t.Fatalf("round-tripped certificates fail replay: %v", err)
	}
	if _, err := verify.ReadCertificates(strings.NewReader("{broken")); err == nil {
		t.Fatal("broken JSON accepted")
	}
}
