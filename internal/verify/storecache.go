package verify

import (
	"sync"
	"sync/atomic"

	"gdpn/internal/autom"
	"gdpn/internal/bitset"
	"gdpn/internal/combin"
	"gdpn/internal/graph"
	"gdpn/internal/obs"
	"gdpn/internal/obs/span"
	"gdpn/internal/store"
)

// Store-cache instrumentation. Counter.Add is a single atomic load while
// the default registry is disabled, so resolving these at package init is
// free for uninstrumented runs.
var (
	storeReplayFailC   = obs.Default().Counter("store_replay_fail_total")
	storeNegConfirmedC = obs.Default().Counter("store_negative_recheck_total", obs.L("result", "confirmed"))
	storeNegAcceptedC  = obs.Default().Counter("store_negative_recheck_total", obs.L("result", "accepted"))
)

// attachStore registers g with the configured verdict store, under a span
// so sweep traces show the content-address resolution (canonical labeling
// plus slot match) as an explicit phase.
func attachStore(g *graph.Graph, opts Options) *store.GraphRef {
	if opts.Store == nil {
		return nil
	}
	sp := span.Start(nil, "store-attach")
	ref := opts.Store.Register(g)
	sp.SetInt("slot", int64(ref.Slot()))
	sp.End(span.OK)
	return ref
}

// groupFor resolves the automorphism group of a symmetry-reduced run:
// an explicit Options.Group wins, then the store's cached group (every
// generator re-certified by autom.FromGenerators before use), then a
// fresh computation whose result is written back to the store.
func groupFor(g *graph.Graph, opts Options, ref *store.GraphRef) *autom.Group {
	if !opts.ExploitSymmetry {
		return nil
	}
	if opts.Group != nil {
		return opts.Group
	}
	if ref != nil {
		if gr, ok := ref.LookupGroup(g); ok {
			return gr
		}
	}
	var seeds []autom.Perm
	if opts.Solver.Layout != nil {
		if refl, err := autom.Reflection(g, opts.Solver.Layout); err == nil {
			seeds = append(seeds, refl)
		}
	}
	group := autom.Compute(g, autom.Options{Seeds: seeds})
	if ref != nil {
		ref.PutGroup(group)
	}
	return group
}

// replayManifest attempts the warm path for one fault-set size: re-derive
// the size's full verdict from the store without enumerating or solving
// anything. It succeeds only when the size's orbit-representative manifest
// exists and EVERY representative has a stored verdict that survives its
// re-check — positive verdicts must replay their pipeline certificate
// through CheckPipeline, negative verdicts are re-screened by the cheap
// necessary-condition filter (and counted accepted/confirmed). Any miss or
// replay failure abandons the size entirely (the caller falls back to cold
// enumeration), so a corrupt store degrades to extra work, never to a
// wrong report. total is the size's full subset count, credited to
// Represented exactly as a cold enumeration would.
func replayManifest(g *graph.Graph, ref *store.GraphRef, sig uint64, size int, total int64, opts Options) (*Report, bool) {
	sets, ok := ref.LookupManifest(sig, size)
	if !ok {
		return nil, false
	}
	sp := span.Start(nil, "store-replay")
	sp.SetInt("size", int64(size)).SetInt("reps", int64(len(sets)))

	// Re-check in parallel (the replay is the warm path's only real work),
	// but record failures serially afterwards in manifest order, so the
	// recorded-counterexample cap fills exactly as a cold enumeration's
	// walk does.
	found := make([]bool, len(sets))
	shards := opts.Workers
	if shards > len(sets) {
		shards = 1
	}
	var bad atomic.Bool
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			faults := bitset.New(g.NumNodes())
			for i := s; i < len(sets); i += shards {
				if bad.Load() {
					return
				}
				set := sets[i]
				v, ok := ref.LookupVerdict(set)
				if !ok {
					bad.Store(true)
					return
				}
				for _, x := range set {
					faults.Add(x)
				}
				if v.Found {
					err := CheckPipeline(g, faults, graph.Path(v.Path))
					if err != nil {
						storeReplayFailC.Add(1)
						bad.Store(true)
					}
				} else {
					recheckNegative(g, faults)
				}
				for _, x := range set {
					faults.Remove(x)
				}
				found[i] = v.Found
			}
		}(s)
	}
	wg.Wait()
	if bad.Load() {
		sp.End(span.Errored)
		return nil, false
	}

	local := &Report{Checked: int64(len(sets)), Represented: total}
	for i, set := range sets {
		if found[i] {
			continue
		}
		local.FailureCount++
		if len(local.Failures) < opts.MaxRecorded {
			local.Failures = append(local.Failures,
				FaultSetRecord{Nodes: append([]int(nil), set...), Err: "no pipeline"})
		}
	}
	sp.End(span.OK)
	return local, true
}

// recheckNegative screens a stored negative verdict with the cheap
// necessary conditions and counts the outcome. A negative that violates a
// necessary condition is independently confirmed; one that passes them all
// is accepted on the same trust level as a cold solver's "not found"
// (negatives carry no certificate in either case).
func recheckNegative(g *graph.Graph, faults bitset.Set) {
	if cheapNoPipeline(g, faults) {
		storeNegConfirmedC.Add(1)
	} else {
		storeNegAcceptedC.Add(1)
	}
}

// cheapNoPipeline reports whether a violated necessary condition already
// proves that g \ faults has no pipeline, in O(V + E):
//
//   - a healthy input terminal and a healthy output terminal must exist,
//     each adjacent to a healthy processor (or to a healthy opposite
//     terminal only through processors — the pipeline interior is all
//     processors, so terminal-terminal hops never occur);
//   - at least one healthy processor must exist;
//   - the healthy-processor induced subgraph must be connected (the
//     pipeline interior is a Hamiltonian path of it);
//   - that subgraph can have at most two vertices of induced degree ≤ 1
//     (a Hamiltonian path has only two endpoints).
//
// false means "no condition violated": a pipeline may or may not exist.
func cheapNoPipeline(g *graph.Graph, faults bitset.Set) bool {
	n := g.NumNodes()
	procs := 0
	healthyIn, healthyOut := false, false
	for v := 0; v < n; v++ {
		if faults.Contains(v) {
			continue
		}
		switch g.Kind(v) {
		case graph.Processor:
			procs++
		case graph.InputTerminal, graph.OutputTerminal:
			ok := false
			for _, u := range g.Neighbors(v) {
				if !faults.Contains(int(u)) && g.Kind(int(u)) == graph.Processor {
					ok = true
					break
				}
			}
			if ok {
				if g.Kind(v) == graph.InputTerminal {
					healthyIn = true
				} else {
					healthyOut = true
				}
			}
		}
	}
	if !healthyIn || !healthyOut || procs == 0 {
		return true
	}
	excl := bitset.New(n)
	for v := 0; v < n; v++ {
		if faults.Contains(v) || g.Kind(v) != graph.Processor {
			excl.Add(v)
		}
	}
	if !g.ConnectedIgnoring(excl) {
		return true
	}
	if procs >= 2 {
		low := 0
		for v := 0; v < n; v++ {
			if excl.Contains(v) {
				continue
			}
			deg := 0
			for _, u := range g.Neighbors(v) {
				if !excl.Contains(int(u)) {
					deg++
				}
			}
			if deg <= 1 {
				low++
			}
		}
		if low > 2 {
			return true
		}
	}
	return false
}

// applyCached consumes a stored verdict for the worker's current fault set
// (w.cur, already built from sub). It deliberately leaves w.prev, w.faults
// and the solver untouched — they must keep describing the last set the
// solver actually saw, so the next cold solve still gets a correct
// FindDelta warm-start delta. Returns false when the cached entry failed
// its re-check and the caller must fall through to the solver.
func (w *worker) applyCached(sub []int, v store.Verdict) bool {
	if w.cacheBits == nil {
		w.cacheBits = bitset.New(w.g.NumNodes())
	}
	for _, x := range w.cur {
		w.cacheBits.Add(x)
	}
	defer func() {
		for _, x := range w.cur {
			w.cacheBits.Remove(x)
		}
	}()
	if v.Found {
		if err := CheckPipeline(w.g, w.cacheBits, graph.Path(v.Path)); err != nil {
			storeReplayFailC.Add(1)
			return false
		}
		w.local.Checked++
		return true
	}
	recheckNegative(w.g, w.cacheBits)
	w.local.Checked++
	w.local.FailureCount++
	record(&w.local.Failures, w.universe, sub, "no pipeline", w.maxRec)
	if w.failFast && w.stop != nil {
		w.stop.Cancel()
	}
	return true
}

// manifestSizes computes the warm-path replays for Exhaustive: for every
// size whose manifest replays cleanly, the merged partial report; the
// returned set marks sizes the sweep must NOT enumerate. FailFast runs
// never replay (a cold FailFast sweep stops at the first counterexample
// with prefix-only counters; replaying full sizes would change the
// verdict's coverage shape).
func manifestSizes(g *graph.Graph, ref *store.GraphRef, sig uint64, k int, universe []int, opts Options, rep *Report) map[int]bool {
	replayed := make(map[int]bool)
	if opts.FailFast {
		return replayed
	}
	for size := 0; size <= k && size <= len(universe); size++ {
		total := combin.Binomial(len(universe), size)
		if local, ok := replayManifest(g, ref, sig, size, total, opts); ok {
			merge(rep, local, opts.MaxRecorded)
			replayed[size] = true
		}
	}
	return replayed
}
