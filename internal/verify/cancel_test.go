package verify_test

import (
	"context"
	"testing"

	"gdpn/internal/combin"
	"gdpn/internal/construct"
	"gdpn/internal/embed"
	"gdpn/internal/graph"
	"gdpn/internal/verify"
)

// longLine builds in — p0 — p1 — … — p{n-1} — out: not even 1-GD, so almost
// every fault set is a counterexample and the very first checked set that
// contains an interior processor fails.
func longLine(n int) *graph.Graph {
	g := graph.New("longline")
	prev := -1
	for i := 0; i < n; i++ {
		p := g.AddNode(graph.Processor, i)
		if prev >= 0 {
			g.AddEdge(prev, p)
		} else {
			in := g.AddNode(graph.InputTerminal, 0)
			g.AddEdge(in, p)
		}
		prev = p
	}
	out := g.AddNode(graph.OutputTerminal, 0)
	g.AddEdge(prev, out)
	return g
}

func TestExhaustiveFailFastShortCircuits(t *testing.T) {
	g := longLine(24)
	total := combin.CountUpTo(g.NumNodes(), 2)
	rep := verify.Exhaustive(g, 2, verify.Options{FailFast: true, Workers: 4})
	if rep.FailureCount == 0 {
		t.Fatal("fail-fast run found no counterexample on a line graph")
	}
	if rep.Checked >= total/2 {
		t.Fatalf("fail-fast checked %d of %d sets; the planted early counterexample did not short-circuit", rep.Checked, total)
	}
	if rep.Interrupted {
		t.Fatal("a FailFast short-circuit is a definitive disproof, not an interruption")
	}
	if rep.OK() {
		t.Fatal("report with failures must not be OK")
	}
}

func TestExhaustiveFailFastNoopOnCleanInstance(t *testing.T) {
	// On a genuinely k-GD instance FailFast must change nothing: the sweep
	// runs to completion and the proof counters match the unreduced run.
	g := construct.G2(2)
	plain := verify.Exhaustive(g, 2, verify.Options{Workers: 2})
	ff := verify.Exhaustive(g, 2, verify.Options{Workers: 2, FailFast: true})
	if !ff.OK() || ff.Interrupted {
		t.Fatalf("clean FailFast run: OK=%v Interrupted=%v", ff.OK(), ff.Interrupted)
	}
	if ff.Checked != plain.Checked || ff.Represented != plain.Represented {
		t.Fatalf("FailFast changed coverage on a clean run: %d/%d vs %d/%d",
			ff.Checked, ff.Represented, plain.Checked, plain.Represented)
	}
}

func TestExhaustiveContextCancelInterrupts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep := verify.Exhaustive(construct.G2(3), 2, verify.Options{Context: ctx, Workers: 2})
	if !rep.Interrupted {
		t.Fatal("pre-canceled context did not mark the report interrupted")
	}
	if rep.Checked != 0 {
		t.Fatalf("checked %d sets under a pre-canceled context, want 0", rep.Checked)
	}
	if rep.OK() {
		t.Fatal("interrupted run must not claim a proof")
	}
}

func TestExhaustiveCallerTokenCancelInterrupts(t *testing.T) {
	// A caller-supplied Resources token is the parent of the run: canceling
	// it stops the sweep and marks the report interrupted.
	tok := embed.NewResources(nil, 0, 0)
	defer tok.Release()
	tok.Cancel()
	rep := verify.Exhaustive(construct.G2(2), 2, verify.Options{
		Workers: 2, Solver: embed.Options{Res: tok},
	})
	if !rep.Interrupted || rep.Checked != 0 {
		t.Fatalf("canceled parent token: Interrupted=%v Checked=%d", rep.Interrupted, rep.Checked)
	}
}

func TestRandomContextCancelInterrupts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep := verify.Random(construct.G2(3), 3, 500, 42, verify.Options{Context: ctx, Workers: 2})
	if !rep.Interrupted {
		t.Fatal("pre-canceled context did not mark the random report interrupted")
	}
	if rep.Checked != 0 {
		t.Fatalf("checked %d trials under a pre-canceled context, want 0", rep.Checked)
	}
}

func TestExhaustiveReportsTierStats(t *testing.T) {
	rep := verify.Exhaustive(construct.G2(2), 2, verify.Options{Workers: 2})
	if got := rep.Tiers.Total(); got != rep.Checked {
		t.Fatalf("tier stats account for %d calls, want Checked=%d", got, rep.Checked)
	}
}

// TestRaceAB is the racing-vs-staged A/B required by the CI gate: on G3(5),
// the racing Auto portfolio must reach verdicts identical to the staged one
// — same coverage, same failure and unknown counts — both on the exhaustive
// sweep and on a seeded random sample of a larger instance whose
// healthy-processor count falls inside the racing window.
func TestRaceAB(t *testing.T) {
	g := construct.G3(5)
	staged := verify.Exhaustive(g, 2, verify.Options{Workers: 4})
	racing := verify.Exhaustive(g, 2, verify.Options{
		Workers: 4, Solver: embed.Options{Race: true},
	})
	compareAB(t, "G3(5) exhaustive", staged, racing)

	// ExtendTimes(G3(5), 2) has 20 processors: above the direct-DP cutoff,
	// within MaxDPProcessors, so hard fault sets actually race.
	ge := construct.ExtendTimes(construct.G3(5), 2)
	sr := verify.Random(ge, 5, 120, 11, verify.Options{Workers: 4})
	rr := verify.Random(ge, 5, 120, 11, verify.Options{
		Workers: 4, Solver: embed.Options{Race: true},
	})
	compareAB(t, "Extend²(G3(5)) random", sr, rr)
}

func compareAB(t *testing.T, name string, staged, racing *verify.Report) {
	t.Helper()
	if staged.Checked != racing.Checked || staged.Represented != racing.Represented {
		t.Fatalf("%s: coverage differs: staged %d/%d, racing %d/%d",
			name, staged.Checked, staged.Represented, racing.Checked, racing.Represented)
	}
	if staged.FailureCount != racing.FailureCount {
		t.Fatalf("%s: failure counts differ: staged %d, racing %d",
			name, staged.FailureCount, racing.FailureCount)
	}
	if staged.UnknownCount != racing.UnknownCount {
		t.Fatalf("%s: unknown counts differ: staged %d, racing %d",
			name, staged.UnknownCount, racing.UnknownCount)
	}
	if staged.OK() != racing.OK() {
		t.Fatalf("%s: verdict differs: staged OK=%v, racing OK=%v",
			name, staged.OK(), racing.OK())
	}
}
