package verify_test

import (
	"testing"

	"gdpn/internal/construct"
	"gdpn/internal/verify"
)

func TestRandomPartitionExact(t *testing.T) {
	g := construct.G1(1)
	for _, c := range []struct{ trials, workers int }{
		{5, 4}, {1, 8}, {0, 3}, {7, 7}, {100, 3}, {3, 1},
	} {
		rep := verify.Random(g, 1, c.trials, 1, verify.Options{Workers: c.workers})
		if rep.Checked != int64(c.trials) {
			t.Errorf("trials=%d workers=%d: checked %d", c.trials, c.workers, rep.Checked)
		}
	}
}
