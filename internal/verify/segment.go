package verify

import (
	"fmt"

	"gdpn/internal/bitset"
	"gdpn/internal/graph"
)

// CheckSegment verifies that path is a valid tenant placement over the
// shared pool: a simple path in g visiting exactly the healthy processors
// of placement, once each. It is the multi-tenant analogue of
// CheckPipeline — a tenant's pipeline is a contiguous segment of the
// global pipeline, so its ends are processors rather than terminals (the
// executor injects frames at the head and collects them at the tail, the
// way a DMA engine would feed a sub-array). A nil error is a complete
// certificate that the tenant runs on every healthy processor it was
// granted and on nothing else.
func CheckSegment(g *graph.Graph, faults bitset.Set, placement []int, path graph.Path) error {
	if len(path) == 0 {
		return fmt.Errorf("segment is empty")
	}
	if !path.Distinct() {
		return fmt.Errorf("segment revisits a node")
	}
	if !path.IsWalk(g) {
		return fmt.Errorf("segment uses a non-edge")
	}
	granted := make(map[int]bool, len(placement))
	for _, v := range placement {
		granted[v] = true
	}
	for _, v := range path {
		if g.Kind(v) != graph.Processor {
			return fmt.Errorf("segment node %d is a %v, not a processor", v, g.Kind(v))
		}
		if faults != nil && faults.Contains(v) {
			return fmt.Errorf("segment visits faulty node %d", v)
		}
		if !granted[v] {
			return fmt.Errorf("segment visits node %d outside its placement", v)
		}
	}
	healthy := 0
	for _, v := range placement {
		if faults == nil || !faults.Contains(v) {
			healthy++
		}
	}
	if len(path) != healthy {
		return fmt.Errorf("segment uses %d processors; placement grants %d healthy (graceful degradation requires all)",
			len(path), healthy)
	}
	return nil
}
