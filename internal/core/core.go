// Package core is the top-level API of gdpn, the Go reproduction of
// Cypher & Laing, "Gracefully Degradable Pipeline Networks" (IPPS 1997).
//
// A Network wraps a designed k-gracefully-degradable solution graph with a
// fault set and a reconfiguration solver:
//
//	nw, _ := core.Design(22, 4)        // G_{22,4}, Figure 14
//	p, _ := nw.Pipeline()              // fault-free pipeline
//	_ = nw.Inject(7)                   // a processor dies
//	p, _ = nw.Pipeline()               // remapped; still uses ALL healthy processors
//
// Design follows the paper's decision tree (Theorems 3.13/3.15/3.16,
// Corollary 3.8, §3.4); every pipeline returned by Pipeline is certificate-
// checked by the verifier before it reaches the caller. The underlying
// machinery lives in internal/construct (constructions), internal/embed
// (solvers), internal/verify (verification), internal/search (the computer
// search behind the special solutions), and internal/pipeline (the
// streaming runtime).
package core

import (
	"fmt"

	"gdpn/internal/bitset"
	"gdpn/internal/construct"
	"gdpn/internal/embed"
	"gdpn/internal/graph"
	"gdpn/internal/verify"
)

// Network is a k-gracefully-degradable pipeline network with live fault
// state. It is not safe for concurrent mutation; wrap it if shared.
type Network struct {
	sol    *construct.Solution
	solver *embed.Solver
	faults bitset.Set
}

// Design builds the paper's standard solution graph for n pipeline
// processors tolerating up to k faults. See construct.Design for the
// decision tree and the (k ≥ 4, small n) gap the paper leaves open.
func Design(n, k int) (*Network, error) {
	sol, err := construct.Design(n, k)
	if err != nil {
		return nil, err
	}
	return FromSolution(sol), nil
}

// FromSolution wraps an existing construction (e.g. a search-derived or
// hand-built solution) as a Network.
func FromSolution(sol *construct.Solution) *Network {
	return &Network{
		sol:    sol,
		solver: embed.NewSolver(sol.Graph, embed.Options{Layout: sol.Layout}),
		faults: bitset.New(sol.Graph.NumNodes()),
	}
}

// Graph returns the underlying labeled graph.
func (nw *Network) Graph() *graph.Graph { return nw.sol.Graph }

// Solution returns the construction metadata.
func (nw *Network) Solution() *construct.Solution { return nw.sol }

// N returns the guaranteed pipeline length under k faults.
func (nw *Network) N() int { return nw.sol.N }

// K returns the design fault tolerance.
func (nw *Network) K() int { return nw.sol.K }

// Faults returns a copy of the current fault set.
func (nw *Network) Faults() bitset.Set { return nw.faults.Clone() }

// FaultCount returns the number of injected faults.
func (nw *Network) FaultCount() int { return nw.faults.Count() }

// Inject marks a node faulty. Injecting more than k faults is allowed —
// the guarantee is simply gone, and Pipeline may start failing.
func (nw *Network) Inject(node int) error {
	if node < 0 || node >= nw.sol.Graph.NumNodes() {
		return fmt.Errorf("core: node %d out of range", node)
	}
	if nw.faults.Contains(node) {
		return fmt.Errorf("core: node %d already faulty", node)
	}
	nw.faults.Add(node)
	return nil
}

// Repair marks a node healthy again.
func (nw *Network) Repair(node int) error {
	if node < 0 || node >= nw.sol.Graph.NumNodes() || !nw.faults.Contains(node) {
		return fmt.Errorf("core: node %d is not faulty", node)
	}
	nw.faults.Remove(node)
	return nil
}

// Reset clears all faults.
func (nw *Network) Reset() { nw.faults.Clear() }

// Pipeline computes a pipeline for the current fault set: a path from a
// healthy input terminal to a healthy output terminal visiting every
// healthy processor. The result is certificate-checked before being
// returned. With at most k faults it never fails on a designed network;
// beyond k faults it returns an error when no pipeline survives.
func (nw *Network) Pipeline() (graph.Path, error) {
	res := nw.solver.Find(nw.faults)
	if res.Unknown {
		return nil, fmt.Errorf("core: solver budget exhausted (faults=%v)", nw.faults.Slice())
	}
	if !res.Found {
		return nil, fmt.Errorf("core: no pipeline for fault set %v", nw.faults.Slice())
	}
	if err := verify.CheckPipeline(nw.sol.Graph, nw.faults, res.Pipeline); err != nil {
		return nil, fmt.Errorf("core: solver returned invalid pipeline: %w", err)
	}
	return res.Pipeline, nil
}

// HealthyProcessors returns the number of currently healthy processors —
// the length every pipeline returned by Pipeline has (graceful degradation).
func (nw *Network) HealthyProcessors() int {
	c := 0
	for _, p := range nw.sol.Graph.Processors() {
		if !nw.faults.Contains(p) {
			c++
		}
	}
	return c
}

// VerifyExhaustive machine-checks GD(G, k) for this network by enumerating
// every fault set of size ≤ k. Feasible for small networks; see
// verify.Exhaustive for the cost model.
func (nw *Network) VerifyExhaustive() *verify.Report {
	return verify.Exhaustive(nw.sol.Graph, nw.sol.K, verify.Options{
		Solver: embed.Options{Layout: nw.sol.Layout},
	})
}

// VerifyRandom samples `trials` random fault sets of size ≤ k.
func (nw *Network) VerifyRandom(trials int, seed int64) *verify.Report {
	return verify.Random(nw.sol.Graph, nw.sol.K, trials, seed, verify.Options{
		Solver: embed.Options{Layout: nw.sol.Layout},
	})
}

// Merged returns the fault-free-terminal variant of this network's graph
// (§3): terminals merged to a single input and output node of degree k+1.
func (nw *Network) Merged() *graph.Graph { return construct.Merge(nw.sol.Graph) }
