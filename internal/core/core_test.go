package core_test

import (
	"testing"

	"gdpn/internal/core"
	"gdpn/internal/graph"
	"gdpn/internal/verify"
)

func TestDesignAndPipelineLifecycle(t *testing.T) {
	nw, err := core.Design(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if nw.N() != 10 || nw.K() != 2 {
		t.Fatalf("N/K = %d/%d", nw.N(), nw.K())
	}
	p, err := nw.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 12+2 { // n+k processors + 2 terminals
		t.Fatalf("pipeline length %d", len(p))
	}
	// Inject up to k faults; pipeline must always cover all healthy.
	victims := []int{p[1], p[5]}
	for i, v := range victims {
		if err := nw.Inject(v); err != nil {
			t.Fatal(err)
		}
		q, err := nw.Pipeline()
		if err != nil {
			t.Fatalf("after %d faults: %v", i+1, err)
		}
		if len(q)-2 != nw.HealthyProcessors() {
			t.Fatalf("pipeline uses %d processors, %d healthy", len(q)-2, nw.HealthyProcessors())
		}
	}
	if nw.FaultCount() != 2 {
		t.Fatalf("fault count %d", nw.FaultCount())
	}
	// Repair and reset.
	if err := nw.Repair(victims[0]); err != nil {
		t.Fatal(err)
	}
	if nw.FaultCount() != 1 {
		t.Fatal("repair did not remove fault")
	}
	nw.Reset()
	if nw.FaultCount() != 0 || nw.HealthyProcessors() != 12 {
		t.Fatal("reset incomplete")
	}
}

func TestInjectRepairErrors(t *testing.T) {
	nw, err := core.Design(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Inject(-1); err == nil {
		t.Fatal("negative accepted")
	}
	if err := nw.Inject(nw.Graph().NumNodes()); err == nil {
		t.Fatal("out of range accepted")
	}
	if err := nw.Inject(0); err != nil {
		t.Fatal(err)
	}
	if err := nw.Inject(0); err == nil {
		t.Fatal("double inject accepted")
	}
	if err := nw.Repair(1); err == nil {
		t.Fatal("repair of healthy node accepted")
	}
	if err := nw.Repair(0); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineFailsBeyondBudget(t *testing.T) {
	nw, err := core.Design(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Kill both input terminals (k+1 = 2 > k faults): no pipeline.
	for _, ti := range nw.Graph().InputTerminals() {
		if err := nw.Inject(ti); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := nw.Pipeline(); err == nil {
		t.Fatal("pipeline with all inputs dead")
	}
}

func TestFaultsReturnsCopy(t *testing.T) {
	nw, err := core.Design(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := nw.Faults()
	f.Add(3)
	if nw.FaultCount() != 0 {
		t.Fatal("Faults() exposed internal state")
	}
}

func TestVerifyExhaustiveOnNetwork(t *testing.T) {
	nw, err := core.Design(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	rep := nw.VerifyExhaustive()
	if !rep.OK() {
		t.Fatalf("G(6,2): %s %v", rep.String(), rep.Failures)
	}
	rr := nw.VerifyRandom(200, 3)
	if !rr.OK() {
		t.Fatalf("random: %s", rr.String())
	}
}

func TestMergedNetwork(t *testing.T) {
	nw, err := core.Design(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := nw.Merged()
	if err := verify.CheckMerged(m, 5, 2); err != nil {
		t.Fatal(err)
	}
	if m.CountKind(graph.InputTerminal) != 1 {
		t.Fatal("merge failed")
	}
}

func TestDesignErrors(t *testing.T) {
	if _, err := core.Design(0, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := core.Design(9, 4); err == nil {
		t.Fatal("open gap (9,4) accepted")
	}
}

func TestSolutionMetadataExposed(t *testing.T) {
	nw, err := core.Design(22, 4)
	if err != nil {
		t.Fatal(err)
	}
	sol := nw.Solution()
	if sol.Method != "asymptotic" || sol.Layout == nil || !sol.DegreeOptimal {
		t.Fatalf("solution metadata: %+v", sol)
	}
}
