package faults

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"gdpn/internal/bitset"
	"gdpn/internal/graph"
)

// This file provides the *scheduled* fault process used by the chaos soak
// harness (internal/chaos): where Injector replays a fixed fault set one
// node at a time, a Schedule is a continuous stochastic process —
// exponential time-to-failure and time-to-repair per node class, a
// concurrent-fault budget, and optional correlated bursts — that runs for
// as long as the consumer keeps asking. It is seeded and replayable: the
// same seed (and the same Deny feedback) reproduces the same event
// sequence exactly, which is how a failing soak run is rerun under a
// debugger.

// ScheduleConfig parameterizes a stochastic fault/repair process.
type ScheduleConfig struct {
	// MTBF is the processor-class mean time between failures (required).
	MTBF time.Duration
	// MTTR is the processor-class mean time to repair (required).
	MTTR time.Duration
	// TerminalMTBF / TerminalMTTR are the terminal-class rates; leaving
	// TerminalMTBF zero keeps terminals from failing at all.
	TerminalMTBF, TerminalMTTR time.Duration
	// MaxFaults is the concurrent-fault budget (typically the design's k).
	// Fault events that would exceed it are deferred, never dropped.
	MaxFaults int
	// BurstProb is the probability that a fault event becomes a burst of
	// simultaneous faults (correlated failure of up to MaxBurst nodes,
	// still within the budget).
	BurstProb float64
	// MaxBurst caps the nodes per burst, seed fault included; values ≤ 1
	// disable bursts.
	MaxBurst int
}

// ScheduleEvent is one transition of the fault process.
type ScheduleEvent struct {
	// At is the event time as an offset from process start.
	At time.Duration
	// Node is the failing or recovering node.
	Node int
	// Repair is true for a recovery, false for a failure.
	Repair bool
	// Burst marks events that are part of a simultaneous multi-fault
	// batch.
	Burst bool
}

// String renders the event for logs.
func (e ScheduleEvent) String() string {
	verb := "fault"
	if e.Repair {
		verb = "repair"
	}
	burst := ""
	if e.Burst {
		burst = " (burst)"
	}
	return fmt.Sprintf("t=%v %s node=%d%s", e.At.Round(time.Millisecond), verb, e.Node, burst)
}

type schedTimer struct {
	at   time.Duration
	node int
	gen  uint64 // stale entries (node regenerated) are skipped on pop
}

type timerHeap []schedTimer

func (h timerHeap) Len() int           { return len(h) }
func (h timerHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h timerHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)        { *h = append(*h, x.(schedTimer)) }
func (h *timerHeap) Pop() any          { old := *h; n := len(old); t := old[n-1]; *h = old[:n-1]; return t }

// Schedule is a seeded, replayable fault/repair event generator over one
// network. It is not safe for concurrent use.
type Schedule struct {
	g      *graph.Graph
	cfg    ScheduleConfig
	rng    *rand.Rand
	faulty bitset.Set
	gen    []uint64
	h      timerHeap
	clock  time.Duration
}

// NewSchedule builds the process and arms one failure timer per eligible
// node.
func NewSchedule(g *graph.Graph, cfg ScheduleConfig, seed int64) (*Schedule, error) {
	if cfg.MTBF <= 0 || cfg.MTTR <= 0 {
		return nil, fmt.Errorf("faults: schedule needs MTBF and MTTR > 0 (got %v, %v)", cfg.MTBF, cfg.MTTR)
	}
	if cfg.TerminalMTBF > 0 && cfg.TerminalMTTR <= 0 {
		return nil, fmt.Errorf("faults: TerminalMTBF set but TerminalMTTR is %v", cfg.TerminalMTTR)
	}
	if cfg.MaxFaults < 1 {
		return nil, fmt.Errorf("faults: schedule needs MaxFaults ≥ 1 (got %d)", cfg.MaxFaults)
	}
	s := &Schedule{
		g:      g,
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(seed)),
		faulty: bitset.New(g.NumNodes()),
		gen:    make([]uint64, g.NumNodes()),
	}
	for v := 0; v < g.NumNodes(); v++ {
		if m := s.mtbf(v); m > 0 {
			s.push(v, s.draw(m))
		}
	}
	return s, nil
}

func (s *Schedule) mtbf(v int) time.Duration {
	if s.g.Kind(v) == graph.Processor {
		return s.cfg.MTBF
	}
	return s.cfg.TerminalMTBF
}

func (s *Schedule) mttr(v int) time.Duration {
	if s.g.Kind(v) == graph.Processor {
		return s.cfg.MTTR
	}
	return s.cfg.TerminalMTTR
}

// draw samples an exponential holding time with the given mean, clamped
// to [1µs, 20×mean] so a replay cannot stall on an extreme tail draw.
func (s *Schedule) draw(mean time.Duration) time.Duration {
	d := time.Duration(s.rng.ExpFloat64() * float64(mean))
	if d < time.Microsecond {
		d = time.Microsecond
	}
	if lim := 20 * mean; d > lim {
		d = lim
	}
	return d
}

// push arms node's next transition `after` from the current clock,
// superseding any timer the node already has.
func (s *Schedule) push(node int, after time.Duration) {
	s.gen[node]++
	heap.Push(&s.h, schedTimer{at: s.clock + after, node: node, gen: s.gen[node]})
}

// Next returns the next batch of events: a single repair, a single fault,
// or a burst of simultaneous faults (same At). The process is endless —
// every event arms the node's next transition.
func (s *Schedule) Next() []ScheduleEvent {
	for {
		t := heap.Pop(&s.h).(schedTimer)
		if t.gen != s.gen[t.node] {
			continue // superseded by a burst conscription or a Deny
		}
		s.clock = t.at
		if s.faulty.Contains(t.node) {
			// Repair completes; the node's next failure is armed.
			s.faulty.Remove(t.node)
			s.push(t.node, s.draw(s.mtbf(t.node)))
			return []ScheduleEvent{{At: t.at, Node: t.node, Repair: true}}
		}
		if s.faulty.Count() >= s.cfg.MaxFaults {
			// Budget full: defer this failure to a fresh draw.
			s.push(t.node, s.draw(s.mtbf(t.node)))
			continue
		}
		s.faulty.Add(t.node)
		s.push(t.node, s.draw(s.mttr(t.node)))
		evs := []ScheduleEvent{{At: t.at, Node: t.node}}
		if s.cfg.MaxBurst > 1 && s.rng.Float64() < s.cfg.BurstProb {
			evs = s.burst(evs)
		}
		return evs
	}
}

// burst conscripts additional healthy nodes into a simultaneous failure,
// up to MaxBurst total and never beyond the budget.
func (s *Schedule) burst(evs []ScheduleEvent) []ScheduleEvent {
	extra := s.cfg.MaxBurst - 1
	if b := s.cfg.MaxFaults - s.faulty.Count(); extra > b {
		extra = b
	}
	if extra <= 0 {
		return evs
	}
	// Random burst size in [1, extra], then random healthy victims.
	want := 1 + s.rng.Intn(extra)
	var cands []int
	for v := 0; v < s.g.NumNodes(); v++ {
		if s.mtbf(v) > 0 && !s.faulty.Contains(v) {
			cands = append(cands, v)
		}
	}
	s.rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	if want > len(cands) {
		want = len(cands)
	}
	if want == 0 {
		return evs
	}
	evs[0].Burst = true
	for _, v := range cands[:want] {
		s.faulty.Add(v)
		s.push(v, s.draw(s.mttr(v))) // supersedes the pending failure timer
		evs = append(evs, ScheduleEvent{At: s.clock, Node: v, Burst: true})
	}
	return evs
}

// Deny reverts one event the consumer could not apply — e.g. a fault whose
// remap missed its deadline and was rolled back. The node returns to its
// previous state and a retry is armed.
func (s *Schedule) Deny(ev ScheduleEvent) {
	if ev.Repair {
		s.faulty.Add(ev.Node)
		s.push(ev.Node, s.draw(s.mttr(ev.Node)))
	} else {
		s.faulty.Remove(ev.Node)
		s.push(ev.Node, s.draw(s.mtbf(ev.Node)))
	}
}

// Faulty returns a copy of the process's intended current fault set.
func (s *Schedule) Faulty() bitset.Set { return s.faulty.Clone() }

// Clock returns the time of the most recently emitted batch.
func (s *Schedule) Clock() time.Duration { return s.clock }
