package faults_test

import (
	"strings"
	"testing"

	"gdpn/internal/construct"
	"gdpn/internal/faults"
	"gdpn/internal/obs"
)

// TestInjectorTracesFaults checks each revealed fault is counted and
// appears in the event trace with its node id and model name.
func TestInjectorTracesFaults(t *testing.T) {
	reg := obs.Default()
	reg.Reset()
	reg.SetEnabled(true)
	defer func() {
		reg.SetEnabled(false)
		reg.Reset()
	}()

	sol, err := construct.Design(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.NewInjector(faults.ProcessorsOnly{}, sol.Graph, 3, 7)
	var revealed int
	for {
		if _, ok := inj.Next(); !ok {
			break
		}
		revealed++
	}
	if revealed != 3 {
		t.Fatalf("revealed %d faults, want 3", revealed)
	}
	s := reg.Snapshot()
	if got := s.Counters[`faults_injected_total{model="processors-only"}`]; got != 3 {
		t.Fatalf("injected counter %d, want 3 (%v)", got, s.Counters)
	}
	events := 0
	for _, ev := range s.Events {
		if ev.Name != "fault_injected" {
			continue
		}
		events++
		if !strings.Contains(ev.Fields, "node=") || !strings.Contains(ev.Fields, "model=processors-only") {
			t.Fatalf("event fields %q missing node/model", ev.Fields)
		}
	}
	if events != 3 {
		t.Fatalf("%d fault_injected events, want 3", events)
	}
}
