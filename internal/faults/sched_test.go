package faults

import (
	"testing"
	"time"

	"gdpn/internal/construct"
)

func schedCfg(k int) ScheduleConfig {
	return ScheduleConfig{
		MTBF:      100 * time.Millisecond,
		MTTR:      30 * time.Millisecond,
		MaxFaults: k,
	}
}

// TestScheduleDeterministic: same graph, same seed, same config → the
// exact same event sequence. This is the replayability contract the chaos
// harness relies on to rerun a failing nightly seed.
func TestScheduleDeterministic(t *testing.T) {
	sol, err := construct.Design(12, 3)
	if err != nil {
		t.Fatalf("Design: %v", err)
	}
	run := func() []ScheduleEvent {
		s, err := NewSchedule(sol.Graph, schedCfg(3), 42)
		if err != nil {
			t.Fatalf("NewSchedule: %v", err)
		}
		var evs []ScheduleEvent
		for len(evs) < 200 {
			evs = append(evs, s.Next()...)
		}
		return evs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestScheduleInvariants walks a long event stream checking the process's
// state machine: faults only on healthy nodes, repairs only on faulty
// ones, the concurrent-fault budget never exceeded, time monotone, and
// bursts batched at a single instant.
func TestScheduleInvariants(t *testing.T) {
	sol, err := construct.Design(14, 3)
	if err != nil {
		t.Fatalf("Design: %v", err)
	}
	cfg := schedCfg(3)
	cfg.BurstProb = 0.3
	cfg.MaxBurst = 3
	s, err := NewSchedule(sol.Graph, cfg, 7)
	if err != nil {
		t.Fatalf("NewSchedule: %v", err)
	}
	faulty := map[int]bool{}
	var last time.Duration
	faults, repairs, bursts := 0, 0, 0
	for i := 0; i < 500; i++ {
		evs := s.Next()
		if evs[0].At < last {
			t.Fatalf("time went backwards: %v after %v", evs[0].At, last)
		}
		last = evs[0].At
		if len(evs) > 1 {
			bursts++
			for _, ev := range evs {
				if ev.At != evs[0].At || !ev.Burst || ev.Repair {
					t.Fatalf("malformed burst member: %v (batch head %v)", ev, evs[0])
				}
			}
		}
		for _, ev := range evs {
			if ev.Repair {
				if !faulty[ev.Node] {
					t.Fatalf("repair of healthy node: %v", ev)
				}
				delete(faulty, ev.Node)
				repairs++
			} else {
				if faulty[ev.Node] {
					t.Fatalf("fault on already-faulty node: %v", ev)
				}
				faulty[ev.Node] = true
				faults++
			}
			if sol.Graph.Kind(ev.Node).String() != "processor" {
				t.Fatalf("terminal faulted with TerminalMTBF unset: %v", ev)
			}
		}
		if len(faulty) > cfg.MaxFaults {
			t.Fatalf("budget exceeded: %d concurrent faults (max %d)", len(faulty), cfg.MaxFaults)
		}
		if got := s.Faulty().Count(); got != len(faulty) {
			t.Fatalf("Faulty() reports %d, shadow state has %d", got, len(faulty))
		}
	}
	if faults == 0 || repairs == 0 {
		t.Fatalf("process stalled: %d faults, %d repairs", faults, repairs)
	}
	if bursts == 0 {
		t.Fatalf("no bursts in 500 batches at BurstProb=0.3")
	}
}

// TestScheduleDeny checks the rollback feedback path: a denied fault
// leaves the process's fault set unchanged and the node fails again
// later; a denied repair keeps the node faulty.
func TestScheduleDeny(t *testing.T) {
	sol, err := construct.Design(10, 2)
	if err != nil {
		t.Fatalf("Design: %v", err)
	}
	s, err := NewSchedule(sol.Graph, schedCfg(2), 3)
	if err != nil {
		t.Fatalf("NewSchedule: %v", err)
	}
	// First event is a fault; deny it.
	evs := s.Next()
	ev := evs[0]
	if ev.Repair {
		t.Fatalf("first event should be a fault: %v", ev)
	}
	before := s.Faulty().Count()
	s.Deny(ev)
	if got := s.Faulty().Count(); got != before-1 {
		t.Fatalf("deny of fault left %d faulty, want %d", got, before-1)
	}
	// The denied node must be rescheduled to fail again eventually.
	seen := false
	for i := 0; i < 500 && !seen; i++ {
		for _, e := range s.Next() {
			if e.Node == ev.Node && !e.Repair {
				seen = true
			}
		}
	}
	if !seen {
		t.Fatalf("denied node %d never retried", ev.Node)
	}
}

// TestScheduleConfigValidation rejects meaningless rate configurations.
func TestScheduleConfigValidation(t *testing.T) {
	sol, err := construct.Design(10, 2)
	if err != nil {
		t.Fatalf("Design: %v", err)
	}
	bad := []ScheduleConfig{
		{MTTR: time.Second, MaxFaults: 1},                                       // no MTBF
		{MTBF: time.Second, MaxFaults: 1},                                       // no MTTR
		{MTBF: time.Second, MTTR: time.Second},                                  // no budget
		{MTBF: time.Second, MTTR: time.Second, MaxFaults: 1, TerminalMTBF: 1e9}, // terminal MTBF without MTTR
	}
	for i, cfg := range bad {
		if _, err := NewSchedule(sol.Graph, cfg, 1); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}
