// Package faults provides the fault models used by the experiments and the
// streaming runtime: uniform random faults, processor-only faults,
// clustered faults (consecutive circulant positions — the hardest pattern
// for ring-based constructions), terminal-targeted faults (trying to sever
// I/O), and a greedy adversary that maximizes solver effort. A Model
// produces whole fault sets; an Injector turns a model into the one-at-a-
// time fault sequence the runtime consumes.
package faults

import (
	"fmt"
	"math/rand"

	"gdpn/internal/bitset"
	"gdpn/internal/combin"
	"gdpn/internal/construct"
	"gdpn/internal/embed"
	"gdpn/internal/graph"
	"gdpn/internal/obs"
)

// Model draws fault sets of a given size from a graph.
type Model interface {
	// Name identifies the model in experiment tables.
	Name() string
	// Sample returns a fault set of exactly `size` nodes (or fewer when
	// the eligible universe is smaller). The result is freshly allocated.
	Sample(rng *rand.Rand, g *graph.Graph, size int) bitset.Set
}

// Uniform draws faults uniformly over all nodes (the paper's model: both
// processors and terminals fail).
type Uniform struct{}

// Name implements Model.
func (Uniform) Name() string { return "uniform" }

// Sample implements Model.
func (Uniform) Sample(rng *rand.Rand, g *graph.Graph, size int) bitset.Set {
	return sampleFrom(rng, allNodes(g), g.NumNodes(), size)
}

// ProcessorsOnly draws faults uniformly over processor nodes (the merged
// fault-free-terminal model of §3).
type ProcessorsOnly struct{}

// Name implements Model.
func (ProcessorsOnly) Name() string { return "processors-only" }

// Sample implements Model.
func (ProcessorsOnly) Sample(rng *rand.Rand, g *graph.Graph, size int) bitset.Set {
	return sampleFrom(rng, g.Processors(), g.NumNodes(), size)
}

// TerminalsFirst spends faults on terminals before processors — the
// adversary that tries to disconnect the network from its I/O devices,
// which unlabeled fault-tolerance constructions cannot model at all (§2).
type TerminalsFirst struct{}

// Name implements Model.
func (TerminalsFirst) Name() string { return "terminals-first" }

// Sample implements Model.
func (TerminalsFirst) Sample(rng *rand.Rand, g *graph.Graph, size int) bitset.Set {
	terms := append(g.InputTerminals(), g.OutputTerminals()...)
	s := bitset.New(g.NumNodes())
	if size <= len(terms) {
		for _, idx := range combin.RandomSubset(rng, len(terms), size, nil) {
			s.Add(terms[idx])
		}
		return s
	}
	for _, t := range terms {
		s.Add(t)
	}
	procs := g.Processors()
	for _, idx := range combin.RandomSubset(rng, len(procs), size-len(terms), nil) {
		s.Add(procs[idx])
	}
	return s
}

// Clustered places faults on consecutive circulant ring positions of an
// asymptotic-construction graph — the pattern that maximizes the fault-run
// length the ring offsets must jump.
type Clustered struct {
	Layout *construct.Layout
}

// Name implements Model.
func (Clustered) Name() string { return "clustered" }

// Sample implements Model.
func (c Clustered) Sample(rng *rand.Rand, g *graph.Graph, size int) bitset.Set {
	if c.Layout == nil {
		panic("faults: Clustered requires a layout")
	}
	s := bitset.New(g.NumNodes())
	m := c.Layout.M
	start := rng.Intn(m)
	for i := 0; i < size && i < m; i++ {
		s.Add(c.Layout.C[(start+i)%m])
	}
	return s
}

// Adversarial greedily builds the fault set one node at a time, each time
// choosing (from a random candidate pool) the node that maximizes the
// solver's expansion count — a search-effort adversary used in the solver
// ablation experiments.
type Adversarial struct {
	// Pool is the number of candidate nodes evaluated per step (default 8).
	Pool int
	// Solver configures the probe solver.
	Solver embed.Options
}

// Name implements Model.
func (Adversarial) Name() string { return "adversarial" }

// Sample implements Model.
func (a Adversarial) Sample(rng *rand.Rand, g *graph.Graph, size int) bitset.Set {
	pool := a.Pool
	if pool <= 0 {
		pool = 8
	}
	solver := embed.NewSolver(g, a.Solver)
	s := bitset.New(g.NumNodes())
	for i := 0; i < size; i++ {
		bestNode, bestCost := -1, int64(-1)
		for c := 0; c < pool; c++ {
			v := rng.Intn(g.NumNodes())
			if s.Contains(v) {
				continue
			}
			s.Add(v)
			r := solver.Find(s)
			s.Remove(v)
			cost := r.Expansions
			if r.Unknown {
				cost = 1 << 60 // budget-busting candidates are the best adversaries
			}
			if cost > bestCost {
				bestNode, bestCost = v, cost
			}
		}
		if bestNode < 0 {
			break
		}
		s.Add(bestNode)
	}
	return s
}

// Injector converts a Model into an online fault sequence: Next reveals one
// more faulty node at a time until k faults have occurred, mirroring how
// faults arrive in a deployed array. Deterministic per seed.
type Injector struct {
	g       *graph.Graph
	model   string
	seq     []int
	next    int
	current bitset.Set

	injected *obs.Counter
}

// NewInjector draws a size-k fault set from the model and replays it one
// node at a time in random order.
func NewInjector(model Model, g *graph.Graph, k int, seed int64) *Injector {
	rng := rand.New(rand.NewSource(seed))
	set := model.Sample(rng, g, k)
	seq := set.Slice()
	rng.Shuffle(len(seq), func(i, j int) { seq[i], seq[j] = seq[j], seq[i] })
	return &Injector{
		g: g, model: model.Name(), seq: seq, current: bitset.New(g.NumNodes()),
		injected: obs.Default().Counter("faults_injected_total", obs.L("model", model.Name())),
	}
}

// Next reveals the next fault. ok is false when the sequence is exhausted.
// Each revealed fault is counted and traced (node id, kind, model) through
// the default obs registry.
func (in *Injector) Next() (node int, ok bool) {
	if in.next >= len(in.seq) {
		return -1, false
	}
	node = in.seq[in.next]
	in.next++
	in.current.Add(node)
	in.injected.Inc()
	obs.Default().Eventf("fault_injected", "node=%d kind=%s model=%s %d/%d",
		node, in.g.Kind(node), in.model, in.next, len(in.seq))
	return node, true
}

// Current returns the set of faults revealed so far (aliased; do not modify).
func (in *Injector) Current() bitset.Set { return in.current }

// Remaining returns how many faults are still to come.
func (in *Injector) Remaining() int { return len(in.seq) - in.next }

// sampleFrom picks `size` distinct nodes from universe (node ids) into a
// bitset of capacity cap.
func sampleFrom(rng *rand.Rand, universe []int, cap, size int) bitset.Set {
	if size > len(universe) {
		size = len(universe)
	}
	s := bitset.New(cap)
	for _, idx := range combin.RandomSubset(rng, len(universe), size, nil) {
		s.Add(universe[idx])
	}
	return s
}

func allNodes(g *graph.Graph) []int {
	nodes := make([]int, g.NumNodes())
	for i := range nodes {
		nodes[i] = i
	}
	return nodes
}

// ByName returns the named model; the recognized names are "uniform",
// "processors-only", "terminals-first", and "links" (Hayes link-fault
// reduction). Clustered and adversarial models need parameters and are
// constructed directly.
func ByName(name string) (Model, error) {
	switch name {
	case "uniform":
		return Uniform{}, nil
	case "processors-only":
		return ProcessorsOnly{}, nil
	case "terminals-first":
		return TerminalsFirst{}, nil
	case "links":
		return LinkModel{}, nil
	default:
		return nil, fmt.Errorf("faults: unknown model %q", name)
	}
}
