package faults_test

import (
	"math/rand"
	"testing"

	"gdpn/internal/construct"
	"gdpn/internal/faults"
	"gdpn/internal/graph"
)

func TestUniformSampleSizeAndRange(t *testing.T) {
	g := construct.G2(3)
	rng := rand.New(rand.NewSource(1))
	for size := 0; size <= 3; size++ {
		s := faults.Uniform{}.Sample(rng, g, size)
		if s.Count() != size {
			t.Fatalf("size %d: got %d faults", size, s.Count())
		}
		s.ForEach(func(v int) bool {
			if v >= g.NumNodes() {
				t.Fatalf("fault %d out of range", v)
			}
			return true
		})
	}
}

func TestProcessorsOnlySample(t *testing.T) {
	g := construct.G2(3)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		s := faults.ProcessorsOnly{}.Sample(rng, g, 3)
		s.ForEach(func(v int) bool {
			if g.Kind(v) != graph.Processor {
				t.Fatalf("non-processor fault %d", v)
			}
			return true
		})
	}
}

func TestTerminalsFirstPrefersTerminals(t *testing.T) {
	g := construct.G2(2)
	rng := rand.New(rand.NewSource(3))
	s := faults.TerminalsFirst{}.Sample(rng, g, 2)
	s.ForEach(func(v int) bool {
		if g.Kind(v) == graph.Processor {
			t.Fatalf("processor faulted while terminals remain")
		}
		return true
	})
	// Oversized request spills into processors.
	total := 2 * (2 + 1)
	big := faults.TerminalsFirst{}.Sample(rng, g, total+2)
	if big.Count() != total+2 {
		t.Fatalf("oversized sample = %d, want %d", big.Count(), total+2)
	}
}

func TestClusteredConsecutivePositions(t *testing.T) {
	g, lay, err := construct.Asymptotic(30, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		s := faults.Clustered{Layout: lay}.Sample(rng, g, 4)
		if s.Count() != 4 {
			t.Fatalf("count = %d", s.Count())
		}
		// All faults on ring nodes, consecutive modulo m.
		pos := map[int]bool{}
		for j, id := range lay.C {
			if s.Contains(id) {
				pos[j] = true
			}
		}
		if len(pos) != 4 {
			t.Fatalf("faults not all on the ring: %v", s.Slice())
		}
		consecutive := false
		for start := range pos {
			all := true
			for i := 0; i < 4; i++ {
				if !pos[(start+i)%lay.M] {
					all = false
					break
				}
			}
			if all {
				consecutive = true
			}
		}
		if !consecutive {
			t.Fatalf("positions not consecutive: %v", pos)
		}
	}
}

func TestClusteredWithoutLayoutPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	faults.Clustered{}.Sample(rand.New(rand.NewSource(1)), construct.G1(1), 1)
}

func TestAdversarialProducesValidSet(t *testing.T) {
	g := construct.G3(2)
	rng := rand.New(rand.NewSource(5))
	s := faults.Adversarial{Pool: 4}.Sample(rng, g, 2)
	if s.Count() != 2 {
		t.Fatalf("count = %d", s.Count())
	}
}

func TestInjectorRevealsAllFaults(t *testing.T) {
	g := construct.G2(3)
	inj := faults.NewInjector(faults.Uniform{}, g, 3, 7)
	if inj.Remaining() != 3 {
		t.Fatalf("remaining = %d", inj.Remaining())
	}
	seen := map[int]bool{}
	for {
		node, ok := inj.Next()
		if !ok {
			break
		}
		if seen[node] {
			t.Fatalf("node %d revealed twice", node)
		}
		seen[node] = true
		if !inj.Current().Contains(node) {
			t.Fatal("Current does not track revealed fault")
		}
	}
	if len(seen) != 3 || inj.Remaining() != 0 {
		t.Fatalf("revealed %d faults", len(seen))
	}
	if _, ok := inj.Next(); ok {
		t.Fatal("exhausted injector returned a fault")
	}
}

func TestInjectorDeterministicPerSeed(t *testing.T) {
	g := construct.G2(3)
	a := faults.NewInjector(faults.Uniform{}, g, 3, 11)
	b := faults.NewInjector(faults.Uniform{}, g, 3, 11)
	for {
		na, oka := a.Next()
		nb, okb := b.Next()
		if oka != okb || na != nb {
			t.Fatal("same seed produced different sequences")
		}
		if !oka {
			break
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"uniform", "processors-only", "terminals-first"} {
		m, err := faults.ByName(name)
		if err != nil || m.Name() != name {
			t.Errorf("ByName(%q) = %v, %v", name, m, err)
		}
	}
	if _, err := faults.ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestModelNames(t *testing.T) {
	models := map[string]faults.Model{
		"uniform":         faults.Uniform{},
		"processors-only": faults.ProcessorsOnly{},
		"terminals-first": faults.TerminalsFirst{},
		"clustered":       faults.Clustered{},
		"adversarial":     faults.Adversarial{},
	}
	for want, m := range models {
		if m.Name() != want {
			t.Errorf("Name() = %q, want %q", m.Name(), want)
		}
	}
}
