package faults_test

import (
	"math/rand"
	"testing"

	"gdpn/internal/construct"
	"gdpn/internal/embed"
	"gdpn/internal/faults"
	"gdpn/internal/graph"
	"gdpn/internal/verify"
)

func TestLinksToNodesBasics(t *testing.T) {
	g := construct.G2(2) // clique on 4 processors + terminals
	procs := g.Processors()
	links := []faults.Link{{procs[0], procs[1]}, {procs[2], procs[3]}}
	s, err := faults.LinksToNodes(g, links)
	if err != nil {
		t.Fatal(err)
	}
	if s.Count() != 2 {
		t.Fatalf("count = %d, want 2", s.Count())
	}
	// Each link must have a marked endpoint.
	for _, l := range links {
		if !s.Contains(l.U) && !s.Contains(l.V) {
			t.Fatalf("link (%d,%d) uncovered", l.U, l.V)
		}
	}
}

func TestLinksToNodesSharedEndpoint(t *testing.T) {
	// Several broken links around one node cost one node fault.
	g := construct.G1(3) // clique on 4 processors
	procs := g.Processors()
	links := []faults.Link{
		{procs[0], procs[1]}, {procs[0], procs[2]}, {procs[0], procs[3]},
	}
	s, err := faults.LinksToNodes(g, links)
	if err != nil {
		t.Fatal(err)
	}
	if s.Count() != 1 || !s.Contains(procs[0]) {
		t.Fatalf("want single fault at shared endpoint, got %v", s.Slice())
	}
}

func TestLinksToNodesPrefersProcessors(t *testing.T) {
	g := construct.G1(2)
	ti := g.InputTerminals()[0]
	p := int(g.Neighbors(ti)[0])
	s, err := faults.LinksToNodes(g, []faults.Link{{ti, p}})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Contains(p) || s.Contains(ti) {
		t.Fatalf("should mark the processor endpoint, got %v", s.Slice())
	}
	if g.Kind(s.Slice()[0]) != graph.Processor {
		t.Fatal("marked a terminal")
	}
}

func TestLinksToNodesRejectsNonEdge(t *testing.T) {
	g := construct.G3(1)
	// p0-p1 is a matched (absent) pair in G3.
	if _, err := faults.LinksToNodes(g, []faults.Link{{0, 1}}); err == nil {
		t.Fatal("non-edge accepted")
	}
}

func TestLinkFaultsToleratedByDesign(t *testing.T) {
	// A k-GD graph tolerates any k link failures via the Hayes reduction.
	sol, err := construct.Design(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := sol.Graph
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		links := faults.RandomLinks(rng, g, 2)
		nodeFaults, err := faults.LinksToNodes(g, links)
		if err != nil {
			t.Fatal(err)
		}
		if nodeFaults.Count() > 2 {
			t.Fatalf("reduction inflated fault count: %d", nodeFaults.Count())
		}
		path, ok, err := verify.Tolerates(g, nodeFaults, embed.Options{})
		if err != nil || !ok {
			t.Fatalf("trial %d: links %v not tolerated (ok=%v err=%v)", trial, links, ok, err)
		}
		// No surviving pipeline edge may be a faulty link.
		for i := 1; i < len(path); i++ {
			for _, l := range links {
				if (path[i-1] == l.U && path[i] == l.V) || (path[i-1] == l.V && path[i] == l.U) {
					t.Fatalf("pipeline uses faulty link (%d,%d)", l.U, l.V)
				}
			}
		}
	}
}

func TestLinkModelSample(t *testing.T) {
	g := construct.G2(3)
	rng := rand.New(rand.NewSource(5))
	m := faults.LinkModel{}
	if m.Name() != "links" {
		t.Fatal("name")
	}
	for trial := 0; trial < 30; trial++ {
		s := m.Sample(rng, g, 3)
		if s.Count() > 3 {
			t.Fatalf("sample produced %d node faults from 3 links", s.Count())
		}
	}
}

func TestRandomLinksDistinct(t *testing.T) {
	g := construct.G1(2)
	rng := rand.New(rand.NewSource(9))
	links := faults.RandomLinks(rng, g, g.NumEdges()+5)
	if len(links) != g.NumEdges() {
		t.Fatalf("returned %d links, graph has %d edges", len(links), g.NumEdges())
	}
	seen := map[faults.Link]bool{}
	for _, l := range links {
		if seen[l] {
			t.Fatalf("duplicate link %v", l)
		}
		seen[l] = true
		if !g.HasEdge(l.U, l.V) {
			t.Fatalf("non-edge %v", l)
		}
	}
}
