package faults

import (
	"fmt"
	"math/rand"

	"gdpn/internal/bitset"
	"gdpn/internal/graph"
)

// Link identifies an undirected communication-link fault.
type Link struct {
	U, V int
}

// LinksToNodes reduces link faults to node faults per Hayes' model, which
// the paper adopts (§2: "Hayes' graph model can accommodate faults in both
// processors and communication links (by viewing an adjacent processor as
// being faulty)"). Each faulty link marks ONE of its endpoints faulty; the
// reduction greedily reuses endpoints already marked (several broken links
// around one node cost a single node fault) and prefers processor
// endpoints over terminals (sacrificing a terminal burns an I/O attachment
// point for no benefit). The returned node fault set therefore has size at
// most len(links), and tolerating it implies tolerating the original link
// failures: no surviving pipeline uses a marked node, hence none uses a
// faulty link.
func LinksToNodes(g *graph.Graph, links []Link) (bitset.Set, error) {
	s := bitset.New(g.NumNodes())
	var pending []Link
	for _, l := range links {
		if !g.HasEdge(l.U, l.V) {
			return nil, fmt.Errorf("faults: (%d,%d) is not an edge", l.U, l.V)
		}
		if s.Contains(l.U) || s.Contains(l.V) {
			continue // already covered by a marked endpoint
		}
		pending = append(pending, l)
	}
	for _, l := range pending {
		if s.Contains(l.U) || s.Contains(l.V) {
			continue // covered by a node chosen for an earlier pending link
		}
		pick := l.U
		if g.Kind(pick) != graph.Processor && g.Kind(l.V) == graph.Processor {
			pick = l.V
		}
		s.Add(pick)
	}
	return s, nil
}

// LinkModel adapts a link-failure process to the node-fault interface:
// Sample draws `size` random distinct links and returns the Hayes
// reduction. The resulting node fault set can be smaller than size (shared
// endpoints), never larger — so a k-gracefully-degradable graph tolerates
// any k link faults.
type LinkModel struct{}

// Name implements Model.
func (LinkModel) Name() string { return "links" }

// Sample implements Model.
func (LinkModel) Sample(rng *rand.Rand, g *graph.Graph, size int) bitset.Set {
	links := RandomLinks(rng, g, size)
	s, err := LinksToNodes(g, links)
	if err != nil {
		panic("faults: internal link sampling produced a non-edge: " + err.Error())
	}
	return s
}

// RandomLinks draws `size` distinct edges of g uniformly at random.
func RandomLinks(rng *rand.Rand, g *graph.Graph, size int) []Link {
	var all []Link
	for v := 0; v < g.NumNodes(); v++ {
		for _, u := range g.Neighbors(v) {
			if v < int(u) {
				all = append(all, Link{v, int(u)})
			}
		}
	}
	if size > len(all) {
		size = len(all)
	}
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	return all[:size]
}
