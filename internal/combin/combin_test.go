package combin

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBinomialSmall(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {5, 3, 10},
		{10, 4, 210}, {36, 4, 58905}, {52, 5, 2598960},
		{5, -1, 0}, {5, 6, 0},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got != c.want {
			t.Errorf("Binomial(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomialPascal(t *testing.T) {
	for n := 1; n < 40; n++ {
		for k := 1; k < n; k++ {
			if Binomial(n, k) != Binomial(n-1, k-1)+Binomial(n-1, k) {
				t.Fatalf("Pascal identity fails at (%d,%d)", n, k)
			}
		}
	}
}

func TestCountUpTo(t *testing.T) {
	// G22,4 fault-set count from DESIGN.md: nodes = 22+3*4+2 = 36, k = 4.
	if got := CountUpTo(36, 4); got != 1+36+630+7140+58905 {
		t.Fatalf("CountUpTo(36,4) = %d", got)
	}
	if got := CountUpTo(5, 10); got != 32 {
		t.Fatalf("CountUpTo(5,10) = %d, want 32 (all subsets)", got)
	}
}

func TestSubsetsExactOrderAndCount(t *testing.T) {
	var got [][]int
	n := Subsets(4, 2, func(sub []int) bool {
		cp := append([]int(nil), sub...)
		got = append(got, cp)
		return true
	})
	want := [][]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	if n != 6 || len(got) != 6 {
		t.Fatalf("visited %d subsets, want 6", n)
	}
	for i := range want {
		if got[i][0] != want[i][0] || got[i][1] != want[i][1] {
			t.Fatalf("subset %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSubsetsEdgeCases(t *testing.T) {
	if n := Subsets(3, 0, func(sub []int) bool { return true }); n != 1 {
		t.Fatalf("Subsets(3,0) visited %d, want 1 (empty set)", n)
	}
	if n := Subsets(3, 4, func(sub []int) bool { return true }); n != 0 {
		t.Fatalf("Subsets(3,4) visited %d, want 0", n)
	}
	if n := Subsets(3, -1, func(sub []int) bool { return true }); n != 0 {
		t.Fatalf("Subsets(3,-1) visited %d, want 0", n)
	}
}

func TestSubsetsEarlyStop(t *testing.T) {
	count := 0
	n := Subsets(10, 3, func(sub []int) bool {
		count++
		return count < 5
	})
	if n != 5 || count != 5 {
		t.Fatalf("early stop visited %d, want 5", n)
	}
}

func TestSubsetsUpToMatchesCount(t *testing.T) {
	for n := 0; n <= 12; n++ {
		for k := 0; k <= 5; k++ {
			var visited int64
			SubsetsUpTo(n, k, func(sub []int) bool {
				visited++
				return true
			})
			if visited != CountUpTo(n, k) {
				t.Fatalf("SubsetsUpTo(%d,%d) visited %d, want %d", n, k, visited, CountUpTo(n, k))
			}
		}
	}
}

func TestSubsetsUpToEarlyStop(t *testing.T) {
	var visited int64
	got := SubsetsUpTo(10, 3, func(sub []int) bool {
		visited++
		return visited < 7
	})
	if got != 7 {
		t.Fatalf("early stop returned %d, want 7", got)
	}
}

func TestRankUnrankRoundTrip(t *testing.T) {
	const n, k = 12, 4
	total := Binomial(n, k)
	dst := make([]int, k)
	var r int64
	Subsets(n, k, func(sub []int) bool {
		if got := Rank(n, sub); got != r {
			t.Fatalf("Rank(%v) = %d, want %d", sub, got, r)
		}
		Unrank(n, k, r, dst)
		for i := range dst {
			if dst[i] != sub[i] {
				t.Fatalf("Unrank(%d) = %v, want %v", r, dst, sub)
			}
		}
		r++
		return true
	})
	if r != total {
		t.Fatalf("visited %d, want %d", r, total)
	}
}

// TestNextSubsetAgreesWithUnrank is the property the chunked exhaustive
// verifier depends on: unranking rank r and advancing with NextSubset must
// land exactly on the unranking of rank r+1, at every rank — including the
// boundaries where workers hand off chunks (first, last, chunk edges).
func TestNextSubsetAgreesWithUnrank(t *testing.T) {
	for _, c := range []struct{ n, k int }{
		{5, 1}, {5, 3}, {10, 2}, {12, 4}, {23, 3}, {9, 5},
	} {
		total := Binomial(c.n, c.k)
		// Boundary ranks: first, second, last two, and synthetic chunk edges
		// at total/7 strides (both sides of each edge).
		ranks := map[int64]bool{0: true}
		if total > 1 {
			ranks[1], ranks[total-2], ranks[total-1] = true, true, true
		}
		if per := total / 7; per > 0 {
			for from := per; from < total; from += per {
				ranks[from-1] = true
				ranks[from] = true
			}
		}
		cur := make([]int, c.k)
		next := make([]int, c.k)
		for r := range ranks {
			if r+1 >= total {
				continue
			}
			Unrank(c.n, c.k, r, cur)
			if !NextSubset(c.n, cur) {
				t.Fatalf("n=%d k=%d: NextSubset claimed rank %d is last of %d", c.n, c.k, r, total)
			}
			Unrank(c.n, c.k, r+1, next)
			for i := range cur {
				if cur[i] != next[i] {
					t.Fatalf("n=%d k=%d rank %d: advance = %v, Unrank(r+1) = %v", c.n, c.k, r, cur, next)
				}
			}
		}
		// The last subset must refuse to advance and stay unchanged.
		Unrank(c.n, c.k, total-1, cur)
		copy(next, cur)
		if NextSubset(c.n, cur) {
			t.Fatalf("n=%d k=%d: last subset advanced", c.n, c.k)
		}
		for i := range cur {
			if cur[i] != next[i] {
				t.Fatalf("n=%d k=%d: failed NextSubset mutated sub: %v -> %v", c.n, c.k, next, cur)
			}
		}
	}
}

// Exhaustive version of the same property on a small instance: every single
// rank transition agrees, not just boundaries.
func TestNextSubsetAgreesWithUnrankExhaustive(t *testing.T) {
	const n, k = 11, 4
	total := Binomial(n, k)
	cur := Unrank(n, k, 0, make([]int, k))
	next := make([]int, k)
	for r := int64(1); r < total; r++ {
		if !NextSubset(n, cur) {
			t.Fatalf("NextSubset stopped at rank %d of %d", r-1, total)
		}
		Unrank(n, k, r, next)
		for i := range cur {
			if cur[i] != next[i] {
				t.Fatalf("rank %d: advance = %v, unrank = %v", r, cur, next)
			}
		}
	}
	if NextSubset(n, cur) {
		t.Fatal("NextSubset advanced past the last subset")
	}
}

func TestUnrankDstMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on dst mismatch")
		}
	}()
	Unrank(5, 2, 0, make([]int, 3))
}

// Property: Rank/Unrank round-trip for random parameters.
func TestQuickRankUnrank(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		k := 1 + rng.Intn(n)
		r := rng.Int63n(Binomial(n, k))
		sub := Unrank(n, k, r, make([]int, k))
		for i := 1; i < k; i++ {
			if sub[i] <= sub[i-1] {
				return false // must be strictly increasing
			}
		}
		if sub[k-1] >= n || sub[0] < 0 {
			return false
		}
		return Rank(n, sub) == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomSubsetUniformCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, k, trials = 10, 3, 30000
	counts := make([]int, n)
	buf := make([]int, 0, k)
	for i := 0; i < trials; i++ {
		buf = RandomSubset(rng, n, k, buf)
		if len(buf) != k {
			t.Fatalf("len = %d, want %d", len(buf), k)
		}
		for j := 1; j < k; j++ {
			if buf[j] <= buf[j-1] {
				t.Fatalf("not sorted/distinct: %v", buf)
			}
		}
		for _, v := range buf {
			counts[v]++
		}
	}
	// Each element appears with probability k/n = 0.3; expect ~9000 each.
	for v, c := range counts {
		if c < 8300 || c > 9700 {
			t.Fatalf("element %d appeared %d times; far from expected 9000", v, c)
		}
	}
}

func TestRandomSubsetFullSet(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	got := RandomSubset(rng, 5, 5, nil)
	for i, v := range got {
		if v != i {
			t.Fatalf("RandomSubset(n,n) = %v, want identity", got)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("k > n did not panic")
			}
		}()
		RandomSubset(rng, 3, 4, nil)
	}()
}

func TestPermutationsCountAndDistinct(t *testing.T) {
	seen := map[[4]int]bool{}
	Permutations(4, func(p []int) bool {
		var key [4]int
		copy(key[:], p)
		if seen[key] {
			t.Fatalf("duplicate permutation %v", p)
		}
		seen[key] = true
		return true
	})
	if len(seen) != 24 {
		t.Fatalf("got %d permutations, want 24", len(seen))
	}
}

func TestPermutationsEarlyStopAndZero(t *testing.T) {
	count := 0
	Permutations(5, func(p []int) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("early stop visited %d, want 10", count)
	}
	Permutations(0, func(p []int) bool {
		t.Fatal("Permutations(0) should not call fn")
		return false
	})
}

func BenchmarkSubsetsUpTo36_4(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var sink int64
		SubsetsUpTo(36, 4, func(sub []int) bool {
			sink += int64(len(sub))
			return true
		})
		_ = sink
	}
}
