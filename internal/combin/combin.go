// Package combin provides the combinatorial enumeration primitives used by
// the exhaustive verifier and the solution-graph search: k-subset iteration
// in lexicographic order, subset ranking for work partitioning across
// goroutines, binomial coefficients, and reproducible random subsets.
package combin

import (
	"math/rand"
)

// Binomial returns C(n, k). It returns 0 for k < 0 or k > n and panics on
// overflow of int64 arithmetic, which does not occur for the graph sizes
// handled by this repository (n ≤ a few thousand, k ≤ ~8).
func Binomial(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	var r int64 = 1
	for i := 0; i < k; i++ {
		num := int64(n - i)
		r *= num
		if r < 0 {
			panic("combin: binomial overflow")
		}
		r /= int64(i + 1)
	}
	return r
}

// CountUpTo returns Σ_{i=0..k} C(n, i): the number of subsets of an n-set
// with at most k elements. This is the number of fault sets an exhaustive
// verification must examine.
func CountUpTo(n, k int) int64 {
	var total int64
	for i := 0; i <= k; i++ {
		total += Binomial(n, i)
	}
	return total
}

// Subsets calls fn once for every subset of {0..n-1} of size exactly k, in
// lexicographic order. The slice passed to fn is reused between calls; fn
// must copy it if it retains it. Iteration stops early if fn returns false.
// Subsets returns the number of subsets visited.
func Subsets(n, k int, fn func(sub []int) bool) int64 {
	if k < 0 || k > n {
		return 0
	}
	sub := make([]int, k)
	for i := range sub {
		sub[i] = i
	}
	var visited int64
	for {
		visited++
		if !fn(sub) {
			return visited
		}
		if !NextSubset(n, sub) {
			return visited
		}
	}
}

// NextSubset advances sub — a strictly increasing k-subset of {0..n-1} — to
// its lexicographic successor in place. It returns false (leaving sub
// unchanged) when sub is already the last subset, {n-k..n-1}. The exhaustive
// verifier iterates rank ranges with NextSubset instead of calling Unrank
// per rank: advancing is O(k) and, crucially, touches only a suffix of sub,
// which lets callers derive the incremental fault-set delta between
// consecutive ranks.
func NextSubset(n int, sub []int) bool {
	k := len(sub)
	i := k - 1
	for i >= 0 && sub[i] == n-k+i {
		i--
	}
	if i < 0 {
		return false
	}
	sub[i]++
	for j := i + 1; j < k; j++ {
		sub[j] = sub[j-1] + 1
	}
	return true
}

// SubsetsUpTo calls fn for every subset of {0..n-1} of size at most k
// (including the empty set), grouped by increasing size and lexicographic
// within each size. Iteration stops early if fn returns false. It returns
// the number of subsets visited.
func SubsetsUpTo(n, k int, fn func(sub []int) bool) int64 {
	var visited int64
	stop := false
	for size := 0; size <= k && size <= n && !stop; size++ {
		visited += Subsets(n, size, func(sub []int) bool {
			if !fn(sub) {
				stop = true
				return false
			}
			return true
		})
	}
	return visited
}

// Unrank writes into dst the k-subset of {0..n-1} with lexicographic rank r
// (0-based) and returns dst. dst must have length k. Unrank is the inverse
// of Rank and is used to split an exhaustive verification run into
// independent contiguous chunks for worker goroutines.
func Unrank(n, k int, r int64, dst []int) []int {
	if len(dst) != k {
		panic("combin: Unrank dst length mismatch")
	}
	x := 0
	for i := 0; i < k; i++ {
		for {
			c := Binomial(n-x-1, k-i-1)
			if r < c {
				break
			}
			r -= c
			x++
		}
		dst[i] = x
		x++
	}
	return dst
}

// Rank returns the 0-based lexicographic rank of the k-subset sub of
// {0..n-1}. sub must be strictly increasing.
func Rank(n int, sub []int) int64 {
	var r int64
	prev := -1
	k := len(sub)
	for i, v := range sub {
		for x := prev + 1; x < v; x++ {
			r += Binomial(n-x-1, k-i-1)
		}
		prev = v
	}
	return r
}

// RandomSubset writes a uniformly random size-k subset of {0..n-1} into dst
// in increasing order and returns dst. It uses Floyd's algorithm, so it
// performs k map operations regardless of n.
func RandomSubset(rng *rand.Rand, n, k int, dst []int) []int {
	if k > n {
		panic("combin: RandomSubset k > n")
	}
	dst = dst[:0]
	chosen := make(map[int]struct{}, k)
	for j := n - k; j < n; j++ {
		t := rng.Intn(j + 1)
		if _, ok := chosen[t]; ok {
			t = j
		}
		chosen[t] = struct{}{}
	}
	for v := range chosen {
		dst = append(dst, v)
	}
	insertionSort(dst)
	return dst
}

func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// Permutations calls fn for each permutation of {0..n-1} using Heap's
// algorithm. The slice passed to fn is reused. Iteration stops early if fn
// returns false. Only used for tiny n in the search module.
func Permutations(n int, fn func(perm []int) bool) {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == 1 {
			return fn(perm)
		}
		for i := 0; i < k; i++ {
			if !rec(k - 1) {
				return false
			}
			if k%2 == 0 {
				perm[i], perm[k-1] = perm[k-1], perm[i]
			} else {
				perm[0], perm[k-1] = perm[k-1], perm[0]
			}
		}
		return true
	}
	if n > 0 {
		rec(n)
	}
}
