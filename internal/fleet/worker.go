package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"

	"gdpn/internal/store"
	"gdpn/internal/verify"
)

// WorkerConfig configures RunWorker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL (http://host:port).
	Coordinator string
	// ID names this worker process; "" derives hostname-pid.
	ID string
	// Parallel is the number of concurrent shard runners (default 1).
	// Each runner owns its own solver with persistent warm/memo caches.
	Parallel int
	// Throttle paces the enumeration (verify.Options.Throttle), for CI
	// gauntlets that need a sweep to outlive worker kills.
	Throttle time.Duration
	// Retry bounds how long coordinator calls keep retrying through
	// connection failures before the worker gives up — the window that
	// lets workers ride out a coordinator SIGKILL + restart-from-
	// checkpoint (default 30s).
	Retry time.Duration
	// Memo enables the solver result memo (on by default in gdpfleet).
	Memo bool
	// Store attaches a local content-addressed verdict store to every
	// ShardRunner: cached verdicts short-circuit solves (after replay or
	// re-screening) and fresh ones are appended. The caller owns the
	// store's lifecycle. nil disables it.
	Store *store.Store
	// Client is the HTTP client to use (nil = a 10s-timeout client).
	Client *http.Client
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
}

// RunWorker runs one worker process: it fetches the job spec, rebuilds
// the instance deterministically, and loops leasing chunks, verifying
// them with persistent ShardRunners, and streaming the partial reports
// back — heartbeating its in-flight chunks so the coordinator knows it
// is alive. It returns nil when the coordinator reports the sweep done,
// ctx.Err() on cancellation, and a transport error only after the Retry
// window is exhausted.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	if cfg.Parallel <= 0 {
		cfg.Parallel = 1
	}
	if cfg.Retry <= 0 {
		cfg.Retry = 30 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if cfg.ID == "" {
		host, _ := os.Hostname()
		cfg.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}

	w := &fleetWorker{cfg: cfg, inflight: map[int]bool{}}
	var job JobResponse
	if err := w.call(ctx, "/v1/job", nil, &job); err != nil {
		return fmt.Errorf("fleet worker %s: fetch job: %w", cfg.ID, err)
	}
	inst, err := job.Spec.Build()
	if err != nil {
		return fmt.Errorf("fleet worker %s: %w", cfg.ID, err)
	}
	opts := inst.Opts
	opts.Context = ctx
	opts.Throttle = cfg.Throttle
	opts.Solver.Memo = cfg.Memo
	opts.Store = cfg.Store
	cfg.Logf("fleet worker %s: job %s k=%d redundancy=%d, %d runner(s)",
		cfg.ID, inst.Graph.Name(), job.Spec.K, job.Spec.Redundancy, cfg.Parallel)

	// Heartbeat at a third of the lease TTL so one dropped request does
	// not cost the lease.
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	hbEvery := time.Duration(job.LeaseTTLMS) * time.Millisecond / 3
	if hbEvery < 20*time.Millisecond {
		hbEvery = 20 * time.Millisecond
	}
	go w.heartbeatLoop(hbCtx, hbEvery)

	errs := make(chan error, cfg.Parallel)
	for i := 0; i < cfg.Parallel; i++ {
		go func() {
			errs <- w.runLoop(ctx, inst, opts, job.Spec.K)
		}()
	}
	var first error
	for i := 0; i < cfg.Parallel; i++ {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

type fleetWorker struct {
	cfg WorkerConfig

	mu       sync.Mutex
	inflight map[int]bool
}

// runLoop is one runner goroutine: lease → verify → complete until the
// coordinator says done or the context cancels.
func (w *fleetWorker) runLoop(ctx context.Context, inst *Instance, opts verify.Options, k int) error {
	runner := verify.NewShardRunner(inst.Graph, k, opts)
	defer runner.Close()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var lease LeaseResponse
		if err := w.call(ctx, "/v1/lease", LeaseRequest{WorkerID: w.cfg.ID}, &lease); err != nil {
			return err
		}
		switch {
		case lease.Done:
			return nil
		case lease.Wait:
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(200 * time.Millisecond):
			}
			continue
		}
		w.track(lease.ChunkID, true)
		rep := runner.Run(lease.Shard)
		var ack CompleteResponse
		err := w.call(ctx, "/v1/complete",
			CompleteRequest{WorkerID: w.cfg.ID, ChunkID: lease.ChunkID, Report: rep}, &ack)
		w.track(lease.ChunkID, false)
		if err != nil {
			return err
		}
		if rep.Interrupted {
			// The sweep token latched mid-shard (SIGINT or ctx cancel):
			// the partial was rejected upstream; stop cleanly.
			return ctx.Err()
		}
		if !ack.Accepted {
			w.cfg.Logf("fleet worker %s: chunk %d verdict not accepted (late duplicate)", w.cfg.ID, lease.ChunkID)
		}
	}
}

func (w *fleetWorker) track(chunkID int, on bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if on {
		w.inflight[chunkID] = true
	} else {
		delete(w.inflight, chunkID)
	}
}

func (w *fleetWorker) heartbeatLoop(ctx context.Context, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		w.mu.Lock()
		ids := make([]int, 0, len(w.inflight))
		for id := range w.inflight {
			ids = append(ids, id)
		}
		w.mu.Unlock()
		var resp HeartbeatResponse
		// Heartbeat failures are survivable (the next lease/complete also
		// proves liveness); the retry loop inside call already rides out
		// a coordinator restart.
		if err := w.call(ctx, "/v1/heartbeat", HeartbeatRequest{WorkerID: w.cfg.ID, ChunkIDs: ids}, &resp); err == nil {
			for _, id := range resp.Lost {
				w.cfg.Logf("fleet worker %s: lost lease on chunk %d (re-leased elsewhere)", w.cfg.ID, id)
			}
		}
	}
}

// call POSTs (or GETs, when req is nil) JSON to the coordinator,
// retrying transport failures with backoff until the Retry window of
// continuous failure elapses. The window resets on every success, so a
// long sweep tolerates any number of transient coordinator outages.
func (w *fleetWorker) call(ctx context.Context, path string, req, resp any) error {
	var firstFail time.Time
	backoff := 100 * time.Millisecond
	for {
		err := w.callOnce(ctx, path, req, resp)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if firstFail.IsZero() {
			firstFail = time.Now()
			w.cfg.Logf("fleet worker %s: %s failed (%v), retrying up to %v", w.cfg.ID, path, err, w.cfg.Retry)
		}
		if time.Since(firstFail) > w.cfg.Retry {
			return fmt.Errorf("fleet worker %s: %s still failing after %v: %w", w.cfg.ID, path, w.cfg.Retry, err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		if backoff < 2*time.Second {
			backoff *= 2
		}
	}
}

func (w *fleetWorker) callOnce(ctx context.Context, path string, req, resp any) error {
	url := w.cfg.Coordinator + path
	var httpReq *http.Request
	var err error
	if req == nil {
		httpReq, err = http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	} else {
		var body bytes.Buffer
		if err := json.NewEncoder(&body).Encode(req); err != nil {
			return err
		}
		httpReq, err = http.NewRequestWithContext(ctx, http.MethodPost, url, &body)
		if httpReq != nil {
			httpReq.Header.Set("Content-Type", "application/json")
		}
	}
	if err != nil {
		return err
	}
	httpResp, err := w.cfg.Client.Do(httpReq)
	if err != nil {
		return err
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(httpResp.Body, 512))
		return fmt.Errorf("%s: %s", httpResp.Status, bytes.TrimSpace(b))
	}
	return json.NewDecoder(httpResp.Body).Decode(resp)
}
