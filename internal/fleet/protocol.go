// Package fleet shards exhaustive GD(G, k) verification across many
// worker processes behind an HTTP coordinator, with redundant chunk
// assignment, heartbeat-driven lease recovery, and a JSON checkpoint that
// makes a killed-and-restarted sweep resume instead of re-enumerating.
//
// The design follows the source paper's graceful-degradation framing
// applied to the verifier itself, and the redundant-assignment robustness
// argument of Censor-Hillel et al. ("Two for One, One for All"): the
// coordinator leases each chunk up to Redundancy times, a straggling or
// dead worker's lease expires and the chunk is re-leased, and duplicate
// verdicts for one chunk are cross-checked — a mismatch is flagged as a
// solver bug rather than silently trusted. Soundness never depends on
// worker liveness: a chunk is complete only when enough verdicts arrived,
// and the final report is the commutative merge of exactly one verdict
// per chunk, so worker death, duplicate completion, and out-of-order
// arrival all leave the verdict byte-identical to a single-process run.
//
// Protocol (all bodies JSON):
//
//	GET  /v1/job        → JobResponse   the instance workers must build
//	POST /v1/lease      → LeaseResponse a chunk lease (or wait/done)
//	POST /v1/complete   → CompleteResponse submit one chunk's partial report
//	POST /v1/heartbeat  → HeartbeatResponse renew this worker's leases
//	GET  /v1/status     → Status        live sweep accounting
package fleet

import (
	"fmt"

	"gdpn/internal/construct"
	"gdpn/internal/embed"
	"gdpn/internal/graph"
	"gdpn/internal/verify"
)

// JobSpec pins the verification instance every participant must agree
// on. The coordinator serves it at /v1/job; workers rebuild the graph
// from it (Design is deterministic) rather than shipping the graph over
// the wire. It is also persisted in the checkpoint, so a resume with a
// different instance is rejected instead of merging incompatible
// partials.
type JobSpec struct {
	// N and K are the construct.Design arguments.
	N int `json:"n"`
	K int `json:"k"`
	// Merge selects the merged-terminal model (processor faults only),
	// mirroring gdpverify -merge.
	Merge bool `json:"merge,omitempty"`
	// Symmetry enables orbit-reduced enumeration. The orbit test is
	// deterministic, so every worker prunes the same representatives.
	Symmetry bool `json:"symmetry,omitempty"`
	// Redundancy is how many independent verdicts each chunk needs
	// (default 1). Copies go to distinct workers when enough are alive;
	// mismatched duplicate verdicts are flagged as solver bugs.
	Redundancy int `json:"redundancy"`
	// ChunkRanks bounds the ranks per chunk (0 = verify.DefaultShardRanks).
	ChunkRanks int64 `json:"chunk_ranks"`
}

func (s JobSpec) withDefaults() JobSpec {
	if s.Redundancy <= 0 {
		s.Redundancy = 1
	}
	if s.ChunkRanks <= 0 {
		s.ChunkRanks = verify.DefaultShardRanks
	}
	return s
}

// Build constructs the instance the spec describes: the graph to verify
// and the verify.Options a worker (or the coordinator, for shard
// enumeration) derives from it. The result is deterministic in the spec.
func (s JobSpec) Build() (*Instance, error) {
	sol, err := construct.Design(s.N, s.K)
	if err != nil {
		return nil, fmt.Errorf("fleet: build instance: %w", err)
	}
	g := sol.Graph
	opts := verify.Options{
		Solver:          embed.Options{Layout: sol.Layout},
		ExploitSymmetry: s.Symmetry,
	}
	if s.Merge {
		g = construct.Merge(g)
		opts.Universe = verify.ProcessorsOnly
		opts.Solver = embed.Options{}
	}
	return &Instance{Graph: g, Opts: opts}, nil
}

// Instance is a built JobSpec: the graph plus the verification options
// every participant uses, so fleet verdicts are comparable to
// single-process gdpverify runs of the same flags.
type Instance struct {
	Graph *graph.Graph
	Opts  verify.Options
}

// JobResponse is the /v1/job payload.
type JobResponse struct {
	Spec JobSpec `json:"spec"`
	// LeaseTTLMS is the coordinator's lease duration; workers heartbeat
	// at a third of it.
	LeaseTTLMS int64 `json:"lease_ttl_ms"`
}

// LeaseRequest asks for one chunk lease.
type LeaseRequest struct {
	WorkerID string `json:"worker_id"`
}

// LeaseResponse grants a chunk, asks the worker to poll again, or ends
// the worker's run.
type LeaseResponse struct {
	// Done: the sweep is complete (or aborted); the worker should exit.
	Done bool `json:"done,omitempty"`
	// Wait: nothing leasable right now (all remaining chunks are leased);
	// poll again shortly.
	Wait bool `json:"wait,omitempty"`
	// ChunkID identifies the granted chunk in Complete calls.
	ChunkID int `json:"chunk_id"`
	// Shard is the rank range to verify.
	Shard verify.Shard `json:"shard"`
}

// CompleteRequest submits one chunk's partial report.
type CompleteRequest struct {
	WorkerID string         `json:"worker_id"`
	ChunkID  int            `json:"chunk_id"`
	Report   *verify.Report `json:"report"`
}

// CompleteResponse acknowledges a submission. Accepted is false when the
// report arrived too late (the chunk already has its verdicts) or was
// interrupted — either way the worker just moves on.
type CompleteResponse struct {
	Accepted bool `json:"accepted"`
}

// HeartbeatRequest renews the worker's leases on the listed chunks.
type HeartbeatRequest struct {
	WorkerID string `json:"worker_id"`
	ChunkIDs []int  `json:"chunk_ids,omitempty"`
}

// HeartbeatResponse lists chunks the worker believed it held but the
// coordinator no longer credits to it (lease expired and re-leased, or
// completed by a redundant copy). Purely informational: a stale worker's
// eventual Complete is simply not Accepted.
type HeartbeatResponse struct {
	Lost []int `json:"lost,omitempty"`
}

// Status is the live sweep accounting served at /v1/status and embedded
// in gdpfleet's final JSON output.
type Status struct {
	Done            bool `json:"done"`
	Resumed         bool `json:"resumed"`
	ChunksTotal     int  `json:"chunks_total"`
	ChunksCompleted int  `json:"chunks_completed"`
	// ChunksFromStore counts chunks proven by a verdict blob in the
	// content-addressed store at startup — done without any lease.
	ChunksFromStore int   `json:"chunks_from_store,omitempty"`
	ChunksLeased    int   `json:"chunks_leased"`
	Leases          int64 `json:"leases"`
	// Releases counts leases reclaimed from dead or straggling workers
	// and made available again.
	Releases    int64 `json:"releases"`
	Mismatches  int64 `json:"mismatches"`
	WorkersLive int   `json:"workers_live"`
	WorkersSeen int   `json:"workers_seen"`
	// CheckpointAgeMS is the time since the last checkpoint write
	// (-1: checkpointing off or nothing written yet).
	CheckpointAgeMS int64 `json:"checkpoint_age_ms"`
}

// Result is the finished sweep: the merged report plus the fleet-level
// accounting the CI gauntlets assert on.
type Result struct {
	Report *verify.Report `json:"report"`
	// Resumed: the coordinator started from an existing checkpoint
	// rather than a fresh enumeration.
	Resumed         bool  `json:"resumed"`
	ChunksTotal     int   `json:"chunks_total"`
	ChunksCompleted int   `json:"chunks_completed"`
	ChunksFromStore int   `json:"chunks_from_store,omitempty"`
	Leases          int64 `json:"leases"`
	Releases        int64 `json:"releases"`
	Mismatches      int64 `json:"mismatches"`
	WorkersSeen     int   `json:"workers_seen"`
	Redundancy      int   `json:"redundancy"`
}
