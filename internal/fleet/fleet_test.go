package fleet

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"gdpn/internal/store"
	"gdpn/internal/verify"
)

func startFleet(t *testing.T, cfg Config) (*Coordinator, *httptest.Server) {
	t.Helper()
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	return c, srv
}

func runWorkers(t *testing.T, srv *httptest.Server, n int) {
	t.Helper()
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		cfg := WorkerConfig{
			Coordinator: srv.URL,
			ID:          "w" + string(rune('0'+i)),
			Retry:       2 * time.Second,
			Client:      srv.Client(),
			Memo:        true,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := RunWorker(ctx, cfg); err != nil {
				t.Errorf("worker %s: %v", cfg.ID, err)
			}
		}()
	}
	wg.Wait()
}

// A three-worker fleet over real HTTP must produce the exact verdict
// summary of a single-process Exhaustive run of the same instance — the
// parity property the CI fleet-smoke gauntlet asserts at binary level.
func TestFleetMatchesExhaustive(t *testing.T) {
	spec := JobSpec{N: 3, K: 3, Symmetry: true, ChunkRanks: 100}
	inst, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	want := verify.Exhaustive(inst.Graph, spec.K, inst.Opts)

	c, srv := startFleet(t, Config{Spec: spec})
	runWorkers(t, srv, 3)

	select {
	case <-c.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("sweep did not finish: %+v", c.Status())
	}
	res := c.Final()
	if got := res.Report.VerdictSummary(); got != want.VerdictSummary() {
		t.Errorf("fleet verdict\n%q\nwant\n%q", got, want.VerdictSummary())
	}
	if res.ChunksCompleted != res.ChunksTotal || res.ChunksTotal == 0 {
		t.Errorf("chunks %d/%d", res.ChunksCompleted, res.ChunksTotal)
	}
	if res.WorkersSeen != 3 {
		t.Errorf("WorkersSeen = %d, want 3", res.WorkersSeen)
	}
	if res.Resumed {
		t.Error("fresh sweep reported Resumed")
	}
}

// A worker that leases a chunk and dies must not stall the sweep: its
// lease expires and the chunk re-leases to a live worker, with the
// reclamation counted in Releases and the verdict unchanged.
func TestDeadWorkerChunkReleased(t *testing.T) {
	spec := JobSpec{N: 3, K: 2, ChunkRanks: 16}
	inst, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	want := verify.Exhaustive(inst.Graph, spec.K, inst.Opts)

	c, srv := startFleet(t, Config{Spec: spec, LeaseTTL: 50 * time.Millisecond})

	// The "dead" worker takes a chunk and is never heard from again.
	lease := c.lease("dead-worker")
	if lease.Done || lease.Wait {
		t.Fatalf("dead worker got no lease: %+v", lease)
	}
	time.Sleep(60 * time.Millisecond) // let the lease expire

	runWorkers(t, srv, 1)
	select {
	case <-c.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("sweep stalled on the dead worker's chunk: %+v", c.Status())
	}
	res := c.Final()
	if res.Releases < 1 {
		t.Errorf("Releases = %d, want ≥ 1 (dead worker's lease reclaimed)", res.Releases)
	}
	if got := res.Report.VerdictSummary(); got != want.VerdictSummary() {
		t.Errorf("verdict after re-lease\n%q\nwant\n%q", got, want.VerdictSummary())
	}
}

// Killing the coordinator mid-sweep and restarting it from the
// checkpoint must resume — not restart — the sweep: completed chunks are
// not re-verified, Resumed is reported, and the final verdict is
// byte-identical to the single-process run.
func TestResumeFromCheckpoint(t *testing.T) {
	spec := JobSpec{N: 3, K: 2, ChunkRanks: 16}
	inst, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	want := verify.Exhaustive(inst.Graph, spec.K, inst.Opts)
	ckpt := filepath.Join(t.TempDir(), "sweep.json")

	// First incarnation: complete two chunks, then "crash" (abandon it).
	first, err := NewCoordinator(Config{Spec: spec, CheckpointPath: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	if first.Resumed() {
		t.Fatal("fresh coordinator reported Resumed")
	}
	runner := verify.NewShardRunner(inst.Graph, spec.K, inst.Opts)
	defer runner.Close()
	for i := 0; i < 2; i++ {
		lease := first.lease("w0")
		if lease.Done || lease.Wait {
			t.Fatalf("lease %d: %+v", i, lease)
		}
		if !first.complete(CompleteRequest{WorkerID: "w0", ChunkID: lease.ChunkID, Report: runner.Run(lease.Shard)}) {
			t.Fatalf("complete %d not accepted", i)
		}
	}

	// Second incarnation restores the two completed chunks.
	second, srv := startFleet(t, Config{Spec: spec, CheckpointPath: ckpt})
	if !second.Resumed() {
		t.Fatal("restarted coordinator did not resume from checkpoint")
	}
	if st := second.Status(); st.ChunksCompleted != 2 {
		t.Fatalf("resumed with %d completed chunks, want 2", st.ChunksCompleted)
	}
	runWorkers(t, srv, 2)
	select {
	case <-second.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("resumed sweep did not finish: %+v", second.Status())
	}
	res := second.Final()
	if !res.Resumed {
		t.Error("final result lost the Resumed flag")
	}
	if res.ChunksCompleted != res.ChunksTotal {
		t.Errorf("chunks %d/%d after resume", res.ChunksCompleted, res.ChunksTotal)
	}
	if got := res.Report.VerdictSummary(); got != want.VerdictSummary() {
		t.Errorf("resumed verdict\n%q\nwant\n%q", got, want.VerdictSummary())
	}

	// A checkpoint for a different instance must be refused, not merged.
	bad := spec
	bad.K = 1
	if _, err := NewCoordinator(Config{Spec: bad, CheckpointPath: ckpt}); err == nil {
		t.Error("coordinator accepted a checkpoint for a different instance")
	}
}

// A restarted coordinator with a warm verdict store — and NO checkpoint
// file — must resume from the store alone: every chunk whose verdict blob
// survived is marked done without a single lease, Resumed is reported,
// and the final verdict is byte-identical to the single-process run.
func TestResumeFromStore(t *testing.T) {
	spec := JobSpec{N: 3, K: 2, ChunkRanks: 16}
	inst, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	want := verify.Exhaustive(inst.Graph, spec.K, inst.Opts)
	storePath := filepath.Join(t.TempDir(), "verdicts.gdps")

	// First incarnation: full sweep against a cold store, then "crash"
	// without Close — the per-completion Flush must have persisted every
	// chunk blob already.
	s1, err := store.Open(storePath)
	if err != nil {
		t.Fatal(err)
	}
	first, srv := startFleet(t, Config{Spec: spec, Store: s1})
	runWorkers(t, srv, 2)
	select {
	case <-first.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("cold sweep did not finish: %+v", first.Status())
	}
	if res := first.Final(); res.Resumed || res.ChunksFromStore != 0 {
		t.Fatalf("cold sweep claimed a resume: %+v", res)
	}

	// Second incarnation: same instance, fresh coordinator, no checkpoint.
	s2, err := store.Open(storePath)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	second, err := NewCoordinator(Config{Spec: spec, Store: s2})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Resumed() {
		t.Fatal("warm-store coordinator did not report resumed")
	}
	select {
	case <-second.Done():
	default:
		t.Fatalf("warm-store sweep not complete at startup: %+v", second.Status())
	}
	res := second.Final()
	if res.Leases != 0 {
		t.Errorf("warm-store resume leased %d chunks, want 0", res.Leases)
	}
	if res.ChunksFromStore != res.ChunksTotal || res.ChunksTotal == 0 {
		t.Errorf("chunks from store %d/%d", res.ChunksFromStore, res.ChunksTotal)
	}
	if got := res.Report.VerdictSummary(); got != want.VerdictSummary() {
		t.Errorf("store-resumed verdict\n%q\nwant\n%q", got, want.VerdictSummary())
	}

	// A different sweep (k=1) over the same graph shares the slot but not
	// the chunk keys: nothing resumes, nothing is misattributed.
	other, err := NewCoordinator(Config{Spec: JobSpec{N: 3, K: 1, ChunkRanks: 16}, Store: s2})
	if err != nil {
		t.Fatal(err)
	}
	if other.Resumed() {
		t.Error("k=1 sweep resumed from k=2 chunk blobs")
	}
}

// With redundancy 2, disagreeing duplicate verdicts for a chunk must be
// flagged as a solver bug: counted in Mismatches and failing the merged
// report — never silently trusting either copy.
func TestRedundancyMismatchFlagged(t *testing.T) {
	spec := JobSpec{N: 3, K: 2, Redundancy: 2, ChunkRanks: 1 << 20}
	c, err := NewCoordinator(Config{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}

	// Two workers lease the same chunk (redundancy 2) and return
	// fabricated, disagreeing verdicts.
	la, lb := c.lease("wa"), c.lease("wb")
	if la.ChunkID != lb.ChunkID {
		t.Fatalf("redundant copies went to different chunks: %d vs %d", la.ChunkID, lb.ChunkID)
	}
	repA := &verify.Report{Checked: 10, Represented: 10}
	repB := &verify.Report{Checked: 10, Represented: 10, FailureCount: 1,
		Failures: []verify.FaultSetRecord{{Nodes: []int{3}, Err: "no pipeline"}}}
	if !c.complete(CompleteRequest{WorkerID: "wa", ChunkID: la.ChunkID, Report: repA}) {
		t.Fatal("first copy rejected")
	}
	if !c.complete(CompleteRequest{WorkerID: "wb", ChunkID: lb.ChunkID, Report: repB}) {
		t.Fatal("second copy rejected")
	}
	if st := c.Status(); st.Mismatches != 1 {
		t.Fatalf("Mismatches = %d, want 1", st.Mismatches)
	}

	// Drive the remaining chunks to completion with agreeing (fabricated)
	// copies so the sweep finalizes.
	for {
		l := c.lease("wc")
		if l.Done {
			break
		}
		if l.Wait {
			t.Fatalf("unexpected wait: %+v", c.Status())
		}
		rep := &verify.Report{Checked: l.Shard.Ranks(), Represented: l.Shard.Ranks()}
		c.complete(CompleteRequest{WorkerID: "wc", ChunkID: l.ChunkID, Report: rep})
		c.complete(CompleteRequest{WorkerID: "wd", ChunkID: l.ChunkID, Report: rep})
	}
	res := c.Final()
	if res.Mismatches != 1 {
		t.Errorf("final Mismatches = %d, want 1", res.Mismatches)
	}
	if len(res.Report.SolverBugs) == 0 {
		t.Error("mismatch left no SolverBugs record")
	}
	if res.Report.OK() {
		t.Error("report with a verdict mismatch must not be OK")
	}
}

// Interrupted partials must be rejected at /v1/complete: a worker that
// was cancelled mid-shard reports a partial chunk, and accepting it
// would silently under-verify that rank range.
func TestInterruptedPartialRejected(t *testing.T) {
	spec := JobSpec{N: 3, K: 2, ChunkRanks: 1 << 20}
	c, err := NewCoordinator(Config{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	l := c.lease("w0")
	if c.complete(CompleteRequest{WorkerID: "w0", ChunkID: l.ChunkID,
		Report: &verify.Report{Checked: 1, Interrupted: true}}) {
		t.Error("interrupted partial was accepted")
	}
	if st := c.Status(); st.ChunksCompleted != 0 {
		t.Errorf("interrupted partial completed a chunk: %+v", st)
	}
}

// Heartbeats renew leases; silence loses them. The Lost list tells a
// straggler its chunk was re-leased.
func TestHeartbeatRenewsLease(t *testing.T) {
	spec := JobSpec{N: 3, K: 2, ChunkRanks: 1 << 20}
	c, err := NewCoordinator(Config{Spec: spec, LeaseTTL: 60 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	l := c.lease("w0")
	// Three renewal rounds straddling the TTL keep the lease alive.
	for i := 0; i < 3; i++ {
		time.Sleep(30 * time.Millisecond)
		hb := c.heartbeat(HeartbeatRequest{WorkerID: "w0", ChunkIDs: []int{l.ChunkID}})
		if len(hb.Lost) != 0 {
			t.Fatalf("renewal round %d lost the lease: %v", i, hb.Lost)
		}
	}
	// Silence past the TTL loses it.
	time.Sleep(80 * time.Millisecond)
	hb := c.heartbeat(HeartbeatRequest{WorkerID: "w0", ChunkIDs: []int{l.ChunkID}})
	if len(hb.Lost) != 1 || hb.Lost[0] != l.ChunkID {
		t.Fatalf("expired lease not reported lost: %v", hb.Lost)
	}
	if st := c.Status(); st.Releases < 1 {
		t.Errorf("Releases = %d, want ≥ 1", st.Releases)
	}
}
