package fleet

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"gdpn/internal/verify"
)

// randomReport builds a structurally plausible partial report with
// random counters and record lists; interrupted partials appear too,
// since a resumed coordinator may merge checkpoints that include them
// (they are rejected at the complete handler, but the merge itself must
// still be total and deterministic).
func randomReport(rng *rand.Rand) *verify.Report {
	rep := &verify.Report{
		GraphName:   "G(test)",
		K:           3,
		Checked:     rng.Int63n(100),
		Represented: rng.Int63n(1000),
		Interrupted: rng.Intn(8) == 0,
	}
	nRecs := func() int { return rng.Intn(4) }
	randRec := func(msg string) verify.FaultSetRecord {
		nodes := make([]int, 1+rng.Intn(3))
		for i := range nodes {
			nodes[i] = rng.Intn(20)
		}
		return verify.FaultSetRecord{Nodes: nodes, Err: msg}
	}
	for i := 0; i < nRecs(); i++ {
		rep.Failures = append(rep.Failures, randRec("no pipeline"))
		rep.FailureCount++
	}
	for i := 0; i < nRecs(); i++ {
		rep.Unknowns = append(rep.Unknowns, randRec("budget exhausted"))
		rep.UnknownCount++
	}
	return rep
}

// Property test: checkpoint save/load round-trips exactly, and merging
// the partial reports is idempotent across save/load cycles and
// independent of chunk order — the two properties resume soundness
// rests on.
func TestCheckpointRoundTripProperty(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		nChunks := 1 + rng.Intn(12)
		ck := &Checkpoint{
			Spec:   JobSpec{N: 3, K: 3, Redundancy: 1 + rng.Intn(2), ChunkRanks: 64}.withDefaults(),
			Chunks: make([]ChunkState, nChunks),
		}
		for i := range ck.Chunks {
			st := ChunkState{ID: i, Shard: verify.Shard{Size: rng.Intn(4), From: int64(i) * 64, To: int64(i+1) * 64}}
			if rng.Intn(3) > 0 { // ~2/3 of chunks completed
				st.Done = true
				for c := 0; c < ck.Spec.Redundancy; c++ {
					rep := randomReport(rng)
					st.Reports = append(st.Reports, rep)
					st.Digests = append(st.Digests, Digest(rep))
					st.DoneBy = append(st.DoneBy, fmt.Sprintf("w%d", c))
				}
			}
			ck.Chunks[i] = st
		}

		// Round-trip: load(save(ck)) must reproduce ck exactly.
		path := filepath.Join(dir, fmt.Sprintf("ck-%d.json", trial))
		if err := ck.Save(path); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadCheckpoint(path)
		if err != nil {
			t.Fatal(err)
		}
		a, _ := json.Marshal(ck)
		b, _ := json.Marshal(loaded)
		if string(a) != string(b) {
			t.Fatalf("trial %d: checkpoint changed across save/load:\n%s\nvs\n%s", trial, a, b)
		}

		// Idempotence: a second save/load cycle merges identically.
		if err := loaded.Save(path); err != nil {
			t.Fatal(err)
		}
		reloaded, err := LoadCheckpoint(path)
		if err != nil {
			t.Fatal(err)
		}
		base := ck.MergedReport("G(test)", 3, 0)
		cycled := reloaded.MergedReport("G(test)", 3, 0)
		if !reflect.DeepEqual(base, cycled) {
			t.Fatalf("trial %d: merge changed across a save/load cycle:\n%+v\nvs\n%+v", trial, base, cycled)
		}

		// Order independence: merging the chunks in any order is the same.
		shuffled := &Checkpoint{Spec: loaded.Spec, Chunks: append([]ChunkState(nil), loaded.Chunks...)}
		rng.Shuffle(len(shuffled.Chunks), func(i, j int) {
			shuffled.Chunks[i], shuffled.Chunks[j] = shuffled.Chunks[j], shuffled.Chunks[i]
		})
		if got := shuffled.MergedReport("G(test)", 3, 0); !reflect.DeepEqual(base, got) {
			t.Fatalf("trial %d: chunk order changed the merged report:\n%+v\nvs\n%+v", trial, base, got)
		}
	}
}

// Digest must ignore scheduling-dependent fields (duration, steals,
// tiers) and catch verdict-relevant differences.
func TestDigest(t *testing.T) {
	a := &verify.Report{Checked: 10, Represented: 20, Duration: 123, Steals: 4}
	b := &verify.Report{Checked: 10, Represented: 20, Duration: 456, Steals: 9}
	if Digest(a) != Digest(b) {
		t.Error("digest depends on scheduling fields")
	}
	c := &verify.Report{Checked: 10, Represented: 20, FailureCount: 1,
		Failures: []verify.FaultSetRecord{{Nodes: []int{3}, Err: "no pipeline"}}}
	if Digest(a) == Digest(c) {
		t.Error("digest missed a verdict difference")
	}
}
