package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sync"
	"time"

	"gdpn/internal/graph"
	"gdpn/internal/obs"
	"gdpn/internal/obs/span"
	"gdpn/internal/store"
	"gdpn/internal/verify"
)

// DefaultLeaseTTL is the chunk lease duration used when Config.LeaseTTL
// is zero. A worker that has not completed or heartbeat-renewed a chunk
// within the TTL is presumed dead or straggling and the chunk re-leases.
const DefaultLeaseTTL = 10 * time.Second

// Config configures a Coordinator.
type Config struct {
	// Spec is the verification instance to shard.
	Spec JobSpec
	// LeaseTTL is the chunk lease duration (0 = DefaultLeaseTTL).
	LeaseTTL time.Duration
	// CheckpointPath enables durable progress: the coordinator loads the
	// file on start (resuming if it matches Spec) and rewrites it
	// atomically after every chunk completion. "" disables checkpointing.
	CheckpointPath string
	// MaxRecorded caps the merged report's record lists (0 = 16, the
	// verify default — keep it equal to the single-process run's cap so
	// verdict summaries stay byte-identical).
	MaxRecorded int
	// Store attaches the content-addressed verdict store as a second,
	// content-keyed resume substrate: every completed chunk's verdict is
	// persisted as a blob on the instance's slot, and a restarted
	// coordinator marks blob-backed chunks done without leasing them —
	// even when no checkpoint file survived, and across differently-named
	// checkpoint paths, because the key is the graph's canonical form.
	// The caller owns the store's lifecycle. nil disables it.
	Store *store.Store
}

// Coordinator owns the shard ledger of one sweep: it leases chunks to
// workers over HTTP, reclaims leases from dead workers, cross-checks
// redundant verdicts, checkpoints completed chunks, and merges the
// partial reports into the final verdict. All state transitions happen
// under one mutex; the handlers are safe for concurrent use.
type Coordinator struct {
	cfg  Config
	spec JobSpec
	g    *graph.Graph
	ref  *store.GraphRef // nil when Config.Store is nil

	leasedC   *obs.Counter
	doneC     *obs.Counter
	releasedC *obs.Counter
	mismatchC *obs.Counter
	liveG     *obs.Gauge
	ckptAgeG  *obs.Gauge

	mu           sync.Mutex
	chunks       []*chunk
	remaining    int
	workers      map[string]*workerState
	leases       int64
	releases     int64
	mismatches   int64
	mismatchRecs []verify.FaultSetRecord
	resumed      bool
	fromStore    int
	lastCkpt     time.Time
	start        time.Time
	result       *Result
	done         chan struct{}
}

// chunk is the coordinator-side state of one shard.
type chunk struct {
	id      int
	shard   verify.Shard
	holders map[string]time.Time // active leases: worker → expiry
	reports []*verify.Report     // accepted verdict copies
	digests []string
	doneBy  []string
	done    bool
	sp      *span.S // chunk lifecycle span, started at first lease
}

type workerState struct {
	lastSeen time.Time
}

// NewCoordinator builds the shard ledger for cfg.Spec — resuming from
// cfg.CheckpointPath when a compatible checkpoint exists — but serves
// nothing until its Handler is mounted.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	cfg.Spec = cfg.Spec.withDefaults()
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.MaxRecorded <= 0 {
		cfg.MaxRecorded = 16
	}
	inst, err := cfg.Spec.Build()
	if err != nil {
		return nil, err
	}
	shards := verify.Shards(inst.Graph, cfg.Spec.K, inst.Opts.Universe, cfg.Spec.ChunkRanks)
	reg := obs.Default()
	c := &Coordinator{
		cfg:       cfg,
		spec:      cfg.Spec,
		g:         inst.Graph,
		leasedC:   reg.Counter("fleet_chunks_leased_total"),
		doneC:     reg.Counter("fleet_chunks_completed_total"),
		releasedC: reg.Counter("fleet_chunks_released_total"),
		mismatchC: reg.Counter("fleet_verdict_mismatch_total"),
		liveG:     reg.Gauge("fleet_workers_live"),
		ckptAgeG:  reg.Gauge("fleet_checkpoint_age_ms"),
		workers:   map[string]*workerState{},
		start:     time.Now(),
		done:      make(chan struct{}),
	}
	for i, sh := range shards {
		c.chunks = append(c.chunks, &chunk{id: i, shard: sh, holders: map[string]time.Time{}})
	}
	c.remaining = len(c.chunks)
	if cfg.CheckpointPath != "" {
		if err := c.restore(); err != nil {
			return nil, err
		}
	}
	if cfg.Store != nil {
		c.ref = cfg.Store.Register(inst.Graph)
		c.restoreFromStore()
	}
	if c.remaining == 0 {
		// Fully-complete checkpoint: finalize immediately so Final (and
		// late-joining workers) see a done sweep.
		c.finalizeLocked()
	}
	return c, nil
}

// restore loads the checkpoint (if present), validates it against the
// spec and shard plan, and marks its Done chunks complete.
func (c *Coordinator) restore() error {
	ck, err := LoadCheckpoint(c.cfg.CheckpointPath)
	if err != nil {
		if os.IsNotExist(err) {
			return nil // fresh sweep; first completion creates the file
		}
		return err
	}
	if ck.Spec != c.spec {
		return fmt.Errorf("fleet: checkpoint %s is for a different instance (%+v, want %+v)",
			c.cfg.CheckpointPath, ck.Spec, c.spec)
	}
	if len(ck.Chunks) != len(c.chunks) {
		return fmt.Errorf("fleet: checkpoint %s has %d chunks, shard plan has %d",
			c.cfg.CheckpointPath, len(ck.Chunks), len(c.chunks))
	}
	for i := range ck.Chunks {
		st := &ck.Chunks[i]
		ch := c.chunks[i]
		if st.ID != ch.id || st.Shard != ch.shard {
			return fmt.Errorf("fleet: checkpoint %s chunk %d does not match the shard plan",
				c.cfg.CheckpointPath, i)
		}
		if !st.Done {
			continue
		}
		ch.reports = st.Reports
		ch.digests = st.Digests
		ch.doneBy = st.DoneBy
		ch.done = true
		c.remaining--
	}
	c.resumed = true
	c.lastCkpt = time.Now()
	return nil
}

// chunkKey names a chunk's verdict blob on the instance's store slot. The
// graph itself is content-addressed by the slot, so the key only has to
// pin the sweep parameters that shape chunk verdicts (k, fault model,
// orbit reduction) and the chunk coordinates.
func (c *Coordinator) chunkKey(ch *chunk) string {
	return fmt.Sprintf("fleet/k%d/merge%t/sym%t/chunk/%d:%d-%d",
		c.spec.K, c.spec.Merge, c.spec.Symmetry, ch.shard.Size, ch.shard.From, ch.shard.To)
}

// restoreFromStore marks chunks whose verdict blob survives in the store
// as done without leasing them. This is the fleet's content-keyed resume
// path: it works with no checkpoint file at all, and across instances
// that are isomorphic relabelings of each other. Blob reports get the
// same re-trust treatment as checkpoint reports (they are merged, and a
// redundancy mismatch on a fresh copy would still be flagged).
func (c *Coordinator) restoreFromStore() {
	for _, ch := range c.chunks {
		if ch.done {
			continue
		}
		b, ok := c.ref.Blob(c.chunkKey(ch))
		if !ok {
			continue
		}
		rep := &verify.Report{}
		if err := json.Unmarshal(b, rep); err != nil || rep.Interrupted {
			continue
		}
		ch.reports = []*verify.Report{rep}
		ch.digests = []string{Digest(rep)}
		ch.doneBy = []string{"store"}
		ch.done = true
		c.remaining--
		c.fromStore++
	}
	if c.fromStore > 0 {
		c.resumed = true
	}
}

// Handler returns the coordinator's HTTP API under /v1/.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/job", c.handleJob)
	mux.HandleFunc("/v1/lease", c.handleLease)
	mux.HandleFunc("/v1/complete", c.handleComplete)
	mux.HandleFunc("/v1/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("/v1/status", c.handleStatus)
	return mux
}

func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, JobResponse{Spec: c.spec, LeaseTTLMS: c.cfg.LeaseTTL.Milliseconds()})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !readJSON(w, r, &req) {
		return
	}
	writeJSON(w, c.lease(req.WorkerID))
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !readJSON(w, r, &req) {
		return
	}
	writeJSON(w, CompleteResponse{Accepted: c.complete(req)})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !readJSON(w, r, &req) {
		return
	}
	writeJSON(w, c.heartbeat(req))
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, c.Status())
}

// lease grants the requesting worker a chunk. Two passes: the strict one
// refuses to give a worker a chunk it already holds or already completed
// a copy of (redundant copies from distinct workers catch more classes
// of bug); the relaxed one drops the completed-a-copy restriction so a
// fleet smaller than Redundancy still makes progress.
func (c *Coordinator) lease(workerID string) LeaseResponse {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touch(workerID, now)
	c.expireLeases(now)
	if c.remaining == 0 {
		return LeaseResponse{Done: true}
	}
	ch := c.leasable(workerID, true)
	if ch == nil {
		ch = c.leasable(workerID, false)
	}
	if ch == nil {
		return LeaseResponse{Wait: true}
	}
	ch.holders[workerID] = now.Add(c.cfg.LeaseTTL)
	c.leases++
	c.leasedC.Inc()
	if ch.sp == nil {
		ch.sp = span.Start(nil, "fleet-chunk")
		ch.sp.SetInt("chunk", int64(ch.id)).SetInt("size", int64(ch.shard.Size)).
			SetInt("from", ch.shard.From).SetInt("ranks", ch.shard.Ranks())
	}
	ch.sp.Eventf("lease", "worker=%s copy=%d", workerID, len(ch.reports)+len(ch.holders))
	return LeaseResponse{ChunkID: ch.id, Shard: ch.shard}
}

func (c *Coordinator) leasable(workerID string, strict bool) *chunk {
	for _, ch := range c.chunks {
		if ch.done || len(ch.reports)+len(ch.holders) >= c.spec.Redundancy {
			continue
		}
		if _, holds := ch.holders[workerID]; holds {
			continue
		}
		if strict && contains(ch.doneBy, workerID) {
			continue
		}
		return ch
	}
	return nil
}

// complete accepts one chunk verdict copy. Late copies (the chunk
// already completed via redundancy or a re-lease) and interrupted
// partials are not accepted — the worker just moves on; soundness never
// depends on which copy won. Completion of the final copy cross-checks
// the duplicate digests, persists the checkpoint, and — for the last
// chunk — finalizes the merged report.
func (c *Coordinator) complete(req CompleteRequest) bool {
	if req.Report == nil || req.ChunkID < 0 || req.ChunkID >= len(c.chunks) {
		return false
	}
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touch(req.WorkerID, now)
	ch := c.chunks[req.ChunkID]
	delete(ch.holders, req.WorkerID)
	if ch.done || req.Report.Interrupted {
		return false
	}
	ch.reports = append(ch.reports, req.Report)
	ch.digests = append(ch.digests, Digest(req.Report))
	ch.doneBy = append(ch.doneBy, req.WorkerID)
	if ch.sp != nil {
		ch.sp.Eventf("complete", "worker=%s copies=%d/%d", req.WorkerID, len(ch.reports), c.spec.Redundancy)
	}
	if len(ch.reports) < c.spec.Redundancy {
		return true
	}

	status := span.OK
	for i := 1; i < len(ch.digests); i++ {
		if ch.digests[i] != ch.digests[0] {
			c.mismatches++
			c.mismatchC.Inc()
			c.mismatchRecs = append(c.mismatchRecs, verify.FaultSetRecord{
				Err: fmt.Sprintf("fleet: chunk %d (size=%d ranks=[%d,%d)): duplicate verdicts disagree (workers %v)",
					ch.id, ch.shard.Size, ch.shard.From, ch.shard.To, ch.doneBy),
			})
			span.Trip(span.AnomalySolverBug,
				fmt.Sprintf("fleet: chunk %d duplicate verdict mismatch", ch.id))
			status = span.Errored
			break
		}
	}
	ch.done = true
	c.remaining--
	c.doneC.Inc()
	if ch.sp != nil {
		ch.sp.End(status)
		ch.sp = nil
	}
	if c.ref != nil {
		if b, err := json.Marshal(ch.reports[0]); err == nil {
			c.ref.PutBlob(c.chunkKey(ch), b)
			// Flush per completion: a SIGKILLed coordinator resumes from
			// the store even when the checkpoint write never happened.
			c.cfg.Store.Flush()
		}
	}
	c.checkpointLocked()
	if c.remaining == 0 {
		c.finalizeLocked()
	}
	return true
}

func (c *Coordinator) heartbeat(req HeartbeatRequest) HeartbeatResponse {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touch(req.WorkerID, now)
	c.expireLeases(now)
	var resp HeartbeatResponse
	for _, id := range req.ChunkIDs {
		if id < 0 || id >= len(c.chunks) {
			continue
		}
		ch := c.chunks[id]
		if _, holds := ch.holders[req.WorkerID]; holds && !ch.done {
			ch.holders[req.WorkerID] = now.Add(c.cfg.LeaseTTL)
		} else {
			resp.Lost = append(resp.Lost, id)
		}
	}
	return resp
}

// expireLeases reclaims leases whose holders went quiet: the chunk
// becomes leasable again immediately. Called under mu from every request
// path, so a dead worker's chunks re-lease as soon as any live worker
// next asks for work — no background reaper thread to die with the
// coordinator.
func (c *Coordinator) expireLeases(now time.Time) {
	for _, ch := range c.chunks {
		if ch.done {
			continue
		}
		for worker, expiry := range ch.holders {
			if now.After(expiry) {
				delete(ch.holders, worker)
				c.releases++
				c.releasedC.Inc()
				if ch.sp != nil {
					ch.sp.Eventf("release", "worker=%s lease expired", worker)
				}
			}
		}
	}
}

func (c *Coordinator) touch(workerID string, now time.Time) {
	ws := c.workers[workerID]
	if ws == nil {
		ws = &workerState{}
		c.workers[workerID] = ws
	}
	ws.lastSeen = now
}

// checkpointLocked persists the current chunk ledger. Failures are
// recorded on the status (age stays stale) but do not abort the sweep:
// a missing checkpoint only costs resume granularity, never soundness.
func (c *Coordinator) checkpointLocked() {
	if c.cfg.CheckpointPath == "" {
		return
	}
	ck := &Checkpoint{Spec: c.spec, Chunks: make([]ChunkState, len(c.chunks))}
	for i, ch := range c.chunks {
		st := ChunkState{ID: ch.id, Shard: ch.shard, Done: ch.done}
		if ch.done {
			st.Reports = ch.reports
			st.Digests = ch.digests
			st.DoneBy = ch.doneBy
		}
		ck.Chunks[i] = st
	}
	if err := ck.Save(c.cfg.CheckpointPath); err == nil {
		c.lastCkpt = time.Now()
		c.ckptAgeG.Set(0)
	}
}

// finalizeLocked merges one verdict copy per chunk (commutative, so the
// completion order that actually happened is irrelevant), appends any
// redundancy-mismatch records as solver bugs, and publishes the result.
func (c *Coordinator) finalizeLocked() {
	rep := &verify.Report{GraphName: c.g.Name(), K: c.spec.K}
	for _, ch := range c.chunks {
		if len(ch.reports) > 0 {
			verify.MergeReports(rep, ch.reports[0], c.cfg.MaxRecorded)
		}
	}
	if len(c.mismatchRecs) > 0 {
		verify.MergeReports(rep, &verify.Report{SolverBugs: c.mismatchRecs}, c.cfg.MaxRecorded)
	}
	rep.Duration = time.Since(c.start)
	c.result = &Result{
		Report:          rep,
		Resumed:         c.resumed,
		ChunksTotal:     len(c.chunks),
		ChunksCompleted: len(c.chunks) - c.remaining,
		ChunksFromStore: c.fromStore,
		Leases:          c.leases,
		Releases:        c.releases,
		Mismatches:      c.mismatches,
		WorkersSeen:     len(c.workers),
		Redundancy:      c.spec.Redundancy,
	}
	close(c.done)
}

// Status snapshots the live sweep accounting and refreshes the liveness
// and checkpoint-age gauges.
func (c *Coordinator) Status() Status {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLeases(now)
	st := Status{
		Done:            c.remaining == 0,
		Resumed:         c.resumed,
		ChunksTotal:     len(c.chunks),
		ChunksCompleted: len(c.chunks) - c.remaining,
		ChunksFromStore: c.fromStore,
		Leases:          c.leases,
		Releases:        c.releases,
		Mismatches:      c.mismatches,
		WorkersSeen:     len(c.workers),
		CheckpointAgeMS: -1,
	}
	for _, ch := range c.chunks {
		if !ch.done && len(ch.holders) > 0 {
			st.ChunksLeased++
		}
	}
	for _, ws := range c.workers {
		if now.Sub(ws.lastSeen) <= c.cfg.LeaseTTL {
			st.WorkersLive++
		}
	}
	if !c.lastCkpt.IsZero() {
		st.CheckpointAgeMS = now.Sub(c.lastCkpt).Milliseconds()
	}
	c.liveG.Set(int64(st.WorkersLive))
	if st.CheckpointAgeMS >= 0 {
		c.ckptAgeG.Set(st.CheckpointAgeMS)
	}
	return st
}

// Resumed reports whether the coordinator started from a checkpoint.
func (c *Coordinator) Resumed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resumed
}

// Done returns a channel closed when every chunk has completed.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Final blocks until the sweep completes and returns the merged result.
func (c *Coordinator) Final() *Result {
	<-c.done
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.result
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}
