package fleet

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"gdpn/internal/verify"
)

// ChunkState is one chunk's durable record: its shard coordinates and,
// once complete, every accepted verdict copy. Only fully-complete chunks
// (all Redundancy copies in, digests compared) are marked Done; a chunk
// interrupted mid-verification leaves no partial state, so resume never
// double-counts or half-counts a chunk.
type ChunkState struct {
	ID    int          `json:"id"`
	Shard verify.Shard `json:"shard"`
	Done  bool         `json:"done"`
	// Reports holds the accepted verdict copies (len == Redundancy when
	// Done). Merging uses only the first — the digest cross-check already
	// proved the copies agree (or recorded a mismatch).
	Reports []*verify.Report `json:"reports,omitempty"`
	// Digests are the canonical verdict digests of Reports, kept so a
	// resumed coordinator can re-compare without re-deriving.
	Digests []string `json:"digests,omitempty"`
	// DoneBy lists the workers whose copies were accepted.
	DoneBy []string `json:"done_by,omitempty"`
}

// Checkpoint is the coordinator's durable progress file: the job spec it
// was started with plus per-chunk completion state. It is written
// atomically (temp file + rename) after every chunk completion, so a
// SIGKILLed coordinator restarted on the same path resumes from the last
// completed chunk instead of re-enumerating.
type Checkpoint struct {
	Spec   JobSpec      `json:"spec"`
	Chunks []ChunkState `json:"chunks"`
}

// Save writes the checkpoint atomically: a rename either fully replaces
// the previous file or leaves it untouched, so a reader (or a resuming
// coordinator) never sees a torn checkpoint.
func (c *Checkpoint) Save(path string) error {
	b, err := json.MarshalIndent(c, "", " ")
	if err != nil {
		return fmt.Errorf("fleet: encode checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("fleet: checkpoint temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("fleet: write checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("fleet: close checkpoint: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("fleet: commit checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads a checkpoint written by Save.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var c Checkpoint
	if err := json.Unmarshal(b, &c); err != nil {
		return nil, fmt.Errorf("fleet: decode checkpoint %s: %w", path, err)
	}
	return &c, nil
}

// CompletedChunks counts the Done chunks.
func (c *Checkpoint) CompletedChunks() int {
	n := 0
	for i := range c.Chunks {
		if c.Chunks[i].Done {
			n++
		}
	}
	return n
}

// MergedReport merges one verdict copy per Done chunk into a single
// report. Because verify.MergeReports is commutative and associative,
// the result is independent of chunk order, completion order, and how
// many save/load cycles the checkpoint went through — the property the
// round-trip tests pin.
func (c *Checkpoint) MergedReport(graphName string, k, maxRec int) *verify.Report {
	rep := &verify.Report{GraphName: graphName, K: k}
	for i := range c.Chunks {
		ch := &c.Chunks[i]
		if !ch.Done || len(ch.Reports) == 0 {
			continue
		}
		verify.MergeReports(rep, ch.Reports[0], maxRec)
	}
	return rep
}

// Digest canonically summarizes the verdict-relevant fields of a chunk
// report: everything the enumeration decides, nothing that timing or
// scheduling decides. Two correct solvers verifying the same chunk must
// produce equal digests; an inequality therefore flags a solver bug (or
// a corrupted worker), not an expected divergence.
func Digest(rep *verify.Report) string {
	b, err := json.Marshal(struct {
		Checked     int64                   `json:"c"`
		Represented int64                   `json:"r"`
		Failures    int64                   `json:"f"`
		Unknowns    int64                   `json:"u"`
		FRecs       []verify.FaultSetRecord `json:"fr,omitempty"`
		URecs       []verify.FaultSetRecord `json:"ur,omitempty"`
		Bugs        []verify.FaultSetRecord `json:"bg,omitempty"`
	}{rep.Checked, rep.Represented, rep.FailureCount, rep.UnknownCount,
		rep.Failures, rep.Unknowns, rep.SolverBugs})
	if err != nil {
		// Marshal of these plain structs cannot fail; keep the signature
		// ergonomic for callers.
		return "unencodable:" + err.Error()
	}
	return string(b)
}
