package baseline_test

import (
	"math"
	"testing"

	"gdpn/internal/baseline"
	"gdpn/internal/bitset"
	"gdpn/internal/construct"
	"gdpn/internal/embed"
	"gdpn/internal/graph"
	"gdpn/internal/verify"
)

func TestHayesCycleStructure(t *testing.T) {
	g := baseline.HayesCycle(12, 4)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 16 || g.CountKind(graph.Processor) != 16 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Offsets {1,2,3}: 6-regular.
	for _, p := range g.Processors() {
		if g.Degree(p) != 6 {
			t.Fatalf("degree %d, want 6", g.Degree(p))
		}
	}
	// Same maximum degree as the paper's construction (§3.4 remark).
	gn, _, err := construct.Asymptotic(22, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.MaxProcessorDegree() != gn.MaxProcessorDegree() {
		t.Fatalf("Hayes degree %d vs paper degree %d", g.MaxProcessorDegree(), gn.MaxProcessorDegree())
	}
}

func TestHayesCycleOddK(t *testing.T) {
	g := baseline.HayesCycle(13, 5) // m=18, offsets {1,2,3,9(bisector)}
	for _, p := range g.Processors() {
		if g.Degree(p) != 7 {
			t.Fatalf("degree %d, want 7 (2·3 + bisector)", g.Degree(p))
		}
	}
}

func TestHayesCycleSurvivesFaults(t *testing.T) {
	// The unlabeled guarantee: after ≤ k faults a C_n survives.
	const n, k = 10, 2
	g := baseline.HayesCycle(n, k)
	for _, fs := range [][]int{{}, {0}, {3, 4}, {0, 11}, {5, 6}} {
		faults := bitset.FromSlice(g.NumNodes(), fs)
		cyc, ok := baseline.FindCycle(g, faults, n, 5_000_000)
		if !ok {
			t.Fatalf("no C_%d with faults %v", n, fs)
		}
		// Validate: distinct healthy processors forming a closed walk.
		seen := map[int]bool{}
		for i, v := range cyc {
			if faults.Contains(v) || seen[v] {
				t.Fatalf("invalid cycle %v", cyc)
			}
			seen[v] = true
			if !g.HasEdge(v, cyc[(i+1)%len(cyc)]) {
				t.Fatalf("cycle uses non-edge: %v", cyc)
			}
		}
		if len(cyc) != n {
			t.Fatalf("cycle length %d", len(cyc))
		}
	}
}

func TestNaiveTerminalsNotDegreeOptimal(t *testing.T) {
	// §2 critique, measured (experiment S2a): naively attaching terminals
	// to Hayes's circulant turns out to be k-gracefully-degradable on the
	// small instances we exhaustively checked — but it EXCEEDS the optimal
	// maximum processor degree: terminal-carrying processors reach k+3
	// where the paper's construction achieves a uniform k+2. The paper's
	// contribution survives as a degree-optimality result, not a
	// feasibility one, and EXPERIMENTS.md records this empirical finding.
	const n, k = 10, 2
	g := baseline.NaiveTerminals(baseline.HayesCycle(n, k), k)
	if err := verify.CheckStandard(g, n, k); err != nil {
		t.Fatalf("naive graph should still be standard-shaped: %v", err)
	}
	rep := verify.Exhaustive(g, k, verify.Options{})
	if !rep.OK() {
		t.Fatalf("naive Hayes labeling unexpectedly failed verification: %s %v",
			rep.String(), rep.Failures)
	}
	if got := g.MaxProcessorDegree(); got != k+3 {
		t.Fatalf("naive max degree %d, want k+3 = %d", got, k+3)
	}
	if err := verify.CheckDegreeOptimal(g, n, k); err == nil {
		t.Fatal("naive labeling should NOT be degree-optimal (bound is k+2)")
	}
	// The paper's own G(10,2) achieves the optimal degree k+2 = 4.
	sol, err := construct.Design(n, k)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.CheckDegreeOptimal(sol.Graph, n, k); err != nil {
		t.Fatal(err)
	}
}

func TestFindCycleRejectsImpossible(t *testing.T) {
	g := baseline.HayesCycle(10, 2)
	if _, ok := baseline.FindCycle(g, nil, 2, 1000); ok {
		t.Fatal("length-2 cycle")
	}
	if _, ok := baseline.FindCycle(g, nil, 99, 1000); ok {
		t.Fatal("cycle longer than graph")
	}
}

func TestFindFixedPipeline(t *testing.T) {
	sol, err := construct.Design(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := sol.Graph
	// Non-graceful contract: exactly n = 6 processors even though 8 are
	// healthy.
	p, ok := baseline.FindFixedPipeline(g, nil, 6, 5_000_000)
	if !ok {
		t.Fatal("no fixed pipeline on fault-free graph")
	}
	if len(p) != 8 { // i + 6 procs + o
		t.Fatalf("fixed pipeline length %d, want 8", len(p))
	}
	if !p.IsWalk(g) || !p.Distinct() {
		t.Fatal("invalid path")
	}
	if g.Kind(p[0]) != graph.InputTerminal || g.Kind(p[len(p)-1]) != graph.OutputTerminal {
		t.Fatal("bad endpoints")
	}
	// Compare utilizations: graceful uses all 8, baseline uses 6.
	full, found := embed.FindPipeline(g, nil)
	if !found {
		t.Fatal("graceful pipeline missing")
	}
	uGraceful := baseline.Utilization(8, len(full)-2)
	uSpare := baseline.Utilization(8, len(p)-2)
	if uGraceful != 1.0 {
		t.Fatalf("graceful utilization %v", uGraceful)
	}
	if math.Abs(uSpare-0.75) > 1e-9 {
		t.Fatalf("spare utilization %v, want 0.75", uSpare)
	}
}

func TestFindFixedPipelineUnderFaults(t *testing.T) {
	sol, err := construct.Design(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := sol.Graph
	faults := bitset.FromSlice(g.NumNodes(), []int{0})
	p, ok := baseline.FindFixedPipeline(g, faults, 6, 5_000_000)
	if !ok {
		t.Fatal("no fixed pipeline with one fault")
	}
	for _, v := range p {
		if faults.Contains(v) {
			t.Fatal("pipeline visits faulty node")
		}
	}
}

func TestUtilization(t *testing.T) {
	if baseline.Utilization(0, 0) != 0 {
		t.Fatal("0/0")
	}
	if baseline.Utilization(10, 5) != 0.5 {
		t.Fatal("5/10")
	}
}

func TestHayesCyclePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { baseline.HayesCycle(2, 1) },
		func() { baseline.HayesCycle(5, 0) },
		func() { baseline.NaiveTerminals(baseline.HayesCycle(3, 1), 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			fn()
		}()
	}
}
