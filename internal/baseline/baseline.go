// Package baseline implements the prior-work comparators of §2:
//
//   - Hayes's fault-tolerant cycle (Hayes 1976 [13]): an UNLABELED
//     circulant supergraph guaranteeing a length-n cycle after ≤ k faults.
//     The paper's §3.4 circulant is a supergraph of it with the same
//     maximum degree. Attaching I/O terminals naively to a Hayes circulant
//     does NOT give a gracefully degradable pipeline — the experiment
//     suite exhibits concrete counterexample fault sets — which is the
//     paper's first critique of prior work (unlabeled models cannot
//     account for I/O devices);
//   - a non-graceful spare-based pipeline that always runs exactly n
//     processors and discards the rest, illustrating the second critique:
//     with f < k faults it wastes k−f healthy processors, while the
//     paper's constructions use all of them.
package baseline

import (
	"fmt"

	"gdpn/internal/bitset"
	"gdpn/internal/graph"
)

// HayesCycle builds Hayes's k-fault-tolerant supergraph for the target
// cycle C_n: a circulant on n+k unlabeled processor nodes with offsets
// {1, …, ⌊k/2⌋+1}, plus the bisector offset when k is odd. After any ≤ k
// node faults the survivor contains a cycle of length ≥ n.
func HayesCycle(n, k int) *graph.Graph {
	if n < 3 || k < 1 {
		panic(fmt.Sprintf("baseline: HayesCycle requires n ≥ 3, k ≥ 1 (got n=%d k=%d)", n, k))
	}
	m := n + k
	g := graph.New(fmt.Sprintf("HayesCycle(n=%d,k=%d)", n, k))
	ring := make([]int, m)
	for i := range ring {
		ring[i] = g.AddNode(graph.Processor, i)
	}
	p := k / 2
	offsets := make([]int, 0, p+2)
	for s := 1; s <= p+1 && s <= m/2; s++ {
		offsets = append(offsets, s)
	}
	if k%2 == 1 && m/2 > p+1 {
		offsets = append(offsets, m/2)
	}
	graph.AddCirculantEdges(g, ring, offsets)
	return g
}

// NaiveTerminals attaches k+1 input terminals to the first k+1 processors
// and k+1 output terminals to the last k+1 processors of g — the obvious
// way to turn an unlabeled fault-tolerant structure into a pipeline
// network. The result is node-optimal and standard-shaped but NOT
// k-gracefully-degradable (the experiments find counterexamples), which is
// why the paper's constructions place I/O connectivity explicitly.
func NaiveTerminals(g *graph.Graph, k int) *graph.Graph {
	out := g.Clone()
	out.SetName("Naive(" + g.Name() + ")")
	procs := out.Processors()
	if len(procs) < 2*(k+1) {
		panic("baseline: not enough processors for naive terminal attachment")
	}
	for j := 0; j <= k; j++ {
		out.AddEdge(out.AddNode(graph.InputTerminal, j), procs[j])
	}
	for j := 0; j <= k; j++ {
		out.AddEdge(out.AddNode(graph.OutputTerminal, j), procs[len(procs)-1-j])
	}
	return out
}

// FindCycle searches for a simple cycle of exactly `length` healthy
// processors in g \ faults, using a budgeted DFS. It demonstrates the
// unlabeled Hayes guarantee (a C_n survives) on the same fault sets for
// which the naively-labeled pipeline fails. Returns the cycle as a node
// sequence (first node not repeated) and whether one was found within the
// budget.
func FindCycle(g *graph.Graph, faults bitset.Set, length int, budget int64) ([]int, bool) {
	if length < 3 {
		return nil, false
	}
	healthy := 0
	for _, p := range g.Processors() {
		if faults == nil || !faults.Contains(p) {
			healthy++
		}
	}
	if healthy < length {
		return nil, false
	}
	inPath := bitset.New(g.NumNodes())
	path := make([]int, 0, length)
	var steps int64
	var dfs func(v, start int) bool
	dfs = func(v, start int) bool {
		if steps++; steps > budget {
			return false
		}
		path = append(path, v)
		inPath.Add(v)
		if len(path) == length {
			if g.HasEdge(v, start) {
				return true
			}
			path = path[:len(path)-1]
			inPath.Remove(v)
			return false
		}
		for _, u := range g.Neighbors(v) {
			ui := int(u)
			if g.Kind(ui) != graph.Processor || inPath.Contains(ui) {
				continue
			}
			if faults != nil && faults.Contains(ui) {
				continue
			}
			if dfs(ui, start) {
				return true
			}
		}
		path = path[:len(path)-1]
		inPath.Remove(v)
		return false
	}
	for _, s := range g.Processors() {
		if faults != nil && faults.Contains(s) {
			continue
		}
		if dfs(s, s) {
			out := append([]int(nil), path...)
			return out, true
		}
		path = path[:0]
		inPath.Clear()
	}
	return nil, false
}

// FindFixedPipeline searches for a pipeline that uses EXACTLY want
// processors (the non-graceful contract: spares beyond the design size are
// discarded even when healthy). Returns the terminal-to-terminal path.
func FindFixedPipeline(g *graph.Graph, faults bitset.Set, want int, budget int64) (graph.Path, bool) {
	if want < 1 {
		return nil, false
	}
	healthyTerm := func(p int, kind graph.Kind) int {
		for _, u := range g.Neighbors(p) {
			if g.Kind(int(u)) == kind && (faults == nil || !faults.Contains(int(u))) {
				return int(u)
			}
		}
		return -1
	}
	inPath := bitset.New(g.NumNodes())
	path := make([]int, 0, want)
	var steps int64
	var dfs func(v int) (graph.Path, bool)
	dfs = func(v int) (graph.Path, bool) {
		if steps++; steps > budget {
			return nil, false
		}
		path = append(path, v)
		inPath.Add(v)
		if len(path) == want {
			if to := healthyTerm(v, graph.OutputTerminal); to >= 0 {
				full := make(graph.Path, 0, want+2)
				full = append(full, healthyTerm(path[0], graph.InputTerminal))
				full = append(full, path...)
				full = append(full, to)
				return full, true
			}
		} else {
			for _, u := range g.Neighbors(v) {
				ui := int(u)
				if g.Kind(ui) != graph.Processor || inPath.Contains(ui) {
					continue
				}
				if faults != nil && faults.Contains(ui) {
					continue
				}
				if full, ok := dfs(ui); ok {
					return full, true
				}
			}
		}
		path = path[:len(path)-1]
		inPath.Remove(v)
		return nil, false
	}
	for _, s := range g.Processors() {
		if faults != nil && faults.Contains(s) {
			continue
		}
		if healthyTerm(s, graph.InputTerminal) < 0 {
			continue
		}
		if full, ok := dfs(s); ok {
			return full, true
		}
		path = path[:0]
		inPath.Clear()
	}
	return nil, false
}

// Utilization returns used/healthy — the fraction of healthy processors a
// reconfiguration scheme actually employs. Graceful schemes score 1.0 by
// definition; the spare-based baseline scores n/(n+k−f) after f faults.
func Utilization(healthy, used int) float64 {
	if healthy == 0 {
		return 0
	}
	return float64(used) / float64(healthy)
}
