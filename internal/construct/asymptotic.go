package construct

import (
	"fmt"

	"gdpn/internal/graph"
)

// Layout records the structural metadata of the §3.4 asymptotic
// construction: which node ids play which role. The structured
// reconfiguration solver (internal/embed) consumes it to find pipelines in
// O(n) instead of by general search.
type Layout struct {
	N int // minimum pipeline processors
	K int // fault tolerance
	M int // circulant size |C| = n - k - 2
	P int // ⌊k/2⌋; circulant offsets are 1..P+1

	// Node ids by paper label. Missing nodes (Ti[0], I[0], To[k+1],
	// O[k+1]) are -1. Slices have length k+2.
	Ti, To, I, O []int

	// C lists the circulant ring: C[j] is the node with label j,
	// j = 0..M-1. Positions 0..k+1 are the S nodes; the rest are R.
	C []int

	// HasBisector reports whether the bisector offset ⌊M/2⌋ is present
	// (k odd). When M is odd the "bisector" behaves as a regular offset
	// contributing two edges per node and the maximum degree is k+3.
	HasBisector bool
	Bisector    int
}

// SSize returns the number of S nodes (k+2).
func (l *Layout) SSize() int { return l.K + 2 }

// IsS reports whether ring position j holds an S node.
func (l *Layout) IsS(j int) bool { return j < l.K+2 }

// MinAsymptoticN returns the smallest n for which Asymptotic will build a
// graph for the given k: the circulant must have room for the offsets
// (m ≥ 2(p+2)) and the R set must be nonempty. The paper only claims
// k-graceful degradability for "sufficiently large n" (linear in k); the
// experiment suite (EXPERIMENTS.md, T317) maps where verification actually
// starts succeeding.
func MinAsymptoticN(k int) int {
	p := k / 2
	min := k + 2 + 2*(p+2) // m = n-k-2 ≥ 2p+4
	if alt := 2*k + 5; alt > min {
		min = alt // |R| = n-2k-4 ≥ 1
	}
	return min
}

// Asymptotic builds the §3.4 solution graph G_{n,k} for k ≥ 4 and
// sufficiently large n, together with its Layout. The construction:
//
//   - six label-indexed sets Ti, To, I, O (k+1 nodes each after deleting
//     Ti[0], I[0], To[k+1], O[k+1] from the extended graph), S (k+2), and
//     R (n-2k-4); C = S ∪ R
//   - chains Ti[j]—I[j]—S[j]—O[j]—To[j] where the endpoints exist
//   - cliques on I and on O
//   - a circulant on C with offsets {1..⌊k/2⌋+1}, plus the bisector
//     offset ⌊|C|/2⌋ when k is odd, minus the unit edges between S nodes
//
// The resulting graph is standard with n+3k+2 nodes. Every processor has
// degree k+2 when k is even or when n and k are both odd; when n is even
// and k odd the maximum degree is k+3, matching the Lemma 3.5 lower bound.
func Asymptotic(n, k int) (*graph.Graph, *Layout, error) {
	if k < 4 {
		return nil, nil, fmt.Errorf("construct: asymptotic construction requires k ≥ 4, got k=%d", k)
	}
	if min := MinAsymptoticN(k); n < min {
		return nil, nil, fmt.Errorf("construct: asymptotic construction requires n ≥ %d for k=%d, got n=%d", min, k, n)
	}
	m := n - k - 2
	p := k / 2
	g := graph.New(fmt.Sprintf("G(n=%d,k=%d)", n, k))
	lay := &Layout{
		N: n, K: k, M: m, P: p,
		Ti: make([]int, k+2), To: make([]int, k+2),
		I: make([]int, k+2), O: make([]int, k+2),
		C: make([]int, m),
	}

	// Ring nodes: S labels 0..k+1, R labels k+2..m-1.
	for j := 0; j < m; j++ {
		lay.C[j] = g.AddNode(graph.Processor, j)
	}
	// I (labels 1..k+1) and O (labels 0..k); label-0 input side and
	// label-(k+1) output side are the nodes deleted from the extended graph.
	for j := 0; j <= k+1; j++ {
		lay.I[j], lay.O[j], lay.Ti[j], lay.To[j] = -1, -1, -1, -1
	}
	for j := 1; j <= k+1; j++ {
		lay.I[j] = g.AddNode(graph.Processor, j)
	}
	for j := 0; j <= k; j++ {
		lay.O[j] = g.AddNode(graph.Processor, j)
	}
	for j := 1; j <= k+1; j++ {
		lay.Ti[j] = g.AddNode(graph.InputTerminal, j)
	}
	for j := 0; j <= k; j++ {
		lay.To[j] = g.AddNode(graph.OutputTerminal, j)
	}

	// Chains Ti[j]—I[j]—S[j]—O[j]—To[j].
	for j := 1; j <= k+1; j++ {
		g.AddEdge(lay.Ti[j], lay.I[j])
		g.AddEdge(lay.I[j], lay.C[j])
	}
	for j := 0; j <= k; j++ {
		g.AddEdge(lay.C[j], lay.O[j])
		g.AddEdge(lay.O[j], lay.To[j])
	}

	// Cliques on I and O.
	for a := 1; a <= k+1; a++ {
		for b := a + 1; b <= k+1; b++ {
			g.AddEdge(lay.I[a], lay.I[b])
		}
	}
	for a := 0; a <= k; a++ {
		for b := a + 1; b <= k; b++ {
			g.AddEdge(lay.O[a], lay.O[b])
		}
	}

	// Circulant on C. Offset 1 skips the S—S unit edges (both endpoints
	// with labels ≤ k+1 and label difference 1), which the construction
	// deletes.
	for i := 0; i < m; i++ {
		j := (i + 1) % m
		if i < k+1 && j < k+2 {
			continue // deleted S—S unit edge
		}
		g.AddEdge(lay.C[i], lay.C[j])
	}
	for s := 2; s <= p+1; s++ {
		for i := 0; i < m; i++ {
			g.AddEdge(lay.C[i], lay.C[(i+s)%m])
		}
	}
	if k%2 == 1 {
		lay.HasBisector = true
		lay.Bisector = m / 2
		if m%2 == 0 {
			for i := 0; i < m/2; i++ {
				g.AddEdge(lay.C[i], lay.C[i+m/2])
			}
		} else {
			for i := 0; i < m; i++ {
				g.AddEdge(lay.C[i], lay.C[(i+m/2)%m])
			}
		}
	}
	return g, lay, nil
}

// ExtendedGraph builds the §3.4 extended graph G′_{n,k}: the more regular
// supergraph from which Asymptotic deletes Ti[0], I[0], To[k+1], O[k+1] and
// the S—S unit edges. Exposed for the construction tests and ablation
// benches; it is NOT itself a standard solution graph (it has k+2 terminals
// of each kind).
func ExtendedGraph(n, k int) (*graph.Graph, error) {
	if k < 4 {
		return nil, fmt.Errorf("construct: extended graph requires k ≥ 4, got k=%d", k)
	}
	if min := MinAsymptoticN(k); n < min {
		return nil, fmt.Errorf("construct: extended graph requires n ≥ %d for k=%d", min, k)
	}
	m := n - k - 2
	p := k / 2
	g := graph.New(fmt.Sprintf("G'(n=%d,k=%d)", n, k))
	C := make([]int, m)
	I := make([]int, k+2)
	O := make([]int, k+2)
	Ti := make([]int, k+2)
	To := make([]int, k+2)
	for j := 0; j < m; j++ {
		C[j] = g.AddNode(graph.Processor, j)
	}
	for j := 0; j <= k+1; j++ {
		I[j] = g.AddNode(graph.Processor, j)
		O[j] = g.AddNode(graph.Processor, j)
		Ti[j] = g.AddNode(graph.InputTerminal, j)
		To[j] = g.AddNode(graph.OutputTerminal, j)
	}
	for j := 0; j <= k+1; j++ {
		g.AddEdge(Ti[j], I[j])
		g.AddEdge(I[j], C[j])
		g.AddEdge(C[j], O[j])
		g.AddEdge(O[j], To[j])
		for l := j + 1; l <= k+1; l++ {
			g.AddEdge(I[j], I[l])
			g.AddEdge(O[j], O[l])
		}
	}
	offsets := make([]int, 0, p+2)
	for s := 1; s <= p+1; s++ {
		offsets = append(offsets, s)
	}
	if k%2 == 1 {
		offsets = append(offsets, m/2)
	}
	graph.AddCirculantEdges(g, C, offsets)
	return g, nil
}
