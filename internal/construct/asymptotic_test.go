package construct_test

import (
	"testing"

	"gdpn/internal/bitset"
	"gdpn/internal/construct"
	"gdpn/internal/embed"
	"gdpn/internal/graph"
	"gdpn/internal/verify"
)

func TestAsymptoticRejectsBadParams(t *testing.T) {
	if _, _, err := construct.Asymptotic(100, 3); err == nil {
		t.Error("k=3 accepted; asymptotic construction requires k ≥ 4")
	}
	if _, _, err := construct.Asymptotic(construct.MinAsymptoticN(4)-1, 4); err == nil {
		t.Error("n below MinAsymptoticN accepted")
	}
	if _, err := construct.ExtendedGraph(100, 3); err == nil {
		t.Error("ExtendedGraph k=3 accepted")
	}
	if _, err := construct.ExtendedGraph(construct.MinAsymptoticN(5)-1, 5); err == nil {
		t.Error("ExtendedGraph n too small accepted")
	}
}

func TestAsymptoticG22_4Figure14(t *testing.T) {
	// Figure 14: G_{22,4} — n=22, k=4, m=16, offsets {1,2,3}.
	g, lay, err := construct.Asymptotic(22, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	mustStandard(t, g, 22, 4)
	if lay.M != 16 || lay.P != 2 || lay.HasBisector {
		t.Fatalf("layout = %+v", lay)
	}
	// k even: every processor has degree exactly k+2 = 6.
	for _, p := range g.Processors() {
		if d := g.Degree(p); d != 6 {
			t.Fatalf("processor %s degree %d, want 6", graph.NodeName(g, p), d)
		}
	}
	if err := verify.CheckDegreeOptimal(g, 22, 4); err != nil {
		t.Fatal(err)
	}
	// Total nodes: n + 3k + 2 = 36.
	if g.NumNodes() != 36 {
		t.Fatalf("nodes = %d, want 36", g.NumNodes())
	}
	// Deleted S—S unit edges; S–R unit edge (k+1, k+2) present.
	if g.HasEdge(lay.C[0], lay.C[1]) || g.HasEdge(lay.C[4], lay.C[5]) {
		t.Fatal("S—S unit edge present; should be deleted")
	}
	if !g.HasEdge(lay.C[5], lay.C[6]) {
		t.Fatal("S—R unit edge missing")
	}
	if !g.HasEdge(lay.C[0], lay.C[15]) {
		t.Fatal("wraparound unit edge S[0]—R[m-1] missing")
	}
	// Chains: Ti[j]—I[j]—S[j], S[j]—O[j]—To[j].
	for j := 1; j <= 5; j++ {
		if !g.HasEdge(lay.Ti[j], lay.I[j]) || !g.HasEdge(lay.I[j], lay.C[j]) {
			t.Fatalf("input chain broken at label %d", j)
		}
	}
	for j := 0; j <= 4; j++ {
		if !g.HasEdge(lay.C[j], lay.O[j]) || !g.HasEdge(lay.O[j], lay.To[j]) {
			t.Fatalf("output chain broken at label %d", j)
		}
	}
	// Deleted extended-graph nodes.
	if lay.I[0] != -1 || lay.Ti[0] != -1 || lay.O[5] != -1 || lay.To[5] != -1 {
		t.Fatal("label-0 input side / label-(k+1) output side should be deleted")
	}
}

func TestAsymptoticG26_5Figure15(t *testing.T) {
	// Figure 15: G_{26,5} with bisector edges. n even, k odd: m = 19 odd,
	// the bisector offset ⌊19/2⌋ = 9 contributes two edges per ring node,
	// max processor degree k+3 = 8 (forced by Lemma 3.5).
	g, lay, err := construct.Asymptotic(26, 5)
	if err != nil {
		t.Fatal(err)
	}
	mustStandard(t, g, 26, 5)
	if !lay.HasBisector || lay.Bisector != 9 || lay.M != 19 {
		t.Fatalf("layout = %+v", lay)
	}
	if got := g.MaxProcessorDegree(); got != 8 {
		t.Fatalf("max processor degree %d, want 8", got)
	}
	if err := verify.CheckDegreeOptimal(g, 26, 5); err != nil {
		t.Fatal(err)
	}
}

func TestAsymptoticOddNOddKDegree(t *testing.T) {
	// n odd, k odd: m even, true bisector, every processor degree k+2.
	g, lay, err := construct.Asymptotic(27, 5)
	if err != nil {
		t.Fatal(err)
	}
	if lay.M%2 != 0 || !lay.HasBisector {
		t.Fatalf("layout = %+v", lay)
	}
	for _, p := range g.Processors() {
		if d := g.Degree(p); d != 7 {
			t.Fatalf("processor %s degree %d, want k+2 = 7", graph.NodeName(g, p), d)
		}
	}
}

func TestAsymptoticNoFaultPipeline(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{22, 4}, {26, 5}, {40, 4}, {60, 6}, {61, 7}} {
		g, lay, err := construct.Asymptotic(tc.n, tc.k)
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
		s := embed.NewSolver(g, embed.Options{Layout: lay})
		res := s.Find(nil)
		if !res.Found {
			t.Fatalf("n=%d k=%d: no fault-free pipeline", tc.n, tc.k)
		}
		if err := verify.CheckPipeline(g, nil, res.Pipeline); err != nil {
			t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
	}
}

func TestAsymptoticRandomFaultsVerified(t *testing.T) {
	g, lay, err := construct.Asymptotic(40, 4)
	if err != nil {
		t.Fatal(err)
	}
	rep := verify.Random(g, 4, 2000, 1, verify.Options{Solver: embed.Options{Layout: lay}})
	if !rep.OK() {
		t.Fatalf("random verification failed: %s %v", rep.String(), rep.Failures)
	}
}

func TestAsymptoticStructuredMatchesBacktracking(t *testing.T) {
	// The structured solver must agree with the complete engine.
	g, lay, err := construct.Asymptotic(80, 4)
	if err != nil {
		t.Fatal(err)
	}
	structured := embed.NewSolver(g, embed.Options{Layout: lay, Method: embed.Structured})
	for seed := 0; seed < 40; seed++ {
		faults := bitset.New(g.NumNodes())
		// Deterministic pseudo-random 4-subsets.
		x := seed*2654435761 + 12345
		for c := 0; c < 4; c++ {
			x = x*1103515245 + 12345
			faults.Add(((x >> 8) & 0x7fffffff) % g.NumNodes())
		}
		res := structured.Find(faults)
		if !res.Found {
			t.Fatalf("seed %d: structured (with fallback) found no pipeline for faults %v", seed, faults.Slice())
		}
		if err := verify.CheckPipeline(g, faults, res.Pipeline); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestExtendedGraphRegularity(t *testing.T) {
	// In G′ every node keeps its full regular degree (§3.4): processors in
	// I/O/C all have degree k+2 for even k.
	g, err := construct.ExtendedGraph(22, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, p := range g.Processors() {
		if d := g.Degree(p); d != 7 {
			// I and O nodes have clique k+1 + terminal + S = k+3; C nodes
			// have 2(p+1) + I/O attachments... G′ is more regular but not
			// uniform; just check the minimum behaviour:
			if d < 6 {
				t.Fatalf("processor %s degree %d < k+2", graph.NodeName(g, p), d)
			}
		}
	}
	// G′ has n + 3k + 6 nodes... processors: m + 2(k+2); terminals 2(k+2).
	wantNodes := (22 - 4 - 2) + 4*(4+2)
	if g.NumNodes() != wantNodes {
		t.Fatalf("nodes = %d, want %d", g.NumNodes(), wantNodes)
	}
}
