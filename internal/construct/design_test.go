package construct_test

import (
	"errors"
	"testing"

	"gdpn/internal/construct"
	"gdpn/internal/verify"
)

func TestSpecialSolutionsStructure(t *testing.T) {
	cases := []struct{ n, k, wantDeg int }{
		{6, 2, 4}, {8, 2, 4}, {7, 3, 5}, {4, 3, 6},
	}
	for _, c := range cases {
		g, err := construct.Special(c.n, c.k)
		if err != nil {
			t.Fatalf("(%d,%d): %v", c.n, c.k, err)
		}
		mustStandard(t, g, c.n, c.k)
		if got := g.MaxProcessorDegree(); got != c.wantDeg {
			t.Errorf("(%d,%d): max degree %d, want %d", c.n, c.k, got, c.wantDeg)
		}
		if err := verify.CheckDegreeOptimal(g, c.n, c.k); err != nil {
			t.Errorf("(%d,%d): %v", c.n, c.k, err)
		}
		if !construct.HasSpecial(c.n, c.k) {
			t.Errorf("HasSpecial(%d,%d) = false", c.n, c.k)
		}
	}
	if _, err := construct.Special(9, 9); err == nil {
		t.Error("Special(9,9) should not exist")
	}
	if construct.HasSpecial(9, 9) {
		t.Error("HasSpecial(9,9) = true")
	}
}

func TestSpecialSolutionsGracefullyDegradable(t *testing.T) {
	// Exhaustive machine verification of the frozen specials — these are
	// the paper's Figures 10–13 existence claims.
	for _, c := range []struct{ n, k int }{{6, 2}, {8, 2}, {7, 3}, {4, 3}} {
		g, err := construct.Special(c.n, c.k)
		if err != nil {
			t.Fatal(err)
		}
		mustGD(t, g, c.k)
	}
}

func TestDesignSmallKAllN(t *testing.T) {
	// Theorems 3.13, 3.15, 3.16: for k ∈ {1,2,3}, every n ≥ 1 has a
	// degree-optimal standard solution.
	for k := 1; k <= 3; k++ {
		for n := 1; n <= 30; n++ {
			sol, err := construct.Design(n, k)
			if err != nil {
				t.Fatalf("Design(%d,%d): %v", n, k, err)
			}
			mustStandard(t, sol.Graph, n, k)
			if !sol.DegreeOptimal {
				t.Errorf("Design(%d,%d): max degree %d, bound %d — theorem claims optimality",
					n, k, sol.MaxDegree, construct.DegreeLowerBound(n, k))
			}
		}
	}
}

func TestDesignSmallKTheorem313Degrees(t *testing.T) {
	// k=1: degree 3 for odd n, 4 for even n.
	for n := 1; n <= 12; n++ {
		sol, err := construct.Design(n, 1)
		if err != nil {
			t.Fatal(err)
		}
		want := 3
		if n%2 == 0 {
			want = 4
		}
		if sol.MaxDegree != want {
			t.Errorf("k=1 n=%d: degree %d, want %d", n, sol.MaxDegree, want)
		}
	}
}

func TestDesignSmallKTheorem315Degrees(t *testing.T) {
	// k=2: degree 5 for n ∈ {2,3,5}, else 4.
	for n := 1; n <= 14; n++ {
		sol, err := construct.Design(n, 2)
		if err != nil {
			t.Fatal(err)
		}
		want := 4
		if n == 2 || n == 3 || n == 5 {
			want = 5
		}
		if sol.MaxDegree != want {
			t.Errorf("k=2 n=%d: degree %d, want %d", n, sol.MaxDegree, want)
		}
	}
}

func TestDesignSmallKTheorem316Degrees(t *testing.T) {
	// k=3: degree 5 for odd n, 6 for even n — except n=3, where the
	// optimum is k+3 = 6 by Lemma 3.11 (the theorem's n=3 case comes from
	// Lemma 3.12, not the parity family).
	for n := 1; n <= 14; n++ {
		sol, err := construct.Design(n, 3)
		if err != nil {
			t.Fatal(err)
		}
		want := 5
		if n%2 == 0 || n == 3 {
			want = 6
		}
		if sol.MaxDegree != want {
			t.Errorf("k=3 n=%d: degree %d, want %d", n, sol.MaxDegree, want)
		}
	}
}

func TestDesignedGraphsAreGD(t *testing.T) {
	// Exhaustively verify a band of designed graphs. Kept small enough for
	// the regular test run; the experiment suite covers more.
	cases := []struct{ n, k int }{
		{4, 1}, {5, 1}, {6, 1}, {9, 1},
		{4, 2}, {6, 2}, {8, 2}, {9, 2}, {10, 2}, {11, 2},
		{4, 3}, {5, 3}, {6, 3}, {7, 3},
	}
	for _, c := range cases {
		sol, err := construct.Design(c.n, c.k)
		if err != nil {
			t.Fatalf("Design(%d,%d): %v", c.n, c.k, err)
		}
		mustGD(t, sol.Graph, c.k)
	}
}

func TestDesignLargeKResidues(t *testing.T) {
	// k ≥ 4: residue-1 chains are degree-optimal for all n ≡ 1 (mod k+1).
	for _, c := range []struct{ n, k int }{{6, 4}, {11, 4}, {7, 5}, {13, 5}} {
		sol, err := construct.Design(c.n, c.k)
		if err != nil {
			t.Fatalf("Design(%d,%d): %v", c.n, c.k, err)
		}
		mustStandard(t, sol.Graph, c.n, c.k)
		if !sol.DegreeOptimal {
			t.Errorf("Design(%d,%d) not degree-optimal (degree %d)", c.n, c.k, sol.MaxDegree)
		}
		if sol.Layout != nil {
			t.Errorf("Design(%d,%d) should use a chain, not the asymptotic construction", c.n, c.k)
		}
	}
}

func TestDesignLargeKAsymptotic(t *testing.T) {
	for _, c := range []struct{ n, k int }{{22, 4}, {26, 5}, {40, 6}, {100, 8}} {
		sol, err := construct.Design(c.n, c.k)
		if err != nil {
			t.Fatalf("Design(%d,%d): %v", c.n, c.k, err)
		}
		if sol.Method != "asymptotic" || sol.Layout == nil {
			t.Errorf("Design(%d,%d): method %q, layout %v", c.n, c.k, sol.Method, sol.Layout != nil)
		}
		mustStandard(t, sol.Graph, c.n, c.k)
		if !sol.DegreeOptimal {
			t.Errorf("Design(%d,%d) not degree-optimal", c.n, c.k)
		}
	}
}

func TestDesignLargeKChainFallbacksBelowThreshold(t *testing.T) {
	// n ≡ 2, 3 (mod k+1) below the asymptotic threshold use G2/G3 chains,
	// whose degree k+3 may exceed the bound by one — documented behaviour.
	for _, c := range []struct {
		n, k       int
		wantMethod string
	}{
		{7, 4, "extend(G2)×1"}, {8, 4, "extend(G3)×1"}, {12, 4, "extend(G2)×2"},
	} {
		sol, err := construct.Design(c.n, c.k)
		if err != nil {
			t.Fatalf("Design(%d,%d): %v", c.n, c.k, err)
		}
		if sol.Method != c.wantMethod {
			t.Errorf("Design(%d,%d) method %q, want %q", c.n, c.k, sol.Method, c.wantMethod)
		}
		mustStandard(t, sol.Graph, c.n, c.k)
	}
}

func TestDesignOpenGap(t *testing.T) {
	// k=4, n=9: residue 4 mod 5, below MinAsymptoticN(4)=14 — the paper
	// has no construction here.
	_, err := construct.Design(9, 4)
	if !errors.Is(err, construct.ErrNoConstruction) {
		t.Fatalf("Design(9,4) err = %v, want ErrNoConstruction", err)
	}
	// Same residue above the threshold works (asymptotic).
	if _, err := construct.Design(14, 4); err != nil {
		t.Fatalf("Design(14,4): %v", err)
	}
}

func TestDesignRejectsBadParams(t *testing.T) {
	for _, c := range []struct{ n, k int }{{0, 1}, {1, 0}, {-1, 2}, {2, -3}} {
		if _, err := construct.Design(c.n, c.k); err == nil {
			t.Errorf("Design(%d,%d) accepted", c.n, c.k)
		}
	}
}

func TestDesignNames(t *testing.T) {
	sol, err := construct.Design(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Graph.Name() != "G(n=10,k=2)" {
		t.Fatalf("name = %q", sol.Graph.Name())
	}
	if sol.N != 10 || sol.K != 2 {
		t.Fatalf("solution metadata %d/%d", sol.N, sol.K)
	}
}
