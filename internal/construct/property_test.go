package construct_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gdpn/internal/bitset"
	"gdpn/internal/construct"
	"gdpn/internal/embed"
	"gdpn/internal/verify"
)

// Property: for every (n, k) Design accepts, the result is a standard
// graph satisfying the paper's necessary conditions, with max degree
// within one of the lower bound.
func TestQuickDesignInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		k := 1 + rng.Intn(8)
		sol, err := construct.Design(n, k)
		if err != nil {
			// Only the documented open gap may fail.
			return k >= 4 && n >= 4 && n < construct.MinAsymptoticN(k) &&
				n%(k+1) != 1%(k+1) && n%(k+1) != 2%(k+1) && n%(k+1) != 3%(k+1)
		}
		if verify.CheckStandard(sol.Graph, n, k) != nil {
			return false
		}
		if verify.CheckNecessaryConditions(sol.Graph, n, k) != nil {
			return false
		}
		bound := construct.DegreeLowerBound(n, k)
		if sol.MaxDegree < bound || sol.MaxDegree > bound+1 {
			return false
		}
		if sol.DegreeOptimal != (sol.MaxDegree == bound) {
			return false
		}
		return sol.Graph.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: every designed graph tolerates every random fault set of size
// ≤ k, and the pipeline covers all healthy processors.
func TestQuickDesignTolerance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(24)
		k := 1 + rng.Intn(4)
		sol, err := construct.Design(n, k)
		if err != nil {
			return true // open gap
		}
		solver := embed.NewSolver(sol.Graph, embed.Options{Layout: sol.Layout})
		for trial := 0; trial < 10; trial++ {
			faults := bitset.New(sol.Graph.NumNodes())
			for faults.Count() < rng.Intn(k+1) {
				faults.Add(rng.Intn(sol.Graph.NumNodes()))
			}
			r := solver.Find(faults)
			if !r.Found {
				return false
			}
			if verify.CheckPipeline(sol.Graph, faults, r.Pipeline) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Extend adds exactly k+1 processors and preserves the standard
// shape, the max degree, and the terminal counts, for any valid base.
func TestQuickExtendInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(6)
		var base *construct.Solution
		var n int
		switch rng.Intn(3) {
		case 0:
			n = 1
		case 1:
			n = 2
		default:
			n = 3
		}
		base, err := construct.Design(n, k)
		if err != nil {
			return false
		}
		ext := construct.Extend(base.Graph)
		if verify.CheckStandard(ext, n+k+1, k) != nil {
			return false
		}
		return ext.MaxDegree() == base.Graph.MaxDegree()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Merge always produces single terminals of degree exactly k+1
// and keeps the processor subgraph intact.
func TestQuickMergeInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		k := 1 + rng.Intn(3)
		sol, err := construct.Design(n, k)
		if err != nil {
			return true
		}
		m := construct.Merge(sol.Graph)
		if verify.CheckMerged(m, n, k) != nil {
			return false
		}
		// Processor subgraph preserved: same processor count and edges
		// between processors.
		pg, pm := sol.Graph.Processors(), m.Processors()
		if len(pg) != len(pm) {
			return false
		}
		for i := range pg {
			for j := i + 1; j < len(pg); j++ {
				if sol.Graph.HasEdge(pg[i], pg[j]) != m.HasEdge(pm[i], pm[j]) {
					return false
				}
			}
		}
		return m.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: the asymptotic construction has node count n+3k+2, ring size
// n-k-2, and degree exactly the lower bound, for every constructible pair.
func TestQuickAsymptoticInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 4 + rng.Intn(6)
		n := construct.MinAsymptoticN(k) + rng.Intn(60)
		g, lay, err := construct.Asymptotic(n, k)
		if err != nil {
			return false
		}
		if g.NumNodes() != n+3*k+2 || lay.M != n-k-2 {
			return false
		}
		if g.MaxProcessorDegree() != construct.DegreeLowerBound(n, k) {
			return false
		}
		return verify.CheckStandard(g, n, k) == nil && g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
