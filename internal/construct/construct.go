// Package construct implements every solution-graph construction in
// Cypher & Laing, "Gracefully Degradable Pipeline Networks" (IPPS 1997):
//
//   - G1 — the unique standard solution for n = 1 (Lemma 3.7)
//   - G2 — the unique standard solution for n = 2 (Lemma 3.9)
//   - G3 — the solution for n = 3 and any k ≥ 1 (Figures 2/3, Lemma 3.12)
//   - Extend — the Lemma 3.6 transformation G ↦ G′ for n + k + 1 nodes
//   - the special solutions of Theorems 3.15/3.16 (specials.go)
//   - the §3.4 asymptotic construction for k ≥ 4 (asymptotic.go)
//   - Merge — the fault-free-terminal model transformation of §3
//   - Design — the decision tree of Theorems 3.13/3.15/3.16 + Corollary 3.8
//
// All constructions produce *standard* graphs: node-optimal (k+1 input
// terminals, k+1 output terminals, n+k processors) with every terminal of
// degree 1.
package construct

import (
	"fmt"

	"gdpn/internal/graph"
)

// G1 returns the standard solution graph G_{1,k} of Lemma 3.7: a complete
// graph on the k+1 processor nodes, each adjacent to one input terminal and
// one output terminal (I = O). Its maximum processor degree is k+2, which is
// degree-optimal by Corollary 3.3.
func G1(k int) *graph.Graph {
	mustK(k)
	g := graph.New(fmt.Sprintf("G(n=1,k=%d)", k))
	p := make([]int, k+1)
	for j := range p {
		p[j] = g.AddNode(graph.Processor, j)
	}
	for j := range p {
		for l := j + 1; l < len(p); l++ {
			g.AddEdge(p[j], p[l])
		}
	}
	for j := range p {
		g.AddEdge(g.AddNode(graph.InputTerminal, j), p[j])
		g.AddEdge(g.AddNode(graph.OutputTerminal, j), p[j])
	}
	return g
}

// G2 returns the standard solution graph G_{2,k} of Lemma 3.9: a complete
// graph on the k+2 processor nodes. Processor a = p0 carries only an input
// terminal, processor b = p_{k+1} only an output terminal, and every other
// processor carries one of each. Its maximum processor degree is k+3, which
// is degree-optimal by Corollary 3.10.
func G2(k int) *graph.Graph {
	mustK(k)
	g := graph.New(fmt.Sprintf("G(n=2,k=%d)", k))
	p := make([]int, k+2)
	for j := range p {
		p[j] = g.AddNode(graph.Processor, j)
	}
	for j := range p {
		for l := j + 1; l < len(p); l++ {
			g.AddEdge(p[j], p[l])
		}
	}
	// Input terminals i_j attach to p_j for j = 0..k (a = p0 gets one).
	for j := 0; j <= k; j++ {
		g.AddEdge(g.AddNode(graph.InputTerminal, j), p[j])
	}
	// Output terminals o_j attach to p_{j+1} for j = 0..k (b = p_{k+1}).
	for j := 0; j <= k; j++ {
		g.AddEdge(g.AddNode(graph.OutputTerminal, j), p[j+1])
	}
	return g
}

// G3 returns the solution graph G_{3,k} defined after Lemma 3.11 and shown
// in Figures 2 (n+k even) and 3 (n+k odd): the complete graph on the k+3
// processor nodes minus the matching {(p_{2q}, p_{2q+1})}, with input
// terminals {i_0..i_{k-2}, i_k, i_{k+2}} attached to the like-indexed
// processors and output terminals {o_0..o_{k-1}, o_{k+1}} likewise. The
// indices i_{k-1}, o_k, i_{k+1}, o_{k+2} are deliberately absent. Maximum
// processor degree is k+3 for k ≥ 2 (optimal by Lemma 3.11) and k+2 for
// k = 1 (optimal by Corollary 3.2).
func G3(k int) *graph.Graph {
	mustK(k)
	g := graph.New(fmt.Sprintf("G(n=3,k=%d)", k))
	p := make([]int, k+3)
	for j := range p {
		p[j] = g.AddNode(graph.Processor, j)
	}
	// Complete graph minus the matching (p_{2q}, p_{2q+1}).
	for j := range p {
		for l := j + 1; l < len(p); l++ {
			if l == j+1 && j%2 == 0 {
				continue // matched pair, indicated by dotted ovals in the figures
			}
			g.AddEdge(p[j], p[l])
		}
	}
	for j := 0; j <= k+2; j++ {
		if j <= k-2 || j == k || j == k+2 {
			g.AddEdge(g.AddNode(graph.InputTerminal, j), p[j])
		}
	}
	for j := 0; j <= k+2; j++ {
		if j <= k-1 || j == k+1 {
			g.AddEdge(g.AddNode(graph.OutputTerminal, j), p[j])
		}
	}
	return g
}

// Extend applies the Lemma 3.6 transformation: the input terminals of g are
// relabeled as processor nodes and joined into a clique, and k+1 fresh input
// terminals are attached, one per relabeled node. If g is a standard
// k-gracefully-degradable graph for n nodes with maximum degree d, the
// result is a standard k-gracefully-degradable graph for n + k + 1 nodes
// with the same maximum degree d.
//
// The number of faults k is inferred from g's input-terminal count (a
// standard graph has exactly k+1).
func Extend(g *graph.Graph) *graph.Graph {
	out := g.Clone()
	ti := out.InputTerminals()
	if len(ti) < 2 {
		panic("construct: Extend requires a standard graph with k+1 ≥ 2 input terminals")
	}
	for _, t := range ti {
		if out.Degree(t) != 1 {
			panic("construct: Extend requires terminals of degree 1 (standard graph)")
		}
	}
	// Relabel terminals as processors and join them into a clique.
	maxLabel := -1
	for v := 0; v < out.NumNodes(); v++ {
		if out.Kind(v) == graph.Processor && out.Label(v) > maxLabel {
			maxLabel = out.Label(v)
		}
	}
	for idx, t := range ti {
		out.SetKind(t, graph.Processor)
		out.SetLabel(t, maxLabel+1+idx)
	}
	for a := range ti {
		for b := a + 1; b < len(ti); b++ {
			out.AddEdge(ti[a], ti[b])
		}
	}
	// Fresh input terminals, one per relabeled node.
	for idx, t := range ti {
		nt := out.AddNode(graph.InputTerminal, idx)
		out.AddEdge(nt, t)
	}
	out.SetName(extendName(g))
	return out
}

func extendName(g *graph.Graph) string {
	k := len(g.InputTerminals()) - 1
	n := g.CountKind(graph.Processor) - k + k + 1 // (n+k) - k + (k+1): new n = old n + k + 1
	_ = n
	return fmt.Sprintf("Extend(%s)", g.Name())
}

// ExtendTimes applies Extend l times.
func ExtendTimes(g *graph.Graph, l int) *graph.Graph {
	for ; l > 0; l-- {
		g = Extend(g)
	}
	return g
}

// Merge converts a standard solution graph into the fault-free-terminal
// model of §3: the k+1 input terminals are merged into a single input node i
// of degree k+1, and the output terminals likewise into a single output
// node o. The resulting graph provides a pipeline between i and o after any
// ≤ k processor faults, and k+1 is the minimum possible terminal degree
// (fewer neighbors could all be faulty, isolating the terminal).
func Merge(g *graph.Graph) *graph.Graph {
	out := graph.New("Merged(" + g.Name() + ")")
	// Copy processors, remembering the id mapping.
	idMap := make([]int, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		idMap[v] = -1
	}
	for _, v := range g.Processors() {
		idMap[v] = out.AddNode(graph.Processor, g.Label(v))
	}
	in := out.AddNode(graph.InputTerminal, 0)
	o := out.AddNode(graph.OutputTerminal, 0)
	for v := 0; v < g.NumNodes(); v++ {
		for _, u := range g.Neighbors(v) {
			if v >= int(u) {
				continue
			}
			a, b := mergedID(g, idMap, in, o, v), mergedID(g, idMap, in, o, int(u))
			if a != b && !out.HasEdge(a, b) {
				out.AddEdge(a, b)
			}
		}
	}
	return out
}

func mergedID(g *graph.Graph, idMap []int, in, o, v int) int {
	switch g.Kind(v) {
	case graph.InputTerminal:
		return in
	case graph.OutputTerminal:
		return o
	default:
		return idMap[v]
	}
}

func mustK(k int) {
	if k < 1 {
		panic(fmt.Sprintf("construct: k must be ≥ 1, got %d", k))
	}
}
