package construct_test

import (
	"testing"

	"gdpn/internal/construct"
	"gdpn/internal/graph"
	"gdpn/internal/verify"
)

// mustGD exhaustively verifies GD(g, k) — a failing fault set is a bug in
// either the construction or my reading of the paper.
func mustGD(t *testing.T, g *graph.Graph, k int) {
	t.Helper()
	rep := verify.Exhaustive(g, k, verify.Options{})
	if !rep.OK() {
		t.Fatalf("%s not %d-gracefully-degradable: %s; first failures: %v",
			g.Name(), k, rep.String(), rep.Failures)
	}
}

func mustStandard(t *testing.T, g *graph.Graph, n, k int) {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if err := verify.CheckStandard(g, n, k); err != nil {
		t.Fatalf("CheckStandard(%s): %v", g.Name(), err)
	}
	if err := verify.CheckNecessaryConditions(g, n, k); err != nil {
		t.Fatalf("CheckNecessaryConditions(%s): %v", g.Name(), err)
	}
}

func TestG1Structure(t *testing.T) {
	for k := 1; k <= 6; k++ {
		g := construct.G1(k)
		mustStandard(t, g, 1, k)
		// Lemma 3.7: clique on k+1 processors, each with one terminal of
		// each kind; max degree k+2 (Corollary 3.3: degree-optimal).
		if got := g.MaxProcessorDegree(); got != k+2 {
			t.Errorf("k=%d: max processor degree %d, want %d", k, got, k+2)
		}
		if err := verify.CheckDegreeOptimal(g, 1, k); err != nil {
			t.Errorf("k=%d: %v", k, err)
		}
		procs := g.Processors()
		for _, a := range procs {
			for _, b := range procs {
				if a < b && !g.HasEdge(a, b) {
					t.Errorf("k=%d: processors %d,%d not adjacent (clique required)", k, a, b)
				}
			}
		}
	}
}

func TestG1GracefullyDegradable(t *testing.T) {
	for k := 1; k <= 4; k++ {
		mustGD(t, construct.G1(k), k)
	}
}

func TestG1NotK1Degradable(t *testing.T) {
	// construct.G1(k) must NOT tolerate k+1 faults: killing all k+1 input terminals
	// leaves no pipeline start.
	g := construct.G1(2)
	rep := verify.Exhaustive(g, 3, verify.Options{})
	if rep.OK() {
		t.Fatal("construct.G1(2) should not be 3-gracefully-degradable")
	}
	if rep.UnknownCount != 0 || len(rep.SolverBugs) != 0 {
		t.Fatalf("unexpected unknowns/bugs: %s", rep.String())
	}
}

func TestG2Structure(t *testing.T) {
	for k := 1; k <= 6; k++ {
		g := construct.G2(k)
		mustStandard(t, g, 2, k)
		if got := g.MaxProcessorDegree(); got != k+3 {
			t.Errorf("k=%d: max processor degree %d, want %d", k, got, k+3)
		}
		if err := verify.CheckDegreeOptimal(g, 2, k); err != nil {
			t.Errorf("k=%d: %v", k, err)
		}
		// Exactly one processor lacks an output terminal (a) and one lacks
		// an input terminal (b).
		noIn, noOut := 0, 0
		for _, p := range g.Processors() {
			hasIn, hasOut := false, false
			for _, u := range g.Neighbors(p) {
				switch g.Kind(int(u)) {
				case graph.InputTerminal:
					hasIn = true
				case graph.OutputTerminal:
					hasOut = true
				}
			}
			if !hasIn {
				noIn++
			}
			if !hasOut {
				noOut++
			}
		}
		if noIn != 1 || noOut != 1 {
			t.Errorf("k=%d: %d processors lack input, %d lack output; want 1 and 1", k, noIn, noOut)
		}
	}
}

func TestG2GracefullyDegradable(t *testing.T) {
	for k := 1; k <= 4; k++ {
		mustGD(t, construct.G2(k), k)
	}
}

func TestG3Structure(t *testing.T) {
	for k := 1; k <= 6; k++ {
		g := construct.G3(k)
		mustStandard(t, g, 3, k)
		want := k + 3
		if k == 1 {
			want = k + 2
		}
		if got := g.MaxProcessorDegree(); got != want {
			t.Errorf("k=%d: max processor degree %d, want %d", k, got, want)
		}
		if err := verify.CheckDegreeOptimal(g, 3, k); err != nil {
			t.Errorf("k=%d: %v", k, err)
		}
		// Complete minus matching: pairs (p_{2q}, p_{2q+1}) non-adjacent.
		procs := g.Processors()
		for j := 0; j+1 < len(procs); j += 2 {
			if g.HasEdge(procs[j], procs[j+1]) {
				t.Errorf("k=%d: matched pair (p%d,p%d) should not be adjacent", k, j, j+1)
			}
		}
	}
}

func TestG3GracefullyDegradable(t *testing.T) {
	for k := 1; k <= 4; k++ {
		mustGD(t, construct.G3(k), k)
	}
}

func TestG3MissingTerminalIndices(t *testing.T) {
	// The definition omits i_{k-1}, o_k, i_{k+1}, o_{k+2}.
	for k := 2; k <= 5; k++ {
		g := construct.G3(k)
		for _, absent := range []struct {
			kind  graph.Kind
			label int
		}{
			{graph.InputTerminal, k - 1},
			{graph.OutputTerminal, k},
			{graph.InputTerminal, k + 1},
			{graph.OutputTerminal, k + 2},
		} {
			if v := g.NodeByKindLabel(absent.kind, absent.label); v != -1 {
				t.Errorf("k=%d: terminal %v %d should be absent", k, absent.kind, absent.label)
			}
		}
	}
}

func TestExtendPreservesStandardAndDegree(t *testing.T) {
	for k := 1; k <= 4; k++ {
		base := construct.G1(k)
		d := base.MaxDegree()
		ext := construct.Extend(base)
		mustStandard(t, ext, 1+k+1, k)
		if got := ext.MaxDegree(); got != d {
			t.Errorf("k=%d: Extend changed max degree %d -> %d", k, d, got)
		}
	}
}

func TestExtendGracefullyDegradable(t *testing.T) {
	// Lemma 3.6: Extend preserves k-graceful degradability.
	for k := 1; k <= 3; k++ {
		mustGD(t, construct.Extend(construct.G1(k)), k)
		mustGD(t, construct.Extend(construct.G2(k)), k)
	}
}

func TestExtendTimesChain(t *testing.T) {
	// Corollary 3.8: n = (k+1)l + 1 via repeated extension.
	k := 2
	g := construct.ExtendTimes(construct.G1(k), 2) // n = 1 + 2(k+1) = 7
	mustStandard(t, g, 7, k)
	mustGD(t, g, k)
	if err := verify.CheckDegreeOptimal(g, 7, k); err != nil {
		t.Error(err)
	}
}

func TestExtendRequiresStandard(t *testing.T) {
	g := graph.New("bad")
	p := g.AddNode(graph.Processor, 0)
	ti := g.AddNode(graph.InputTerminal, 0)
	ti2 := g.AddNode(graph.InputTerminal, 1)
	g.AddEdge(ti, p)
	g.AddEdge(ti2, p)
	g.AddEdge(ti, ti2) // terminal of degree 2: not standard
	defer func() {
		if recover() == nil {
			t.Fatal("Extend accepted a non-standard graph")
		}
	}()
	construct.Extend(g)
}

func TestExtendRequiresTwoTerminals(t *testing.T) {
	g := graph.New("one-terminal")
	p := g.AddNode(graph.Processor, 0)
	ti := g.AddNode(graph.InputTerminal, 0)
	g.AddEdge(ti, p)
	defer func() {
		if recover() == nil {
			t.Fatal("Extend accepted a single-terminal graph")
		}
	}()
	construct.Extend(g)
}

func TestMergeShape(t *testing.T) {
	for k := 1; k <= 4; k++ {
		for _, base := range []*graph.Graph{construct.G1(k), construct.G2(k), construct.G3(k)} {
			m := construct.Merge(base)
			n := base.CountKind(graph.Processor) - k
			if err := verify.CheckMerged(m, n, k); err != nil {
				t.Errorf("k=%d %s: %v", k, base.Name(), err)
			}
			if err := m.Validate(); err != nil {
				t.Errorf("k=%d: %v", k, err)
			}
		}
	}
}

func TestMergeGracefullyDegradableProcessorFaults(t *testing.T) {
	// In the merged model terminals are fault-free; faults hit processors.
	for k := 1; k <= 3; k++ {
		m := construct.Merge(construct.G2(k))
		rep := verify.Exhaustive(m, k, verify.Options{Universe: verify.ProcessorsOnly})
		if !rep.OK() {
			t.Errorf("k=%d: merged model failed: %s %v", k, rep.String(), rep.Failures)
		}
	}
}

func TestMustKPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { construct.G1(0) }, func() { construct.G2(0) }, func() { construct.G3(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("k < 1 did not panic")
				}
			}()
			fn()
		}()
	}
}
