package construct

import (
	"fmt"

	"gdpn/internal/graph"
)

// DegreeLowerBound returns the paper's lower bound on the maximum processor
// degree of ANY standard k-gracefully-degradable graph for n nodes:
//
//   - k+2 always (Lemma 3.1 / Corollary 3.2);
//   - k+3 for n = 2 (Lemma 3.9 + Corollary 3.10: the unique standard
//     solution has degree k+3);
//   - k+3 for n = 3, k > 1 (Lemma 3.11);
//   - k+3 for even n with odd k (Lemma 3.5, the parity argument);
//   - k+3 for n = 5, k = 2 (Lemma 3.14, proven by case analysis in the
//     paper and re-proven by exhaustive search in internal/search).
func DegreeLowerBound(n, k int) int {
	switch {
	case n == 2:
		return k + 3
	case n == 3 && k > 1:
		return k + 3
	case n%2 == 0 && k%2 == 1:
		return k + 3
	case n == 5 && k == 2:
		return k + 3
	default:
		return k + 2
	}
}

// Solution is a designed k-gracefully-degradable graph with its metadata.
type Solution struct {
	Graph *graph.Graph
	// Layout is non-nil when the asymptotic construction was used; it
	// enables the O(n) structured reconfiguration solver.
	Layout *Layout
	N, K   int
	// Method names the construction used ("G1", "extend(G2)×3",
	// "special", "asymptotic", ...).
	Method string
	// MaxDegree is the maximum processor degree of Graph.
	MaxDegree int
	// DegreeOptimal reports whether MaxDegree meets DegreeLowerBound(n,k).
	// It is true for every (n, k) the paper covers; extension chains used
	// to fill the k ≥ 4 residue gaps may be one above the bound.
	DegreeOptimal bool
}

// ErrNoConstruction is returned (wrapped) by Design for the (n, k)
// combinations the paper leaves open: k ≥ 4 with n below the asymptotic
// threshold and n ≢ 1, 2, 3 (mod k+1).
var ErrNoConstruction = fmt.Errorf("no construction known")

// Design returns a standard k-gracefully-degradable graph for n processors,
// following the paper's decision tree:
//
//   - n ∈ {1, 2, 3}: Lemmas 3.7, 3.9, 3.12 — any k (degree-optimal);
//   - k = 1: Theorem 3.13 — extension chains from G1/G2 (degree-optimal);
//   - k = 2: Theorem 3.15 — chains from G1/G2 plus specials G6,2 and G8,2
//     (degree-optimal, with the n ∈ {2,3,5} exceptions at k+3);
//   - k = 3: Theorem 3.16 — chains plus specials G4,3 and G7,3
//     (degree-optimal: k+2 odd n, k+3 even n);
//   - k ≥ 4: the §3.4 asymptotic construction for n ≥ MinAsymptoticN(k)
//     (degree-optimal), otherwise extension chains from G1/G2/G3 when
//     n ≡ 1, 2, 3 (mod k+1) — the G2/G3 chains may exceed the degree
//     bound by one; remaining small-n residues return ErrNoConstruction
//     (the paper leaves them open).
func Design(n, k int) (*Solution, error) {
	if n < 1 || k < 1 {
		return nil, fmt.Errorf("construct: require n ≥ 1 and k ≥ 1, got n=%d k=%d", n, k)
	}
	sol, err := design(n, k)
	if err != nil {
		return nil, err
	}
	sol.N, sol.K = n, k
	sol.MaxDegree = sol.Graph.MaxProcessorDegree()
	sol.DegreeOptimal = sol.MaxDegree == DegreeLowerBound(n, k)
	sol.Graph.SetName(fmt.Sprintf("G(n=%d,k=%d)", n, k))
	return sol, nil
}

func design(n, k int) (*Solution, error) {
	switch n {
	case 1:
		return &Solution{Graph: G1(k), Method: "G1"}, nil
	case 2:
		return &Solution{Graph: G2(k), Method: "G2"}, nil
	case 3:
		return &Solution{Graph: G3(k), Method: "G3"}, nil
	}
	switch k {
	case 1, 2, 3:
		return designSmallK(n, k)
	default:
		return designLargeK(n, k)
	}
}

// designSmallK implements Theorems 3.13, 3.15, 3.16 for n ≥ 4.
func designSmallK(n, k int) (*Solution, error) {
	// Base constructions per residue class modulo k+1, per theorem.
	type base struct {
		n     int
		build func() (*graph.Graph, error)
	}
	bases := map[int][]base{
		1: {
			{1, func() (*graph.Graph, error) { return G1(1), nil }},
			{2, func() (*graph.Graph, error) { return G2(1), nil }},
		},
		2: {
			{1, func() (*graph.Graph, error) { return G1(2), nil }},
			{5, func() (*graph.Graph, error) { return Extend(G2(2)), nil }},
			{6, func() (*graph.Graph, error) { return Special(6, 2) }},
			{8, func() (*graph.Graph, error) { return Special(8, 2) }},
		},
		3: {
			{1, func() (*graph.Graph, error) { return G1(3), nil }},
			{4, func() (*graph.Graph, error) { return Special(4, 3) }},
			{6, func() (*graph.Graph, error) { return Extend(G2(3)), nil }},
			{7, func() (*graph.Graph, error) { return Special(7, 3) }},
		},
	}
	// Pick the largest base ≤ n in the right residue class mod k+1.
	var chosen *base
	for i := range bases[k] {
		b := &bases[k][i]
		if b.n <= n && (n-b.n)%(k+1) == 0 {
			if chosen == nil || b.n > chosen.n {
				chosen = b
			}
		}
	}
	if chosen == nil {
		return nil, fmt.Errorf("construct: internal gap for n=%d k=%d: %w", n, k, ErrNoConstruction)
	}
	g, err := chosen.build()
	if err != nil {
		return nil, err
	}
	l := (n - chosen.n) / (k + 1)
	method := fmt.Sprintf("base(n=%d)", chosen.n)
	if l > 0 {
		method = fmt.Sprintf("extend(base n=%d)×%d", chosen.n, l)
	}
	return &Solution{Graph: ExtendTimes(g, l), Method: method}, nil
}

// designLargeK handles k ≥ 4, n ≥ 4.
func designLargeK(n, k int) (*Solution, error) {
	if n >= MinAsymptoticN(k) {
		// Degree-optimal and comes with a Layout, which enables the O(n)
		// structured reconfiguration solver — preferable to the extension
		// chains at scale even where both apply.
		g, lay, err := Asymptotic(n, k)
		if err != nil {
			return nil, err
		}
		return &Solution{Graph: g, Layout: lay, Method: "asymptotic"}, nil
	}
	switch n % (k + 1) {
	case 1 % (k + 1):
		// Corollary 3.8 chain: degree-optimal at k+2.
		l := (n - 1) / (k + 1)
		return &Solution{Graph: ExtendTimes(G1(k), l), Method: fmt.Sprintf("extend(G1)×%d", l)}, nil
	case 2 % (k + 1):
		l := (n - 2) / (k + 1)
		return &Solution{Graph: ExtendTimes(G2(k), l), Method: fmt.Sprintf("extend(G2)×%d", l)}, nil
	case 3 % (k + 1):
		l := (n - 3) / (k + 1)
		return &Solution{Graph: ExtendTimes(G3(k), l), Method: fmt.Sprintf("extend(G3)×%d", l)}, nil
	}
	return nil, fmt.Errorf("construct: n=%d k=%d below the asymptotic threshold %d with residue %d mod %d: %w",
		n, k, MinAsymptoticN(k), n%(k+1), k+1, ErrNoConstruction)
}
