package construct

import (
	"fmt"

	"gdpn/internal/graph"
)

// specialDef is a frozen search-derived standard solution: a processor
// subgraph plus the processors carrying the input and output terminals.
//
// The paper presents hand-drawn special solutions for these (n, k) in
// Figures 10–13 and states they were "intuitively designed and exhaustively
// verified by human and/or computer checking" (§3.3). The drawings are not
// legible in the surviving scan, so the graphs below were re-derived by the
// randomized search in internal/search (seed 1) and exhaustively verified;
// they witness the same existence claims: degree-optimal standard solutions
// at degree k+2 for (6,2), (8,2), (7,3) and k+3 for (4,3). The search tests
// re-derive equivalent witnesses from scratch on every run of the suite.
type specialDef struct {
	n, k  int
	edges [][2]int
	in    []int // processors carrying an input terminal (repeats allowed)
	out   []int // processors carrying an output terminal
}

var specials = map[[2]int]specialDef{
	{6, 2}: {
		n: 6, k: 2,
		edges: [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 5}, {1, 4}, {1, 6}, {1, 7},
			{2, 3}, {2, 6}, {3, 4}, {4, 5}, {5, 7}, {6, 7}},
		in:  []int{5, 6, 7},
		out: []int{2, 3, 4},
	},
	{8, 2}: {
		n: 8, k: 2,
		edges: [][2]int{{0, 1}, {0, 4}, {0, 5}, {0, 7}, {1, 4}, {1, 7}, {1, 8},
			{2, 3}, {2, 6}, {2, 7}, {2, 8}, {3, 4}, {3, 5}, {3, 9}, {5, 9},
			{6, 8}, {6, 9}},
		in:  []int{5, 6, 7},
		out: []int{4, 8, 9},
	},
	{7, 3}: {
		n: 7, k: 3,
		edges: [][2]int{{0, 3}, {0, 6}, {0, 7}, {0, 8}, {0, 9}, {1, 2}, {1, 3},
			{1, 4}, {1, 5}, {1, 8}, {2, 5}, {2, 7}, {2, 8}, {3, 4}, {3, 6},
			{4, 7}, {4, 9}, {5, 7}, {5, 9}, {6, 8}, {6, 9}},
		in:  []int{5, 6, 8, 9},
		out: []int{2, 3, 4, 7},
	},
	{4, 3}: {
		n: 4, k: 3,
		edges: [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}, {0, 6}, {1, 2},
			{1, 3}, {1, 4}, {1, 5}, {2, 4}, {2, 5}, {2, 6}, {3, 4}, {3, 5},
			{3, 6}, {4, 6}},
		in:  []int{1, 4, 5, 6},
		out: []int{2, 3, 5, 6},
	},
}

// HasSpecial reports whether a frozen special solution exists for (n, k).
func HasSpecial(n, k int) bool {
	_, ok := specials[[2]int{n, k}]
	return ok
}

// Special returns the frozen search-derived special solution for (n, k).
// The available pairs are (6,2), (8,2), (7,3) — degree k+2 — and (4,3) —
// degree k+3, optimal by Lemma 3.5.
func Special(n, k int) (*graph.Graph, error) {
	def, ok := specials[[2]int{n, k}]
	if !ok {
		return nil, fmt.Errorf("construct: no special solution for (n=%d, k=%d)", n, k)
	}
	g := graph.New(fmt.Sprintf("G(n=%d,k=%d)", n, k))
	for p := 0; p < def.n+def.k; p++ {
		g.AddNode(graph.Processor, p)
	}
	for _, e := range def.edges {
		g.AddEdge(e[0], e[1])
	}
	for label, p := range def.in {
		g.AddEdge(g.AddNode(graph.InputTerminal, label), p)
	}
	for label, p := range def.out {
		g.AddEdge(g.AddNode(graph.OutputTerminal, label), p)
	}
	return g, nil
}
