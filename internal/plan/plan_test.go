package plan_test

import (
	"strings"
	"testing"

	"gdpn/internal/bitset"
	"gdpn/internal/construct"
	"gdpn/internal/plan"
	"gdpn/internal/verify"
)

const mixedTopo = `{
  "pool": {"n": 12, "k": 3},
  "tenants": [
    {"name": "gold-a", "class": "gold", "weight": 3, "min_procs": 3},
    {"name": "silver-b", "class": "silver", "weight": 2, "min_procs": 2},
    {"name": "bronze-c", "class": "bronze", "weight": 1, "min_procs": 1}
  ]
}`

func mustTopo(t *testing.T, src string) *plan.Topology {
	t.Helper()
	topo, err := plan.Parse([]byte(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return topo
}

func mustPool(t *testing.T, n, k int) *construct.Solution {
	t.Helper()
	sol, err := construct.Design(n, k)
	if err != nil {
		t.Fatalf("Design(%d,%d): %v", n, k, err)
	}
	return sol
}

func TestParseValidation(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"no tenants", `{"pool":{"n":12,"k":3},"tenants":[]}`, "no tenants"},
		{"dup name", `{"pool":{"n":12,"k":3},"tenants":[{"name":"x"},{"name":"x"}]}`, "duplicate"},
		{"bad class", `{"pool":{"n":12,"k":3},"tenants":[{"name":"x","class":"platinum"}]}`, "unknown SLO class"},
		{"bad stage", `{"pool":{"n":12,"k":3},"tenants":[{"name":"x","stages":[{"kind":"warp"}]}]}`, "unknown stage"},
		{"unknown field", `{"pool":{"n":12,"k":3},"tenants":[{"name":"x","colour":"red"}]}`, "colour"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := plan.Parse([]byte(c.src))
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("err = %v, want containing %q", err, c.wantErr)
			}
		})
	}
}

func TestParseDefaults(t *testing.T) {
	topo := mustTopo(t, `{"pool":{"n":12,"k":3},"tenants":[{"name":"x"}]}`)
	ten := topo.Tenants[0]
	if ten.Class != plan.Gold || ten.Weight != 1 || ten.MinProcs != 1 ||
		ten.FrameSamples != 256 || ten.MaxPending != 64 {
		t.Fatalf("defaults not applied: %+v", ten)
	}
	if len(ten.Stages) == 0 {
		t.Fatal("default stage chain not applied")
	}
	stgs, err := ten.BuildStages()
	if err != nil || len(stgs) != len(ten.Stages) {
		t.Fatalf("BuildStages: %v (%d stages)", err, len(stgs))
	}
}

// TestPlanPartition checks the core contract: admitted segments tile the
// global interior exactly (disjoint, ordered, covering), each passing
// CheckSegment, with shares honoring floors + weighted largest remainder.
func TestPlanPartition(t *testing.T) {
	sol := mustPool(t, 12, 3)
	topo := mustTopo(t, mixedTopo)
	p := plan.NewPlanner(sol, topo)

	empty := bitset.New(sol.Graph.NumNodes())
	pl, err := p.Plan(empty, nil, nil, nil)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if len(pl.Shed) != 0 {
		t.Fatalf("unexpected shed: %+v", pl.Shed)
	}
	if len(pl.Assignments) != 3 {
		t.Fatalf("assignments = %d, want 3", len(pl.Assignments))
	}
	// G(12,3) pool has 15 processors; floors 3/2/1 leave 9 for weights
	// 3/2/1 -> +4.5/+3/+1.5 -> largest remainder gives 8/5/2.
	if pl.Capacity != 15 {
		t.Fatalf("capacity = %d, want 15", pl.Capacity)
	}
	wantSizes := []int{8, 5, 2}
	interior := pl.Global[1 : len(pl.Global)-1]
	off := 0
	for i, a := range pl.Assignments {
		if len(a.Segment) != wantSizes[i] {
			t.Fatalf("tenant %s: %d procs, want %d", a.Tenant, len(a.Segment), wantSizes[i])
		}
		for j, v := range a.Segment {
			if interior[off+j] != v {
				t.Fatalf("tenant %s segment not contiguous at offset %d", a.Tenant, off+j)
			}
		}
		off += len(a.Segment)
		if err := verify.CheckSegment(sol.Graph, empty, a.Segment, a.Segment); err != nil {
			t.Fatalf("tenant %s segment invalid: %v", a.Tenant, err)
		}
	}
	if off != pl.Capacity {
		t.Fatalf("segments cover %d of %d", off, pl.Capacity)
	}
}

// TestPlanDegradesUnderFaults replans across fault sets and checks the
// partition shrinks gracefully and the memo makes revisits free.
func TestPlanDegradesUnderFaults(t *testing.T) {
	sol := mustPool(t, 12, 3)
	topo := mustTopo(t, mixedTopo)
	p := plan.NewPlanner(sol, topo)

	procs := sol.Graph.Processors()
	faults := bitset.New(sol.Graph.NumNodes())
	empty := bitset.New(sol.Graph.NumNodes())

	pl0, err := p.Plan(empty, nil, nil, nil)
	if err != nil {
		t.Fatalf("Plan gen0: %v", err)
	}
	faults.Add(procs[0])
	pl1, err := p.Plan(faults, nil, nil, nil)
	if err != nil {
		t.Fatalf("Plan gen1: %v", err)
	}
	if pl1.Capacity != pl0.Capacity-1 {
		t.Fatalf("capacity after 1 fault = %d, want %d", pl1.Capacity, pl0.Capacity-1)
	}
	total := 0
	for _, a := range pl1.Assignments {
		if err := verify.CheckSegment(sol.Graph, faults, a.Segment, a.Segment); err != nil {
			t.Fatalf("tenant %s segment invalid: %v", a.Tenant, err)
		}
		total += len(a.Segment)
	}
	if total != pl1.Capacity {
		t.Fatalf("faulted partition covers %d of %d", total, pl1.Capacity)
	}
	if pl1.Gen != pl0.Gen+1 {
		t.Fatalf("gen = %d, want %d", pl1.Gen, pl0.Gen+1)
	}

	// Repair back to the empty fault set: the memoized solver must answer
	// from cache.
	pl2, err := p.Plan(empty, nil, nil, nil)
	if err != nil {
		t.Fatalf("Plan gen2: %v", err)
	}
	if pl2.Expansions != 0 {
		t.Fatalf("memo miss on repeated fault set: %d expansions", pl2.Expansions)
	}
	if hits, _ := p.Solver().Memo(); hits == 0 {
		t.Fatal("solver memo recorded no hits")
	}
}

// TestPlanAdmissionControl pins the shedding policy: lowest class first,
// later declaration first within a class, and explicit exclusion.
func TestPlanAdmissionControl(t *testing.T) {
	sol := mustPool(t, 12, 3) // 15 processors
	topo := mustTopo(t, `{
	  "pool": {"n": 12, "k": 3},
	  "tenants": [
	    {"name": "g", "class": "gold", "min_procs": 8},
	    {"name": "s", "class": "silver", "min_procs": 5},
	    {"name": "b1", "class": "bronze", "min_procs": 2},
	    {"name": "b2", "class": "bronze", "min_procs": 2}
	  ]
	}`)
	p := plan.NewPlanner(sol, topo)
	empty := bitset.New(sol.Graph.NumNodes())

	// Floors sum to 17 > 15: exactly one bronze must go, and it must be
	// the LATER bronze (b2).
	pl, err := p.Plan(empty, nil, nil, nil)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if len(pl.Shed) != 1 || pl.Shed[0].Tenant != "b2" {
		t.Fatalf("shed = %+v, want exactly b2", pl.Shed)
	}
	if pl.Assignment("b1") == nil || pl.Assignment("g") == nil || pl.Assignment("s") == nil {
		t.Fatalf("wrong survivors: %+v", pl.Assignments)
	}

	// Excluding the gold tenant readmits b2.
	pl2, err := p.Plan(empty, map[string]bool{"g": true}, nil, nil)
	if err != nil {
		t.Fatalf("Plan with exclude: %v", err)
	}
	if pl2.Assignment("g") != nil {
		t.Fatal("excluded tenant was placed")
	}
	if pl2.Assignment("b2") == nil {
		t.Fatal("b2 not readmitted after exclusion freed capacity")
	}
}
