package plan

import (
	"fmt"

	"gdpn/internal/bitset"
	"gdpn/internal/construct"
	"gdpn/internal/embed"
	"gdpn/internal/graph"
	"gdpn/internal/obs/span"
	"gdpn/internal/verify"
)

// Assignment is one tenant's granted placement: a contiguous segment of
// the global pipeline's interior. Because the segment is a subpath of a
// valid pipeline, it is automatically a simple path visiting every
// granted processor — the engine-side CheckSegment certificate holds by
// construction, and is still re-checked before the plan is returned.
type Assignment struct {
	Tenant string `json:"tenant"`
	Class  Class  `json:"class"`
	// Segment is the placement in pipeline order (processors only).
	Segment graph.Path `json:"segment"`
}

// Shed records a tenant left out of a plan and why.
type Shed struct {
	Tenant string `json:"tenant"`
	Class  Class  `json:"class"`
	Reason string `json:"reason"`
}

// Plan is one generation of placements over the shared pool for one fault
// set. Assignments appear in topology order and their segments partition
// the global pipeline's interior exactly: every healthy processor is
// granted to exactly one admitted tenant.
type Plan struct {
	// Gen numbers plan generations monotonically per planner.
	Gen int `json:"gen"`
	// Capacity is the healthy-processor count the plan distributed.
	Capacity int `json:"capacity"`
	// Global is the full terminal-to-terminal pipeline the segments were
	// carved from.
	Global graph.Path `json:"global"`
	// Assignments are the admitted tenants' placements.
	Assignments []Assignment `json:"assignments"`
	// Shed lists the tenants this plan could not place.
	Shed []Shed `json:"shed,omitempty"`
	// Expansions is the solver search work this plan cost (0 on a memo
	// hit — replans revisiting a known fault set are free).
	Expansions int64 `json:"expansions"`
}

// Assignment returns the named tenant's assignment, or nil if shed.
func (p *Plan) Assignment(tenant string) *Assignment {
	for i := range p.Assignments {
		if p.Assignments[i].Tenant == tenant {
			return &p.Assignments[i]
		}
	}
	return nil
}

// Planner compiles a Topology into placement Plans for successive fault
// sets. It owns the pool's only solver, configured with Options.Memo so
// repeated fault sets (churn, fault/repair cycles) replan from cache, and
// with the pool's Layout so the structured engine stays on its fast path.
// Not safe for concurrent use; the executor serializes replans.
type Planner struct {
	g      *graph.Graph
	topo   *Topology
	solver *embed.Solver
	gen    int
}

// NewPlanner builds a planner for the topology over the given pool
// solution. The topology must already be validated (Load/Parse do this).
func NewPlanner(sol *construct.Solution, topo *Topology) *Planner {
	return &Planner{
		g:      sol.Graph,
		topo:   topo,
		solver: embed.NewSolver(sol.Graph, embed.Options{Layout: sol.Layout, Memo: true}),
	}
}

// Solver exposes the shared solver for warm/memo statistics.
func (p *Planner) Solver() *embed.Solver { return p.solver }

// Plan computes placements for the given pool fault set. exclude names
// tenants the caller has already shed (budget exhaustion, operator
// action); they are skipped before admission control runs. res, when
// non-nil, bounds the solver's search (cancellation and expansion budget)
// and parent becomes the causal parent of the "plan" span.
//
// Admission control: tenants are dropped lowest class first (Bronze
// before Silver before Gold), later topology index first within a class,
// until the min_procs floors fit the healthy capacity. The remaining
// capacity beyond the floors is split by weight using largest-remainder
// rounding (ties to the earlier tenant), so shares always sum exactly to
// capacity and the segments tile the global interior with no gap.
func (p *Planner) Plan(faults bitset.Set, exclude map[string]bool, res *embed.Resources, parent *span.S) (*Plan, error) {
	sp := span.Start(parent, "plan")
	sp.SetInt("gen", int64(p.gen))
	p.solver.SetResources(res)
	p.solver.SetSpan(sp)
	r := p.solver.Find(faults)
	if !r.Found {
		sp.SetStr("error", "no pipeline")
		if r.Unknown {
			sp.End(span.Deadline)
			return nil, fmt.Errorf("plan: solver budget exhausted before a pipeline was found (%d expansions)", r.Expansions)
		}
		sp.End(span.Errored)
		return nil, fmt.Errorf("plan: no pipeline exists for this fault set (beyond design tolerance)")
	}
	interior := r.Pipeline[1 : len(r.Pipeline)-1]
	capacity := len(interior)

	pl := &Plan{
		Gen:        p.gen,
		Capacity:   capacity,
		Global:     append(graph.Path(nil), r.Pipeline...),
		Expansions: r.Expansions,
	}

	// Admission: start from every non-excluded tenant, then shed until the
	// floors fit.
	type cand struct {
		idx int
		t   *TenantSpec
	}
	var admitted []cand
	for i := range p.topo.Tenants {
		t := &p.topo.Tenants[i]
		if exclude[t.Name] {
			pl.Shed = append(pl.Shed, Shed{Tenant: t.Name, Class: t.Class, Reason: "excluded"})
			continue
		}
		admitted = append(admitted, cand{i, t})
	}
	need := 0
	for _, c := range admitted {
		need += c.t.MinProcs
	}
	for need > capacity && len(admitted) > 0 {
		// Victim: lowest class; within a class, the later declaration.
		v := 0
		for i := 1; i < len(admitted); i++ {
			if admitted[i].t.Class > admitted[v].t.Class ||
				(admitted[i].t.Class == admitted[v].t.Class && admitted[i].idx > admitted[v].idx) {
				v = i
			}
		}
		t := admitted[v].t
		pl.Shed = append(pl.Shed, Shed{
			Tenant: t.Name, Class: t.Class,
			Reason: fmt.Sprintf("insufficient capacity: floors want %d, pool has %d", need, capacity),
		})
		need -= t.MinProcs
		admitted = append(admitted[:v], admitted[v+1:]...)
	}
	sp.SetInt("capacity", int64(capacity)).SetInt("admitted", int64(len(admitted))).SetInt("shed", int64(len(pl.Shed)))
	if len(admitted) == 0 {
		sp.End(span.OK)
		return pl, nil
	}

	// Distribute the surplus beyond the floors by weight, largest
	// remainder, ties to the earlier tenant.
	shares := make([]int, len(admitted))
	totalW := 0
	for i, c := range admitted {
		shares[i] = c.t.MinProcs
		totalW += c.t.Weight
	}
	surplus := capacity - need
	if surplus > 0 && totalW > 0 {
		given := 0
		rem := make([]int, len(admitted)) // remainder numerators, scale totalW
		for i, c := range admitted {
			exact := surplus * c.t.Weight
			shares[i] += exact / totalW
			given += exact / totalW
			rem[i] = exact % totalW
		}
		for given < surplus {
			best := -1
			for i := range rem {
				if rem[i] > 0 && (best < 0 || rem[i] > rem[best]) {
					best = i // strict >: ties stay with the earlier tenant
				}
			}
			if best < 0 {
				best = 0
			}
			shares[best]++
			rem[best] = 0
			given++
		}
	} else if surplus > 0 {
		shares[0] += surplus // all weights zero is impossible post-Validate, but stay total-preserving
	}

	// Carve the interior into contiguous segments, topology order.
	off := 0
	for i, c := range admitted {
		seg := append(graph.Path(nil), interior[off:off+shares[i]]...)
		off += shares[i]
		if err := verify.CheckSegment(p.g, faults, seg, seg); err != nil {
			sp.SetStr("error", err.Error())
			sp.End(span.Errored)
			return nil, fmt.Errorf("plan: tenant %q segment failed verification: %w", c.t.Name, err)
		}
		pl.Assignments = append(pl.Assignments, Assignment{Tenant: c.t.Name, Class: c.t.Class, Segment: seg})
	}
	if off != capacity {
		sp.End(span.Errored)
		return nil, fmt.Errorf("plan: shares sum to %d, capacity is %d", off, capacity)
	}
	p.gen++
	sp.End(span.OK)
	return pl, nil
}
