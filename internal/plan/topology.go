// Package plan is the planner layer of the multi-tenant control plane:
// it compiles declarative tenant topologies (stages + SLO class + share
// weights, loaded from JSON) into placement plans over one shared
// construct.Solution pool. The planner owns the only solver: it computes
// the single global healthy pipeline for the current fault set (memoized
// across replans, so fault/repair churn revisiting a configuration costs
// one cache hit) and carves its interior into contiguous per-tenant
// segments. Each segment is therefore a Hamiltonian path of its placement
// by construction — the per-tenant graceful-degradation guarantee is
// inherited from the paper's global one rather than re-proved per tenant.
//
// The planner is pure policy: it never touches engines or frames. The
// executor (internal/control) turns plans into running pipeline.Stream
// engines and routes pool faults back here for a coordinated replan.
package plan

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"gdpn/internal/stages"
)

// Class is a tenant's SLO class. Admission control sheds strictly in
// class order: Bronze tenants are shed before Silver before Gold, and
// Bronze traffic is the only class allowed to drop frames under
// backpressure (the executor uses TrySubmit for Bronze).
type Class int

const (
	Gold Class = iota
	Silver
	Bronze
)

// ParseClass converts a topology-file class name to a Class.
func ParseClass(s string) (Class, error) {
	switch strings.ToLower(s) {
	case "gold":
		return Gold, nil
	case "silver":
		return Silver, nil
	case "bronze":
		return Bronze, nil
	}
	return 0, fmt.Errorf("plan: unknown SLO class %q (want gold, silver, or bronze)", s)
}

func (c Class) String() string {
	switch c {
	case Gold:
		return "gold"
	case Silver:
		return "silver"
	case Bronze:
		return "bronze"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// MarshalJSON emits the lowercase class name.
func (c Class) MarshalJSON() ([]byte, error) { return json.Marshal(c.String()) }

// UnmarshalJSON accepts the class name, case-insensitively.
func (c *Class) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, err := ParseClass(s)
	if err != nil {
		return err
	}
	*c = v
	return nil
}

// PoolSpec declares the shared processor pool: a G(n,k) fault-tolerant
// design with n logical processors and tolerance for k faults.
type PoolSpec struct {
	N int `json:"n"`
	K int `json:"k"`
}

// StageSpec declares one signal-processing stage. Kind selects the stage;
// the other fields are kind-specific parameters (zero values fall back to
// the kind's default).
type StageSpec struct {
	// Kind is one of: subsample, rescale, fir, moving_average, quantize,
	// lz78.
	Kind string `json:"kind"`
	// Factor is the subsample decimation factor (default 2).
	Factor int `json:"factor,omitempty"`
	// Gain/Offset parameterize rescale (default gain 1).
	Gain   float64 `json:"gain,omitempty"`
	Offset float64 `json:"offset,omitempty"`
	// Coeffs are the fir tap coefficients.
	Coeffs []float64 `json:"coeffs,omitempty"`
	// Window is the moving_average window length (default 4).
	Window int `json:"window,omitempty"`
	// Min/Max/Levels parameterize quantize (default -16..16, 256).
	Min    float64 `json:"min,omitempty"`
	Max    float64 `json:"max,omitempty"`
	Levels int     `json:"levels,omitempty"`
	// Dict is the lz78 dictionary bound (default 4096).
	Dict int `json:"dict,omitempty"`
}

// Build instantiates the stage. Each call returns a fresh instance:
// stateful stages (fir, lz78) must never be shared between tenants.
func (s StageSpec) Build() (stages.Stage, error) {
	switch strings.ToLower(s.Kind) {
	case "subsample":
		f := s.Factor
		if f == 0 {
			f = 2
		}
		if f < 1 {
			return nil, fmt.Errorf("plan: subsample factor %d < 1", f)
		}
		return stages.NewSubsample(f), nil
	case "rescale":
		g := s.Gain
		if g == 0 {
			g = 1
		}
		return &stages.Rescale{Gain: g, Offset: s.Offset}, nil
	case "fir":
		if len(s.Coeffs) == 0 {
			return nil, fmt.Errorf("plan: fir stage needs coeffs")
		}
		return stages.NewFIR(append([]float64(nil), s.Coeffs...)), nil
	case "moving_average":
		w := s.Window
		if w == 0 {
			w = 4
		}
		if w < 1 {
			return nil, fmt.Errorf("plan: moving_average window %d < 1", w)
		}
		return stages.NewMovingAverage(w), nil
	case "quantize":
		lo, hi, lv := s.Min, s.Max, s.Levels
		if lo == 0 && hi == 0 {
			lo, hi = -16, 16
		}
		if lv == 0 {
			lv = 256
		}
		if hi <= lo || lv < 2 {
			return nil, fmt.Errorf("plan: quantize wants min < max and levels >= 2 (got %g..%g, %d)", lo, hi, lv)
		}
		return stages.NewQuantize(lo, hi, lv), nil
	case "lz78":
		d := s.Dict
		if d == 0 {
			d = 4096
		}
		if d < 2 {
			return nil, fmt.Errorf("plan: lz78 dict %d < 2", d)
		}
		return stages.NewLZ78(d), nil
	}
	return nil, fmt.Errorf("plan: unknown stage kind %q", s.Kind)
}

// DefaultStages is the stage chain used when a tenant declares none: the
// paper's full video chain (subsample, rescale, FIR, quantize, LZ78).
func DefaultStages() []StageSpec {
	return []StageSpec{
		{Kind: "subsample", Factor: 2},
		{Kind: "rescale", Gain: 1.5, Offset: 0.1},
		{Kind: "fir", Coeffs: []float64{0.25, 0.5, 0.25}},
		{Kind: "quantize", Min: -16, Max: 16, Levels: 256},
		{Kind: "lz78", Dict: 4096},
	}
}

// TenantSpec declares one tenant pipeline.
type TenantSpec struct {
	// Name labels the tenant in metrics, spans, and reports. Required,
	// unique.
	Name string `json:"name"`
	// Class is the SLO class (default gold).
	Class Class `json:"class"`
	// Weight is the tenant's share of pool capacity beyond the MinProcs
	// floors, distributed by largest remainder (default 1).
	Weight int `json:"weight,omitempty"`
	// MinProcs is the smallest placement the tenant accepts; a plan that
	// cannot grant it sheds the tenant instead (default 1).
	MinProcs int `json:"min_procs,omitempty"`
	// FrameSamples is the tenant's frame size in samples (default 256).
	FrameSamples int `json:"frame_samples,omitempty"`
	// MaxPending bounds the tenant stream's submit backlog (default 64).
	MaxPending int `json:"max_pending,omitempty"`
	// Budget is the tenant's solver-expansion budget: coordinated-replan
	// search work is charged against it, and an exhausted tenant is shed.
	// 0 = unlimited.
	Budget int64 `json:"budget,omitempty"`
	// Stages is the tenant's stage chain (default DefaultStages).
	Stages []StageSpec `json:"stages,omitempty"`
}

// Topology is a declarative multi-tenant deployment: one shared pool and
// the tenants packed onto it, in priority order of declaration (earlier
// tenants win admission ties within a class).
type Topology struct {
	Pool    PoolSpec     `json:"pool"`
	Tenants []TenantSpec `json:"tenants"`
}

// Load reads and validates a topology JSON file.
func Load(path string) (*Topology, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("plan: %w", err)
	}
	return Parse(data)
}

// Parse decodes and validates a topology from JSON bytes.
func Parse(data []byte) (*Topology, error) {
	var t Topology
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("plan: parsing topology: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// Validate checks the topology's static invariants and fills defaults in
// place: every tenant gets a name-unique spec with positive weight, floor,
// frame size, backlog bound, and a buildable stage chain.
func (t *Topology) Validate() error {
	if t.Pool.N < 1 || t.Pool.K < 0 {
		return fmt.Errorf("plan: pool wants n >= 1, k >= 0 (got n=%d k=%d)", t.Pool.N, t.Pool.K)
	}
	if len(t.Tenants) == 0 {
		return fmt.Errorf("plan: topology declares no tenants")
	}
	seen := make(map[string]bool, len(t.Tenants))
	for i := range t.Tenants {
		ten := &t.Tenants[i]
		if ten.Name == "" {
			return fmt.Errorf("plan: tenant %d has no name", i)
		}
		if seen[ten.Name] {
			return fmt.Errorf("plan: duplicate tenant name %q", ten.Name)
		}
		seen[ten.Name] = true
		if ten.Class < Gold || ten.Class > Bronze {
			return fmt.Errorf("plan: tenant %q has invalid class", ten.Name)
		}
		if ten.Weight == 0 {
			ten.Weight = 1
		}
		if ten.Weight < 0 {
			return fmt.Errorf("plan: tenant %q has negative weight", ten.Name)
		}
		if ten.MinProcs == 0 {
			ten.MinProcs = 1
		}
		if ten.MinProcs < 1 {
			return fmt.Errorf("plan: tenant %q wants min_procs >= 1", ten.Name)
		}
		if ten.FrameSamples == 0 {
			ten.FrameSamples = 256
		}
		if ten.FrameSamples < 1 {
			return fmt.Errorf("plan: tenant %q wants frame_samples >= 1", ten.Name)
		}
		if ten.MaxPending == 0 {
			ten.MaxPending = 64
		}
		if ten.MaxPending < 1 {
			return fmt.Errorf("plan: tenant %q wants max_pending >= 1", ten.Name)
		}
		if ten.Budget < 0 {
			return fmt.Errorf("plan: tenant %q has negative budget", ten.Name)
		}
		if len(ten.Stages) == 0 {
			ten.Stages = DefaultStages()
		}
		for j, ss := range ten.Stages {
			if _, err := ss.Build(); err != nil {
				return fmt.Errorf("plan: tenant %q stage %d: %w", ten.Name, j, err)
			}
		}
	}
	return nil
}

// BuildStages instantiates a fresh copy of the tenant's stage chain.
func (t *TenantSpec) BuildStages() ([]stages.Stage, error) {
	out := make([]stages.Stage, len(t.Stages))
	for i, ss := range t.Stages {
		st, err := ss.Build()
		if err != nil {
			return nil, err
		}
		out[i] = st
	}
	return out, nil
}
