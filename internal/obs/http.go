package obs

import (
	"encoding/json"
	"net/http"
)

// MetricsHandler serves the Prometheus text exposition at any path it is
// mounted on (conventionally /metrics).
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// TraceHandler serves the event trace, one line per event oldest-first
// (conventionally mounted at /debug/trace). `?format=json` switches to a
// JSON array of events.
func (r *Registry) TraceHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		events := r.Trace()
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(events)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, e := range events {
			_, _ = w.Write([]byte(e.String()))
			_, _ = w.Write([]byte{'\n'})
		}
	})
}

// Mux returns a ServeMux with /metrics and /debug/trace mounted — what
// `gdpsim -metrics-addr` serves.
func (r *Registry) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.MetricsHandler())
	mux.Handle("/debug/trace", r.TraceHandler())
	return mux
}
