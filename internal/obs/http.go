package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// MetricsHandler serves the Prometheus text exposition at any path it is
// mounted on (conventionally /metrics).
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// TraceHandler serves the event trace, one line per event oldest-first
// (conventionally mounted at /debug/trace). `?format=json` switches to a
// JSON array of events.
func (r *Registry) TraceHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		events := r.Trace()
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(events)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, e := range events {
			_, _ = w.Write([]byte(e.String()))
			_, _ = w.Write([]byte{'\n'})
		}
	})
}

// MuxOption extends the mux returned by Mux. Options exist so higher
// layers (the span tracer, the SLO health document, pprof) can mount
// handlers without this package importing them — obs must stay at the
// bottom of the dependency graph.
type MuxOption func(*http.ServeMux)

// WithPprof mounts the net/http/pprof handlers under /debug/pprof/.
// Opt-in (the CLIs gate it behind a -pprof flag): profiling endpoints on
// a metrics port are a surprise in production.
func WithPprof() MuxOption {
	return func(mux *http.ServeMux) {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

// WithHandler mounts an arbitrary handler at the given pattern (the span
// tracer's /debug/spans, the SLO layer's /slo).
func WithHandler(pattern string, h http.Handler) MuxOption {
	return func(mux *http.ServeMux) { mux.Handle(pattern, h) }
}

// Mux returns a ServeMux with /metrics and /debug/trace mounted — what
// `gdpsim -metrics-addr` serves — plus whatever the options add.
func (r *Registry) Mux(opts ...MuxOption) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.MetricsHandler())
	mux.Handle("/debug/trace", r.TraceHandler())
	for _, opt := range opts {
		opt(mux)
	}
	return mux
}
