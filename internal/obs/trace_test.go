package obs

import (
	"fmt"
	"testing"
)

func TestTraceOrdering(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	for i := 0; i < 10; i++ {
		r.Eventf("e", "i=%d", i)
	}
	ev := r.Trace()
	if len(ev) != 10 {
		t.Fatalf("len = %d", len(ev))
	}
	for i, e := range ev {
		if e.Seq != uint64(i) || e.Fields != fmt.Sprintf("i=%d", i) {
			t.Fatalf("event %d = %+v", i, e)
		}
		if i > 0 && e.At < ev[i-1].At {
			t.Fatalf("timestamps not monotone: %v after %v", e.At, ev[i-1].At)
		}
	}
}

func TestTraceEviction(t *testing.T) {
	tr := newTrace(4)
	for i := 0; i < 10; i++ {
		tr.add(Event{Name: fmt.Sprintf("e%d", i)})
	}
	ev := tr.snapshot()
	if len(ev) != 4 {
		t.Fatalf("len = %d, want cap 4", len(ev))
	}
	// Oldest-first: events 6..9 survive.
	for i, e := range ev {
		want := fmt.Sprintf("e%d", 6+i)
		if e.Name != want || e.Seq != uint64(6+i) {
			t.Fatalf("slot %d = %+v, want name %s", i, e, want)
		}
	}
}

func TestTraceExactlyFull(t *testing.T) {
	tr := newTrace(3)
	for i := 0; i < 3; i++ {
		tr.add(Event{Name: fmt.Sprintf("e%d", i)})
	}
	ev := tr.snapshot()
	if len(ev) != 3 || ev[0].Name != "e0" || ev[2].Name != "e2" {
		t.Fatalf("snapshot %+v", ev)
	}
}

func TestTraceReset(t *testing.T) {
	tr := newTrace(2)
	tr.add(Event{Name: "a"})
	tr.reset()
	if len(tr.snapshot()) != 0 {
		t.Fatal("reset left events")
	}
	tr.add(Event{Name: "b"})
	ev := tr.snapshot()
	if len(ev) != 1 || ev[0].Seq != 0 {
		t.Fatalf("post-reset %+v", ev)
	}
}
