package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders every instrument in Prometheus text exposition
// format (version 0.0.4). Counters and gauges print as-is; histograms
// print as summaries with quantile labels plus _sum, _count, _min and
// _max series. Latency series record nanoseconds (the `_ns` suffix in
// the metric names documents the unit).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	counters := sortedKeys(r.counters)
	gauges := sortedKeys(r.gauges)
	histograms := sortedKeys(r.histograms)
	cm, gm, hm := r.counters, r.gauges, r.histograms
	r.mu.Unlock()

	typed := map[string]bool{}
	for _, k := range counters {
		c := cm[k]
		if !typed[c.name] {
			typed[c.name] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", c.name); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", key(c.name, c.labels), c.Value()); err != nil {
			return err
		}
	}
	for _, k := range gauges {
		g := gm[k]
		if !typed[g.name] {
			typed[g.name] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", g.name); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", key(g.name, g.labels), g.Value()); err != nil {
			return err
		}
	}
	for _, k := range histograms {
		h := hm[k]
		s := h.Snapshot()
		if !typed[h.name] {
			typed[h.name] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", h.name); err != nil {
				return err
			}
		}
		for _, q := range []struct {
			label string
			v     int64
		}{{"0.5", s.P50}, {"0.9", s.P90}, {"0.99", s.P99}} {
			name := key(h.name, sortLabels(append(append([]Label(nil), h.labels...), L("quantile", q.label))))
			if _, err := fmt.Fprintf(w, "%s %d\n", name, q.v); err != nil {
				return err
			}
		}
		base := key(h.name, h.labels)
		suffix := func(sfx string) string {
			if i := strings.IndexByte(base, '{'); i >= 0 {
				return base[:i] + sfx + base[i:]
			}
			return base + sfx
		}
		for _, line := range []struct {
			sfx string
			v   int64
		}{{"_sum", s.Sum}, {"_count", s.Count}, {"_min", s.Min}, {"_max", s.Max}} {
			if _, err := fmt.Fprintf(w, "%s %d\n", suffix(line.sfx), line.v); err != nil {
				return err
			}
		}
	}
	return nil
}

// Snapshot is the JSON-exportable point-in-time view of a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Events     []Event                      `json:"events,omitempty"`
}

// Snapshot captures every instrument value and the buffered trace. Keys
// are the canonical instrument identities (name plus labels).
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for k, c := range r.counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range r.gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range r.histograms {
		s.Histograms[k] = h.Snapshot()
	}
	r.mu.Unlock()
	s.Events = r.Trace()
	return s
}

// WriteJSON renders the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
