package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func populated() *Registry {
	r := NewRegistry()
	r.SetEnabled(true)
	r.Counter("frames_total").Add(128)
	r.Counter("repairs_total", L("tactic", "splice")).Add(2)
	r.Counter("repairs_total", L("tactic", "rewire")).Add(1)
	r.Gauge("procs_in_use").Set(11)
	h := r.Histogram("frame_latency_ns")
	for i := int64(1); i <= 100; i++ {
		h.Observe(i * 1000)
	}
	r.Eventf("fault_injected", "node=%d model=%s", 5, "uniform")
	return r
}

func TestWritePrometheus(t *testing.T) {
	r := populated()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE frames_total counter",
		"frames_total 128",
		`repairs_total{tactic="splice"} 2`,
		`repairs_total{tactic="rewire"} 1`,
		"# TYPE procs_in_use gauge",
		"procs_in_use 11",
		"# TYPE frame_latency_ns summary",
		`frame_latency_ns{quantile="0.5"}`,
		`frame_latency_ns{quantile="0.99"}`,
		"frame_latency_ns_count 100",
		"frame_latency_ns_max 100000",
		"frame_latency_ns_min 1000",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// One TYPE line per metric family, even with multiple label sets.
	if strings.Count(out, "# TYPE repairs_total counter") != 1 {
		t.Fatalf("duplicated TYPE lines:\n%s", out)
	}
}

func TestPrometheusLabeledHistogramSuffixes(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	r.Histogram("repair_ns", L("tactic", "splice")).Observe(500)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`repair_ns{quantile="0.5",tactic="splice"}`,
		`repair_ns_count{tactic="splice"} 1`,
		`repair_ns_sum{tactic="splice"} 500`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("labeled histogram missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := populated()
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal([]byte(b.String()), &s); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if s.Counters["frames_total"] != 128 {
		t.Fatalf("counters %+v", s.Counters)
	}
	if s.Counters[`repairs_total{tactic="splice"}`] != 2 {
		t.Fatalf("labeled counter lost: %+v", s.Counters)
	}
	if s.Gauges["procs_in_use"] != 11 {
		t.Fatalf("gauges %+v", s.Gauges)
	}
	hs, ok := s.Histograms["frame_latency_ns"]
	if !ok || hs.Count != 100 || hs.P50 == 0 || hs.Max != 100000 {
		t.Fatalf("histogram snapshot %+v", hs)
	}
	if len(s.Events) != 1 || s.Events[0].Name != "fault_injected" {
		t.Fatalf("events %+v", s.Events)
	}
}

func TestMetricsHandler(t *testing.T) {
	r := populated()
	srv := httptest.NewServer(r.Mux())
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 64<<10)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		return b.String()
	}

	metrics := get("/metrics")
	if !strings.Contains(metrics, "frames_total 128") ||
		!strings.Contains(metrics, `frame_latency_ns{quantile="0.5"}`) {
		t.Fatalf("/metrics:\n%s", metrics)
	}
	trace := get("/debug/trace")
	if !strings.Contains(trace, "fault_injected") || !strings.Contains(trace, "node=5") {
		t.Fatalf("/debug/trace:\n%s", trace)
	}
	var events []Event
	if err := json.Unmarshal([]byte(get("/debug/trace?format=json")), &events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Fields != "node=5 model=uniform" {
		t.Fatalf("json trace %+v", events)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(get("/metrics?format=json")), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["frames_total"] != 128 {
		t.Fatalf("json metrics %+v", snap.Counters)
	}
}
