package obs

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

func enabledHist(name string) *Histogram {
	r := NewRegistry()
	r.SetEnabled(true)
	return r.Histogram(name)
}

func TestHistogramEmpty(t *testing.T) {
	h := enabledHist("h")
	if h.Count() != 0 || h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram has nonzero stats")
	}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty quantile nonzero")
	}
}

func TestHistogramExactStats(t *testing.T) {
	h := enabledHist("h")
	for _, v := range []int64{10, 20, 30, 40} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 100 || h.Min() != 10 || h.Max() != 40 {
		t.Fatalf("count=%d sum=%d min=%d max=%d", h.Count(), h.Sum(), h.Min(), h.Max())
	}
	if h.Mean() != 25 {
		t.Fatalf("mean = %v", h.Mean())
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := enabledHist("h")
	h.Observe(-5)
	if h.Count() != 1 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("negative not clamped: %+v", h.Snapshot())
	}
}

func TestHistogramSingleValueQuantiles(t *testing.T) {
	h := enabledHist("h")
	h.Observe(1000)
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
		if got := h.Quantile(q); got != 1000 {
			t.Fatalf("Quantile(%v) = %d, want 1000 (min==max clamp)", q, got)
		}
	}
}

// TestHistogramQuantileAccuracy checks the log-bucket estimate stays
// within one octave (factor of 2) of the exact quantile on a heavy
// random workload — the designed error bound of 2^i-width buckets.
func TestHistogramQuantileAccuracy(t *testing.T) {
	h := enabledHist("h")
	rng := rand.New(rand.NewSource(1))
	values := make([]int64, 20000)
	for i := range values {
		// Log-uniform latencies from ~1µs to ~100ms in ns.
		values[i] = int64(1000 * (1 << rng.Intn(17)))
		values[i] += rng.Int63n(values[i])
		h.Observe(values[i])
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := values[int(q*float64(len(values)))]
		got := h.Quantile(q)
		if got < exact/2 || got > exact*2 {
			t.Fatalf("Quantile(%v) = %d, exact %d: outside one octave", q, got, exact)
		}
	}
	if h.Quantile(1) != values[len(values)-1] {
		t.Fatalf("Quantile(1) = %d, want exact max %d", h.Quantile(1), values[len(values)-1])
	}
	if h.Quantile(0) != values[0] {
		t.Fatalf("Quantile(0) = %d, want exact min %d", h.Quantile(0), values[0])
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	h := enabledHist("h")
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		h.Observe(rng.Int63n(1 << 30))
	}
	prev := int64(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile(%v) = %d < previous %d: not monotone", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := enabledHist("h")
	h.ObserveDuration(3 * time.Millisecond)
	if h.Sum() != int64(3*time.Millisecond) {
		t.Fatalf("sum = %d", h.Sum())
	}
	h.ObserveSince(time.Now().Add(-time.Millisecond))
	if h.Count() != 2 || h.Max() < int64(time.Millisecond) {
		t.Fatalf("ObserveSince: %+v", h.Snapshot())
	}
}

func TestHistogramSnapshot(t *testing.T) {
	h := enabledHist("h")
	for i := int64(1); i <= 100; i++ {
		h.Observe(i * 1000)
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Min != 1000 || s.Max != 100000 {
		t.Fatalf("snapshot %+v", s)
	}
	if s.P50 <= s.Min || s.P50 >= s.P99 || s.P99 > s.Max {
		t.Fatalf("quantile ordering broken: %+v", s)
	}
}
