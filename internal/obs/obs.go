// Package obs is the runtime's dependency-free observability layer:
// atomic counters and gauges, log-bucketed latency histograms with
// quantile estimation, and a bounded ring-buffer event trace, all hanging
// off a Registry that can be enabled and disabled at runtime.
//
// The design constraint is that instrumentation must be free to leave in
// hot paths: every instrument holds a pointer to its registry's enabled
// flag, and when the registry is disabled each Add/Set/Observe/Event call
// returns after a single atomic load. Call sites that would need to call
// time.Now() to produce an observation gate on Enabled() first, so a
// disabled registry costs neither clock reads nor allocations.
//
// Instruments are identified by a Prometheus-style name plus optional
// constant key/value labels; looking one up a second time returns the same
// instrument, so packages can resolve instruments at construction time and
// share them across engine instances. Exporters (Prometheus text
// exposition and a JSON snapshot, export.go) and net/http handlers
// (http.go) read a consistent point-in-time view.
//
// A process-wide Default registry, disabled by default, serves the common
// case; unit tests build private registries with NewRegistry.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry owns a set of named instruments and one event trace.
type Registry struct {
	enabled atomic.Bool
	epoch   time.Time // monotonic base for trace timestamps

	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	trace      *Trace
}

// DefaultTraceCap is the event capacity of a registry's trace ring.
const DefaultTraceCap = 1024

// NewRegistry returns a disabled registry with an empty trace ring.
func NewRegistry() *Registry {
	return &Registry{
		epoch:      time.Now(),
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
		trace:      newTrace(DefaultTraceCap),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry shared by the instrumented
// packages (pipeline, reconfig, embed, faults) and the CLIs.
func Default() *Registry { return defaultRegistry }

// SetEnabled turns the registry on or off. Instruments keep their values
// across a disable/enable cycle; disabling only stops new observations.
func (r *Registry) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether observations are being recorded. Hot paths use
// this to skip clock reads entirely when the registry is off.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// key renders the canonical identity of an instrument: name plus sorted
// constant labels, e.g. `repairs_total{tactic="splice"}`.
func key(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Label is one constant key/value pair attached to an instrument.
type Label struct{ Key, Value string }

// L is shorthand for building a Label.
func L(k, v string) Label { return Label{Key: k, Value: v} }

func sortLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Counter returns the named monotonically increasing counter, creating it
// on first use. The same (name, labels) always yields the same instrument.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	labels = sortLabels(labels)
	k := key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[k]; ok {
		return c
	}
	c := &Counter{on: &r.enabled, name: name, labels: labels}
	r.counters[k] = c
	return c
}

// Gauge returns the named instantaneous-value gauge, creating it on first
// use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	labels = sortLabels(labels)
	k := key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[k]; ok {
		return g
	}
	g := &Gauge{on: &r.enabled, name: name, labels: labels}
	r.gauges[k] = g
	return g
}

// Histogram returns the named log-bucketed histogram, creating it on
// first use.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	labels = sortLabels(labels)
	k := key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[k]; ok {
		return h
	}
	h := newHistogram(&r.enabled, name, labels)
	r.histograms[k] = h
	return h
}

// Event appends a trace event (no-op when disabled). name identifies the
// event kind ("fault_injected", "repair", …); fields is free-form
// `k=v`-style detail. The timestamp is monotonic relative to registry
// creation.
func (r *Registry) Event(name, fields string) {
	if !r.enabled.Load() {
		return
	}
	r.trace.add(Event{At: time.Since(r.epoch), Name: name, Fields: fields})
}

// Eventf is Event with fmt-style field formatting; the format arguments
// are not evaluated into a string when the registry is disabled.
func (r *Registry) Eventf(name, format string, args ...any) {
	if !r.enabled.Load() {
		return
	}
	r.trace.add(Event{At: time.Since(r.epoch), Name: name, Fields: fmt.Sprintf(format, args...)})
}

// Trace returns the buffered events, oldest first.
func (r *Registry) Trace() []Event { return r.trace.snapshot() }

// Reset zeroes every instrument and clears the trace; the enabled state
// is preserved. Meant for benchmarks and tests that reuse Default().
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.histograms {
		h.reset()
	}
	r.trace.reset()
}

// Counter is a monotonically increasing int64, safe for concurrent use.
type Counter struct {
	on     *atomic.Bool
	name   string
	labels []Label
	v      atomic.Int64
}

// Add increments the counter by d (no-op when the registry is disabled).
func (c *Counter) Add(d int64) {
	if !c.on.Load() {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous int64 value, safe for concurrent use.
type Gauge struct {
	on     *atomic.Bool
	name   string
	labels []Label
	v      atomic.Int64
}

// Set stores v (no-op when the registry is disabled).
func (g *Gauge) Set(v int64) {
	if !g.on.Load() {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by d (no-op when the registry is disabled).
func (g *Gauge) Add(d int64) {
	if !g.on.Load() {
		return
	}
	g.v.Add(d)
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }
