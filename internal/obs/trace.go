package obs

import (
	"fmt"
	"sync"
	"time"
)

// Event is one entry in the fault/repair trace.
type Event struct {
	// Seq numbers events in arrival order across the whole trace, including
	// events that have since been evicted from the ring.
	Seq uint64 `json:"seq"`
	// At is the monotonic time since registry creation.
	At time.Duration `json:"at_ns"`
	// Name is the event kind ("fault_injected", "repair", …).
	Name string `json:"name"`
	// Fields holds free-form `k=v` detail.
	Fields string `json:"fields,omitempty"`
}

// String renders one trace line: `+12.345ms fault_injected node=5`.
func (e Event) String() string {
	if e.Fields == "" {
		return fmt.Sprintf("+%-14v %s", e.At, e.Name)
	}
	return fmt.Sprintf("+%-14v %-20s %s", e.At, e.Name, e.Fields)
}

// Trace is a bounded ring buffer of events: when full, the oldest event
// is evicted. Faults and repairs are rare relative to frames, so a small
// mutex-guarded ring is cheap and keeps ordering exact.
type Trace struct {
	mu   sync.Mutex
	ring []Event
	next uint64 // total events ever added
	cap  int
}

func newTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Trace{ring: make([]Event, 0, capacity), cap: capacity}
}

func (t *Trace) add(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e.Seq = t.next
	t.next++
	if len(t.ring) < t.cap {
		t.ring = append(t.ring, e)
		return
	}
	t.ring[int(e.Seq)%t.cap] = e
}

// snapshot returns the buffered events oldest-first.
func (t *Trace) snapshot() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.ring))
	if len(t.ring) < t.cap {
		return append(out, t.ring...)
	}
	// Full ring: the oldest event sits right after the newest slot.
	start := int(t.next) % t.cap
	out = append(out, t.ring[start:]...)
	out = append(out, t.ring[:start]...)
	return out
}

func (t *Trace) reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ring = t.ring[:0]
	t.next = 0
}
