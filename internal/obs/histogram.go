package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// numBuckets covers the full non-negative int64 range: bucket i counts
// observations v with bits.Len64(v) == i, i.e. bucket 0 holds v == 0 and
// bucket i ≥ 1 holds v in [2^(i-1), 2^i).
const numBuckets = 64

// Histogram is a lock-free log₂-bucketed histogram of non-negative int64
// observations (latencies are recorded in nanoseconds). Buckets grow
// geometrically, so the relative quantile error is bounded by one octave
// and the memory cost is constant; count, sum, min and max are tracked
// exactly. Safe for concurrent use.
type Histogram struct {
	on     *atomic.Bool
	name   string
	labels []Label

	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid only when count > 0
	max     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

func newHistogram(on *atomic.Bool, name string, labels []Label) *Histogram {
	h := &Histogram{on: on, name: name, labels: labels}
	h.min.Store(int64(^uint64(0) >> 1)) // MaxInt64
	return h
}

// Observe records v; negative values are clamped to 0. No-op when the
// registry is disabled.
func (h *Histogram) Observe(v int64) {
	if !h.on.Load() {
		return
	}
	h.observe(v)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// ObserveSince records the nanoseconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(int64(time.Since(start))) }

func (h *Histogram) observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

func (h *Histogram) reset() {
	h.count.Store(0)
	h.sum.Store(0)
	h.min.Store(int64(^uint64(0) >> 1))
	h.max.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() int64 {
	if h.count.Load() == 0 {
		return 0
	}
	return h.min.Load()
}

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by locating the bucket
// holding the rank-⌈q·n⌉ observation and interpolating linearly within
// its [2^(i-1), 2^i) range; the estimate is clamped to the exact observed
// min and max, so Quantile(0) and Quantile(1) are exact.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	rank := int64(q*float64(n) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var cum int64
	for i := 0; i < numBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			est := bucketValue(i, rank-cum, c)
			if min := h.Min(); est < min {
				est = min
			}
			if max := h.max.Load(); est > max {
				est = max
			}
			return est
		}
		cum += c
	}
	return h.Max()
}

// bucketValue interpolates the value of the pos-th of c observations
// (1-based) inside bucket i.
func bucketValue(i int, pos, c int64) int64 {
	if i == 0 {
		return 0
	}
	lo := int64(1) << (i - 1)
	width := lo // bucket i spans [lo, 2·lo)
	return lo + int64(float64(width)*float64(pos)/float64(c+1))
}

// HistogramSnapshot is a consistent-enough point-in-time summary of a
// histogram, used by the exporters.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
}

// Snapshot summarizes the histogram. Concurrent observations may land
// between field reads; each field is individually consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Min:   h.Min(),
		Max:   h.Max(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
}
