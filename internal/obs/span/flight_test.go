package span

import (
	"path/filepath"
	"testing"
	"time"

	"gdpn/internal/obs"
)

func TestFlightRecorderDump(t *testing.T) {
	dir := t.TempDir()
	tr := NewTracer(32)
	reg := obs.NewRegistry()
	reg.SetEnabled(true)
	reg.Counter("bugs_total").Add(2)

	rec := &Recorder{}
	if got := rec.Trip(AnomalyDeadline, "disarmed"); got != "" {
		t.Fatalf("disarmed Trip wrote %q", got)
	}
	if err := rec.Arm(RecorderConfig{Dir: dir, Tracer: tr, Registry: reg, Cooldown: time.Nanosecond}); err != nil {
		t.Fatal(err)
	}
	if !tr.Enabled() {
		t.Fatal("arming did not enable the tracer")
	}

	root := tr.Start(nil, "remap").SetStr("op", "inject")
	tr.Start(root, "solve").End(Deadline)
	root.End(Rollback)
	reg.Counter("bugs_total").Add(3)

	path := rec.Trip(AnomalyDeadline, "node=5")
	if path == "" {
		t.Fatal("armed Trip wrote nothing")
	}
	d, err := ReadDump(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != AnomalyDeadline || d.Detail != "node=5" || d.Seq != 1 {
		t.Errorf("dump header wrong: %+v", d)
	}
	if len(d.Spans) != 2 {
		t.Fatalf("dump has %d spans, want 2", len(d.Spans))
	}
	if d.Spans[1].Name != "remap" || d.Spans[0].Parent != d.Spans[1].ID {
		t.Errorf("dump span links wrong: %+v", d.Spans)
	}
	// Counter delta is relative to the baseline captured at Arm (the +2
	// predates arming; only the +3 moved since).
	if d.CounterDeltas["bugs_total"] != 3 {
		t.Errorf("counter delta = %d, want 3", d.CounterDeltas["bugs_total"])
	}
	if d.Metrics.Counters["bugs_total"] != 5 {
		t.Errorf("snapshot counter = %d, want 5", d.Metrics.Counters["bugs_total"])
	}
}

func TestFlightRecorderCapAndCooldown(t *testing.T) {
	dir := t.TempDir()
	tr := NewTracer(8)
	rec := &Recorder{}
	if err := rec.Arm(RecorderConfig{Dir: dir, Tracer: tr, Registry: obs.NewRegistry(), MaxDumps: 2, Cooldown: time.Hour}); err != nil {
		t.Fatal(err)
	}
	first := rec.Trip(AnomalyFrameLoss, "")
	if first == "" {
		t.Fatal("first trip suppressed")
	}
	if got := rec.Trip(AnomalyFrameLoss, ""); got != "" {
		t.Fatalf("cooldown did not suppress: %q", got)
	}
	written, suppressed := rec.Dumps()
	if written != 1 || suppressed != 1 {
		t.Errorf("written=%d suppressed=%d, want 1/1", written, suppressed)
	}
	if want := filepath.Join(dir, "flight-001-frame_loss.json"); first != want {
		t.Errorf("dump path = %q, want %q", first, want)
	}
}
