package span

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"gdpn/internal/obs"
)

func TestSLOObjectiveBreach(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetEnabled(true)
	s := NewSLO(reg)
	s.SetObjective("remap", 10*time.Millisecond)
	if !s.Enabled() {
		t.Fatal("SetObjective did not enable the tracker")
	}

	for i := 0; i < 100; i++ {
		s.Observe("remap", time.Millisecond)
	}
	if br := s.Breaches(); len(br) != 0 {
		t.Fatalf("unexpected breach: %v", br)
	}
	// Push the p99 over the objective: > 1% of the window slow.
	for i := 0; i < 10; i++ {
		s.Observe("remap", 50*time.Millisecond)
	}
	br := s.Breaches()
	if len(br) != 1 {
		t.Fatalf("breaches = %v, want 1", br)
	}
	snap := s.Snapshot()
	if snap.OK {
		t.Error("snapshot OK despite breach")
	}
	if len(snap.Objectives) != 1 || !snap.Objectives[0].Breached {
		t.Errorf("objective health wrong: %+v", snap.Objectives)
	}
	if g := reg.Gauge("slo_breached", obs.L("objective", "remap")).Value(); g != 1 {
		t.Errorf("slo_breached gauge = %d, want 1", g)
	}
	if g := reg.Gauge("slo_p99_ns", obs.L("objective", "remap")).Value(); g < int64(10*time.Millisecond) {
		t.Errorf("slo_p99_ns gauge = %d, want above objective", g)
	}
}

func TestSLODisabledIsNoop(t *testing.T) {
	s := NewSLO(obs.NewRegistry())
	s.Observe("remap", time.Hour)
	s.NodeDown("proc")
	s.SetDegradation(3, 4)
	snap := s.Snapshot()
	if len(snap.Objectives) != 0 || snap.DegradationLevel != 0 {
		t.Errorf("disabled tracker recorded: %+v", snap)
	}
}

func TestSLOAvailabilityLedger(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetEnabled(true)
	s := NewSLO(reg)
	s.SetEnabled(true)
	s.RegisterClass("proc", 10)

	s.NodeDown("proc")
	time.Sleep(5 * time.Millisecond)
	s.NodeUp("proc")

	snap := s.Snapshot()
	if len(snap.Availability) != 1 {
		t.Fatalf("availability classes = %d, want 1", len(snap.Availability))
	}
	c := snap.Availability[0]
	if c.Class != "proc" || c.Nodes != 10 || c.DownNow != 0 || c.Transitions != 2 {
		t.Errorf("class health wrong: %+v", c)
	}
	if c.Downtime < 4*time.Millisecond {
		t.Errorf("downtime = %v, want >= ~5ms", c.Downtime)
	}
	if c.AvailabilityPPM >= 1_000_000 || c.AvailabilityPPM <= 0 {
		t.Errorf("availability = %d ppm, want in (0, 1e6)", c.AvailabilityPPM)
	}
}

func TestSLODegradationGauges(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetEnabled(true)
	s := NewSLO(reg)
	s.SetEnabled(true)
	s.SetDegradation(2, 4)
	if g := reg.Gauge("slo_degradation_level").Value(); g != 2 {
		t.Errorf("degradation gauge = %d, want 2", g)
	}
	snap := s.Snapshot()
	if snap.DegradationLevel != 2 || snap.DegradationBudget != 4 {
		t.Errorf("snapshot degradation = %d/%d", snap.DegradationLevel, snap.DegradationBudget)
	}
}

func TestSLOHandler(t *testing.T) {
	s := NewSLO(obs.NewRegistry())
	s.SetObjective("solve", time.Second)
	s.Observe("solve", time.Millisecond)

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/slo", nil))
	var snap HealthSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("handler JSON: %v", err)
	}
	if !snap.OK || len(snap.Objectives) != 1 || snap.Objectives[0].Name != "solve" {
		t.Errorf("handler snapshot wrong: %+v", snap)
	}
}
