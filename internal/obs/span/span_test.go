package span

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeLinks(t *testing.T) {
	tr := NewTracer(64)
	tr.SetEnabled(true)

	root := tr.Start(nil, "remap").SetStr("op", "inject").SetInt("node", 5)
	child := tr.Start(root, "solve").SetInt("expansions", 123)
	grand := tr.Start(child, "attempt")
	grand.End(OK)
	child.End(Deadline)
	root.End(Rollback)

	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	// Pushed in End order: grand, child, root.
	g, c, r := spans[0], spans[1], spans[2]
	if r.Parent != 0 || r.Trace != r.ID {
		t.Errorf("root links wrong: parent=%d trace=%d id=%d", r.Parent, r.Trace, r.ID)
	}
	if c.Parent != r.ID || c.Trace != r.ID {
		t.Errorf("child links wrong: parent=%d trace=%d rootID=%d", c.Parent, c.Trace, r.ID)
	}
	if g.Parent != c.ID || g.Trace != r.ID {
		t.Errorf("grandchild links wrong: parent=%d trace=%d", g.Parent, g.Trace)
	}
	if v, ok := r.Attr("node"); !ok || v != "5" {
		t.Errorf("node attr = %q, %v", v, ok)
	}
	if r.Status != Rollback || c.Status != Deadline || g.Status != OK {
		t.Errorf("statuses wrong: %v %v %v", r.Status, c.Status, g.Status)
	}
	if c.Start < r.Start || c.End > r.End {
		t.Errorf("child [%v,%v] outside root [%v,%v]", c.Start, c.End, r.Start, r.End)
	}
}

func TestDisabledTracerIsNoop(t *testing.T) {
	tr := NewTracer(8)
	sp := tr.Start(nil, "x")
	if sp != nil {
		t.Fatalf("disabled Start returned non-nil")
	}
	// Every method must tolerate the nil handle.
	sp.SetStr("k", "v").SetInt("i", 1)
	sp.Eventf("e", "f=%d", 1)
	sp.End(OK)
	if sp.ID() != 0 {
		t.Errorf("nil handle ID = %d", sp.ID())
	}
	if got := tr.Snapshot(); len(got) != 0 {
		t.Fatalf("disabled tracer recorded %d spans", len(got))
	}
}

func TestRingEviction(t *testing.T) {
	tr := NewTracer(4)
	tr.SetEnabled(true)
	for i := 0; i < 10; i++ {
		tr.Start(nil, fmt.Sprintf("s%d", i)).End(OK)
	}
	spans := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d, want 4", len(spans))
	}
	for i, sp := range spans {
		if want := fmt.Sprintf("s%d", 6+i); sp.Name != want {
			t.Errorf("spans[%d] = %s, want %s (oldest-first after eviction)", i, sp.Name, want)
		}
	}
	if tr.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", tr.Dropped())
	}
}

// TestConcurrentWriters hammers the ring from many goroutines while
// Snapshot and the HTTP handler read it — the -race gate for the
// satellite requirement.
func TestConcurrentWriters(t *testing.T) {
	tr := NewTracer(128)
	tr.SetEnabled(true)
	h := tr.Handler()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				root := tr.Start(nil, "work").SetInt("worker", int64(w))
				child := tr.Start(root, "phase")
				child.Eventf("tick", "i=%d", i)
				child.End(OK)
				root.End(OK)
			}
		}(w)
	}
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = tr.Snapshot()
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/spans?format=json", nil))
			var spans []Span
			if err := json.Unmarshal(rec.Body.Bytes(), &spans); err != nil {
				t.Errorf("handler JSON: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	rg.Wait()

	spans := tr.Snapshot()
	if len(spans) != 128 {
		t.Fatalf("ring holds %d, want 128", len(spans))
	}
	// Every child's parent must be a plausible ID (concurrent pushes must
	// not corrupt entries).
	for _, sp := range spans {
		if sp.ID == 0 || (sp.Name == "phase" && sp.Parent == 0) {
			t.Fatalf("corrupt span: %+v", sp)
		}
	}
}

func TestStatusJSONRoundTrip(t *testing.T) {
	for st := OK; st <= Errored; st++ {
		b, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		var got Status
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatal(err)
		}
		if got != st {
			t.Errorf("round trip %v -> %s -> %v", st, b, got)
		}
	}
	var unknown Status
	if err := json.Unmarshal([]byte(`"from_the_future"`), &unknown); err != nil || unknown != Errored {
		t.Errorf("unknown status: %v %v", unknown, err)
	}
}

func TestHandlerTextFormat(t *testing.T) {
	tr := NewTracer(8)
	tr.SetEnabled(true)
	sp := tr.Start(nil, "remap").SetStr("op", "inject")
	time.Sleep(time.Millisecond)
	sp.End(OK)

	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/spans", nil))
	body := rec.Body.String()
	if !strings.Contains(body, "remap") || !strings.Contains(body, "op=inject") {
		t.Errorf("text handler output missing span line: %q", body)
	}
}

func TestEvents(t *testing.T) {
	tr := NewTracer(8)
	tr.SetEnabled(true)
	sp := tr.Start(nil, "soak")
	sp.Eventf("fault", "node=%d", 3)
	sp.Eventf("repair", "node=%d", 3)
	sp.End(OK)
	spans := tr.Snapshot()
	if len(spans) != 1 || len(spans[0].Events) != 2 {
		t.Fatalf("events not recorded: %+v", spans)
	}
	if spans[0].Events[0].Name != "fault" || spans[0].Events[0].Fields != "node=3" {
		t.Errorf("event content wrong: %+v", spans[0].Events[0])
	}
}
