package span

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"gdpn/internal/obs"
)

// The anomaly flight recorder: a disarmed recorder costs one atomic load
// per Trip call, so the trip points (frame loss in the sink audit, remap
// deadline misses and rollbacks, solver bugs, budget exhaustion) stay in
// the code permanently. When armed, a trip snapshots the tracer's recent
// spans plus the metric registry — with counter deltas since the previous
// dump, so a dump shows what moved, not just totals — and writes one
// self-contained JSON bundle per anomaly. Dumps are capped and rate
// limited: an anomaly storm produces a handful of bundles, not a full
// disk.

// Anomaly classifies what tripped the recorder.
type Anomaly string

const (
	// AnomalyFrameLoss: the stream's sink audit saw a lost, duplicated, or
	// out-of-order frame.
	AnomalyFrameLoss Anomaly = "frame_loss"
	// AnomalyDeadline: a remap missed its deadline and rolled back.
	AnomalyDeadline Anomaly = "remap_deadline"
	// AnomalyRollback: a remap rolled back for a non-deadline reason
	// (beyond-budget fault set, canceled solve).
	AnomalyRollback Anomaly = "remap_rollback"
	// AnomalySolverBug: a solver returned an invalid pipeline that the
	// certificate check caught.
	AnomalySolverBug Anomaly = "solver_bug"
	// AnomalyBudget: a solve exhausted its node budget (verdict Unknown).
	AnomalyBudget Anomaly = "budget_exhausted"
	// AnomalyInvariant: a chaos soak invariant check failed.
	AnomalyInvariant Anomaly = "invariant_violation"
)

// Dump is the self-contained flight-recorder bundle written per anomaly.
// Everything a post-mortem needs is inline: the span window around the
// anomaly, the full metric snapshot, and the counter deltas since the last
// dump (or since arming, for the first).
type Dump struct {
	Version   int       `json:"version"`
	Kind      Anomaly   `json:"kind"`
	Detail    string    `json:"detail,omitempty"`
	WrittenAt time.Time `json:"written_at"`
	// Seq numbers dumps within one armed session, starting at 1.
	Seq int `json:"seq"`
	// Spans is the tracer ring at trip time, oldest first.
	Spans []Span `json:"spans"`
	// SpansDropped counts spans evicted from the ring before the trip.
	SpansDropped uint64 `json:"spans_dropped,omitempty"`
	// Metrics is the full obs registry snapshot at trip time.
	Metrics obs.Snapshot `json:"metrics"`
	// CounterDeltas holds every counter that moved since the previous dump
	// (or since Arm), keyed by canonical instrument identity.
	CounterDeltas map[string]int64 `json:"counter_deltas,omitempty"`
}

// RecorderConfig parameterizes Arm.
type RecorderConfig struct {
	// Dir receives the dump files (created if missing). Required.
	Dir string
	// MaxDumps caps bundles per armed session (default 8).
	MaxDumps int
	// Cooldown is the minimum spacing between dumps (default 1s); trips
	// inside the window are counted but not dumped.
	Cooldown time.Duration
	// Tracer and Registry default to span.Default() and obs.Default().
	Tracer   *Tracer
	Registry *obs.Registry
}

// Recorder is the armed/disarmed anomaly dumper. The zero value is
// disarmed; Trip on a disarmed recorder is one atomic load.
type Recorder struct {
	armed atomic.Bool

	mu           sync.Mutex
	cfg          RecorderConfig
	dumps        int
	suppressed   int
	lastDump     time.Time
	lastCounters map[string]int64
}

var defaultRecorder = &Recorder{}

// DefaultRecorder returns the process-wide recorder the trip points use.
func DefaultRecorder() *Recorder { return defaultRecorder }

// Trip reports an anomaly to the default recorder. detail is free-form
// context ("node=5 err=..."). It returns the dump path when a bundle was
// written ("" when disarmed, rate-limited, or capped).
func Trip(kind Anomaly, detail string) string { return defaultRecorder.Trip(kind, detail) }

// Arm enables dumping: the directory is created, the dump counter reset,
// and the counter baseline (for deltas) captured. Arming also enables the
// recorder's tracer — a flight recorder without spans records nothing
// worth reading.
func (r *Recorder) Arm(cfg RecorderConfig) error {
	if cfg.Dir == "" {
		return fmt.Errorf("span: flight recorder needs a directory")
	}
	if cfg.MaxDumps <= 0 {
		cfg.MaxDumps = 8
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = time.Second
	}
	if cfg.Tracer == nil {
		cfg.Tracer = Default()
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.Default()
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return fmt.Errorf("span: flight recorder dir: %w", err)
	}
	cfg.Tracer.SetEnabled(true)
	r.mu.Lock()
	r.cfg = cfg
	r.dumps = 0
	r.suppressed = 0
	r.lastDump = time.Time{}
	r.lastCounters = r.cfg.Registry.Snapshot().Counters
	r.mu.Unlock()
	r.armed.Store(true)
	return nil
}

// Disarm stops dumping (the trip points go back to one atomic load).
func (r *Recorder) Disarm() { r.armed.Store(false) }

// Armed reports whether trips produce dumps.
func (r *Recorder) Armed() bool { return r.armed.Load() }

// Dumps returns how many bundles were written and how many trips were
// suppressed (cooldown or cap) since arming.
func (r *Recorder) Dumps() (written, suppressed int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dumps, r.suppressed
}

// Trip reports an anomaly: when armed and outside the cooldown window, the
// current span ring and metric snapshot are bundled and written. Returns
// the path of the written bundle, or "".
func (r *Recorder) Trip(kind Anomaly, detail string) string {
	if !r.armed.Load() {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now()
	if r.dumps >= r.cfg.MaxDumps || (!r.lastDump.IsZero() && now.Sub(r.lastDump) < r.cfg.Cooldown) {
		r.suppressed++
		return ""
	}
	snap := r.cfg.Registry.Snapshot()
	deltas := make(map[string]int64)
	for k, v := range snap.Counters {
		if d := v - r.lastCounters[k]; d != 0 {
			deltas[k] = d
		}
	}
	r.lastCounters = snap.Counters
	r.dumps++
	r.lastDump = now
	d := Dump{
		Version:       1,
		Kind:          kind,
		Detail:        detail,
		WrittenAt:     now,
		Seq:           r.dumps,
		Spans:         r.cfg.Tracer.Snapshot(),
		SpansDropped:  r.cfg.Tracer.Dropped(),
		Metrics:       snap,
		CounterDeltas: deltas,
	}
	path := filepath.Join(r.cfg.Dir, fmt.Sprintf("flight-%03d-%s.json", r.dumps, kind))
	f, err := os.Create(path)
	if err != nil {
		return ""
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		return ""
	}
	return path
}

// ReadDump parses a flight-recorder bundle.
func ReadDump(path string) (*Dump, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d Dump
	if err := json.Unmarshal(b, &d); err != nil {
		return nil, fmt.Errorf("span: parsing dump %s: %w", path, err)
	}
	return &d, nil
}
