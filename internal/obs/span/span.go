// Package span is the causal tracing layer on top of internal/obs: where
// obs records flat counters and a flat event ring, span records *trees* —
// one root span per unit of work (a remap, a verification chunk, a soak)
// with child spans per phase (detect → plan → solve → drain → rewire →
// requeue → audit) and per tactic attempt, each carrying typed attributes
// and a terminal status (ok / canceled / deadline / rollback / error).
// The parent links are what turn "the remap blew its deadline" into "the
// solve phase ate 93% of the budget after both local tactics missed".
//
// The package follows the same discipline as obs.Registry: tracing must be
// free to leave in hot paths. Tracer.Start is a single atomic load when
// the tracer is disabled (it returns a nil *S, and every *S method is
// nil-tolerant), so instrumented code never branches on an "is tracing on"
// flag of its own. Finished spans land in a bounded mutex-guarded ring —
// spans are per-remap and per-chunk, orders of magnitude rarer than
// frames, so a small lock around the push keeps ordering exact without a
// lock-free structure.
//
// On top of the tracer this package provides the anomaly flight recorder
// (flight.go) — a rolling window of recent spans plus metric deltas,
// auto-dumped as a self-contained JSON bundle when an anomaly trips — and
// the SLO/health layer (slo.go): rolling latency objectives, a per-node-
// class availability ledger, and a degradation-level gauge.
package span

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Status is a span's terminal state.
type Status uint8

const (
	// OK: the unit of work completed normally.
	OK Status = iota
	// Canceled: abandoned because a cancellation token latched.
	Canceled
	// Deadline: abandoned (or discarded late) on a wall-clock deadline.
	Deadline
	// Rollback: the work completed but its effect was undone (a remap
	// rolled back to the previous mapping).
	Rollback
	// Errored: the work failed for any other reason.
	Errored
)

var statusNames = [...]string{"ok", "canceled", "deadline", "rollback", "error"}

// String names the status.
func (s Status) String() string {
	if int(s) < len(statusNames) {
		return statusNames[s]
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// MarshalJSON renders the status as its name.
func (s Status) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON accepts the names written by MarshalJSON (unknown names
// decode as Errored rather than failing — dumps from newer builds must
// stay renderable).
func (s *Status) UnmarshalJSON(b []byte) error {
	name := string(b)
	if len(name) >= 2 && name[0] == '"' {
		name = name[1 : len(name)-1]
	}
	for i, n := range statusNames {
		if n == name {
			*s = Status(i)
			return nil
		}
	}
	*s = Errored
	return nil
}

// Attr is one typed key/value attribute on a span. Exactly one of Str and
// Int is meaningful; IsInt selects which.
type Attr struct {
	Key   string `json:"key"`
	Str   string `json:"str,omitempty"`
	Int   int64  `json:"int,omitempty"`
	IsInt bool   `json:"is_int,omitempty"`
}

// Value renders the attribute value as a string.
func (a Attr) Value() string {
	if a.IsInt {
		return fmt.Sprintf("%d", a.Int)
	}
	return a.Str
}

// Event is a point-in-time annotation attached to a span (a chaos schedule
// event on the soak root, for example).
type Event struct {
	// At is the monotonic time since tracer creation.
	At time.Duration `json:"at_ns"`
	// Name is the event kind ("fault", "repair", ...).
	Name string `json:"name"`
	// Fields holds free-form `k=v` detail.
	Fields string `json:"fields,omitempty"`
}

// Span is one finished unit of work. IDs are unique per tracer; Parent is
// 0 for roots; Trace is the root span's ID for every span in the tree, so
// a dump can be grouped into trees without walking links.
type Span struct {
	ID     uint64        `json:"id"`
	Parent uint64        `json:"parent,omitempty"`
	Trace  uint64        `json:"trace"`
	Name   string        `json:"name"`
	Start  time.Duration `json:"start_ns"`
	End    time.Duration `json:"end_ns"`
	Status Status        `json:"status"`
	Attrs  []Attr        `json:"attrs,omitempty"`
	Events []Event       `json:"events,omitempty"`
}

// Duration is the span's wall-clock extent.
func (s Span) Duration() time.Duration { return s.End - s.Start }

// Attr returns the named attribute's rendered value and whether it exists.
func (s Span) Attr(key string) (string, bool) {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value(), true
		}
	}
	return "", false
}

// DefaultSpanCap is the finished-span capacity of a tracer's ring.
const DefaultSpanCap = 4096

// Tracer mints span IDs and collects finished spans into a bounded ring
// (oldest evicted first). Disabled tracers cost one atomic load per Start.
type Tracer struct {
	enabled atomic.Bool
	epoch   time.Time
	nextID  atomic.Uint64

	mu      sync.Mutex
	ring    []Span
	next    uint64 // total spans ever finished
	cap     int
	dropped uint64 // finished spans evicted from the ring
}

// NewTracer returns a disabled tracer with an empty ring of the given
// capacity (<= 0 selects DefaultSpanCap).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultSpanCap
	}
	return &Tracer{epoch: time.Now(), ring: make([]Span, 0, capacity), cap: capacity}
}

var defaultTracer = NewTracer(DefaultSpanCap)

// Default returns the process-wide tracer shared by the instrumented
// packages and the CLIs, disabled until a CLI turns it on.
func Default() *Tracer { return defaultTracer }

// SetEnabled turns the tracer on or off. Spans already in the ring are
// kept across a disable/enable cycle.
func (t *Tracer) SetEnabled(on bool) { t.enabled.Store(on) }

// Enabled reports whether spans are being recorded.
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// S is an active (unfinished) span handle. A nil *S is a valid no-op span:
// every method tolerates it, so call sites never gate on Enabled. An *S
// must not be shared across goroutines without external synchronization —
// the intended shape is one span per unit of work, owned by the goroutine
// doing that work (the finished-span ring IS safe for concurrent pushes).
type S struct {
	t  *Tracer
	sp Span
}

// Start opens a span. parent may be nil (a root span). When the tracer is
// disabled Start returns nil, and the nil handle's methods are all no-ops.
func (t *Tracer) Start(parent *S, name string) *S {
	if !t.enabled.Load() {
		return nil
	}
	id := t.nextID.Add(1)
	s := &S{t: t, sp: Span{ID: id, Trace: id, Name: name, Start: time.Since(t.epoch)}}
	if parent != nil {
		s.sp.Parent = parent.sp.ID
		s.sp.Trace = parent.sp.Trace
	}
	return s
}

// Start opens a span on the default tracer.
func Start(parent *S, name string) *S { return defaultTracer.Start(parent, name) }

// SetStr attaches a string attribute. Returns s for chaining.
func (s *S) SetStr(key, val string) *S {
	if s == nil {
		return nil
	}
	s.sp.Attrs = append(s.sp.Attrs, Attr{Key: key, Str: val})
	return s
}

// SetInt attaches an integer attribute. Returns s for chaining.
func (s *S) SetInt(key string, val int64) *S {
	if s == nil {
		return nil
	}
	s.sp.Attrs = append(s.sp.Attrs, Attr{Key: key, Int: val, IsInt: true})
	return s
}

// Eventf attaches a point-in-time event to the span. The format arguments
// are not evaluated on a nil handle.
func (s *S) Eventf(name, format string, args ...any) {
	if s == nil {
		return
	}
	s.sp.Events = append(s.sp.Events, Event{
		At: time.Since(s.t.epoch), Name: name, Fields: fmt.Sprintf(format, args...),
	})
}

// ID returns the span's ID (0 on a nil handle).
func (s *S) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.sp.ID
}

// End finishes the span with the given status and pushes it into the
// tracer's ring. Ending a span twice records it twice; don't.
func (s *S) End(st Status) {
	if s == nil {
		return
	}
	s.sp.End = time.Since(s.t.epoch)
	s.sp.Status = st
	s.t.push(s.sp)
}

func (t *Tracer) push(sp Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	seq := t.next
	t.next++
	if len(t.ring) < t.cap {
		t.ring = append(t.ring, sp)
		return
	}
	t.dropped++
	t.ring[int(seq)%t.cap] = sp
}

// Snapshot returns the finished spans, oldest first.
func (t *Tracer) Snapshot() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.ring))
	if len(t.ring) < t.cap {
		return append(out, t.ring...)
	}
	start := int(t.next) % t.cap
	out = append(out, t.ring[start:]...)
	out = append(out, t.ring[:start]...)
	return out
}

// Dropped returns how many finished spans the ring has evicted.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Reset clears the ring (the enabled state and ID sequence are preserved).
// Meant for tests and benchmarks that reuse Default().
func (t *Tracer) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ring = t.ring[:0]
	t.next = 0
	t.dropped = 0
}
