package span

import (
	"testing"
	"time"
)

// The disabled-path contract: instrumentation left in hot paths must cost
// ~a few ns and zero allocations per call. TestDisabledZeroAlloc is the
// hard gate (fails the suite on any allocation); the benchmarks document
// the per-op cost next to BENCH_baseline.json trends.

func TestDisabledZeroAlloc(t *testing.T) {
	tr := NewTracer(8)
	if n := testing.AllocsPerRun(1000, func() {
		sp := tr.Start(nil, "hot")
		sp.SetInt("k", 1)
		sp.End(OK)
	}); n != 0 {
		t.Errorf("disabled span path allocates %.1f/op, want 0", n)
	}
	rec := &Recorder{}
	if n := testing.AllocsPerRun(1000, func() {
		rec.Trip(AnomalyFrameLoss, "")
	}); n != 0 {
		t.Errorf("disarmed Trip allocates %.1f/op, want 0", n)
	}
	s := NewSLO(nil)
	if n := testing.AllocsPerRun(1000, func() {
		s.Observe("remap", time.Millisecond)
	}); n != 0 {
		t.Errorf("disabled SLO Observe allocates %.1f/op, want 0", n)
	}
}

func BenchmarkStartEndDisabled(b *testing.B) {
	tr := NewTracer(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start(nil, "hot")
		sp.SetInt("k", int64(i))
		sp.End(OK)
	}
}

func BenchmarkStartEndEnabled(b *testing.B) {
	tr := NewTracer(1024)
	tr.SetEnabled(true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start(nil, "hot")
		sp.SetInt("k", int64(i))
		sp.End(OK)
	}
}

func BenchmarkTripDisarmed(b *testing.B) {
	rec := &Recorder{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec.Trip(AnomalyFrameLoss, "")
	}
}

func BenchmarkSLOObserveDisabled(b *testing.B) {
	s := NewSLO(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Observe("remap", time.Millisecond)
	}
}
