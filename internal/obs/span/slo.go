package span

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gdpn/internal/obs"
)

// The SLO/health layer: named rolling-latency objectives ("remap" p99 vs
// a configured bound, "solve" p99 for verification runs), a per-node-class
// availability ledger fed by the reconfiguration manager, and the current
// degradation level (faults in flight vs the design budget k). Everything
// is exported twice: as gauges on the obs registry (so /metrics carries
// slo_p99_ns, slo_objective_ns, slo_breached, slo_degradation_level,
// slo_availability_ppm) and as a structured JSON health document on the
// /slo endpoint, whose `ok` field is what CI and the nightly soak gate on.
//
// Like the tracer, a disabled SLO costs its callers one atomic load per
// Observe/NodeDown/NodeUp call.

// sloWindow is the rolling sample window per objective; p99 over the last
// 1024 observations tracks "current" latency rather than lifetime.
const sloWindow = 1024

// objective is one named rolling-latency series with an optional target.
type objective struct {
	target time.Duration
	ring   [sloWindow]int64
	count  int64 // total observations; ring index = count % sloWindow
	worst  time.Duration
}

// p99 computes the 99th percentile over the buffered window.
func (o *objective) p99() time.Duration {
	n := int(o.count)
	if n > sloWindow {
		n = sloWindow
	}
	if n == 0 {
		return 0
	}
	buf := make([]int64, n)
	copy(buf, o.ring[:n])
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	idx := (n*99 + 99) / 100 // ceil(n*0.99)
	if idx >= n {
		idx = n - 1
	}
	return time.Duration(buf[idx])
}

// classState is the availability ledger for one node class.
type classState struct {
	nodes       int
	downNow     int
	transitions int64
	downtime    time.Duration // node-seconds of accumulated downtime
	lastChange  time.Time
}

// integrate folds the time since the last transition into the ledger.
func (c *classState) integrate(now time.Time) {
	if c.downNow > 0 && !c.lastChange.IsZero() {
		c.downtime += time.Duration(c.downNow) * now.Sub(c.lastChange)
	}
	c.lastChange = now
}

// SLO is the health tracker. The zero value is disabled; use NewSLO or
// DefaultSLO.
type SLO struct {
	enabled atomic.Bool
	epoch   time.Time
	reg     *obs.Registry

	mu         sync.Mutex
	objectives map[string]*objective
	classes    map[string]*classState
	degCur     int
	degBudget  int
}

// NewSLO returns a disabled tracker exporting gauges on reg (nil =
// obs.Default()).
func NewSLO(reg *obs.Registry) *SLO {
	if reg == nil {
		reg = obs.Default()
	}
	return &SLO{
		epoch:      time.Now(),
		reg:        reg,
		objectives: map[string]*objective{},
		classes:    map[string]*classState{},
	}
}

var defaultSLO = NewSLO(nil)

// DefaultSLO returns the process-wide tracker shared by the instrumented
// packages and the CLIs.
func DefaultSLO() *SLO { return defaultSLO }

// SetEnabled turns the tracker on or off.
func (s *SLO) SetEnabled(on bool) { s.enabled.Store(on) }

// Enabled reports whether observations are being recorded.
func (s *SLO) Enabled() bool { return s.enabled.Load() }

// SetObjective sets the p99 target for the named series (0 = track the
// latency but never breach). Setting an objective enables the tracker.
func (s *SLO) SetObjective(name string, target time.Duration) {
	s.mu.Lock()
	s.series(name).target = target
	s.mu.Unlock()
	s.enabled.Store(true)
	if target > 0 {
		s.reg.Gauge("slo_objective_ns", obs.L("objective", name)).Set(int64(target))
	}
}

// series returns (creating) the named objective; callers hold s.mu.
func (s *SLO) series(name string) *objective {
	o, ok := s.objectives[name]
	if !ok {
		o = &objective{}
		s.objectives[name] = o
	}
	return o
}

// Observe records one latency sample on the named series (no-op when
// disabled). The series' rolling p99 is re-exported as slo_p99_ns.
func (s *SLO) Observe(name string, d time.Duration) {
	if !s.enabled.Load() {
		return
	}
	s.mu.Lock()
	o := s.series(name)
	o.ring[o.count%sloWindow] = int64(d)
	o.count++
	if d > o.worst {
		o.worst = d
	}
	p99 := o.p99()
	target := o.target
	s.mu.Unlock()
	s.reg.Gauge("slo_p99_ns", obs.L("objective", name)).Set(int64(p99))
	if target > 0 {
		breached := int64(0)
		if p99 > target {
			breached = 1
		}
		s.reg.Gauge("slo_breached", obs.L("objective", name)).Set(breached)
	}
}

// RegisterClass declares a node class of the given size for the
// availability ledger; availability is downtime over nodes × elapsed.
func (s *SLO) RegisterClass(class string, nodes int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.classes[class]
	if !ok {
		c = &classState{lastChange: time.Now()}
		s.classes[class] = c
	}
	c.nodes = nodes
}

// NodeDown records one node of the class going down (no-op when disabled).
func (s *SLO) NodeDown(class string) { s.nodeTransition(class, +1) }

// NodeUp records one node of the class recovering (no-op when disabled).
func (s *SLO) NodeUp(class string) { s.nodeTransition(class, -1) }

func (s *SLO) nodeTransition(class string, delta int) {
	if !s.enabled.Load() {
		return
	}
	now := time.Now()
	s.mu.Lock()
	c, ok := s.classes[class]
	if !ok {
		c = &classState{lastChange: now}
		s.classes[class] = c
	}
	c.integrate(now)
	c.downNow += delta
	if c.downNow < 0 {
		c.downNow = 0
	}
	c.transitions++
	availPPM := availabilityPPM(c, s.epoch, now)
	down := c.downNow
	s.mu.Unlock()
	s.reg.Gauge("slo_nodes_down", obs.L("class", class)).Set(int64(down))
	s.reg.Gauge("slo_availability_ppm", obs.L("class", class)).Set(availPPM)
}

// SetDegradation records the current fault count against the design
// budget k (no-op when disabled); exported as slo_degradation_level.
func (s *SLO) SetDegradation(current, budget int) {
	if !s.enabled.Load() {
		return
	}
	s.mu.Lock()
	s.degCur, s.degBudget = current, budget
	s.mu.Unlock()
	s.reg.Gauge("slo_degradation_level").Set(int64(current))
	s.reg.Gauge("slo_degradation_budget").Set(int64(budget))
}

// availabilityPPM computes parts-per-million availability for one class
// over [epoch, now]: 1e6 × (1 − downtime / (nodes × elapsed)).
func availabilityPPM(c *classState, epoch, now time.Time) int64 {
	if c.nodes <= 0 {
		return 1_000_000
	}
	elapsed := now.Sub(epoch)
	if elapsed <= 0 {
		return 1_000_000
	}
	down := c.downtime
	if c.downNow > 0 {
		down += time.Duration(c.downNow) * now.Sub(c.lastChange)
	}
	frac := float64(down) / (float64(c.nodes) * float64(elapsed))
	ppm := int64((1 - frac) * 1e6)
	if ppm < 0 {
		ppm = 0
	}
	return ppm
}

// ObjectiveHealth is one series' health in a snapshot.
type ObjectiveHealth struct {
	Name      string        `json:"name"`
	Count     int64         `json:"count"`
	P99       time.Duration `json:"p99_ns"`
	Worst     time.Duration `json:"worst_ns"`
	Objective time.Duration `json:"objective_ns,omitempty"`
	Breached  bool          `json:"breached,omitempty"`
}

// ClassHealth is one node class's availability in a snapshot.
type ClassHealth struct {
	Class           string        `json:"class"`
	Nodes           int           `json:"nodes"`
	DownNow         int           `json:"down_now"`
	Transitions     int64         `json:"transitions"`
	Downtime        time.Duration `json:"downtime_ns"`
	AvailabilityPPM int64         `json:"availability_ppm"`
}

// HealthSnapshot is the JSON document served at /slo.
type HealthSnapshot struct {
	OK                bool              `json:"ok"`
	Objectives        []ObjectiveHealth `json:"objectives,omitempty"`
	Availability      []ClassHealth     `json:"availability,omitempty"`
	DegradationLevel  int               `json:"degradation_level"`
	DegradationBudget int               `json:"degradation_budget"`
	Elapsed           time.Duration     `json:"elapsed_ns"`
}

// Snapshot returns the current health document. OK is false iff some
// objective with a target is currently breached.
func (s *SLO) Snapshot() HealthSnapshot {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	h := HealthSnapshot{
		OK:                true,
		DegradationLevel:  s.degCur,
		DegradationBudget: s.degBudget,
		Elapsed:           now.Sub(s.epoch),
	}
	for name, o := range s.objectives {
		oh := ObjectiveHealth{
			Name: name, Count: o.count, P99: o.p99(), Worst: o.worst, Objective: o.target,
		}
		if o.target > 0 && oh.P99 > o.target {
			oh.Breached = true
			h.OK = false
		}
		h.Objectives = append(h.Objectives, oh)
	}
	sort.Slice(h.Objectives, func(i, j int) bool { return h.Objectives[i].Name < h.Objectives[j].Name })
	for class, c := range s.classes {
		h.Availability = append(h.Availability, ClassHealth{
			Class: class, Nodes: c.nodes, DownNow: c.downNow, Transitions: c.transitions,
			Downtime:        c.downtime,
			AvailabilityPPM: availabilityPPM(c, s.epoch, now),
		})
	}
	sort.Slice(h.Availability, func(i, j int) bool { return h.Availability[i].Class < h.Availability[j].Class })
	return h
}

// Breaches lists the objectives currently over their target, rendered as
// "name: p99 12ms > objective 5ms" lines; empty means every SLO holds.
func (s *SLO) Breaches() []string {
	var out []string
	for _, o := range s.Snapshot().Objectives {
		if o.Breached {
			out = append(out, fmt.Sprintf("%s: p99 %v > objective %v (worst %v over %d samples)",
				o.Name, o.P99, o.Objective, o.Worst, o.Count))
		}
	}
	return out
}

// Handler serves the health document as JSON (conventionally at /slo).
func (s *SLO) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.Snapshot())
	})
}
