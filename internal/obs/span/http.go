package span

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// Handler serves the finished-span ring (conventionally at /debug/spans):
// one line per span oldest-first, `?format=json` for the machine form —
// the same []Span schema a flight-recorder dump embeds, so gdptrace
// renders both.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		spans := t.Snapshot()
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(spans)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, sp := range spans {
			fmt.Fprintln(w, formatSpanLine(sp))
		}
	})
}

// formatSpanLine renders one span as a text line:
//
//	+1.234s  remap        12<-0   3.2ms  rollback  op=inject node=5
func formatSpanLine(sp Span) string {
	line := fmt.Sprintf("+%-12v %-14s %d<-%d %10v  %-8s",
		sp.Start.Round(time.Microsecond), sp.Name, sp.ID, sp.Parent,
		sp.Duration().Round(time.Microsecond), sp.Status)
	for _, a := range sp.Attrs {
		line += fmt.Sprintf(" %s=%s", a.Key, a.Value())
	}
	return line
}
