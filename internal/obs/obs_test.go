package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestDisabledRegistryIsNoOp(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	g := r.Gauge("g")
	h := r.Histogram("h_ns")
	c.Inc()
	g.Set(7)
	h.Observe(100)
	r.Event("e", "x=1")
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || len(r.Trace()) != 0 {
		t.Fatalf("disabled registry recorded observations: c=%d g=%d h=%d trace=%d",
			c.Value(), g.Value(), h.Count(), len(r.Trace()))
	}
}

func TestEnabledRegistryRecords(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	if !r.Enabled() {
		t.Fatal("SetEnabled(true) not visible")
	}
	c := r.Counter("c_total")
	c.Add(3)
	c.Inc()
	if c.Value() != 4 {
		t.Fatalf("counter = %d, want 4", c.Value())
	}
	g := r.Gauge("g")
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
	r.Event("fault", "node=5")
	r.Eventf("repair", "node=%d tactic=%s", 5, "splice")
	ev := r.Trace()
	if len(ev) != 2 || ev[0].Name != "fault" || ev[1].Fields != "node=5 tactic=splice" {
		t.Fatalf("trace = %+v", ev)
	}
}

func TestInstrumentIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", L("tactic", "splice"))
	b := r.Counter("x_total", L("tactic", "splice"))
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	c := r.Counter("x_total", L("tactic", "rewire"))
	if a == c {
		t.Fatal("distinct labels share a counter")
	}
	// Label order must not matter.
	h1 := r.Histogram("h", L("b", "2"), L("a", "1"))
	h2 := r.Histogram("h", L("a", "1"), L("b", "2"))
	if h1 != h2 {
		t.Fatal("label order changed instrument identity")
	}
}

func TestKeyRendering(t *testing.T) {
	got := key("repairs_total", []Label{L("tactic", "splice")})
	want := `repairs_total{tactic="splice"}`
	if got != want {
		t.Fatalf("key = %q, want %q", got, want)
	}
	if key("plain", nil) != "plain" {
		t.Fatalf("unlabeled key = %q", key("plain", nil))
	}
}

func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	c := r.Counter("c_total")
	h := r.Histogram("h_ns")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(int64(i))
				r.Eventf("tick", "w=%d i=%d", w, i)
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("c=%d h=%d, want 8000 each", c.Value(), h.Count())
	}
	if got := len(r.Trace()); got != DefaultTraceCap {
		t.Fatalf("trace length %d, want ring cap %d", got, DefaultTraceCap)
	}
}

func TestResetPreservesEnabledState(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	c := r.Counter("c_total")
	h := r.Histogram("h_ns")
	c.Inc()
	h.Observe(5)
	r.Event("e", "")
	r.Reset()
	if c.Value() != 0 || h.Count() != 0 || h.Max() != 0 || len(r.Trace()) != 0 {
		t.Fatal("Reset left state behind")
	}
	if !r.Enabled() {
		t.Fatal("Reset flipped enabled state")
	}
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("instrument dead after Reset")
	}
}

func TestDefaultRegistryIsShared(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default not a singleton")
	}
	if Default().Enabled() {
		t.Fatal("Default must start disabled")
	}
}

func TestEventfSkipsFormattingWhenDisabled(t *testing.T) {
	r := NewRegistry()
	// A panicking Stringer proves the args are never formatted.
	r.Eventf("e", "%v", panicStringer{})
	if len(r.Trace()) != 0 {
		t.Fatal("disabled Eventf recorded")
	}
}

type panicStringer struct{}

func (panicStringer) String() string { panic("formatted while disabled") }

func TestEventString(t *testing.T) {
	e := Event{Name: "fault_injected", Fields: "node=3"}
	s := e.String()
	if !strings.Contains(s, "fault_injected") || !strings.Contains(s, "node=3") {
		t.Fatalf("Event.String() = %q", s)
	}
}

func BenchmarkCounterDisabled(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("c_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterEnabled(b *testing.B) {
	r := NewRegistry()
	r.SetEnabled(true)
	c := r.Counter("c_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserveEnabled(b *testing.B) {
	r := NewRegistry()
	r.SetEnabled(true)
	h := r.Histogram("h_ns")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}
