// Package reconfig maintains a live pipeline across fault arrivals and
// repairs with minimal disruption. The paper guarantees that after any
// ≤ k faults SOME pipeline exists; a deployed array additionally cares how
// much of the old mapping survives a fault — every moved stage means state
// migration. This package repairs incrementally:
//
//   - splice: the failed processor's neighbors on the pipeline happen to
//     be adjacent — drop the node, nothing else moves;
//   - 2-opt rewire: reverse one segment of the pipeline to route around
//     the failed node — only the segment's direction changes;
//   - endpoint swap: a failed terminal is replaced by another healthy
//     terminal attached to the same border processor;
//   - insert: a repaired processor is spliced back between two adjacent
//     pipeline neighbors;
//
// falling back to a full solver recompute only when no local tactic
// applies. Every repaired pipeline is certificate-checked; an invalid
// local repair degrades to the full recompute, never to a wrong result.
package reconfig

import (
	"errors"
	"fmt"
	"time"

	"gdpn/internal/bitset"
	"gdpn/internal/construct"
	"gdpn/internal/embed"
	"gdpn/internal/graph"
	"gdpn/internal/obs"
	"gdpn/internal/obs/span"
	"gdpn/internal/verify"
)

// Tactic identifies how a repair was accomplished.
type Tactic int

const (
	// NoChange means the failed node was not part of the pipeline.
	NoChange Tactic = iota
	// Splice removed the failed node; its pipeline neighbors were adjacent.
	Splice
	// Rewire routed around the failed node by reversing one segment.
	Rewire
	// EndpointSwap replaced a failed terminal with a sibling terminal.
	EndpointSwap
	// Insert spliced a repaired processor back into the pipeline.
	Insert
	// FullRemap recomputed the pipeline with the solver.
	FullRemap
)

// String names the tactic.
func (t Tactic) String() string {
	switch t {
	case NoChange:
		return "no-change"
	case Splice:
		return "splice"
	case Rewire:
		return "rewire"
	case EndpointSwap:
		return "endpoint-swap"
	case Insert:
		return "insert"
	case FullRemap:
		return "full-remap"
	default:
		return fmt.Sprintf("tactic(%d)", int(t))
	}
}

// Stats counts repairs by tactic.
type Stats struct {
	NoChange, Splice, Rewire, EndpointSwap, Insert, FullRemap int
	// MovedStages accumulates |positions whose processor changed| across
	// repairs — the state-migration cost a deployment would pay.
	MovedStages int
}

// ErrDeadline is wrapped into the error returned by Fault/Repair when a
// full-remap solve misses the manager's deadline (SetDeadline). The
// operation is rolled back: the previous pipeline stays live and the
// node's fault state is unchanged, so the caller can retry later.
var ErrDeadline = errors.New("remap deadline exceeded")

// DowntimeStats is the per-tactic downtime ledger: how long the pipeline
// was unavailable (from fault arrival to the new mapping being installed)
// under each repair tactic, plus the time burnt on rolled-back attempts.
type DowntimeStats struct {
	// PerTactic accumulates repair latency by the tactic that resolved it.
	PerTactic [FullRemap + 1]time.Duration
	// Total is the sum over PerTactic (rollback time excluded).
	Total time.Duration
	// Rollbacks counts operations undone after a deadline miss or an
	// unsolvable (beyond-budget) fault set.
	Rollbacks int
	// RollbackTime accumulates the time spent on rolled-back attempts.
	RollbackTime time.Duration
}

// Manager holds the live pipeline of one network.
type Manager struct {
	g      *graph.Graph
	solver *embed.Solver
	faults bitset.Set
	path   graph.Path
	stats  Stats
	// k is the design fault budget of the solution this manager guards;
	// the SLO degradation gauge reports faults-in-flight against it.
	k int

	// deadline bounds each repair's full-remap solve (0 = unbounded); see
	// SetDeadline. downtime/rollbacks feed DowntimeStats.
	deadline     time.Duration
	downtime     [FullRemap + 1]time.Duration
	rollbacks    int
	rollbackTime time.Duration
	// res is the ambient cancellation token (SetResources); every remap
	// solve runs under a per-repair child scope of it.
	res *embed.Resources

	// pendingDelta is the net fault-set change since the solver last ran:
	// +1 per fault added, −1 per fault removed, opposite mutations of the
	// same node cancel to zero. When warmSynced (the solver's retained
	// endpoint state matches the fault set of its last invocation), the
	// next full remap hands this delta to FindDelta instead of resolving
	// the whole endpoint state cold. Local tactics never touch the solver,
	// so the delta routinely spans several repairs.
	pendingDelta map[int]int
	warmSynced   bool

	reg          *obs.Registry
	repairLat    [FullRemap + 1]*obs.Histogram // per-tactic repair latency
	repairCount  [FullRemap + 1]*obs.Counter   // per-tactic repair counts
	downtimeHist [FullRemap + 1]*obs.Histogram // per-tactic downtime ledger export
	rollbackNum  *obs.Counter                  // rolled-back operations
	rollbackHist *obs.Histogram                // time burnt on rolled-back attempts
	certFailures *obs.Counter                  // invalid local repairs caught by the certificate check
	fallbacks    *obs.Counter                  // local tactics exhausted → full recompute

	// remapSpan is the causal parent for this remap's phase spans
	// (detect/plan/solve/audit). The pipeline layer owns the root "remap"
	// span and installs it via SetActiveSpan; remaps are serialized by the
	// stream pump, so one slot suffices. nil (the common case outside
	// traced runs) makes every phase span a no-op or a root.
	remapSpan *span.S
}

// New computes the initial (fault-free) pipeline for a designed solution.
func New(sol *construct.Solution) (*Manager, error) {
	m := &Manager{
		g:            sol.Graph,
		solver:       embed.NewSolver(sol.Graph, embed.Options{Layout: sol.Layout, Memo: true}),
		faults:       bitset.New(sol.Graph.NumNodes()),
		k:            sol.K,
		reg:          obs.Default(),
		pendingDelta: make(map[int]int),
	}
	for t := NoChange; t <= FullRemap; t++ {
		lbl := obs.L("tactic", t.String())
		m.repairLat[t] = m.reg.Histogram("reconfig_repair_ns", lbl)
		m.repairCount[t] = m.reg.Counter("reconfig_repairs_total", lbl)
		m.downtimeHist[t] = m.reg.Histogram("reconfig_downtime_ns", lbl)
	}
	m.rollbackNum = m.reg.Counter("reconfig_rollbacks_total")
	m.rollbackHist = m.reg.Histogram("reconfig_rollback_ns")
	m.certFailures = m.reg.Counter("reconfig_cert_failures_total")
	m.fallbacks = m.reg.Counter("reconfig_full_remap_fallback_total")
	if slo := span.DefaultSLO(); slo.Enabled() {
		for _, kind := range []graph.Kind{graph.Processor, graph.InputTerminal, graph.OutputTerminal} {
			slo.RegisterClass(kind.String(), m.g.CountKind(kind))
		}
		slo.SetDegradation(0, m.k)
	}
	if err := m.fullRemap(time.Now()); err != nil {
		return nil, err
	}
	m.stats = Stats{} // the initial mapping is not a repair
	return m, nil
}

// Pipeline returns the current pipeline (aliased; do not modify).
func (m *Manager) Pipeline() graph.Path { return m.path }

// Stats returns a copy of the repair counters; mutating the result does
// not affect the manager.
func (m *Manager) Stats() Stats { return m.stats }

// Faults returns a defensive copy of the current fault set; mutating the
// result does not affect the manager.
func (m *Manager) Faults() bitset.Set { return m.faults.Clone() }

// SetDeadline bounds every subsequent repair's full-remap solve to d of
// wall-clock time: the solver gives up (and the operation rolls back to
// the last valid pipeline) when the deadline expires, and even a solution
// that arrives late is discarded — a deployment would already have
// declared the remap failed. The bound is enforced through a per-repair
// embed.Resources scope (a timer latches the stop flag; the solver's hot
// loops never read the clock), budgeted with the time the local tactics
// already consumed. Local tactics themselves are microsecond-scale and
// are not bounded. 0 disables.
func (m *Manager) SetDeadline(d time.Duration) { m.deadline = d }

// SetResources attaches an ambient cancellation/budget token: canceling
// it aborts any in-flight full-remap solve — the repair rolls back like a
// deadline miss, with errors.Is(err, embed.ErrCanceled) true — and makes
// subsequent remaps fail fast until the token is replaced. nil detaches.
func (m *Manager) SetResources(r *embed.Resources) { m.res = r }

// Resources returns the ambient token (nil when unset).
func (m *Manager) Resources() *embed.Resources { return m.res }

// SetActiveSpan installs the causal parent for the phase spans
// (detect/plan/solve/audit) of subsequent Fault/Repair calls. The caller
// that owns the root "remap" span — the pipeline layer — sets it before
// each remap and clears it (nil) after. Remaps are serialized, so a
// single slot suffices.
func (m *Manager) SetActiveSpan(sp *span.S) { m.remapSpan = sp }

// RemapStatus maps a Fault/Repair error to the span status and the
// cancellation-reason attribute ("" = none) the remap's span should carry.
func RemapStatus(err error) (span.Status, string) {
	switch {
	case err == nil:
		return span.OK, ""
	case errors.Is(err, ErrDeadline) || errors.Is(err, embed.ErrDeadline):
		return span.Deadline, "deadline"
	case errors.Is(err, embed.ErrCanceled):
		return span.Canceled, "canceled"
	case errors.Is(err, embed.ErrBudget):
		return span.Rollback, "budget"
	default:
		return span.Rollback, ""
	}
}

// endPhase finishes a phase span with the status/reason derived from err.
func endPhase(sp *span.S, err error) {
	st, reason := RemapStatus(err)
	if reason != "" {
		sp.SetStr("cancel_reason", reason)
	}
	sp.End(st)
}

// Downtime returns a copy of the per-tactic downtime ledger.
func (m *Manager) Downtime() DowntimeStats {
	ds := DowntimeStats{
		PerTactic:    m.downtime,
		Rollbacks:    m.rollbacks,
		RollbackTime: m.rollbackTime,
	}
	for _, d := range m.downtime {
		ds.Total += d
	}
	return ds
}

// Fault marks a node faulty and repairs the pipeline, preferring local
// tactics. It returns the tactic used, or an error when no pipeline
// survives (beyond-budget fault sets) — in that case the fault is rolled
// back and the previous pipeline remains valid.
func (m *Manager) Fault(node int) (Tactic, error) {
	if node < 0 || node >= m.g.NumNodes() {
		return 0, fmt.Errorf("reconfig: node %d out of range", node)
	}
	if m.faults.Contains(node) {
		return 0, fmt.Errorf("reconfig: node %d already faulty", node)
	}
	observing := m.reg.Enabled()
	start := time.Now() // always sampled: downtime accounting is not gated on obs
	m.faults.Add(node)
	m.noteDelta(node, +1)

	detect := span.Start(m.remapSpan, "detect")
	idx := -1
	for i, v := range m.path {
		if v == node {
			idx = i
			break
		}
	}
	detect.SetStr("op", "fault").SetInt("node", int64(node)).SetInt("path_idx", int64(idx))
	detect.End(span.OK)
	if idx == -1 {
		// Not on the pipeline: only unused terminals qualify (every healthy
		// processor is on the pipeline by definition).
		m.stats.NoChange++
		m.account(NoChange, start)
		m.observeRepair(NoChange, start, node, observing)
		m.markDown(node)
		return NoChange, nil
	}

	plan := span.Start(m.remapSpan, "plan")
	var tactic Tactic
	var repaired graph.Path
	switch {
	case idx == 0 || idx == len(m.path)-1:
		repaired, tactic = m.repairEndpoint(idx, plan)
	default:
		repaired, tactic = m.repairInterior(idx, plan)
	}
	if repaired != nil {
		plan.SetStr("tactic", tactic.String())
	} else {
		plan.SetStr("tactic", "exhausted")
	}
	plan.End(span.OK)
	if repaired != nil {
		audit := span.Start(m.remapSpan, "audit")
		if err := verify.CheckPipeline(m.g, m.faults, repaired); err == nil {
			audit.End(span.OK)
			m.stats.MovedStages += movedStages(m.path, repaired)
			m.path = repaired
			m.bump(tactic)
			m.account(tactic, start)
			m.observeRepair(tactic, start, node, observing)
			m.markDown(node)
			return tactic, nil
		} else {
			audit.SetStr("error", err.Error()).End(span.Errored)
		}
		// A local tactic produced an invalid pipeline; the certificate
		// check caught it and we degrade to the full recompute.
		m.certFailures.Inc()
		m.reg.Eventf("cert_check_failed", "node=%d tactic=%s", node, tactic)
	}
	// Local tactics failed (or produced something invalid): full remap.
	m.fallbacks.Inc()
	m.reg.Eventf("full_remap_fallback", "node=%d", node)
	if err := m.fullRemap(start); err != nil {
		m.faults.Remove(node)
		m.noteDelta(node, -1)
		m.rollback(start)
		m.reg.Eventf("repair_failed", "node=%d err=%v", node, err)
		return 0, err
	}
	m.account(FullRemap, start)
	m.observeRepair(FullRemap, start, node, observing)
	m.markDown(node)
	return FullRemap, nil
}

// account folds one completed repair's latency into the per-tactic
// downtime ledger and its exported histogram.
func (m *Manager) account(t Tactic, start time.Time) {
	d := time.Since(start)
	m.downtime[t] += d
	m.downtimeHist[t].ObserveDuration(d)
}

// noteDelta accumulates one fault-set mutation into the net delta handed
// to the solver's next warm incremental solve: +1 for a fault added, −1
// for a fault removed. Opposite mutations of the same node (a fault that
// was rolled back, or a fault repaired before the solver ever saw it)
// cancel to zero and drop out of the delta entirely.
func (m *Manager) noteDelta(node, sign int) {
	if d := m.pendingDelta[node] + sign; d == 0 {
		delete(m.pendingDelta, node)
	} else {
		m.pendingDelta[node] = d
	}
}

// solveRemap invokes the solver, preferring the warm incremental path:
// once a cold Find has established the solver's retained endpoint state,
// every later remap replays only the accumulated net fault delta via
// FindDelta. The pending delta is consumed exactly here — fullRemap's
// early returns (deadline already expired, ambient token stopped) never
// reach the solver, so the delta keeps accumulating and the next remap
// still hands it a correct net change. When the solve itself fails or its
// result is discarded, the solver's endpoint state has still advanced to
// the fault set it was given; the caller's rollback pushes the reverse
// single-node delta, keeping the chain consistent.
func (m *Manager) solveRemap() embed.Result {
	if !m.warmSynced {
		clear(m.pendingDelta)
		m.warmSynced = true
		return m.solver.Find(m.faults)
	}
	var removed, added []int
	for node, d := range m.pendingDelta {
		switch {
		case d > 0:
			added = append(added, node)
		case d < 0:
			removed = append(removed, node)
		}
	}
	clear(m.pendingDelta)
	return m.solver.FindDelta(m.faults, removed, added)
}

// SolverCache reports the solver's warm-endpoint and memo cache traffic
// accumulated across this manager's remaps — the observable effect of
// keeping one Solver (and its retained state) alive for the whole soak.
func (m *Manager) SolverCache() (warmHits, warmMisses, memoHits, memoMisses int64) {
	warmHits, warmMisses = m.solver.Warm()
	memoHits, memoMisses = m.solver.Memo()
	return
}

// rollback records one rolled-back operation in the ledger and metrics.
func (m *Manager) rollback(start time.Time) {
	d := time.Since(start)
	m.rollbacks++
	m.rollbackTime += d
	m.rollbackNum.Inc()
	m.rollbackHist.ObserveDuration(d)
}

// markDown feeds the SLO availability ledger and degradation gauge after
// a successful Fault (the node is now genuinely out of service).
func (m *Manager) markDown(node int) {
	if slo := span.DefaultSLO(); slo.Enabled() {
		slo.NodeDown(m.g.Kind(node).String())
		slo.SetDegradation(m.faults.Count(), m.k)
	}
}

// markUp is markDown's inverse, after a successful Repair.
func (m *Manager) markUp(node int) {
	if slo := span.DefaultSLO(); slo.Enabled() {
		slo.NodeUp(m.g.Kind(node).String())
		slo.SetDegradation(m.faults.Count(), m.k)
	}
}

// observeRepair records the latency histogram, per-tactic counter, and
// trace event for one completed repair.
func (m *Manager) observeRepair(t Tactic, start time.Time, node int, observing bool) {
	if !observing {
		return
	}
	m.repairLat[t].ObserveSince(start)
	m.repairCount[t].Inc()
	m.reg.Eventf("repair", "node=%d tactic=%s procs=%d", node, t, len(m.path)-2)
}

// Repair marks a node healthy again and re-inserts it into the pipeline
// (graceful degradation works in both directions: a repaired processor
// must be used again).
func (m *Manager) Repair(node int) (Tactic, error) {
	if node < 0 || node >= m.g.NumNodes() || !m.faults.Contains(node) {
		return 0, fmt.Errorf("reconfig: node %d is not faulty", node)
	}
	observing := m.reg.Enabled()
	start := time.Now() // always sampled: downtime accounting is not gated on obs
	m.faults.Remove(node)
	m.noteDelta(node, -1)

	detect := span.Start(m.remapSpan, "detect")
	detect.SetStr("op", "repair").SetInt("node", int64(node))
	detect.SetStr("kind", m.g.Kind(node).String())
	detect.End(span.OK)
	if m.g.Kind(node) != graph.Processor {
		// A repaired terminal changes nothing until an endpoint needs it.
		m.stats.NoChange++
		m.account(NoChange, start)
		m.observeRepair(NoChange, start, node, observing)
		m.markUp(node)
		return NoChange, nil
	}
	// Insert between some adjacent pipeline pair.
	plan := span.Start(m.remapSpan, "plan")
	for i := 0; i+1 < len(m.path); i++ {
		if m.g.HasEdge(m.path[i], node) && m.g.HasEdge(node, m.path[i+1]) {
			repaired := make(graph.Path, 0, len(m.path)+1)
			repaired = append(repaired, m.path[:i+1]...)
			repaired = append(repaired, node)
			repaired = append(repaired, m.path[i+1:]...)
			audit := span.Start(m.remapSpan, "audit")
			if err := verify.CheckPipeline(m.g, m.faults, repaired); err == nil {
				audit.End(span.OK)
				plan.SetStr("tactic", Insert.String()).SetInt("insert_at", int64(i+1))
				plan.End(span.OK)
				m.path = repaired
				m.stats.Insert++
				m.account(Insert, start)
				m.observeRepair(Insert, start, node, observing)
				m.markUp(node)
				return Insert, nil
			} else {
				audit.SetStr("error", err.Error()).End(span.Errored)
			}
		}
	}
	plan.SetStr("tactic", "exhausted")
	plan.End(span.OK)
	m.fallbacks.Inc()
	m.reg.Eventf("full_remap_fallback", "node=%d", node)
	if err := m.fullRemap(start); err != nil {
		m.faults.Add(node)
		m.noteDelta(node, +1)
		m.rollback(start)
		m.reg.Eventf("repair_failed", "node=%d err=%v", node, err)
		return 0, err
	}
	m.account(FullRemap, start)
	m.observeRepair(FullRemap, start, node, observing)
	m.markUp(node)
	return FullRemap, nil
}

// attempt opens a tactic-attempt span under the plan phase.
func attempt(plan *span.S, name string) *span.S {
	return span.Start(plan, "tactic").SetStr("tactic", name)
}

// endAttempt closes a tactic-attempt span with its hit/miss outcome.
func endAttempt(sp *span.S, hit bool) {
	if hit {
		sp.SetStr("result", "hit")
	} else {
		sp.SetStr("result", "miss")
	}
	sp.End(span.OK)
}

// repairInterior handles a failed interior processor at position idx. Each
// local tactic scan is recorded as a child "tactic" span of the plan phase.
func (m *Manager) repairInterior(idx int, plan *span.S) (graph.Path, Tactic) {
	a, b := m.path[idx-1], m.path[idx+1]
	// Splice: neighbors already adjacent.
	sp := attempt(plan, "splice")
	if m.g.HasEdge(a, b) {
		endAttempt(sp, true)
		out := make(graph.Path, 0, len(m.path)-1)
		out = append(out, m.path[:idx]...)
		out = append(out, m.path[idx+1:]...)
		return out, Splice
	}
	endAttempt(sp, false)
	// 2-opt rewire: reverse path[idx+1..j] so that a—path[j] and
	// path[idx+1]—path[j+1] become the new links.
	sp = attempt(plan, "rewire-right")
	for j := idx + 1; j+1 < len(m.path); j++ {
		if m.g.HasEdge(a, m.path[j]) && m.g.HasEdge(m.path[idx+1], m.path[j+1]) {
			endAttempt(sp, true)
			out := make(graph.Path, 0, len(m.path)-1)
			out = append(out, m.path[:idx]...)
			for x := j; x >= idx+1; x-- {
				out = append(out, m.path[x])
			}
			out = append(out, m.path[j+1:]...)
			return out, Rewire
		}
	}
	endAttempt(sp, false)
	// Mirror: reverse path[i..idx-1] on the left side.
	sp = attempt(plan, "rewire-left")
	for i := idx - 1; i > 0; i-- {
		if m.g.HasEdge(m.path[i-1], m.path[idx-1]) && m.g.HasEdge(m.path[i], b) {
			endAttempt(sp, true)
			out := make(graph.Path, 0, len(m.path)-1)
			out = append(out, m.path[:i]...)
			for x := idx - 1; x >= i; x-- {
				out = append(out, m.path[x])
			}
			out = append(out, m.path[idx+1:]...)
			return out, Rewire
		}
	}
	endAttempt(sp, false)
	return nil, FullRemap
}

// repairEndpoint handles a failed terminal at either end.
func (m *Manager) repairEndpoint(idx int, plan *span.S) (graph.Path, Tactic) {
	var border int
	var kind graph.Kind
	if idx == 0 {
		border = m.path[1]
		kind = graph.InputTerminal
	} else {
		border = m.path[len(m.path)-2]
		kind = graph.OutputTerminal
	}
	sp := attempt(plan, "endpoint-swap")
	for _, u := range m.g.Neighbors(border) {
		if m.g.Kind(int(u)) == kind && !m.faults.Contains(int(u)) {
			endAttempt(sp, true)
			out := append(graph.Path(nil), m.path...)
			if idx == 0 {
				out[0] = int(u)
			} else {
				out[len(out)-1] = int(u)
			}
			return out, EndpointSwap
		}
	}
	endAttempt(sp, false)
	return nil, FullRemap
}

// fullRemap recomputes the pipeline with the solver. The solve runs under
// a child scope of the manager's ambient token carrying whatever remains
// of the repair deadline (`started` is when the repair began — the
// deadline covers the whole repair, local tactics included). The deadline
// is enforced twice: the scope's timer stops the solver mid-search, and a
// result that lands after the deadline — even a valid one — is discarded,
// because a deployment would already have declared the remap failed.
func (m *Manager) fullRemap(started time.Time) error {
	solve := span.Start(m.remapSpan, "solve")
	m.solver.SetSpan(solve)
	defer m.solver.SetSpan(nil)
	if m.res != nil && m.res.Stopped() {
		err := fmt.Errorf("reconfig: remap aborted: %w", m.res.Err())
		endPhase(solve, err)
		return err
	}
	if m.deadline > 0 {
		remaining := m.deadline - time.Since(started)
		if remaining <= 0 {
			err := fmt.Errorf("reconfig: %w (%v elapsed, deadline %v)",
				ErrDeadline, time.Since(started).Round(time.Microsecond), m.deadline)
			endPhase(solve, err)
			return err
		}
		solve.SetInt("deadline_remaining_ns", int64(remaining))
		scope := embed.Scoped(m.res, remaining)
		defer scope.Release()
		m.solver.SetResources(scope)
		defer m.solver.SetResources(m.res)
	} else {
		m.solver.SetResources(m.res)
	}
	res := m.solveRemap()
	solve.SetInt("expansions", res.Expansions)
	if m.deadline > 0 && time.Since(started) > m.deadline {
		err := fmt.Errorf("reconfig: %w (%v elapsed, deadline %v)",
			ErrDeadline, time.Since(started).Round(time.Microsecond), m.deadline)
		if res.Found {
			// A valid late result is discarded, not merely missing.
			solve.SetStr("late_result", "discarded")
		}
		endPhase(solve, err)
		return err
	}
	if !res.Found {
		var err error
		if res.Unknown && m.res != nil && m.res.Stopped() {
			err = fmt.Errorf("reconfig: remap canceled: %w", m.res.Err())
		} else {
			err = fmt.Errorf("reconfig: no pipeline (unknown=%v, faults=%v)", res.Unknown, m.faults.Slice())
		}
		endPhase(solve, err)
		return err
	}
	solve.End(span.OK)
	audit := span.Start(m.remapSpan, "audit")
	if err := verify.CheckPipeline(m.g, m.faults, res.Pipeline); err != nil {
		audit.SetStr("error", err.Error()).End(span.Errored)
		span.Trip(span.AnomalySolverBug, err.Error())
		return fmt.Errorf("reconfig: solver returned invalid pipeline: %w", err)
	}
	audit.End(span.OK)
	if m.path != nil {
		m.stats.MovedStages += movedStages(m.path, res.Pipeline)
	}
	m.path = res.Pipeline
	m.stats.FullRemap++
	return nil
}

func (m *Manager) bump(t Tactic) {
	switch t {
	case Splice:
		m.stats.Splice++
	case Rewire:
		m.stats.Rewire++
	case EndpointSwap:
		m.stats.EndpointSwap++
	}
}

// movedStages counts pipeline positions whose processor changed between
// two mappings (positions are compared over the shorter interior; a pure
// splice moves only the positions after the removed node... which still
// count, since their stage assignment shifts).
func movedStages(old, new graph.Path) int {
	oi, ni := old[1:len(old)-1], new[1:len(new)-1]
	moved := 0
	for i := 0; i < len(ni); i++ {
		if i >= len(oi) || oi[i] != ni[i] {
			moved++
		}
	}
	return moved
}
