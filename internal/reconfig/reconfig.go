// Package reconfig maintains a live pipeline across fault arrivals and
// repairs with minimal disruption. The paper guarantees that after any
// ≤ k faults SOME pipeline exists; a deployed array additionally cares how
// much of the old mapping survives a fault — every moved stage means state
// migration. This package repairs incrementally:
//
//   - splice: the failed processor's neighbors on the pipeline happen to
//     be adjacent — drop the node, nothing else moves;
//   - 2-opt rewire: reverse one segment of the pipeline to route around
//     the failed node — only the segment's direction changes;
//   - endpoint swap: a failed terminal is replaced by another healthy
//     terminal attached to the same border processor;
//   - insert: a repaired processor is spliced back between two adjacent
//     pipeline neighbors;
//
// falling back to a full solver recompute only when no local tactic
// applies. Every repaired pipeline is certificate-checked; an invalid
// local repair degrades to the full recompute, never to a wrong result.
package reconfig

import (
	"errors"
	"fmt"
	"time"

	"gdpn/internal/bitset"
	"gdpn/internal/construct"
	"gdpn/internal/embed"
	"gdpn/internal/graph"
	"gdpn/internal/obs"
	"gdpn/internal/verify"
)

// Tactic identifies how a repair was accomplished.
type Tactic int

const (
	// NoChange means the failed node was not part of the pipeline.
	NoChange Tactic = iota
	// Splice removed the failed node; its pipeline neighbors were adjacent.
	Splice
	// Rewire routed around the failed node by reversing one segment.
	Rewire
	// EndpointSwap replaced a failed terminal with a sibling terminal.
	EndpointSwap
	// Insert spliced a repaired processor back into the pipeline.
	Insert
	// FullRemap recomputed the pipeline with the solver.
	FullRemap
)

// String names the tactic.
func (t Tactic) String() string {
	switch t {
	case NoChange:
		return "no-change"
	case Splice:
		return "splice"
	case Rewire:
		return "rewire"
	case EndpointSwap:
		return "endpoint-swap"
	case Insert:
		return "insert"
	case FullRemap:
		return "full-remap"
	default:
		return fmt.Sprintf("tactic(%d)", int(t))
	}
}

// Stats counts repairs by tactic.
type Stats struct {
	NoChange, Splice, Rewire, EndpointSwap, Insert, FullRemap int
	// MovedStages accumulates |positions whose processor changed| across
	// repairs — the state-migration cost a deployment would pay.
	MovedStages int
}

// ErrDeadline is wrapped into the error returned by Fault/Repair when a
// full-remap solve misses the manager's deadline (SetDeadline). The
// operation is rolled back: the previous pipeline stays live and the
// node's fault state is unchanged, so the caller can retry later.
var ErrDeadline = errors.New("remap deadline exceeded")

// DowntimeStats is the per-tactic downtime ledger: how long the pipeline
// was unavailable (from fault arrival to the new mapping being installed)
// under each repair tactic, plus the time burnt on rolled-back attempts.
type DowntimeStats struct {
	// PerTactic accumulates repair latency by the tactic that resolved it.
	PerTactic [FullRemap + 1]time.Duration
	// Total is the sum over PerTactic (rollback time excluded).
	Total time.Duration
	// Rollbacks counts operations undone after a deadline miss or an
	// unsolvable (beyond-budget) fault set.
	Rollbacks int
	// RollbackTime accumulates the time spent on rolled-back attempts.
	RollbackTime time.Duration
}

// Manager holds the live pipeline of one network.
type Manager struct {
	g      *graph.Graph
	solver *embed.Solver
	faults bitset.Set
	path   graph.Path
	stats  Stats

	// deadline bounds each repair's full-remap solve (0 = unbounded); see
	// SetDeadline. downtime/rollbacks feed DowntimeStats.
	deadline     time.Duration
	downtime     [FullRemap + 1]time.Duration
	rollbacks    int
	rollbackTime time.Duration
	// res is the ambient cancellation token (SetResources); every remap
	// solve runs under a per-repair child scope of it.
	res *embed.Resources

	reg          *obs.Registry
	repairLat    [FullRemap + 1]*obs.Histogram // per-tactic repair latency
	repairCount  [FullRemap + 1]*obs.Counter   // per-tactic repair counts
	certFailures *obs.Counter                  // invalid local repairs caught by the certificate check
	fallbacks    *obs.Counter                  // local tactics exhausted → full recompute
}

// New computes the initial (fault-free) pipeline for a designed solution.
func New(sol *construct.Solution) (*Manager, error) {
	m := &Manager{
		g:      sol.Graph,
		solver: embed.NewSolver(sol.Graph, embed.Options{Layout: sol.Layout}),
		faults: bitset.New(sol.Graph.NumNodes()),
		reg:    obs.Default(),
	}
	for t := NoChange; t <= FullRemap; t++ {
		lbl := obs.L("tactic", t.String())
		m.repairLat[t] = m.reg.Histogram("reconfig_repair_ns", lbl)
		m.repairCount[t] = m.reg.Counter("reconfig_repairs_total", lbl)
	}
	m.certFailures = m.reg.Counter("reconfig_cert_failures_total")
	m.fallbacks = m.reg.Counter("reconfig_full_remap_fallback_total")
	if err := m.fullRemap(time.Now()); err != nil {
		return nil, err
	}
	m.stats = Stats{} // the initial mapping is not a repair
	return m, nil
}

// Pipeline returns the current pipeline (aliased; do not modify).
func (m *Manager) Pipeline() graph.Path { return m.path }

// Stats returns a copy of the repair counters; mutating the result does
// not affect the manager.
func (m *Manager) Stats() Stats { return m.stats }

// Faults returns a defensive copy of the current fault set; mutating the
// result does not affect the manager.
func (m *Manager) Faults() bitset.Set { return m.faults.Clone() }

// SetDeadline bounds every subsequent repair's full-remap solve to d of
// wall-clock time: the solver gives up (and the operation rolls back to
// the last valid pipeline) when the deadline expires, and even a solution
// that arrives late is discarded — a deployment would already have
// declared the remap failed. The bound is enforced through a per-repair
// embed.Resources scope (a timer latches the stop flag; the solver's hot
// loops never read the clock), budgeted with the time the local tactics
// already consumed. Local tactics themselves are microsecond-scale and
// are not bounded. 0 disables.
func (m *Manager) SetDeadline(d time.Duration) { m.deadline = d }

// SetResources attaches an ambient cancellation/budget token: canceling
// it aborts any in-flight full-remap solve — the repair rolls back like a
// deadline miss, with errors.Is(err, embed.ErrCanceled) true — and makes
// subsequent remaps fail fast until the token is replaced. nil detaches.
func (m *Manager) SetResources(r *embed.Resources) { m.res = r }

// Resources returns the ambient token (nil when unset).
func (m *Manager) Resources() *embed.Resources { return m.res }

// Downtime returns a copy of the per-tactic downtime ledger.
func (m *Manager) Downtime() DowntimeStats {
	ds := DowntimeStats{
		PerTactic:    m.downtime,
		Rollbacks:    m.rollbacks,
		RollbackTime: m.rollbackTime,
	}
	for _, d := range m.downtime {
		ds.Total += d
	}
	return ds
}

// Fault marks a node faulty and repairs the pipeline, preferring local
// tactics. It returns the tactic used, or an error when no pipeline
// survives (beyond-budget fault sets) — in that case the fault is rolled
// back and the previous pipeline remains valid.
func (m *Manager) Fault(node int) (Tactic, error) {
	if node < 0 || node >= m.g.NumNodes() {
		return 0, fmt.Errorf("reconfig: node %d out of range", node)
	}
	if m.faults.Contains(node) {
		return 0, fmt.Errorf("reconfig: node %d already faulty", node)
	}
	observing := m.reg.Enabled()
	start := time.Now() // always sampled: downtime accounting is not gated on obs
	m.faults.Add(node)

	idx := -1
	for i, v := range m.path {
		if v == node {
			idx = i
			break
		}
	}
	if idx == -1 {
		// Not on the pipeline: only unused terminals qualify (every healthy
		// processor is on the pipeline by definition).
		m.stats.NoChange++
		m.downtime[NoChange] += time.Since(start)
		m.observeRepair(NoChange, start, node, observing)
		return NoChange, nil
	}

	var tactic Tactic
	var repaired graph.Path
	switch {
	case idx == 0 || idx == len(m.path)-1:
		repaired, tactic = m.repairEndpoint(idx)
	default:
		repaired, tactic = m.repairInterior(idx)
	}
	if repaired != nil {
		if verify.CheckPipeline(m.g, m.faults, repaired) == nil {
			m.stats.MovedStages += movedStages(m.path, repaired)
			m.path = repaired
			m.bump(tactic)
			m.downtime[tactic] += time.Since(start)
			m.observeRepair(tactic, start, node, observing)
			return tactic, nil
		}
		// A local tactic produced an invalid pipeline; the certificate
		// check caught it and we degrade to the full recompute.
		m.certFailures.Inc()
		m.reg.Eventf("cert_check_failed", "node=%d tactic=%s", node, tactic)
	}
	// Local tactics failed (or produced something invalid): full remap.
	m.fallbacks.Inc()
	m.reg.Eventf("full_remap_fallback", "node=%d", node)
	if err := m.fullRemap(start); err != nil {
		m.faults.Remove(node)
		m.rollbacks++
		m.rollbackTime += time.Since(start)
		m.reg.Eventf("repair_failed", "node=%d err=%v", node, err)
		return 0, err
	}
	m.downtime[FullRemap] += time.Since(start)
	m.observeRepair(FullRemap, start, node, observing)
	return FullRemap, nil
}

// observeRepair records the latency histogram, per-tactic counter, and
// trace event for one completed repair.
func (m *Manager) observeRepair(t Tactic, start time.Time, node int, observing bool) {
	if !observing {
		return
	}
	m.repairLat[t].ObserveSince(start)
	m.repairCount[t].Inc()
	m.reg.Eventf("repair", "node=%d tactic=%s procs=%d", node, t, len(m.path)-2)
}

// Repair marks a node healthy again and re-inserts it into the pipeline
// (graceful degradation works in both directions: a repaired processor
// must be used again).
func (m *Manager) Repair(node int) (Tactic, error) {
	if node < 0 || node >= m.g.NumNodes() || !m.faults.Contains(node) {
		return 0, fmt.Errorf("reconfig: node %d is not faulty", node)
	}
	observing := m.reg.Enabled()
	start := time.Now() // always sampled: downtime accounting is not gated on obs
	m.faults.Remove(node)
	if m.g.Kind(node) != graph.Processor {
		// A repaired terminal changes nothing until an endpoint needs it.
		m.stats.NoChange++
		m.downtime[NoChange] += time.Since(start)
		m.observeRepair(NoChange, start, node, observing)
		return NoChange, nil
	}
	// Insert between some adjacent pipeline pair.
	for i := 0; i+1 < len(m.path); i++ {
		if m.g.HasEdge(m.path[i], node) && m.g.HasEdge(node, m.path[i+1]) {
			repaired := make(graph.Path, 0, len(m.path)+1)
			repaired = append(repaired, m.path[:i+1]...)
			repaired = append(repaired, node)
			repaired = append(repaired, m.path[i+1:]...)
			if verify.CheckPipeline(m.g, m.faults, repaired) == nil {
				m.path = repaired
				m.stats.Insert++
				m.downtime[Insert] += time.Since(start)
				m.observeRepair(Insert, start, node, observing)
				return Insert, nil
			}
		}
	}
	m.fallbacks.Inc()
	m.reg.Eventf("full_remap_fallback", "node=%d", node)
	if err := m.fullRemap(start); err != nil {
		m.faults.Add(node)
		m.rollbacks++
		m.rollbackTime += time.Since(start)
		m.reg.Eventf("repair_failed", "node=%d err=%v", node, err)
		return 0, err
	}
	m.downtime[FullRemap] += time.Since(start)
	m.observeRepair(FullRemap, start, node, observing)
	return FullRemap, nil
}

// repairInterior handles a failed interior processor at position idx.
func (m *Manager) repairInterior(idx int) (graph.Path, Tactic) {
	a, b := m.path[idx-1], m.path[idx+1]
	// Splice: neighbors already adjacent.
	if m.g.HasEdge(a, b) {
		out := make(graph.Path, 0, len(m.path)-1)
		out = append(out, m.path[:idx]...)
		out = append(out, m.path[idx+1:]...)
		return out, Splice
	}
	// 2-opt rewire: reverse path[idx+1..j] so that a—path[j] and
	// path[idx+1]—path[j+1] become the new links.
	for j := idx + 1; j+1 < len(m.path); j++ {
		if m.g.HasEdge(a, m.path[j]) && m.g.HasEdge(m.path[idx+1], m.path[j+1]) {
			out := make(graph.Path, 0, len(m.path)-1)
			out = append(out, m.path[:idx]...)
			for x := j; x >= idx+1; x-- {
				out = append(out, m.path[x])
			}
			out = append(out, m.path[j+1:]...)
			return out, Rewire
		}
	}
	// Mirror: reverse path[i..idx-1] on the left side.
	for i := idx - 1; i > 0; i-- {
		if m.g.HasEdge(m.path[i-1], m.path[idx-1]) && m.g.HasEdge(m.path[i], b) {
			out := make(graph.Path, 0, len(m.path)-1)
			out = append(out, m.path[:i]...)
			for x := idx - 1; x >= i; x-- {
				out = append(out, m.path[x])
			}
			out = append(out, m.path[idx+1:]...)
			return out, Rewire
		}
	}
	return nil, FullRemap
}

// repairEndpoint handles a failed terminal at either end.
func (m *Manager) repairEndpoint(idx int) (graph.Path, Tactic) {
	var border int
	var kind graph.Kind
	if idx == 0 {
		border = m.path[1]
		kind = graph.InputTerminal
	} else {
		border = m.path[len(m.path)-2]
		kind = graph.OutputTerminal
	}
	for _, u := range m.g.Neighbors(border) {
		if m.g.Kind(int(u)) == kind && !m.faults.Contains(int(u)) {
			out := append(graph.Path(nil), m.path...)
			if idx == 0 {
				out[0] = int(u)
			} else {
				out[len(out)-1] = int(u)
			}
			return out, EndpointSwap
		}
	}
	return nil, FullRemap
}

// fullRemap recomputes the pipeline with the solver. The solve runs under
// a child scope of the manager's ambient token carrying whatever remains
// of the repair deadline (`started` is when the repair began — the
// deadline covers the whole repair, local tactics included). The deadline
// is enforced twice: the scope's timer stops the solver mid-search, and a
// result that lands after the deadline — even a valid one — is discarded,
// because a deployment would already have declared the remap failed.
func (m *Manager) fullRemap(started time.Time) error {
	if m.res != nil && m.res.Stopped() {
		return fmt.Errorf("reconfig: remap aborted: %w", m.res.Err())
	}
	if m.deadline > 0 {
		remaining := m.deadline - time.Since(started)
		if remaining <= 0 {
			return fmt.Errorf("reconfig: %w (%v elapsed, deadline %v)",
				ErrDeadline, time.Since(started).Round(time.Microsecond), m.deadline)
		}
		scope := embed.Scoped(m.res, remaining)
		defer scope.Release()
		m.solver.SetResources(scope)
		defer m.solver.SetResources(m.res)
	} else {
		m.solver.SetResources(m.res)
	}
	res := m.solver.Find(m.faults)
	if m.deadline > 0 && time.Since(started) > m.deadline {
		return fmt.Errorf("reconfig: %w (%v elapsed, deadline %v)",
			ErrDeadline, time.Since(started).Round(time.Microsecond), m.deadline)
	}
	if !res.Found {
		if res.Unknown && m.res != nil && m.res.Stopped() {
			return fmt.Errorf("reconfig: remap canceled: %w", m.res.Err())
		}
		return fmt.Errorf("reconfig: no pipeline (unknown=%v, faults=%v)", res.Unknown, m.faults.Slice())
	}
	if err := verify.CheckPipeline(m.g, m.faults, res.Pipeline); err != nil {
		return fmt.Errorf("reconfig: solver returned invalid pipeline: %w", err)
	}
	if m.path != nil {
		m.stats.MovedStages += movedStages(m.path, res.Pipeline)
	}
	m.path = res.Pipeline
	m.stats.FullRemap++
	return nil
}

func (m *Manager) bump(t Tactic) {
	switch t {
	case Splice:
		m.stats.Splice++
	case Rewire:
		m.stats.Rewire++
	case EndpointSwap:
		m.stats.EndpointSwap++
	}
}

// movedStages counts pipeline positions whose processor changed between
// two mappings (positions are compared over the shorter interior; a pure
// splice moves only the positions after the removed node... which still
// count, since their stage assignment shifts).
func movedStages(old, new graph.Path) int {
	oi, ni := old[1:len(old)-1], new[1:len(new)-1]
	moved := 0
	for i := 0; i < len(ni); i++ {
		if i >= len(oi) || oi[i] != ni[i] {
			moved++
		}
	}
	return moved
}
