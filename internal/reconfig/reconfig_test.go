package reconfig_test

import (
	"math/rand"
	"testing"

	"gdpn/internal/construct"
	"gdpn/internal/graph"
	"gdpn/internal/reconfig"
	"gdpn/internal/verify"
)

func manager(t testing.TB, n, k int) *reconfig.Manager {
	t.Helper()
	sol, err := construct.Design(n, k)
	if err != nil {
		t.Fatalf("Design(%d,%d): %v", n, k, err)
	}
	m, err := reconfig.New(sol)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func mustValid(t *testing.T, m *reconfig.Manager, g *graph.Graph) {
	t.Helper()
	if err := verify.CheckPipeline(g, m.Faults(), m.Pipeline()); err != nil {
		t.Fatalf("invalid pipeline after repair: %v", err)
	}
}

func TestFaultOffPipelineIsNoChange(t *testing.T) {
	sol, _ := construct.Design(8, 2)
	m, err := reconfig.New(sol)
	if err != nil {
		t.Fatal(err)
	}
	// Find a terminal not used by the current pipeline.
	used := map[int]bool{}
	for _, v := range m.Pipeline() {
		used[v] = true
	}
	victim := -1
	for _, ti := range sol.Graph.InputTerminals() {
		if !used[ti] {
			victim = ti
			break
		}
	}
	if victim == -1 {
		t.Fatal("no unused terminal")
	}
	tac, err := m.Fault(victim)
	if err != nil || tac != reconfig.NoChange {
		t.Fatalf("tactic %v err %v, want no-change", tac, err)
	}
	if m.Stats().NoChange != 1 {
		t.Fatalf("stats %+v", m.Stats())
	}
	mustValid(t, m, sol.Graph)
}

func TestInteriorFaultRepairs(t *testing.T) {
	sol, _ := construct.Design(12, 3)
	m, err := reconfig.New(sol)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		p := m.Pipeline()
		victim := p[len(p)/2]
		tac, err := m.Fault(victim)
		if err != nil {
			t.Fatalf("fault %d: %v", i, err)
		}
		if tac == reconfig.NoChange {
			t.Fatalf("interior fault reported no-change")
		}
		mustValid(t, m, sol.Graph)
	}
	if got := len(m.Pipeline()) - 2; got != 12 {
		t.Fatalf("processors in use %d, want 12 (all healthy)", got)
	}
}

func TestEndpointTerminalSwap(t *testing.T) {
	sol, _ := construct.Design(10, 2)
	m, err := reconfig.New(sol)
	if err != nil {
		t.Fatal(err)
	}
	first := m.Pipeline()[0]
	if sol.Graph.Kind(first) != graph.InputTerminal && sol.Graph.Kind(first) != graph.OutputTerminal {
		t.Fatal("pipeline does not start with a terminal")
	}
	tac, err := m.Fault(first)
	if err != nil {
		t.Fatal(err)
	}
	mustValid(t, m, sol.Graph)
	// G(10,2) terminals have degree 1, so the border processor has exactly
	// one terminal of each kind; an endpoint swap is impossible and a full
	// remap (or rewire path) is expected — whatever happened must be valid.
	_ = tac
}

func TestRepairReinsertsProcessor(t *testing.T) {
	sol, _ := construct.Design(9, 2)
	m, err := reconfig.New(sol)
	if err != nil {
		t.Fatal(err)
	}
	victim := m.Pipeline()[4]
	if _, err := m.Fault(victim); err != nil {
		t.Fatal(err)
	}
	mustValid(t, m, sol.Graph)
	if len(m.Pipeline())-2 != 10 { // 11 processors − 1 fault
		t.Fatalf("coverage %d", len(m.Pipeline())-2)
	}
	tac, err := m.Repair(victim)
	if err != nil {
		t.Fatal(err)
	}
	if tac != reconfig.Insert && tac != reconfig.FullRemap {
		t.Fatalf("tactic %v", tac)
	}
	mustValid(t, m, sol.Graph)
	if len(m.Pipeline())-2 != 11 {
		t.Fatalf("repaired processor not reinstated: coverage %d", len(m.Pipeline())-2)
	}
}

func TestFaultErrors(t *testing.T) {
	m := manager(t, 6, 2)
	if _, err := m.Fault(-1); err == nil {
		t.Fatal("negative accepted")
	}
	if _, err := m.Fault(0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Fault(0); err == nil {
		t.Fatal("double fault accepted")
	}
	if _, err := m.Repair(1); err == nil {
		t.Fatal("repair of healthy node accepted")
	}
}

func TestBeyondBudgetRollsBack(t *testing.T) {
	sol, _ := construct.Design(4, 1)
	m, err := reconfig.New(sol)
	if err != nil {
		t.Fatal(err)
	}
	ins := sol.Graph.InputTerminals() // k+1 = 2 terminals
	if _, err := m.Fault(ins[0]); err != nil {
		t.Fatal(err)
	}
	before := append(graph.Path(nil), m.Pipeline()...)
	if _, err := m.Fault(ins[1]); err == nil {
		t.Fatal("no error with all inputs dead")
	}
	// Rolled back: previous pipeline still valid, fault not recorded.
	if m.Faults().Contains(ins[1]) {
		t.Fatal("failed fault not rolled back")
	}
	mustValid(t, m, sol.Graph)
	if len(before) != len(m.Pipeline()) {
		t.Fatal("pipeline replaced despite failure")
	}
}

func TestRandomSoakAlwaysValid(t *testing.T) {
	// Fault/repair churn across several designs; every intermediate
	// pipeline must be a valid full-coverage pipeline.
	for _, c := range []struct{ n, k int }{{10, 2}, {14, 3}, {22, 4}, {40, 4}} {
		sol, err := construct.Design(c.n, c.k)
		if err != nil {
			t.Fatal(err)
		}
		m, err := reconfig.New(sol)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(c.n)))
		for step := 0; step < 300; step++ {
			if m.Faults().Count() < c.k && rng.Intn(2) == 0 {
				v := rng.Intn(sol.Graph.NumNodes())
				if !m.Faults().Contains(v) {
					if _, err := m.Fault(v); err != nil {
						t.Fatalf("(%d,%d) step %d: %v", c.n, c.k, step, err)
					}
				}
			} else if m.Faults().Count() > 0 {
				fs := m.Faults().Slice()
				if _, err := m.Repair(fs[rng.Intn(len(fs))]); err != nil {
					t.Fatalf("(%d,%d) step %d: %v", c.n, c.k, step, err)
				}
			}
			mustValid(t, m, sol.Graph)
		}
		st := m.Stats()
		total := st.NoChange + st.Splice + st.Rewire + st.EndpointSwap + st.Insert + st.FullRemap
		if total == 0 {
			t.Fatalf("(%d,%d): no repairs recorded", c.n, c.k)
		}
		// Local tactics must carry a meaningful share.
		local := st.Splice + st.Rewire + st.EndpointSwap + st.Insert + st.NoChange
		if local == 0 {
			t.Errorf("(%d,%d): every repair was a full remap: %+v", c.n, c.k, st)
		}
	}
}

func TestTacticString(t *testing.T) {
	names := map[reconfig.Tactic]string{
		reconfig.NoChange: "no-change", reconfig.Splice: "splice",
		reconfig.Rewire: "rewire", reconfig.EndpointSwap: "endpoint-swap",
		reconfig.Insert: "insert", reconfig.FullRemap: "full-remap",
		reconfig.Tactic(77): "tactic(77)",
	}
	for tac, want := range names {
		if tac.String() != want {
			t.Errorf("%d.String() = %q, want %q", tac, tac.String(), want)
		}
	}
}
