package reconfig_test

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"gdpn/internal/construct"
	"gdpn/internal/graph"
	"gdpn/internal/pipeline"
	"gdpn/internal/reconfig"
	"gdpn/internal/stages"
	"gdpn/internal/verify"
)

func manager(t testing.TB, n, k int) *reconfig.Manager {
	t.Helper()
	sol, err := construct.Design(n, k)
	if err != nil {
		t.Fatalf("Design(%d,%d): %v", n, k, err)
	}
	m, err := reconfig.New(sol)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func mustValid(t *testing.T, m *reconfig.Manager, g *graph.Graph) {
	t.Helper()
	if err := verify.CheckPipeline(g, m.Faults(), m.Pipeline()); err != nil {
		t.Fatalf("invalid pipeline after repair: %v", err)
	}
}

func TestFaultOffPipelineIsNoChange(t *testing.T) {
	sol, _ := construct.Design(8, 2)
	m, err := reconfig.New(sol)
	if err != nil {
		t.Fatal(err)
	}
	// Find a terminal not used by the current pipeline.
	used := map[int]bool{}
	for _, v := range m.Pipeline() {
		used[v] = true
	}
	victim := -1
	for _, ti := range sol.Graph.InputTerminals() {
		if !used[ti] {
			victim = ti
			break
		}
	}
	if victim == -1 {
		t.Fatal("no unused terminal")
	}
	tac, err := m.Fault(victim)
	if err != nil || tac != reconfig.NoChange {
		t.Fatalf("tactic %v err %v, want no-change", tac, err)
	}
	if m.Stats().NoChange != 1 {
		t.Fatalf("stats %+v", m.Stats())
	}
	mustValid(t, m, sol.Graph)
}

func TestInteriorFaultRepairs(t *testing.T) {
	sol, _ := construct.Design(12, 3)
	m, err := reconfig.New(sol)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		p := m.Pipeline()
		victim := p[len(p)/2]
		tac, err := m.Fault(victim)
		if err != nil {
			t.Fatalf("fault %d: %v", i, err)
		}
		if tac == reconfig.NoChange {
			t.Fatalf("interior fault reported no-change")
		}
		mustValid(t, m, sol.Graph)
	}
	if got := len(m.Pipeline()) - 2; got != 12 {
		t.Fatalf("processors in use %d, want 12 (all healthy)", got)
	}
}

func TestEndpointTerminalSwap(t *testing.T) {
	sol, _ := construct.Design(10, 2)
	m, err := reconfig.New(sol)
	if err != nil {
		t.Fatal(err)
	}
	first := m.Pipeline()[0]
	if sol.Graph.Kind(first) != graph.InputTerminal && sol.Graph.Kind(first) != graph.OutputTerminal {
		t.Fatal("pipeline does not start with a terminal")
	}
	tac, err := m.Fault(first)
	if err != nil {
		t.Fatal(err)
	}
	mustValid(t, m, sol.Graph)
	// G(10,2) terminals have degree 1, so the border processor has exactly
	// one terminal of each kind; an endpoint swap is impossible and a full
	// remap (or rewire path) is expected — whatever happened must be valid.
	_ = tac
}

func TestRepairReinsertsProcessor(t *testing.T) {
	sol, _ := construct.Design(9, 2)
	m, err := reconfig.New(sol)
	if err != nil {
		t.Fatal(err)
	}
	victim := m.Pipeline()[4]
	if _, err := m.Fault(victim); err != nil {
		t.Fatal(err)
	}
	mustValid(t, m, sol.Graph)
	if len(m.Pipeline())-2 != 10 { // 11 processors − 1 fault
		t.Fatalf("coverage %d", len(m.Pipeline())-2)
	}
	tac, err := m.Repair(victim)
	if err != nil {
		t.Fatal(err)
	}
	if tac != reconfig.Insert && tac != reconfig.FullRemap {
		t.Fatalf("tactic %v", tac)
	}
	mustValid(t, m, sol.Graph)
	if len(m.Pipeline())-2 != 11 {
		t.Fatalf("repaired processor not reinstated: coverage %d", len(m.Pipeline())-2)
	}
}

func TestFaultErrors(t *testing.T) {
	m := manager(t, 6, 2)
	if _, err := m.Fault(-1); err == nil {
		t.Fatal("negative accepted")
	}
	if _, err := m.Fault(0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Fault(0); err == nil {
		t.Fatal("double fault accepted")
	}
	if _, err := m.Repair(1); err == nil {
		t.Fatal("repair of healthy node accepted")
	}
}

func TestBeyondBudgetRollsBack(t *testing.T) {
	sol, _ := construct.Design(4, 1)
	m, err := reconfig.New(sol)
	if err != nil {
		t.Fatal(err)
	}
	ins := sol.Graph.InputTerminals() // k+1 = 2 terminals
	if _, err := m.Fault(ins[0]); err != nil {
		t.Fatal(err)
	}
	before := append(graph.Path(nil), m.Pipeline()...)
	if _, err := m.Fault(ins[1]); err == nil {
		t.Fatal("no error with all inputs dead")
	}
	// Rolled back: previous pipeline still valid, fault not recorded.
	if m.Faults().Contains(ins[1]) {
		t.Fatal("failed fault not rolled back")
	}
	mustValid(t, m, sol.Graph)
	if len(before) != len(m.Pipeline()) {
		t.Fatal("pipeline replaced despite failure")
	}
}

func TestRandomSoakAlwaysValid(t *testing.T) {
	// Fault/repair churn across several designs while frames stream
	// continuously through the live engine: every intermediate pipeline
	// must be a valid full-coverage pipeline AND the concurrent traffic
	// must come out with zero loss, duplication, or reordering.
	for _, c := range []struct{ n, k int }{{10, 2}, {14, 3}, {22, 4}, {40, 4}} {
		sol, err := construct.Design(c.n, c.k)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := pipeline.New(sol, []stages.Stage{
			stages.NewFIR([]float64{0.5, 0.5}),
			stages.NewQuantize(-8, 8, 64),
		})
		if err != nil {
			t.Fatal(err)
		}
		st, err := eng.StartStream(pipeline.StreamConfig{MaxPending: 8})
		if err != nil {
			t.Fatal(err)
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { // producer: continuous traffic through every remap
			defer wg.Done()
			data := make([]float64, 64)
			for i := range data {
				data[i] = float64(i%7) - 3
			}
			for seq := 0; ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				f := pipeline.Frame{Seq: seq, Data: append([]float64(nil), data...)}
				if st.Submit(f) != nil {
					return
				}
			}
		}()
		consumerDone := make(chan struct{})
		go func() {
			defer close(consumerDone)
			for range st.Out() {
			}
		}()

		rng := rand.New(rand.NewSource(int64(c.n)))
		for step := 0; step < 300; step++ {
			if eng.Faults().Count() < c.k && rng.Intn(2) == 0 {
				v := rng.Intn(sol.Graph.NumNodes())
				if !eng.Faults().Contains(v) {
					if err := eng.Inject(v); err != nil {
						t.Fatalf("(%d,%d) step %d: %v", c.n, c.k, step, err)
					}
				}
			} else if eng.Faults().Count() > 0 {
				fs := eng.Faults().Slice()
				if err := eng.Repair(fs[rng.Intn(len(fs))]); err != nil {
					t.Fatalf("(%d,%d) step %d: %v", c.n, c.k, step, err)
				}
			}
			if err := verify.CheckPipeline(sol.Graph, eng.Faults(), eng.Pipeline()); err != nil {
				t.Fatalf("(%d,%d) step %d: invalid pipeline: %v", c.n, c.k, step, err)
			}
		}

		close(stop)
		wg.Wait()
		rep := st.Close()
		<-consumerDone
		if !rep.Clean() {
			t.Fatalf("(%d,%d): stream not clean after churn: %+v", c.n, c.k, rep)
		}
		if rep.Submitted == 0 {
			t.Fatalf("(%d,%d): no traffic flowed during the soak", c.n, c.k)
		}

		stats := eng.Metrics().Repairs
		total := stats.NoChange + stats.Splice + stats.Rewire + stats.EndpointSwap + stats.Insert + stats.FullRemap
		if total == 0 {
			t.Fatalf("(%d,%d): no repairs recorded", c.n, c.k)
		}
		// Local tactics must carry a meaningful share.
		local := stats.Splice + stats.Rewire + stats.EndpointSwap + stats.Insert + stats.NoChange
		if local == 0 {
			t.Errorf("(%d,%d): every repair was a full remap: %+v", c.n, c.k, stats)
		}
	}
}

func TestAccessorsReturnDefensiveCopies(t *testing.T) {
	m := manager(t, 10, 2)
	if _, err := m.Fault(0); err != nil {
		t.Fatal(err)
	}
	f := m.Faults()
	f.Remove(0)
	f.Add(1)
	if !m.Faults().Contains(0) {
		t.Fatal("mutating the set returned by Faults() removed a fault from the manager")
	}
	if m.Faults().Contains(1) {
		t.Fatal("mutating the set returned by Faults() added a fault to the manager")
	}
	before := m.Stats()
	s := m.Stats()
	s.FullRemap += 100
	s.NoChange += 100
	if m.Stats() != before {
		t.Fatal("mutating the Stats() result changed the manager's counters")
	}
}

func TestRemapDeadlineRollsBack(t *testing.T) {
	// G(10,2) terminals have degree 1, so faulting a pipeline endpoint
	// cannot be endpoint-swapped and must go through the full solver —
	// which a 1ns deadline always fails, forcing the rollback path.
	sol, err := construct.Design(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := reconfig.New(sol)
	if err != nil {
		t.Fatal(err)
	}
	m.SetDeadline(time.Nanosecond)
	before := append(graph.Path(nil), m.Pipeline()...)
	victim := before[0]
	_, err = m.Fault(victim)
	if !errors.Is(err, reconfig.ErrDeadline) {
		t.Fatalf("Fault(%d) = %v, want ErrDeadline", victim, err)
	}
	// Rolled back: fault bit reverted, previous pipeline still live+valid.
	if m.Faults().Contains(victim) {
		t.Fatal("deadline rollback left the fault recorded")
	}
	mustValid(t, m, sol.Graph)
	if len(m.Pipeline()) != len(before) {
		t.Fatal("pipeline replaced despite deadline rollback")
	}
	ds := m.Downtime()
	if ds.Rollbacks < 1 || ds.RollbackTime <= 0 {
		t.Fatalf("rollback not accounted: %+v", ds)
	}
	// With the bound lifted the same fault must succeed.
	m.SetDeadline(0)
	if _, err := m.Fault(victim); err != nil {
		t.Fatalf("retry after lifting deadline: %v", err)
	}
	mustValid(t, m, sol.Graph)
	if m.Downtime().PerTactic[reconfig.FullRemap] <= 0 {
		t.Fatalf("full-remap downtime not recorded: %+v", m.Downtime())
	}
	// A generous deadline does not get in the way.
	m.SetDeadline(time.Hour)
	if _, err := m.Repair(victim); err != nil {
		t.Fatalf("repair under generous deadline: %v", err)
	}
	mustValid(t, m, sol.Graph)
}

func TestTacticString(t *testing.T) {
	names := map[reconfig.Tactic]string{
		reconfig.NoChange: "no-change", reconfig.Splice: "splice",
		reconfig.Rewire: "rewire", reconfig.EndpointSwap: "endpoint-swap",
		reconfig.Insert: "insert", reconfig.FullRemap: "full-remap",
		reconfig.Tactic(77): "tactic(77)",
	}
	for tac, want := range names {
		if tac.String() != want {
			t.Errorf("%d.String() = %q, want %q", tac, tac.String(), want)
		}
	}
}
