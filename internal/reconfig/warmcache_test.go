package reconfig_test

// Warm-cache integration tests: the manager keeps ONE embed.Solver alive
// for its whole lifetime, so endpoint warm state and the Held–Karp memo
// must survive fault/repair churn — every full remap after the initial
// cold solve is an incremental FindDelta, and revisited fault sets are
// answered from the memo.

import (
	"testing"

	"gdpn/internal/graph"
	"gdpn/internal/reconfig"
)

// remapChurnGraph is the TestFullRemapAttribution topology: each
// processor carries one input and one output terminal, with the spares on
// the OTHER processor, so a failed on-pipeline terminal can never be
// swapped locally and every such fault forces a full solver recompute.
func remapChurnGraph() (*graph.Graph, [2]int, [2]int) {
	g := graph.New("warm-cache-test")
	a := g.AddNode(graph.Processor, 0)
	b := g.AddNode(graph.Processor, 1)
	i1 := g.AddNode(graph.InputTerminal, 0)
	i2 := g.AddNode(graph.InputTerminal, 1)
	o1 := g.AddNode(graph.OutputTerminal, 0)
	o2 := g.AddNode(graph.OutputTerminal, 1)
	g.AddEdge(a, b)
	g.AddEdge(i1, a)
	g.AddEdge(o2, a)
	g.AddEdge(i2, b)
	g.AddEdge(o1, b)
	return g, [2]int{i1, i2}, [2]int{o1, o2}
}

// TestManagerSolverWarmAcrossRemaps churns fault/repair cycles that each
// force a full remap and asserts the solver stayed warm throughout: the
// only cold solve is the manager's initial mapping, every remap is a warm
// incremental, and after the first lap every fault set is a memo hit.
func TestManagerSolverWarmAcrossRemaps(t *testing.T) {
	g, ins, _ := remapChurnGraph()
	m := managerFor(t, g)

	remaps := 0
	const laps = 4
	for lap := 0; lap < laps; lap++ {
		// Alternate faulting whichever input terminal the current
		// pipeline starts at; the remap flips to the other terminal pair,
		// the repair of an off-pipeline terminal is a NoChange (so the
		// fault-set delta spans a repair the solver never saw).
		for _, in := range ins {
			if m.Pipeline()[0] != in {
				continue
			}
			tac, err := m.Fault(in)
			if err != nil {
				t.Fatalf("lap %d: Fault(%d): %v", lap, in, err)
			}
			if tac != reconfig.FullRemap {
				t.Fatalf("lap %d: Fault(%d) tactic = %v, want full-remap", lap, in, tac)
			}
			remaps++
			if tac, err := m.Repair(in); err != nil || tac != reconfig.NoChange {
				t.Fatalf("lap %d: Repair(%d) = %v, %v, want no-change", lap, in, tac, err)
			}
		}
	}
	// Each lap forces two remaps (fault one terminal, then the other the
	// flip exposed), except the first when the initial pipeline already
	// starts at the second terminal.
	if remaps < 2*laps-1 {
		t.Fatalf("forced %d full remaps, want at least %d", remaps, 2*laps-1)
	}

	warmHits, warmMisses, memoHits, memoMisses := m.SolverCache()
	if warmMisses != 0 || warmHits != int64(remaps) {
		t.Fatalf("warm hits/misses = %d/%d, want %d/0 (every remap after the initial solve must be incremental)",
			warmHits, warmMisses, remaps)
	}
	// Distinct fault sets the solver saw: {} at New, then the two
	// alternating single-terminal sets. Everything else is a revisit.
	wantMisses := int64(3)
	wantHits := int64(remaps+1) - wantMisses
	if memoMisses != wantMisses || memoHits != wantHits {
		t.Fatalf("memo hits/misses = %d/%d, want %d/%d", memoHits, memoMisses, wantHits, wantMisses)
	}
}

// TestManagerDeltaSpansRolledBackFault pins the rollback bookkeeping: a
// fault whose remap fails (deadline expired before the solve even
// started) is rolled back without consuming the pending delta, and the
// next successful remap still hands the solver a correct net change.
func TestManagerDeltaSpansRolledBackFault(t *testing.T) {
	g, ins, _ := remapChurnGraph()
	m := managerFor(t, g)

	first := m.Pipeline()[0]
	// An already-expired deadline fails the remap before the solver runs;
	// the fault rolls back and the pipeline stays valid.
	m.SetDeadline(1)
	if _, err := m.Fault(first); err == nil {
		t.Fatal("Fault under expired deadline succeeded, want rollback")
	}
	m.SetDeadline(0)
	if got := m.Faults().Count(); got != 0 {
		t.Fatalf("faults after rollback = %d, want 0", got)
	}

	// The rolled-back fault must not poison the delta chain: this remap
	// succeeds warm and lands on the other terminal pair.
	tac, err := m.Fault(first)
	if err != nil {
		t.Fatalf("Fault(%d) after rollback: %v", first, err)
	}
	if tac != reconfig.FullRemap {
		t.Fatalf("tactic = %v, want full-remap", tac)
	}
	if got := m.Pipeline()[0]; got == first || (got != ins[0] && got != ins[1]) {
		t.Fatalf("pipeline %v still starts at faulted terminal %d", m.Pipeline(), first)
	}
	warmHits, warmMisses, _, _ := m.SolverCache()
	if warmMisses != 0 || warmHits != 1 {
		t.Fatalf("warm hits/misses = %d/%d, want 1/0", warmHits, warmMisses)
	}
}
