package reconfig_test

// Crafted-topology tests pinning down WHICH tactic repairs which fault
// shape — the attribution behind reconfig.Stats and the per-tactic obs
// counters. Each graph is built by hand so exactly one pipeline exists
// before the fault and the intended tactic is the one that must fire.

import (
	"testing"

	"gdpn/internal/construct"
	"gdpn/internal/graph"
	"gdpn/internal/reconfig"
)

// pathOf asserts the manager's current pipeline equals want.
func pathOf(t *testing.T, m *reconfig.Manager, want ...int) {
	t.Helper()
	got := m.Pipeline()
	if len(got) != len(want) {
		t.Fatalf("pipeline %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pipeline %v, want %v", got, want)
		}
	}
}

func managerFor(t *testing.T, g *graph.Graph) *reconfig.Manager {
	t.Helper()
	m, err := reconfig.New(&construct.Solution{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestSpliceAttribution: triangle p0–p1–p2 (plus chord p0–p2). The only
// initial pipeline is i,p0,p1,p2,o; faulting p1 leaves its neighbors
// adjacent, so the repair MUST be a splice.
func TestSpliceAttribution(t *testing.T) {
	g := graph.New("splice-test")
	p0 := g.AddNode(graph.Processor, 0)
	p1 := g.AddNode(graph.Processor, 1)
	p2 := g.AddNode(graph.Processor, 2)
	in := g.AddNode(graph.InputTerminal, 0)
	out := g.AddNode(graph.OutputTerminal, 0)
	g.AddEdge(p0, p1)
	g.AddEdge(p1, p2)
	g.AddEdge(p0, p2)
	g.AddEdge(in, p0)
	g.AddEdge(out, p2)

	m := managerFor(t, g)
	pathOf(t, m, in, p0, p1, p2, out)
	tac, err := m.Fault(p1)
	if err != nil {
		t.Fatal(err)
	}
	if tac != reconfig.Splice {
		t.Fatalf("tactic = %v, want splice", tac)
	}
	pathOf(t, m, in, p0, p2, out)
	if st := m.Stats(); st.Splice != 1 || st.Rewire+st.EndpointSwap+st.FullRemap+st.Insert+st.NoChange != 0 {
		t.Fatalf("stats %+v, want exactly one splice", st)
	}

	// Repairing p1 must re-insert it between an adjacent pair (Insert).
	tac, err = m.Repair(p1)
	if err != nil {
		t.Fatal(err)
	}
	if tac != reconfig.Insert {
		t.Fatalf("repair tactic = %v, want insert", tac)
	}
	if st := m.Stats(); st.Insert != 1 {
		t.Fatalf("stats %+v, want one insert", st)
	}
	if got := len(m.Pipeline()) - 2; got != 3 {
		t.Fatalf("repaired pipeline covers %d processors, want 3", got)
	}
}

// TestRewireAttribution: chain a–b–c–d with chord a–d and the output
// reachable from both c and d. The only initial pipeline is i,a,b,c,d,o;
// faulting b makes a and c non-adjacent (no splice) while the 2-opt
// reversal a,(d,c),o exists — the repair MUST be a rewire.
func TestRewireAttribution(t *testing.T) {
	g := graph.New("rewire-test")
	a := g.AddNode(graph.Processor, 0)
	b := g.AddNode(graph.Processor, 1)
	c := g.AddNode(graph.Processor, 2)
	d := g.AddNode(graph.Processor, 3)
	in := g.AddNode(graph.InputTerminal, 0)
	out := g.AddNode(graph.OutputTerminal, 0)
	g.AddEdge(a, b)
	g.AddEdge(b, c)
	g.AddEdge(c, d)
	g.AddEdge(a, d)
	g.AddEdge(in, a)
	g.AddEdge(out, c)
	g.AddEdge(out, d)

	m := managerFor(t, g)
	pathOf(t, m, in, a, b, c, d, out)
	tac, err := m.Fault(b)
	if err != nil {
		t.Fatal(err)
	}
	if tac != reconfig.Rewire {
		t.Fatalf("tactic = %v, want rewire", tac)
	}
	pathOf(t, m, in, a, d, c, out)
	if st := m.Stats(); st.Rewire != 1 || st.Splice+st.EndpointSwap+st.FullRemap != 0 {
		t.Fatalf("stats %+v, want exactly one rewire", st)
	}
}

// TestEndpointSwapAttribution: two input terminals share the border
// processor; killing the one in use MUST swap to its sibling without
// touching the processor order.
func TestEndpointSwapAttribution(t *testing.T) {
	g := graph.New("endpoint-swap-test")
	a := g.AddNode(graph.Processor, 0)
	b := g.AddNode(graph.Processor, 1)
	i1 := g.AddNode(graph.InputTerminal, 0)
	i2 := g.AddNode(graph.InputTerminal, 1)
	out := g.AddNode(graph.OutputTerminal, 0)
	g.AddEdge(a, b)
	g.AddEdge(i1, a)
	g.AddEdge(i2, a)
	g.AddEdge(out, b)

	m := managerFor(t, g)
	used := m.Pipeline()[0]
	other := i1
	if used == i1 {
		other = i2
	} else if used != i2 {
		t.Fatalf("pipeline %v does not start at an input terminal", m.Pipeline())
	}
	tac, err := m.Fault(used)
	if err != nil {
		t.Fatal(err)
	}
	if tac != reconfig.EndpointSwap {
		t.Fatalf("tactic = %v, want endpoint-swap", tac)
	}
	pathOf(t, m, other, a, b, out)
	if st := m.Stats(); st.EndpointSwap != 1 || st.FullRemap != 0 {
		t.Fatalf("stats %+v, want exactly one endpoint swap", st)
	}
}

// TestFullRemapAttribution: each processor carries one input and one
// output terminal, but the spares sit on the OTHER processor, so a failed
// terminal cannot be swapped at its border processor — the repair MUST
// fall back to a full solver recompute (which reverses the pipeline).
func TestFullRemapAttribution(t *testing.T) {
	g := graph.New("full-remap-test")
	a := g.AddNode(graph.Processor, 0)
	b := g.AddNode(graph.Processor, 1)
	i1 := g.AddNode(graph.InputTerminal, 0)
	i2 := g.AddNode(graph.InputTerminal, 1)
	o1 := g.AddNode(graph.OutputTerminal, 0)
	o2 := g.AddNode(graph.OutputTerminal, 1)
	g.AddEdge(a, b)
	g.AddEdge(i1, a)
	g.AddEdge(o2, a)
	g.AddEdge(i2, b)
	g.AddEdge(o1, b)

	m := managerFor(t, g)
	first := m.Pipeline()[0]
	if g.Kind(first) != graph.InputTerminal {
		t.Fatalf("pipeline %v does not start at an input terminal", m.Pipeline())
	}
	tac, err := m.Fault(first)
	if err != nil {
		t.Fatal(err)
	}
	if tac != reconfig.FullRemap {
		t.Fatalf("tactic = %v, want full-remap", tac)
	}
	if st := m.Stats(); st.FullRemap != 1 || st.EndpointSwap != 0 {
		t.Fatalf("stats %+v, want exactly one full remap", st)
	}
	// The recomputed pipeline still covers both processors from the
	// surviving terminal pair.
	if got := len(m.Pipeline()) - 2; got != 2 {
		t.Fatalf("full remap covers %d processors, want 2", got)
	}
}

// TestTacticSequenceAccumulates: a crafted sequence across one graph
// exercises splice then insert then splice again, and the stats must
// accumulate rather than reset between repairs.
func TestTacticSequenceAccumulates(t *testing.T) {
	g := graph.New("sequence-test")
	p0 := g.AddNode(graph.Processor, 0)
	p1 := g.AddNode(graph.Processor, 1)
	p2 := g.AddNode(graph.Processor, 2)
	in := g.AddNode(graph.InputTerminal, 0)
	out := g.AddNode(graph.OutputTerminal, 0)
	g.AddEdge(p0, p1)
	g.AddEdge(p1, p2)
	g.AddEdge(p0, p2)
	g.AddEdge(in, p0)
	g.AddEdge(out, p2)

	m := managerFor(t, g)
	for round := 1; round <= 3; round++ {
		if tac, err := m.Fault(p1); err != nil || tac != reconfig.Splice {
			t.Fatalf("round %d fault: tactic %v err %v", round, tac, err)
		}
		if tac, err := m.Repair(p1); err != nil || tac != reconfig.Insert {
			t.Fatalf("round %d repair: tactic %v err %v", round, tac, err)
		}
	}
	st := m.Stats()
	if st.Splice != 3 || st.Insert != 3 {
		t.Fatalf("stats %+v, want 3 splices and 3 inserts", st)
	}
}
