package reconfig_test

import (
	"errors"
	"testing"

	"gdpn/internal/construct"
	"gdpn/internal/embed"
	"gdpn/internal/graph"
	"gdpn/internal/reconfig"
)

// TestRemapCanceledRollsBack: canceling the manager's ambient token makes
// a repair that needs the full solver fail with embed.ErrCanceled and roll
// back — the previous pipeline stays live — and replacing the token makes
// the same repair succeed.
func TestRemapCanceledRollsBack(t *testing.T) {
	// G(10,2) terminals have degree 1: faulting a pipeline endpoint cannot
	// be endpoint-swapped and must go through the full solver.
	sol, err := construct.Design(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := reconfig.New(sol)
	if err != nil {
		t.Fatal(err)
	}
	tok := embed.NewResources(nil, 0, 0)
	defer tok.Release()
	m.SetResources(tok)
	tok.Cancel()

	before := append(graph.Path(nil), m.Pipeline()...)
	victim := before[0]
	_, err = m.Fault(victim)
	if err == nil {
		t.Fatal("Fault under canceled token succeeded")
	}
	if !errors.Is(err, embed.ErrCanceled) {
		t.Fatalf("Fault error = %v, want wrapped embed.ErrCanceled", err)
	}
	if m.Faults().Contains(victim) {
		t.Fatal("canceled remap left the fault recorded")
	}
	if len(m.Pipeline()) != len(before) {
		t.Fatal("pipeline replaced despite canceled remap")
	}
	if m.Downtime().Rollbacks < 1 {
		t.Fatalf("rollback not accounted: %+v", m.Downtime())
	}

	// A fresh token unblocks the same repair.
	m.SetResources(nil)
	if _, err := m.Fault(victim); err != nil {
		t.Fatalf("retry after detaching token: %v", err)
	}
}

// TestDeadlineShimBehaviorPreserved re-pins the SetDeadline contract on
// top of the token implementation: an expired deadline rolls back with
// reconfig.ErrDeadline exactly as before the refactor.
func TestDeadlineShimBehaviorPreserved(t *testing.T) {
	sol, err := construct.Design(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := reconfig.New(sol)
	if err != nil {
		t.Fatal(err)
	}
	m.SetDeadline(1) // 1ns: expired before any solve can finish
	victim := m.Pipeline()[0]
	if _, err := m.Fault(victim); !errors.Is(err, reconfig.ErrDeadline) {
		t.Fatalf("Fault = %v, want ErrDeadline", err)
	}
	if m.Faults().Contains(victim) {
		t.Fatal("deadline rollback left the fault recorded")
	}
}
