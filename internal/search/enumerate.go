package search

import (
	"gdpn/internal/graph"
)

// ExhaustiveResult reports a complete enumeration of the standard candidate
// space for a Spec.
type ExhaustiveResult struct {
	Spec Spec
	// ProcGraphs counts the processor subgraphs enumerated (labeled, with
	// vertex 0 carrying the largest degree).
	ProcGraphs int64
	// Candidates counts (processor graph, terminal placement) pairs that
	// passed the necessary conditions and were submitted to verification.
	Candidates int64
	// Solutions holds the verified solutions, deduplicated up to
	// kind-preserving isomorphism.
	Solutions []*graph.Graph
}

// None reports that the enumeration proved no solution exists.
func (r *ExhaustiveResult) None() bool { return len(r.Solutions) == 0 }

// Exhaustive enumerates EVERY standard candidate for the spec and decides
// each with the exact solver. The enumeration is complete up to processor
// relabeling (degree vectors are enumerated non-increasing, which any
// candidate can be relabeled to match, and terminal placements are
// enumerated over all assignments), so:
//
//   - None() is a machine proof that no standard solution with maximum
//     processor degree ≤ spec.MaxDegree exists — this re-proves Lemma 3.14
//     for (n=5, k=2, Δ=4);
//   - len(Solutions) == 1 re-proves the uniqueness claims of Lemmas 3.7
//     and 3.9 for concrete k.
//
// limit > 0 stops after that many solutions (useful when only existence is
// wanted); limit = 0 enumerates everything.
//
// The candidate space is exponential in the number of processors; the
// intended regime is n+k ≤ 10 (all uses in the paper's scope fit).
func Exhaustive(spec Spec, limit int) *ExhaustiveResult {
	res := &ExhaustiveResult{Spec: spec}
	ev := newEvaluator(spec)
	P := spec.Procs()

	degreeVectors(spec, func(deg []int) bool {
		enumerateGraphs(P, deg, func(adj [][]bool) bool {
			res.ProcGraphs++
			procDeg := make([]int, P)
			for a := 0; a < P; a++ {
				for b := 0; b < P; b++ {
					if adj[a][b] {
						procDeg[a]++
					}
				}
			}
			cont := true
			feasibleTerminalVectors(spec, procDeg, func(in, out []int) bool {
				res.Candidates++
				cand := Candidate{Spec: spec, ProcAdj: adj, In: append([]int(nil), in...), Out: append([]int(nil), out...)}
				g := cand.Build()
				if !ev.isSolution(g) {
					return true
				}
				for _, s := range res.Solutions {
					if s.Fingerprint() == g.Fingerprint() && graph.IsomorphicBrute(s, g) {
						return true // already known up to isomorphism
					}
				}
				res.Solutions = append(res.Solutions, g)
				if limit > 0 && len(res.Solutions) >= limit {
					cont = false
					return false
				}
				return true
			})
			return cont
		})
		return res.ProcGraphs >= 0 && (limit == 0 || len(res.Solutions) < limit)
	})
	return res
}

// enumerateGraphs enumerates every labeled simple graph on P vertices in
// which vertex v has exactly deg[v] neighbors. fn receives a shared
// adjacency matrix; it must not retain it. Returning false stops the
// enumeration.
func enumerateGraphs(P int, deg []int, fn func(adj [][]bool) bool) {
	adj := make([][]bool, P)
	for i := range adj {
		adj[i] = make([]bool, P)
	}
	rem := append([]int(nil), deg...)

	// Process vertices in order; vertex v picks its neighbor set among
	// {v+1..P-1} to satisfy rem[v] (edges to earlier vertices were already
	// decided). Standard degree-constrained backtracking with a capacity
	// prune: rem[v] cannot exceed the number of later vertices with
	// remaining capacity.
	var pick func(v, next, need int) bool
	var vertex func(v int) bool
	vertex = func(v int) bool {
		if v == P {
			return fn(adj)
		}
		if rem[v] == 0 {
			return vertex(v + 1)
		}
		return pick(v, v+1, rem[v])
	}
	pick = func(v, next, need int) bool {
		if need == 0 {
			return vertex(v + 1)
		}
		// Capacity prune: not enough candidates left.
		avail := 0
		for j := next; j < P; j++ {
			if rem[j] > 0 {
				avail++
			}
		}
		if avail < need {
			return true
		}
		for j := next; j < P; j++ {
			if rem[j] == 0 {
				continue
			}
			adj[v][j], adj[j][v] = true, true
			rem[v]--
			rem[j]--
			if !pick(v, j+1, need-1) {
				adj[v][j], adj[j][v] = false, false
				rem[v]++
				rem[j]++
				return false
			}
			adj[v][j], adj[j][v] = false, false
			rem[v]++
			rem[j]++
		}
		return true
	}
	vertex(0)
}
