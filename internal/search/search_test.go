package search

import (
	"math/rand"
	"testing"

	"gdpn/internal/graph"
	"gdpn/internal/verify"
)

func TestSpecString(t *testing.T) {
	s := Spec{N: 6, K: 2, MaxDegree: 4}
	if got := s.String(); got != "(n=6, k=2, Δ≤4)" {
		t.Fatalf("String = %q", got)
	}
	if s.Procs() != 8 {
		t.Fatalf("Procs = %d", s.Procs())
	}
}

func TestCandidateBuild(t *testing.T) {
	spec := Spec{N: 1, K: 1, MaxDegree: 3}
	// G1,1: two processors in a clique, each with one input and one output.
	c := Candidate{
		Spec:    spec,
		ProcAdj: [][]bool{{false, true}, {true, false}},
		In:      []int{1, 1},
		Out:     []int{1, 1},
	}
	g := c.Build()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := verify.CheckStandard(g, 1, 1); err != nil {
		t.Fatal(err)
	}
	rep := verify.Exhaustive(g, 1, verify.Options{})
	if !rep.OK() {
		t.Fatalf("hand-built G1,1 failed verification: %s", rep.String())
	}
}

func TestHavelHakimi(t *testing.T) {
	cases := []struct {
		deg  []int
		want bool
	}{
		{[]int{2, 2, 2}, true},          // triangle
		{[]int{3, 3, 3, 3}, true},       // K4
		{[]int{3, 3, 3, 1}, false},      // non-graphical
		{[]int{1, 1}, true},             // single edge
		{[]int{0, 0, 0}, true},          // empty
		{[]int{5, 1, 1, 1, 1}, false},   // degree exceeds n-1
		{[]int{4, 3, 3, 3, 3}, true},    // wheel-ish
		{[]int{3, 3, 3, 3, 3, 3}, true}, // prism / K3,3
	}
	for _, c := range cases {
		adj := havelHakimi(c.deg)
		if (adj != nil) != c.want {
			t.Errorf("havelHakimi(%v) realizable = %v, want %v", c.deg, adj != nil, c.want)
		}
		if adj == nil {
			continue
		}
		// Verify degrees and simplicity.
		for i := range adj {
			d := 0
			for j := range adj[i] {
				if adj[i][j] {
					if !adj[j][i] {
						t.Fatalf("asymmetric adjacency for %v", c.deg)
					}
					if i == j {
						t.Fatalf("self-loop for %v", c.deg)
					}
					d++
				}
			}
			if d != c.deg[i] {
				t.Fatalf("havelHakimi(%v): vertex %d degree %d", c.deg, i, d)
			}
		}
	}
}

func TestSwapEdgesPreservesDegrees(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	deg := []int{3, 3, 3, 3, 2, 2}
	adj := havelHakimi(deg)
	if adj == nil {
		t.Fatal("sequence should be graphical")
	}
	c := Candidate{Spec: Spec{N: 6, K: 0, MaxDegree: 10}, ProcAdj: adj}
	for i := 0; i < 200; i++ {
		c.swapEdges(rng)
	}
	for i := range adj {
		d := 0
		for j := range adj[i] {
			if adj[i][j] {
				if adj[i][i] {
					t.Fatal("self-loop introduced")
				}
				d++
			}
		}
		if d != deg[i] {
			t.Fatalf("degree of %d changed to %d", i, d)
		}
	}
}

func TestExhaustiveReprovesLemma314(t *testing.T) {
	// Lemma 3.14 (Figures 5–9): no standard solution with maximum processor
	// degree k+2 = 4 exists for n = 5, k = 2.
	res := Exhaustive(Spec{N: 5, K: 2, MaxDegree: 4}, 0)
	if !res.None() {
		t.Fatalf("found %d solutions; Lemma 3.14 says none exist", len(res.Solutions))
	}
	if res.ProcGraphs == 0 || res.Candidates == 0 {
		t.Fatalf("suspiciously empty enumeration: %+v", res)
	}
}

func TestExhaustiveReprovesUniquenessLemma37(t *testing.T) {
	// Lemma 3.7: G1,k is the unique standard solution for n = 1.
	for _, k := range []int{1, 2, 3} {
		res := Exhaustive(Spec{N: 1, K: k, MaxDegree: k + 2}, 0)
		if len(res.Solutions) != 1 {
			t.Fatalf("k=%d: %d solutions, want exactly 1 (uniqueness)", k, len(res.Solutions))
		}
		// And it is the paper's construction: a clique with one terminal of
		// each kind per processor.
		g := res.Solutions[0]
		procs := g.Processors()
		for _, a := range procs {
			for _, b := range procs {
				if a < b && !g.HasEdge(a, b) {
					t.Fatalf("k=%d: unique solution is not a clique", k)
				}
			}
		}
	}
}

func TestExhaustiveReprovesUniquenessLemma39(t *testing.T) {
	// Lemma 3.9: G2,k is the unique standard solution for n = 2.
	for _, k := range []int{1, 2} {
		res := Exhaustive(Spec{N: 2, K: k, MaxDegree: k + 3}, 0)
		if len(res.Solutions) != 1 {
			t.Fatalf("k=%d: %d solutions, want exactly 1", k, len(res.Solutions))
		}
	}
}

func TestExhaustiveLimitStopsEarly(t *testing.T) {
	res := Exhaustive(Spec{N: 1, K: 1, MaxDegree: 3}, 1)
	if len(res.Solutions) != 1 {
		t.Fatalf("limit=1 returned %d solutions", len(res.Solutions))
	}
}

func TestFindDerivesSpecialSolutions(t *testing.T) {
	// Re-derive the paper's special solutions from scratch (Theorems
	// 3.15/3.16). Each witness is exhaustively verified inside Find.
	if testing.Short() {
		t.Skip("randomized search skipped in -short mode")
	}
	for _, spec := range []Spec{
		{N: 6, K: 2, MaxDegree: 4},
		{N: 8, K: 2, MaxDegree: 4},
		{N: 7, K: 3, MaxDegree: 5},
		{N: 4, K: 3, MaxDegree: 6},
	} {
		g, err := Find(spec, 1, FindOptions{Restarts: 3000, Moves: 800})
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if err := verify.CheckStandard(g, spec.N, spec.K); err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if g.MaxProcessorDegree() > spec.MaxDegree {
			t.Fatalf("%s: degree %d over budget", spec, g.MaxProcessorDegree())
		}
		rep := verify.Exhaustive(g, spec.K, verify.Options{})
		if !rep.OK() {
			t.Fatalf("%s: returned graph fails verification: %s", spec, rep.String())
		}
	}
}

func TestFindInfeasibleSpecErrors(t *testing.T) {
	// Lemma 3.14's spec is infeasible; Find must give up cleanly.
	_, err := Find(Spec{N: 5, K: 2, MaxDegree: 4}, 3, FindOptions{Restarts: 5, Moves: 20})
	if err == nil {
		t.Fatal("Find returned a solution that Lemma 3.14 says cannot exist")
	}
}

func TestFindDeterministicPerSeed(t *testing.T) {
	spec := Spec{N: 6, K: 2, MaxDegree: 4}
	a, errA := Find(spec, 7, FindOptions{Restarts: 500, Moves: 200})
	b, errB := Find(spec, 7, FindOptions{Restarts: 500, Moves: 200})
	if (errA == nil) != (errB == nil) {
		t.Fatalf("nondeterministic outcome: %v vs %v", errA, errB)
	}
	if errA == nil && a.Fingerprint() != b.Fingerprint() {
		t.Fatal("same seed produced different graphs")
	}
}

func TestFeasibleTerminalVectorsBounds(t *testing.T) {
	spec := Spec{N: 1, K: 1, MaxDegree: 3}
	// Two processors, clique: procDeg = (1,1); each needs ≥ k+2-1 = 2
	// terminals and ≤ Δ-1 = 2 → exactly (in+out) = 2 each.
	count := 0
	feasibleTerminalVectors(spec, []int{1, 1}, func(in, out []int) bool {
		count++
		for p := range in {
			if in[p]+out[p] != 2 {
				t.Fatalf("terminal vector out of bounds: in=%v out=%v", in, out)
			}
		}
		return true
	})
	// Σin = 2 over two procs with in_p ≤ 2: (0,2),(1,1),(2,0) and outs
	// forced — only those with per-proc total exactly 2 are emitted.
	if count != 3 {
		t.Fatalf("emitted %d vectors, want 3", count)
	}
}

func TestEnumerateGraphsCounts(t *testing.T) {
	// Triangle sequence (2,2,2) has exactly one labeled realization.
	count := 0
	enumerateGraphs(3, []int{2, 2, 2}, func(adj [][]bool) bool {
		count++
		return true
	})
	if count != 1 {
		t.Fatalf("triangle realizations = %d, want 1", count)
	}
	// Perfect matching on 4 vertices: 3 labeled realizations.
	count = 0
	enumerateGraphs(4, []int{1, 1, 1, 1}, func(adj [][]bool) bool {
		count++
		return true
	})
	if count != 3 {
		t.Fatalf("matching realizations = %d, want 3", count)
	}
	// 1-regular on odd vertices: none.
	count = 0
	enumerateGraphs(3, []int{1, 1, 1}, func(adj [][]bool) bool {
		count++
		return true
	})
	// (1,1,1) has odd sum; enumerate finds nothing.
	if count != 0 {
		t.Fatalf("odd-sum realizations = %d, want 0", count)
	}
}

func TestFingerprintDedupInExhaustive(t *testing.T) {
	// For n=1, k=1 the full space contains several labeled variants of the
	// same solution; dedup must collapse them to one.
	res := Exhaustive(Spec{N: 1, K: 1, MaxDegree: 3}, 0)
	if len(res.Solutions) != 1 {
		t.Fatalf("n=1 k=1: %d solutions after dedup, want 1", len(res.Solutions))
	}
	_ = graph.NoLabel
}
