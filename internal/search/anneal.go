package search

import (
	"fmt"
	"math/rand"
	"sort"

	"gdpn/internal/graph"
)

// FindOptions tunes the randomized search.
type FindOptions struct {
	// Restarts is the number of random initial candidates (default 200).
	Restarts int
	// Moves is the local-search move budget per restart (default 400).
	Moves int
	// FailCap caps failure counting per evaluation (default 24): scores
	// are compared, not reported, so counting stops early.
	FailCap int
}

func (o *FindOptions) fill() {
	if o.Restarts <= 0 {
		o.Restarts = 200
	}
	if o.Moves <= 0 {
		o.Moves = 400
	}
	if o.FailCap <= 0 {
		o.FailCap = 24
	}
}

// Find searches for one verified standard solution matching the spec using
// random degree-feasible candidates refined by hill-climbing over
// degree-preserving edge swaps and terminal moves. Deterministic per seed.
// This is the procedure that derived the frozen special solutions in
// internal/construct (Theorems 3.15/3.16); it returns an error when the
// budget is exhausted, never a wrong graph (every returned graph has been
// exhaustively verified).
func Find(spec Spec, seed int64, opts FindOptions) (*graph.Graph, error) {
	opts.fill()
	rng := rand.New(rand.NewSource(seed))
	ev := newEvaluator(spec)

	// Collect feasible degree vectors once.
	var degVecs [][]int
	degreeVectors(spec, func(deg []int) bool {
		if graphical(deg) {
			degVecs = append(degVecs, append([]int(nil), deg...))
		}
		return true
	})
	if len(degVecs) == 0 {
		return nil, fmt.Errorf("search: no graphical degree vector for %s", spec)
	}

	for restart := 0; restart < opts.Restarts; restart++ {
		deg := degVecs[rng.Intn(len(degVecs))]
		cand := randomCandidate(spec, deg, rng)
		if cand == nil {
			continue
		}
		g := cand.Build()
		best := ev.score(g, opts.FailCap)
		if best == 0 && ev.isSolution(g) {
			return g, nil
		}
		for move := 0; move < opts.Moves && best > 0; move++ {
			next := cand.neighbor(rng)
			if next == nil {
				continue
			}
			ng := next.Build()
			sc := ev.score(ng, opts.FailCap)
			// Hill-climb with sideways moves; occasional uphill escape.
			if sc < best || (sc == best && rng.Intn(2) == 0) || rng.Intn(50) == 0 {
				cand, best = next, sc
				if best == 0 {
					final := cand.Build()
					if ev.isSolution(final) {
						return final, nil
					}
					best = ev.score(final, opts.FailCap)
				}
			}
		}
	}
	return nil, fmt.Errorf("search: no solution found for %s within budget", spec)
}

// randomCandidate builds a random simple graph realizing deg (Havel–Hakimi
// then randomizing edge swaps) and a random feasible terminal placement.
func randomCandidate(spec Spec, deg []int, rng *rand.Rand) *Candidate {
	P := spec.Procs()
	adj := havelHakimi(deg)
	if adj == nil {
		return nil
	}
	shuffleEdges(adj, rng, 4*P)

	procDeg := make([]int, P)
	for a := range adj {
		for b := range adj[a] {
			if adj[a][b] {
				procDeg[a]++
			}
		}
	}
	in, out := randomTerminals(spec, procDeg, rng)
	if in == nil {
		return nil
	}
	return &Candidate{Spec: spec, ProcAdj: adj, In: in, Out: out}
}

// randomTerminals distributes k+1 input and k+1 output terminals randomly,
// honoring the per-processor bounds minT/maxT implied by the spec.
func randomTerminals(spec Spec, procDeg []int, rng *rand.Rand) (in, out []int) {
	P := spec.Procs()
	in = make([]int, P)
	out = make([]int, P)
	total := make([]int, P)
	minT := make([]int, P)
	maxT := make([]int, P)
	need := 0
	for p := 0; p < P; p++ {
		minT[p] = spec.K + 2 - procDeg[p]
		if minT[p] < 0 {
			minT[p] = 0
		}
		maxT[p] = spec.MaxDegree - procDeg[p]
		if maxT[p] < minT[p] {
			return nil, nil
		}
		need += minT[p]
	}
	if need > 2*(spec.K+1) {
		return nil, nil
	}
	// Mandatory terminals first, then the remainder uniformly.
	slots := 2 * (spec.K + 1)
	for p := 0; p < P; p++ {
		total[p] = minT[p]
		slots -= minT[p]
	}
	for ; slots > 0; slots-- {
		cands := make([]int, 0, P)
		for p := 0; p < P; p++ {
			if total[p] < maxT[p] {
				cands = append(cands, p)
			}
		}
		if len(cands) == 0 {
			return nil, nil
		}
		total[cands[rng.Intn(len(cands))]]++
	}
	// Split totals into inputs/outputs: pick k+1 terminal slots for inputs.
	type slot struct{ proc int }
	var all []slot
	for p := 0; p < P; p++ {
		for t := 0; t < total[p]; t++ {
			all = append(all, slot{p})
		}
	}
	perm := randPerm(rng, len(all))
	for i, idx := range perm {
		if i < spec.K+1 {
			in[all[idx].proc]++
		} else {
			out[all[idx].proc]++
		}
	}
	return in, out
}

// neighbor returns a random local modification of the candidate: either a
// degree-preserving 2-edge swap or a terminal relocation. Returns nil when
// the sampled move is inapplicable.
func (c *Candidate) neighbor(rng *rand.Rand) *Candidate {
	n := c.clone()
	if rng.Intn(3) == 0 {
		if !n.moveTerminal(rng) {
			return nil
		}
		return n
	}
	if !n.swapEdges(rng) {
		return nil
	}
	return n
}

func (c *Candidate) clone() *Candidate {
	P := c.Spec.Procs()
	adj := make([][]bool, P)
	for i := range adj {
		adj[i] = append([]bool(nil), c.ProcAdj[i]...)
	}
	return &Candidate{
		Spec:    c.Spec,
		ProcAdj: adj,
		In:      append([]int(nil), c.In...),
		Out:     append([]int(nil), c.Out...),
	}
}

// swapEdges performs a random 2-edge swap (a,b),(x,y) -> (a,x),(b,y),
// preserving all degrees and simplicity.
func (c *Candidate) swapEdges(rng *rand.Rand) bool {
	type edge struct{ a, b int }
	var edges []edge
	P := c.Spec.Procs()
	for a := 0; a < P; a++ {
		for b := a + 1; b < P; b++ {
			if c.ProcAdj[a][b] {
				edges = append(edges, edge{a, b})
			}
		}
	}
	for attempt := 0; attempt < 30; attempt++ {
		e1 := edges[rng.Intn(len(edges))]
		e2 := edges[rng.Intn(len(edges))]
		a, b, x, y := e1.a, e1.b, e2.a, e2.b
		if rng.Intn(2) == 0 {
			x, y = y, x
		}
		if a == x || a == y || b == x || b == y {
			continue
		}
		if c.ProcAdj[a][x] || c.ProcAdj[b][y] {
			continue
		}
		c.ProcAdj[a][b], c.ProcAdj[b][a] = false, false
		c.ProcAdj[x][y], c.ProcAdj[y][x] = false, false
		c.ProcAdj[a][x], c.ProcAdj[x][a] = true, true
		c.ProcAdj[b][y], c.ProcAdj[y][b] = true, true
		return true
	}
	return false
}

// moveTerminal relocates one terminal between processors, honoring the
// degree bounds.
func (c *Candidate) moveTerminal(rng *rand.Rand) bool {
	P := c.Spec.Procs()
	procDeg := make([]int, P)
	for a := 0; a < P; a++ {
		for b := 0; b < P; b++ {
			if c.ProcAdj[a][b] {
				procDeg[a]++
			}
		}
	}
	for attempt := 0; attempt < 30; attempt++ {
		from := rng.Intn(P)
		to := rng.Intn(P)
		if from == to {
			continue
		}
		kind := rng.Intn(2)
		src := c.In
		if kind == 1 {
			src = c.Out
		}
		if src[from] == 0 {
			continue
		}
		// Bounds: source keeps ≥ minT, destination stays ≤ maxT.
		tFrom := c.In[from] + c.Out[from] - 1
		tTo := c.In[to] + c.Out[to] + 1
		if procDeg[from]+tFrom < c.Spec.K+2 {
			continue
		}
		if procDeg[to]+tTo > c.Spec.MaxDegree {
			continue
		}
		src[from]--
		src[to]++
		return true
	}
	return false
}

// havelHakimi constructs one simple graph with the given degree sequence,
// or nil if the sequence is not graphical.
func havelHakimi(deg []int) [][]bool {
	P := len(deg)
	adj := make([][]bool, P)
	for i := range adj {
		adj[i] = make([]bool, P)
	}
	type vd struct{ v, d int }
	rem := make([]vd, P)
	for i, d := range deg {
		rem[i] = vd{i, d}
	}
	for {
		sort.Slice(rem, func(i, j int) bool { return rem[i].d > rem[j].d })
		if rem[0].d == 0 {
			return adj
		}
		d := rem[0].d
		if d >= P {
			return nil
		}
		rem[0].d = 0
		for i := 1; i <= d; i++ {
			if i >= len(rem) || rem[i].d == 0 {
				return nil
			}
			rem[i].d--
			adj[rem[0].v][rem[i].v] = true
			adj[rem[i].v][rem[0].v] = true
		}
	}
}

// graphical reports whether deg has a simple-graph realization.
func graphical(deg []int) bool { return havelHakimi(deg) != nil }

// shuffleEdges applies random degree-preserving swaps to randomize the
// Havel–Hakimi graph.
func shuffleEdges(adj [][]bool, rng *rand.Rand, swaps int) {
	c := Candidate{Spec: Spec{MaxDegree: 1 << 20}, ProcAdj: adj}
	c.Spec.N = len(adj)
	for i := 0; i < swaps; i++ {
		c.swapEdges(rng)
	}
}
