// Package search performs computer search over standard solution graphs.
// The paper (§3.3) introduces several "special solutions" that were
// "intuitively designed and exhaustively verified by human and/or computer
// checking", and proves Lemma 3.14 (no degree-(k+2) standard solution for
// n=5, k=2) by a manual case analysis. This package mechanizes both
// directions:
//
//   - Exhaustive enumerates every standard candidate for given (n, k, Δ)
//     up to processor relabeling and decides each one with the exact
//     solver; an empty result is a machine re-proof of nonexistence
//     (Lemma 3.14) and a singleton-up-to-isomorphism result is a
//     uniqueness re-proof (Lemmas 3.7, 3.9);
//   - Find searches randomly (degree-constrained random graphs plus
//     simulated-annealing edge swaps) for one verified solution; it is how
//     the frozen special solutions in internal/construct were originally
//     derived.
package search

import (
	"fmt"
	"math/rand"
	"sort"

	"gdpn/internal/bitset"
	"gdpn/internal/combin"
	"gdpn/internal/embed"
	"gdpn/internal/graph"
	"gdpn/internal/verify"
)

// Spec describes the search target: a standard k-gracefully-degradable
// graph for n nodes with maximum processor degree at most MaxDegree.
type Spec struct {
	N, K      int
	MaxDegree int
}

func (s Spec) String() string {
	return fmt.Sprintf("(n=%d, k=%d, Δ≤%d)", s.N, s.K, s.MaxDegree)
}

// Procs returns the processor count n+k.
func (s Spec) Procs() int { return s.N + s.K }

// Candidate is a fully assembled standard graph under evaluation: a
// processor subgraph plus per-processor input/output terminal counts.
type Candidate struct {
	Spec Spec
	// ProcAdj is the processor subgraph as an adjacency matrix.
	ProcAdj [][]bool
	// In[p] and Out[p] count the input/output terminals attached to p.
	In, Out []int
}

// Build materializes the candidate as a labeled graph.
func (c *Candidate) Build() *graph.Graph {
	g := graph.New(fmt.Sprintf("search%s", c.Spec))
	P := c.Spec.Procs()
	for p := 0; p < P; p++ {
		g.AddNode(graph.Processor, p)
	}
	for a := 0; a < P; a++ {
		for b := a + 1; b < P; b++ {
			if c.ProcAdj[a][b] {
				g.AddEdge(a, b)
			}
		}
	}
	label := 0
	for p := 0; p < P; p++ {
		for t := 0; t < c.In[p]; t++ {
			g.AddEdge(g.AddNode(graph.InputTerminal, label), p)
			label++
		}
	}
	label = 0
	for p := 0; p < P; p++ {
		for t := 0; t < c.Out[p]; t++ {
			g.AddEdge(g.AddNode(graph.OutputTerminal, label), p)
			label++
		}
	}
	return g
}

// evaluator decides candidates and scores near-misses. It reuses one exact
// solver and one fault bitset across evaluations.
type evaluator struct {
	spec     Spec
	universe int // total node count n+3k+2
}

func newEvaluator(spec Spec) *evaluator {
	return &evaluator{spec: spec, universe: spec.N + 3*spec.K + 2}
}

// score counts fault sets of size ≤ k that are NOT tolerated, stopping
// early once `cap` failures are seen. score == 0 means the candidate is a
// verified solution (every fault set was checked).
func (ev *evaluator) score(g *graph.Graph, cap int) int {
	solver := embed.NewSolver(g, embed.Options{Method: embed.DP})
	faults := bitset.New(g.NumNodes())
	failures := 0
	combin.SubsetsUpTo(g.NumNodes(), ev.spec.K, func(sub []int) bool {
		faults.Clear()
		for _, v := range sub {
			faults.Add(v)
		}
		r := solver.Find(faults)
		if !r.Found {
			failures++
			if failures >= cap {
				return false
			}
		}
		return true
	})
	return failures
}

// IsSolution fully verifies the candidate (all fault sets, exact engine)
// and additionally certificate-checks a sample pipeline.
func (ev *evaluator) isSolution(g *graph.Graph) bool {
	if err := verify.CheckStandard(g, ev.spec.N, ev.spec.K); err != nil {
		return false
	}
	if err := verify.CheckNecessaryConditions(g, ev.spec.N, ev.spec.K); err != nil {
		return false
	}
	if g.MaxProcessorDegree() > ev.spec.MaxDegree {
		return false
	}
	return ev.score(g, 1) == 0
}

// feasibleTerminalVectors enumerates the per-processor (in, out) terminal
// count vectors consistent with the necessary conditions: each processor p
// with processor-degree d and t = in+out terminals needs
// d + t ≥ k+2 (Lemma 3.1), d ≥ k+1 (Lemma 3.4), and d + t ≤ Δ.
func feasibleTerminalVectors(spec Spec, procDeg []int, fn func(in, out []int) bool) {
	P := spec.Procs()
	in := make([]int, P)
	out := make([]int, P)
	maxT := make([]int, P)
	minT := make([]int, P)
	for p := 0; p < P; p++ {
		maxT[p] = spec.MaxDegree - procDeg[p]
		minT[p] = spec.K + 2 - procDeg[p]
		if minT[p] < 0 {
			minT[p] = 0
		}
		if maxT[p] < minT[p] {
			return // infeasible degree vector
		}
	}
	// First distribute input terminals, then outputs, honoring per-node
	// bounds and the global sums k+1 / k+1.
	var recOut func(p, left int) bool
	var recIn func(p, left int) bool
	recOut = func(p, left int) bool {
		if p == P {
			if left != 0 {
				return true
			}
			for q := 0; q < P; q++ {
				if in[q]+out[q] < minT[q] {
					return true
				}
			}
			return fn(in, out)
		}
		hi := maxT[p] - in[p]
		if hi > left {
			hi = left
		}
		for v := 0; v <= hi; v++ {
			out[p] = v
			if !recOut(p+1, left-v) {
				return false
			}
		}
		out[p] = 0
		return true
	}
	recIn = func(p, left int) bool {
		if p == P {
			if left != 0 {
				return true
			}
			return recOut(0, spec.K+1)
		}
		hi := maxT[p]
		if hi > left {
			hi = left
		}
		for v := 0; v <= hi; v++ {
			in[p] = v
			if !recIn(p+1, left-v) {
				return false
			}
		}
		in[p] = 0
		return true
	}
	recIn(0, spec.K+1)
}

// degreeVectors enumerates processor-subgraph degree vectors consistent
// with the spec: each degree in [k+1, Δ] (the lower bound is Lemma 3.4 and
// only applies for n > 1; for n = 1 the lower bound is 0) and an even sum,
// sorted non-increasing (vertex 0 takes the largest degree, which is sound
// up to relabeling because the terminal placement enumeration later
// considers every assignment).
func degreeVectors(spec Spec, fn func(deg []int) bool) {
	P := spec.Procs()
	lo := spec.K + 1
	if spec.N == 1 {
		lo = 0
	}
	hi := spec.MaxDegree
	if hi > P-1 {
		hi = P - 1
	}
	deg := make([]int, P)
	var rec func(p, sum, prev int) bool
	rec = func(p, sum, prev int) bool {
		if p == P {
			if sum%2 != 0 {
				return true
			}
			return fn(deg)
		}
		for d := prev; d >= lo; d-- {
			deg[p] = d
			if !rec(p+1, sum+d, d) {
				return false
			}
		}
		return true
	}
	rec(0, 0, hi)
}

// sortedCopy returns a sorted copy (ascending).
func sortedCopy(a []int) []int {
	c := append([]int(nil), a...)
	sort.Ints(c)
	return c
}

// randPerm applies Fisher-Yates over ints [0,n).
func randPerm(rng *rand.Rand, n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
