package pipeline_test

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"gdpn/internal/construct"
	"gdpn/internal/pipeline"
	"gdpn/internal/stages"
)

// testStages builds a fresh copy of the full stage chain; FIR and LZ78
// carry internal state, so any frame lost, duplicated, or reordered by
// the stream shows up as diverging output, not just a miscount.
func testStages() []stages.Stage {
	return []stages.Stage{
		stages.NewSubsample(2),
		&stages.Rescale{Gain: 1.5, Offset: 0.1},
		stages.NewFIR([]float64{0.25, 0.5, 0.25}),
		stages.NewQuantize(-16, 16, 256),
		stages.NewLZ78(4096),
	}
}

func genFrames(n, size int, seed int64) []pipeline.Frame {
	rng := rand.New(rand.NewSource(seed))
	fs := make([]pipeline.Frame, n)
	for i := range fs {
		d := make([]float64, size)
		for j := range d {
			d[j] = rng.NormFloat64() * 4
		}
		fs[i] = pipeline.Frame{Seq: i, Data: d}
	}
	return fs
}

func copyFrames(fs []pipeline.Frame) []pipeline.Frame {
	out := make([]pipeline.Frame, len(fs))
	for i, f := range fs {
		out[i] = pipeline.Frame{Seq: f.Seq, Data: append([]float64(nil), f.Data...)}
	}
	return out
}

func mustEngine(t *testing.T, n, k int) *pipeline.Engine {
	t.Helper()
	sol, err := construct.Design(n, k)
	if err != nil {
		t.Fatalf("Design(%d,%d): %v", n, k, err)
	}
	eng, err := pipeline.New(sol, testStages())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return eng
}

func assertSameFrames(t *testing.T, got, want []pipeline.Frame) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d frames, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Seq != want[i].Seq {
			t.Fatalf("frame %d: seq %d, want %d", i, got[i].Seq, want[i].Seq)
		}
		if len(got[i].Data) != len(want[i].Data) {
			t.Fatalf("frame %d: %d samples, want %d", i, len(got[i].Data), len(want[i].Data))
		}
		for j := range want[i].Data {
			if got[i].Data[j] != want[i].Data[j] {
				t.Fatalf("frame %d sample %d: %v, want %v", i, j, got[i].Data[j], want[i].Data[j])
			}
		}
	}
}

// TestStreamMatchesSequentialReference streams frames with no faults and
// checks the output is bit-identical to the sequential reference engine.
func TestStreamMatchesSequentialReference(t *testing.T) {
	eng := mustEngine(t, 12, 3)
	ref := mustEngine(t, 12, 3)
	frames := genFrames(40, 256, 5)
	want := ref.ProcessSequential(copyFrames(frames))

	st, err := eng.StartStream(pipeline.StreamConfig{})
	if err != nil {
		t.Fatalf("StartStream: %v", err)
	}
	done := make(chan []pipeline.Frame)
	go func() {
		var got []pipeline.Frame
		for f := range st.Out() {
			got = append(got, f)
		}
		done <- got
	}()
	for _, f := range frames {
		if err := st.Submit(f); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	rep := st.Close()
	got := <-done
	if !rep.Clean() {
		t.Fatalf("stream not clean: %+v", rep)
	}
	assertSameFrames(t, got, want)
}

// TestStreamZeroLossAcrossRemaps interleaves live faults and repairs with
// traffic and checks (a) the zero-loss ledger and (b) that the delivered
// data is bit-identical to an unfaulted sequential run — which holds only
// if every requeued frame resumed at exactly the right stage, in order.
func TestStreamZeroLossAcrossRemaps(t *testing.T) {
	sol, err := construct.Design(12, 3)
	if err != nil {
		t.Fatalf("Design(12,3): %v", err)
	}
	eng, err := pipeline.New(sol, testStages())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ref := mustEngine(t, 12, 3)
	frames := genFrames(120, 256, 9)
	want := ref.ProcessSequential(copyFrames(frames))

	st, err := eng.StartStream(pipeline.StreamConfig{MaxPending: 8})
	if err != nil {
		t.Fatalf("StartStream: %v", err)
	}
	done := make(chan []pipeline.Frame)
	go func() {
		var got []pipeline.Frame
		for f := range st.Out() {
			got = append(got, f)
		}
		done <- got
	}()

	procs := sol.Graph.Processors()
	remap := map[int]func() error{
		20:  func() error { return eng.Inject(procs[0]) },
		40:  func() error { return eng.Inject(procs[3]) },
		60:  func() error { return eng.Repair(procs[0]) },
		80:  func() error { return eng.Inject(procs[5]) },
		100: func() error { return eng.Repair(procs[3]) },
	}
	for i, f := range frames {
		if err := st.Submit(f); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		if op, ok := remap[i]; ok {
			if err := op(); err != nil {
				t.Fatalf("remap at frame %d: %v", i, err)
			}
		}
	}
	rep := st.Close()
	got := <-done
	if !rep.Clean() {
		t.Fatalf("stream not clean after remaps: %+v", rep)
	}
	if rep.Remaps != 5 {
		t.Fatalf("remaps = %d, want 5", rep.Remaps)
	}
	assertSameFrames(t, got, want)
}

// TestStreamBackpressure checks that with a tiny pending bound and a
// stalled consumer, Submit stops accepting rather than buffering without
// limit — and that everything still drains cleanly once the consumer
// starts.
func TestStreamBackpressure(t *testing.T) {
	eng := mustEngine(t, 10, 2)
	st, err := eng.StartStream(pipeline.StreamConfig{MaxPending: 2})
	if err != nil {
		t.Fatalf("StartStream: %v", err)
	}
	const total = 400
	frames := genFrames(total, 64, 3)
	producerDone := make(chan struct{})
	go func() {
		defer close(producerDone)
		for _, f := range frames {
			if st.Submit(f) != nil {
				return
			}
		}
	}()
	// No consumer yet: the producer must stall well short of total once the
	// pending bound, chain buffers, and delivery buffer are all full.
	deadline := time.Now().Add(2 * time.Second)
	var stalled int64
	for time.Now().Before(deadline) {
		a := st.Report().Submitted
		time.Sleep(50 * time.Millisecond)
		if b := st.Report().Submitted; b == a && b < total {
			stalled = b
			break
		}
	}
	if stalled == 0 || stalled >= total {
		t.Fatalf("producer never stalled (submitted=%d of %d)", st.Report().Submitted, total)
	}

	var got int
	consumerDone := make(chan struct{})
	go func() {
		defer close(consumerDone)
		for range st.Out() {
			got++
		}
	}()
	<-producerDone
	rep := st.Close()
	<-consumerDone
	if !rep.Clean() || rep.Delivered != total {
		t.Fatalf("after draining: delivered=%d (want %d), report %+v", rep.Delivered, total, rep)
	}
	if got != total {
		t.Fatalf("consumer saw %d frames, want %d", got, total)
	}
}

// TestStreamLifecycleErrors covers the exclusivity and closed-stream
// errors, and that a fresh stream can start after Close.
func TestStreamLifecycleErrors(t *testing.T) {
	eng := mustEngine(t, 10, 2)
	st, err := eng.StartStream(pipeline.StreamConfig{})
	if err != nil {
		t.Fatalf("StartStream: %v", err)
	}
	if _, err := eng.StartStream(pipeline.StreamConfig{}); !errors.Is(err, pipeline.ErrStreamActive) {
		t.Fatalf("second StartStream: %v, want ErrStreamActive", err)
	}
	go func() {
		for range st.Out() {
		}
	}()
	rep := st.Close()
	if !rep.Clean() {
		t.Fatalf("empty stream not clean: %+v", rep)
	}
	if err := st.Submit(pipeline.Frame{Seq: 0}); !errors.Is(err, pipeline.ErrStreamClosed) {
		t.Fatalf("Submit after Close: %v, want ErrStreamClosed", err)
	}
	// The engine is back in epoch mode and a new stream may start.
	st2, err := eng.StartStream(pipeline.StreamConfig{})
	if err != nil {
		t.Fatalf("StartStream after Close: %v", err)
	}
	go func() {
		for range st2.Out() {
		}
	}()
	if rep := st2.Close(); !rep.Clean() {
		t.Fatalf("second stream not clean: %+v", rep)
	}
}
