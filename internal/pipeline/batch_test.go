package pipeline_test

import (
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strings"
	"testing"

	"gdpn/internal/construct"
	"gdpn/internal/pipeline"
	"gdpn/internal/stages"
)

// mustEngineOpts is mustEngine with transport options.
func mustEngineOpts(t *testing.T, n, k int, opts ...pipeline.Option) *pipeline.Engine {
	t.Helper()
	sol, err := construct.Design(n, k)
	if err != nil {
		t.Fatalf("Design(%d,%d): %v", n, k, err)
	}
	eng, err := pipeline.New(sol, testStages(), opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return eng
}

// TestStreamRemapAtEveryBatchOffset forces a live remap after submitting
// j frames for every batch offset j in {0, 1, mid, last} (batch size 4),
// so the drain catches partially assembled and partially traveled batches
// at each alignment, and asserts the delivered frames are bit-identical
// to the sequential reference — the stateful stages (FIR, LZ78) make any
// skipped, repeated, or reordered frame visible in the data.
func TestStreamRemapAtEveryBatchOffset(t *testing.T) {
	const batch = 4
	for _, offset := range []int{0, 1, batch / 2, batch - 1} {
		sol, err := construct.Design(12, 3)
		if err != nil {
			t.Fatalf("Design(12,3): %v", err)
		}
		eng, err := pipeline.New(sol, testStages(), pipeline.WithBatchSize(batch))
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		ref := mustEngine(t, 12, 3)
		frames := genFrames(3*batch+batch/2, 128, int64(11+offset))
		want := ref.ProcessSequential(copyFrames(frames))

		st, err := eng.StartStream(pipeline.StreamConfig{MaxPending: 2 * batch})
		if err != nil {
			t.Fatalf("StartStream: %v", err)
		}
		done := make(chan []pipeline.Frame)
		go func() {
			var got []pipeline.Frame
			for f := range st.Out() {
				got = append(got, f)
			}
			done <- got
		}()
		procs := sol.Graph.Processors()
		for i, f := range frames {
			if err := st.Submit(f); err != nil {
				t.Fatalf("offset %d: Submit %d: %v", offset, i, err)
			}
			switch i {
			case offset:
				if err := eng.Inject(procs[1]); err != nil {
					t.Fatalf("offset %d: inject: %v", offset, err)
				}
			case offset + batch + 1:
				if err := eng.Repair(procs[1]); err != nil {
					t.Fatalf("offset %d: repair: %v", offset, err)
				}
			}
		}
		rep := st.Close()
		got := <-done
		if !rep.Clean() {
			t.Fatalf("offset %d: stream not clean: %+v", offset, rep)
		}
		if rep.Remaps != 2 {
			t.Fatalf("offset %d: remaps = %d, want 2", offset, rep.Remaps)
		}
		assertSameFrames(t, got, want)
	}
}

// TestBufferPoolRoundTrip pins the GetBuffer/Recycle contract: a recycled
// buffer satisfies the next lease without allocating new storage.
func TestBufferPoolRoundTrip(t *testing.T) {
	if raceDetector {
		t.Skip("sync.Pool drops Puts at random under -race")
	}
	eng := mustEngineOpts(t, 10, 2)
	d := eng.GetBuffer(256)
	if len(d) != 256 {
		t.Fatalf("GetBuffer(256) returned len %d", len(d))
	}
	eng.Recycle(pipeline.Frame{Seq: 0, Data: d})
	d2 := eng.GetBuffer(128)
	if len(d2) != 128 {
		t.Fatalf("GetBuffer(128) returned len %d", len(d2))
	}
	if &d[0] != &d2[0] {
		t.Fatalf("recycled storage was not reused")
	}
	hits, misses := eng.PoolStats()
	if hits != 1 || misses != 1 {
		t.Fatalf("PoolStats = (%d hits, %d misses), want (1, 1)", hits, misses)
	}
}

// TestStreamSteadyStateZeroAlloc is the zero-allocation contract of the
// batched transport: with the producer leasing buffers from the engine
// pool and the consumer recycling delivered frames, a steady-state stream
// performs no per-frame heap allocations. The chain is the light one —
// LZ78 allocates inside its own dictionary, which is stage compute, not
// transport. A small absolute slack absorbs one-off runtime noise (stack
// growth, pool rebalancing); per-frame cost must still round to zero.
func TestStreamSteadyStateZeroAlloc(t *testing.T) {
	if raceDetector {
		t.Skip("sync.Pool drops Puts at random under -race")
	}
	sol, err := construct.Design(12, 3)
	if err != nil {
		t.Fatalf("Design(12,3): %v", err)
	}
	eng, err := pipeline.New(sol, lightStages())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	st, err := eng.StartStream(pipeline.StreamConfig{MaxPending: 64})
	if err != nil {
		t.Fatalf("StartStream: %v", err)
	}
	consumed := make(chan struct{})
	go func() {
		defer close(consumed)
		for f := range st.Out() {
			eng.Recycle(f)
		}
	}()

	const size = 256
	template := genFrames(1, size, 7)[0].Data
	seq := 0
	pump := func(n int) {
		for i := 0; i < n; i++ {
			d := eng.GetBuffer(size)
			copy(d, template)
			if err := st.Submit(pipeline.Frame{Seq: seq, Data: d}); err != nil {
				t.Fatalf("Submit: %v", err)
			}
			seq++
		}
	}

	// Warm up: populate the buffer and batch pools, grow goroutine stacks.
	pump(512)

	// Keep the GC from clearing the pools mid-measurement.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	const measured = 2000
	pump(measured)
	runtime.ReadMemStats(&after)

	rep := st.Close()
	<-consumed
	if !rep.Clean() {
		t.Fatalf("stream not clean: %+v", rep)
	}
	allocs := int64(after.Mallocs - before.Mallocs)
	if allocs > measured/100 {
		t.Fatalf("steady state allocated %d objects over %d frames (%.3f/frame), want ~0",
			allocs, measured, float64(allocs)/measured)
	}
}

// TestNoPerFrameAllocIdiom scans the package's non-test sources for the
// append([]float64(nil), ...) per-frame copy idiom that the batched
// transport exists to remove; reintroducing it on a hot path fails here
// (and in the CI lint) before it fails a benchmark gate.
func TestNoPerFrameAllocIdiom(t *testing.T) {
	ents, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		name := ent.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		src, err := os.ReadFile(filepath.Clean(name))
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(src), "append([]float64(nil)") {
			t.Errorf("%s: contains append([]float64(nil), ...): per-frame copies belong in pooled buffers (see batch.go)", name)
		}
	}
}

// TestBatchSizeOne pins that batch size 1 (the per-frame baseline the
// benchmarks compare against) still satisfies the reference equality.
func TestBatchSizeOne(t *testing.T) {
	sol, err := construct.Design(10, 2)
	if err != nil {
		t.Fatalf("Design(10,2): %v", err)
	}
	eng, err := pipeline.New(sol, testStages(),
		pipeline.WithBatchSize(1), pipeline.WithChannelDepth(1))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ref := mustEngine(t, 10, 2)
	frames := genFrames(25, 96, 13)
	want := ref.ProcessSequential(copyFrames(frames))
	got := eng.Process(frames)
	assertSameFrames(t, got, want)
}

// lightStages is a cheap chain (no compression) used by the transport
// benchmarks so channel synchronization, not stage compute, dominates.
func lightStages() []stages.Stage {
	return []stages.Stage{
		stages.NewSubsample(2),
		&stages.Rescale{Gain: 1.5, Offset: 0.1},
		stages.NewFIR([]float64{0.25, 0.5, 0.25}),
		stages.NewQuantize(-16, 16, 256),
	}
}
