package pipeline_test

import (
	"sync"
	"testing"

	"gdpn/internal/obs"
	"gdpn/internal/pipeline"
)

func TestStagesOnOutOfRangeReturnsNil(t *testing.T) {
	e, err := pipeline.New(design(t, 6, 2), chain())
	if err != nil {
		t.Fatal(err)
	}
	// Regression: these used to panic with an index-out-of-range.
	for _, pos := range []int{-1, e.ProcessorsInUse(), e.ProcessorsInUse() + 5, 1 << 20} {
		if got := e.StagesOn(pos); got != nil {
			t.Fatalf("StagesOn(%d) = %v, want nil", pos, got)
		}
	}
	// In-range positions still work (some are pass-through relays with no
	// stages, so look for any position that owns stages).
	owned := 0
	for pos := 0; pos < e.ProcessorsInUse(); pos++ {
		owned += len(e.StagesOn(pos))
	}
	if owned != len(chain()) {
		t.Fatalf("in-range StagesOn covers %d stages, want %d", owned, len(chain()))
	}
}

// TestMetricsConcurrentWithProcess is the regression for the
// FramesProcessed data race: reading Metrics() while Process runs must be
// safe (the race detector enforces this) and must eventually converge on
// the exact frame count.
func TestMetricsConcurrentWithProcess(t *testing.T) {
	e, err := pipeline.New(design(t, 8, 2), chain())
	if err != nil {
		t.Fatal(err)
	}
	const rounds, perRound = 8, 16
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if m := e.Metrics(); m.FramesProcessed < 0 {
					panic("negative frame count")
				}
			}
		}
	}()
	for r := 0; r < rounds; r++ {
		e.Process(mkFrames(perRound, 16, int64(r)))
	}
	close(stop)
	wg.Wait()
	if got := e.Metrics().FramesProcessed; got != rounds*perRound {
		t.Fatalf("FramesProcessed = %d, want %d", got, rounds*perRound)
	}
}

// TestProcessRecordsObsMetrics checks the engine's instrumentation end to
// end: frame counter, latency histogram, per-stage and epoch series.
func TestProcessRecordsObsMetrics(t *testing.T) {
	reg := obs.Default()
	reg.Reset()
	reg.SetEnabled(true)
	defer func() {
		reg.SetEnabled(false)
		reg.Reset()
	}()

	e, err := pipeline.New(design(t, 6, 2), chain())
	if err != nil {
		t.Fatal(err)
	}
	before := reg.Snapshot().Counters["pipeline_frames_total"]
	out := e.Process(mkFrames(12, 32, 1))
	if len(out) != 12 {
		t.Fatalf("processed %d frames", len(out))
	}
	s := reg.Snapshot()
	if got := s.Counters["pipeline_frames_total"] - before; got != 12 {
		t.Fatalf("pipeline_frames_total advanced by %d, want 12", got)
	}
	lat := s.Histograms["pipeline_frame_latency_ns"]
	if lat.Count != 12 || lat.P50 <= 0 || lat.Max < lat.P50 {
		t.Fatalf("frame latency histogram %+v", lat)
	}
	if st := s.Histograms["pipeline_stage_ns"]; st.Count == 0 {
		t.Fatalf("stage histogram empty: %+v", st)
	}
	if ep := s.Histograms["pipeline_epoch_ns"]; ep.Count != 1 {
		t.Fatalf("epoch histogram %+v, want one epoch", ep)
	}
	if s.Gauges["pipeline_procs_in_use"] != int64(e.ProcessorsInUse()) {
		t.Fatalf("procs gauge %d, want %d", s.Gauges["pipeline_procs_in_use"], e.ProcessorsInUse())
	}
	if s.Gauges["pipeline_epoch_throughput_bps"] <= 0 {
		t.Fatal("throughput gauge not set")
	}

	// A fault must move the repair counters and append trace events.
	victim := e.Pipeline()[2]
	if err := e.Inject(victim); err != nil {
		t.Fatal(err)
	}
	s = reg.Snapshot()
	var repairs int64
	for k, v := range s.Counters {
		if len(k) > len("reconfig_repairs_total") && k[:len("reconfig_repairs_total")] == "reconfig_repairs_total" {
			repairs += v
		}
	}
	if repairs != 1 {
		t.Fatalf("repair counters sum %d, want 1 (counters %v)", repairs, s.Counters)
	}
	foundRepair := false
	for _, ev := range s.Events {
		if ev.Name == "repair" {
			foundRepair = true
		}
	}
	if !foundRepair {
		t.Fatalf("no repair event in trace: %+v", s.Events)
	}
	if inj := s.Histograms[`pipeline_remap_ns{op="inject"}`]; inj.Count != 1 {
		t.Fatalf("inject remap histogram %+v", inj)
	}
}

// TestDisabledObsRecordsNothing pins the disabled-by-default contract:
// running the pipeline without enabling the registry must leave every
// pipeline_* instrument untouched.
func TestDisabledObsRecordsNothing(t *testing.T) {
	reg := obs.Default()
	reg.Reset()
	e, err := pipeline.New(design(t, 6, 2), chain())
	if err != nil {
		t.Fatal(err)
	}
	e.Process(mkFrames(6, 16, 2))
	s := reg.Snapshot()
	if s.Counters["pipeline_frames_total"] != 0 {
		t.Fatalf("frames counter %d while disabled", s.Counters["pipeline_frames_total"])
	}
	if s.Histograms["pipeline_frame_latency_ns"].Count != 0 {
		t.Fatal("latency histogram advanced while disabled")
	}
	if m := e.Metrics(); m.FramesProcessed != 6 {
		t.Fatalf("engine's own metrics must still work: %+v", m)
	}
}

// benchProcess measures Process throughput with the registry in a given
// state; comparing the two benchmarks bounds the disabled-registry
// overhead (acceptance: within noise, <5%).
func benchProcess(b *testing.B, enabled bool) {
	reg := obs.Default()
	reg.Reset()
	reg.SetEnabled(enabled)
	defer func() {
		reg.SetEnabled(false)
		reg.Reset()
	}()
	e, err := pipeline.New(design(b, 8, 2), chain())
	if err != nil {
		b.Fatal(err)
	}
	frames := mkFrames(64, 1024, 1)
	b.SetBytes(64 * 1024 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Process(frames)
	}
}

func BenchmarkProcessObsDisabled(b *testing.B) { benchProcess(b, false) }
func BenchmarkProcessObsEnabled(b *testing.B)  { benchProcess(b, true) }

// BenchmarkProcessBaselineUninstrumented replicates the engine's
// goroutine-per-processor channel chain with NO instrumentation at all —
// the pre-obs hot loop. Comparing it against BenchmarkProcessObsDisabled
// bounds the cost of the disabled registry (acceptance: <5%, i.e. within
// noise).
func BenchmarkProcessBaselineUninstrumented(b *testing.B) {
	e, err := pipeline.New(design(b, 8, 2), chain())
	if err != nil {
		b.Fatal(err)
	}
	stgs := chain()
	// Same contiguous assignment the engine computes.
	L := e.ProcessorsInUse()
	S := len(stgs)
	assign := make([][]int, L)
	for i := 0; i < L; i++ {
		for s := i * S / L; s < (i+1)*S/L; s++ {
			assign[i] = append(assign[i], s)
		}
	}
	frames := mkFrames(64, 1024, 1)
	b.SetBytes(64 * 1024 * 8)
	b.ResetTimer()
	for iter := 0; iter < b.N; iter++ {
		chans := make([]chan pipeline.Frame, L+1)
		for i := range chans {
			chans[i] = make(chan pipeline.Frame, 4)
		}
		for i := 0; i < L; i++ {
			go func(pos int) {
				for f := range chans[pos] {
					data := f.Data
					for _, si := range assign[pos] {
						data = stgs[si].Process(data)
					}
					chans[pos+1] <- pipeline.Frame{Seq: f.Seq, Data: append([]float64(nil), data...)}
				}
				close(chans[pos+1])
			}(i)
		}
		go func() {
			for _, f := range frames {
				chans[0] <- f
			}
			close(chans[0])
		}()
		for range chans[L] {
		}
	}
}
