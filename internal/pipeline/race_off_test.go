//go:build !race

package pipeline_test

// raceDetector reports whether the race detector is active.
const raceDetector = false
