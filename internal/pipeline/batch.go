package pipeline

// This file is the zero-allocation batched transport (ROADMAP item 3):
// frames move through the goroutine-per-processor chain in pooled
// frameBatch carriers instead of one channel send per frame per stage,
// and every sample buffer a frame occupies after its first processing
// position comes from (and returns to) a sync.Pool. In steady state —
// producer leasing buffers with GetBuffer, consumer returning them with
// Recycle — the per-frame path performs zero heap allocations.
//
// Buffer lifecycle (the ownership rules; see DESIGN.md §12):
//
//   - Stream.Submit transfers ownership of Frame.Data to the stream: the
//     storage is rewrapped and eventually recycled, so producers must not
//     retain a submitted slice. Epoch-mode Process does NOT take
//     ownership — callers may reuse the same input frames across calls.
//   - Stage outputs alias per-stage scratch, so a worker detaches each
//     processed frame into a pooled buffer and releases the frame's
//     previous buffer back to the pool in the same step.
//   - Frames handed to the consumer (Stream.Out / Process return) own
//     their buffer. Returning it via Engine.Recycle closes the loop;
//     dropping it instead is safe but costs one pool miss later.

import (
	"sync"
	"sync/atomic"
	"time"

	"gdpn/internal/obs"
)

// Transport tuning defaults. DefaultChannelDepth preserves the chain's
// historical hardcoded depth (make(chan …, 4)).
const (
	DefaultBatchSize    = 8
	DefaultChannelDepth = 4
	maxBatchSize        = 1024
)

// Option tunes an Engine at construction time.
type Option func(*Engine)

// WithBatchSize sets how many frames ride one chain send (default
// DefaultBatchSize, clamped to [1, 1024]). 1 reproduces the per-frame
// transport. Values <= 0 are ignored so zero-valued configs keep the
// default.
func WithBatchSize(n int) Option {
	return func(e *Engine) {
		if n > maxBatchSize {
			n = maxBatchSize
		}
		if n >= 1 {
			e.batchSize = n
		}
	}
}

// WithChannelDepth sets the per-position channel buffer, in batches
// (default DefaultChannelDepth — the old hardcoded depth). Values <= 0
// are ignored.
func WithChannelDepth(d int) Option {
	return func(e *Engine) {
		if d >= 1 {
			e.chanDepth = d
		}
	}
}

// fbuf wraps one pooled sample buffer. The wrapper is pooled separately
// from its storage so that recycling a raw []float64 (Recycle) and
// releasing storage to a consumer (emit) both stay allocation-free:
// pooling a bare slice would box the header on every Put.
type fbuf struct {
	data []float64
}

// bufPool recycles frame-sized sample buffers. hits/misses always count
// (they are the pool's own accounting, read by tests and the S3
// experiment); the obs counters cost one atomic load when disabled.
type bufPool struct {
	full  sync.Pool // *fbuf with usable storage
	empty sync.Pool // *fbuf wrappers whose storage was handed off

	hits   atomic.Int64
	misses atomic.Int64
	hitC   *obs.Counter
	missC  *obs.Counter
}

// get leases a buffer of length n, reusing pooled storage when one with
// enough capacity is available.
func (p *bufPool) get(n int) *fbuf {
	if v := p.full.Get(); v != nil {
		b := v.(*fbuf)
		if cap(b.data) >= n {
			p.hits.Add(1)
			p.hitC.Inc()
			b.data = b.data[:n]
			return b
		}
		// Keep the wrapper, grow its storage.
		p.misses.Add(1)
		p.missC.Inc()
		b.data = make([]float64, n)
		return b
	}
	p.misses.Add(1)
	p.missC.Inc()
	return &fbuf{data: make([]float64, n)}
}

// put returns a buffer (wrapper + storage) to the pool.
func (p *bufPool) put(b *fbuf) {
	if b == nil || cap(b.data) == 0 {
		return
	}
	p.full.Put(b)
}

// wrap adopts caller-owned storage into a pooled wrapper (Submit,
// Recycle). Returns nil for zero-capacity slices.
func (p *bufPool) wrap(d []float64) *fbuf {
	if cap(d) == 0 {
		return nil
	}
	var b *fbuf
	if v := p.empty.Get(); v != nil {
		b = v.(*fbuf)
	} else {
		b = new(fbuf)
	}
	b.data = d[:cap(d)]
	return b
}

// release hands a buffer's storage to the consumer and keeps the
// wrapper for reuse.
func (p *bufPool) release(b *fbuf) {
	if b == nil {
		return
	}
	b.data = nil
	p.empty.Put(b)
}

// stats returns the lifetime hit/miss counts.
func (p *bufPool) stats() (hits, misses int64) {
	return p.hits.Load(), p.misses.Load()
}

// GetBuffer leases an n-sample buffer from the engine's pool. Pairing it
// with Recycle on delivered frames makes a producer/consumer loop
// allocation-free in steady state. The buffer is ordinary memory — there
// is no obligation to submit it.
func (e *Engine) GetBuffer(n int) []float64 {
	b := e.pool.get(n)
	d := b.data
	e.pool.release(b)
	return d
}

// Recycle returns a delivered frame's buffer to the engine's pool. Only
// the consumer that received the frame may call it, and the slice must
// not be used afterwards.
func (e *Engine) Recycle(f Frame) {
	e.pool.put(e.pool.wrap(f.Data))
}

// PoolStats returns the buffer pool's lifetime hit and miss counts
// (also exported as pipeline_pool_total{result="hit"|"miss"}).
func (e *Engine) PoolStats() (hits, misses int64) { return e.pool.stats() }

// frameBatch carries up to Engine.batchSize tokens per chain send,
// amortizing channel synchronization across the whole batch.
type frameBatch struct {
	toks []token
}

func (e *Engine) getBatch() *frameBatch {
	if v := e.batchPool.Get(); v != nil {
		return v.(*frameBatch)
	}
	return &frameBatch{toks: make([]token, 0, e.batchSize)}
}

func (e *Engine) putBatch(b *frameBatch) {
	if b == nil {
		return
	}
	clear(b.toks) // drop buffer references so the pool retains no frames
	b.toks = b.toks[:0]
	e.batchPool.Put(b)
}

// newChain spins up one goroutine per pipeline position over the current
// stage assignment, wired by channels carrying frame batches.
func (e *Engine) newChain() *chain {
	L := len(e.assign)
	chans := make([]chan *frameBatch, L+1)
	for i := range chans {
		chans[i] = make(chan *frameBatch, e.chanDepth)
	}
	c := &chain{head: chans[0], tail: chans[L]}
	for pos := 0; pos < L; pos++ {
		go e.batchWorker(c, chans[pos], chans[pos+1], e.assign[pos])
	}
	return c
}

// batchWorker applies the position's owned stages to every token of each
// batch and forwards the carrier; while the chain drains (or when the
// position is a pass-through relay) batches move through untouched.
func (e *Engine) batchWorker(c *chain, in <-chan *frameBatch, out chan<- *frameBatch, owned []int) {
	S := len(e.stages)
	for b := range in {
		if len(owned) > 0 && !c.draining.Load() {
			observing := e.reg.Enabled()
			var work time.Time
			if observing {
				work = time.Now()
			}
			for i := range b.toks {
				e.processToken(&b.toks[i], owned, S)
			}
			if observing {
				e.stageTime.ObserveSince(work)
				stall := time.Now()
				out <- b
				e.sendStall.ObserveSince(stall)
				continue
			}
		}
		out <- b
	}
	close(out)
}

// processToken runs the owned logical stages the token has not yet seen
// (t.next skips ones applied before a previous remap) and detaches the
// result into a pooled buffer, releasing the token's previous buffer.
func (e *Engine) processToken(t *token, owned []int, S int) {
	if t.next >= S {
		return
	}
	data := t.data
	processed := false
	for _, si := range owned {
		if si >= t.next {
			data = e.stages[si].Process(data)
			t.next = si + 1
			processed = true
		}
	}
	if !processed {
		return
	}
	// Stage outputs alias per-stage scratch, valid only until that stage
	// runs again — copy out before the next token reuses it. The copy
	// completes before the old buffer is pooled, so a stage returning its
	// input unchanged is still safe.
	nb := e.pool.get(len(data))
	copy(nb.data, data)
	e.pool.put(t.buf)
	t.buf = nb
	t.data = nb.data
}
