package pipeline

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gdpn/internal/graph"
	"gdpn/internal/obs/span"
)

// This file is the continuous-streaming runtime: unlike Process, which
// runs one epoch at a time with faults injected only between epochs, a
// Stream keeps frames flowing while faults arrive and is engineered so
// that a live reconfiguration loses, duplicates, and reorders nothing.
//
// Mechanism. Frames travel the goroutine-per-processor chain as tokens
// that carry their stage progress (token.next = first logical stage not
// yet applied). When a remap arrives, the pump (1) flips the chain into
// draining mode — workers stop processing and pass tokens through
// untouched — and closes the head, so every in-flight token flushes out
// of the tail with its progress recorded; (2) applies the fault/repair on
// the now-quiesced engine, honoring the remap deadline with rollback to
// the last valid mapping; (3) requeues the unfinished tokens, oldest
// first, ahead of the backlog; and (4) rebuilds the chain over the new
// mapping, where each token resumes at exactly the stage it had reached.
// Because every stage processes frames in submission order exactly once,
// stateful stages (FIR, LZ78, …) stay bit-identical with an unfaulted
// run.
//
// Backpressure. Submit blocks when MaxPending frames are already queued —
// including for the whole of a remap stall — so a slow or paused pipeline
// pushes back on the producer instead of dropping. The sink checks
// sequence numbers against the exact submission order and counts any
// gap (lost), repeat (duplicated), or inversion (out-of-order); a clean
// run reports zeros and the pipeline_frame_loss gauge stays 0.

var (
	// ErrStreamActive is returned by StartStream when the engine already
	// has a live stream.
	ErrStreamActive = errors.New("pipeline: engine already has an active stream")
	// ErrStreamClosed is returned by Submit/Inject/Repair after Close.
	ErrStreamClosed = errors.New("pipeline: stream is closed")
	// ErrBackpressure is returned by TrySubmit when the stream's intake is
	// full: the frame was NOT accepted and the producer decides whether to
	// retry, drop, or shed.
	ErrBackpressure = errors.New("pipeline: stream intake full")
)

// StreamConfig configures a Stream.
type StreamConfig struct {
	// MaxPending bounds the frames buffered ahead of the processor chain;
	// a full buffer blocks Submit (backpressure) rather than dropping.
	// Default 64.
	MaxPending int
}

// StreamReport is the stream's end-to-end accounting. In a correct run
// Lost, Duplicated, and OutOfOrder are all zero and Delivered equals
// Submitted (after Close).
type StreamReport struct {
	// Submitted counts frames accepted by Submit.
	Submitted int64 `json:"submitted"`
	// Delivered counts frames emitted on Out.
	Delivered int64 `json:"delivered"`
	// Requeued counts in-flight frames handed back across remaps (a frame
	// surviving several remaps counts once per requeue).
	Requeued int64 `json:"requeued"`
	// Lost counts submitted frames that never reached the sink.
	Lost int64 `json:"lost"`
	// Duplicated counts sink arrivals with no matching submission.
	Duplicated int64 `json:"duplicated"`
	// OutOfOrder counts sink arrivals that did not strictly increase.
	OutOfOrder int64 `json:"out_of_order"`
	// Remaps counts successful live reconfigurations; RemapFailures the
	// rejected ones (deadline rollbacks, beyond-budget fault sets).
	Remaps        int64 `json:"remaps"`
	RemapFailures int64 `json:"remap_failures"`
	// TotalDowntime/MaxDowntime measure the stall windows: drain → remap →
	// chain rebuilt, during which no frame makes progress.
	TotalDowntime time.Duration `json:"total_downtime_ns"`
	MaxDowntime   time.Duration `json:"max_downtime_ns"`
}

// Clean reports whether the stream kept the zero-loss invariant: every
// submitted frame delivered exactly once, in order.
func (r StreamReport) Clean() bool {
	return r.Lost == 0 && r.Duplicated == 0 && r.OutOfOrder == 0 && r.Submitted == r.Delivered
}

// token is a frame in flight, annotated with its stage progress so a
// drained frame can resume on a new mapping without repeating or skipping
// a stage. buf is the pooled wrapper owning data's storage (nil while the
// data is still caller-owned, as in epoch-mode Process inputs).
type token struct {
	seq  int
	next int // first logical stage index not yet applied
	data []float64
	buf  *fbuf
}

// chain is one incarnation of the goroutine-per-processor pipeline.
// Tokens travel it in pooled frameBatch carriers (see batch.go).
type chain struct {
	head     chan *frameBatch
	tail     chan *frameBatch
	draining atomic.Bool // workers pass batches through untouched when set
}

type remapReq struct {
	repair bool
	node   int
	// place, when non-nil, makes this a placement remap (placed engines
	// only): the pump drains, installs the segment, and requeues — repair
	// and node are ignored. parent is the causal parent for the remap span
	// (the executor's replan span).
	place  graph.Path
	parent *span.S
	reply  chan error
}

// Stream is a continuously running instance of the engine: frames go in
// via Submit, come out via Out in submission order, and faults/repairs
// remap the pipeline live (route them through Engine.Inject / Repair).
// Submit must be called with strictly increasing Frame.Seq, and must not
// race with Close; all other methods are safe for concurrent use.
type Stream struct {
	e           *Engine
	maxPending  int
	maxInflight int // frames admitted into the chain at once

	submitc chan Frame
	outc    chan Frame
	remapc  chan remapReq
	closec  chan struct{} // closed by Close to start the shutdown flush
	donec   chan struct{}

	closeOnce sync.Once

	submitted, delivered, requeued atomic.Int64
	lost, duplicated, outOfOrder   atomic.Int64
	remaps, remapFailures          atomic.Int64
	totalDowntimeNS, maxDowntimeNS atomic.Int64

	// Pump-owned state (no locking: only the run goroutine touches it).
	// pending and expect are head-indexed rings: popping advances the head
	// instead of reslicing, so the steady state reuses the same backing
	// arrays instead of reallocating them.
	pending  []token // frames waiting to enter the chain; front = oldest
	pendHead int
	expect   []int // seqs submitted but not yet delivered, FIFO
	expHead  int
	staged   *frameBatch // batch being assembled from the pending front
	lastSeq  int         // last emitted seq, for the inversion check
	hasLast  bool
}

// StartStream switches the engine into continuous streaming. Only one
// stream may be active at a time; Close it before starting another or
// calling Process.
func (e *Engine) StartStream(cfg StreamConfig) (*Stream, error) {
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = 64
	}
	// The pump admits at most two batches per position into the chain —
	// enough to keep every worker busy while keeping the in-flight
	// population (and so the delivery buffer below) small and independent
	// of the channel depth. Out is sized so that the whole population
	// (pending backlog plus chain occupancy) fits; a slower consumer then
	// backpressures naturally through the chain to Submit.
	// submitc is buffered by one batch so a serial producer can run ahead
	// of the pump and real batches form; without it every submission is a
	// rendezvous and batches leave the head mostly single-frame.
	nProc := len(e.g.Processors())
	maxInflight := 2 * (nProc + 1) * e.batchSize
	s := &Stream{
		e:           e,
		maxPending:  cfg.MaxPending,
		maxInflight: maxInflight,
		submitc:     make(chan Frame, e.batchSize),
		outc:        make(chan Frame, cfg.MaxPending+maxInflight),
		remapc:      make(chan remapReq),
		closec:      make(chan struct{}),
		donec:       make(chan struct{}),
	}
	if !e.stream.CompareAndSwap(nil, s) {
		return nil, ErrStreamActive
	}
	go s.run()
	return s, nil
}

// Submit queues one frame, blocking while the pending buffer is full —
// including for the whole of a remap stall — and never dropping. Frames
// must carry strictly increasing Seq.
//
// Submit transfers ownership of f.Data to the stream: the buffer is
// recycled through the engine's pool and must not be retained or reused
// by the producer. Lease submission buffers with Engine.GetBuffer (and
// return delivered ones with Engine.Recycle) to stream without per-frame
// allocations.
func (s *Stream) Submit(f Frame) error {
	// Checked first: submitc is buffered, so after the pump exits a send
	// could otherwise succeed silently and strand the frame.
	select {
	case <-s.donec:
		return ErrStreamClosed
	default:
	}
	select {
	case s.submitc <- f:
		return nil
	case <-s.donec:
		return ErrStreamClosed
	}
}

// TrySubmit queues one frame like Submit but never blocks: when the
// stream's intake is full (the pump has stopped accepting under
// backpressure and the submit buffer is exhausted) it returns
// ErrBackpressure and the frame is NOT accepted — ownership of f.Data
// stays with the caller. The control plane uses it to shed low-SLO-class
// tenants' traffic instead of stalling their producers.
func (s *Stream) TrySubmit(f Frame) error {
	select {
	case <-s.donec:
		return ErrStreamClosed
	default:
	}
	select {
	case s.submitc <- f:
		return nil
	case <-s.donec:
		return ErrStreamClosed
	default:
		return ErrBackpressure
	}
}

// Out returns the delivery channel. Frames appear in submission order;
// the channel closes after Close has flushed everything.
func (s *Stream) Out() <-chan Frame { return s.outc }

// Close ends the stream: the backlog and every in-flight frame are
// flushed through the pipeline, Out is closed, and the final report is
// returned. Idempotent. submitc itself is never closed — a Submit racing
// or following Close parks on the channel until the pump exits and then
// returns ErrStreamClosed, instead of panicking on a closed send.
func (s *Stream) Close() StreamReport {
	s.closeOnce.Do(func() { close(s.closec) })
	<-s.donec
	s.e.stream.CompareAndSwap(s, nil)
	return s.Report()
}

// Report returns a snapshot of the stream's accounting; after Close it is
// the final report.
func (s *Stream) Report() StreamReport {
	return StreamReport{
		Submitted:     s.submitted.Load(),
		Delivered:     s.delivered.Load(),
		Requeued:      s.requeued.Load(),
		Lost:          s.lost.Load(),
		Duplicated:    s.duplicated.Load(),
		OutOfOrder:    s.outOfOrder.Load(),
		Remaps:        s.remaps.Load(),
		RemapFailures: s.remapFailures.Load(),
		TotalDowntime: time.Duration(s.totalDowntimeNS.Load()),
		MaxDowntime:   time.Duration(s.maxDowntimeNS.Load()),
	}
}

// remap asks the pump to apply a fault or repair between frames. It
// returns the engine's error (nil on success, reconfig.ErrDeadline-
// wrapped on a rolled-back remap).
func (s *Stream) remap(repair bool, node int) error {
	req := remapReq{repair: repair, node: node, reply: make(chan error, 1)}
	select {
	case s.remapc <- req:
		return <-req.reply
	case <-s.donec:
		return ErrStreamClosed
	}
}

// remapPlace asks the pump to install a new placement segment between
// frames (placed engines only); parent, when non-nil, becomes the causal
// parent of the remap span.
func (s *Stream) remapPlace(seg graph.Path, parent *span.S) error {
	req := remapReq{place: seg, parent: parent, reply: make(chan error, 1)}
	select {
	case s.remapc <- req:
		return <-req.reply
	case <-s.donec:
		return ErrStreamClosed
	}
}

// pendingLen / expectLen are the live lengths of the head-indexed rings.
func (s *Stream) pendingLen() int { return len(s.pending) - s.pendHead }
func (s *Stream) expectLen() int  { return len(s.expect) - s.expHead }

// pushPending appends a token, compacting the ring first when append
// would otherwise grow the backing array past dead head entries.
func (s *Stream) pushPending(t token) {
	if s.pendHead > 0 && len(s.pending) == cap(s.pending) {
		n := copy(s.pending, s.pending[s.pendHead:])
		clear(s.pending[n:])
		s.pending = s.pending[:n]
		s.pendHead = 0
	}
	s.pending = append(s.pending, t)
}

func (s *Stream) pushExpect(seq int) {
	if s.expHead > 0 && len(s.expect) == cap(s.expect) {
		n := copy(s.expect, s.expect[s.expHead:])
		s.expect = s.expect[:n]
		s.expHead = 0
	}
	s.expect = append(s.expect, seq)
}

// dropPending removes the n oldest pending tokens (they entered the
// chain), resetting the ring when it empties.
func (s *Stream) dropPending(n int) {
	s.pendHead += n
	if s.pendHead == len(s.pending) {
		clear(s.pending)
		s.pending = s.pending[:0]
		s.pendHead = 0
	}
}

// accept takes ownership of one submitted frame.
func (s *Stream) accept(f Frame) {
	s.pushPending(token{seq: f.Seq, data: f.Data, buf: s.e.pool.wrap(f.Data)})
	s.pushExpect(f.Seq)
	s.submitted.Add(1)
}

// drainSubmitc non-blockingly accepts buffered submissions; bound caps
// the pending backlog (0 = drain everything, as at close).
func (s *Stream) drainSubmitc(bound int) {
	for bound == 0 || s.pendingLen() < bound {
		select {
		case f := <-s.submitc:
			s.accept(f)
		default:
			return
		}
	}
}

// stageBatch assembles (or refreshes) the batch offered to the chain head
// from the front of the pending ring. The carrier is rebuilt each loop
// iteration, so a remap or new submission between offers never leaves a
// stale token staged.
func (s *Stream) stageBatch(n int) *frameBatch {
	if s.staged == nil {
		s.staged = s.e.getBatch()
	}
	if n > s.e.batchSize {
		n = s.e.batchSize
	}
	s.staged.toks = append(s.staged.toks[:0], s.pending[s.pendHead:s.pendHead+n]...)
	return s.staged
}

// run is the pump: the single goroutine that feeds the chain head, drains
// the tail, and serializes remaps against frame movement.
func (s *Stream) run() {
	defer close(s.donec)
	e := s.e
	c := e.newChain()
	inflight := 0
	closing := false
	closec := s.closec
	for {
		if closing && s.pendingLen() == 0 && inflight == 0 {
			break
		}
		var headc chan *frameBatch
		var nb *frameBatch
		if n := s.pendingLen(); n > 0 && inflight < s.maxInflight {
			nb = s.stageBatch(n)
			headc = c.head
		}
		submitc := s.submitc
		if closing || s.pendingLen() >= s.maxPending {
			submitc = nil // backpressure: stop accepting until the backlog drains
		}
		select {
		case <-closec:
			closing = true
			closec = nil // take this branch once
			// Submissions buffered in submitc were accepted (Submit returned
			// nil) before Close; drain and account them so none strands.
			s.drainSubmitc(0)
		case f := <-submitc:
			s.accept(f)
			// Greedily drain what the producer buffered meanwhile, so the
			// next staged batch reflects the real backlog.
			s.drainSubmitc(s.maxPending)
		case headc <- nb:
			n := len(nb.toks)
			s.dropPending(n)
			inflight += n
			s.staged = nil // ownership moved to the chain
			e.batchOcc.Observe(int64(n))
		case b := <-c.tail:
			inflight -= len(b.toks)
			for i := range b.toks {
				s.emit(b.toks[i])
			}
			e.putBatch(b)
		case req := <-s.remapc:
			c = s.handleRemap(c, &inflight, req)
		}
	}
	if s.staged != nil {
		e.putBatch(s.staged)
		s.staged = nil
	}
	close(c.head)
	for range c.tail {
		// inflight is zero, so nothing should arrive; drain defensively so
		// the workers can always exit.
	}
	// Anything still expected was never delivered: lost (zero when clean).
	s.lost.Add(int64(s.expectLen()))
	s.e.frameLoss.Set(int64(s.expectLen()))
	if n := s.expectLen(); n > 0 {
		span.Trip(span.AnomalyFrameLoss, fmt.Sprintf("stream closed with %d undelivered frames", n))
	}
	close(s.outc)
}

// handleRemap is the zero-loss live reconfiguration: drain, remap (or
// roll back), requeue, rebuild. Returns the new chain.
func (s *Stream) handleRemap(c *chain, inflight *int, req remapReq) *chain {
	e := s.e
	start := time.Now()
	var root *span.S
	if req.place != nil {
		root = e.startPlaceSpan(req.parent, "stream")
	} else {
		op := "inject"
		if req.repair {
			op = "repair"
		}
		root = startRemapSpan(op, "stream", req.node)
	}
	// 1. Drain: stop processing and flush every in-flight token out of the
	// old mapping with its progress recorded.
	drain := span.Start(root, "drain")
	drained := *inflight
	c.draining.Store(true)
	close(c.head)
	// In-flight batches explode back to individual frames here: each token
	// already carries its stage progress, so batching is invisible to the
	// drain/requeue contract.
	var requeue []token
	for b := range c.tail {
		*inflight -= len(b.toks)
		for i := range b.toks {
			t := b.toks[i]
			if t.next >= len(e.stages) {
				s.emit(t) // finished before the drain caught it
			} else {
				requeue = append(requeue, t)
			}
		}
		e.putBatch(b)
	}
	// Tokens leave the chain oldest-first already; sort defensively — the
	// requeue MUST resume in submission order or stateful stages corrupt.
	sort.Slice(requeue, func(i, j int) bool { return requeue[i].seq < requeue[j].seq })
	drain.SetInt("inflight", int64(drained)).SetInt("unfinished", int64(len(requeue)))
	drain.End(span.OK)
	// 2. Remap on the quiesced engine. On error (deadline rollback,
	// beyond-budget fault, invalid segment) the previous mapping is still
	// in place and the chain below simply restarts over it.
	var err error
	if req.place != nil {
		err = e.applyPlace(req.place, root)
	} else {
		err = e.applyRemap(req.repair, req.node, root)
	}
	if err != nil {
		s.remapFailures.Add(1)
	} else {
		s.remaps.Add(1)
	}
	// 3. Requeue unfinished frames ahead of the backlog.
	rq := span.Start(root, "requeue")
	if len(requeue) > 0 {
		live := s.pending[s.pendHead:]
		np := make([]token, 0, len(requeue)+len(live))
		np = append(np, requeue...)
		np = append(np, live...)
		s.pending, s.pendHead = np, 0
		s.requeued.Add(int64(len(requeue)))
		e.framesRequeued.Add(int64(len(requeue)))
	}
	rq.SetInt("frames", int64(len(requeue)))
	rq.End(span.OK)
	// 4. Rebuild the chain over the (possibly rolled-back) mapping.
	rw := span.Start(root, "rewire")
	nc := e.newChain()
	rw.SetInt("positions", int64(len(e.assign)))
	rw.End(span.OK)
	d := time.Since(start)
	s.totalDowntimeNS.Add(int64(d))
	for {
		cur := s.maxDowntimeNS.Load()
		if int64(d) <= cur || s.maxDowntimeNS.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
	e.remapDowntime.ObserveDuration(d)
	// With the chain empty every undelivered frame must be queued; the
	// difference is the loss gauge, and it must read zero.
	loss := int64(s.expectLen() - s.pendingLen())
	e.frameLoss.Set(loss)
	root.SetInt("downtime_ns", int64(d))
	finishRemapSpan(root, start, err)
	if loss > 0 {
		span.Trip(span.AnomalyFrameLoss, fmt.Sprintf("remap audit: %d frames unaccounted for", loss))
	}
	req.reply <- err
	return nc
}

// emit delivers one finished token, checking it against the exact
// submission order: any gap is loss, any unmatched arrival duplication,
// any non-increasing seq an inversion.
func (s *Stream) emit(t token) {
	if s.hasLast && t.seq <= s.lastSeq {
		s.outOfOrder.Add(1)
	}
	s.hasLast, s.lastSeq = true, t.seq
	matched := false
	for s.expHead < len(s.expect) && s.expect[s.expHead] <= t.seq {
		if s.expect[s.expHead] == t.seq {
			s.expHead++
			matched = true
			break
		}
		s.expHead++
		s.lost.Add(1)
		span.Trip(span.AnomalyFrameLoss, fmt.Sprintf("sink audit: gap before seq %d", t.seq))
	}
	if s.expHead == len(s.expect) {
		s.expect, s.expHead = s.expect[:0], 0
	}
	if !matched {
		s.duplicated.Add(1)
		span.Trip(span.AnomalyFrameLoss, fmt.Sprintf("sink audit: unmatched arrival seq %d", t.seq))
	}
	s.delivered.Add(1)
	s.e.frames.Add(1)
	s.e.framesTotal.Add(1)
	// The consumer owns the delivered buffer from here (Engine.Recycle
	// returns it to the pool); only the wrapper stays behind.
	s.e.pool.release(t.buf)
	s.outc <- Frame{Seq: t.seq, Data: t.data}
}
