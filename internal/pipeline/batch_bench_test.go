package pipeline_test

import (
	"fmt"
	"testing"

	"gdpn/internal/construct"
	"gdpn/internal/pipeline"
)

// benchStreamSteadyState pumps b.N frames through a live G(12,3) stream
// with a recycling consumer; allocs/op is allocations per frame.
func benchStreamSteadyState(b *testing.B, opts ...pipeline.Option) {
	sol, err := construct.Design(12, 3)
	if err != nil {
		b.Fatalf("Design(12,3): %v", err)
	}
	eng, err := pipeline.New(sol, lightStages(), opts...)
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	st, err := eng.StartStream(pipeline.StreamConfig{MaxPending: 64})
	if err != nil {
		b.Fatalf("StartStream: %v", err)
	}
	consumed := make(chan struct{})
	go func() {
		defer close(consumed)
		for f := range st.Out() {
			eng.Recycle(f)
		}
	}()
	// Small frames keep the benchmark transport-bound: what it measures is
	// channel-synchronization amortization, not stage compute (which at
	// large frame sizes dominates and is identical in both modes).
	const size = 64
	template := make([]float64, size)
	for i := range template {
		template[i] = float64(i%32) * 0.5
	}
	submit := func(seq int) {
		d := eng.GetBuffer(size)
		copy(d, template)
		if err := st.Submit(pipeline.Frame{Seq: seq, Data: d}); err != nil {
			b.Fatalf("Submit: %v", err)
		}
	}
	// Warm the buffer/batch pools so the measured window is steady state.
	for i := 0; i < 512; i++ {
		submit(i)
	}
	b.ReportAllocs()
	b.SetBytes(size * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		submit(512 + i)
	}
	b.StopTimer()
	st.Close()
	<-consumed
}

// BenchmarkStreamSteadyState compares the per-frame transport (batch
// size 1) against the batched default on the same G(12,3) stream. The
// committed contract (gated via the S3 experiment in BENCH_baseline.json)
// is 0 allocs/frame and >= 2x throughput for Batched vs PerFrame.
func BenchmarkStreamSteadyState(b *testing.B) {
	b.Run("PerFrame", func(b *testing.B) {
		benchStreamSteadyState(b, pipeline.WithBatchSize(1))
	})
	b.Run("Batched", func(b *testing.B) {
		benchStreamSteadyState(b)
	})
}

// BenchmarkStreamChannelDepth sweeps the per-position channel depth at
// the default batch size: depth 1 serializes handoffs, the default 4
// gives workers slack, deeper buffers mostly add memory.
func BenchmarkStreamChannelDepth(b *testing.B) {
	for _, depth := range []int{1, 2, 4, 16} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			benchStreamSteadyState(b, pipeline.WithChannelDepth(depth))
		})
	}
}
