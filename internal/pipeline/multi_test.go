package pipeline_test

import (
	"sync"
	"testing"

	"gdpn/internal/graph"
	"gdpn/internal/pipeline"
)

// TestMultiTenantDisjointStreams runs two placed engines concurrently over
// disjoint segments of one shared pool — the multi-tenant executor's
// steady state — and checks, under the race detector, that (a) each
// stream's sequence audit stays clean independently, (b) the delivered
// data of each tenant is bit-identical to its own sequential reference
// (a buffer leaked between the engines' sync.Pool recyclers would corrupt
// content, not just counters), and (c) a coordinated boundary swap that
// remaps BOTH engines mid-traffic preserves all of the above.
func TestMultiTenantDisjointStreams(t *testing.T) {
	sol, interior := poolInterior(t, 12, 3)
	if len(interior) < 10 {
		t.Fatalf("interior too short: %d", len(interior))
	}
	cut := len(interior) / 2

	segsA := [2]graph.Path{interior[:cut], interior[:cut-2]} // initial, post-swap
	segsB := [2]graph.Path{interior[cut:], interior[cut-2:]} // disjoint complements
	engA, err := pipeline.NewPlaced(sol.Graph, segsA[0], testStages(), pipeline.WithTenant("a"))
	if err != nil {
		t.Fatalf("NewPlaced a: %v", err)
	}
	engB, err := pipeline.NewPlaced(sol.Graph, segsB[0], testStages(), pipeline.WithTenant("b"))
	if err != nil {
		t.Fatalf("NewPlaced b: %v", err)
	}

	const nFrames = 80
	// Distinct seeds per tenant: identical payloads would mask leakage.
	framesA := genFrames(nFrames, 256, 101)
	framesB := genFrames(nFrames, 256, 202)
	wantA := mustEngine(t, 12, 3).ProcessSequential(copyFrames(framesA))
	wantB := mustEngine(t, 12, 3).ProcessSequential(copyFrames(framesB))

	run := func(eng *pipeline.Engine, frames []pipeline.Frame, swapSeg graph.Path, swapAt int,
		gotOut *[]pipeline.Frame, repOut *pipeline.StreamReport, wg *sync.WaitGroup) {
		defer wg.Done()
		st, err := eng.StartStream(pipeline.StreamConfig{MaxPending: 16})
		if err != nil {
			t.Errorf("StartStream(%s): %v", eng.Tenant(), err)
			return
		}
		sink := make(chan []pipeline.Frame, 1)
		go func() {
			var got []pipeline.Frame
			for f := range st.Out() {
				// Copy out and recycle: exercises the pool lease cycle that a
				// cross-tenant leak would poison.
				got = append(got, pipeline.Frame{Seq: f.Seq, Data: append([]float64(nil), f.Data...)})
				eng.Recycle(f)
			}
			sink <- got
		}()
		for i, f := range frames {
			if i == swapAt {
				if err := eng.ApplyPlacement(swapSeg, nil); err != nil {
					t.Errorf("ApplyPlacement(%s): %v", eng.Tenant(), err)
					break
				}
			}
			buf := eng.GetBuffer(len(f.Data))
			copy(buf, f.Data)
			if err := st.Submit(pipeline.Frame{Seq: f.Seq, Data: buf}); err != nil {
				t.Errorf("Submit(%s): %v", eng.Tenant(), err)
				break
			}
		}
		*repOut = st.Close()
		*gotOut = <-sink
	}

	var gotA, gotB []pipeline.Frame
	var repA, repB pipeline.StreamReport
	var wg sync.WaitGroup
	wg.Add(2)
	// Staggered swap points: tenant B remaps while tenant A is mid-drain
	// some of the time, approximating a coordinated replan's overlap.
	go run(engA, framesA, segsA[1], nFrames/2, &gotA, &repA, &wg)
	go run(engB, framesB, segsB[1], nFrames/2+3, &gotB, &repB, &wg)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	if !repA.Clean() {
		t.Fatalf("tenant a not clean: %+v", repA)
	}
	if !repB.Clean() {
		t.Fatalf("tenant b not clean: %+v", repB)
	}
	if repA.Remaps != 1 || repB.Remaps != 1 {
		t.Fatalf("remaps = %d/%d, want 1/1", repA.Remaps, repB.Remaps)
	}
	assertSameFrames(t, gotA, wantA)
	assertSameFrames(t, gotB, wantB)
}
