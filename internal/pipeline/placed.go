package pipeline

// This file is the placed-engine mode behind the multi-tenant control
// plane (internal/plan + internal/control): instead of owning a whole
// construct.Solution and repairing itself, a placed engine runs on a
// *placement* — a contiguous processor segment of the global pipeline,
// computed by an external planner — and is remapped only when the
// planner hands it a new segment via ApplyPlacement.
//
// Everything else is shared with the self-planned mode: the batched
// zero-allocation transport, the stream pump, and — critically — the
// drain/requeue live-remap machinery. A coordinated replan drains the
// tenant's in-flight frames with their stage progress, installs the new
// segment, requeues the unfinished frames ahead of the backlog, and
// rebuilds the chain, so a cross-tenant remap loses, duplicates, and
// reorders nothing, exactly like a single-tenant fault remap.

import (
	"errors"
	"fmt"
	"time"

	"gdpn/internal/graph"
	"gdpn/internal/obs/span"
	"gdpn/internal/stages"
)

// ErrPlaced is returned by Inject/Repair on a placed engine: faults are
// pool-level events handled by the executor's coordinated replan, not by
// individual engines.
var ErrPlaced = errors.New("pipeline: engine is externally placed; route faults through the control plane")

// ErrNotPlaced is returned by ApplyPlacement on a self-planned engine.
var ErrNotPlaced = errors.New("pipeline: engine plans its own pipeline; ApplyPlacement requires NewPlaced")

// WithTenant labels the engine with its tenant name; remap spans carry it
// as the "tenant" attribute.
func WithTenant(name string) Option {
	return func(e *Engine) { e.tenant = name }
}

// NewPlaced builds an engine over the shared pool graph g running on the
// given placement segment (processors only, in pipeline order). The
// engine does not solve or repair: placements come from the planner, and
// faults reach it only as ApplyPlacement calls. The stage instances are
// owned by the engine and keep their state across placement changes.
func NewPlaced(g *graph.Graph, seg graph.Path, stgs []stages.Stage, opts ...Option) (*Engine, error) {
	if len(stgs) == 0 {
		return nil, fmt.Errorf("pipeline: need at least one stage")
	}
	e := newEngine(g, stgs)
	e.placed = true
	for _, o := range opts {
		o(e)
	}
	if err := e.checkPlacement(seg); err != nil {
		return nil, err
	}
	e.path = append(graph.Path(nil), seg...)
	e.assignStages()
	e.procsInUse.Set(int64(e.ProcessorsInUse()))
	return e, nil
}

// Tenant returns the engine's tenant label ("" when unset).
func (e *Engine) Tenant() string { return e.tenant }

// checkPlacement is the engine-side structural audit of a segment: a
// non-empty simple path of processors in the pool graph. Fault- and
// coverage-level validation (verify.CheckSegment) is the planner's job —
// the engine does not track the pool fault set.
func (e *Engine) checkPlacement(seg graph.Path) error {
	if len(seg) == 0 {
		return fmt.Errorf("pipeline: empty placement")
	}
	if !seg.Distinct() {
		return fmt.Errorf("pipeline: placement revisits a node")
	}
	if !seg.IsWalk(e.g) {
		return fmt.Errorf("pipeline: placement uses a non-edge")
	}
	for _, v := range seg {
		if e.g.Kind(v) != graph.Processor {
			return fmt.Errorf("pipeline: placement node %d is a %v, not a processor", v, e.g.Kind(v))
		}
	}
	return nil
}

// ApplyPlacement remaps a placed engine onto a new segment. While a
// stream is active the placement routes through the pump: in-flight
// frames are drained with their stage progress, requeued ahead of the
// backlog, and resumed on the new segment — the same zero-loss contract
// as a fault remap. parent (nil outside coordinated replans) becomes the
// causal parent of the remap span, so one replan's per-tenant remaps
// share a root. On error the previous placement stays live.
func (e *Engine) ApplyPlacement(seg graph.Path, parent *span.S) error {
	if !e.placed {
		return ErrNotPlaced
	}
	if s := e.stream.Load(); s != nil {
		return s.remapPlace(seg, parent)
	}
	start := time.Now()
	root := e.startPlaceSpan(parent, "epoch")
	err := e.applyPlace(seg, root)
	finishRemapSpan(root, start, err)
	return err
}

// applyPlace installs a new placement on a quiesced engine (no frames in
// flight) and updates the remap metrics. The segment is defensively
// copied; an invalid segment leaves the previous placement in place.
func (e *Engine) applyPlace(seg graph.Path, root *span.S) error {
	start := time.Now()
	if err := e.checkPlacement(seg); err != nil {
		root.SetStr("error", err.Error())
		return err
	}
	e.path = append(e.path[:0:0], seg...)
	e.assignStages()
	elapsed := time.Since(start)
	e.mu.Lock()
	e.m.Remaps++
	e.m.RemapTime += elapsed
	e.mu.Unlock()
	e.remapLat[opReplan].ObserveDuration(elapsed)
	e.procsInUse.Set(int64(e.ProcessorsInUse()))
	root.SetInt("procs", int64(len(seg)))
	return nil
}
