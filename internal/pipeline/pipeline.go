// Package pipeline is the streaming runtime that the paper's constructions
// exist to serve (§1): it maps a sequence of signal-processing stages onto
// the processors of a gracefully degradable pipeline network, pumps frames
// through a goroutine-per-processor channel chain, and — when a fault is
// injected — asks the embedding solver for a new pipeline over the
// remaining healthy processors and remaps the stages onto it.
//
// Graceful degradation is visible directly in the runtime: after f ≤ k
// faults the pipeline still uses every healthy processor (verified on each
// remap), so per-processor load grows by only n/(n−f) rather than dropping
// processors wholesale.
package pipeline

import (
	"fmt"
	"time"

	"gdpn/internal/bitset"
	"gdpn/internal/construct"
	"gdpn/internal/graph"
	"gdpn/internal/reconfig"
	"gdpn/internal/stages"
)

// Frame is one block of samples moving through the pipeline.
type Frame struct {
	Seq  int
	Data []float64
}

// Metrics aggregates runtime behaviour across the engine's lifetime.
type Metrics struct {
	// FramesProcessed counts frames that exited the pipeline.
	FramesProcessed int64
	// Remaps counts successful reconfigurations.
	Remaps int
	// RemapTime accumulates the time spent computing new pipelines.
	RemapTime time.Duration
	// FaultsInjected counts Inject calls that added a fault.
	FaultsInjected int
	// Repairs breaks reconfigurations down by tactic (splice / rewire /
	// endpoint swap / full remap) — see internal/reconfig.
	Repairs reconfig.Stats
}

// Engine drives one pipeline network.
type Engine struct {
	g      *graph.Graph
	mgr    *reconfig.Manager
	stages []stages.Stage
	assign [][]int // per pipeline position (processors only): logical stage indices
	m      Metrics
}

// New builds an engine over a designed solution and the given logical
// stage chain, and maps the initial (fault-free) pipeline. The stage
// instances are owned by the engine: their internal state survives
// remapping, as a checkpoint-restore would in a real array.
func New(sol *construct.Solution, stgs []stages.Stage) (*Engine, error) {
	if len(stgs) == 0 {
		return nil, fmt.Errorf("pipeline: need at least one stage")
	}
	mgr, err := reconfig.New(sol)
	if err != nil {
		return nil, err
	}
	e := &Engine{g: sol.Graph, mgr: mgr, stages: stgs}
	e.assignStages()
	return e, nil
}

// Pipeline returns the current pipeline path (aliased; do not modify).
func (e *Engine) Pipeline() graph.Path { return e.mgr.Pipeline() }

// ProcessorsInUse returns the number of processors in the current pipeline.
func (e *Engine) ProcessorsInUse() int { return len(e.mgr.Pipeline()) - 2 }

// Metrics returns a snapshot of the engine's counters.
func (e *Engine) Metrics() Metrics { return e.m }

// StagesOn returns the logical stage indices assigned to pipeline position
// pos (0-based over processors).
func (e *Engine) StagesOn(pos int) []int { return e.assign[pos] }

// Inject marks a node faulty and repairs the pipeline — locally when one
// of the reconfig tactics applies, by full recompute otherwise. It returns
// an error (leaving the previous mapping in place) when the node is
// already faulty or when no pipeline survives — the latter only happens
// beyond the design fault budget k.
func (e *Engine) Inject(node int) error {
	start := time.Now()
	if _, err := e.mgr.Fault(node); err != nil {
		return fmt.Errorf("pipeline: %w", err)
	}
	e.m.RemapTime += time.Since(start)
	e.m.FaultsInjected++
	e.m.Remaps++
	e.m.Repairs = e.mgr.Stats()
	e.assignStages()
	return nil
}

// Repair marks a node healthy again and reinstates it in the pipeline.
func (e *Engine) Repair(node int) error {
	start := time.Now()
	if _, err := e.mgr.Repair(node); err != nil {
		return fmt.Errorf("pipeline: %w", err)
	}
	e.m.RemapTime += time.Since(start)
	e.m.Remaps++
	e.m.Repairs = e.mgr.Stats()
	e.assignStages()
	return nil
}

// assignStages redistributes the logical stages contiguously over the
// current pipeline's processors.
func (e *Engine) assignStages() {
	L := len(e.mgr.Pipeline()) - 2
	S := len(e.stages)
	e.assign = make([][]int, L)
	for i := 0; i < L; i++ {
		lo := i * S / L
		hi := (i + 1) * S / L
		for s := lo; s < hi; s++ {
			e.assign[i] = append(e.assign[i], s)
		}
	}
	// When there are more processors than stages, trailing processors act
	// as pass-through relays (assign[i] empty) — they still carry the
	// stream, which is exactly the paper's model of a pipeline using all
	// healthy processors.
}

// Process streams the frames through the current mapping using one
// goroutine per pipeline processor connected by channels, and returns the
// transformed frames in order. Stages with internal state carry it across
// calls. Faults are injected between Process calls (epoch model).
func (e *Engine) Process(frames []Frame) []Frame {
	L := len(e.assign)
	chans := make([]chan Frame, L+1)
	for i := range chans {
		chans[i] = make(chan Frame, 4)
	}
	for i := 0; i < L; i++ {
		go func(pos int) {
			owned := e.assign[pos]
			for f := range chans[pos] {
				data := f.Data
				for _, si := range owned {
					data = e.stages[si].Process(data)
				}
				// Copy: stage output buffers are reused per instance.
				out := Frame{Seq: f.Seq, Data: append([]float64(nil), data...)}
				chans[pos+1] <- out
			}
			close(chans[pos+1])
		}(i)
	}
	go func() {
		for _, f := range frames {
			chans[0] <- f
		}
		close(chans[0])
	}()
	out := make([]Frame, 0, len(frames))
	for f := range chans[L] {
		out = append(out, f)
	}
	e.m.FramesProcessed += int64(len(out))
	return out
}

// ProcessSequential applies the stage chain to the frames on the calling
// goroutine — the reference implementation Process is tested against.
func (e *Engine) ProcessSequential(frames []Frame) []Frame {
	out := make([]Frame, 0, len(frames))
	for _, f := range frames {
		data := f.Data
		for _, owned := range e.assign {
			for _, si := range owned {
				data = e.stages[si].Process(data)
			}
		}
		out = append(out, Frame{Seq: f.Seq, Data: append([]float64(nil), data...)})
	}
	e.m.FramesProcessed += int64(len(out))
	return out
}

// Faults returns the currently injected fault set (aliased; do not modify).
func (e *Engine) Faults() bitset.Set { return e.mgr.Faults() }
