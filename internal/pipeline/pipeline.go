// Package pipeline is the streaming runtime that the paper's constructions
// exist to serve (§1): it maps a sequence of signal-processing stages onto
// the processors of a gracefully degradable pipeline network, pumps frames
// through a goroutine-per-processor channel chain, and — when a fault is
// injected — asks the embedding solver for a new pipeline over the
// remaining healthy processors and remaps the stages onto it.
//
// Graceful degradation is visible directly in the runtime: after f ≤ k
// faults the pipeline still uses every healthy processor (verified on each
// remap), so per-processor load grows by only n/(n−f) rather than dropping
// processors wholesale.
//
// The engine is instrumented through internal/obs (disabled by default, so
// hot paths pay one atomic load): per-frame end-to-end latency
// (pipeline_frame_latency_ns), per-position stage processing time
// (pipeline_stage_ns), channel-send stall time (pipeline_send_stall_ns),
// per-epoch wall time and throughput (pipeline_epoch_ns,
// pipeline_epoch_throughput_bps), and remap latency by operation
// (pipeline_remap_ns{op="inject"|"repair"}).
package pipeline

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gdpn/internal/bitset"
	"gdpn/internal/construct"
	"gdpn/internal/embed"
	"gdpn/internal/graph"
	"gdpn/internal/obs"
	"gdpn/internal/obs/span"
	"gdpn/internal/reconfig"
	"gdpn/internal/stages"
)

// Frame is one block of samples moving through the pipeline.
type Frame struct {
	Seq  int
	Data []float64
}

// Metrics aggregates runtime behaviour across the engine's lifetime.
type Metrics struct {
	// FramesProcessed counts frames that exited the pipeline.
	FramesProcessed int64
	// Remaps counts successful reconfigurations.
	Remaps int
	// RemapTime accumulates the time spent computing new pipelines.
	RemapTime time.Duration
	// FaultsInjected counts Inject calls that added a fault.
	FaultsInjected int
	// Repairs breaks reconfigurations down by tactic (splice / rewire /
	// endpoint swap / full remap) — see internal/reconfig.
	Repairs reconfig.Stats
}

// Engine drives one pipeline network. It runs in one of two modes:
// self-planned (New), where it owns a reconfig.Manager over the whole
// solution and repairs itself on Inject/Repair; or placed (NewPlaced),
// where the pipeline is a processor segment handed down by an external
// planner and remapped only via ApplyPlacement — see placed.go.
type Engine struct {
	g      *graph.Graph
	mgr    *reconfig.Manager // nil in placed mode
	placed bool
	path   graph.Path // placed mode only: the current placement segment
	tenant string     // optional tenant label carried on remap spans
	stages []stages.Stage
	assign [][]int // per pipeline position (processors only): logical stage indices

	// frames is read by Metrics() while Process/ProcessSequential write it,
	// so it lives outside the mutex as an atomic.
	frames atomic.Int64
	mu     sync.Mutex // guards the remaining Metrics fields
	m      Metrics

	// stream is the live Stream instance, if any; Inject/Repair route
	// through it so remaps drain and requeue in-flight frames.
	stream atomic.Pointer[Stream]

	// Batched-transport tuning (see batch.go) and the buffer/batch pools
	// behind the zero-allocation steady state.
	batchSize int
	chanDepth int
	pool      bufPool
	batchPool sync.Pool // *frameBatch

	reg            *obs.Registry
	framesTotal    *obs.Counter
	framesRequeued *obs.Counter
	frameLat       *obs.Histogram
	stageTime      *obs.Histogram
	sendStall      *obs.Histogram
	batchOcc       *obs.Histogram
	epochTime      *obs.Histogram
	epochTput      *obs.Gauge
	procsInUse     *obs.Gauge
	frameLoss      *obs.Gauge
	remapDowntime  *obs.Histogram
	remapLat       [3]*obs.Histogram // indexed by opInject/opRepair/opReplan
}

const (
	opInject = 0
	opRepair = 1
	opReplan = 2
)

// New builds an engine over a designed solution and the given logical
// stage chain, and maps the initial (fault-free) pipeline. The stage
// instances are owned by the engine: their internal state survives
// remapping, as a checkpoint-restore would in a real array. Options
// tune the batched transport (WithBatchSize, WithChannelDepth).
func New(sol *construct.Solution, stgs []stages.Stage, opts ...Option) (*Engine, error) {
	if len(stgs) == 0 {
		return nil, fmt.Errorf("pipeline: need at least one stage")
	}
	mgr, err := reconfig.New(sol)
	if err != nil {
		return nil, err
	}
	e := newEngine(sol.Graph, stgs)
	e.mgr = mgr
	for _, o := range opts {
		o(e)
	}
	e.assignStages()
	e.procsInUse.Set(int64(e.ProcessorsInUse()))
	return e, nil
}

// newEngine builds the mode-independent engine shell: stages, transport
// tuning defaults, and the instrumentation surface.
func newEngine(g *graph.Graph, stgs []stages.Stage) *Engine {
	reg := obs.Default()
	e := &Engine{
		g: g, stages: stgs,
		batchSize:      DefaultBatchSize,
		chanDepth:      DefaultChannelDepth,
		reg:            reg,
		framesTotal:    reg.Counter("pipeline_frames_total"),
		framesRequeued: reg.Counter("pipeline_frames_requeued_total"),
		frameLat:       reg.Histogram("pipeline_frame_latency_ns"),
		stageTime:      reg.Histogram("pipeline_stage_ns"),
		sendStall:      reg.Histogram("pipeline_send_stall_ns"),
		batchOcc:       reg.Histogram("pipeline_batch_occupancy"),
		epochTime:      reg.Histogram("pipeline_epoch_ns"),
		epochTput:      reg.Gauge("pipeline_epoch_throughput_bps"),
		procsInUse:     reg.Gauge("pipeline_procs_in_use"),
		frameLoss:      reg.Gauge("pipeline_frame_loss"),
		remapDowntime:  reg.Histogram("pipeline_remap_downtime_ns"),
		remapLat: [3]*obs.Histogram{
			reg.Histogram("pipeline_remap_ns", obs.L("op", "inject")),
			reg.Histogram("pipeline_remap_ns", obs.L("op", "repair")),
			reg.Histogram("pipeline_remap_ns", obs.L("op", "replan")),
		},
	}
	e.pool.hitC = reg.Counter("pipeline_pool_total", obs.L("result", "hit"))
	e.pool.missC = reg.Counter("pipeline_pool_total", obs.L("result", "miss"))
	return e
}

// Pipeline returns the current pipeline path (aliased; do not modify).
// In placed mode this is the placement segment: processors only, no
// terminals.
func (e *Engine) Pipeline() graph.Path {
	if e.placed {
		return e.path
	}
	return e.mgr.Pipeline()
}

// ProcessorsInUse returns the number of processors in the current pipeline.
func (e *Engine) ProcessorsInUse() int {
	if e.placed {
		return len(e.path)
	}
	return len(e.mgr.Pipeline()) - 2
}

// Metrics returns a consistent snapshot of the engine's counters. It is
// safe to call while Process runs on another goroutine.
func (e *Engine) Metrics() Metrics {
	e.mu.Lock()
	m := e.m
	e.mu.Unlock()
	m.FramesProcessed = e.frames.Load()
	return m
}

// StagesOn returns the logical stage indices assigned to pipeline position
// pos (0-based over processors), or nil when pos is out of range.
func (e *Engine) StagesOn(pos int) []int {
	if pos < 0 || pos >= len(e.assign) {
		return nil
	}
	return e.assign[pos]
}

// Inject marks a node faulty and repairs the pipeline — locally when one
// of the reconfig tactics applies, by full recompute otherwise. It returns
// an error (leaving the previous mapping in place) when the node is
// already faulty, when a remap deadline set via SetRemapDeadline expires
// (errors.Is reconfig.ErrDeadline; the fault is rolled back), or when no
// pipeline survives — the latter only happens beyond the design fault
// budget k. While a Stream is active the injection routes through it:
// in-flight frames are drained and requeued around the remap so none is
// lost or duplicated.
func (e *Engine) Inject(node int) error {
	if e.placed {
		return ErrPlaced
	}
	if s := e.stream.Load(); s != nil {
		return s.remap(false, node)
	}
	return e.applyFault(node)
}

// applyFault performs the fault injection on a quiesced engine (no frames
// in flight): epoch-mode callers come here directly; a Stream's pump goes
// through applyRemap under its own root span after draining its chain.
func (e *Engine) applyFault(node int) error {
	start := time.Now()
	root := startRemapSpan("inject", "epoch", node)
	err := e.applyRemap(false, node, root)
	finishRemapSpan(root, start, err)
	return err
}

// applyRepair performs the repair on a quiesced engine; see applyFault.
func (e *Engine) applyRepair(node int) error {
	start := time.Now()
	root := startRemapSpan("repair", "epoch", node)
	err := e.applyRemap(true, node, root)
	finishRemapSpan(root, start, err)
	return err
}

// applyRemap runs the fault or repair on the quiesced engine under root
// (the causal parent of the manager's detect/plan/solve/audit phase spans;
// nil outside traced runs) and updates the engine's remap metrics.
func (e *Engine) applyRemap(repair bool, node int, root *span.S) error {
	start := time.Now()
	e.mgr.SetActiveSpan(root)
	var err error
	if repair {
		_, err = e.mgr.Repair(node)
	} else {
		_, err = e.mgr.Fault(node)
	}
	e.mgr.SetActiveSpan(nil)
	if err != nil {
		return fmt.Errorf("pipeline: %w", err)
	}
	elapsed := time.Since(start)
	e.mu.Lock()
	e.m.RemapTime += elapsed
	if !repair {
		e.m.FaultsInjected++
	}
	e.m.Remaps++
	e.m.Repairs = e.mgr.Stats()
	e.mu.Unlock()
	e.assignStages()
	op := opInject
	if repair {
		op = opRepair
	}
	e.remapLat[op].ObserveDuration(elapsed)
	e.procsInUse.Set(int64(e.ProcessorsInUse()))
	return nil
}

// startRemapSpan opens the root span of one remap (nil when tracing is
// off). op is "inject" or "repair"; mode is "epoch" (quiesced engine) or
// "stream" (live drain/requeue around the remap).
func startRemapSpan(op, mode string, node int) *span.S {
	return span.Start(nil, "remap").
		SetStr("op", op).SetStr("mode", mode).SetInt("node", int64(node))
}

// startPlaceSpan opens the root span of one placement remap, hung under
// the executor's replan span (parent; nil outside coordinated replans)
// and labeled with the engine's tenant.
func (e *Engine) startPlaceSpan(parent *span.S, mode string) *span.S {
	sp := span.Start(parent, "remap").SetStr("op", "replan").SetStr("mode", mode)
	if e.tenant != "" {
		sp.SetStr("tenant", e.tenant)
	}
	return sp
}

// finishRemapSpan ends a root remap span with the status and cancellation
// reason derived from err, feeds the SLO remap-latency objective, and —
// after the span is in the ring, so a dump contains the whole tree —
// trips the flight recorder on deadline misses and rollbacks. Deliberate
// cancellations (shutdown) are not anomalies and do not trip.
func finishRemapSpan(root *span.S, start time.Time, err error) {
	st, reason := reconfig.RemapStatus(err)
	if reason != "" {
		root.SetStr("cancel_reason", reason)
	}
	root.End(st)
	if slo := span.DefaultSLO(); slo.Enabled() {
		slo.Observe("remap", time.Since(start))
	}
	switch {
	case err == nil || errors.Is(err, embed.ErrCanceled):
	case errors.Is(err, reconfig.ErrDeadline) || errors.Is(err, embed.ErrDeadline):
		span.Trip(span.AnomalyDeadline, err.Error())
	case errors.Is(err, embed.ErrBudget):
		span.Trip(span.AnomalyBudget, err.Error())
	default:
		span.Trip(span.AnomalyRollback, err.Error())
	}
}

// Repair marks a node healthy again and reinstates it in the pipeline.
// While a Stream is active the repair routes through it, like Inject.
func (e *Engine) Repair(node int) error {
	if e.placed {
		return ErrPlaced
	}
	if s := e.stream.Load(); s != nil {
		return s.remap(true, node)
	}
	return e.applyRepair(node)
}

// assignStages redistributes the logical stages contiguously over the
// current pipeline's processors.
func (e *Engine) assignStages() {
	L := e.ProcessorsInUse()
	S := len(e.stages)
	e.assign = make([][]int, L)
	for i := 0; i < L; i++ {
		lo := i * S / L
		hi := (i + 1) * S / L
		for s := lo; s < hi; s++ {
			e.assign[i] = append(e.assign[i], s)
		}
	}
	// When there are more processors than stages, trailing processors act
	// as pass-through relays (assign[i] empty) — they still carry the
	// stream, which is exactly the paper's model of a pipeline using all
	// healthy processors.
}

// Process streams the frames through the current mapping using one
// goroutine per pipeline processor connected by channels carrying pooled
// frame batches, and returns the transformed frames in order. Stages with
// internal state carry it across calls. Faults are injected between
// Process calls (epoch model).
//
// Input buffers stay caller-owned (the first processing position copies
// into a pooled buffer), so callers may reuse the same input frames
// across calls. Output buffers come from the engine's pool; returning
// them via Recycle after use keeps the path allocation-free.
func (e *Engine) Process(frames []Frame) []Frame {
	// Sampled once per epoch: the per-frame clock reads below key off this
	// local, so a disabled registry costs no time.Now() calls in the loop.
	observing := e.reg.Enabled()
	var epochStart time.Time
	var starts []time.Time
	if observing {
		epochStart = time.Now()
		starts = make([]time.Time, len(frames))
	}

	c := e.newChain()
	go func() {
		for i := 0; i < len(frames); {
			n := len(frames) - i
			if n > e.batchSize {
				n = e.batchSize
			}
			b := e.getBatch()
			for j := 0; j < n; j++ {
				if observing {
					// Written before the send; the channel chain's
					// happens-before edges make it visible to the collector.
					starts[i+j] = time.Now()
				}
				f := frames[i+j]
				b.toks = append(b.toks, token{seq: f.Seq, data: f.Data})
			}
			e.batchOcc.Observe(int64(n))
			c.head <- b
			i += n
		}
		close(c.head)
	}()
	out := make([]Frame, 0, len(frames))
	for b := range c.tail {
		for i := range b.toks {
			t := b.toks[i]
			if observing {
				// Frames exit in input order, so out position == input index.
				e.frameLat.ObserveSince(starts[len(out)])
			}
			// The caller owns the delivered buffer; keep the wrapper.
			e.pool.release(t.buf)
			out = append(out, Frame{Seq: t.seq, Data: t.data})
		}
		e.putBatch(b)
	}
	e.frames.Add(int64(len(out)))
	e.framesTotal.Add(int64(len(out)))
	if observing {
		e.observeEpoch(frames, time.Since(epochStart))
	}
	return out
}

// ProcessSequential applies the stage chain to the frames on the calling
// goroutine — the reference implementation Process is tested against.
func (e *Engine) ProcessSequential(frames []Frame) []Frame {
	observing := e.reg.Enabled()
	var epochStart time.Time
	if observing {
		epochStart = time.Now()
	}
	out := make([]Frame, 0, len(frames))
	for _, f := range frames {
		var start time.Time
		if observing {
			start = time.Now()
		}
		data := f.Data
		for _, owned := range e.assign {
			for _, si := range owned {
				data = e.stages[si].Process(data)
			}
		}
		// Detach from the last stage's scratch. The reference path allocates
		// plainly on purpose: it is what the batched transport is audited
		// against, not part of the hot path.
		cp := make([]float64, len(data))
		copy(cp, data)
		out = append(out, Frame{Seq: f.Seq, Data: cp})
		if observing {
			e.frameLat.ObserveSince(start)
		}
	}
	e.frames.Add(int64(len(out)))
	e.framesTotal.Add(int64(len(out)))
	if observing {
		e.observeEpoch(frames, time.Since(epochStart))
	}
	return out
}

// observeEpoch records the epoch wall time and input throughput (bytes of
// float64 samples per second).
func (e *Engine) observeEpoch(frames []Frame, elapsed time.Duration) {
	e.epochTime.ObserveDuration(elapsed)
	if elapsed <= 0 {
		return
	}
	samples := 0
	for _, f := range frames {
		samples += len(f.Data)
	}
	e.epochTput.Set(int64(float64(samples*8) / elapsed.Seconds()))
}

// SetRemapDeadline bounds every reconfiguration's full-remap solve to d
// of wall-clock time: a remap that misses it is rolled back — the previous
// pipeline stays live and Inject/Repair report reconfig.ErrDeadline so the
// caller can retry. 0 disables the bound. No-op in placed mode, where the
// planner owns the solve (and its deadline).
func (e *Engine) SetRemapDeadline(d time.Duration) {
	if e.mgr != nil {
		e.mgr.SetDeadline(d)
	}
}

// SetRemapResources attaches an ambient cancellation/budget token to the
// reconfiguration manager: canceling it aborts an in-flight remap solve
// (the fault or repair rolls back, and the live pipeline keeps streaming
// on the previous mapping). nil detaches. No-op in placed mode.
func (e *Engine) SetRemapResources(r *embed.Resources) {
	if e.mgr != nil {
		e.mgr.SetResources(r)
	}
}

// Downtime returns the reconfiguration manager's per-tactic downtime
// ledger (a copy). In placed mode the ledger is empty — downtime lives in
// the stream report and the executor's replan accounting.
func (e *Engine) Downtime() reconfig.DowntimeStats {
	if e.mgr == nil {
		return reconfig.DowntimeStats{}
	}
	return e.mgr.Downtime()
}

// Faults returns a defensive copy of the currently injected fault set. A
// placed engine tracks no faults of its own (the pool fault set lives in
// the executor); it reports an empty set.
func (e *Engine) Faults() bitset.Set {
	if e.mgr == nil {
		return bitset.New(e.g.NumNodes())
	}
	return e.mgr.Faults()
}
