package pipeline_test

import (
	"errors"
	"testing"

	"gdpn/internal/bitset"
	"gdpn/internal/construct"
	"gdpn/internal/embed"
	"gdpn/internal/graph"
	"gdpn/internal/pipeline"
	"gdpn/internal/verify"
)

// poolInterior solves the global pipeline over an unfaulted Design(n,k)
// pool and returns the solution plus the interior processor path — the
// segment stock that placed-engine tests carve tenant placements from.
func poolInterior(t *testing.T, n, k int) (*construct.Solution, graph.Path) {
	t.Helper()
	sol, err := construct.Design(n, k)
	if err != nil {
		t.Fatalf("Design(%d,%d): %v", n, k, err)
	}
	solver := embed.NewSolver(sol.Graph, embed.Options{Layout: sol.Layout})
	res := solver.Find(bitset.New(sol.Graph.NumNodes()))
	if !res.Found {
		t.Fatalf("no global pipeline for unfaulted G(%d,%d)", n, k)
	}
	if err := verify.CheckPipeline(sol.Graph, bitset.New(sol.Graph.NumNodes()), res.Pipeline); err != nil {
		t.Fatalf("global pipeline invalid: %v", err)
	}
	return sol, append(graph.Path(nil), res.Pipeline[1:len(res.Pipeline)-1]...)
}

// TestPlacedEngineModeErrors pins the mode split: placed engines reject
// direct fault routing, self-planned engines reject external placements,
// and NewPlaced rejects structurally invalid segments.
func TestPlacedEngineModeErrors(t *testing.T) {
	sol, interior := poolInterior(t, 12, 3)

	eng, err := pipeline.NewPlaced(sol.Graph, interior[:5], testStages(), pipeline.WithTenant("acme"))
	if err != nil {
		t.Fatalf("NewPlaced: %v", err)
	}
	if got := eng.Tenant(); got != "acme" {
		t.Fatalf("Tenant() = %q, want %q", got, "acme")
	}
	if got := eng.ProcessorsInUse(); got != 5 {
		t.Fatalf("ProcessorsInUse() = %d, want 5", got)
	}
	if !errors.Is(eng.Inject(interior[0]), pipeline.ErrPlaced) {
		t.Fatal("Inject on placed engine should return ErrPlaced")
	}
	if !errors.Is(eng.Repair(interior[0]), pipeline.ErrPlaced) {
		t.Fatal("Repair on placed engine should return ErrPlaced")
	}

	selfPlanned := mustEngine(t, 12, 3)
	if !errors.Is(selfPlanned.ApplyPlacement(interior[:5], nil), pipeline.ErrNotPlaced) {
		t.Fatal("ApplyPlacement on self-planned engine should return ErrNotPlaced")
	}

	if _, err := pipeline.NewPlaced(sol.Graph, nil, testStages()); err == nil {
		t.Fatal("NewPlaced with empty segment should fail")
	}
	dup := graph.Path{interior[0], interior[1], interior[0]}
	if _, err := pipeline.NewPlaced(sol.Graph, dup, testStages()); err == nil {
		t.Fatal("NewPlaced with a repeated node should fail")
	}
	terminal := -1
	for v := 0; v < sol.Graph.NumNodes(); v++ {
		if sol.Graph.Kind(v) != graph.Processor {
			terminal = v
			break
		}
	}
	if terminal < 0 {
		t.Fatal("pool has no terminals")
	}
	if _, err := pipeline.NewPlaced(sol.Graph, graph.Path{terminal}, testStages()); err == nil {
		t.Fatal("NewPlaced with a terminal node should fail")
	}
}

// TestPlacedStreamMatchesReference streams through a placed engine with no
// placement changes and checks the output is bit-identical to the
// sequential reference: placement mode must not perturb stage semantics.
func TestPlacedStreamMatchesReference(t *testing.T) {
	sol, interior := poolInterior(t, 12, 3)
	eng, err := pipeline.NewPlaced(sol.Graph, interior[:7], testStages())
	if err != nil {
		t.Fatalf("NewPlaced: %v", err)
	}
	ref := mustEngine(t, 12, 3)
	frames := genFrames(40, 256, 11)
	want := ref.ProcessSequential(copyFrames(frames))

	st, err := eng.StartStream(pipeline.StreamConfig{})
	if err != nil {
		t.Fatalf("StartStream: %v", err)
	}
	done := make(chan []pipeline.Frame)
	go func() {
		var got []pipeline.Frame
		for f := range st.Out() {
			got = append(got, f)
		}
		done <- got
	}()
	for _, f := range frames {
		if err := st.Submit(f); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	rep := st.Close()
	got := <-done
	if !rep.Clean() {
		t.Fatalf("stream not clean: %+v", rep)
	}
	assertSameFrames(t, got, want)
}

// TestPlacedApplyPlacementZeroLoss swaps placements live while frames
// flow — growing, shrinking, and shifting the segment — and checks the
// zero-loss ledger plus bit-identical output against the sequential
// reference. This is the placed-mode analogue of
// TestStreamZeroLossAcrossRemaps: a coordinated replan must drain and
// requeue exactly like a fault remap.
func TestPlacedApplyPlacementZeroLoss(t *testing.T) {
	sol, interior := poolInterior(t, 12, 3)
	eng, err := pipeline.NewPlaced(sol.Graph, interior[:6], testStages(), pipeline.WithTenant("swap"))
	if err != nil {
		t.Fatalf("NewPlaced: %v", err)
	}
	ref := mustEngine(t, 12, 3)
	frames := genFrames(120, 256, 23)
	want := ref.ProcessSequential(copyFrames(frames))

	st, err := eng.StartStream(pipeline.StreamConfig{MaxPending: 16})
	if err != nil {
		t.Fatalf("StartStream: %v", err)
	}
	done := make(chan []pipeline.Frame)
	go func() {
		var got []pipeline.Frame
		for f := range st.Out() {
			got = append(got, f)
		}
		done <- got
	}()

	placements := []graph.Path{
		interior[:9],  // grow
		interior[4:],  // shift to the tail end
		interior[2:5], // shrink hard
		interior,      // whole interior
	}
	swapEvery := len(frames) / (len(placements) + 1)
	next := 0
	for i, f := range frames {
		if next < len(placements) && i == (next+1)*swapEvery {
			if err := eng.ApplyPlacement(placements[next], nil); err != nil {
				t.Fatalf("ApplyPlacement %d: %v", next, err)
			}
			next++
		}
		if err := st.Submit(f); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	// An invalid placement must be rejected without disturbing the stream.
	bad := graph.Path{interior[0], interior[0]}
	if err := eng.ApplyPlacement(bad, nil); err == nil {
		t.Fatal("ApplyPlacement with invalid segment should fail")
	}
	rep := st.Close()
	got := <-done
	if !rep.Clean() {
		t.Fatalf("stream not clean: %+v", rep)
	}
	if rep.Remaps != int64(len(placements)) {
		t.Fatalf("Remaps = %d, want %d", rep.Remaps, len(placements))
	}
	if rep.RemapFailures != 1 {
		t.Fatalf("RemapFailures = %d, want 1", rep.RemapFailures)
	}
	assertSameFrames(t, got, want)
}
