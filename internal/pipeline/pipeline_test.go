package pipeline_test

import (
	"math"
	"math/rand"
	"testing"

	"gdpn/internal/construct"
	"gdpn/internal/faults"
	"gdpn/internal/pipeline"
	"gdpn/internal/stages"
)

func design(t testing.TB, n, k int) *construct.Solution {
	t.Helper()
	sol, err := construct.Design(n, k)
	if err != nil {
		t.Fatalf("Design(%d,%d): %v", n, k, err)
	}
	return sol
}

func mkFrames(n, size int, seed int64) []pipeline.Frame {
	rng := rand.New(rand.NewSource(seed))
	frames := make([]pipeline.Frame, n)
	for i := range frames {
		data := make([]float64, size)
		for j := range data {
			data[j] = rng.NormFloat64()
		}
		frames[i] = pipeline.Frame{Seq: i, Data: data}
	}
	return frames
}

func chain() []stages.Stage {
	return []stages.Stage{
		stages.NewSubsample(2),
		&stages.Rescale{Gain: 2, Offset: 1},
		stages.NewFIR([]float64{0.5, 0.5}),
		stages.NewQuantize(-8, 8, 256),
	}
}

func TestEngineProcessesFramesInOrder(t *testing.T) {
	e, err := pipeline.New(design(t, 6, 2), chain())
	if err != nil {
		t.Fatal(err)
	}
	frames := mkFrames(20, 32, 1)
	out := e.Process(frames)
	if len(out) != 20 {
		t.Fatalf("got %d frames", len(out))
	}
	for i, f := range out {
		if f.Seq != i {
			t.Fatalf("frame %d has seq %d: order broken", i, f.Seq)
		}
		if len(f.Data) != 16 { // subsample by 2
			t.Fatalf("frame %d has %d samples, want 16", i, len(f.Data))
		}
	}
	if e.Metrics().FramesProcessed != 20 {
		t.Fatalf("metrics %+v", e.Metrics())
	}
}

func TestConcurrentMatchesSequential(t *testing.T) {
	// The goroutine-per-processor chain must produce exactly what the
	// sequential reference produces (stage state included).
	mk := func() *pipeline.Engine {
		e, err := pipeline.New(design(t, 8, 2), chain())
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	frames := mkFrames(30, 24, 2)
	a := mk().Process(frames)
	b := mk().ProcessSequential(frames)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i].Data) != len(b[i].Data) {
			t.Fatalf("frame %d size differs", i)
		}
		for j := range a[i].Data {
			if math.Abs(a[i].Data[j]-b[i].Data[j]) > 1e-12 {
				t.Fatalf("frame %d sample %d differs: %v vs %v", i, j, a[i].Data[j], b[i].Data[j])
			}
		}
	}
}

func TestInjectRemapsAndKeepsAllHealthy(t *testing.T) {
	sol := design(t, 10, 2)
	e, err := pipeline.New(sol, chain())
	if err != nil {
		t.Fatal(err)
	}
	if got := e.ProcessorsInUse(); got != 12 { // n+k healthy initially
		t.Fatalf("initial processors in use = %d, want 12", got)
	}
	// Fault a processor that is on the pipeline.
	victim := e.Pipeline()[3]
	if err := e.Inject(victim); err != nil {
		t.Fatal(err)
	}
	if got := e.ProcessorsInUse(); got != 11 {
		t.Fatalf("after 1 fault: %d processors in use, want 11 (ALL healthy)", got)
	}
	out := e.Process(mkFrames(5, 16, 3))
	if len(out) != 5 {
		t.Fatalf("stream broken after remap: %d frames", len(out))
	}
	m := e.Metrics()
	if m.Remaps != 1 || m.FaultsInjected != 1 || m.RemapTime <= 0 {
		t.Fatalf("metrics %+v", m)
	}
}

func TestInjectErrors(t *testing.T) {
	e, err := pipeline.New(design(t, 4, 1), chain())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Inject(-1); err == nil {
		t.Fatal("negative node accepted")
	}
	victim := e.Pipeline()[1]
	if err := e.Inject(victim); err != nil {
		t.Fatal(err)
	}
	if err := e.Inject(victim); err == nil {
		t.Fatal("double fault accepted")
	}
}

func TestInjectBeyondBudgetFailsCleanly(t *testing.T) {
	sol := design(t, 4, 1) // k=1: 5 processors, 2+2 terminals
	e, err := pipeline.New(sol, chain())
	if err != nil {
		t.Fatal(err)
	}
	// Kill both input terminals: the second kill must fail and roll back.
	ins := sol.Graph.InputTerminals()
	if err := e.Inject(ins[0]); err != nil {
		t.Fatal(err)
	}
	before := e.Pipeline()
	if err := e.Inject(ins[1]); err == nil {
		t.Fatal("no error with all input terminals dead")
	}
	// Engine still operates on the previous mapping.
	after := e.Pipeline()
	if len(after) != len(before) {
		t.Fatal("failed inject corrupted the mapping")
	}
	if out := e.Process(mkFrames(3, 8, 4)); len(out) != 3 {
		t.Fatal("stream broken after failed inject")
	}
}

func TestFullFaultSequenceWithInjector(t *testing.T) {
	sol := design(t, 12, 3)
	e, err := pipeline.New(sol, chain())
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.NewInjector(faults.ProcessorsOnly{}, sol.Graph, 3, 5)
	processed := 0
	for {
		out := e.Process(mkFrames(4, 16, int64(processed)))
		processed += len(out)
		node, ok := inj.Next()
		if !ok {
			break
		}
		if err := e.Inject(node); err != nil {
			t.Fatalf("inject %d: %v", node, err)
		}
		// Graceful: processors in use == healthy processors.
		want := sol.N + sol.K - e.Faults().Count()
		if got := e.ProcessorsInUse(); got != want {
			t.Fatalf("processors in use %d, want %d", got, want)
		}
	}
	if processed != 16 {
		t.Fatalf("processed %d frames", processed)
	}
	if e.Metrics().Remaps != 3 {
		t.Fatalf("remaps = %d", e.Metrics().Remaps)
	}
}

func TestStageAssignmentCoversAllStagesOnce(t *testing.T) {
	sol := design(t, 5, 2)
	stgs := []stages.Stage{
		&stages.Rescale{Gain: 1}, &stages.Rescale{Gain: 1}, &stages.Rescale{Gain: 1},
		&stages.Rescale{Gain: 1}, &stages.Rescale{Gain: 1},
	}
	e, err := pipeline.New(sol, stgs)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for pos := 0; pos < e.ProcessorsInUse(); pos++ {
		prev := -1
		for _, si := range e.StagesOn(pos) {
			if si <= prev {
				t.Fatal("stage order not contiguous")
			}
			prev = si
			seen[si]++
		}
	}
	if len(seen) != len(stgs) {
		t.Fatalf("stages covered %d, want %d", len(seen), len(stgs))
	}
	for si, c := range seen {
		if c != 1 {
			t.Fatalf("stage %d assigned %d times", si, c)
		}
	}
}

func TestNewRequiresStages(t *testing.T) {
	if _, err := pipeline.New(design(t, 4, 1), nil); err == nil {
		t.Fatal("no stages accepted")
	}
}

func TestLargeNetworkRemapLatency(t *testing.T) {
	// Structured solver keeps remap fast on a large network.
	sol := design(t, 1000, 4)
	e, err := pipeline.New(sol, chain())
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range []int{50, 300, 700, 900} {
		if err := e.Inject(node); err != nil {
			t.Fatalf("inject %d: %v", node, err)
		}
	}
	if e.ProcessorsInUse() != 1000 {
		t.Fatalf("in use = %d, want 1000 (1004 − 4 faults)", e.ProcessorsInUse())
	}
}

func TestEngineRepairReinstates(t *testing.T) {
	sol := design(t, 10, 2)
	e, err := pipeline.New(sol, chain())
	if err != nil {
		t.Fatal(err)
	}
	victim := e.Pipeline()[2]
	if err := e.Inject(victim); err != nil {
		t.Fatal(err)
	}
	if e.ProcessorsInUse() != 11 {
		t.Fatalf("after fault: %d in use", e.ProcessorsInUse())
	}
	if err := e.Repair(victim); err != nil {
		t.Fatal(err)
	}
	if e.ProcessorsInUse() != 12 {
		t.Fatalf("after repair: %d in use, want 12", e.ProcessorsInUse())
	}
	if out := e.Process(mkFrames(4, 16, 9)); len(out) != 4 {
		t.Fatal("stream broken after repair")
	}
	if err := e.Repair(victim); err == nil {
		t.Fatal("double repair accepted")
	}
	m := e.Metrics()
	total := m.Repairs.NoChange + m.Repairs.Splice + m.Repairs.Rewire +
		m.Repairs.EndpointSwap + m.Repairs.Insert + m.Repairs.FullRemap
	if total == 0 {
		t.Fatalf("repair tactics not recorded: %+v", m.Repairs)
	}
}
