//go:build race

package pipeline_test

// raceDetector reports whether the race detector is active. Under -race,
// sync.Pool randomly discards Puts to shake out lifecycle races, so tests
// that pin pool determinism (reuse, zero allocations) skip themselves.
const raceDetector = true
