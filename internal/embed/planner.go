package embed

import (
	"gdpn/internal/bitset"
	"gdpn/internal/construct"
	"gdpn/internal/graph"
)

// planAsymptotic constructs a pipeline for the §3.4 family directly,
// without search. The route is always
//
//	Ti[a] → I[a] → (all healthy I, clique order) → I[b] → S[b]
//	      → (cover all healthy C, ending adjacent to S[c]) → S[c]
//	      → O[c] → (all healthy O, clique order) → O[d] → To[d]
//
// and the interesting part is covering the ring C. Fault runs longer than
// p split the R interval into up to two "blocks", each reachable from one
// side only; a block can be traversed straight through (enter one end,
// leave the other) or — when it is contiguous — zigzagged (enter and leave
// at the same end on adjacent positions: lo, lo+2, …, top, top∓1, …, lo+1).
// The healthy S labels and the blocks are threaded together by an exact
// bitmask DP over at most k+2+2 items, so the planner runs in
// O(m + 2^k·poly(k)) — effectively O(n) for fixed k. Every produced path
// is validated locally before being returned; nil means "no plan of this
// shape", and the caller falls back to the complete search engines.
func (s *Solver) planAsymptotic(faults bitset.Set) graph.Path {
	lay := s.opts.Layout
	if lay == nil {
		return nil
	}
	m, k, p := lay.M, lay.K, lay.P
	ok := func(v int) bool { return v >= 0 && (faults == nil || !faults.Contains(v)) }

	// Endpoint label candidates.
	var healthyI, healthyO []int
	for j := 1; j <= k+1; j++ {
		if ok(lay.I[j]) {
			healthyI = append(healthyI, j)
		}
	}
	for j := 0; j <= k; j++ {
		if ok(lay.O[j]) {
			healthyO = append(healthyO, j)
		}
	}
	if len(healthyI) == 0 || len(healthyO) == 0 {
		return nil
	}
	var bCands, cCands []int
	for _, j := range healthyI {
		if ok(lay.C[j]) {
			bCands = append(bCands, j)
		}
	}
	for _, j := range healthyO {
		if ok(lay.C[j]) {
			cCands = append(cCands, j)
		}
	}

	// Healthy R positions, split into blocks wherever the gap between
	// consecutive healthy positions exceeds the largest offset p+1. With
	// ≤ k faults and 2(p+1) > k there is at most one splitting gap, hence
	// at most two blocks — but the DP below handles any number ≤ itemCap.
	var blocks []ringBlock
	var cur []int
	flush := func() {
		if len(cur) > 0 {
			blocks = append(blocks, newRingBlock(cur))
			cur = nil
		}
	}
	prev := -1
	for j := k + 2; j < m; j++ {
		if !ok(lay.C[j]) {
			continue
		}
		if prev >= 0 && j-prev > p+1 {
			flush()
		}
		cur = append(cur, j)
		prev = j
	}
	flush()

	// Healthy S labels.
	var healthyS []int
	for j := 0; j <= k+1; j++ {
		if ok(lay.C[j]) {
			healthyS = append(healthyS, j)
		}
	}

	for _, b := range bCands {
		for _, c := range cCands {
			if b == c {
				continue
			}
			positions := s.solveRing(lay, healthyS, blocks, b, c)
			if positions == nil {
				continue
			}
			if out := s.assemblePlan(lay, faults, b, c, positions); out != nil {
				return out
			}
		}
	}
	return nil
}

// ringBlock is a maximal internally-jumpable interval of healthy R
// positions.
type ringBlock struct {
	positions  []int // ascending
	contiguous bool  // no internal faults: zigzag traversals allowed
}

func newRingBlock(pos []int) ringBlock {
	contig := pos[len(pos)-1]-pos[0] == len(pos)-1
	return ringBlock{positions: pos, contiguous: contig}
}

// traversal is one way through an item: the ring positions visited, with
// enter/exit as first/last. For blocks, seq holds the concrete position
// order; for S labels it is the single label.
type traversal struct {
	enter, exit int
	seq         []int
}

const plannerItemCap = 16

// solveRing finds an order of ring positions that starts at S[b], covers
// every healthy S label except c and every block, and ends at a position
// with a surviving edge to S[c]. Items (S labels and blocks) are sequenced
// by an exact DP over (visited-mask, last item, last traversal variant).
func (s *Solver) solveRing(lay *construct.Layout, healthyS []int, blocks []ringBlock, b, c int) []int {
	type item struct {
		sLabel int // -1 for blocks
		block  int // -1 for S labels
	}
	var items []item
	bIdx := -1
	for _, j := range healthyS {
		if j == c {
			continue
		}
		if j == b {
			bIdx = len(items)
		}
		items = append(items, item{sLabel: j, block: -1})
	}
	if bIdx == -1 {
		return nil
	}
	for bi := range blocks {
		items = append(items, item{sLabel: -1, block: bi})
	}
	n := len(items)
	if n > plannerItemCap {
		return nil
	}

	edge := func(x, y int) bool { return s.g.HasEdge(lay.C[x], lay.C[y]) }

	// Traversal variants per item.
	variants := make([][]traversal, n)
	for i, it := range items {
		if it.block == -1 {
			variants[i] = []traversal{{enter: it.sLabel, exit: it.sLabel, seq: []int{it.sLabel}}}
			continue
		}
		variants[i] = blockTraversals(blocks[it.block], edge)
	}

	// DP over (mask, item, variant).
	size := 1 << uint(n)
	dp := make([][]uint8, size) // dp[mask][item] = bitmask over variants
	reach := func(mask, it, v int) bool { return dp[mask] != nil && dp[mask][it]&(1<<uint(v)) != 0 }
	set := func(mask, it, v int) {
		if dp[mask] == nil {
			dp[mask] = make([]uint8, n)
		}
		dp[mask][it] |= 1 << uint(v)
	}
	set(1<<uint(bIdx), bIdx, 0)
	full := size - 1
	for mask := 1; mask < size; mask++ {
		if dp[mask] == nil {
			continue
		}
		for it := 0; it < n; it++ {
			vb := dp[mask][it]
			if vb == 0 {
				continue
			}
			for v := 0; v < len(variants[it]); v++ {
				if vb&(1<<uint(v)) == 0 {
					continue
				}
				exit := variants[it][v].exit
				for nt := 0; nt < n; nt++ {
					if mask&(1<<uint(nt)) != 0 {
						continue
					}
					for nv := 0; nv < len(variants[nt]); nv++ {
						if edge(exit, variants[nt][nv].enter) {
							set(mask|1<<uint(nt), nt, nv)
						}
					}
				}
			}
		}
	}
	if dp[full] == nil {
		return nil
	}
	// Find a final state whose exit connects to S[c].
	endItem, endVar := -1, -1
	for it := 0; it < n && endItem == -1; it++ {
		for v := 0; v < len(variants[it]); v++ {
			if reach(full, it, v) && edge(variants[it][v].exit, c) {
				endItem, endVar = it, v
				break
			}
		}
	}
	if endItem == -1 {
		return nil
	}
	// Reconstruct the item order backwards.
	type step struct{ item, variant int }
	order := []step{{endItem, endVar}}
	mask := full
	for mask != 1<<uint(bIdx) {
		cu := order[len(order)-1]
		prevMask := mask &^ (1 << uint(cu.item))
		found := false
		for it := 0; it < n && !found; it++ {
			if prevMask&(1<<uint(it)) == 0 {
				continue
			}
			for v := 0; v < len(variants[it]); v++ {
				if reach(prevMask, it, v) && edge(variants[it][v].exit, variants[cu.item][cu.variant].enter) {
					order = append(order, step{it, v})
					mask = prevMask
					found = true
					break
				}
			}
		}
		if !found {
			return nil // should not happen
		}
	}
	// Expand to positions in forward order.
	var out []int
	for i := len(order) - 1; i >= 0; i-- {
		st := order[i]
		out = append(out, variants[st.item][st.variant].seq...)
	}
	return out
}

// blockTraversals enumerates the ways through a block: straight in either
// direction, plus — when possible — zigzags that enter and exit at the
// same end (required when the block's other end is a dead end against a
// long fault run). Contiguous blocks get the analytic zigzag; blocks with
// internal jumpable gaps get one found by a budget-bounded DFS over the
// block's own positions.
func blockTraversals(blk ringBlock, edge func(x, y int) bool) []traversal {
	pos := blk.positions
	n := len(pos)
	if n == 1 {
		return []traversal{{enter: pos[0], exit: pos[0], seq: pos}}
	}
	rev := make([]int, n)
	for i, p := range pos {
		rev[n-1-i] = p
	}
	out := []traversal{
		{enter: pos[0], exit: pos[n-1], seq: pos},
		{enter: pos[n-1], exit: pos[0], seq: rev},
	}
	addZig := func(seq []int) {
		if seq == nil {
			return
		}
		// The constructive zigzags assume their crossing offsets exist
		// (true for internal gaps ≤ p−1); re-check every hop against the
		// real edges so a boundary shape degrades to "variant unavailable"
		// rather than an invalid plan.
		for i := 1; i < len(seq); i++ {
			if !edge(seq[i-1], seq[i]) {
				return
			}
		}
		out = append(out, traversal{enter: seq[0], exit: seq[len(seq)-1], seq: seq})
		rv := make([]int, len(seq))
		for i, p := range seq {
			rv[len(seq)-1-i] = p
		}
		// The reverse is a valid traversal of the same positions iff every
		// hop is an undirected edge — which it is.
		out = append(out, traversal{enter: rv[0], exit: rv[len(rv)-1], seq: rv})
	}
	if blk.contiguous {
		lo, hi := pos[0], pos[n-1]
		addZig(analyticZigzag(lo, hi, true))
		addZig(analyticZigzag(lo, hi, false))
	} else {
		// Constructive gap-aware zigzags first; a budget-bounded DFS mops
		// up shapes the construction declines.
		if seq := gapZigzagHigh(pos); seq != nil {
			addZig(seq)
		} else if n <= 4096 {
			addZig(dfsZigzag(pos, pos[n-1], pos[n-2], edge))
		}
		if seq := gapZigzagLow(pos); seq != nil {
			addZig(seq)
		} else if n <= 4096 {
			addZig(dfsZigzag(pos, pos[0], pos[1], edge))
		}
	}
	return out
}

// gapZigzagHigh covers a block that may contain internal fault gaps,
// entering at its highest position and exiting at the second-highest — the
// traversal a dead-end pocket needs when its only opening faces high. The
// construction peels the block at its topmost gap: the contiguous top
// segment N = [a..b] is covered in two passes (a parity descent b, b−2, …
// ending at a+1, and a complementary ascent ending at b−1), with the far
// part F covered recursively between the passes via two disjoint crossing
// edges a+1→top(F) and top(F)−1→a of offset gap+2. It requires every
// internal gap ≤ p−1 (offsets up to p+1 must span gap+2) — with ≤ k faults
// that is automatic except in the odd-k corner where a splitting run and a
// length-p run coexist — and returns nil for shapes it cannot realize.
func gapZigzagHigh(pos []int) []int {
	n := len(pos)
	if n < 2 || pos[n-2] != pos[n-1]-1 {
		return nil
	}
	// Topmost gap.
	gi := -1
	for i := n - 2; i >= 0; i-- {
		if pos[i+1]-pos[i] > 1 {
			gi = i
			break
		}
	}
	b := pos[n-1]
	if gi == -1 {
		return analyticZigzag(pos[0], b, false)
	}
	a := pos[gi+1] // bottom of the contiguous top segment N = [a..b]
	fTop := pos[gi]
	// Descent: b, b−2, …, ending exactly at a+1.
	var seq []int
	switch (b - a) % 2 {
	case 1: // parity reaches a+1 directly
		for x := b; x >= a+1; x -= 2 {
			seq = append(seq, x)
		}
	default: // lands on a+2; a unit step reaches a+1 (needs room for the ascent 3-jump)
		if b < a+4 {
			return nil
		}
		for x := b; x >= a+2; x -= 2 {
			seq = append(seq, x)
		}
		seq = append(seq, a+1)
	}
	// Far part F, covered recursively between the crossings.
	far := pos[:gi+1]
	var fSeq []int
	if len(far) == 1 {
		fSeq = []int{fTop}
	} else {
		fSeq = gapZigzagHigh(far)
		if fSeq == nil {
			return nil
		}
	}
	seq = append(seq, fSeq...)
	seq = append(seq, a)
	// Ascent covering the complement parity, ending at b−1.
	switch (b - a) % 2 {
	case 1:
		for x := a + 2; x <= b-1; x += 2 {
			seq = append(seq, x)
		}
	default:
		for x := a + 3; x <= b-1; x += 2 {
			seq = append(seq, x)
		}
	}
	return seq
}

// gapZigzagLow is the mirror of gapZigzagHigh: enter the lowest position,
// exit the second-lowest. Implemented by reflecting the positions.
func gapZigzagLow(pos []int) []int {
	n := len(pos)
	if n < 2 {
		return nil
	}
	pivot := pos[0] + pos[n-1]
	mirror := make([]int, n)
	for i, x := range pos {
		mirror[n-1-i] = pivot - x
	}
	seq := gapZigzagHigh(mirror)
	if seq == nil {
		return nil
	}
	for i, x := range seq {
		seq[i] = pivot - x
	}
	return seq
}

// analyticZigzag covers the contiguous interval [lo..hi] entering and
// exiting at the low end (lo → lo+1) or, when fromLow is false, at the
// high end (hi → hi-1): same-parity ascent, one unit step, other-parity
// descent. Uses only offsets 1 and 2.
func analyticZigzag(lo, hi int, fromLow bool) []int {
	var out []int
	if fromLow {
		for x := lo; x <= hi; x += 2 {
			out = append(out, x)
		}
		start := hi
		if (hi-lo)%2 == 0 {
			start = hi - 1
		}
		for x := start; x >= lo+1; x -= 2 {
			out = append(out, x)
		}
	} else {
		for x := hi; x >= lo; x -= 2 {
			out = append(out, x)
		}
		start := lo
		if (hi-lo)%2 == 0 {
			start = lo + 1
		}
		for x := start; x <= hi-1; x += 2 {
			out = append(out, x)
		}
	}
	return out
}

// dfsZigzag finds a Hamiltonian path over the block positions from start
// to end using the real ring edges, with a budget proportional to the
// block size. Returns nil when none is found within budget.
func dfsZigzag(pos []int, start, end int, edge func(x, y int) bool) []int {
	n := len(pos)
	idx := make(map[int]int, n)
	for i, p := range pos {
		idx[p] = i
	}
	si, ok1 := idx[start]
	ei, ok2 := idx[end]
	if !ok1 || !ok2 || si == ei {
		return nil
	}
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		// Ring offsets are bounded, so only nearby positions can be
		// adjacent; scanning a small window keeps this O(n).
		for j := i + 1; j < n && j <= i+12; j++ {
			if edge(pos[i], pos[j]) {
				adj[i] = append(adj[i], j)
				adj[j] = append(adj[j], i)
			}
		}
	}
	// Prefer parity-preserving ±2 steps, then longer parity-preserving
	// jumps: they are the zigzag's natural stride, so the greedy-first DFS
	// rarely backtracks.
	for i := range adj {
		a := adj[i]
		for x := 1; x < len(a); x++ {
			v := a[x]
			pri := stridePriority(pos[i], pos[v])
			y := x - 1
			for y >= 0 && stridePriority(pos[i], pos[a[y]]) > pri {
				a[y+1] = a[y]
				y--
			}
			a[y+1] = v
		}
	}
	visited := make([]bool, n)
	path := make([]int, 0, n)
	budget := 256 * n
	var dfs func(u int) bool
	dfs = func(u int) bool {
		if budget <= 0 {
			return false
		}
		budget--
		visited[u] = true
		path = append(path, pos[u])
		if len(path) == n {
			if u == ei {
				return true
			}
		} else {
			for _, v := range adj[u] {
				if visited[v] || (v == ei && len(path) != n-1) {
					continue
				}
				if dfs(v) {
					return true
				}
			}
		}
		visited[u] = false
		path = path[:len(path)-1]
		return false
	}
	if dfs(si) {
		return append([]int(nil), path...)
	}
	return nil
}

// stridePriority ranks candidate hops for dfsZigzag: parity-preserving
// hops first (shortest first), then parity-flipping ones.
func stridePriority(from, to int) int {
	d := from - to
	if d < 0 {
		d = -d
	}
	if d%2 == 0 {
		return d
	}
	return 100 + d
}

// assemblePlan stitches the full pipeline together and validates it
// against the real graph; nil on any inconsistency (caller falls back).
// ringOrder lists the C positions in visit order, starting at S[b] and
// ending at a position adjacent to S[c] (c itself excluded).
func (s *Solver) assemblePlan(lay *construct.Layout, faults bitset.Set, b, c int, ringOrder []int) graph.Path {
	ok := func(v int) bool { return v >= 0 && (faults == nil || !faults.Contains(v)) }
	k := lay.K
	// Choose a (input pair) and the I-cover order ending at b.
	var healthyI []int
	for j := 1; j <= k+1; j++ {
		if ok(lay.I[j]) {
			healthyI = append(healthyI, j)
		}
	}
	a := -1
	for j := 1; j <= k+1; j++ {
		if ok(lay.Ti[j]) && ok(lay.I[j]) && (j != b || len(healthyI) == 1) {
			a = j
			break
		}
	}
	if a == -1 {
		return nil
	}
	var iOrder []int
	iOrder = append(iOrder, a)
	for _, j := range healthyI {
		if j != a && j != b {
			iOrder = append(iOrder, j)
		}
	}
	if b != a {
		iOrder = append(iOrder, b)
	}
	// Choose d (output pair) and O-cover order starting at c.
	var healthyO []int
	for j := 0; j <= k; j++ {
		if ok(lay.O[j]) {
			healthyO = append(healthyO, j)
		}
	}
	d := -1
	for j := 0; j <= k; j++ {
		if ok(lay.To[j]) && ok(lay.O[j]) && (j != c || len(healthyO) == 1) {
			d = j
			break
		}
	}
	if d == -1 {
		return nil
	}
	var oOrder []int
	oOrder = append(oOrder, c)
	for _, j := range healthyO {
		if j != c && j != d {
			oOrder = append(oOrder, j)
		}
	}
	if d != c {
		oOrder = append(oOrder, d)
	}

	out := make(graph.Path, 0, len(iOrder)+len(ringOrder)+len(oOrder)+3)
	out = append(out, lay.Ti[a])
	for _, j := range iOrder {
		out = append(out, lay.I[j])
	}
	for _, pos := range ringOrder {
		out = append(out, lay.C[pos])
	}
	out = append(out, lay.C[c])
	for _, j := range oOrder {
		out = append(out, lay.O[j])
	}
	out = append(out, lay.To[d])

	if !s.validatePlanned(out, faults) {
		return nil
	}
	return out
}

// validatePlanned is a local full check (edges, distinctness, fault
// avoidance, complete healthy-processor coverage, terminal endpoints) so a
// planner bug degrades to a fallback rather than an invalid result.
func (s *Solver) validatePlanned(path graph.Path, faults bitset.Set) bool {
	if len(path) < 3 || !path.Distinct() || !path.IsWalk(s.g) {
		return false
	}
	for _, v := range path {
		if faults != nil && faults.Contains(v) {
			return false
		}
	}
	if s.g.Kind(path[0]) != graph.InputTerminal || s.g.Kind(path[len(path)-1]) != graph.OutputTerminal {
		return false
	}
	healthy := 0
	for _, pr := range s.procs {
		if faults == nil || !faults.Contains(pr) {
			healthy++
		}
	}
	interior := 0
	for _, v := range path[1 : len(path)-1] {
		if s.g.Kind(v) != graph.Processor {
			return false
		}
		interior++
	}
	return interior == healthy
}
