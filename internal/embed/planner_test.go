package embed

import (
	"math/rand"
	"testing"

	"gdpn/internal/bitset"
	"gdpn/internal/construct"
)

// planOrNil runs just the constructive planner on a designed network.
func planOrNil(t *testing.T, n, k int, faultNodes []int) (*Solver, bitset.Set, []int) {
	t.Helper()
	g, lay, err := construct.Asymptotic(n, k)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSolver(g, Options{Layout: lay})
	faults := bitset.FromSlice(g.NumNodes(), faultNodes)
	return s, faults, planOrNilWith(s, faults)
}

func planOrNilWith(s *Solver, faults bitset.Set) []int {
	return s.planAsymptotic(faults)
}

func TestPlannerFaultFree(t *testing.T) {
	s, faults, path := planOrNil(t, 40, 4, nil)
	if path == nil {
		t.Fatal("planner declined a fault-free instance")
	}
	if !s.validatePlanned(path, faults) {
		t.Fatal("planner emitted an invalid path")
	}
}

func TestPlannerValidatesEverything(t *testing.T) {
	// Random ≤k fault sets across several (n, k): every non-nil plan must
	// be internally valid (validatePlanned runs inside planAsymptotic, so
	// a non-nil result IS the assertion; here we re-check independently).
	cases := []struct{ n, k int }{{22, 4}, {40, 4}, {26, 5}, {27, 5}, {80, 6}, {81, 7}}
	for _, c := range cases {
		g, lay, err := construct.Asymptotic(c.n, c.k)
		if err != nil {
			t.Fatal(err)
		}
		s := NewSolver(g, Options{Layout: lay})
		rng := rand.New(rand.NewSource(int64(c.n*100 + c.k)))
		planned, declined := 0, 0
		for trial := 0; trial < 400; trial++ {
			faults := bitset.New(g.NumNodes())
			for faults.Count() < rng.Intn(c.k+1) {
				faults.Add(rng.Intn(g.NumNodes()))
			}
			path := s.planAsymptotic(faults)
			if path == nil {
				declined++
				continue
			}
			planned++
			if !s.validatePlanned(path, faults) {
				t.Fatalf("n=%d k=%d faults=%v: invalid plan", c.n, c.k, faults.Slice())
			}
		}
		// The planner must carry the overwhelming share of random faults.
		if planned < 350 {
			t.Errorf("n=%d k=%d: planner solved only %d/400 (declined %d)", c.n, c.k, planned, declined)
		}
	}
}

func TestPlannerHandlesTerminalFaults(t *testing.T) {
	g, lay, err := construct.Asymptotic(30, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSolver(g, Options{Layout: lay})
	// Kill k input terminals: exactly one Ti—I pair remains.
	faults := bitset.New(g.NumNodes())
	for j := 1; j <= 4; j++ {
		faults.Add(lay.Ti[j])
	}
	path := s.planAsymptotic(faults)
	if path == nil {
		t.Fatal("planner declined with only terminal faults")
	}
	if !s.validatePlanned(path, faults) {
		t.Fatal("invalid plan")
	}
}

func TestPlannerClusteredRingFaults(t *testing.T) {
	// Clustered faults up to length p are sweep-jumpable; longer runs make
	// the planner decline (and the fallback engines take over) — both
	// outcomes must be sound.
	g, lay, err := construct.Asymptotic(60, 6) // p = 3
	if err != nil {
		t.Fatal(err)
	}
	s := NewSolver(g, Options{Layout: lay})
	for runLen := 1; runLen <= 6; runLen++ {
		faults := bitset.New(g.NumNodes())
		start := lay.K + 10 // inside R
		for i := 0; i < runLen; i++ {
			faults.Add(lay.C[start+i])
		}
		path := s.planAsymptotic(faults)
		if runLen <= lay.P && path == nil {
			t.Errorf("run of %d ≤ p=%d declined", runLen, lay.P)
		}
		if path != nil && !s.validatePlanned(path, faults) {
			t.Errorf("run of %d: invalid plan", runLen)
		}
		// Whatever the planner does, the full structured entry point must
		// succeed (fallback chain).
		res := s.Find(faults)
		if !res.Found {
			t.Errorf("run of %d: no pipeline found at all", runLen)
		}
	}
}

func TestPlannerDeclinesWithoutLayout(t *testing.T) {
	g, _, err := construct.Asymptotic(22, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSolver(g, Options{})
	if s.planAsymptotic(nil) != nil {
		t.Fatal("planner worked without a layout")
	}
}

// checkTraversal validates that tr.seq is a permutation of pos with
// matching endpoints and legal hops.
func checkTraversal(t *testing.T, pos []int, tr traversal, edge func(x, y int) bool) {
	t.Helper()
	if len(tr.seq) != len(pos) {
		t.Fatalf("traversal covers %d of %d positions: %v", len(tr.seq), len(pos), tr.seq)
	}
	want := map[int]bool{}
	for _, p := range pos {
		want[p] = true
	}
	seen := map[int]bool{}
	for _, p := range tr.seq {
		if !want[p] || seen[p] {
			t.Fatalf("bad traversal %v over %v", tr.seq, pos)
		}
		seen[p] = true
	}
	if tr.seq[0] != tr.enter || tr.seq[len(tr.seq)-1] != tr.exit {
		t.Fatalf("endpoints %d..%d do not match enter/exit %d/%d", tr.seq[0], tr.seq[len(tr.seq)-1], tr.enter, tr.exit)
	}
	for i := 1; i < len(tr.seq); i++ {
		if !edge(tr.seq[i-1], tr.seq[i]) {
			t.Fatalf("illegal hop %d→%d in %v", tr.seq[i-1], tr.seq[i], tr.seq)
		}
	}
}

func TestBlockTraversalsContiguous(t *testing.T) {
	// Offsets 1..4 (k=6, p=3) over plain integer positions.
	edge := func(x, y int) bool {
		d := x - y
		if d < 0 {
			d = -d
		}
		return d >= 1 && d <= 4
	}
	for _, pos := range [][]int{
		{8, 9, 10, 11, 12, 13, 14, 15},
		{8, 9, 10, 11, 12}, // odd length
		{8, 9},             // minimal
	} {
		blk := newRingBlock(pos)
		if !blk.contiguous {
			t.Fatal("contiguous flag")
		}
		vs := blockTraversals(blk, edge)
		// 2 straight + 4 zigzags.
		if len(vs) != 6 {
			t.Fatalf("got %d variants, want 6 (%v)", len(vs), pos)
		}
		ends := map[[2]int]bool{}
		for _, tr := range vs {
			checkTraversal(t, pos, tr, edge)
			ends[[2]int{tr.enter, tr.exit}] = true
		}
		lo, hi := pos[0], pos[len(pos)-1]
		for _, want := range [][2]int{{lo, hi}, {hi, lo}, {lo, lo + 1}, {lo + 1, lo}, {hi, hi - 1}, {hi - 1, hi}} {
			if !ends[want] {
				t.Fatalf("missing variant %v for %v", want, pos)
			}
		}
	}
}

func TestBlockTraversalsSingleton(t *testing.T) {
	edge := func(x, y int) bool { return true }
	vs := blockTraversals(newRingBlock([]int{42}), edge)
	if len(vs) != 1 || vs[0].enter != 42 || vs[0].exit != 42 {
		t.Fatalf("singleton variants = %+v", vs)
	}
}

func TestBlockTraversalsGappyZigzag(t *testing.T) {
	// A block with an internal jumpable gap (fault at 62 missing): the
	// DFS-based zigzag must still cover it end-in/end-out.
	var pos []int
	for x := 42; x <= 71; x++ {
		if x != 62 {
			pos = append(pos, x)
		}
	}
	edge := func(x, y int) bool {
		d := x - y
		if d < 0 {
			d = -d
		}
		return d >= 1 && d <= 4
	}
	blk := newRingBlock(pos)
	if blk.contiguous {
		t.Fatal("should not be contiguous")
	}
	vs := blockTraversals(blk, edge)
	wantEnds := [][2]int{{71, 70}, {70, 71}, {42, 43}, {43, 42}}
	for _, w := range wantEnds {
		found := false
		for _, tr := range vs {
			if tr.enter == w[0] && tr.exit == w[1] {
				checkTraversal(t, pos, tr, edge)
				found = true
			}
		}
		if !found {
			t.Errorf("missing gappy zigzag variant %v", w)
		}
	}
}

func TestAnalyticZigzag(t *testing.T) {
	for lo := 3; lo <= 4; lo++ {
		for hi := lo + 1; hi <= lo+6; hi++ {
			for _, fromLow := range []bool{true, false} {
				seq := analyticZigzag(lo, hi, fromLow)
				if len(seq) != hi-lo+1 {
					t.Fatalf("[%d..%d] fromLow=%v: covered %d", lo, hi, fromLow, len(seq))
				}
				seen := map[int]bool{}
				for _, x := range seq {
					if x < lo || x > hi || seen[x] {
						t.Fatalf("bad zigzag %v", seq)
					}
					seen[x] = true
				}
				for i := 1; i < len(seq); i++ {
					d := seq[i] - seq[i-1]
					if d < 0 {
						d = -d
					}
					if d > 2 {
						t.Fatalf("zigzag jump %d in %v", d, seq)
					}
				}
			}
		}
	}
}

func TestPlannerAgreesWithDPOnSmallest(t *testing.T) {
	// Cross-engine agreement on the smallest constructible instance, every
	// single-fault set: planner path (when produced) must be valid, and
	// existence must match the complete engine.
	g, lay, err := construct.Asymptotic(construct.MinAsymptoticN(4), 4)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSolver(g, Options{Layout: lay})
	complete := NewSolver(g, Options{Method: Backtracking})
	for v := 0; v < g.NumNodes(); v++ {
		faults := bitset.FromSlice(g.NumNodes(), []int{v})
		planPath := s.planAsymptotic(faults)
		ref := complete.Find(faults)
		if ref.Unknown {
			t.Fatalf("reference unknown on single fault %d", v)
		}
		if planPath != nil && !ref.Found {
			t.Fatalf("planner found a pipeline the complete engine refutes (fault %d)", v)
		}
		if planPath != nil && !s.validatePlanned(planPath, faults) {
			t.Fatalf("invalid plan for fault %d", v)
		}
	}
}

func TestFindCompressedDirectly(t *testing.T) {
	// The run-compression tier is the planner's fallback; exercise it
	// directly across fault patterns and validate every produced pipeline.
	g, lay, err := construct.Asymptotic(60, 6)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSolver(g, Options{Layout: lay})
	rng := rand.New(rand.NewSource(13))
	found, unknown := 0, 0
	for trial := 0; trial < 60; trial++ {
		faults := bitset.New(g.NumNodes())
		for faults.Count() < rng.Intn(7) {
			faults.Add(rng.Intn(g.NumNodes()))
		}
		e, ok := s.endpoints(faults)
		if !ok {
			continue
		}
		r := s.findCompressed(faults, e)
		switch {
		case r.Found:
			found++
			if !s.validatePlanned(r.Pipeline, faults) {
				t.Fatalf("trial %d: compressed produced invalid pipeline", trial)
			}
		case r.Unknown:
			unknown++ // compression blind spot: acceptable, handled by fallback
		default:
			t.Fatalf("trial %d: compressed returned a definite NO (it must defer)", trial)
		}
	}
	if found == 0 {
		t.Fatalf("compressed tier never succeeded (found=%d unknown=%d)", found, unknown)
	}
}

func TestTierStatsAccounting(t *testing.T) {
	g, lay, err := construct.Asymptotic(40, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSolver(g, Options{Layout: lay})
	rng := rand.New(rand.NewSource(17))
	const calls = 100
	for i := 0; i < calls; i++ {
		faults := bitset.New(g.NumNodes())
		for faults.Count() < rng.Intn(5) {
			faults.Add(rng.Intn(g.NumNodes()))
		}
		s.Find(faults)
	}
	st := s.Stats()
	if st.Total() != calls {
		t.Fatalf("tier stats account for %d of %d calls: %+v", st.Total(), calls, st)
	}
	if st.Planner == 0 {
		t.Fatalf("planner never credited: %+v", st)
	}
}

func TestGapZigzagMultiGap(t *testing.T) {
	// Offsets 1..4 (p=3): internal gaps ≤ 2 are constructively zigzaggable,
	// including several at once (recursive peeling).
	edge := func(x, y int) bool {
		d := x - y
		if d < 0 {
			d = -d
		}
		return d >= 1 && d <= 4
	}
	var pos []int
	for x := 10; x <= 60; x++ {
		if x != 25 && x != 26 && x != 40 { // gap of 2 and gap of 1
			pos = append(pos, x)
		}
	}
	for _, dir := range []string{"high", "low"} {
		var seq []int
		if dir == "high" {
			seq = gapZigzagHigh(pos)
		} else {
			seq = gapZigzagLow(pos)
		}
		if seq == nil {
			t.Fatalf("%s: constructive zigzag declined", dir)
		}
		tr := traversal{enter: seq[0], exit: seq[len(seq)-1], seq: seq}
		checkTraversal(t, pos, tr, edge)
		if dir == "high" && (tr.enter != 60 || tr.exit != 59) {
			t.Fatalf("high ends %d/%d", tr.enter, tr.exit)
		}
		if dir == "low" && (tr.enter != 10 || tr.exit != 11) {
			t.Fatalf("low ends %d/%d", tr.enter, tr.exit)
		}
	}
}

func TestGapZigzagParityBranches(t *testing.T) {
	// Both parities of the top segment must be handled: gap position
	// chosen so N = [a..b] has b−a odd in one case and even in the other.
	edge := func(x, y int) bool {
		d := x - y
		if d < 0 {
			d = -d
		}
		return d >= 1 && d <= 3 // p = 2: crossings need gap ≤ 1
	}
	for _, gapAt := range []int{20, 21} {
		var pos []int
		for x := 10; x <= 30; x++ {
			if x != gapAt {
				pos = append(pos, x)
			}
		}
		seq := gapZigzagHigh(pos)
		if seq == nil {
			t.Fatalf("gap at %d: declined", gapAt)
		}
		checkTraversal(t, pos, traversal{enter: seq[0], exit: seq[len(seq)-1], seq: seq}, edge)
	}
}

func TestGapZigzagDeclinesGapTooWide(t *testing.T) {
	// Internal gap of exactly p needs a crossing of offset p+2, which the
	// circulant lacks: the validated variant set must omit the zigzags
	// rather than emit an illegal hop.
	edge := func(x, y int) bool {
		d := x - y
		if d < 0 {
			d = -d
		}
		return d >= 1 && d <= 3 // p = 2
	}
	var pos []int
	for x := 10; x <= 30; x++ {
		if x != 20 && x != 21 { // gap of 2 = p
			pos = append(pos, x)
		}
	}
	blk := newRingBlock(pos)
	for _, tr := range blockTraversals(blk, edge) {
		checkTraversal(t, pos, tr, edge) // every offered variant must be legal
	}
}

func TestRegressionN100K4FaultSet(t *testing.T) {
	// The fault set that exhausted every engine before the gap-aware
	// zigzag existed: a splitting run {27,28,29} plus an internal fault 75.
	g, lay, err := construct.Asymptotic(100, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSolver(g, Options{Layout: lay})
	faults := bitset.FromSlice(g.NumNodes(), []int{lay.C[27], lay.C[28], lay.C[29], lay.C[75]})
	path := s.planAsymptotic(faults)
	if path == nil {
		t.Fatal("planner declined the regression fault set")
	}
	if !s.validatePlanned(path, faults) {
		t.Fatal("invalid plan")
	}
}
