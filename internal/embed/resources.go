package embed

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Resources is the engine core's unified cancellation/budget token: one
// value combines a context.Context, an optional node (expansion) budget,
// and an optional wall-clock deadline. Every solver and orchestration
// layer — the four engine tiers, verify.Exhaustive workers, reconfig
// remaps, chaos soaks, the pipeline.Stream remap path, and the CLIs —
// shares this one stop mechanism instead of inventing its own.
//
// The design constraint is that hot loops (the backtracker's DFS, the
// Held–Karp mask sweep) must be able to check "should I stop?" at a cost
// that disappears next to the work per expansion. Stopped is therefore a
// single atomic load: deadlines are armed as time.AfterFunc timers and
// context cancellation is forwarded by context.AfterFunc, both of which
// latch the flag from the outside, so the hot path never reads the clock
// and never walks a parent chain. Budgets are charged in batches (the
// engines charge every ~1k expansions), so the accounting adds one atomic
// add per batch, not per node.
//
// Tokens form a tree: Child() returns a token that stops when its parent
// stops (and can be stopped independently — the racing Auto portfolio
// runs sibling engines under sibling tokens and cancels the loser).
// Budget charges propagate to ancestors, so a parent budget bounds the
// sum of work done under all descendants.
//
// A token with neither context, budget, deadline, nor parent never stops
// on its own but can still be stopped explicitly with Cancel.
type Resources struct {
	stop   atomic.Bool  // the hot-loop flag: latched once, never cleared
	cause  atomic.Int32 // StopReason; first writer wins
	used   atomic.Int64 // nodes charged to this token and its descendants
	budget int64        // 0 = unlimited

	deadline time.Time // absolute; zero = none (informational; the timer enforces)

	mu       sync.Mutex
	parent   *Resources
	children map[*Resources]struct{}

	timer   *time.Timer // deadline latch
	ctxStop func() bool // context.AfterFunc deregistration
}

// StopReason says why a token stopped.
type StopReason int32

const (
	// StopNone: the token is live.
	StopNone StopReason = iota
	// StopCanceled: Cancel was called (directly, via the parent, or via
	// context cancellation).
	StopCanceled
	// StopDeadline: the wall-clock deadline expired.
	StopDeadline
	// StopBudget: the node budget was exhausted.
	StopBudget
)

// String names the reason.
func (r StopReason) String() string {
	switch r {
	case StopNone:
		return "none"
	case StopCanceled:
		return "canceled"
	case StopDeadline:
		return "deadline"
	case StopBudget:
		return "budget"
	default:
		return fmt.Sprintf("reason(%d)", int32(r))
	}
}

// ErrBudget reports a token stopped by node-budget exhaustion.
var ErrBudget = errors.New("embed: node budget exhausted")

// ErrDeadline reports a token stopped by wall-clock deadline expiry.
// reconfig wraps its own reconfig.ErrDeadline around remap failures; this
// is the engine-level cause underneath.
var ErrDeadline = errors.New("embed: deadline exceeded")

// ErrCanceled reports a token stopped by explicit or context cancellation.
var ErrCanceled = errors.New("embed: canceled")

// NewResources builds a root token. ctx may be nil (no context); budget
// is the total node (expansion) allowance across every engine call charged
// to this token, 0 = unlimited; deadline is a wall-clock bound from now,
// 0 = none. Call Release when the token is no longer needed so its timer
// and context registration are torn down.
func NewResources(ctx context.Context, budget int64, deadline time.Duration) *Resources {
	r := &Resources{budget: budget}
	r.arm(ctx, deadline)
	return r
}

// Child returns a token that stops when r stops, and can additionally be
// stopped (Cancel), bounded (budget), or deadlined on its own. Charges to
// the child propagate to r. Call Release on the child when done — racing
// siblings and per-call scopes are created at high rates, and Release is
// what detaches them from the parent.
func (r *Resources) Child() *Resources {
	return r.child(0, 0)
}

// BudgetedChild returns a child carrying its own expansion budget (0 =
// unlimited) on top of the parent's. The multi-tenant executor uses one
// per tenant: replan search work is charged to the affected tenant's
// token, and a tenant that exhausts its allowance is shed without
// stopping its siblings or the pool-wide root.
func (r *Resources) BudgetedChild(budget int64) *Resources {
	return r.child(budget, 0)
}

func (r *Resources) child(budget int64, deadline time.Duration) *Resources {
	c := &Resources{budget: budget, parent: r}
	r.mu.Lock()
	if r.children == nil {
		r.children = make(map[*Resources]struct{})
	}
	r.children[c] = struct{}{}
	stopped := r.stop.Load()
	r.mu.Unlock()
	if stopped {
		c.stopAs(StopReason(r.cause.Load()))
	}
	c.arm(nil, deadline)
	return c
}

// Scoped returns a child of parent carrying its own deadline (0 = none).
// A nil parent yields a detached root. This is the per-call compatibility
// shim behind Options.Deadline and reconfig.SetDeadline.
func Scoped(parent *Resources, deadline time.Duration) *Resources {
	if parent == nil {
		return NewResources(nil, 0, deadline)
	}
	return parent.child(0, deadline)
}

// arm installs the external latches: a timer for the deadline and a
// context.AfterFunc for ctx cancellation.
func (r *Resources) arm(ctx context.Context, deadline time.Duration) {
	if deadline > 0 {
		r.deadline = time.Now().Add(deadline)
		r.timer = time.AfterFunc(deadline, func() { r.stopAs(StopDeadline) })
	} else if deadline < 0 {
		// An already-expired deadline: born stopped.
		r.stopAs(StopDeadline)
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			r.stopAs(StopCanceled)
		} else if ctx.Done() != nil {
			r.ctxStop = context.AfterFunc(ctx, func() { r.stopAs(StopCanceled) })
		}
	}
}

// Stopped is the hot-loop check: one atomic load.
func (r *Resources) Stopped() bool { return r.stop.Load() }

// Cancel stops the token and every descendant. Idempotent; safe from any
// goroutine — this is how the first definitive racing engine cancels its
// sibling and how a verify worker's counterexample cancels the sweep.
func (r *Resources) Cancel() { r.stopAs(StopCanceled) }

// stopAs latches the stop flag with the given cause (first cause wins)
// and propagates to children.
func (r *Resources) stopAs(why StopReason) {
	r.cause.CompareAndSwap(int32(StopNone), int32(why))
	if r.stop.Swap(true) {
		return // already stopped; children were already told
	}
	r.mu.Lock()
	kids := make([]*Resources, 0, len(r.children))
	for c := range r.children {
		kids = append(kids, c)
	}
	r.mu.Unlock()
	for _, c := range kids {
		c.stopAs(why)
	}
}

// Reason returns why the token stopped (StopNone while live).
func (r *Resources) Reason() StopReason { return StopReason(r.cause.Load()) }

// Err maps the stop cause to a sentinel error: nil while live,
// ErrCanceled / ErrDeadline / ErrBudget after a stop.
func (r *Resources) Err() error {
	switch r.Reason() {
	case StopCanceled:
		return ErrCanceled
	case StopDeadline:
		return ErrDeadline
	case StopBudget:
		return ErrBudget
	default:
		return nil
	}
}

// Charge records n nodes of work against the token and every ancestor,
// stopping any whose budget is exhausted. It returns false when the token
// is (now) stopped, so engines can use it as their batched check:
//
//	if expansions&1023 == 0 && !res.Charge(1024) { give up }
//
// Charging is amortized — call it once per batch, not per node.
func (r *Resources) Charge(n int64) bool {
	for t := r; t != nil; t = t.parent {
		if t.used.Add(n) > t.budget && t.budget > 0 {
			t.stopAs(StopBudget)
		}
	}
	return !r.stop.Load()
}

// Used returns the nodes charged to this token (including descendants).
func (r *Resources) Used() int64 { return r.used.Load() }

// Remaining returns the unspent node budget, or -1 when unlimited.
func (r *Resources) Remaining() int64 {
	if r.budget <= 0 {
		return -1
	}
	rem := r.budget - r.used.Load()
	if rem < 0 {
		rem = 0
	}
	return rem
}

// Deadline returns the absolute deadline and whether one is set.
func (r *Resources) Deadline() (time.Time, bool) {
	return r.deadline, !r.deadline.IsZero()
}

// Release tears the token down: the deadline timer is stopped, the
// context registration removed, and the token detached from its parent so
// short-lived scopes (per-call deadlines, racing siblings) do not
// accumulate. The token itself stays usable as a plain stopped/unstopped
// flag; Release does NOT cancel it.
func (r *Resources) Release() {
	if r == nil {
		return
	}
	if r.timer != nil {
		r.timer.Stop()
	}
	if r.ctxStop != nil {
		r.ctxStop()
	}
	if p := r.parent; p != nil {
		p.mu.Lock()
		delete(p.children, r)
		p.mu.Unlock()
	}
}

// stopped is the nil-tolerant hot-loop check used by the engines: a nil
// token never stops.
func stopped(r *Resources) bool { return r != nil && r.stop.Load() }

// charge is the nil-tolerant batched budget charge: a nil token accepts
// everything.
func charge(r *Resources, n int64) bool {
	if r == nil {
		return true
	}
	return r.Charge(n)
}
