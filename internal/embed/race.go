package embed

// The racing Auto portfolio: instead of staging the two complete engines
// (exact Held–Karp DP, then full-budget backtracking), run them
// concurrently under sibling Resources tokens and let the first
// definitive answer — found, or exhaustive not-found — cancel the loser.
// On hard instances near the degradability boundary the two engines'
// costs differ by orders of magnitude in both directions (the DP's cost
// is fixed at 2^np while the backtracker's depends on how early its
// prunes fire), so racing is the minimum of the two rather than the sum.
//
// Verdicts are identical to the staged ladder by construction: both
// engines are complete, and an Unknown (canceled) loser is discarded in
// favor of the winner's definitive result. The A/B test in
// internal/verify re-proves verdict equality per fault set.

// racerResult pairs an engine's Result with which engine produced it.
type racerResult struct {
	res Result
	dp  bool
}

// definitive reports whether r settles the instance: a pipeline was found
// or the search space was exhausted. Unknown (budget/cancel) is not
// definitive.
func definitive(r Result) bool { return r.Found || !r.Unknown }

// race runs the exact DP and the full-budget backtracker concurrently
// under sibling tokens. Preconditions (enforced by the caller): the
// instance fits the DP (np <= MaxDPProcessors), so the two engines touch
// disjoint solver scratch (s.dpTable vs s.bt) and can share the Solver.
// Both goroutines are always joined before returning — the scratch must
// be quiescent before the next Find call reuses it.
func (s *Solver) race(e endpoints) Result {
	dpTok := Scoped(s.run, 0)
	btTok := Scoped(s.run, 0)
	defer dpTok.Release()
	defer btTok.Release()

	out := make(chan racerResult, 2)
	go func() { out <- racerResult{res: s.findDP(e, dpTok), dp: true} }()
	go func() { out <- racerResult{res: s.findBacktrack(e, s.opts.Budget, btTok)} }()

	first := <-out
	if definitive(first.res) {
		// Cancel the loser; it returns Unknown at its next expansion.
		dpTok.Cancel()
		btTok.Cancel()
	}
	second := <-out

	winner, loser := first, second
	if !definitive(first.res) && definitive(second.res) {
		winner, loser = second, first
	}
	res := winner.res
	res.Expansions += loser.res.Expansions // total work spent on the call
	if !definitive(winner.res) {
		// Neither engine finished (parent canceled or budgets exhausted).
		return res
	}
	if winner.dp {
		s.stats.DP++
		s.raceWinner = "dp"
		s.raceWon[0].Inc()
	} else {
		s.stats.Full++
		s.raceWinner = "backtrack"
		s.raceWon[1].Inc()
	}
	return res
}
