package embed_test

import (
	"testing"

	"gdpn/internal/bitset"
	"gdpn/internal/construct"
	"gdpn/internal/embed"
	"gdpn/internal/graph"
	"gdpn/internal/verify"
)

// buildLine returns i0 — p0 — p1 — … — p_{n-1} — o0.
func buildLine(n int) *graph.Graph {
	g := graph.New("line")
	prev := -1
	for j := 0; j < n; j++ {
		p := g.AddNode(graph.Processor, j)
		if prev >= 0 {
			g.AddEdge(prev, p)
		}
		prev = p
	}
	in := g.AddNode(graph.InputTerminal, 0)
	out := g.AddNode(graph.OutputTerminal, 0)
	g.AddEdge(in, 0)
	g.AddEdge(out, prev)
	return g
}

func TestFindPipelineOnLine(t *testing.T) {
	g := buildLine(7)
	path, ok := embed.FindPipeline(g, nil)
	if !ok {
		t.Fatal("no pipeline on a fault-free line")
	}
	if err := verify.CheckPipeline(g, nil, path); err != nil {
		t.Fatal(err)
	}
	if len(path) != 9 {
		t.Fatalf("pipeline length %d, want 9", len(path))
	}
}

func TestLineBreaksWithMiddleFault(t *testing.T) {
	g := buildLine(5)
	faults := bitset.FromSlice(g.NumNodes(), []int{2})
	if _, ok := embed.FindPipeline(g, faults); ok {
		t.Fatal("line with a middle fault cannot host a full pipeline")
	}
}

func TestSingleProcessorPipeline(t *testing.T) {
	g := buildLine(1)
	path, ok := embed.FindPipeline(g, nil)
	if !ok || len(path) != 3 {
		t.Fatalf("single-processor pipeline: ok=%v path=%v", ok, path)
	}
	if err := verify.CheckPipeline(g, nil, path); err != nil {
		t.Fatal(err)
	}
}

func TestSingleProcessorMissingTerminal(t *testing.T) {
	g := graph.New("half")
	p := g.AddNode(graph.Processor, 0)
	in := g.AddNode(graph.InputTerminal, 0)
	g.AddEdge(in, p)
	if _, ok := embed.FindPipeline(g, nil); ok {
		t.Fatal("pipeline without an output terminal")
	}
}

func TestNoHealthyTerminal(t *testing.T) {
	g := buildLine(3)
	in := g.InputTerminals()[0]
	faults := bitset.FromSlice(g.NumNodes(), []int{in})
	if _, ok := embed.FindPipeline(g, faults); ok {
		t.Fatal("pipeline without a healthy input terminal")
	}
}

func TestAllProcessorsFaulty(t *testing.T) {
	g := buildLine(2)
	faults := bitset.FromSlice(g.NumNodes(), []int{0, 1})
	if _, ok := embed.FindPipeline(g, faults); ok {
		t.Fatal("pipeline with zero healthy processors")
	}
}

// agreeOnAll checks that two engines agree on existence for every fault set
// of size ≤ k, and that every returned pipeline validates.
func agreeOnAll(t *testing.T, g *graph.Graph, k int, a, b embed.Options) {
	t.Helper()
	sa := embed.NewSolver(g, a)
	sb := embed.NewSolver(g, b)
	n := g.NumNodes()
	faults := bitset.New(n)
	var rec func(next, left int)
	var check func()
	check = func() {
		ra := sa.Find(faults)
		rb := sb.Find(faults)
		if ra.Unknown || rb.Unknown {
			t.Fatalf("unknown result on faults %v", faults.Slice())
		}
		if ra.Found != rb.Found {
			t.Fatalf("engines disagree on faults %v: %v vs %v (methods %v/%v)",
				faults.Slice(), ra.Found, rb.Found, a.Method, b.Method)
		}
		if ra.Found {
			if err := verify.CheckPipeline(g, faults, ra.Pipeline); err != nil {
				t.Fatalf("engine %v invalid pipeline on %v: %v", a.Method, faults.Slice(), err)
			}
			if err := verify.CheckPipeline(g, faults, rb.Pipeline); err != nil {
				t.Fatalf("engine %v invalid pipeline on %v: %v", b.Method, faults.Slice(), err)
			}
		}
	}
	rec = func(next, left int) {
		check()
		if left == 0 {
			return
		}
		for v := next; v < n; v++ {
			faults.Add(v)
			rec(v+1, left-1)
			faults.Remove(v)
		}
	}
	rec(0, k)
}

func TestDPAndBacktrackingAgreeG2(t *testing.T) {
	agreeOnAll(t, construct.G2(2), 2,
		embed.Options{Method: embed.DP},
		embed.Options{Method: embed.Backtracking})
}

func TestDPAndBacktrackingAgreeG3(t *testing.T) {
	agreeOnAll(t, construct.G3(2), 2,
		embed.Options{Method: embed.DP},
		embed.Options{Method: embed.Backtracking})
}

func TestDPAndBacktrackingAgreeOnSparseGraph(t *testing.T) {
	// A graph where many fault sets are infeasible: both engines must agree
	// on the negatives too.
	agreeOnAll(t, buildLine(6), 2,
		embed.Options{Method: embed.DP},
		embed.Options{Method: embed.Backtracking})
}

func TestStructuredAgreesWithAutoExhaustive1Fault(t *testing.T) {
	g, lay, err := construct.Asymptotic(22, 4)
	if err != nil {
		t.Fatal(err)
	}
	agreeOnAll(t, g, 1,
		embed.Options{Method: embed.Structured, Layout: lay},
		embed.Options{Method: embed.Backtracking})
}

func TestBudgetExhaustionReportsUnknown(t *testing.T) {
	g, _, err := construct.Asymptotic(40, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := embed.NewSolver(g, embed.Options{Method: embed.Backtracking, Budget: 1})
	r := s.Find(nil)
	if r.Found || !r.Unknown {
		t.Fatalf("budget=1 should be Unknown, got found=%v unknown=%v", r.Found, r.Unknown)
	}
}

func TestMethodString(t *testing.T) {
	for m, want := range map[embed.Method]string{
		embed.Auto: "auto", embed.DP: "dp",
		embed.Backtracking: "backtracking", embed.Structured: "structured",
		embed.Method(42): "method(42)",
	} {
		if got := m.String(); got != want {
			t.Errorf("Method(%d).String() = %q, want %q", m, got, want)
		}
	}
}

func TestSolverReuseAcrossFaultSets(t *testing.T) {
	// The solver reuses scratch buffers; interleaved fault sets must not
	// contaminate each other.
	g := construct.G3(3)
	s := embed.NewSolver(g, embed.Options{})
	for trial := 0; trial < 50; trial++ {
		faults := bitset.New(g.NumNodes())
		faults.Add(trial % g.NumNodes())
		r := s.Find(faults)
		if r.Found {
			if err := verify.CheckPipeline(g, faults, r.Pipeline); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
		r2 := s.Find(nil)
		if !r2.Found {
			t.Fatalf("trial %d: fault-free search regressed", trial)
		}
	}
}

func TestStructuredLargeNetworkFast(t *testing.T) {
	// n = 2000: the structured engine must find a pipeline without the
	// full-graph engines (which would be visible as a timeout here).
	g, lay, err := construct.Asymptotic(2000, 6)
	if err != nil {
		t.Fatal(err)
	}
	s := embed.NewSolver(g, embed.Options{Layout: lay})
	faults := bitset.FromSlice(g.NumNodes(), []int{100, 500, 900, 1300, 1700, 1999})
	r := s.Find(faults)
	if !r.Found {
		t.Fatal("no pipeline on large network")
	}
	if err := verify.CheckPipeline(g, faults, r.Pipeline); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineEndpointsAreTerminals(t *testing.T) {
	g := construct.G1(3)
	path, ok := embed.FindPipeline(g, nil)
	if !ok {
		t.Fatal("no pipeline")
	}
	kf, kl := g.Kind(path[0]), g.Kind(path[len(path)-1])
	if kf == graph.Processor || kl == graph.Processor {
		t.Fatalf("endpoints %v, %v; want terminals", kf, kl)
	}
}
