package embed_test

import (
	"testing"

	"gdpn/internal/construct"
	"gdpn/internal/embed"
	"gdpn/internal/obs"
)

// TestFindRecordsObsMetrics checks the solver's wall-time histogram and
// tier counters advance when the registry is enabled.
func TestFindRecordsObsMetrics(t *testing.T) {
	reg := obs.Default()
	reg.Reset()
	reg.SetEnabled(true)
	defer func() {
		reg.SetEnabled(false)
		reg.Reset()
	}()

	sol, err := construct.Design(12, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := embed.NewSolver(sol.Graph, embed.Options{Layout: sol.Layout})
	res := s.Find(nil)
	if !res.Found {
		t.Fatal("no pipeline on the fault-free graph")
	}
	snap := reg.Snapshot()
	if h := snap.Histograms["embed_find_ns"]; h.Count != 1 || h.Max <= 0 {
		t.Fatalf("embed_find_ns %+v, want one timed call", h)
	}
	var tiers int64
	for k, v := range snap.Counters {
		if len(k) >= len("embed_tier_total") && k[:len("embed_tier_total")] == "embed_tier_total" {
			tiers += v
		}
	}
	if tiers != 1 {
		t.Fatalf("tier counters sum %d, want 1 (%v)", tiers, snap.Counters)
	}
}
