package embed

import (
	"gdpn/internal/bitset"
	"gdpn/internal/graph"
)

// findStructured exploits the §3.4 layout: far away from faults, the
// circulant ring C can only be covered by sweeping it, so every maximal
// healthy run of ring positions that is farther than p+1 from any fault and
// from the S/R boundaries is compressed into a three-node corridor
// L — M — R. M has no other neighbors, which forces any Hamiltonian path of
// the compressed graph to traverse the corridor from one real end of the
// run to the other; expanding the corridor back into the unit-step sweep of
// the run therefore always yields a real pipeline. The compressed problem
// has O(k²) nodes independent of n and is solved with the (complete)
// backtracking engine.
//
// The compression is sound but not complete: solutions that enter a run's
// interior directly (e.g. via a bisector edge landing mid-run) or cover a
// run in two passes are not representable. In that case the result is
// Unknown and the dispatcher falls back to the complete engine on the full
// graph.
func (s *Solver) findStructured(faults bitset.Set, e endpoints) Result {
	if s.opts.Layout == nil {
		return Result{Unknown: true, Method: Structured}
	}
	// Constructive planner first: it solves the canonical route in O(n)
	// for the overwhelming majority of fault sets without any search.
	if planned := s.planAsymptotic(faults); planned != nil {
		s.stats.Planner++
		return Result{Pipeline: planned, Found: true, Method: Structured}
	}
	return s.findCompressed(faults, e)
}

// findCompressed is the run-compression search tier; see the package
// comment of findStructured for the corridor construction.
func (s *Solver) findCompressed(faults bitset.Set, e endpoints) Result {
	lay := s.opts.Layout
	m, k, p := lay.M, lay.K, lay.P

	isFaulty := func(v int) bool { return v >= 0 && faults != nil && faults.Contains(v) }

	// Ring positions of faulty C nodes.
	var faultPos []int
	for j := 0; j < m; j++ {
		if isFaulty(lay.C[j]) {
			faultPos = append(faultPos, j)
		}
	}

	// kept[j]: position j must stay atomic — S nodes, positions near the
	// S/R boundary, and positions near a fault.
	reach := p + 1
	kept := make([]bool, m)
	for j := 0; j < m; j++ {
		if isFaulty(lay.C[j]) {
			continue
		}
		if j <= k+1 || j-(k+2) <= reach || (m-1)-j <= reach {
			kept[j] = true
			continue
		}
		for _, f := range faultPos {
			d := j - f
			if d < 0 {
				d = -d
			}
			if d > m-d {
				d = m - d
			}
			if d <= reach {
				kept[j] = true
				break
			}
		}
	}

	// Maximal runs of healthy, non-kept R positions.
	type run struct{ lo, hi int }
	var runs []run
	for j := k + 2; j < m; j++ {
		if kept[j] || isFaulty(lay.C[j]) {
			continue
		}
		lo := j
		for j+1 < m && !kept[j+1] && !isFaulty(lay.C[j+1]) {
			j++
		}
		runs = append(runs, run{lo, j})
	}

	// Build the compressed graph. comp ids map back to real nodes or runs.
	const (
		realNode = iota
		segL
		segM
		segR
	)
	type backRef struct {
		kind int
		real int // real node id (realNode)
		run  int // run index (segL/segM/segR)
	}
	cg := graph.New("compressed")
	var back []backRef
	addReal := func(v int, kind graph.Kind, label int) int {
		id := cg.AddNode(kind, label)
		back = append(back, backRef{kind: realNode, real: v})
		return id
	}

	comp := make(map[int]int) // real node id -> compressed id
	// Atomic ring positions.
	posComp := make([]int, m)
	for j := range posComp {
		posComp[j] = -1
	}
	for j := 0; j < m; j++ {
		if kept[j] {
			id := addReal(lay.C[j], graph.Processor, j)
			comp[lay.C[j]] = id
			posComp[j] = id
		}
	}
	// I, O, and their terminals.
	for j := 1; j <= k+1; j++ {
		if !isFaulty(lay.I[j]) {
			comp[lay.I[j]] = addReal(lay.I[j], graph.Processor, j)
			if !isFaulty(lay.Ti[j]) {
				comp[lay.Ti[j]] = addReal(lay.Ti[j], graph.InputTerminal, j)
			}
		}
	}
	for j := 0; j <= k; j++ {
		if !isFaulty(lay.O[j]) {
			comp[lay.O[j]] = addReal(lay.O[j], graph.Processor, j)
			if !isFaulty(lay.To[j]) {
				comp[lay.To[j]] = addReal(lay.To[j], graph.OutputTerminal, j)
			}
		}
	}
	// Real-to-real edges.
	for v, cv := range comp {
		for _, u := range s.g.Neighbors(v) {
			cu, ok := comp[int(u)]
			if ok && cv < cu {
				cg.AddEdge(cv, cu)
			}
		}
	}
	// Segment corridors.
	segIDs := make([][3]int, len(runs))
	for ri, r := range runs {
		l := cg.AddNode(graph.Processor, graph.NoLabel)
		back = append(back, backRef{kind: segL, run: ri})
		mid := cg.AddNode(graph.Processor, graph.NoLabel)
		back = append(back, backRef{kind: segM, run: ri})
		rr := cg.AddNode(graph.Processor, graph.NoLabel)
		back = append(back, backRef{kind: segR, run: ri})
		cg.AddEdge(l, mid)
		cg.AddEdge(mid, rr)
		segIDs[ri] = [3]int{l, mid, rr}
		// External edges: kept nodes really adjacent to the run's ends.
		for _, end := range [2]struct {
			pos, seg int
		}{{r.lo, l}, {r.hi, rr}} {
			for _, u := range s.g.Neighbors(lay.C[end.pos]) {
				if cu, ok := comp[int(u)]; ok {
					if !cg.HasEdge(end.seg, cu) {
						cg.AddEdge(end.seg, cu)
					}
				}
			}
		}
	}

	if cg.NumNodes() > 4000 {
		return Result{Unknown: true, Method: Structured} // decline: compression ineffective
	}

	// The inner search is budget-capped: compression blind spots must not
	// consume the caller's whole budget before the complete engines run.
	innerBudget := int64(2_000_000)
	if s.opts.Budget < innerBudget {
		innerBudget = s.opts.Budget
	}
	sub := NewSolver(cg, Options{Method: Backtracking, Budget: innerBudget, Res: s.run})
	r := sub.Find(nil)
	if !r.Found {
		// Either genuinely infeasible or a compression blind spot; report
		// Unknown so the dispatcher escalates to the complete engine.
		return Result{Unknown: true, Method: Structured, Expansions: r.Expansions}
	}

	// Expand: map compressed path back to real nodes, unrolling corridors.
	out := make(graph.Path, 0, len(e.healthyProcs)+2)
	cp := r.Pipeline
	for idx := 0; idx < len(cp); idx++ {
		ref := back[cp[idx]]
		switch ref.kind {
		case realNode:
			out = append(out, ref.real)
		case segL:
			// L must be followed by M, R (forced); sweep lo -> hi.
			rn := runs[ref.run]
			for pos := rn.lo; pos <= rn.hi; pos++ {
				out = append(out, lay.C[pos])
			}
			idx += 2
		case segR:
			rn := runs[ref.run]
			for pos := rn.hi; pos >= rn.lo; pos-- {
				out = append(out, lay.C[pos])
			}
			idx += 2
		case segM:
			// A path can never start inside a corridor.
			return Result{Unknown: true, Method: Structured}
		}
	}
	s.stats.Compressed++
	return Result{Pipeline: out, Found: true, Method: Structured, Expansions: r.Expansions}
}
