package embed

import (
	"math/bits"
)

// findDP decides pipeline existence exactly with a Held–Karp dynamic
// program over the healthy processors. dp[mask] is the set (as a bitmask)
// of vertices at which some path covering exactly `mask` and starting at a
// start-candidate can end. The instance is feasible iff dp[full] contains
// an end-candidate. Complete: a false result is a proof of nonexistence.
//
// Instances with more than MaxDPProcessors healthy processors are handed
// to the (also complete, budget permitting) backtracking engine.
//
// res is the stop token for this call (may be nil): checked with one
// atomic load per mask row and charged in batches, never by reading the
// clock.
func (s *Solver) findDP(e endpoints, res *Resources) Result {
	np := len(e.healthyProcs)
	if np > MaxDPProcessors {
		r := s.findBacktrack(e, s.opts.Budget, res)
		r.Method = DP
		return r
	}
	// Entry check: small tables finish between batched in-loop checks, so an
	// already-stopped token must be honored before any work happens.
	if stopped(res) {
		return Result{Unknown: true, Method: DP}
	}

	// Local adjacency bitmasks over healthy-processor indices.
	adj := make([]uint32, np)
	local := map[int]int{}
	for i, p := range e.healthyProcs {
		local[p] = i
	}
	var startMask, endMask uint32
	for i, p := range e.healthyProcs {
		for _, u := range s.g.Neighbors(p) {
			if j, ok := local[int(u)]; ok {
				adj[i] |= 1 << uint(j)
			}
		}
		if e.start.Contains(p) {
			startMask |= 1 << uint(i)
		}
		if e.end.Contains(p) {
			endMask |= 1 << uint(i)
		}
	}

	size := 1 << uint(np)
	if cap(s.dpTable) < size {
		s.dpTable = make([]uint32, size)
	}
	dp := s.dpTable[:size]
	for i := range dp {
		dp[i] = 0
	}

	var expansions int64
	for i := 0; i < np; i++ {
		if startMask&(1<<uint(i)) != 0 {
			dp[1<<uint(i)] = 1 << uint(i)
		}
	}
	full := uint32(size - 1)
	var lastCharged int64
	for mask := 1; mask < size; mask++ {
		// External stop: one atomic load per 1024 masks; transition counts
		// are charged to the token in the same batches.
		if mask&1023 == 0 && res != nil {
			if !res.Charge(expansions - lastCharged) {
				return Result{Unknown: true, Method: DP, Expansions: expansions}
			}
			lastCharged = expansions
		}
		lasts := dp[mask]
		if lasts == 0 {
			continue
		}
		if uint32(mask) == full {
			break
		}
		for ls := lasts; ls != 0; ls &= ls - 1 {
			last := bits.TrailingZeros32(ls)
			nexts := adj[last] &^ uint32(mask)
			for ns := nexts; ns != 0; ns &= ns - 1 {
				nxt := bits.TrailingZeros32(ns)
				dp[mask|1<<uint(nxt)] |= 1 << uint(nxt)
				expansions++
			}
		}
	}
	finals := dp[full] & endMask
	if finals == 0 {
		return Result{Found: false, Method: DP, Expansions: expansions}
	}

	// Reconstruct backwards: at (mask, last), a predecessor is any vertex
	// prev ∈ dp[mask \ last] adjacent to last.
	last := bits.TrailingZeros32(finals)
	mask := full
	rev := make([]int, 0, np)
	for {
		rev = append(rev, e.healthyProcs[last])
		prevMask := mask &^ (1 << uint(last))
		if prevMask == 0 {
			break
		}
		cands := dp[prevMask] & adj[last]
		if cands == 0 {
			panic("embed: DP reconstruction lost its path")
		}
		last = bits.TrailingZeros32(cands)
		mask = prevMask
	}
	// rev is end..start; reverse into start..end order.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return Result{
		Pipeline:   s.assemble(e, rev),
		Found:      true,
		Method:     DP,
		Expansions: expansions,
	}
}
