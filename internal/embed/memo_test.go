package embed

import (
	"testing"

	"gdpn/internal/bitset"
	"gdpn/internal/combin"
	"gdpn/internal/construct"
)

// TestMemoMatchesSolvedResults checks that a memoized solver returns
// verdicts identical to an unmemoized one across the exhaustive fault
// enumeration, and that every revisited fault set is answered from the
// cache.
func TestMemoMatchesSolvedResults(t *testing.T) {
	g := construct.G3(3)
	memo := NewSolver(g, Options{Memo: true})
	plain := NewSolver(g, Options{})
	n := g.NumNodes()
	faults := bitset.New(n)
	calls := 0
	combin.SubsetsUpTo(n, 2, func(sub []int) bool {
		faults.Clear()
		for _, v := range sub {
			faults.Add(v)
		}
		first := memo.Find(faults)
		second := memo.Find(faults) // must be served by the memo
		want := plain.Find(faults)
		if first.Found != want.Found || second.Found != want.Found {
			t.Fatalf("faults %v: found %v/%v, want %v", sub, first.Found, second.Found, want.Found)
		}
		if second.Found {
			// The hit hands out a fresh copy of a path valid for the set.
			if len(second.Pipeline) == 0 {
				t.Fatalf("faults %v: memo hit returned empty pipeline", sub)
			}
			if &first.Pipeline[0] == &second.Pipeline[0] {
				t.Fatalf("faults %v: memo hit aliased the previous result", sub)
			}
		}
		calls++
		return true
	})
	hits, misses := memo.Memo()
	if misses != int64(calls) || hits != int64(calls) {
		t.Fatalf("memo hits/misses = %d/%d, want %d/%d (one miss then one hit per set)",
			hits, misses, calls, calls)
	}
	if h, m := plain.Memo(); h != 0 || m != 0 {
		t.Fatalf("unmemoized solver counted memo traffic: %d/%d", h, m)
	}
}

// TestMemoAndWarmSurviveRemaps drives the fault/repair churn of a soak —
// FindDelta transitions cycling through a small set of fault
// configurations — and asserts (a) warm endpoint state survives every
// remap, (b) revisited configurations are memo hits, and (c)
// InvalidateCache (the topology-change hook) really drops both.
func TestMemoAndWarmSurviveRemaps(t *testing.T) {
	g := construct.G3(3)
	s := NewSolver(g, Options{Memo: true})
	procs := g.Processors()
	p1, p2 := procs[1], procs[3]
	faults := bitset.New(g.NumNodes())

	// Seed warm state and the memo with the fault-free solve.
	if res := s.Find(faults); !res.Found {
		t.Fatal("fault-free Find failed")
	}

	// N remaps: {} -> {p1} -> {p1,p2} -> {p1} -> {} -> ... Every set after
	// the first lap is a revisit.
	type step struct {
		add, remove int
	}
	lap := []step{{add: p1}, {add: p2}, {remove: p2}, {remove: p1}}
	const laps = 5
	calls := 0
	for i := 0; i < laps; i++ {
		for _, st := range lap {
			var removed, added []int
			if st.add != 0 {
				faults.Add(st.add)
				added = []int{st.add}
			} else {
				faults.Remove(st.remove)
				removed = []int{st.remove}
			}
			if res := s.FindDelta(faults, removed, added); !res.Found {
				t.Fatalf("lap %d: FindDelta(%v) not found", i, faults)
			}
			calls++
		}
	}
	warmHits, warmMisses := s.Warm()
	if warmHits != int64(calls) || warmMisses != 0 {
		t.Fatalf("warm hits/misses = %d/%d, want %d/0 (state must survive every remap)",
			warmHits, warmMisses, calls)
	}
	memoHits, memoMisses := s.Memo()
	// Distinct sets: {}, {p1}, {p1,p2} — the first lap misses {p1} and
	// {p1,p2} ({} was seeded), everything after hits.
	wantMisses := int64(3)
	if memoMisses != wantMisses || memoHits != int64(calls+1)-wantMisses {
		t.Fatalf("memo hits/misses = %d/%d, want %d/%d",
			memoHits, memoMisses, int64(calls+1)-wantMisses, wantMisses)
	}

	// Topology change: both caches must drop — the next delta call rebuilds
	// endpoint state from scratch and the next solve misses the memo.
	s.InvalidateCache()
	faults.Add(p1)
	if res := s.FindDelta(faults, nil, []int{p1}); !res.Found {
		t.Fatal("post-invalidate FindDelta not found")
	}
	if _, m := s.Warm(); m != 1 {
		t.Fatalf("warm misses after InvalidateCache = %d, want 1", m)
	}
	if _, m := s.Memo(); m != wantMisses+1 {
		t.Fatalf("memo misses after InvalidateCache = %d, want %d", m, wantMisses+1)
	}
}
