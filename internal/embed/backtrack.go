package embed

import (
	"sort"
)

// backtracker is the pruned-DFS Hamiltonian path engine. It works on local
// indices 0..np-1 over the healthy processors of one Find call and is
// rebuilt per call (the adjacency depends on the fault set).
type backtracker struct {
	np      int
	adj     [][]int32 // local adjacency
	isEnd   []bool
	visited []bool
	remDeg  []int // unvisited-neighbor count
	path    []int // local indices, in visit order

	zeroCount    int // unvisited vertices with remDeg == 0
	oneCount     int // unvisited vertices with remDeg == 1
	endRemaining int // unvisited end candidates

	budget     int64
	expansions int64
	exhausted  bool
	res        *Resources // nil = no external stop; checked per expansion

	// connectivity scratch
	seen  []bool
	queue []int

	// candBuf is a stack-disciplined shared candidate buffer across DFS
	// frames, avoiding a per-frame allocation without capping the degree.
	candBuf []int32
}

// findBacktrack runs the DFS engine. A Found=false, Unknown=false result is
// a completed exhaustive search, i.e. a proof that no pipeline exists. res
// is the stop token for this call (may be nil); the engine checks it with
// one atomic load per expansion and charges it in 1024-expansion batches.
func (s *Solver) findBacktrack(e endpoints, budget int64, res *Resources) Result {
	np := len(e.healthyProcs)
	bt := s.bt
	if bt == nil || cap(bt.adj) < np {
		bt = &backtracker{
			adj:     make([][]int32, np),
			isEnd:   make([]bool, np),
			visited: make([]bool, np),
			remDeg:  make([]int, np),
			path:    make([]int, 0, np),
			seen:    make([]bool, np),
			queue:   make([]int, 0, np),
		}
		s.bt = bt
	}
	bt.np = np
	bt.adj = bt.adj[:np]
	bt.isEnd = bt.isEnd[:np]
	bt.visited = bt.visited[:np]
	bt.remDeg = bt.remDeg[:np]
	bt.seen = bt.seen[:np]
	bt.path = bt.path[:0]
	bt.budget = budget
	bt.expansions = 0
	bt.exhausted = false
	bt.res = res
	bt.zeroCount = 0
	bt.oneCount = 0
	bt.endRemaining = 0

	local := make(map[int]int, np)
	for i, p := range e.healthyProcs {
		local[p] = i
	}
	starts := make([]int, 0, np)
	for i, p := range e.healthyProcs {
		lst := bt.adj[i][:0]
		for _, u := range s.g.Neighbors(p) {
			if j, ok := local[int(u)]; ok {
				lst = append(lst, int32(j))
			}
		}
		bt.adj[i] = lst
		bt.isEnd[i] = e.end.Contains(p)
		bt.visited[i] = false
		bt.remDeg[i] = len(lst)
		if bt.remDeg[i] == 0 {
			bt.zeroCount++
		} else if bt.remDeg[i] == 1 {
			bt.oneCount++
		}
		if bt.isEnd[i] {
			bt.endRemaining++
		}
		if e.start.Contains(p) {
			starts = append(starts, i)
		}
	}
	// Isolated vertices are fatal unless np == 1 (handled by caller).
	if bt.zeroCount > 0 {
		return Result{Found: false, Method: Backtracking}
	}
	// Try low-degree starts first: they are the most constrained.
	sort.Slice(starts, func(a, b int) bool {
		return len(bt.adj[starts[a]]) < len(bt.adj[starts[b]])
	})
	for _, st := range starts {
		bt.visit(st)
		if bt.dfs(st, np-1) {
			procPath := make([]int, len(bt.path))
			for i, li := range bt.path {
				procPath[i] = e.healthyProcs[li]
			}
			return Result{
				Pipeline:   s.assemble(e, procPath),
				Found:      true,
				Method:     Backtracking,
				Expansions: bt.expansions,
			}
		}
		bt.unvisit(st)
		if bt.exhausted {
			return Result{Unknown: true, Method: Backtracking, Expansions: bt.expansions}
		}
	}
	return Result{Found: false, Method: Backtracking, Expansions: bt.expansions}
}

func (bt *backtracker) visit(v int) {
	bt.visited[v] = true
	bt.path = append(bt.path, v)
	if bt.isEnd[v] {
		bt.endRemaining--
	}
	for _, u := range bt.adj[v] {
		if !bt.visited[u] {
			bt.remDeg[u]--
			switch bt.remDeg[u] {
			case 0:
				bt.zeroCount++
				bt.oneCount--
			case 1:
				bt.oneCount++
			}
		}
	}
	switch bt.remDeg[v] {
	case 0:
		bt.zeroCount-- // v itself no longer counts: it is visited
	case 1:
		bt.oneCount--
	}
}

func (bt *backtracker) unvisit(v int) {
	switch bt.remDeg[v] {
	case 0:
		bt.zeroCount++
	case 1:
		bt.oneCount++
	}
	for _, u := range bt.adj[v] {
		if !bt.visited[u] {
			switch bt.remDeg[u] {
			case 0:
				bt.zeroCount--
				bt.oneCount++
			case 1:
				bt.oneCount--
			}
			bt.remDeg[u]++
		}
	}
	if bt.isEnd[v] {
		bt.endRemaining++
	}
	bt.path = bt.path[:len(bt.path)-1]
	bt.visited[v] = false
}

// dfs extends the path from head u with `left` vertices still to place.
// Returns true when a full path ending at an end candidate is found.
func (bt *backtracker) dfs(u, left int) bool {
	if left == 0 {
		return bt.isEnd[u]
	}
	if bt.budget <= 0 {
		bt.exhausted = true
		return false
	}
	// External stop (cancel/deadline/shared budget): one atomic load per
	// expansion — deadlines are armed as timers on the token, so the hot
	// loop never reads the clock. Shared-budget charges are batched.
	if bt.res != nil {
		if bt.res.Stopped() {
			bt.exhausted = true
			return false
		}
		if bt.expansions&1023 == 1023 && !bt.res.Charge(1024) {
			bt.exhausted = true
			return false
		}
	}
	bt.budget--
	bt.expansions++

	// The final vertex must be an end candidate.
	if bt.endRemaining == 0 {
		return false
	}
	// A vertex with no unvisited neighbors can only be entered from the
	// current head as the very last vertex.
	if bt.zeroCount > 1 {
		return false
	}
	if bt.zeroCount == 1 && left > 1 {
		// The zero vertex must be the final one AND adjacent to u — but
		// entering it now (left > 1) strands the rest; entering it later is
		// impossible (its entrances are all visited except u, and u will no
		// longer be the head). Dead.
		return false
	}
	// Connectivity: all unvisited vertices must be reachable from u. On
	// small graphs (the exhaustive-verification regime) it is cheap
	// relative to the subtrees it prunes; on large graphs it is sampled so
	// the per-expansion cost stays amortized-constant.
	if left > 2 && (left <= 96 || bt.expansions&31 == 0) && !bt.reachableAll(u, left) {
		return false
	}

	// Candidates in Warnsdorff order (fewest onward moves first). The
	// shared buffer is stack-disciplined: this frame appends its candidates
	// and truncates back before returning.
	base := len(bt.candBuf)
	for _, v := range bt.adj[u] {
		if !bt.visited[v] {
			bt.candBuf = append(bt.candBuf, v)
		}
	}
	list := bt.candBuf[base:]
	defer func() { bt.candBuf = bt.candBuf[:base] }()
	// An unvisited vertex with ≤ 1 unvisited neighbors that is NOT adjacent
	// to the head can only be the final vertex of the path (its eventual
	// predecessor and successor must both be currently-unvisited neighbors
	// unless it is entered from the head right now). Two such vertices are
	// a contradiction.
	if low := bt.zeroCount + bt.oneCount; low >= 2 {
		nonAdj := low
		for _, v := range list {
			if bt.remDeg[v] <= 1 {
				nonAdj--
			}
		}
		if nonAdj >= 2 {
			return false
		}
	}
	sort.Slice(list, func(a, b int) bool {
		da, db := bt.remDeg[list[a]], bt.remDeg[list[b]]
		if da != db {
			return da < db
		}
		return list[a] < list[b]
	})
	for _, v32 := range list {
		v := int(v32)
		if left == 1 && !bt.isEnd[v] {
			continue
		}
		if bt.remDeg[v] == 0 && left > 1 {
			continue // would strand v's successors
		}
		bt.visit(v)
		if bt.dfs(v, left-1) {
			return true
		}
		bt.unvisit(v)
		if bt.exhausted {
			return false
		}
	}
	return false
}

// reachableAll reports whether every unvisited vertex is reachable from u
// through unvisited vertices. A Hamiltonian completion must visit them all
// starting from u, so disconnection is fatal.
func (bt *backtracker) reachableAll(u, left int) bool {
	for i := range bt.seen {
		bt.seen[i] = false
	}
	bt.queue = bt.queue[:0]
	cnt := 0
	for _, v := range bt.adj[u] {
		if !bt.visited[v] && !bt.seen[v] {
			bt.seen[v] = true
			bt.queue = append(bt.queue, int(v))
			cnt++
		}
	}
	for qi := 0; qi < len(bt.queue); qi++ {
		v := bt.queue[qi]
		for _, w := range bt.adj[v] {
			if !bt.visited[w] && !bt.seen[w] {
				bt.seen[w] = true
				bt.queue = append(bt.queue, int(w))
				cnt++
			}
		}
	}
	return cnt == left
}
