package embed

import (
	"context"
	"errors"
	"testing"
	"time"

	"gdpn/internal/bitset"
	"gdpn/internal/construct"
)

func TestResourcesCancelLatches(t *testing.T) {
	r := NewResources(nil, 0, 0)
	defer r.Release()
	if r.Stopped() || r.Reason() != StopNone || r.Err() != nil {
		t.Fatal("fresh token should be live")
	}
	r.Cancel()
	if !r.Stopped() || r.Reason() != StopCanceled {
		t.Fatalf("Stopped=%v Reason=%v after Cancel", r.Stopped(), r.Reason())
	}
	if !errors.Is(r.Err(), ErrCanceled) {
		t.Fatalf("Err() = %v, want ErrCanceled", r.Err())
	}
	r.Cancel() // idempotent
	if r.Reason() != StopCanceled {
		t.Fatal("second Cancel changed the reason")
	}
}

func TestResourcesContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := NewResources(ctx, 0, 0)
	defer r.Release()
	if r.Stopped() {
		t.Fatal("stopped before context cancel")
	}
	cancel()
	deadline := time.Now().Add(2 * time.Second)
	for !r.Stopped() {
		if time.Now().After(deadline) {
			t.Fatal("context cancellation never latched the token")
		}
		time.Sleep(time.Millisecond)
	}
	if r.Reason() != StopCanceled {
		t.Fatalf("Reason = %v, want StopCanceled", r.Reason())
	}
}

func TestResourcesCanceledContextAtBirth(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := NewResources(ctx, 0, 0)
	defer r.Release()
	if !r.Stopped() || r.Reason() != StopCanceled {
		t.Fatal("token from a canceled context should be born stopped")
	}
}

func TestResourcesDeadline(t *testing.T) {
	r := NewResources(nil, 0, 10*time.Millisecond)
	defer r.Release()
	deadline := time.Now().Add(2 * time.Second)
	for !r.Stopped() {
		if time.Now().After(deadline) {
			t.Fatal("deadline never latched the token")
		}
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(r.Err(), ErrDeadline) {
		t.Fatalf("Err() = %v, want ErrDeadline", r.Err())
	}
	if _, ok := r.Deadline(); !ok {
		t.Fatal("Deadline() should report a deadline")
	}
}

func TestResourcesBudget(t *testing.T) {
	r := NewResources(nil, 1000, 0)
	defer r.Release()
	if !r.Charge(999) {
		t.Fatal("charge within budget stopped the token")
	}
	if r.Remaining() != 1 {
		t.Fatalf("Remaining = %d, want 1", r.Remaining())
	}
	if r.Charge(500) {
		t.Fatal("over-budget charge should stop the token")
	}
	if !errors.Is(r.Err(), ErrBudget) {
		t.Fatalf("Err() = %v, want ErrBudget", r.Err())
	}
	if r.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0 after exhaustion", r.Remaining())
	}
}

func TestResourcesUnlimitedBudget(t *testing.T) {
	r := NewResources(nil, 0, 0)
	defer r.Release()
	if !r.Charge(1 << 40) {
		t.Fatal("unlimited token stopped on charge")
	}
	if r.Remaining() != -1 {
		t.Fatalf("Remaining = %d, want -1 (unlimited)", r.Remaining())
	}
	if r.Used() != 1<<40 {
		t.Fatalf("Used = %d", r.Used())
	}
}

func TestResourcesChildStopsWithParent(t *testing.T) {
	p := NewResources(nil, 0, 0)
	defer p.Release()
	c1, c2 := p.Child(), p.Child()
	defer c1.Release()
	defer c2.Release()
	c1.Cancel()
	if c2.Stopped() || p.Stopped() {
		t.Fatal("sibling cancel must not propagate up or sideways")
	}
	p.Cancel()
	if !c2.Stopped() {
		t.Fatal("parent cancel must propagate to children")
	}
	// A child born after the parent stopped is born stopped.
	c3 := p.Child()
	defer c3.Release()
	if !c3.Stopped() {
		t.Fatal("child of a stopped parent should be born stopped")
	}
}

func TestResourcesChildChargesPropagate(t *testing.T) {
	p := NewResources(nil, 100, 0)
	defer p.Release()
	c := p.Child()
	defer c.Release()
	if !c.Charge(60) {
		t.Fatal("first charge stopped")
	}
	if c.Charge(60) {
		t.Fatal("second charge should exhaust the PARENT budget")
	}
	if !p.Stopped() || !errors.Is(p.Err(), ErrBudget) {
		t.Fatalf("parent not stopped by descendant charges: %v", p.Err())
	}
}

func TestResourcesReleaseDetaches(t *testing.T) {
	p := NewResources(nil, 0, 0)
	defer p.Release()
	c := p.Child()
	c.Release()
	p.mu.Lock()
	n := len(p.children)
	p.mu.Unlock()
	if n != 0 {
		t.Fatalf("parent still tracks %d children after Release", n)
	}
	// Released child is not canceled, just detached.
	if c.Stopped() {
		t.Fatal("Release must not cancel the token")
	}
}

func TestScopedNegativeOrNilParent(t *testing.T) {
	s := Scoped(nil, 0)
	defer s.Release()
	if s.Stopped() {
		t.Fatal("detached scope born stopped")
	}
	e := Scoped(nil, -time.Second)
	defer e.Release()
	if !e.Stopped() || !errors.Is(e.Err(), ErrDeadline) {
		t.Fatal("negative deadline should yield a born-stopped token")
	}
}

// TestSolverCanceledTokenReturnsUnknown proves the engines honor the
// token: a pre-canceled token turns every search call into Unknown
// without reporting a false not-found.
func TestSolverCanceledTokenReturnsUnknown(t *testing.T) {
	g := construct.G2(3)
	for _, m := range []Method{DP, Backtracking} {
		r := NewResources(nil, 0, 0)
		r.Cancel()
		s := NewSolver(g, Options{Method: m, Res: r})
		res := s.Find(nil)
		if res.Found || !res.Unknown {
			t.Errorf("%v under canceled token: Found=%v Unknown=%v, want Unknown",
				m, res.Found, res.Unknown)
		}
		r.Release()
	}
}

// TestSolverTokenBudgetExhaustsAsUnknown: a tiny shared node budget makes
// the backtracker give up with Unknown, not a refutation.
func TestSolverTokenBudgetExhaustsAsUnknown(t *testing.T) {
	g := construct.G2(4)
	r := NewResources(nil, 512, 0)
	defer r.Release()
	s := NewSolver(g, Options{Method: Backtracking, Res: r})
	// Drain the budget across calls until the token stops; the call that
	// crosses the line must report Unknown.
	var res Result
	for i := 0; i < 1000 && !r.Stopped(); i++ {
		res = s.Find(nil)
	}
	if !r.Stopped() {
		t.Skip("instance too easy to exhaust a 512-node budget") // defensive; should not happen
	}
	if res.Found && r.Stopped() {
		// The final successful call may have landed exactly on the line —
		// run one more, which must now be Unknown.
		res = s.Find(nil)
	}
	if !res.Unknown || res.Found {
		t.Fatalf("exhausted token: Found=%v Unknown=%v, want Unknown", res.Found, res.Unknown)
	}
	if !errors.Is(r.Err(), ErrBudget) {
		t.Fatalf("token err = %v, want ErrBudget", r.Err())
	}
}

// TestSolverDeadlineShimStillWorks: Options.Deadline and SetDeadline keep
// their wall-clock semantics on top of the token implementation.
func TestSolverDeadlineShimStillWorks(t *testing.T) {
	g := construct.G2(3)
	s := NewSolver(g, Options{Method: Backtracking})
	s.SetDeadline(time.Hour)
	if res := s.Find(nil); !res.Found {
		t.Fatal("generous deadline should not block the solve")
	}
	s.SetDeadline(time.Nanosecond)
	// A 1ns deadline is expired before the timer can even be serviced;
	// Scoped() arms the timer and the engine sees the stop at its first
	// batched check or the timer fires immediately. Either way the call
	// must not report a definitive not-found.
	faults := bitset.New(g.NumNodes())
	deadlineHit := false
	for i := 0; i < 50; i++ {
		if res := s.Find(faults); res.Unknown {
			deadlineHit = true
			break
		}
	}
	if !deadlineHit {
		t.Log("1ns deadline never observed (fast machine); acceptable but unexpected")
	}
	s.SetDeadline(0)
	if res := s.Find(nil); !res.Found {
		t.Fatal("clearing the deadline should restore normal solving")
	}
}

// TestRaceMatchesStagedOnAllFaultSets is the engine-level A/B: on a small
// instance, racing Auto must reach the identical found/not-found verdict
// as staged Auto for every fault set of size <= k.
func TestRaceMatchesStagedOnAllFaultSets(t *testing.T) {
	g := construct.G2(3) // 21 nodes: hard enough to exercise both engines
	staged := NewSolver(g, Options{})
	racing := NewSolver(g, Options{Race: true})
	n := g.NumNodes()
	faults := bitset.New(n)
	var sets int
	for a := 0; a < n; a++ {
		for b := a; b < n; b++ {
			faults.Clear()
			faults.Add(a)
			if b != a {
				faults.Add(b)
			}
			sr := staged.Find(faults)
			rr := racing.Find(faults)
			if sr.Unknown || rr.Unknown {
				t.Fatalf("unexpected Unknown on faults {%d,%d}: staged=%v racing=%v",
					a, b, sr.Unknown, rr.Unknown)
			}
			if sr.Found != rr.Found {
				t.Fatalf("verdict mismatch on faults {%d,%d}: staged=%v racing=%v",
					a, b, sr.Found, rr.Found)
			}
			sets++
		}
	}
	if sets == 0 {
		t.Fatal("no fault sets enumerated")
	}
}

// TestRaceUnderCanceledParent: with the parent token canceled, the race
// returns Unknown rather than fabricating a verdict.
func TestRaceUnderCanceledParent(t *testing.T) {
	g := construct.G2(3)
	r := NewResources(nil, 0, 0)
	defer r.Release()
	r.Cancel()
	s := NewSolver(g, Options{Race: true, Res: r})
	res := s.Find(nil)
	if res.Found || !res.Unknown {
		t.Fatalf("race under canceled parent: Found=%v Unknown=%v, want Unknown",
			res.Found, res.Unknown)
	}
}
