package embed

import (
	"math/rand"
	"testing"

	"gdpn/internal/bitset"
	"gdpn/internal/combin"
	"gdpn/internal/construct"
	"gdpn/internal/graph"
)

// diffSorted merge-diffs two sorted node-id slices into (removed, added):
// ids only in prev, ids only in cur. Mirrors the delta the verifier derives
// from consecutive lexicographic fault sets.
func diffSorted(prev, cur []int) (removed, added []int) {
	i, j := 0, 0
	for i < len(prev) && j < len(cur) {
		switch {
		case prev[i] == cur[j]:
			i++
			j++
		case prev[i] < cur[j]:
			removed = append(removed, prev[i])
			i++
		default:
			added = append(added, cur[j])
			j++
		}
	}
	removed = append(removed, prev[i:]...)
	added = append(added, cur[j:]...)
	return removed, added
}

// FindDelta walked along the full lexicographic enumeration must agree with
// a cold Find at every fault set — found/unknown verdicts and endpoint
// viability alike.
func TestFindDeltaMatchesColdFind(t *testing.T) {
	graphs := []*graph.Graph{construct.G1(2), construct.G2(2), construct.G3(3)}
	for _, g := range graphs {
		warm := NewSolver(g, Options{})
		cold := NewSolver(g, Options{})
		n := g.NumNodes()
		faults := bitset.New(n)
		coldFaults := bitset.New(n)
		var prev []int
		combin.SubsetsUpTo(n, 3, func(sub []int) bool {
			removed, added := diffSorted(prev, sub)
			for _, v := range removed {
				faults.Remove(v)
			}
			for _, v := range added {
				faults.Add(v)
			}
			wr := warm.FindDelta(faults, removed, added)

			coldFaults.Clear()
			for _, v := range sub {
				coldFaults.Add(v)
			}
			cr := cold.Find(coldFaults)

			if wr.Found != cr.Found || wr.Unknown != cr.Unknown {
				t.Fatalf("%s faults=%v: delta (found=%v unknown=%v) != cold (found=%v unknown=%v)",
					g.Name(), sub, wr.Found, wr.Unknown, cr.Found, cr.Unknown)
			}
			prev = append(prev[:0], sub...)
			return true
		})
		hits, misses := warm.Warm()
		if hits == 0 {
			t.Errorf("%s: no warm hits recorded", g.Name())
		}
		if misses != 1 {
			t.Errorf("%s: %d warm misses, want exactly 1 (the first call)", g.Name(), misses)
		}
	}
}

// Random jumps — deltas that change many members at once, as when a worker
// steals a chunk far from its previous position — must also stay exact.
func TestFindDeltaRandomJumps(t *testing.T) {
	g := construct.G3(4)
	n := g.NumNodes()
	warm := NewSolver(g, Options{})
	cold := NewSolver(g, Options{})
	rng := rand.New(rand.NewSource(42))
	faults := bitset.New(n)
	var prev []int
	for trial := 0; trial < 300; trial++ {
		k := rng.Intn(5)
		cur := combin.RandomSubset(rng, n, k, nil)
		removed, added := diffSorted(prev, cur)
		for _, v := range removed {
			faults.Remove(v)
		}
		for _, v := range added {
			faults.Add(v)
		}
		wr := warm.FindDelta(faults, removed, added)
		cr := cold.Find(bitset.FromSlice(n, cur))
		if wr.Found != cr.Found || wr.Unknown != cr.Unknown {
			t.Fatalf("trial %d faults=%v: delta found=%v, cold found=%v", trial, cur, wr.Found, cr.Found)
		}
		prev = cur
	}
}

// A Find interleaved into a delta chain re-warms the state; the chain must
// continue correctly from it.
func TestFindRewarmsState(t *testing.T) {
	g := construct.G2(3)
	n := g.NumNodes()
	s := NewSolver(g, Options{})
	cold := NewSolver(g, Options{})

	f1 := bitset.FromSlice(n, []int{1})
	s.Find(f1)
	// Delta from {1} to {1, 2}.
	f1.Add(2)
	got := s.FindDelta(f1, nil, []int{2})
	want := cold.Find(bitset.FromSlice(n, []int{1, 2}))
	if got.Found != want.Found {
		t.Fatalf("delta after re-warm: found=%v, cold found=%v", got.Found, want.Found)
	}
	if hits, _ := s.Warm(); hits != 1 {
		t.Fatalf("warm hits = %d, want 1", hits)
	}
}
