package embed

import (
	"math/rand"
	"testing"

	"gdpn/internal/bitset"
	"gdpn/internal/construct"
)

// TestRaceDirectVerdicts drives the race() portfolio head-on, bypassing the
// staged ladder's cheap tiers, on an instance sized inside the racing window
// (Extend²(G3(5)) has 20 processors: > the direct-DP cutoff of 18, ≤
// MaxDPProcessors). Every verdict must match the exact DP reference.
func TestRaceDirectVerdicts(t *testing.T) {
	g := construct.ExtendTimes(construct.G3(5), 2)
	np := len(g.Processors())
	if np <= 18 || np > MaxDPProcessors {
		t.Fatalf("instance has %d processors; want inside the racing window (19..%d)", np, MaxDPProcessors)
	}
	s := NewSolver(g, Options{Race: true})
	ref := NewSolver(g, Options{Method: DP})

	rng := rand.New(rand.NewSource(7))
	faults := bitset.New(g.NumNodes())
	trials := 0
	for trials < 60 {
		faults.Clear()
		nf := rng.Intn(6)
		for i := 0; i < nf; i++ {
			faults.Add(rng.Intn(g.NumNodes()))
		}
		e, ok := s.endpoints(faults)
		if !ok {
			continue // trivially infeasible; nothing to race
		}
		trials++
		rr := s.race(e)
		if rr.Unknown {
			t.Fatalf("race returned Unknown on trial %d with default budgets", trials)
		}
		dr := ref.Find(faults)
		if rr.Found != dr.Found {
			t.Fatalf("race verdict %v disagrees with exact DP %v (trial %d)", rr.Found, dr.Found, trials)
		}
	}
	// Both engines are complete, so every race has a winner; the tier stats
	// must attribute each of the 60 races to exactly one of DP/Full.
	st := s.Stats()
	if st.DP+st.Full != int64(trials) {
		t.Fatalf("race attribution: DP=%d Full=%d, want sum %d", st.DP, st.Full, trials)
	}
}
