// Package embed finds pipelines in faulty solution graphs: given a graph G
// and a fault set F, it searches for a path in G \ F that starts at a
// healthy input terminal, ends at a healthy output terminal, and visits
// every healthy processor (the paper's definition of "G tolerates F", §2).
//
// Four engine tiers are provided, and the Auto method stages them from
// cheapest to most general:
//
//   - a constructive planner for the §3.4 asymptotic family (planner.go):
//     O(n) for fixed k, search-free, resolves ≥99.8% of random fault sets
//     (experiment P3);
//   - an exact Held–Karp dynamic program (exact.go), complete for up to
//     MaxDPProcessors healthy processors; used where nonexistence must be
//     decided (the search module, uniqueness proofs);
//   - a pruned backtracking search (backtrack.go), complete when given an
//     unlimited budget, with Warnsdorff ordering, forced-move and
//     degree/connectivity pruning; the workhorse of exhaustive
//     verification;
//   - a run-compression search for the asymptotic family (structured.go)
//     that collapses long healthy circulant runs into three-node corridors
//     and solves a fault-local subproblem whose size depends on k but not n.
//
// Every engine returns either a full pipeline (which callers re-validate
// with verify.CheckPipeline) or "not found"; the search engines can also
// report "unknown" when an explicit node budget is exhausted.
package embed

import (
	"encoding/binary"
	"fmt"
	"time"

	"gdpn/internal/bitset"
	"gdpn/internal/construct"
	"gdpn/internal/graph"
	"gdpn/internal/obs"
	"gdpn/internal/obs/span"
)

// MaxDPProcessors is the largest healthy-processor count the exact DP
// accepts (2^n masks are materialized).
const MaxDPProcessors = 22

// Method selects a solver engine.
type Method int

const (
	// Auto picks: Structured when a layout is supplied and applicable,
	// otherwise DP for small instances, otherwise Backtracking.
	Auto Method = iota
	// DP forces the exact Held–Karp dynamic program.
	DP
	// Backtracking forces the pruned DFS.
	Backtracking
	// Structured forces the asymptotic-family solver (requires Options.Layout).
	Structured
)

// String returns the engine name.
func (m Method) String() string {
	switch m {
	case Auto:
		return "auto"
	case DP:
		return "dp"
	case Backtracking:
		return "backtracking"
	case Structured:
		return "structured"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// Options configures a Solver.
type Options struct {
	// Method selects the engine (default Auto).
	Method Method
	// Layout enables the structured engine for graphs built by
	// construct.Asymptotic.
	Layout *construct.Layout
	// Budget bounds the number of DFS node expansions in the backtracking
	// engine; 0 means DefaultBudget. When the budget is exhausted the
	// result is Unknown = true rather than Found = false.
	Budget int64
	// Deadline bounds the wall-clock time of each Find/FindDelta call.
	// Compatibility shim: it is implemented as a per-call Resources scope
	// (a timer latches the stop flag; the engines never read the clock),
	// preserving the old polling semantics. 0 means no deadline. The O(n)
	// planner and structured tiers are not bounded — they finish far below
	// any useful deadline.
	Deadline time.Duration
	// Res is the ambient cancellation/budget token shared by every Find /
	// FindDelta call of this solver: cancel it and the search engines
	// return Unknown at their next expansion. nil = never stops. Per-call
	// Deadline scopes (if any) are created as children of this token.
	Res *Resources
	// Race upgrades Auto for hard instances: when the planner/structured
	// tiers miss and the instance fits the exact DP, the backtracker and
	// the Held–Karp DP run concurrently under sibling Resources tokens and
	// the first definitive answer (found, or exhaustive not-found) cancels
	// the loser. Verdicts are identical to the staged ladder; only the
	// wall-clock path to them changes.
	Race bool
	// Memo retains solved results across calls, keyed by the exact fault
	// set: a repeated fault set (chaos churn revisiting nearby
	// configurations, fault/repair cycles) returns the cached verdict and
	// a copy of the cached path without dispatching an engine. Definitive
	// results only — Unknown (budget/deadline) outcomes are never cached.
	// The cache survives remaps by design; call InvalidateCache when the
	// graph changes underneath the solver. Off by default.
	Memo bool
	// MemoCap bounds the number of retained results (0 = DefaultMemoCap);
	// reaching the cap clears the cache rather than evicting piecemeal.
	MemoCap int
}

// DefaultMemoCap is the Options.Memo entry bound used when MemoCap is 0.
const DefaultMemoCap = 4096

// DefaultBudget is the backtracking node-expansion budget used when
// Options.Budget is 0. It is far above what any instance in the test and
// experiment suites requires; exhaustion indicates an adversarial instance
// and is reported as Unknown, never as refutation.
const DefaultBudget = 50_000_000

// Result reports the outcome of a pipeline search.
type Result struct {
	// Pipeline is the full terminal-to-terminal path when Found.
	Pipeline graph.Path
	// Found reports that a pipeline exists (and Pipeline holds one).
	Found bool
	// Unknown reports that the backtracking budget was exhausted before
	// the search space was covered; Found is false but nonexistence has
	// NOT been established.
	Unknown bool
	// Method is the engine that produced the outcome.
	Method Method
	// Expansions counts DFS node expansions (backtracking) or DP
	// transitions (exact).
	Expansions int64
}

// TierStats counts which engine tier resolved each Find call — the
// portfolio's division of labour, reported by the P1/P3 ablation
// experiments. Tiers are mutually exclusive per call. Under the racing
// Auto portfolio the winner of each race is attributed to its tier (DP or
// Full); the embed_race_won_total counters record that it won by racing.
type TierStats struct {
	// Planner counts calls solved by the constructive asymptotic planner.
	Planner int64 `json:"planner"`
	// Compressed counts calls solved by the run-compression search.
	Compressed int64 `json:"compressed"`
	// Probe counts calls resolved by the cheap first-pass backtracking.
	Probe int64 `json:"probe"`
	// DP counts calls resolved by the exact Held–Karp engine.
	DP int64 `json:"dp"`
	// Full counts calls that needed the full-budget backtracking pass.
	Full int64 `json:"full"`
	// Trivial counts calls resolved before any engine ran (no healthy
	// terminals, single processor, …).
	Trivial int64 `json:"trivial"`
}

// Total returns the number of Find calls accounted for.
func (t TierStats) Total() int64 {
	return t.Planner + t.Compressed + t.Probe + t.DP + t.Full + t.Trivial
}

// Add accumulates other into t (merging per-worker solver stats).
func (t *TierStats) Add(other TierStats) {
	t.Planner += other.Planner
	t.Compressed += other.Compressed
	t.Probe += other.Probe
	t.DP += other.DP
	t.Full += other.Full
	t.Trivial += other.Trivial
}

// Sub returns t minus other, field by field. It turns two cumulative
// Solver.Stats snapshots into the per-interval delta — how a shard or
// chunk of work was resolved — without resetting the solver.
func (t TierStats) Sub(other TierStats) TierStats {
	return TierStats{
		Planner:    t.Planner - other.Planner,
		Compressed: t.Compressed - other.Compressed,
		Probe:      t.Probe - other.Probe,
		DP:         t.DP - other.DP,
		Full:       t.Full - other.Full,
		Trivial:    t.Trivial - other.Trivial,
	}
}

// Publish exports the stats as embed_tier_stats{tier=...} gauges on reg —
// the division-of-labour view at /metrics. Gauges accumulate across
// Publish calls (a verification run publishes its workers' totals once at
// the end).
func (t TierStats) Publish(reg *obs.Registry) {
	for i, v := range tierDeltas(t) {
		if v != 0 {
			reg.Gauge("embed_tier_stats", obs.L("tier", tierNames[i])).Add(v)
		}
	}
}

// Solver finds pipelines in a fixed graph under varying fault sets. It
// reuses scratch buffers across calls; a Solver is NOT safe for concurrent
// use — create one per goroutine (they are cheap).
type Solver struct {
	g     *graph.Graph
	opts  Options
	stats TierStats

	// Scratch reused across calls.
	procs   []int // processor node ids
	procIdx []int // node id -> processor index, -1 otherwise
	healthy []int // healthy processor node ids, ascending
	dpTable []uint32
	bt      *backtracker

	// Warm endpoint state for FindDelta: the healthy list and the
	// start/end candidate sets left behind by the previous call, valid for
	// exactly the fault set that call solved. FindDelta patches it from the
	// caller-supplied delta instead of rescanning every node.
	warmValid            bool
	warmStart, warmEnd   bitset.Set
	warmHits, warmMisses int64

	// Result memo (Options.Memo): definitive results keyed by the encoded
	// fault set. memoIDs/memoKey are reusable key-building scratch.
	memo                 map[string]memoEntry
	memoIDs              []int
	memoKey              []byte
	memoHits, memoMisses int64

	// run is the token governing the current Find call: Options.Res, or a
	// per-call child of it when Options.Deadline is set.
	run *Resources

	// spanParent is the causal parent for per-call solve spans (SetSpan);
	// raceWinner records which engine won the last racing Auto call ("" =
	// no race) so the span can carry a race_winner attribute.
	spanParent *span.S
	raceWinner string

	reg        *obs.Registry
	findTime   *obs.Histogram  // wall time per Find call
	expansions *obs.Counter    // DFS node expansions / DP transitions
	tiers      [6]*obs.Counter // per-tier resolutions, same order as tierDeltas
	warmHit    *obs.Counter
	warmMiss   *obs.Counter
	memoHit    *obs.Counter
	memoMiss   *obs.Counter
	cancels    *obs.Counter    // calls abandoned because the token stopped
	raceWon    [2]*obs.Counter // racing Auto wins, [0]=dp [1]=backtrack
}

// NewSolver returns a Solver for g.
func NewSolver(g *graph.Graph, opts Options) *Solver {
	s := &Solver{g: g, opts: opts}
	s.procs = g.Processors()
	s.procIdx = make([]int, g.NumNodes())
	for i := range s.procIdx {
		s.procIdx[i] = -1
	}
	for i, p := range s.procs {
		s.procIdx[p] = i
	}
	if s.opts.Budget == 0 {
		s.opts.Budget = DefaultBudget
	}
	s.warmStart = bitset.New(g.NumNodes())
	s.warmEnd = bitset.New(g.NumNodes())
	s.reg = obs.Default()
	s.findTime = s.reg.Histogram("embed_find_ns")
	s.expansions = s.reg.Counter("embed_expansions_total")
	for i, name := range tierNames {
		s.tiers[i] = s.reg.Counter("embed_tier_total", obs.L("tier", name))
	}
	s.warmHit = s.reg.Counter("embed_warm_total", obs.L("result", "hit"))
	s.warmMiss = s.reg.Counter("embed_warm_total", obs.L("result", "miss"))
	s.memoHit = s.reg.Counter("embed_memo_hit_total")
	s.memoMiss = s.reg.Counter("embed_memo_miss_total")
	if s.opts.MemoCap <= 0 {
		s.opts.MemoCap = DefaultMemoCap
	}
	s.cancels = s.reg.Counter("embed_cancel_total")
	s.raceWon[0] = s.reg.Counter("embed_race_won_total", obs.L("engine", "dp"))
	s.raceWon[1] = s.reg.Counter("embed_race_won_total", obs.L("engine", "backtrack"))
	return s
}

var tierNames = [6]string{"planner", "compressed", "probe", "dp", "full", "trivial"}

// tierDeltas flattens a TierStats in the tierNames order.
func tierDeltas(t TierStats) [6]int64 {
	return [6]int64{t.Planner, t.Compressed, t.Probe, t.DP, t.Full, t.Trivial}
}

// Stats returns cumulative per-tier resolution counts for this solver.
func (s *Solver) Stats() TierStats { return s.stats }

// Find searches for a pipeline in g \ faults. faults may be nil (no
// faults). The returned Result.Pipeline is freshly allocated. Find rebuilds
// the endpoint state from scratch (and leaves it warm for a subsequent
// FindDelta).
func (s *Solver) Find(faults bitset.Set) Result {
	return s.timed(faults, nil, nil, false)
}

// FindDelta is Find for a fault set that differs from the previous call's
// by a known delta: removed lists the node ids that left the fault set and
// added the ids that entered it, and faults must already reflect both. When
// the previous call left warm endpoint state (any Find or FindDelta does),
// only the changed nodes and their neighborhoods are rescanned — the win
// over Find on the exhaustive verifier's lexicographic walk, where
// consecutive fault sets share almost all members. With no warm state (the
// first call of a chunk) it falls back to the full rebuild.
//
// Passing a delta that does not match the previous fault set corrupts the
// endpoint state; callers own that invariant.
func (s *Solver) FindDelta(faults bitset.Set, removed, added []int) Result {
	return s.timed(faults, removed, added, true)
}

// Warm returns how many FindDelta calls reused warm endpoint state versus
// rebuilt it from scratch.
func (s *Solver) Warm() (hits, misses int64) { return s.warmHits, s.warmMisses }

// Memo returns how many calls were answered from the result memo versus
// solved (always (0, 0) unless Options.Memo is set).
func (s *Solver) Memo() (hits, misses int64) { return s.memoHits, s.memoMisses }

// InvalidateCache drops every piece of state derived from past solves:
// the FindDelta warm endpoint state and the Options.Memo result cache.
// Call it whenever the graph changes underneath the solver — cached
// verdicts and warm endpoint sets are only sound for the topology they
// were computed on.
func (s *Solver) InvalidateCache() {
	s.warmValid = false
	if s.memo != nil {
		clear(s.memo)
	}
}

// memoEntry is one cached definitive result. path is the solver-owned
// copy; hits hand out fresh copies (Result.Pipeline is documented as
// freshly allocated).
type memoEntry struct {
	found  bool
	method Method
	path   graph.Path
}

// memoKeyFor encodes the fault set into s.memoKey (reused scratch) as
// delta-encoded varints of the sorted node ids.
func (s *Solver) memoKeyFor(faults bitset.Set) []byte {
	s.memoIDs = faults.AppendTo(s.memoIDs[:0])
	key := s.memoKey[:0]
	prev := 0
	for _, id := range s.memoIDs {
		key = binary.AppendUvarint(key, uint64(id-prev))
		prev = id
	}
	s.memoKey = key
	return key
}

// memoLookup consults the result memo; on a hit the cached path is
// copied out. The built key stays in s.memoKey for a following memoStore.
func (s *Solver) memoLookup(faults bitset.Set) (Result, bool) {
	key := s.memoKeyFor(faults)
	e, hit := s.memo[string(key)] // no allocation: map lookup special case
	if !hit {
		s.memoMisses++
		s.memoMiss.Inc()
		return Result{}, false
	}
	s.memoHits++
	s.memoHit.Inc()
	res := Result{Found: e.found, Method: e.method}
	if e.found {
		res.Pipeline = make(graph.Path, len(e.path))
		copy(res.Pipeline, e.path)
	}
	return res, true
}

// memoStore caches a definitive result under the key memoLookup built.
func (s *Solver) memoStore(res Result) {
	if s.memo == nil {
		s.memo = make(map[string]memoEntry)
	} else if len(s.memo) >= s.opts.MemoCap {
		clear(s.memo)
	}
	e := memoEntry{found: res.Found, method: res.Method}
	if res.Found {
		e.path = make(graph.Path, len(res.Pipeline))
		copy(e.path, res.Pipeline)
	}
	s.memo[string(s.memoKey)] = e
}

// SetDeadline changes the per-call wall-clock bound for subsequent Find /
// FindDelta calls (see Options.Deadline). 0 disables the bound.
// Compatibility shim over the Resources token.
func (s *Solver) SetDeadline(d time.Duration) { s.opts.Deadline = d }

// SetResources replaces the ambient cancellation/budget token for
// subsequent Find / FindDelta calls (see Options.Res). nil detaches.
func (s *Solver) SetResources(r *Resources) { s.opts.Res = r }

// Resources returns the ambient token (nil when unset).
func (s *Solver) Resources() *Resources { return s.opts.Res }

// SetSpan attaches the causal parent for subsequent Find / FindDelta
// calls: each call then records a "solve" child span carrying the
// resolving tier, warm-start reuse, expansions, and — after a racing Auto
// call — the winning engine. nil detaches (solve spans become roots, or
// disappear entirely while the tracer is disabled).
func (s *Solver) SetSpan(sp *span.S) { s.spanParent = sp }

func (s *Solver) timed(faults bitset.Set, removed, added []int, delta bool) Result {
	observing := s.reg.Enabled()
	sp := span.Start(s.spanParent, "solve")
	if !observing && sp == nil {
		return s.find(faults, removed, added, delta)
	}
	start := time.Now()
	before := tierDeltas(s.stats)
	warmBefore := s.warmHits
	s.raceWinner = ""
	res := s.find(faults, removed, added, delta)
	if observing {
		s.findTime.ObserveSince(start)
		s.expansions.Add(res.Expansions)
	}
	tier := ""
	for i, after := range tierDeltas(s.stats) {
		if d := after - before[i]; d > 0 {
			if observing {
				s.tiers[i].Add(d)
			}
			tier = tierNames[i]
		}
	}
	if sp != nil {
		s.endSolveSpan(sp, res, tier, s.warmHits > warmBefore)
	}
	if slo := span.DefaultSLO(); slo.Enabled() {
		slo.Observe("solve", time.Since(start))
	}
	return res
}

// endSolveSpan finishes one per-call solve span with the tier, warm-start,
// race, and cancellation-reason attributes.
func (s *Solver) endSolveSpan(sp *span.S, res Result, tier string, warm bool) {
	if tier != "" {
		sp.SetStr("tier", tier)
	}
	sp.SetInt("expansions", res.Expansions)
	if warm {
		sp.SetStr("warm", "hit")
	}
	if s.raceWinner != "" {
		sp.SetStr("race_winner", s.raceWinner)
	}
	status := span.OK
	switch {
	case res.Found:
		sp.SetStr("outcome", "found")
	case res.Unknown:
		sp.SetStr("outcome", "unknown")
		if stopped(s.run) {
			reason := s.run.Reason()
			sp.SetStr("cancel_reason", reason.String())
			if reason == StopDeadline {
				status = span.Deadline
			} else {
				status = span.Canceled
			}
		}
	default:
		sp.SetStr("outcome", "not_found")
	}
	sp.End(status)
}

func (s *Solver) find(faults bitset.Set, removed, added []int, delta bool) Result {
	s.run = s.opts.Res
	if s.opts.Deadline > 0 {
		// Per-call deadline scope: a child token whose timer latches the
		// stop flag, so the engines check one atomic load instead of
		// polling the clock.
		scope := Scoped(s.opts.Res, s.opts.Deadline)
		defer scope.Release()
		s.run = scope
	}
	var ends endpoints
	var ok bool
	if delta && s.warmValid {
		s.warmHits++
		s.warmHit.Add(1)
		ends, ok = s.deltaEndpoints(faults, removed, added)
	} else {
		if delta {
			s.warmMisses++
			s.warmMiss.Add(1)
		}
		ends, ok = s.endpoints(faults)
	}
	s.warmValid = true
	// Consulted only after the endpoint state is patched: a memo hit must
	// leave the warm state exactly as a solved call would, so the next
	// FindDelta's delta still applies to it.
	if s.opts.Memo {
		if r, hit := s.memoLookup(faults); hit {
			return r
		}
	}
	res := s.solvePrepared(faults, ends, ok)
	if s.opts.Memo && !res.Unknown {
		s.memoStore(res)
	}
	return res
}

// solvePrepared runs the trivial cases and engine dispatch for a call
// whose endpoint state is already prepared (ok=false: no viable
// endpoints survive the fault set).
func (s *Solver) solvePrepared(faults bitset.Set, ends endpoints, ok bool) Result {
	if !ok {
		s.stats.Trivial++
		return Result{Found: false}
	}

	// Single-processor special case: the pipeline is i — p — o.
	if len(ends.healthyProcs) == 1 {
		s.stats.Trivial++
		p := ends.healthyProcs[0]
		ti, to := -1, -1
		for _, u := range s.g.Neighbors(p) {
			if faults != nil && faults.Contains(int(u)) {
				continue
			}
			switch s.g.Kind(int(u)) {
			case graph.InputTerminal:
				ti = int(u)
			case graph.OutputTerminal:
				to = int(u)
			}
		}
		if ti >= 0 && to >= 0 {
			return Result{Pipeline: graph.Path{ti, p, to}, Found: true, Method: Auto}
		}
		return Result{Found: false}
	}

	res := s.dispatch(faults, ends)
	if res.Unknown && stopped(s.run) {
		// The call was abandoned by the token (cancel, deadline, or
		// budget), not by a genuine search-space exhaustion.
		s.cancels.Inc()
	}
	return res
}

// dispatch routes one prepared call to the selected engine.
func (s *Solver) dispatch(faults bitset.Set, ends endpoints) Result {
	switch s.opts.Method {
	case DP:
		return s.findDP(ends, s.run)
	case Backtracking:
		return s.findBacktrack(ends, s.opts.Budget, s.run)
	case Structured:
		res := s.findStructured(faults, ends)
		if res.Found || !res.Unknown {
			return res
		}
		// Structured solver declined; escalate to the complete portfolio.
		fb := s.portfolio(faults, ends)
		fb.Method = Structured
		return fb
	default: // Auto: staged portfolio, cheapest engine first.
		return s.portfolio(faults, ends)
	}
}

// probeBudget is the cheap first-pass backtracking budget in the portfolio;
// typical instances resolve within a few hundred expansions, so anything
// that exhausts it is handed to the structured engine (when a layout is
// available), then the exact DP, then a full-budget backtracking pass.
const probeBudget = 50_000

// portfolio runs the engines in increasing-cost order. Its result is exact
// unless the final full-budget pass itself reports Unknown.
func (s *Solver) portfolio(faults bitset.Set, e endpoints) Result {
	// The constructive planner is the cheapest applicable tier on the
	// asymptotic family: O(n), no search, and it covers almost every fault
	// set (experiment P3 measures the hit rate).
	if s.opts.Layout != nil {
		if planned := s.planAsymptotic(faults); planned != nil {
			s.stats.Planner++
			return Result{Pipeline: planned, Found: true, Method: Structured}
		}
	}
	np := len(e.healthyProcs)
	if np <= 18 {
		s.stats.DP++
		return s.findDP(e, s.run)
	}
	pb := int64(probeBudget)
	if s.opts.Budget < pb {
		pb = s.opts.Budget
	}
	res := s.findBacktrack(e, pb, s.run)
	if !res.Unknown {
		s.stats.Probe++
		return res
	}
	if s.opts.Layout != nil {
		cr := s.findCompressed(faults, e)
		if cr.Found || !cr.Unknown {
			return cr
		}
	}
	// Hard instance: every cheap tier has missed. With racing enabled and
	// the DP applicable, run both complete engines concurrently under
	// sibling tokens — first definitive answer wins, loser is canceled.
	if s.opts.Race && np <= MaxDPProcessors {
		return s.race(e)
	}
	if np <= MaxDPProcessors {
		s.stats.DP++
		return s.findDP(e, s.run)
	}
	s.stats.Full++
	return s.findBacktrack(e, s.opts.Budget, s.run)
}

// FindPipeline is the convenience form: it builds a throwaway solver with
// default options and returns the pipeline and whether one was found.
func FindPipeline(g *graph.Graph, faults bitset.Set) (graph.Path, bool) {
	r := NewSolver(g, Options{}).Find(faults)
	return r.Pipeline, r.Found
}

// endpoints holds the per-fault-set problem statement: the healthy
// processors and the processor-side endpoint candidates.
type endpoints struct {
	faults       bitset.Set
	healthyProcs []int      // node ids of healthy processors
	start, end   bitset.Set // over processor node ids: candidates adjacent to healthy terminals
}

// endpoints rebuilds the healthy-processor list and endpoint candidate sets
// from scratch into the solver's warm storage. It returns ok=false when no
// pipeline can exist for trivial reasons (no healthy input or output
// terminal connection) — but always populates the state fully first, so a
// later FindDelta can patch it regardless of how this call exited.
func (s *Solver) endpoints(faults bitset.Set) (endpoints, bool) {
	s.healthy = s.healthy[:0]
	s.warmStart.Clear()
	s.warmEnd.Clear()
	for _, p := range s.procs {
		if faults == nil || !faults.Contains(p) {
			s.healthy = append(s.healthy, p)
			s.refreshProc(p, faults)
		}
	}
	e := s.warmEndpoints(faults)
	return e, s.viable(e)
}

// deltaEndpoints patches the warm endpoint state: removed nodes left the
// fault set (became healthy), added nodes entered it. Only the changed
// nodes and, for terminals, their processor neighborhoods are rescanned.
func (s *Solver) deltaEndpoints(faults bitset.Set, removed, added []int) (endpoints, bool) {
	for _, v := range added {
		if s.procIdx[v] >= 0 {
			s.healthyRemove(v)
			s.warmStart.Remove(v)
			s.warmEnd.Remove(v)
		} else {
			s.refreshTerminalNeighbors(v, faults)
		}
	}
	for _, v := range removed {
		if s.procIdx[v] >= 0 {
			s.healthyInsert(v)
			s.refreshProc(v, faults)
		} else {
			s.refreshTerminalNeighbors(v, faults)
		}
	}
	e := s.warmEndpoints(faults)
	return e, s.viable(e)
}

func (s *Solver) warmEndpoints(faults bitset.Set) endpoints {
	return endpoints{faults: faults, healthyProcs: s.healthy, start: s.warmStart, end: s.warmEnd}
}

func (s *Solver) viable(e endpoints) bool {
	return len(e.healthyProcs) > 0 && !e.start.Empty() && !e.end.Empty()
}

// refreshProc recomputes the endpoint-candidate membership of the healthy
// processor p from its current terminal neighborhood.
func (s *Solver) refreshProc(p int, faults bitset.Set) {
	hasIn, hasOut := false, false
	for _, u := range s.g.Neighbors(p) {
		if faults != nil && faults.Contains(int(u)) {
			continue
		}
		switch s.g.Kind(int(u)) {
		case graph.InputTerminal:
			hasIn = true
		case graph.OutputTerminal:
			hasOut = true
		}
	}
	setMembership(s.warmStart, p, hasIn)
	setMembership(s.warmEnd, p, hasOut)
}

// refreshTerminalNeighbors recomputes membership for every healthy
// processor adjacent to the terminal t whose health just changed.
func (s *Solver) refreshTerminalNeighbors(t int, faults bitset.Set) {
	for _, u := range s.g.Neighbors(t) {
		p := int(u)
		if s.procIdx[p] >= 0 && (faults == nil || !faults.Contains(p)) {
			s.refreshProc(p, faults)
		}
	}
}

func setMembership(set bitset.Set, i int, in bool) {
	if in {
		set.Add(i)
	} else {
		set.Remove(i)
	}
}

// healthyInsert adds p to the ascending healthy-processor list.
func (s *Solver) healthyInsert(p int) {
	i := len(s.healthy)
	for i > 0 && s.healthy[i-1] > p {
		i--
	}
	if i < len(s.healthy) && s.healthy[i] == p {
		return
	}
	s.healthy = append(s.healthy, 0)
	copy(s.healthy[i+1:], s.healthy[i:])
	s.healthy[i] = p
}

// healthyRemove deletes p from the healthy-processor list.
func (s *Solver) healthyRemove(p int) {
	for i, v := range s.healthy {
		if v == p {
			s.healthy = append(s.healthy[:i], s.healthy[i+1:]...)
			return
		}
	}
}

// assemble wraps a processor path with a healthy input terminal at the
// front and a healthy output terminal at the back.
func (s *Solver) assemble(e endpoints, procPath []int) graph.Path {
	ti := s.healthyTerminal(procPath[0], graph.InputTerminal, e.faults)
	to := s.healthyTerminal(procPath[len(procPath)-1], graph.OutputTerminal, e.faults)
	out := make(graph.Path, 0, len(procPath)+2)
	out = append(out, ti)
	out = append(out, procPath...)
	out = append(out, to)
	return out
}

func (s *Solver) healthyTerminal(p int, kind graph.Kind, faults bitset.Set) int {
	for _, u := range s.g.Neighbors(p) {
		if s.g.Kind(int(u)) == kind && (faults == nil || !faults.Contains(int(u))) {
			return int(u)
		}
	}
	panic("embed: endpoint candidate lost its terminal")
}
